package distauction_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"distauction"
)

// The facade test exercises a full distributed auction round through the
// public API only — what a downstream user's first program looks like.
func TestPublicAPIDoubleAuctionRound(t *testing.T) {
	hub := distauction.NewHub(distauction.LatencyModel{}, 1)
	defer hub.Close()

	cfg := distauction.Config{
		Providers: []distauction.NodeID{1, 2, 3},
		Users:     []distauction.NodeID{100, 101},
		K:         1,
		Mechanism: distauction.NewDoubleAuction(),
		BidWindow: 500 * time.Millisecond,
	}

	providers := make([]*distauction.Provider, 0, 3)
	for _, id := range cfg.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		p, err := distauction.NewProvider(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		providers = append(providers, p)
	}
	bidders := make([]*distauction.Bidder, 0, 2)
	for _, id := range cfg.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		b := distauction.NewBidder(conn, cfg.Providers)
		defer b.Close()
		bidders = append(bidders, b)
	}

	userBids := []distauction.UserBid{
		{Value: distauction.Fx(10), Demand: distauction.Fx(1)},
		{Value: distauction.Fx(8), Demand: distauction.Fx(1)},
	}
	provBids := []distauction.ProviderBid{
		{Cost: distauction.Fx(1), Capacity: distauction.Fx(5)},
		{Cost: distauction.Fx(2), Capacity: distauction.Fx(5)},
		{Cost: distauction.Fx(3), Capacity: distauction.Fx(5)},
	}

	for i, b := range bidders {
		if err := b.Submit(1, userBids[i]); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outs := make([]distauction.Outcome, len(providers))
	errs := make([]error, len(providers))
	var wg sync.WaitGroup
	for i, p := range providers {
		wg.Add(1)
		go func(i int, p *distauction.Provider) {
			defer wg.Done()
			outs[i], errs[i] = p.RunRound(ctx, 1, &provBids[i])
		}(i, p)
	}

	// Bidders learn the outcome too.
	got, err := bidders[0].AwaitOutcome(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i+1, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatal("providers disagree")
		}
	}
	if got.Digest() != outs[0].Digest() {
		t.Error("bidder outcome differs from providers'")
	}

	// Settle through the public ledger/enforcer types.
	l := distauction.NewLedger()
	escrow := distauction.NodeID(999)
	for _, id := range append(append([]distauction.NodeID{escrow}, cfg.Users...), cfg.Providers...) {
		l.Open(id)
	}
	for _, id := range cfg.Users {
		if err := l.Deposit(id, distauction.Fx(100)); err != nil {
			t.Fatal(err)
		}
	}
	gws := []*distauction.Gateway{
		distauction.NewGateway(1, distauction.Fx(5)),
		distauction.NewGateway(2, distauction.Fx(5)),
		distauction.NewGateway(3, distauction.Fx(5)),
	}
	enf := &distauction.Enforcer{Ledger: l, Gateways: gws, Escrow: escrow, TTL: time.Hour}
	if err := enf.Enforce(1, outs[0], cfg.Users, cfg.Providers); err != nil {
		t.Fatalf("enforce: %v", err)
	}
	// The winner (user 100, value 10) pays the marginal price 8.
	if got := l.Balance(100); got != distauction.Fx(92) {
		t.Errorf("winner balance = %v, want 92", got)
	}
}

func TestParseFixed(t *testing.T) {
	v, err := distauction.ParseFixed("1.25")
	if err != nil || v != distauction.Fx(1.25) {
		t.Errorf("ParseFixed = %v, %v", v, err)
	}
	if _, err := distauction.ParseFixed("not a number"); err == nil {
		t.Error("garbage accepted")
	}
}
