module distauction

go 1.24
