package distauction_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"distauction"
	"distauction/internal/deviation"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// deepDeployment opens a 3-provider / 2-user double-auction deployment with
// a 4-deep round pipeline. wrap, when non-nil, decorates provider conns
// (deviation injection).
func deepDeployment(t *testing.T, rounds uint64, wrap func(i int, conn distauction.Conn) distauction.Conn) ([]*distauction.Session, []*distauction.BidderSession, distauction.Topology) {
	t.Helper()
	hub := distauction.NewHub(distauction.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	top := distauction.Topology{
		Providers: []distauction.NodeID{1, 2, 3},
		Users:     []distauction.NodeID{100, 101},
	}
	sessions := make([]*distauction.Session, 0, len(top.Providers))
	for i, id := range top.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			conn = wrap(i, conn)
		}
		s, err := distauction.Open(conn, top,
			distauction.WithK(1),
			distauction.WithMechanismName("double"),
			distauction.WithBidWindow(2*time.Second),
			distauction.WithProviderBid(distauction.ProviderBid{
				Cost: distauction.Fx(float64(i + 1)), Capacity: distauction.Fx(5),
			}),
			distauction.WithRoundLimit(rounds),
			distauction.WithMaxConcurrentRounds(4),
			distauction.WithOutcomeBuffer(int(rounds)),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		sessions = append(sessions, s)
	}
	bidders := make([]*distauction.BidderSession, 0, len(top.Users))
	for _, id := range top.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := distauction.OpenBidder(conn, top.Providers,
			distauction.WithRoundLimit(rounds),
			distauction.WithOutcomeBuffer(int(rounds)),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		bidders = append(bidders, b)
	}
	return sessions, bidders, top
}

// TestDeepPipelineBidderEquivocationFallsBack drives a 4-deep pipeline in
// which one bidder equivocates its bid to the providers every round —
// different (valid) bids to different providers — so the providers enter
// bid agreement with *different* vectors and every round takes the
// digest-mismatch fallback. The fallback must be invisible to honest
// participants: every round completes with a unanimous non-⊥ outcome (the
// per-slot leader decides which of the equivocated bids wins).
func TestDeepPipelineBidderEquivocationFallsBack(t *testing.T) {
	const rounds = 30
	sessions, bidders, top := deepDeployment(t, rounds, nil)

	for r := uint64(1); r <= rounds; r++ {
		// Bidder 0: a different bid per provider under the same round tag.
		payloads := make(map[distauction.NodeID][]byte, len(top.Providers))
		for i, p := range top.Providers {
			bid := distauction.UserBid{
				Value:  distauction.Fx(float64(5 + i)),
				Demand: distauction.Fx(1),
			}
			payloads[p] = bid.Encode()
		}
		if err := bidders[0].SubmitRaw(r, payloads); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		// Bidder 1 is honest.
		if err := bidders[1].Submit(r, distauction.UserBid{
			Value: distauction.Fx(9), Demand: distauction.Fx(1),
		}); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}

	for bi, b := range bidders {
		want := uint64(1)
		deadline := time.After(2 * time.Minute)
		for want <= rounds {
			select {
			case out, ok := <-b.Outcomes():
				if !ok {
					t.Fatalf("bidder %d: stream closed at round %d", bi, want)
				}
				if out.Round != want {
					t.Fatalf("bidder %d: got round %d, want %d", bi, out.Round, want)
				}
				// The unanimity check inside the bidder session proves all
				// providers converged on one vector despite the mismatch.
				if out.Err != nil {
					t.Fatalf("bidder %d round %d: %v (digest fallback must not abort an honest round)", bi, out.Round, out.Err)
				}
				want++
			case <-deadline:
				t.Fatalf("bidder %d: timed out at round %d", bi, want)
			}
		}
	}
	for si, s := range sessions {
		for out := range s.Outcomes() {
			if out.Err != nil {
				t.Fatalf("provider %d round %d: %v", si, out.Round, out.Err)
			}
		}
		if msgs, live := s.Peer().StateSize(); msgs != 0 || live != 0 {
			t.Errorf("provider %d: %d buffered msgs, %d live rounds left", si, msgs, live)
		}
	}
}

// TestDeepPipelineProviderEquivocationAborts wraps one provider with a
// deviation rule that equivocates its consensus reveal toward one peer in
// two specific rounds of a 4-deep pipeline. Exactly those rounds must end ⊥
// at every participant (abort propagation), every other round must be
// accepted, and no state may leak — deviations cost their round, never the
// session.
func TestDeepPipelineProviderEquivocationAborts(t *testing.T) {
	const rounds = 24
	poisoned := map[uint64]bool{8: true, 16: true}

	wrap := func(i int, conn distauction.Conn) distauction.Conn {
		if i != 2 {
			return conn
		}
		return deviation.Wrap(conn, deviation.Rule{
			Match: deviation.And(
				deviation.MatchBlockStep(wire.BlockBidAgree, 3), // consensus reveal
				func(env wire.Envelope) bool { return poisoned[env.Tag.Round] },
			),
			Action:    deviation.Mutate,
			Transform: deviation.EquivocateTo(1), // lie to provider 1 only
		})
	}
	sessions, bidders, _ := deepDeployment(t, rounds, wrap)

	for r := uint64(1); r <= rounds; r++ {
		for bi, b := range bidders {
			if err := b.Submit(r, distauction.UserBid{
				Value: distauction.Fx(float64(8 - bi)), Demand: distauction.Fx(1),
			}); err != nil {
				t.Fatalf("bidder %d round %d: %v", bi, r, err)
			}
		}
	}

	checkStream := func(who string, outs <-chan distauction.RoundOutcome, botErr error) error {
		want := uint64(1)
		deadline := time.After(2 * time.Minute)
		for want <= rounds {
			select {
			case out, ok := <-outs:
				if !ok {
					return fmt.Errorf("%s: stream closed at round %d", who, want)
				}
				if out.Round != want {
					return fmt.Errorf("%s: got round %d, want %d", who, out.Round, want)
				}
				if poisoned[out.Round] {
					if !errors.Is(out.Err, botErr) {
						return fmt.Errorf("%s round %d: err = %v, want ⊥", who, out.Round, out.Err)
					}
				} else if out.Err != nil {
					return fmt.Errorf("%s round %d: %v", who, out.Round, out.Err)
				}
				want++
			case <-deadline:
				return fmt.Errorf("%s: timed out at round %d", who, want)
			}
		}
		return nil
	}

	done := make(chan error, len(sessions)+len(bidders))
	for si, s := range sessions {
		go func(si int, s *distauction.Session) {
			done <- checkStream(fmt.Sprintf("provider %d", si), s.Outcomes(), proto.ErrAborted)
		}(si, s)
	}
	for bi, b := range bidders {
		go func(bi int, b *distauction.BidderSession) {
			done <- checkStream(fmt.Sprintf("bidder %d", bi), b.Outcomes(), distauction.ErrOutcomeBot)
		}(bi, b)
	}
	for i := 0; i < len(sessions)+len(bidders); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for si, s := range sessions {
		if msgs, live := s.Peer().StateSize(); msgs != 0 || live != 0 {
			t.Errorf("provider %d: %d buffered msgs, %d live rounds left", si, msgs, live)
		}
	}
}

// TestDeepPipelineTaskMismatchAborts drives the concurrent task scheduler
// through a 4-deep pipeline in which one provider's task-digest broadcasts
// are corrupted in two specific rounds — the session-level version of a
// group member returning a mismatched task result mid-graph. Exactly those
// rounds must end ⊥ at every provider and bidder (the scheduler's withheld
// publication means the bad rounds abort before any value propagates),
// every other in-flight round must complete normally, and no protocol
// state may leak — the scheduler's per-round goroutines unwind cleanly.
func TestDeepPipelineTaskMismatchAborts(t *testing.T) {
	const rounds = 24
	poisoned := map[uint64]bool{7: true, 15: true}

	flip := deviation.FlipPayloadByte()
	wrap := func(i int, conn distauction.Conn) distauction.Conn {
		if i != 2 {
			return conn
		}
		return deviation.Wrap(conn, deviation.Rule{
			Match: deviation.And(
				deviation.MatchBlockStep(wire.BlockTask, 1), // task result digest
				func(env wire.Envelope) bool { return poisoned[env.Tag.Round] },
			),
			Action:    deviation.Mutate,
			Transform: flip,
		})
	}
	sessions, bidders, _ := deepDeployment(t, rounds, wrap)

	for r := uint64(1); r <= rounds; r++ {
		for bi, b := range bidders {
			if err := b.Submit(r, distauction.UserBid{
				Value: distauction.Fx(float64(6 - bi)), Demand: distauction.Fx(1),
			}); err != nil {
				t.Fatalf("bidder %d round %d: %v", bi, r, err)
			}
		}
	}

	checkStream := func(who string, outs <-chan distauction.RoundOutcome, botErr error) error {
		want := uint64(1)
		deadline := time.After(2 * time.Minute)
		for want <= rounds {
			select {
			case out, ok := <-outs:
				if !ok {
					return fmt.Errorf("%s: stream closed at round %d", who, want)
				}
				if out.Round != want {
					return fmt.Errorf("%s: got round %d, want %d", who, out.Round, want)
				}
				if poisoned[out.Round] {
					if !errors.Is(out.Err, botErr) {
						return fmt.Errorf("%s round %d: err = %v, want ⊥", who, out.Round, out.Err)
					}
				} else if out.Err != nil {
					return fmt.Errorf("%s round %d: %v", who, out.Round, out.Err)
				}
				want++
			case <-deadline:
				return fmt.Errorf("%s: timed out at round %d", who, want)
			}
		}
		return nil
	}

	done := make(chan error, len(sessions)+len(bidders))
	for si, s := range sessions {
		go func(si int, s *distauction.Session) {
			done <- checkStream(fmt.Sprintf("provider %d", si), s.Outcomes(), proto.ErrAborted)
		}(si, s)
	}
	for bi, b := range bidders {
		go func(bi int, b *distauction.BidderSession) {
			done <- checkStream(fmt.Sprintf("bidder %d", bi), b.Outcomes(), distauction.ErrOutcomeBot)
		}(bi, b)
	}
	for i := 0; i < len(sessions)+len(bidders); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for si, s := range sessions {
		if msgs, live := s.Peer().StateSize(); msgs != 0 || live != 0 {
			t.Errorf("provider %d: %d buffered msgs, %d live rounds left", si, msgs, live)
		}
	}
}
