package distauction_test

import (
	"testing"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/market"
	"distauction/internal/proto"
	"distauction/internal/trace"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// fx builds a fixed-point value for test bids.
func fx(v float64) fixed.Fixed { return fixed.MustFloat(v) }

// TestTraceAbortAttribution drives a full market deployment with tracing on,
// injects one equivocation ⊥ at a known provider, and asserts the whole
// export chain observes it: the market's Stats() count the abort under the
// equivocation code, and the flight recorder produces a dump attributing
// the abort to the deviant peer and the phase it surfaced in.
func TestTraceAbortAttribution(t *testing.T) {
	trace.Reset()
	trace.SetEnabled(true)
	defer trace.Reset()

	const (
		rounds   = 12
		poisoned = 6
		lane     = uint32(7)
		name     = "traced-auction"
	)
	culprit := wire.NodeID(2)

	hub := transport.NewHub(transport.LatencyModel{}, 1)
	defer hub.Close()
	providers := []wire.NodeID{1, 2, 3}
	users := []wire.NodeID{100, 101}
	provBids := []auction.ProviderBid{
		{Cost: fx(1), Capacity: fx(5)},
		{Cost: fx(2), Capacity: fx(5)},
		{Cost: fx(3), Capacity: fx(5)},
	}

	markets := make([]*market.Market, len(providers))
	for i, id := range providers {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		mk, err := market.Open(conn, providers, market.WithAdmissionWindow(rounds+8))
		if err != nil {
			t.Fatal(err)
		}
		defer mk.Close()
		markets[i] = mk
		_, err = mk.OpenAuction(market.AuctionSpec{
			Name:  name,
			Lane:  lane,
			Users: users,
			Options: []core.SessionOption{
				core.WithK(1),
				core.WithMechanismName("double"),
				core.WithBidWindow(2 * time.Second),
				core.WithRoundLimit(rounds),
				core.WithMaxConcurrentRounds(4),
				core.WithProviderBid(provBids[i]),
				core.WithOutcomeBuffer(rounds),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Poison one future round at the culprit's own market: its abort travels
	// with the equivocation code and the deviant's identity, so every
	// provider attributes the ⊥ identically.
	a, ok := markets[1].Auction(name)
	if !ok {
		t.Fatal("auction missing on market 1")
	}
	if err := a.Session().Peer().AbortWith(poisoned, "injected equivocation", proto.AbortEquivocation, culprit); err != nil {
		t.Fatal(err)
	}

	for _, id := range users {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := market.NewBidder(conn, providers)
		if err != nil {
			t.Fatal(err)
		}
		defer mb.Close()
		s, err := mb.JoinLane(name, lane,
			core.WithRoundLimit(rounds),
			core.WithOutcomeBuffer(rounds),
			core.WithRoundTimeout(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		for r := uint64(1); r <= rounds; r++ {
			bid := auction.UserBid{Value: fx(4), Demand: fx(1)}
			if err := s.Submit(r, bid); err != nil {
				t.Fatal(err)
			}
		}
		go func() {
			for range s.Outcomes() {
			}
		}()
	}

	// Wait until every market consumed all rounds.
	deadline := time.Now().Add(time.Minute)
	for _, mk := range markets {
		for mk.Stats().Rounds < rounds {
			if time.Now().After(deadline) {
				t.Fatalf("timed out: market saw %d of %d rounds", mk.Stats().Rounds, rounds)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Typed abort counters: exactly one ⊥ round, classified as equivocation.
	for i, mk := range markets {
		snap := mk.Stats()
		if snap.Aborted != 1 {
			t.Errorf("market %d: %d aborted rounds, want 1", i, snap.Aborted)
		}
		if got := snap.AbortCodes[proto.AbortEquivocation]; got != 1 {
			t.Errorf("market %d: equivocation count = %d, want 1 (all codes: %v)",
				i, got, snap.AbortCodes)
		}
		if snap.Latency.Count < rounds {
			t.Errorf("market %d: latency histogram has %d samples, want >= %d",
				i, snap.Latency.Count, rounds)
		}
	}

	// Flight recorder: the ⊥ round produced a dump naming the culprit, the
	// equivocation code, and the phase context of the abort.
	var found bool
	for _, d := range trace.Dumps() {
		if d.Round != poisoned || !d.Aborted {
			continue
		}
		found = true
		if d.Culprit != culprit {
			t.Errorf("dump culprit = %d, want %d", d.Culprit, culprit)
		}
		if d.Code != int32(proto.AbortEquivocation) {
			t.Errorf("dump code = %d, want %d (equivocation)", d.Code, proto.AbortEquivocation)
		}
		if len(d.Events) == 0 {
			t.Error("dump carries no events")
		}
		break
	}
	if !found {
		t.Fatalf("no flight dump for aborted round %d (dumps: %d)", poisoned, len(trace.Dumps()))
	}
}
