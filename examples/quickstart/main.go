// Quickstart: a complete distributed double auction in one file.
//
// Three providers jointly simulate the auctioneer (tolerating any single
// colluding provider, k=1); two users bid for bandwidth. No single node
// ever decides the outcome alone: the providers agree on the bids, execute
// the allocation redundantly, cross-validate, and the users accept the
// outcome only when every provider reports the same pair.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"distauction"
)

func main() {
	// An in-memory network with community-network-like latency.
	hub := distauction.NewHub(distauction.CommunityNetModel(), 42)
	defer hub.Close()

	cfg := distauction.Config{
		Providers: []distauction.NodeID{1, 2, 3},
		Users:     []distauction.NodeID{100, 101},
		K:         1, // tolerate any single deviating provider (m > 2k)
		Mechanism: distauction.NewDoubleAuction(),
		BidWindow: 2 * time.Second,
	}

	// Start the three provider runtimes.
	var providers []*distauction.Provider
	for _, id := range cfg.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		p, err := distauction.NewProvider(conn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		providers = append(providers, p)
	}

	// Users submit their true valuations — the mechanism is truthful, so
	// that is each user's best strategy.
	userBids := []distauction.UserBid{
		{Value: distauction.Fx(1.20), Demand: distauction.Fx(0.8)}, // values 1.20/unit, wants 0.8 units
		{Value: distauction.Fx(0.90), Demand: distauction.Fx(0.5)},
	}
	var bidders []*distauction.Bidder
	for i, id := range cfg.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b := distauction.NewBidder(conn, cfg.Providers)
		defer b.Close()
		bidders = append(bidders, b)
		if err := b.Submit(1, userBids[i]); err != nil {
			log.Fatal(err)
		}
	}

	// Each provider sells bandwidth at its own cost.
	providerBids := []distauction.ProviderBid{
		{Cost: distauction.Fx(0.30), Capacity: distauction.Fx(1.0)},
		{Cost: distauction.Fx(0.50), Capacity: distauction.Fx(1.0)},
		{Cost: distauction.Fx(0.70), Capacity: distauction.Fx(1.0)},
	}

	// Run round 1 at every provider concurrently.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, p := range providers {
		wg.Add(1)
		go func(i int, p *distauction.Provider) {
			defer wg.Done()
			if _, err := p.RunRound(ctx, 1, &providerBids[i]); err != nil {
				log.Printf("provider %d: %v", i+1, err)
			}
		}(i, p)
	}

	// Users wait for the unanimous outcome.
	outcome, err := bidders[0].AwaitOutcome(ctx, 1)
	wg.Wait()
	if err != nil {
		log.Fatalf("outcome: %v", err)
	}

	fmt.Println("auction complete — all providers agree")
	for u := range cfg.Users {
		total := outcome.Alloc.UserTotal(u)
		fmt.Printf("  user %d: allocated %v units, pays %v\n",
			cfg.Users[u], total, outcome.Pay.ByUser[u])
	}
	for p := range cfg.Providers {
		fmt.Printf("  provider %d: supplies %v units, receives %v\n",
			cfg.Providers[p], outcome.Alloc.ProviderLoad(p), outcome.Pay.ToProvider[p])
	}
	fmt.Printf("budget balanced: %v\n", outcome.Pay.BudgetBalanced())
}
