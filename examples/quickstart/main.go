// Quickstart: a complete distributed double auction in one file.
//
// Three providers jointly simulate the auctioneer (tolerating any single
// colluding provider, k=1); two users bid for bandwidth. No single node
// ever decides the outcome alone: the providers agree on the bids, execute
// the allocation redundantly, cross-validate, and the users accept the
// outcome only when every provider reports the same pair.
//
// Each provider opens a long-running Session — the session engine collects
// bids, runs the round, streams the result, and moves on to the next round
// on its own. Here the sessions are limited to three rounds so the program
// terminates; a real deployment would run without a limit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"distauction"
)

func main() {
	// An in-memory network with community-network-like latency.
	hub := distauction.NewHub(distauction.CommunityNetModel(), 42)
	defer hub.Close()

	top := distauction.Topology{
		Providers: []distauction.NodeID{1, 2, 3},
		Users:     []distauction.NodeID{100, 101},
	}
	const rounds = 3

	// Each provider sells bandwidth at its own cost.
	providerBids := []distauction.ProviderBid{
		{Cost: distauction.Fx(0.30), Capacity: distauction.Fx(1.0)},
		{Cost: distauction.Fx(0.50), Capacity: distauction.Fx(1.0)},
		{Cost: distauction.Fx(0.70), Capacity: distauction.Fx(1.0)},
	}

	// Open the three provider sessions. k=1: tolerate any single deviating
	// provider (m > 2k). The sessions run rounds continuously from here on.
	var sessions []*distauction.Session
	for i, id := range top.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		s, err := distauction.Open(conn, top,
			distauction.WithK(1),
			distauction.WithMechanismName("double"),
			distauction.WithBidWindow(2*time.Second),
			distauction.WithProviderBid(providerBids[i]),
			distauction.WithRoundLimit(rounds),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		sessions = append(sessions, s)
		// A provider daemon consumes its outcome stream (and would enforce
		// each accepted outcome; see examples/bandwidth).
		go func(s *distauction.Session) {
			for range s.Outcomes() {
			}
		}(s)
	}

	// Users submit their true valuations — the mechanism is truthful, so
	// that is each user's best strategy. Bids for future rounds are fine:
	// providers buffer them until the round opens.
	userBids := []distauction.UserBid{
		{Value: distauction.Fx(1.20), Demand: distauction.Fx(0.8)}, // values 1.20/unit, wants 0.8 units
		{Value: distauction.Fx(0.90), Demand: distauction.Fx(0.5)},
	}
	var bidders []*distauction.BidderSession
	for i, id := range top.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b, err := distauction.OpenBidder(conn, top.Providers, distauction.WithRoundLimit(rounds))
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		bidders = append(bidders, b)
		for r := uint64(1); r <= rounds; r++ {
			if err := b.Submit(r, userBids[i]); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Outcomes stream to each bidder in round order.
	for out := range bidders[0].Outcomes() {
		if out.Err != nil {
			log.Fatalf("round %d: %v", out.Round, out.Err)
		}
		fmt.Printf("—— round %d: all providers agree ——\n", out.Round)
		for u := range top.Users {
			total := out.Outcome.Alloc.UserTotal(u)
			fmt.Printf("  user %d: allocated %v units, pays %v\n",
				top.Users[u], total, out.Outcome.Pay.ByUser[u])
		}
		for p := range top.Providers {
			fmt.Printf("  provider %d: supplies %v units, receives %v\n",
				top.Providers[p], out.Outcome.Alloc.ProviderLoad(p), out.Outcome.Pay.ToProvider[p])
		}
		fmt.Printf("  budget balanced: %v\n", out.Outcome.Pay.BudgetBalanced())
	}
}
