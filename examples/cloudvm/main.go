// On-demand resource provisioning with a standard auction — the
// computationally heavy case (§5.2.2) where distributing the auctioneer
// *speeds the auction up*.
//
// Eight cloud providers sell capacity; users request resources served by a
// single provider each (a VM cannot straddle providers). Welfare-maximising
// assignment is a multiple-knapsack problem, and the VCG payment of every
// user needs a fresh counterfactual solve — expensive, but embarrassingly
// parallel. The framework splits the payment work across ⌊m/(k+1)⌋ provider
// groups: with k=1 that is 4-way parallelism, with k=3 it is 2-way.
//
// The demo times the same auction centralized (p=1) and distributed (p=2,
// p=4). Compute cost per solve is modeled (this host cannot dedicate a CPU
// per provider; see EXPERIMENTS.md) so the parallel shape is visible.
//
//	go run ./examples/cloudvm
package main

import (
	"fmt"
	"log"
	"time"

	"distauction"
	"distauction/internal/harness"
	"distauction/internal/transport"
)

func main() {
	const (
		m = 8
		n = 48
	)
	// Every solve of the (1−ε) allocation is modeled at 4 ms — roughly a
	// small instance of the paper's O(m·n⁹) algorithm.
	const solveCost = 4 * time.Millisecond

	fmt.Printf("standard auction, m=%d providers, n=%d users, one VCG re-solve per user\n\n", m, n)

	type series struct {
		label string
		k     int
		cent  bool
	}
	for _, s := range []series{
		{"p=1 centralized (trusted auctioneer)", 0, true},
		{"p=2 distributed (k=3: any 3 providers may collude)", 3, false},
		{"p=4 distributed (k=1: any single provider may collude)", 1, false},
	} {
		opts := []harness.Option{
			harness.WithProviders(m), harness.WithUsers(n), harness.WithK(s.k),
			harness.WithSeed(11),
			harness.WithLatency(transport.CommunityNetModel()),
			harness.WithInvEpsilon(5),
			harness.WithModelDelay(solveCost),
			harness.WithBidWindow(5 * time.Second),
		}
		var (
			res harness.Result
			err error
		)
		if s.cent {
			res, err = harness.RunCentralizedStandard(opts...)
		} else {
			res, err = harness.RunDistributedStandard(opts...)
		}
		if err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		served := 0
		for u := 0; u < res.Outcome.Alloc.NumUsers; u++ {
			if res.Outcome.Alloc.UserTotal(u) > 0 {
				served++
			}
		}
		fmt.Printf("%-55s %8v   (%d msgs, %d users served)\n",
			s.label, res.Duration.Round(time.Millisecond), res.Msgs, served)
	}

	fmt.Println("\nthe same protocol through the public API (k=1, 4 providers):")
	publicAPIRound()
}

// publicAPIRound runs a small standard auction directly against the public
// session API, to show the wiring without the benchmark harness: the
// mechanism is picked from the registry by name, providers are long-running
// sessions, and the bidder reads its outcome from a channel.
func publicAPIRound() {
	hub := distauction.NewHub(distauction.LatencyModel{}, 3)
	defer hub.Close()

	capacities := []distauction.Fixed{
		distauction.Fx(2), distauction.Fx(2), distauction.Fx(1), distauction.Fx(1),
	}
	top := distauction.Topology{
		Providers: []distauction.NodeID{1, 2, 3, 4},
		Users:     []distauction.NodeID{100, 101, 102, 103, 104, 105},
	}

	var sessions []*distauction.Session
	for _, id := range top.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		s, err := distauction.Open(conn, top,
			distauction.WithK(1),
			distauction.WithNamedMechanism("standard", distauction.MechanismSpec{
				Capacities: capacities,
				InvEpsilon: 8,
			}),
			distauction.WithBidWindow(2*time.Second),
			distauction.WithRoundLimit(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		sessions = append(sessions, s)
	}

	// Six users compete for six capacity units; the two lowest-value
	// requests are squeezed out and winners pay their VCG externality.
	bids := []distauction.UserBid{
		{Value: distauction.Fx(9), Demand: distauction.Fx(1)},
		{Value: distauction.Fx(8), Demand: distauction.Fx(1)},
		{Value: distauction.Fx(7), Demand: distauction.Fx(2)},
		{Value: distauction.Fx(6), Demand: distauction.Fx(1)},
		{Value: distauction.Fx(5), Demand: distauction.Fx(1)},
		{Value: distauction.Fx(4), Demand: distauction.Fx(1)},
	}
	var bidders []*distauction.BidderSession
	for i, id := range top.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b, err := distauction.OpenBidder(conn, top.Providers, distauction.WithRoundLimit(1))
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		bidders = append(bidders, b)
		if err := b.Submit(1, bids[i]); err != nil {
			log.Fatal(err)
		}
	}

	// The sessions run the round on their own; the bidder just reads its
	// outcome stream.
	result := <-bidders[0].Outcomes()
	if result.Err != nil {
		log.Fatalf("outcome: %v", result.Err)
	}
	outcome := result.Outcome
	for _, s := range sessions {
		for range s.Outcomes() {
			// drain until the round limit closes the stream
		}
	}
	for u, id := range top.Users {
		total := outcome.Alloc.UserTotal(u)
		if total > 0 {
			fmt.Printf("  user %d: served (%v units), VCG payment %v\n", id, total, outcome.Pay.ByUser[u])
		} else {
			fmt.Printf("  user %d: not served\n", id)
		}
	}
}
