// Secondary wireless spectrum market — one of the motivating domains of the
// paper's introduction ("assignment of frequencies in secondary wireless
// spectrum markets", after Zhou et al.'s eBay-in-the-Sky).
//
// Four primary license holders each offer a block of spectrum channels;
// secondary operators bid for channels, and each operator must get all its
// channels from a single licensee (hardware constraint → standard auction).
// No licensee trusts any other to clear the market alone, so they jointly
// simulate the auctioneer with k=1 resilience.
//
//	go run ./examples/spectrum
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"distauction"
)

func main() {
	hub := distauction.NewHub(distauction.CommunityNetModel(), 99)
	defer hub.Close()

	licensees := []distauction.NodeID{1, 2, 3, 4}
	operators := []distauction.NodeID{200, 201, 202, 203, 204, 205, 206}

	// Channels each licensee can sublease this epoch.
	channels := []distauction.Fixed{
		distauction.Fx(6), distauction.Fx(4), distauction.Fx(4), distauction.Fx(2),
	}
	cfg := distauction.Config{
		Providers: licensees,
		Users:     operators,
		K:         1,
		Mechanism: distauction.NewStandardAuction(distauction.StandardParams{
			Capacities: channels,
			InvEpsilon: 10,
		}),
		BidWindow: 2 * time.Second,
	}

	var providers []*distauction.Provider
	for _, id := range licensees {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		p, err := distauction.NewProvider(conn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		providers = append(providers, p)
	}

	// Operators bid (per-channel value, channel count). The market is
	// oversubscribed: 22 channels demanded, 16 available.
	bids := []distauction.UserBid{
		{Value: distauction.Fx(5.0), Demand: distauction.Fx(4)}, // regional carrier
		{Value: distauction.Fx(4.5), Demand: distauction.Fx(4)},
		{Value: distauction.Fx(4.0), Demand: distauction.Fx(3)},
		{Value: distauction.Fx(3.5), Demand: distauction.Fx(3)}, // municipal network
		{Value: distauction.Fx(3.0), Demand: distauction.Fx(3)},
		{Value: distauction.Fx(2.5), Demand: distauction.Fx(3)},
		{Value: distauction.Fx(2.0), Demand: distauction.Fx(2)}, // hobbyist ISP
	}
	var bidders []*distauction.Bidder
	for i, id := range operators {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b := distauction.NewBidder(conn, licensees)
		defer b.Close()
		bidders = append(bidders, b)
		if err := b.Submit(1, bids[i]); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range providers {
		wg.Add(1)
		go func(p *distauction.Provider) {
			defer wg.Done()
			if _, err := p.RunRound(ctx, 1, nil); err != nil {
				log.Printf("licensee: %v", err)
			}
		}(p)
	}
	outcome, err := bidders[0].AwaitOutcome(ctx, 1)
	wg.Wait()
	if err != nil {
		log.Fatalf("outcome: %v", err)
	}

	fmt.Println("spectrum assignment (all licensees agree):")
	type row struct {
		op       distauction.NodeID
		licensee int
		chans    distauction.Fixed
		pay      distauction.Fixed
	}
	var rows []row
	for u, id := range operators {
		for l := range licensees {
			if c := outcome.Alloc.At(u, l); c > 0 {
				rows = append(rows, row{op: id, licensee: l + 1, chans: c, pay: outcome.Pay.ByUser[u]})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].op < rows[j].op })
	for _, r := range rows {
		fmt.Printf("  operator %d ← %v channels from licensee %d, VCG payment %v\n",
			r.op, r.chans, r.licensee, r.pay)
	}
	won := distauction.Fx(0)
	for u := range operators {
		won = won.SatAdd(outcome.Alloc.UserTotal(u))
	}
	total := distauction.Fx(0)
	for _, c := range channels {
		total = total.SatAdd(c)
	}
	fmt.Printf("channels subleased: %v of %v\n", won, total)
	fmt.Printf("clearing revenue:   %v\n", outcome.Pay.TotalPaid())
}
