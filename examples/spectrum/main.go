// Secondary wireless spectrum market — one of the motivating domains of the
// paper's introduction ("assignment of frequencies in secondary wireless
// spectrum markets", after Zhou et al.'s eBay-in-the-Sky).
//
// Four primary license holders each offer a block of spectrum channels;
// secondary operators bid for channels, and each operator must get all its
// channels from a single licensee (hardware constraint → standard auction).
// No licensee trusts any other to clear the market alone, so they jointly
// simulate the auctioneer with k=1 resilience.
//
//	go run ./examples/spectrum
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"distauction"
)

func main() {
	hub := distauction.NewHub(distauction.CommunityNetModel(), 99)
	defer hub.Close()

	licensees := []distauction.NodeID{1, 2, 3, 4}
	operators := []distauction.NodeID{200, 201, 202, 203, 204, 205, 206}

	// Channels each licensee can sublease this epoch.
	channels := []distauction.Fixed{
		distauction.Fx(6), distauction.Fx(4), distauction.Fx(4), distauction.Fx(2),
	}
	top := distauction.Topology{Providers: licensees, Users: operators}

	// One auction epoch = one session round; the licensees' sessions would
	// keep clearing the market epoch after epoch without a round limit.
	var sessions []*distauction.Session
	for _, id := range licensees {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		s, err := distauction.Open(conn, top,
			distauction.WithK(1),
			distauction.WithNamedMechanism("standard", distauction.MechanismSpec{
				Capacities: channels,
				InvEpsilon: 10,
			}),
			distauction.WithBidWindow(2*time.Second),
			distauction.WithRoundLimit(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		sessions = append(sessions, s)
		go func(s *distauction.Session) {
			for range s.Outcomes() {
			}
		}(s)
	}

	// Operators bid (per-channel value, channel count). The market is
	// oversubscribed: 22 channels demanded, 16 available.
	bids := []distauction.UserBid{
		{Value: distauction.Fx(5.0), Demand: distauction.Fx(4)}, // regional carrier
		{Value: distauction.Fx(4.5), Demand: distauction.Fx(4)},
		{Value: distauction.Fx(4.0), Demand: distauction.Fx(3)},
		{Value: distauction.Fx(3.5), Demand: distauction.Fx(3)}, // municipal network
		{Value: distauction.Fx(3.0), Demand: distauction.Fx(3)},
		{Value: distauction.Fx(2.5), Demand: distauction.Fx(3)},
		{Value: distauction.Fx(2.0), Demand: distauction.Fx(2)}, // hobbyist ISP
	}
	var bidders []*distauction.BidderSession
	for i, id := range operators {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b, err := distauction.OpenBidder(conn, licensees, distauction.WithRoundLimit(1))
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		bidders = append(bidders, b)
		if err := b.Submit(1, bids[i]); err != nil {
			log.Fatal(err)
		}
	}
	for _, b := range bidders[1:] {
		go func(b *distauction.BidderSession) {
			for range b.Outcomes() {
			}
		}(b)
	}

	result := <-bidders[0].Outcomes()
	if result.Err != nil {
		log.Fatalf("outcome: %v", result.Err)
	}
	outcome := result.Outcome

	fmt.Println("spectrum assignment (all licensees agree):")
	type row struct {
		op       distauction.NodeID
		licensee int
		chans    distauction.Fixed
		pay      distauction.Fixed
	}
	var rows []row
	for u, id := range operators {
		for l := range licensees {
			if c := outcome.Alloc.At(u, l); c > 0 {
				rows = append(rows, row{op: id, licensee: l + 1, chans: c, pay: outcome.Pay.ByUser[u]})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].op < rows[j].op })
	for _, r := range rows {
		fmt.Printf("  operator %d ← %v channels from licensee %d, VCG payment %v\n",
			r.op, r.chans, r.licensee, r.pay)
	}
	won := distauction.Fx(0)
	for u := range operators {
		won = won.SatAdd(outcome.Alloc.UserTotal(u))
	}
	total := distauction.Fx(0)
	for _, c := range channels {
		total = total.SatAdd(c)
	}
	fmt.Printf("channels subleased: %v of %v\n", won, total)
	fmt.Printf("clearing revenue:   %v\n", outcome.Pay.TotalPaid())
}
