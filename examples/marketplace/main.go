// A multi-auction marketplace over one shared provider fleet.
//
// The paper runs one auction among a fixed provider set; a production
// deployment runs many — here, three gateway operators jointly serve three
// independent resource markets (uplink bandwidth, downlink bandwidth, and
// an edge-compute spot market) as concurrent auctions multiplexed over ONE
// network attachment per node. Each auction is its own session on its own
// wire lane with its own cadence; the uplink market's outcomes are
// enforced on real gateways and a shared credit ledger, and the market's
// admission gate drops a flood of out-of-window bids at the door.
//
//	go run ./examples/marketplace
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"distauction"
)

const escrow = distauction.NodeID(999)

func main() {
	hub := distauction.NewHub(distauction.CommunityNetModel(), 7)
	defer hub.Close()

	providers := []distauction.NodeID{1, 2, 3}
	households := []distauction.NodeID{100, 101, 102, 103}
	const rounds = 3

	// Shared community ledger; uplink reservations land on real gateways.
	ledger := distauction.NewLedger()
	ledger.Open(escrow)
	for _, id := range providers {
		ledger.Open(id)
	}
	for _, id := range households {
		ledger.Open(id)
		if err := ledger.Deposit(id, distauction.Fx(100)); err != nil {
			log.Fatal(err)
		}
	}
	gateways := []*distauction.Gateway{
		distauction.NewGateway(1, distauction.Fx(8)),
		distauction.NewGateway(2, distauction.Fx(8)),
		distauction.NewGateway(3, distauction.Fx(8)),
	}
	uplinkEnforce := &distauction.EnforceTarget{
		Ledger: ledger, Gateways: gateways, Escrow: escrow, TTL: time.Hour,
	}

	// Every provider opens ONE market over ONE attachment and lists the
	// same three auctions; only provider 1 — the gateway operator of this
	// example — wires the uplink market to the enforcement target.
	auctions := []struct {
		name string
		cost float64
	}{
		{"uplink", 0.25},
		{"downlink", 0.15},
		{"edge-compute", 0.40},
	}
	var markets []*distauction.Market
	for pi, id := range providers {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := distauction.OpenMarket(conn, providers)
		if err != nil {
			log.Fatal(err)
		}
		defer mk.Close()
		markets = append(markets, mk)
		for _, a := range auctions {
			spec := distauction.AuctionSpec{
				Name:  a.name,
				Users: households,
				Options: []distauction.Option{
					distauction.WithK(1),
					distauction.WithMechanismName("double"),
					distauction.WithBidWindow(10 * time.Second),
					distauction.WithRoundTimeout(time.Minute),
					distauction.WithRoundLimit(rounds),
					distauction.WithOutcomeBuffer(rounds),
					distauction.WithProviderBid(distauction.ProviderBid{
						Cost:     distauction.Fx(a.cost * float64(pi+1)),
						Capacity: distauction.Fx(8),
					}),
				},
			}
			if a.name == "uplink" && pi == 0 {
				spec.Enforce = uplinkEnforce
			}
			if _, err := mk.OpenAuction(spec); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("provider %d: market open, catalog %v (lanes:", id, mk.Names())
		for _, name := range mk.Names() {
			fmt.Printf(" %d", distauction.LaneForName(name))
		}
		fmt.Println(")")
	}

	// Households join every market through one attachment each and bid
	// per-market demand for every round up front.
	demand := map[string]struct{ value, units float64 }{
		"uplink":       {1.2, 2.0},
		"downlink":     {0.8, 3.0},
		"edge-compute": {2.0, 1.0},
	}
	var wg sync.WaitGroup
	for hi, id := range households {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		mb, err := distauction.OpenMarketBidder(conn, providers)
		if err != nil {
			log.Fatal(err)
		}
		defer mb.Close()
		for _, a := range auctions {
			s, err := mb.Join(a.name,
				distauction.WithRoundLimit(rounds),
				distauction.WithRoundTimeout(time.Minute))
			if err != nil {
				log.Fatal(err)
			}
			d := demand[a.name]
			for r := uint64(1); r <= rounds; r++ {
				bid := distauction.UserBid{
					// Valuations drift per household and round.
					Value:  distauction.Fx(d.value * (1 + 0.1*float64(hi) + 0.05*float64(r))),
					Demand: distauction.Fx(d.units),
				}
				if err := s.Submit(r, bid); err != nil {
					log.Fatal(err)
				}
			}
			wg.Add(1)
			go func(name string, hi int, s *distauction.BidderSession) {
				defer wg.Done()
				for out := range s.Outcomes() {
					if hi != 0 {
						continue // one reporter per auction is enough
					}
					if out.Err != nil {
						fmt.Printf("%-12s round %d: ⊥ (%v)\n", name, out.Round, out.Err)
						continue
					}
					fmt.Printf("%-12s round %d: accepted — users pay %v, providers receive %v\n",
						name, out.Round, out.Outcome.Pay.TotalPaid(), out.Outcome.Pay.TotalReceived())
				}
			}(a.name, hi, s)
		}
	}

	// Meanwhile a confused (or malicious) client floods bids far beyond the
	// admission window; the market drops them at the door.
	flooder, err := hub.Attach(4242)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := distauction.OpenMarketBidder(flooder, providers)
	if err != nil {
		log.Fatal(err)
	}
	defer fb.Close()
	fs, err := fb.Join("uplink", distauction.WithRoundTimeout(time.Second))
	if err != nil {
		log.Fatal(err)
	}
	for r := uint64(500); r < 520; r++ {
		if err := fs.Submit(r, distauction.UserBid{Value: distauction.Fx(9), Demand: distauction.Fx(9)}); err != nil {
			log.Fatal(err)
		}
	}

	wg.Wait()

	// Let provider 1's consumers finish enforcing, then report.
	deadline := time.Now().Add(time.Minute)
	for markets[0].Stats().Rounds < int64(len(auctions)*rounds) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	snap := markets[0].Stats()
	fmt.Println()
	fmt.Printf("market totals: %d rounds (%d accepted, %d ⊥) across %d auctions, %.1f rounds/s aggregate\n",
		snap.Rounds, snap.Accepted, snap.Aborted, snap.Open, snap.RoundsPerSec)
	fmt.Printf("admission: %d bids admitted, %d dropped (the flood)\n", snap.BidsAdmitted, snap.BidsDropped)
	reserved := 0
	for _, g := range gateways {
		reserved += g.Live()
	}
	fmt.Printf("enforcement: %d live uplink reservations, escrow holds %v, supply %v\n",
		reserved, ledger.Balance(escrow), ledger.TotalSupply())
}
