// Bandwidth reservation in a community network — the paper's case study
// (§5.1) end to end.
//
// Five households share three Internet gateways. Each auction round, the
// households bid for gateway bandwidth; the gateways' owners jointly
// simulate the auctioneer (no single owner is trusted); the accepted
// outcome settles atomically on a credit ledger and turns into token-bucket
// shaped reservations on the gateways. An aborted round moves no money and
// reserves nothing — that is the "external mechanism" that makes honest
// participation an equilibrium.
//
//	go run ./examples/bandwidth
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"distauction"
)

const escrow = distauction.NodeID(999)

func main() {
	hub := distauction.NewHub(distauction.CommunityNetModel(), 7)
	defer hub.Close()

	gatewayIDs := []distauction.NodeID{1, 2, 3}
	households := []distauction.NodeID{100, 101, 102, 103, 104}
	cfg := distauction.Config{
		Providers: gatewayIDs,
		Users:     households,
		K:         1,
		Mechanism: distauction.NewDoubleAuction(),
		BidWindow: 2 * time.Second,
	}

	// The community credit ledger: every member starts with 50 credits.
	ledger := distauction.NewLedger()
	ledger.Open(escrow)
	for _, id := range append(append([]distauction.NodeID{}, gatewayIDs...), households...) {
		ledger.Open(id)
	}
	for _, id := range households {
		if err := ledger.Deposit(id, distauction.Fx(50)); err != nil {
			log.Fatal(err)
		}
	}

	// The physical gateways with their uplink capacities (units/s).
	gateways := []*distauction.Gateway{
		distauction.NewGateway(1, distauction.Fx(4)),
		distauction.NewGateway(2, distauction.Fx(3)),
		distauction.NewGateway(3, distauction.Fx(2)),
	}
	enforcer := &distauction.Enforcer{
		Ledger: ledger, Gateways: gateways, Escrow: escrow, TTL: time.Hour,
	}

	// Protocol nodes.
	var providers []*distauction.Provider
	for _, id := range gatewayIDs {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		p, err := distauction.NewProvider(conn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		providers = append(providers, p)
	}
	var bidders []*distauction.Bidder
	for _, id := range households {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b := distauction.NewBidder(conn, gatewayIDs)
		defer b.Close()
		bidders = append(bidders, b)
	}

	// Gateway owners' asking prices per unit of uplink.
	gatewayBids := []distauction.ProviderBid{
		{Cost: distauction.Fx(0.20), Capacity: distauction.Fx(4)},
		{Cost: distauction.Fx(0.35), Capacity: distauction.Fx(3)},
		{Cost: distauction.Fx(0.60), Capacity: distauction.Fx(2)},
	}

	// Two auction rounds with shifting demand (evening peak in round 2).
	demandByRound := [][]distauction.UserBid{
		{
			{Value: distauction.Fx(1.10), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(0.95), Demand: distauction.Fx(1.5)},
			{Value: distauction.Fx(0.80), Demand: distauction.Fx(1.0)},
			{Value: distauction.Fx(0.70), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(0.40), Demand: distauction.Fx(3.0)},
		},
		{
			{Value: distauction.Fx(1.30), Demand: distauction.Fx(3.0)},
			{Value: distauction.Fx(1.25), Demand: distauction.Fx(2.5)},
			{Value: distauction.Fx(1.20), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(1.10), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(1.00), Demand: distauction.Fx(1.0)},
		},
	}

	for round := uint64(1); round <= 2; round++ {
		fmt.Printf("—— round %d ——\n", round)
		bids := demandByRound[round-1]
		for i, b := range bidders {
			if err := b.Submit(round, bids[i]); err != nil {
				log.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		var wg sync.WaitGroup
		for i, p := range providers {
			wg.Add(1)
			go func(i int, p *distauction.Provider) {
				defer wg.Done()
				if _, err := p.RunRound(ctx, round, &gatewayBids[i]); err != nil {
					log.Printf("gateway %d: %v", i+1, err)
				}
			}(i, p)
		}
		outcome, err := bidders[0].AwaitOutcome(ctx, round)
		wg.Wait()
		cancel()
		if err != nil {
			fmt.Printf("round %d aborted (⊥): nothing reserved, nothing paid\n", round)
			continue
		}

		// The external mechanism: settle payments and create reservations.
		if err := enforcer.Enforce(round, outcome, households, gatewayIDs); err != nil {
			log.Fatalf("enforce: %v", err)
		}
		for u, id := range households {
			if total := outcome.Alloc.UserTotal(u); total > 0 {
				fmt.Printf("  household %d: %v units reserved, paid %v (balance %v)\n",
					id, total, outcome.Pay.ByUser[u], ledger.Balance(id))
			} else {
				fmt.Printf("  household %d: no allocation this round\n", id)
			}
		}
		for g, gw := range gateways {
			fmt.Printf("  gateway %d: %v of %v units still free, earned %v total\n",
				gatewayIDs[g], gw.Available(), gw.Capacity(), ledger.Balance(gatewayIDs[g]))
		}
		fmt.Printf("  escrow surplus (McAfee): %v\n", ledger.Balance(escrow))
		for _, p := range providers {
			p.EndRound(round)
		}
		for _, b := range bidders {
			b.EndRound(round)
		}
		// End of the auction period: reservations expire before the next
		// round's outcome is enforced.
		for _, gw := range gateways {
			gw.ReleaseAll()
		}
	}

	fmt.Printf("\nledger journal: %d settled transfers, total supply %v (conserved)\n",
		len(ledger.Journal()), ledger.TotalSupply())
}
