// Bandwidth reservation in a community network — the paper's case study
// (§5.1) end to end.
//
// Five households share three Internet gateways. The gateway owners open
// long-running auction sessions that run one round per auction period; the
// households stream their shifting demand into the rounds and read the
// outcomes from a channel. Each accepted outcome settles atomically on a
// credit ledger and turns into token-bucket shaped reservations on the
// gateways. An aborted round moves no money and reserves nothing — that is
// the "external mechanism" that makes honest participation an equilibrium.
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"
	"time"

	"distauction"
)

const escrow = distauction.NodeID(999)

func main() {
	hub := distauction.NewHub(distauction.CommunityNetModel(), 7)
	defer hub.Close()

	top := distauction.Topology{
		Providers: []distauction.NodeID{1, 2, 3},                 // gateway owners
		Users:     []distauction.NodeID{100, 101, 102, 103, 104}, // households
	}
	const rounds = 2

	// The community credit ledger: every member starts with 50 credits.
	ledger := distauction.NewLedger()
	ledger.Open(escrow)
	for _, id := range append(append([]distauction.NodeID{}, top.Providers...), top.Users...) {
		ledger.Open(id)
	}
	for _, id := range top.Users {
		if err := ledger.Deposit(id, distauction.Fx(50)); err != nil {
			log.Fatal(err)
		}
	}

	// The physical gateways with their uplink capacities (units/s).
	gateways := []*distauction.Gateway{
		distauction.NewGateway(1, distauction.Fx(4)),
		distauction.NewGateway(2, distauction.Fx(3)),
		distauction.NewGateway(3, distauction.Fx(2)),
	}
	enforcer := &distauction.Enforcer{
		Ledger: ledger, Gateways: gateways, Escrow: escrow, TTL: time.Hour,
	}

	// Gateway owners' asking prices per unit of uplink.
	gatewayBids := []distauction.ProviderBid{
		{Cost: distauction.Fx(0.20), Capacity: distauction.Fx(4)},
		{Cost: distauction.Fx(0.35), Capacity: distauction.Fx(3)},
		{Cost: distauction.Fx(0.60), Capacity: distauction.Fx(2)},
	}

	// Open the gateway sessions: rounds now run on their own.
	var sessions []*distauction.Session
	for i, id := range top.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		s, err := distauction.Open(conn, top,
			distauction.WithK(1),
			distauction.WithMechanismName("double"),
			distauction.WithBidWindow(2*time.Second),
			distauction.WithProviderBid(gatewayBids[i]),
			distauction.WithRoundLimit(rounds),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		sessions = append(sessions, s)
	}
	var bidders []*distauction.BidderSession
	for _, id := range top.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b, err := distauction.OpenBidder(conn, top.Providers, distauction.WithRoundLimit(rounds))
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		bidders = append(bidders, b)
	}

	// Shifting demand: evening peak in round 2. Bids for both rounds go in
	// immediately — the sessions buffer them until each round opens.
	demandByRound := [][]distauction.UserBid{
		{
			{Value: distauction.Fx(1.10), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(0.95), Demand: distauction.Fx(1.5)},
			{Value: distauction.Fx(0.80), Demand: distauction.Fx(1.0)},
			{Value: distauction.Fx(0.70), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(0.40), Demand: distauction.Fx(3.0)},
		},
		{
			{Value: distauction.Fx(1.30), Demand: distauction.Fx(3.0)},
			{Value: distauction.Fx(1.25), Demand: distauction.Fx(2.5)},
			{Value: distauction.Fx(1.20), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(1.10), Demand: distauction.Fx(2.0)},
			{Value: distauction.Fx(1.00), Demand: distauction.Fx(1.0)},
		},
	}
	for round := uint64(1); round <= rounds; round++ {
		for i, b := range bidders {
			if err := b.Submit(round, demandByRound[round-1][i]); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The gateway daemons drain their own outcome streams; households other
	// than the narrator do the same.
	for _, s := range sessions {
		go func(s *distauction.Session) {
			for range s.Outcomes() {
			}
		}(s)
	}
	for _, b := range bidders[1:] {
		go func(b *distauction.BidderSession) {
			for range b.Outcomes() {
			}
		}(b)
	}

	// The external mechanism, driven by the outcome stream: settle payments
	// and create reservations per accepted round; an aborted round changes
	// nothing.
	for out := range bidders[0].Outcomes() {
		fmt.Printf("—— round %d ——\n", out.Round)
		if out.Err != nil {
			fmt.Printf("round %d aborted (⊥): nothing reserved, nothing paid\n", out.Round)
			continue
		}
		if err := enforcer.Enforce(out.Round, out.Outcome, top.Users, top.Providers); err != nil {
			log.Fatalf("enforce: %v", err)
		}
		for u, id := range top.Users {
			if total := out.Outcome.Alloc.UserTotal(u); total > 0 {
				fmt.Printf("  household %d: %v units reserved, paid %v (balance %v)\n",
					id, total, out.Outcome.Pay.ByUser[u], ledger.Balance(id))
			} else {
				fmt.Printf("  household %d: no allocation this round\n", id)
			}
		}
		for g, gw := range gateways {
			fmt.Printf("  gateway %d: %v of %v units still free, earned %v total\n",
				top.Providers[g], gw.Available(), gw.Capacity(), ledger.Balance(top.Providers[g]))
		}
		fmt.Printf("  escrow surplus (McAfee): %v\n", ledger.Balance(escrow))
		// End of the auction period: reservations expire before the next
		// round's outcome is enforced.
		for _, gw := range gateways {
			gw.ReleaseAll()
		}
	}

	fmt.Printf("\nledger journal: %d settled transfers, total supply %v (conserved)\n",
		len(ledger.Journal()), ledger.TotalSupply())
}
