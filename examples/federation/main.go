// A sharded marketplace federation: many provider committees, one market.
//
// One committee can only push so many auctions — every provider carries
// every session. Here the catalog is partitioned over two provider
// committees ("metro-east" and "metro-west" shards) behind a single
// federated façade: placement is deterministic (pins or rendezvous
// hashing, predictable by any participant), each household keeps ONE
// network attachment and bids on auctions of both shards through it, and
// the two shards settle into one shared credit ledger atomically — a
// cross-shard round either commits on every shard or releases every
// reservation.
//
// The households are funded for only part of the schedule, so the run
// shows both halves of two-phase settlement: early rounds commit on both
// shards; once a balance can no longer cover both legs, the settler
// reserves on one shard, fails on the other, and releases the first —
// no round ever half-settles.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"distauction"
)

const escrow = distauction.NodeID(999)

func main() {
	hub := distauction.NewHub(distauction.CommunityNetModel(), 11)
	defer hub.Close()

	// Two disjoint 3-provider committees; one shared settlement ledger.
	shards := []distauction.ShardSpec{
		{Index: 1, Providers: []distauction.NodeID{1, 2, 3}}, // metro-east
		{Index: 2, Providers: []distauction.NodeID{4, 5, 6}}, // metro-west
	}
	households := []distauction.NodeID{101, 102, 103}
	const rounds = 6

	ledger := distauction.NewLedger()
	ledger.Open(escrow)
	gateways := map[int][]*distauction.Gateway{}
	for _, sh := range shards {
		for _, id := range sh.Providers {
			ledger.Open(id)
			gateways[sh.Index] = append(gateways[sh.Index], distauction.NewGateway(id, distauction.Fx(50)))
		}
	}
	// Funded for roughly half the schedule: commits first, then aborts.
	for _, id := range households {
		ledger.Open(id)
		if err := ledger.Deposit(id, distauction.Fx(12)); err != nil {
			log.Fatal(err)
		}
	}
	supply0 := ledger.TotalSupply()

	// One federated market over the whole fleet. The outcome callback fires
	// once per round of every auction, after cross-shard settlement.
	type key struct {
		name  string
		round uint64
	}
	var outMu sync.Mutex
	accepted := map[key]bool{}
	fed, err := distauction.OpenFederation(hub, shards,
		distauction.WithFederationOnOutcome(func(name string, shard int, out distauction.RoundOutcome) {
			outMu.Lock()
			accepted[key{name, out.Round}] = out.Err == nil
			outMu.Unlock()
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	// Placement is deterministic: any participant can predict a name's
	// shard from the shard set alone.
	for _, name := range []string{"compute", "bandwidth", "storage"} {
		fmt.Printf("router: %-9s → shard %d (local lane %d)\n",
			name, distauction.PlaceShardForName(name, []int{1, 2}), distauction.ShardLaneForName(name))
	}

	// The two markets are pinned one per shard and share settle group
	// "metro": their rounds settle together or not at all.
	auctions := []struct {
		name  string
		shard int
		cost  float64
	}{
		{"compute", 1, 0.40},
		{"bandwidth", 2, 0.25},
	}
	for _, a := range auctions {
		a := a
		err := fed.OpenAuction(distauction.FederatedAuctionSpec{
			Name:  a.name,
			Shard: a.shard,
			Users: households,
			Options: []distauction.Option{
				distauction.WithK(1),
				distauction.WithMechanismName("double"),
				distauction.WithBidWindow(10 * time.Second),
				distauction.WithRoundTimeout(time.Minute),
				distauction.WithRoundLimit(rounds),
				distauction.WithOutcomeBuffer(rounds),
			},
			MemberOptions: func(i int, _ distauction.NodeID) []distauction.Option {
				return []distauction.Option{distauction.WithProviderBid(distauction.ProviderBid{
					Cost:     distauction.Fx(a.cost * float64(i+1)),
					Capacity: distauction.Fx(10),
				})}
			},
			Enforce: &distauction.EnforceTarget{
				Ledger:   ledger,
				Gateways: gateways[a.shard],
				Escrow:   escrow,
				TTL:      time.Hour,
			},
			SettleGroup: "metro",
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Households bid on both shards' auctions through ONE attachment each.
	var wg sync.WaitGroup
	for hi, id := range households {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		fb, err := distauction.OpenFederationBidder(conn, shards)
		if err != nil {
			log.Fatal(err)
		}
		defer fb.Close()
		for _, a := range auctions {
			s, err := fb.Join(a.name,
				distauction.WithRoundLimit(rounds),
				distauction.WithRoundTimeout(time.Minute))
			if err != nil {
				log.Fatal(err)
			}
			for r := uint64(1); r <= rounds; r++ {
				bid := distauction.UserBid{
					Value:  distauction.Fx(2.0 + 0.2*float64(hi) + 0.1*float64(r)),
					Demand: distauction.Fx(1),
				}
				if err := s.Submit(r, bid); err != nil {
					log.Fatal(err)
				}
			}
			wg.Add(1)
			go func(s *distauction.BidderSession) {
				defer wg.Done()
				for range s.Outcomes() {
				}
			}(s)
		}
	}
	wg.Wait()

	// Let every committee's consumers finish settling, then report.
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		snap := fed.Stats()
		if snap.SettleCommits+snap.SettleAborts >= rounds {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	snap := fed.Stats()
	fmt.Println()
	for _, ss := range snap.PerShard {
		health := "ok"
		if !ss.Healthy {
			health = "DEGRADED"
		}
		fmt.Printf("shard %d: committee %v, %d auctions, %d rounds (%d accepted), %.1f r/s, saturation %.2f, %s\n",
			ss.Shard, ss.Committee, ss.Auctions, ss.Rounds, ss.Accepted, ss.RoundsPerSec, ss.Saturation, health)
	}
	fmt.Printf("cross-shard settlement: %d rounds committed on both shards, %d aborted and released\n",
		snap.SettleCommits, snap.SettleAborts)

	live := 0
	for _, gws := range gateways {
		for _, g := range gws {
			live += g.Live()
		}
	}
	fmt.Printf("ledger: supply %v (deposited %v), escrow retains %v surplus, %d live reservations\n",
		ledger.TotalSupply(), supply0, ledger.Balance(escrow), live)
	if ledger.TotalSupply() != supply0 {
		log.Fatal("supply not conserved")
	}
	fmt.Println("atomicity held: every round settled on both shards or on neither")
}
