// Adversarial behaviour and why it does not pay — the game-theoretic core
// of the paper, demonstrated live.
//
// Three scenarios on the same 3-provider double auction:
//
//  1. Honest round: all providers follow the protocol → outcome accepted.
//
//  2. Equivocating bidder: a user sends different bids to different
//     providers. Bid agreement resolves the slot to one of the submitted
//     values (a uniformly random leader's view), so the auction proceeds
//     and all providers still agree — lying bought the bidder nothing
//     predictable.
//
//  3. Lying provider: provider 3 reports a corrupted result digest.
//     Cross-validation catches it, the round ends in ⊥, nothing is paid:
//     the deviation earned the provider exactly zero, which is why
//     following the protocol is an equilibrium.
//
//     go run ./examples/adversarial
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"distauction"
	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/deviation"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

var (
	userBids = []auction.UserBid{
		{Value: distauction.Fx(10), Demand: distauction.Fx(1)},
		{Value: distauction.Fx(8), Demand: distauction.Fx(1)},
	}
	provBids = []auction.ProviderBid{
		{Cost: distauction.Fx(1), Capacity: distauction.Fx(5)},
		{Cost: distauction.Fx(2), Capacity: distauction.Fx(5)},
		{Cost: distauction.Fx(3), Capacity: distauction.Fx(5)},
	}
)

func main() {
	fmt.Println("scenario 1: everyone honest")
	runScenario(nil, false)

	fmt.Println("\nscenario 2: bidder 101 equivocates (bids 8 to two providers, 2 to the third)")
	runScenario(nil, true)

	fmt.Println("\nscenario 3: provider 3 lies about its computed result")
	runScenario([]deviation.Rule{{
		Match:     deviation.MatchBlock(wire.BlockTask),
		Action:    deviation.Mutate,
		Transform: deviation.FlipPayloadByte(),
	}}, false)
}

func runScenario(rules []deviation.Rule, equivocate bool) {
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	defer hub.Close()

	cfg := core.Config{
		Providers: []wire.NodeID{1, 2, 3},
		Users:     []wire.NodeID{100, 101},
		K:         1,
		Mechanism: core.DoubleAuction{},
		BidWindow: time.Second,
	}
	var providers []*core.Provider
	for _, id := range cfg.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		var tc transport.Conn = conn
		if id == 3 && rules != nil {
			tc = deviation.Wrap(conn, rules...)
		}
		p, err := core.NewProvider(tc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		providers = append(providers, p)
	}
	var bidders []*core.Bidder
	for _, id := range cfg.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		b := core.NewBidder(conn, cfg.Providers)
		defer b.Close()
		bidders = append(bidders, b)
	}

	// Submissions.
	if err := bidders[0].Submit(1, userBids[0]); err != nil {
		log.Fatal(err)
	}
	if equivocate {
		honest := userBids[1].Encode()
		lie := auction.UserBid{Value: distauction.Fx(2), Demand: distauction.Fx(1)}.Encode()
		if err := bidders[1].SubmitRaw(1, map[wire.NodeID][]byte{
			1: honest, 2: honest, 3: lie,
		}); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := bidders[1].Submit(1, userBids[1]); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	provErrs := make([]error, len(providers))
	for i, p := range providers {
		wg.Add(1)
		go func(i int, p *core.Provider) {
			defer wg.Done()
			_, provErrs[i] = p.RunRound(ctx, 1, &provBids[i])
		}(i, p)
	}
	outcome, err := bidders[0].AwaitOutcome(ctx, 1)
	wg.Wait()

	switch {
	case errors.Is(err, core.ErrOutcomeBot):
		fmt.Println("  outcome: ⊥ — the deviation was detected; nobody is allocated, nobody pays,")
		fmt.Println("  every participant's utility is 0. The deviant gained nothing.")
	case err != nil:
		fmt.Printf("  unexpected: %v\n", err)
	default:
		fmt.Println("  outcome accepted unanimously:")
		for u, id := range cfg.Users {
			fmt.Printf("    user %d: allocated %v, pays %v\n",
				id, outcome.Alloc.UserTotal(u), outcome.Pay.ByUser[u])
		}
		if equivocate {
			fmt.Println("  (the equivocated slot resolved to ONE of the submitted bids — a")
			fmt.Println("   uniformly random provider's view — so all providers still agree)")
		}
	}
}
