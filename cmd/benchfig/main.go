// Command benchfig regenerates the paper's evaluation figures (§6) and
// prints them as aligned tables.
//
//	benchfig -fig 4            # Figure 4: double auction vs n
//	benchfig -fig 5            # Figure 5: standard auction vs n
//	benchfig -rounds 20        # more repetitions per point (paper: 100)
//	benchfig -quick            # tiny sweep for a smoke run
//
// Timing methodology follows §6.1: the clock runs from bid submission until
// the client has results from every provider; each point is the mean over
// -rounds repetitions with fresh workloads. See EXPERIMENTS.md for the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"distauction/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (4 or 5; 0 = both)")
	rounds := flag.Int("rounds", 5, "repetitions per point (paper used 100)")
	quick := flag.Bool("quick", false, "shrink the sweep for a smoke run")
	seed := flag.Uint64("seed", 1, "base workload seed")
	flag.Parse()

	if err := run(*fig, *rounds, *quick, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(fig, rounds int, quick bool, seed uint64) error {
	opts := figures.Options{Rounds: rounds, Quick: quick, BaseSeed: seed}
	if fig == 0 || fig == 4 {
		fmt.Println("Figure 4 — double auction running time (seconds) vs users")
		fmt.Println("(paper: Fig. 4, m=8 market providers; distributed series use the")
		fmt.Println(" minimum provider counts 3/5/8 for k=1/2/3 as in §6.2)")
		fmt.Println()
		pts, err := figures.Fig4(opts)
		if err != nil {
			return err
		}
		if err := figures.WriteFig4(os.Stdout, pts); err != nil {
			return err
		}
		fmt.Println()
	}
	if fig == 0 || fig == 5 {
		fmt.Println("Figure 5 — standard auction running time (seconds) vs users")
		fmt.Println("(paper: Fig. 5, m=8; p = ⌊m/(k+1)⌋ parallel payment groups;")
		fmt.Println(" compute time modeled per EXPERIMENTS.md on this host)")
		fmt.Println()
		pts, err := figures.Fig5(opts)
		if err != nil {
			return err
		}
		if err := figures.WriteFig5(os.Stdout, pts); err != nil {
			return err
		}
		fmt.Println()
	}
	if fig != 0 && fig != 4 && fig != 5 {
		return fmt.Errorf("unknown figure %d (want 4 or 5)", fig)
	}
	return nil
}
