// Command marketd runs the marketplace layer: many named auctions
// multiplexed over one shared transport attachment per node.
//
// Two modes:
//
//   - Hub demo (-hub): a self-contained in-process marketplace — m
//     provider markets, the named auctions, n bidders joined to every
//     auction — runs -rounds rounds per auction over the in-memory Hub,
//     prints the aggregate market statistics and exits. This is the
//     quickest way to see the layer work (and what CI smoke-tests):
//
//     marketd -hub -auctions alpha,beta -rounds 3
//
//   - TCP daemon (default): one provider's Market over real sockets, the
//     marketplace sibling of gatewayd. All providers run it with the same
//     deployment facts; bidders join by auction name from their own
//     processes:
//
//     marketd -id 1 -listen :7001 \
//     -providers '1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003' \
//     -users '100,101' -k 1 -auctions alpha,beta \
//     -cost 1.5 -capacity 10 -rounds 10 -secret communitynet
//
// Auctions are comma-separated names, each optionally pinning a wire lane
// as name:lane (lanes otherwise derive deterministically from the name).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"distauction/internal/auction"
	"distauction/internal/cliutil"
	"distauction/internal/core"
	"distauction/internal/federation"
	"distauction/internal/fixed"
	"distauction/internal/market"
	"distauction/internal/metrics"
	"distauction/internal/trace"
	"distauction/internal/transport"
	"distauction/internal/transport/faultnet"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

func main() {
	hubMode := flag.Bool("hub", false, "run a self-contained in-memory marketplace demo and exit")
	auctionsFlag := flag.String("auctions", "alpha,beta", "auction names, comma separated (name or name:lane)")
	rounds := flag.Uint64("rounds", 3, "rounds per auction (0 = until interrupted; hub mode requires > 0)")
	k := flag.Int("k", 1, "coalition bound")
	pipeline := flag.Int("pipeline", 2, "rounds in flight per auction")
	bidWindow := flag.Duration("bid-window", 5*time.Second, "bid collection window")
	roundTimeout := flag.Duration("round-timeout", 2*time.Minute, "per-round deadline")

	// Hub demo knobs.
	m := flag.Int("m", 3, "hub mode: number of providers (per shard when -shards > 1)")
	n := flag.Int("n", 4, "hub mode: number of bidders (joined to every auction)")
	seed := flag.Uint64("seed", 1, "hub mode: workload seed")
	shards := flag.Int("shards", 1, "hub mode: partition the catalog over this many provider committees")
	chaos := flag.Bool("chaos", false, "hub mode: inject transport faults (frame drops + periodic conn kills) under the resilience layer")
	chaosDrop := flag.Float64("chaos-drop", 0.01, "chaos: per-frame drop probability on every link")
	chaosKill := flag.Duration("chaos-kill", 2*time.Second, "chaos: kill one node's connections at this interval, round-robin (0 = never)")

	// TCP daemon knobs.
	id := flag.Uint("id", 0, "tcp mode: this provider's node id")
	listen := flag.String("listen", ":0", "tcp mode: listen address")
	providersFlag := flag.String("providers", "", "tcp mode: provider set, id=host:port comma separated")
	usersFlag := flag.String("users", "", "tcp mode: user bidder ids, comma separated")
	cost := flag.String("cost", "1", "tcp mode: own unit cost (double auction)")
	capacity := flag.String("capacity", "10", "tcp mode: own capacity (double auction)")
	secret := flag.String("secret", "", "tcp mode: shared master secret for HMAC keys")

	// Runtime observability knobs (both modes).
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	statsEvery := flag.Duration("runtime-stats", 0, "print a runtime stats line (heap, goroutines, GC) at this interval (0 = off)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/trace on this address (empty = off)")
	traceOn := flag.Bool("trace", true, "record round-pipeline spans and the flight recorder")
	slowRound := flag.Duration("slow-round", 0, "flight-dump rounds slower than this (0 = aborts only)")
	flag.Parse()

	startDiagnostics(*pprofAddr, *statsEvery)
	trace.SetEnabled(*traceOn)
	trace.SetSlowRound(*slowRound)

	var plan *chaosPlan
	if *chaos {
		plan = &chaosPlan{drop: *chaosDrop, kill: *chaosKill}
	}
	specs, err := parseAuctions(*auctionsFlag)
	if err == nil {
		if plan != nil && !*hubMode {
			err = fmt.Errorf("-chaos requires -hub (TCP deployments get real faults for free)")
		} else if *hubMode && *shards > 1 {
			err = runHubFederated(specs, *shards, *m, *n, *k, *pipeline, *rounds, *seed, *bidWindow, *roundTimeout, *metricsAddr, plan)
		} else if *hubMode {
			err = runHub(specs, *m, *n, *k, *pipeline, *rounds, *seed, *bidWindow, *roundTimeout, *metricsAddr, plan)
		} else {
			err = runTCP(specs, uint32(*id), *listen, *providersFlag, *usersFlag, *k, *pipeline,
				*rounds, *cost, *capacity, *bidWindow, *roundTimeout, *secret, *metricsAddr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "marketd:", err)
		os.Exit(1)
	}
}

// holdForScrape keeps a finished hub demo alive until interrupted when an
// export plane is being served, so scrapers (and the CI smoke) can read the
// final /metrics and /debug/trace of the completed run.
func holdForScrape(metricsAddr string) {
	if metricsAddr == "" {
		return
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	fmt.Println("marketd: run complete; serving metrics until interrupted")
	s := <-sigs
	fmt.Printf("marketd: %v: shutting down\n", s)
}

// startDiagnostics wires the optional runtime observability: a pprof HTTP
// endpoint (profiles pick up the session/taskgraph worker labels) and a
// periodic one-line runtime stats print. Both run for the life of the
// process — marketd exits by returning from main, so neither needs a stop
// path.
func startDiagnostics(pprofAddr string, statsEvery time.Duration) {
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "marketd: pprof:", err)
			}
		}()
		fmt.Printf("marketd: pprof on http://%s/debug/pprof/\n", pprofAddr)
	}
	if statsEvery > 0 {
		go func() {
			tick := time.NewTicker(statsEvery)
			defer tick.Stop()
			for range tick.C {
				fmt.Fprintln(os.Stderr, "marketd:", metrics.ReadRuntime().String())
			}
		}()
	}
}

// namedLane is one -auctions entry: a name with an optional pinned lane.
type namedLane struct {
	name string
	lane uint32
}

func parseAuctions(s string) ([]namedLane, error) {
	var specs []namedLane
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nl := namedLane{name: part}
		if name, laneStr, ok := strings.Cut(part, ":"); ok {
			lane, err := strconv.ParseUint(laneStr, 10, 32)
			if err != nil || lane == 0 || lane > wire.MaxLane {
				return nil, fmt.Errorf("auction %q: lane must be in [1,%d]", part, wire.MaxLane)
			}
			nl = namedLane{name: name, lane: uint32(lane)}
		}
		specs = append(specs, nl)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no auctions given")
	}
	return specs, nil
}

func sessionOpts(k, pipeline int, rounds uint64, bidWindow, roundTimeout time.Duration, bid auction.ProviderBid) []core.SessionOption {
	opts := []core.SessionOption{
		core.WithK(k),
		core.WithMechanismName("double"),
		core.WithBidWindow(bidWindow),
		core.WithRoundTimeout(roundTimeout),
		core.WithMaxConcurrentRounds(pipeline),
		core.WithProviderBid(bid),
	}
	if rounds > 0 {
		opts = append(opts, core.WithRoundLimit(rounds), core.WithOutcomeBuffer(int(min(rounds, 1024))))
	}
	return opts
}

// chaosPlan is the -chaos flag group: frame drops plus a round-robin
// connection killer, injected beneath the resilience layer so the demo
// exercises the heartbeat/ARQ machinery instead of aborting.
type chaosPlan struct {
	drop float64
	kill time.Duration
}

// wrap stacks faultnet and the resilience layer over the demo hub and
// starts the killer. The returned network owns the whole stack (its Close
// closes the hub too); stop halts the killer.
func (p *chaosPlan) wrap(hub *transport.Hub, seed uint64, victims []wire.NodeID) (transport.Network, func()) {
	fn := faultnet.Wrap(hub, faultnet.Config{
		Seed:    int64(seed),
		Default: faultnet.Profile{Drop: p.drop},
	})
	net := transport.Resilient(fn, transport.ResilientConfig{})
	stop := func() {}
	if p.kill > 0 && len(victims) > 0 {
		done := make(chan struct{})
		go func() {
			tick := time.NewTicker(p.kill)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				case <-tick.C:
					fn.Kill(victims[i%len(victims)])
				}
			}
		}()
		var once sync.Once
		stop = func() { once.Do(func() { close(done) }) }
	}
	fmt.Printf("marketd: chaos on — %.2g%% frame drop, conn-kill every %v\n", p.drop*100, p.kill)
	return net, stop
}

// runHub is the self-contained demo: everything in one process over the
// in-memory Hub with the community-network latency model.
func runHub(specs []namedLane, m, n, k, pipeline int, rounds, seed uint64,
	bidWindow, roundTimeout time.Duration, metricsAddr string, chaos *chaosPlan) error {
	if rounds == 0 {
		return fmt.Errorf("hub mode needs -rounds > 0")
	}
	hub := transport.NewHub(transport.CommunityNetModel(), int64(seed))

	providerIDs := make([]wire.NodeID, m)
	for i := range providerIDs {
		providerIDs[i] = wire.NodeID(i + 1)
	}
	userIDs := make([]wire.NodeID, n)
	for i := range userIDs {
		userIDs[i] = wire.NodeID(1001 + i)
	}
	insts := make([]workload.DoubleAuctionInstance, len(specs))
	for j := range specs {
		insts[j] = workload.NewDoubleAuction(seed+uint64(j)*104729, n, m)
	}

	var net transport.Network = hub
	if chaos != nil {
		wrapped, stop := chaos.wrap(hub, seed, append(append([]wire.NodeID{}, providerIDs...), userIDs...))
		defer stop()
		net = wrapped
	}
	defer net.Close()

	// The demo bidders submit every round's bid up front, so the admission
	// window must span the whole run or the tail rounds degrade to neutral
	// bids (a paced client would track the outcome stream instead).
	window := int(min(rounds+uint64(pipeline)+2, 1<<20))
	markets := make([]*market.Market, m)
	for i, pid := range providerIDs {
		conn, err := net.Attach(pid)
		if err != nil {
			return err
		}
		mk, err := market.Open(conn, providerIDs, market.WithAdmissionWindow(window))
		if err != nil {
			return err
		}
		defer mk.Close()
		markets[i] = mk
		for j, nl := range specs {
			_, err := mk.OpenAuction(market.AuctionSpec{
				Name:    nl.name,
				Lane:    nl.lane,
				Users:   userIDs,
				Options: sessionOpts(k, pipeline, rounds, bidWindow, roundTimeout, insts[j].Providers[i]),
			})
			if err != nil {
				return err
			}
		}
	}
	fmt.Printf("marketd: hub demo — %d auctions × %d providers × %d bidders, %d rounds each\n",
		len(specs), m, n, rounds)
	if metricsAddr != "" {
		stop, err := startExporter(metricsAddr, exporter{market: markets[0].Stats})
		if err != nil {
			return err
		}
		defer stop()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, n*len(specs))
	for i, uid := range userIDs {
		conn, err := net.Attach(uid)
		if err != nil {
			return err
		}
		mb, err := market.NewBidder(conn, providerIDs)
		if err != nil {
			return err
		}
		defer mb.Close()
		for j, nl := range specs {
			s, err := mb.JoinLane(nl.name, laneOf(nl),
				core.WithRoundLimit(rounds),
				core.WithRoundTimeout(roundTimeout))
			if err != nil {
				return err
			}
			wg.Add(1)
			go func(i, j int, name string, s *core.BidderSession) {
				defer wg.Done()
				for r := uint64(1); r <= rounds; r++ {
					if err := s.Submit(r, insts[j].Users[i]); err != nil {
						errCh <- fmt.Errorf("%s: submit: %w", name, err)
						return
					}
				}
				seen := uint64(0)
				for out := range s.Outcomes() {
					seen++
					if out.Err != nil {
						errCh <- fmt.Errorf("%s round %d: %w", name, out.Round, out.Err)
						return
					}
				}
				if seen != rounds {
					errCh <- fmt.Errorf("%s: saw %d of %d rounds", name, seen, rounds)
				}
			}(i, j, nl.name, s)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	// Wait for the provider-side consumers, then print the market table.
	want := int64(len(specs)) * int64(rounds)
	deadline := time.Now().Add(roundTimeout)
	for markets[0].Stats().Rounds < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	printStats(markets[0].Stats())
	printFlightDumps()
	holdForScrape(metricsAddr)
	return nil
}

// runHubFederated is the sharded demo: the same catalog partitioned over
// `shards` disjoint provider committees of m nodes each behind one
// federated façade, bidders joined through one attachment apiece.
func runHubFederated(specs []namedLane, shards, m, n, k, pipeline int, rounds, seed uint64,
	bidWindow, roundTimeout time.Duration, metricsAddr string, chaos *chaosPlan) error {
	if rounds == 0 {
		return fmt.Errorf("hub mode needs -rounds > 0")
	}
	if shards > federation.MaxShards {
		return fmt.Errorf("-shards %d exceeds the %d-shard lane band", shards, federation.MaxShards)
	}
	hub := transport.NewHub(transport.CommunityNetModel(), int64(seed))

	fedSpecs := make([]federation.ShardSpec, shards)
	var committeeIDs []wire.NodeID
	for s := range fedSpecs {
		committee := make([]wire.NodeID, m)
		for i := range committee {
			committee[i] = wire.NodeID(s*m + i + 1)
		}
		fedSpecs[s] = federation.ShardSpec{Index: s + 1, Providers: committee}
		committeeIDs = append(committeeIDs, committee...)
	}
	userIDs := make([]wire.NodeID, n)
	for i := range userIDs {
		userIDs[i] = wire.NodeID(1001 + i)
	}

	var net transport.Network = hub
	if chaos != nil {
		wrapped, stop := chaos.wrap(hub, seed, append(committeeIDs, userIDs...))
		defer stop()
		net = wrapped
	}
	defer net.Close()

	window := int(min(rounds+uint64(pipeline)+2, 1<<20))
	fed, err := federation.Open(net, fedSpecs,
		federation.WithMarketOptions(market.WithAdmissionWindow(window)))
	if err != nil {
		return err
	}
	defer fed.Close()

	insts := make([]workload.DoubleAuctionInstance, len(specs))
	for j, nl := range specs {
		if nl.lane > federation.MaxLocalLane {
			return fmt.Errorf("auction %q: sharded lanes are local, max %d", nl.name, federation.MaxLocalLane)
		}
		inst := workload.NewDoubleAuction(seed+uint64(j)*104729, n, m)
		insts[j] = inst
		err := fed.OpenAuction(federation.AuctionSpec{
			Name:      nl.name,
			LocalLane: nl.lane, // 0 derives; placement is routed
			Users:     userIDs,
			Options: []core.SessionOption{
				core.WithK(k),
				core.WithMechanismName("double"),
				core.WithBidWindow(bidWindow),
				core.WithRoundTimeout(roundTimeout),
				core.WithMaxConcurrentRounds(pipeline),
				core.WithRoundLimit(rounds),
				core.WithOutcomeBuffer(int(min(rounds, 1024))),
			},
			MemberOptions: func(i int, _ wire.NodeID) []core.SessionOption {
				return []core.SessionOption{core.WithProviderBid(inst.Providers[i])}
			},
		})
		if err != nil {
			return err
		}
	}
	fmt.Printf("marketd: federated hub demo — %d auctions over %d shards × %d providers, %d bidders, %d rounds each\n",
		len(specs), shards, m, n, rounds)
	if metricsAddr != "" {
		stop, err := startExporter(metricsAddr, exporter{fed: fed.Stats})
		if err != nil {
			return err
		}
		defer stop()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, n*len(specs))
	for i, uid := range userIDs {
		conn, err := net.Attach(uid)
		if err != nil {
			return err
		}
		fb, err := federation.NewBidder(conn, fedSpecs)
		if err != nil {
			return err
		}
		defer fb.Close()
		for j, nl := range specs {
			shard, lane, err := fed.Place(nl.name)
			if err != nil {
				return err
			}
			_, local := federation.SplitLane(lane)
			s, err := fb.JoinOn(nl.name, shard, local,
				core.WithRoundLimit(rounds),
				core.WithRoundTimeout(roundTimeout))
			if err != nil {
				return err
			}
			wg.Add(1)
			go func(i, j int, name string, s *core.BidderSession) {
				defer wg.Done()
				for r := uint64(1); r <= rounds; r++ {
					if err := s.Submit(r, insts[j].Users[i]); err != nil {
						errCh <- fmt.Errorf("%s: submit: %w", name, err)
						return
					}
				}
				seen := uint64(0)
				for out := range s.Outcomes() {
					seen++
					if out.Err != nil {
						errCh <- fmt.Errorf("%s round %d: %w", name, out.Round, out.Err)
						return
					}
				}
				if seen != rounds {
					errCh <- fmt.Errorf("%s: saw %d of %d rounds", name, seen, rounds)
				}
			}(i, j, nl.name, s)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	// Wait for every committee member's consumer, then print the rollup.
	want := int64(len(specs)) * int64(rounds) * int64(m)
	deadline := time.Now().Add(roundTimeout)
	for time.Now().Before(deadline) {
		var got int64
		for _, ns := range fed.Stats().PerNode {
			got += ns.Rounds
		}
		if got >= want {
			break
		}
		time.Sleep(time.Millisecond)
	}
	printFederationStats(fed.Stats())
	printFlightDumps()
	holdForScrape(metricsAddr)
	return nil
}

// printFederationStats renders the per-shard rollup table.
func printFederationStats(snap federation.Snapshot) {
	rows := make([]metrics.Row, 0, len(snap.PerShard)+1)
	for _, ss := range snap.PerShard {
		health := "ok"
		if !ss.Healthy {
			health = "DEGRADED"
		}
		rows = append(rows, metrics.Row{Label: fmt.Sprintf("shard %d", ss.Shard), Cols: []string{
			fmt.Sprintf("%d", len(ss.Committee)),
			fmt.Sprintf("%d", ss.Auctions),
			fmt.Sprintf("%d", ss.Rounds),
			fmt.Sprintf("%d", ss.Accepted),
			fmt.Sprintf("%d", ss.Aborted),
			fmt.Sprintf("%.1f", ss.RoundsPerSec),
			fmt.Sprintf("%d", ss.BidsDropped),
			fmt.Sprintf("%.2f", ss.Saturation),
			health,
		}})
	}
	rows = append(rows, metrics.Row{Label: "TOTAL", Cols: []string{
		"-",
		fmt.Sprintf("%d", snap.Auctions),
		fmt.Sprintf("%d", snap.Rounds),
		fmt.Sprintf("%d", snap.Accepted),
		fmt.Sprintf("%d", snap.Aborted),
		fmt.Sprintf("%.1f", snap.RoundsPerSec),
		fmt.Sprintf("%d", snap.BidsDropped),
		"-",
		"-",
	}})
	fmt.Print(metrics.Table(
		metrics.Row{Label: "shard", Cols: []string{"m", "auctions", "rounds", "ok", "⊥", "r/s", "dropped", "sat", "health"}},
		rows))
	if snap.SettleCommits+snap.SettleAborts+snap.SettleErrs > 0 {
		fmt.Printf("cross-shard settle: %d committed, %d aborted, %d errors\n",
			snap.SettleCommits, snap.SettleAborts, snap.SettleErrs)
	}
}

func laneOf(nl namedLane) uint32 {
	if nl.lane != 0 {
		return nl.lane
	}
	return market.LaneForName(nl.name)
}

func printStats(snap market.Snapshot) {
	rows := make([]metrics.Row, 0, len(snap.Auctions)+1)
	for _, a := range snap.Auctions {
		rows = append(rows, metrics.Row{Label: a.Name, Cols: []string{
			fmt.Sprintf("%d", a.Lane),
			fmt.Sprintf("%d", a.Rounds),
			fmt.Sprintf("%d", a.Accepted),
			fmt.Sprintf("%d", a.Aborted),
			fmt.Sprintf("%.1f", a.RoundsPerSec),
			fmt.Sprintf("%d", a.BidsAdmitted),
			fmt.Sprintf("%d", a.BidsDropped),
			fmt.Sprintf("%d", a.QueueDepth),
		}})
	}
	rows = append(rows, metrics.Row{Label: "TOTAL", Cols: []string{
		"-",
		fmt.Sprintf("%d", snap.Rounds),
		fmt.Sprintf("%d", snap.Accepted),
		fmt.Sprintf("%d", snap.Aborted),
		fmt.Sprintf("%.1f", snap.RoundsPerSec),
		fmt.Sprintf("%d", snap.BidsAdmitted),
		fmt.Sprintf("%d", snap.BidsDropped),
		fmt.Sprintf("%d", snap.QueueDepth),
	}})
	fmt.Print(metrics.Table(
		metrics.Row{Label: "auction", Cols: []string{"lane", "rounds", "ok", "⊥", "r/s", "admitted", "dropped", "queue"}},
		rows))
}

// runTCP is one provider's market daemon over real sockets.
func runTCP(specs []namedLane, id uint32, listen, providersFlag, usersFlag string,
	k, pipeline int, rounds uint64, cost, capacity string,
	bidWindow, roundTimeout time.Duration, secret, metricsAddr string) error {

	peerAddrs, providerIDs, err := cliutil.ParseAddrMap(providersFlag)
	if err != nil {
		return fmt.Errorf("providers: %w", err)
	}
	userIDs, err := cliutil.ParseIDList(usersFlag)
	if err != nil {
		return fmt.Errorf("users: %w", err)
	}
	c, err := fixed.Parse(cost)
	if err != nil {
		return fmt.Errorf("cost: %w", err)
	}
	cap_, err := fixed.Parse(capacity)
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	self := wire.NodeID(id)
	network, conn, err := cliutil.DialTCP(self, listen, peerAddrs,
		append(append([]wire.NodeID{}, providerIDs...), userIDs...), secret)
	if err != nil {
		return err
	}
	defer network.Close()

	mk, err := market.Open(conn, providerIDs,
		market.WithOnOutcome(func(name string, out core.RoundOutcome) {
			if out.Err == nil {
				fmt.Printf("%s round %d: accepted, paid=%v\n", name, out.Round, out.Outcome.Pay.TotalPaid())
			} else {
				fmt.Printf("%s round %d: ⊥: %v\n", name, out.Round, out.Err)
			}
		}))
	if err != nil {
		return err
	}
	defer mk.Close()
	bid := auction.ProviderBid{Cost: c, Capacity: cap_}
	for _, nl := range specs {
		_, err := mk.OpenAuction(market.AuctionSpec{
			Name:    nl.name,
			Lane:    nl.lane,
			Users:   userIDs,
			Options: sessionOpts(k, pipeline, rounds, bidWindow, roundTimeout, bid),
		})
		if err != nil {
			return err
		}
	}
	fmt.Printf("marketd: provider %d serving %d auctions (m=%d, k=%d): %s\n",
		id, len(specs), len(providerIDs), k, strings.Join(names(specs), ", "))
	if metricsAddr != "" {
		stop, err := startExporter(metricsAddr, exporter{market: mk.Stats})
		if err != nil {
			return err
		}
		defer stop()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if rounds > 0 {
		// Finite run: wait until every auction's rounds completed (or an
		// interrupt), then print the stats table.
		want := int64(len(specs)) * int64(rounds)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for mk.Stats().Rounds < want {
			select {
			case s := <-sigs:
				return shutdownMarket(mk, specs, s, roundTimeout)
			case <-tick.C:
			}
		}
		printStats(mk.Stats())
		printFlightDumps()
		return nil
	}
	return shutdownMarket(mk, specs, <-sigs, roundTimeout)
}

// shutdownMarket is the graceful SIGINT/SIGTERM path: stop admitting, let
// every auction's in-flight rounds complete (bounded by the round timeout),
// then report the final stats and whatever the flight recorder holds. The
// deferred Close in runTCP tears the transport down afterwards.
func shutdownMarket(mk *market.Market, specs []namedLane, s os.Signal, roundTimeout time.Duration) error {
	fmt.Printf("marketd: %v: draining %d auction(s)\n", s, len(specs))
	// Snapshot before draining: DrainAuction removes each auction from the
	// market, and removed auctions no longer contribute to Stats().
	snap := mk.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), roundTimeout)
	defer cancel()
	for _, nl := range specs {
		if err := mk.DrainAuction(ctx, nl.name); err != nil {
			fmt.Printf("marketd: drain %s: %v\n", nl.name, err)
		}
	}
	printStats(snap)
	printFlightDumps()
	return nil
}

func names(specs []namedLane) []string {
	out := make([]string, len(specs))
	for i, nl := range specs {
		out[i] = nl.name
	}
	return out
}
