package main

// The export plane: a small HTTP server publishing the marketplace's
// observability surfaces — Prometheus-text /metrics (counters, typed abort
// breakdowns, per-auction and per-shard latency quantiles, phase-duration
// quantiles) and /debug/trace (the flight recorder's ring contents and
// dumps as JSON). Everything is computed on demand from the same Stats()
// snapshots the tables print, so scraping costs nothing between requests.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"distauction/internal/federation"
	"distauction/internal/market"
	"distauction/internal/metrics"
	"distauction/internal/proto"
	"distauction/internal/trace"
	"distauction/internal/transport"
)

// exporter adapts whichever deployment is running — one market or a
// federation — to the export handlers. Exactly one source is non-nil.
type exporter struct {
	market func() market.Snapshot
	fed    func() federation.Snapshot
}

// quantiles reported for every latency summary.
var exportQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}}

// startExporter serves /metrics and /debug/trace on addr and returns a
// shutdown func. The listener binds synchronously so a bad address fails
// startup instead of surfacing on first scrape.
func startExporter(addr string, ex exporter) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, ex)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeTrace(w)
	})
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("marketd: metrics server: %v\n", err)
		}
	}()
	fmt.Printf("marketd: metrics on http://%s/metrics, flight recorder on /debug/trace\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// writeMetrics renders the Prometheus text exposition.
func writeMetrics(w io.Writer, ex exporter) {
	if ex.market != nil {
		snap := ex.market()
		writeCounter(w, "distauction_rounds_total", "Rounds completed across all auctions.", snap.Rounds)
		writeCounter(w, "distauction_rounds_accepted_total", "Non-bottom rounds.", snap.Accepted)
		writeCounter(w, "distauction_rounds_aborted_total", "Bottom rounds.", snap.Aborted)
		writeCounter(w, "distauction_bids_admitted_total", "Bids admitted by the gates.", snap.BidsAdmitted)
		writeCounter(w, "distauction_bids_dropped_total", "Bids dropped at the gates.", snap.BidsDropped)
		writeCounter(w, "distauction_frames_sent_total", "Outbound frames shipped by the coalescer.", snap.FramesSent)
		writeCounter(w, "distauction_envelopes_sent_total", "Envelopes those frames carried.", snap.EnvelopesSent)
		writeLink(w, snap.Link)
		writePeerHealth(w, snap.PeerHealth)
		writeAbortCodes(w, "", snap.AbortCodes)
		fmt.Fprintln(w, "# HELP distauction_outcome_latency_seconds Outcome latency, bid collection through delivery.")
		fmt.Fprintln(w, "# TYPE distauction_outcome_latency_seconds summary")
		writeSummary(w, "distauction_outcome_latency_seconds", `auction="_all"`, snap.Latency)
		for _, as := range snap.Auctions {
			writeSummary(w, "distauction_outcome_latency_seconds", fmt.Sprintf("auction=%q", as.Name), as.Latency)
		}
		writeRuntime(w, snap.Runtime)
	}
	if ex.fed != nil {
		snap := ex.fed()
		writeCounter(w, "distauction_rounds_total", "Rounds completed across all shards.", snap.Rounds)
		writeCounter(w, "distauction_rounds_accepted_total", "Non-bottom rounds.", snap.Accepted)
		writeCounter(w, "distauction_rounds_aborted_total", "Bottom rounds.", snap.Aborted)
		writeCounter(w, "distauction_bids_admitted_total", "Bids admitted by the gates.", snap.BidsAdmitted)
		writeCounter(w, "distauction_bids_dropped_total", "Bids dropped at the gates.", snap.BidsDropped)
		writeCounter(w, "distauction_settle_commits_total", "Cross-shard rounds settled atomically.", snap.SettleCommits)
		writeCounter(w, "distauction_settle_aborts_total", "Cross-shard rounds aborted and released.", snap.SettleAborts)
		writeLink(w, snap.Link)
		writeGauge(w, "distauction_peers_dead", "Peers some attachment currently judges dead.", int64(snap.DeadPeers))
		writeAbortCodes(w, "", snap.AbortCodes)
		fmt.Fprintln(w, "# HELP distauction_shard_outcome_latency_seconds Per-shard outcome latency.")
		fmt.Fprintln(w, "# TYPE distauction_shard_outcome_latency_seconds summary")
		writeSummary(w, "distauction_shard_outcome_latency_seconds", `shard="_all"`, snap.Latency)
		for _, ss := range snap.PerShard {
			writeSummary(w, "distauction_shard_outcome_latency_seconds", fmt.Sprintf(`shard="%d"`, ss.Shard), ss.Latency)
		}
		fmt.Fprintln(w, "# HELP distauction_settle_latency_seconds Two-phase settlement latency, barrier release to completion.")
		fmt.Fprintln(w, "# TYPE distauction_settle_latency_seconds summary")
		writeSummary(w, "distauction_settle_latency_seconds", "", snap.SettleLatency)
		writeRuntime(w, snap.Runtime)
	}

	// Phase-duration summaries come from the trace layer and fill in only
	// while tracing is on; the series still exist (at zero) when it is off,
	// so dashboards need no conditional queries.
	enabled := int64(0)
	if trace.Enabled() {
		enabled = 1
	}
	writeGauge(w, "distauction_trace_enabled", "1 while span tracing is on.", enabled)
	fmt.Fprintln(w, "# HELP distauction_phase_duration_seconds Span duration by round-pipeline phase (traced only).")
	fmt.Fprintln(w, "# TYPE distauction_phase_duration_seconds summary")
	durs := trace.PhaseDurations()
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		writeSummary(w, "distauction_phase_duration_seconds", fmt.Sprintf("phase=%q", ph.String()), durs[ph])
	}
	writeGauge(w, "distauction_trace_dumps", "Flight-recorder dumps retained.", int64(len(trace.Dumps())))
}

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// writeLink emits the resilience layer's ARQ counters. All zero when no
// resilience layer is stacked under the deployment.
func writeLink(w io.Writer, ls transport.LinkStats) {
	writeCounter(w, "distauction_reconnects_total", "Dead peers that came back alive (reconnect-with-resume).", ls.Reconnects)
	writeCounter(w, "distauction_link_resends_total", "Unacked link frames resent.", ls.Resends)
	writeCounter(w, "distauction_link_dups_dropped_total", "Duplicate link frames absorbed by seq dedup.", ls.DupsDropped)
	writeCounter(w, "distauction_link_overflow_total", "Unacked frames evicted by a full resend buffer.", ls.Overflow)
}

// writePeerHealth emits one gauge sample per peer the failure detector
// tracks, labelled by its current verdict.
func writePeerHealth(w io.Writer, peers []transport.PeerHealth) {
	fmt.Fprintln(w, "# HELP distauction_peer_health Failure-detector verdict per peer (1 = the labelled state).")
	fmt.Fprintln(w, "# TYPE distauction_peer_health gauge")
	for _, ph := range peers {
		fmt.Fprintf(w, "distauction_peer_health{peer=\"%d\",state=%q} 1\n", ph.Peer, ph.State.String())
	}
}

// writeAbortCodes emits the typed ⊥ breakdown as one counter per cause.
func writeAbortCodes(w io.Writer, labels string, codes [proto.NumAbortCodes]int64) {
	fmt.Fprintln(w, "# HELP distauction_aborts_total Bottom rounds by typed cause.")
	fmt.Fprintln(w, "# TYPE distauction_aborts_total counter")
	for c := proto.AbortCode(0); c < proto.NumAbortCodes; c++ {
		sep := ""
		if labels != "" {
			sep = ","
		}
		fmt.Fprintf(w, "distauction_aborts_total{%s%scode=%q} %d\n", labels, sep, c.String(), codes[c])
	}
}

// writeSummary emits one histogram as a Prometheus summary: the export
// quantiles plus _sum and _count. Values are stored in nanoseconds;
// exported in seconds per convention.
func writeSummary(w io.Writer, name, labels string, h metrics.HistogramSnapshot) {
	for _, eq := range exportQuantiles {
		sep := ""
		if labels != "" {
			sep = ","
		}
		fmt.Fprintf(w, "%s{%s%squantile=%q} %g\n", name, labels, sep, eq.label,
			h.QuantileDuration(eq.q).Seconds())
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, time.Duration(h.Sum).Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count)
}

func writeRuntime(w io.Writer, rt metrics.RuntimeStats) {
	writeGauge(w, "distauction_goroutines", "Current goroutine count.", int64(rt.Goroutines))
	writeGauge(w, "distauction_heap_alloc_bytes", "Live heap bytes.", int64(rt.HeapAlloc))
	writeCounter(w, "distauction_gc_pause_ns_total", "Cumulative stop-the-world pause time.", int64(rt.PauseTotalNs))
}

// traceView is the /debug/trace response shape.
type traceView struct {
	Enabled bool          `json:"enabled"`
	Events  []trace.Event `json:"events"`
	Dumps   []trace.Dump  `json:"dumps"`
}

func writeTrace(w io.Writer) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(traceView{
		Enabled: trace.Enabled(),
		Events:  trace.Events(),
		Dumps:   trace.Dumps(),
	})
}

// printFlightDumps renders the flight recorder's retained dumps — the
// shutdown path's last words. Each dump names the round, its fate, and
// the attributed culprit and phase.
func printFlightDumps() {
	dumps := trace.Dumps()
	if len(dumps) == 0 {
		return
	}
	fmt.Printf("marketd: flight recorder: %d dump(s)\n", len(dumps))
	for _, d := range dumps {
		fate := "slow"
		if d.Aborted {
			fate = "aborted"
		}
		culprit := "unattributed"
		if d.Culprit != trace.NoPeer {
			culprit = fmt.Sprintf("peer %d", d.Culprit)
		}
		fmt.Printf("  round %d lane %d: %s after %v in phase %s (%s, code %d, %d events)\n",
			d.Round, d.Lane, fate, d.Dur.Round(time.Microsecond), d.Phase, culprit, d.Code, len(d.Events))
	}
}
