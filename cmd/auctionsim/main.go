// Command auctionsim runs complete distributed (or centralized) auction
// rounds on an in-memory network and reports the outcome: allocation,
// payments, welfare, timing and traffic.
//
//	auctionsim -mechanism double -m 5 -n 20 -k 2
//	auctionsim -mechanism standard -m 8 -n 40 -k 1
//	auctionsim -centralized -mechanism double -n 100
//	auctionsim -mechanism double -rounds 100   # pipelined session throughput
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/harness"
	"distauction/internal/transport"
	"distauction/internal/workload"
)

func main() {
	mechanism := flag.String("mechanism", "double", fmt.Sprintf("auction mechanism: %v", core.MechanismNames()))
	m := flag.Int("m", 5, "number of providers")
	n := flag.Int("n", 20, "number of users")
	k := flag.Int("k", 2, "coalition bound (requires m > 2k)")
	seed := flag.Uint64("seed", 1, "workload seed")
	rounds := flag.Int("rounds", 1, "rounds to run through the session engine (>1: double only)")
	pipeline := flag.Int("pipeline", 3, "session pipeline depth (with -rounds)")
	centralized := flag.Bool("centralized", false, "run the trusted-auctioneer baseline instead")
	noLatency := flag.Bool("no-latency", false, "disable the community-network latency model")
	invEps := flag.Int("inveps", 5, "standard auction: 1/ε approximation effort")
	verbose := flag.Bool("v", false, "print the full allocation matrix")
	flag.Parse()

	if err := run(*mechanism, *m, *n, *k, *seed, *rounds, *pipeline, *centralized, *noLatency, *invEps, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim:", err)
		os.Exit(1)
	}
}

func run(mechanism string, m, n, k int, seed uint64, rounds, pipeline int, centralized, noLatency bool, invEps int, verbose bool) error {
	if _, ok := core.LookupMechanism(mechanism); !ok {
		return fmt.Errorf("unknown mechanism %q (registered: %v)", mechanism, core.MechanismNames())
	}

	opts := []harness.Option{
		harness.WithProviders(m), harness.WithUsers(n), harness.WithK(k),
		harness.WithSeed(seed),
		harness.WithInvEpsilon(invEps),
		harness.WithBidWindow(10 * time.Second),
		harness.WithPipelineDepth(pipeline),
	}
	if !noLatency {
		opts = append(opts, harness.WithLatency(transport.CommunityNetModel()))
	}

	if rounds > 1 {
		if centralized || mechanism != "double" {
			return fmt.Errorf("-rounds > 1 runs the session engine (distributed double auction only)")
		}
		res, err := harness.RunSessionDouble(rounds, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("session: m=%d providers, n=%d users, k=%d, %d pipelined rounds (depth %d)\n",
			m, n, k, res.Rounds, pipeline)
		fmt.Printf("total time: %v   throughput: %.1f rounds/s\n", res.Duration, res.RoundsPerSec())
		fmt.Printf("accepted: %d / %d   messages: %d   bytes: %d\n",
			res.Accepted, res.Rounds, res.Msgs, res.Bytes)
		fmt.Printf("residual protocol state: %d msgs, %d rounds (reclaimed per round)\n",
			res.ResidualMsgs, res.ResidualRounds)
		return nil
	}

	var (
		res harness.Result
		err error
	)
	switch {
	case mechanism == "double" && centralized:
		res, err = harness.RunCentralizedDouble(opts...)
	case mechanism == "double":
		res, err = harness.RunDistributedDouble(opts...)
	case mechanism == "standard" && centralized:
		res, err = harness.RunCentralizedStandard(opts...)
	case mechanism == "standard":
		res, err = harness.RunDistributedStandard(opts...)
	default:
		return fmt.Errorf("mechanism %q has no harness driver (want double or standard)", mechanism)
	}
	if err != nil {
		return err
	}

	mode := "distributed"
	if centralized {
		mode = "centralized"
	}
	fmt.Printf("%s %s auction: m=%d providers, n=%d users, k=%d, seed=%d\n",
		mode, mechanism, m, n, k, seed)
	fmt.Printf("round time: %v   messages: %d   bytes: %d\n\n", res.Duration, res.Msgs, res.Bytes)

	out := res.Outcome
	served := 0
	for u := 0; u < out.Alloc.NumUsers; u++ {
		if out.Alloc.UserTotal(u) > 0 {
			served++
		}
	}
	fmt.Printf("users served: %d / %d\n", served, out.Alloc.NumUsers)
	fmt.Printf("total paid by users:      %v\n", out.Pay.TotalPaid())
	fmt.Printf("total paid to providers:  %v\n", out.Pay.TotalReceived())
	fmt.Printf("budget balanced:          %v\n", out.Pay.BudgetBalanced())

	// Recompute welfare against the generated workload for the report.
	switch mechanism {
	case "double":
		inst := workload.NewDoubleAuction(seed, n, m)
		fmt.Printf("social welfare (double):  %v\n",
			auction.WelfareDouble(inst.Users, inst.Providers, out.Alloc))
	case "standard":
		inst := workload.NewStandardAuction(seed, n, m)
		fmt.Printf("social welfare (standard): %v\n",
			auction.WelfareStandard(inst.Users, out.Alloc))
	}

	if verbose {
		fmt.Println("\nallocation (user x provider):")
		for u := 0; u < out.Alloc.NumUsers; u++ {
			if out.Alloc.UserTotal(u) == 0 {
				continue
			}
			fmt.Printf("  user %3d:", u)
			for p := 0; p < out.Alloc.NumProviders; p++ {
				if v := out.Alloc.At(u, p); v > 0 {
					fmt.Printf("  p%d=%v", p, v)
				}
			}
			fmt.Printf("  pays %v\n", out.Pay.ByUser[u])
		}
	}
	return nil
}
