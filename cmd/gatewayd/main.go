// Command gatewayd runs one provider node of the distributed auctioneer
// over real TCP — the daemon a community-network gateway operator would run.
//
// Every provider needs the same deployment facts: the provider set with
// addresses, the user set, k, and the mechanism (selected by registry
// name). Addresses are given as comma-separated id=host:port pairs. All
// nodes derive pairwise HMAC keys from the shared master secret.
//
// The daemon opens a long-running auction session: rounds run continuously
// and pipelined, with per-round results streamed to stdout, until the round
// limit (if any) is reached or the process is stopped.
//
//	gatewayd -id 1 -listen :7001 \
//	  -providers '1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003' \
//	  -users '100,101' -k 1 -mechanism double \
//	  -cost 1.5 -capacity 10 -rounds 1 -secret communitynet
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distauction/internal/auction"
	"distauction/internal/cliutil"
	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

func main() {
	id := flag.Uint("id", 0, "this provider's node id")
	listen := flag.String("listen", ":0", "listen address")
	providersFlag := flag.String("providers", "", "provider set: id=host:port, comma separated")
	usersFlag := flag.String("users", "", "user bidder ids, comma separated")
	userAddrsFlag := flag.String("user-addrs", "", "optional user addresses for outcome delivery: id=host:port, comma separated")
	k := flag.Int("k", 1, "coalition bound")
	mechanism := flag.String("mechanism", "double", fmt.Sprintf("mechanism name: %v", core.MechanismNames()))
	cost := flag.String("cost", "1", "own unit cost (double auction)")
	capacity := flag.String("capacity", "10", "own capacity (double auction)")
	capsFlag := flag.String("capacities", "", "standard auction: capacities per provider, comma separated")
	rounds := flag.Uint64("rounds", 1, "number of auction rounds to run (0 = until interrupted)")
	pipeline := flag.Int("pipeline", 2, "rounds in flight (bid collection of round r+1 overlaps round r's allocation)")
	bidWindow := flag.Duration("bid-window", 5*time.Second, "bid collection window")
	roundTimeout := flag.Duration("round-timeout", 2*time.Minute, "per-round deadline")
	secret := flag.String("secret", "", "shared master secret for HMAC keys (empty = unauthenticated)")
	flag.Parse()

	if err := run(uint32(*id), *listen, *providersFlag, *usersFlag, *userAddrsFlag, *k, *mechanism,
		*cost, *capacity, *capsFlag, *rounds, *pipeline, *bidWindow, *roundTimeout, *secret); err != nil {
		fmt.Fprintln(os.Stderr, "gatewayd:", err)
		os.Exit(1)
	}
}

func run(id uint32, listen, providersFlag, usersFlag, userAddrsFlag string, k int, mechanism,
	cost, capacity, capsFlag string, rounds uint64, pipeline int,
	bidWindow, roundTimeout time.Duration, secret string) error {

	peerAddrs, providerIDs, err := cliutil.ParseAddrMap(providersFlag)
	if err != nil {
		return fmt.Errorf("providers: %w", err)
	}
	if userAddrsFlag != "" {
		userAddrs, _, err := cliutil.ParseAddrMap(userAddrsFlag)
		if err != nil {
			return fmt.Errorf("user-addrs: %w", err)
		}
		for uid, addr := range userAddrs {
			peerAddrs[uid] = addr
		}
	}
	userIDs, err := cliutil.ParseIDList(usersFlag)
	if err != nil {
		return fmt.Errorf("users: %w", err)
	}
	for _, uid := range userIDs {
		if _, ok := peerAddrs[uid]; !ok {
			fmt.Fprintf(os.Stderr,
				"gatewayd: warning: no address for user %d (see -user-addrs); outcomes cannot be delivered to it\n", uid)
		}
	}

	// Mechanisms are selected by registry name; anything registered via
	// core.RegisterMechanism works here without touching this CLI.
	var spec core.MechanismSpec
	if capsFlag != "" {
		caps, err := cliutil.ParseFixedList(capsFlag)
		if err != nil {
			return fmt.Errorf("capacities: %w", err)
		}
		if len(caps) != len(providerIDs) {
			return fmt.Errorf("need one capacity per provider (%d given, %d providers)",
				len(caps), len(providerIDs))
		}
		spec.Capacities = caps
	}
	mech, err := core.NewMechanism(mechanism, spec)
	if err != nil {
		return err
	}

	// The TCP address book doubles as the Network: this process attaches
	// only its own node; peers are dialed lazily.
	self := wire.NodeID(id)
	network, conn, err := cliutil.DialTCP(self, listen, peerAddrs,
		append(append([]wire.NodeID{}, providerIDs...), userIDs...), secret)
	if err != nil {
		return err
	}
	defer network.Close()

	opts := []core.SessionOption{
		core.WithK(k),
		core.WithMechanism(mech),
		core.WithBidWindow(bidWindow),
		core.WithRoundTimeout(roundTimeout),
		core.WithRoundLimit(rounds),
		core.WithMaxConcurrentRounds(pipeline),
	}
	if mech.DoubleSided() {
		c, err := fixed.Parse(cost)
		if err != nil {
			return fmt.Errorf("cost: %w", err)
		}
		cap_, err := fixed.Parse(capacity)
		if err != nil {
			return fmt.Errorf("capacity: %w", err)
		}
		opts = append(opts, core.WithProviderBid(auction.ProviderBid{Cost: c, Capacity: cap_}))
	}

	session, err := core.OpenSession(conn, providerIDs, userIDs, opts...)
	if err != nil {
		return err
	}
	defer session.Close()
	fmt.Printf("gatewayd: provider %d in session (%s auction, m=%d, k=%d, pipeline %d)\n",
		id, mechanism, len(providerIDs), k, pipeline)

	// On SIGINT/SIGTERM, close the session instead of dying abruptly: the
	// abort is broadcast, so peers and bidders learn ⊥ for the rounds in
	// flight rather than waiting out their round timeouts.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Printf("gatewayd: %v: closing session\n", s)
		session.Close()
	}()

	for out := range session.Outcomes() {
		if out.Err == nil {
			fmt.Printf("round %d: outcome accepted — %d users, paid=%v received=%v\n",
				out.Round, out.Outcome.Alloc.NumUsers,
				out.Outcome.Pay.TotalPaid(), out.Outcome.Pay.TotalReceived())
		} else if errors.Is(out.Err, proto.ErrAborted) {
			fmt.Printf("round %d: ⊥ (aborted): %v\n", out.Round, out.Err)
		} else {
			fmt.Printf("round %d: failed: %v\n", out.Round, out.Err)
		}
	}
	return nil
}
