// Command gatewayd runs one provider node of the distributed auctioneer
// over real TCP — the daemon a community-network gateway operator would run.
//
// Every provider needs the same deployment facts: the provider set with
// addresses, the user set, k, and the mechanism. Addresses are given as
// comma-separated id=host:port pairs. All nodes derive pairwise HMAC keys
// from the shared master secret.
//
//	gatewayd -id 1 -listen :7001 \
//	  -providers '1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003' \
//	  -users '100,101' -k 1 -mechanism double \
//	  -cost 1.5 -capacity 10 -rounds 1 -secret communitynet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"distauction/internal/auction"
	"distauction/internal/auth"
	"distauction/internal/cliutil"
	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/mechanism/standardauction"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func main() {
	id := flag.Uint("id", 0, "this provider's node id")
	listen := flag.String("listen", ":0", "listen address")
	providersFlag := flag.String("providers", "", "provider set: id=host:port, comma separated")
	usersFlag := flag.String("users", "", "user bidder ids, comma separated")
	userAddrsFlag := flag.String("user-addrs", "", "optional user addresses for outcome delivery: id=host:port, comma separated")
	k := flag.Int("k", 1, "coalition bound")
	mechanism := flag.String("mechanism", "double", "double or standard")
	cost := flag.String("cost", "1", "own unit cost (double auction)")
	capacity := flag.String("capacity", "10", "own capacity (double auction)")
	capsFlag := flag.String("capacities", "", "standard auction: capacities per provider, comma separated")
	rounds := flag.Uint64("rounds", 1, "number of auction rounds to run")
	bidWindow := flag.Duration("bid-window", 5*time.Second, "bid collection window")
	roundTimeout := flag.Duration("round-timeout", 2*time.Minute, "per-round deadline")
	secret := flag.String("secret", "", "shared master secret for HMAC keys (empty = unauthenticated)")
	flag.Parse()

	if err := run(uint32(*id), *listen, *providersFlag, *usersFlag, *userAddrsFlag, *k, *mechanism,
		*cost, *capacity, *capsFlag, *rounds, *bidWindow, *roundTimeout, *secret); err != nil {
		fmt.Fprintln(os.Stderr, "gatewayd:", err)
		os.Exit(1)
	}
}

func run(id uint32, listen, providersFlag, usersFlag, userAddrsFlag string, k int, mechanism,
	cost, capacity, capsFlag string, rounds uint64,
	bidWindow, roundTimeout time.Duration, secret string) error {

	peerAddrs, providerIDs, err := cliutil.ParseAddrMap(providersFlag)
	if err != nil {
		return fmt.Errorf("providers: %w", err)
	}
	if userAddrsFlag != "" {
		userAddrs, _, err := cliutil.ParseAddrMap(userAddrsFlag)
		if err != nil {
			return fmt.Errorf("user-addrs: %w", err)
		}
		for uid, addr := range userAddrs {
			peerAddrs[uid] = addr
		}
	}
	userIDs, err := cliutil.ParseIDList(usersFlag)
	if err != nil {
		return fmt.Errorf("users: %w", err)
	}

	var mech core.Mechanism
	switch mechanism {
	case "double":
		mech = core.DoubleAuction{}
	case "standard":
		caps, err := cliutil.ParseFixedList(capsFlag)
		if err != nil {
			return fmt.Errorf("capacities: %w", err)
		}
		if len(caps) != len(providerIDs) {
			return fmt.Errorf("standard auction needs one capacity per provider (%d given, %d providers)",
				len(caps), len(providerIDs))
		}
		mech = core.StandardAuction{Params: standardauction.Params{Capacities: caps}}
	default:
		return fmt.Errorf("unknown mechanism %q", mechanism)
	}

	cfg := core.Config{
		Providers: providerIDs,
		Users:     userIDs,
		K:         k,
		Mechanism: mech,
		BidWindow: bidWindow,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	tcpCfg := transport.TCPConfig{
		Self:       wire.NodeID(id),
		ListenAddr: listen,
		Peers:      peerAddrs,
	}
	if secret != "" {
		all := append(append([]wire.NodeID{}, providerIDs...), userIDs...)
		tcpCfg.Registry = auth.NewRegistryFromMaster([]byte(secret), wire.NodeID(id), all)
	}
	node, err := transport.ListenTCP(tcpCfg)
	if err != nil {
		return err
	}
	provider, err := core.NewProvider(node, cfg)
	if err != nil {
		node.Close()
		return err
	}
	defer provider.Close()
	fmt.Printf("gatewayd: provider %d listening on %s (%s auction, m=%d, k=%d)\n",
		id, node.Addr(), mechanism, len(providerIDs), k)

	var ownBid *auction.ProviderBid
	if mechanism == "double" {
		c, err := fixed.Parse(cost)
		if err != nil {
			return fmt.Errorf("cost: %w", err)
		}
		cap_, err := fixed.Parse(capacity)
		if err != nil {
			return fmt.Errorf("capacity: %w", err)
		}
		ownBid = &auction.ProviderBid{Cost: c, Capacity: cap_}
	}

	for round := uint64(1); round <= rounds; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), roundTimeout)
		out, err := provider.RunRound(ctx, round, ownBid)
		cancel()
		switch {
		case err == nil:
			fmt.Printf("round %d: outcome accepted — %d users, paid=%v received=%v\n",
				round, out.Alloc.NumUsers, out.Pay.TotalPaid(), out.Pay.TotalReceived())
		case errors.Is(err, proto.ErrAborted):
			fmt.Printf("round %d: ⊥ (aborted): %v\n", round, err)
		default:
			return fmt.Errorf("round %d: %w", round, err)
		}
		provider.EndRound(round)
	}
	return nil
}
