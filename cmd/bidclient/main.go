// Command bidclient submits a user's bandwidth bid to every provider of a
// distributed auction over TCP and streams the unanimous outcomes.
//
// With -rounds > 1 the client stays in the session and re-submits the same
// bid each round, printing every round's result as it arrives.
//
//	bidclient -id 100 -listen :0 \
//	  -providers '1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003' \
//	  -value 1.10 -demand 0.5 -round 1 -secret communitynet
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"distauction/internal/auction"
	"distauction/internal/cliutil"
	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func main() {
	id := flag.Uint("id", 0, "this bidder's node id")
	listen := flag.String("listen", ":0", "listen address (providers reply here)")
	providersFlag := flag.String("providers", "", "provider set: id=host:port, comma separated")
	value := flag.String("value", "", "per-unit valuation (decimal)")
	demand := flag.String("demand", "", "bandwidth demand (decimal)")
	round := flag.Uint64("round", 1, "first auction round to bid in")
	rounds := flag.Uint64("rounds", 1, "how many consecutive rounds to bid in")
	timeout := flag.Duration("timeout", 2*time.Minute, "how long to wait for each round's outcome")
	secret := flag.String("secret", "", "shared master secret for HMAC keys (empty = unauthenticated)")
	flag.Parse()

	if err := run(uint32(*id), *listen, *providersFlag, *value, *demand, *round, *rounds, *timeout, *secret); err != nil {
		fmt.Fprintln(os.Stderr, "bidclient:", err)
		os.Exit(1)
	}
}

func run(id uint32, listen, providersFlag, value, demand string, startRound, rounds uint64,
	timeout time.Duration, secret string) error {

	peerAddrs, providerIDs, err := cliutil.ParseAddrMap(providersFlag)
	if err != nil {
		return fmt.Errorf("providers: %w", err)
	}
	v, err := fixed.Parse(value)
	if err != nil {
		return fmt.Errorf("value: %w", err)
	}
	d, err := fixed.Parse(demand)
	if err != nil {
		return fmt.Errorf("demand: %w", err)
	}
	bid := auction.UserBid{Value: v, Demand: d}
	if err := bid.Validate(); err != nil {
		return err
	}
	if rounds == 0 {
		return errors.New("need at least one round")
	}

	self := wire.NodeID(id)
	network, conn, err := cliutil.DialTCP(self, listen, peerAddrs,
		append([]wire.NodeID{self}, providerIDs...), secret)
	if err != nil {
		return err
	}
	defer network.Close()
	if node, ok := conn.(*transport.TCPNode); ok {
		// The resolved address (listen may be :0) is what gatewayd needs in
		// -user-addrs to deliver outcomes back to this client.
		fmt.Printf("bidclient: user %d receiving outcomes on %s\n", id, node.Addr())
	}

	session, err := core.OpenBidderSession(conn, providerIDs,
		core.WithStartRound(startRound),
		core.WithRoundLimit(rounds),
		core.WithRoundTimeout(timeout),
	)
	if err != nil {
		return err
	}
	defer session.Close()

	fmt.Printf("bidclient: user %d bidding value=%v demand=%v from round %d (%d rounds)\n",
		id, v, d, startRound, rounds)
	// Pace submissions against received outcomes instead of bursting every
	// round up front: providers buffer future-round bids until the round's
	// window opens, so an unpaced -rounds 100000 would pin ~100000 rounds of
	// state at every provider. A few rounds of lookahead keeps the pipeline
	// full without unbounded buffering.
	const lookahead = 8
	nextBid := startRound
	for ; nextBid < startRound+min(lookahead, rounds); nextBid++ {
		if err := session.Submit(nextBid, bid); err != nil {
			return fmt.Errorf("submit round %d: %w", nextBid, err)
		}
	}

	// The deadline is per outcome, not for the whole session: a healthy
	// multi-round stream resets it on every result, so -rounds 100 is not
	// cut off mid-stream by a single fixed budget. 0 disables it, matching
	// WithRoundTimeout (a nil channel never fires).
	var deadline *time.Timer
	var deadlineC <-chan time.Time
	if timeout > 0 {
		deadline = time.NewTimer(timeout)
		defer deadline.Stop()
		deadlineC = deadline.C
	}
	for {
		select {
		case out, ok := <-session.Outcomes():
			if !ok {
				return nil
			}
			if deadline != nil {
				deadline.Reset(timeout) // direct Reset is race-free since Go 1.23
			}
			if nextBid < startRound+rounds {
				if err := session.Submit(nextBid, bid); err != nil {
					return fmt.Errorf("submit round %d: %w", nextBid, err)
				}
				nextBid++
			}
			if errors.Is(out.Err, core.ErrOutcomeBot) {
				fmt.Printf("round %d: ⊥ (auction aborted; nothing allocated, nothing paid)\n", out.Round)
				continue
			}
			if out.Err != nil {
				return out.Err
			}
			fmt.Printf("round %d: outcome accepted by all %d providers\n", out.Round, len(providerIDs))
			fmt.Printf("  allocation matrix: %d users x %d providers\n",
				out.Outcome.Alloc.NumUsers, out.Outcome.Alloc.NumProviders)
			fmt.Printf("  total paid by users: %v; total to providers: %v\n",
				out.Outcome.Pay.TotalPaid(), out.Outcome.Pay.TotalReceived())
		case <-deadlineC:
			return errors.New("timed out waiting for outcomes")
		}
	}
}
