// Command bidclient submits a user's bandwidth bid to every provider of a
// distributed auction over TCP and waits for the unanimous outcome.
//
//	bidclient -id 100 -listen :0 \
//	  -providers '1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003' \
//	  -value 1.10 -demand 0.5 -round 1 -secret communitynet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"distauction/internal/auction"
	"distauction/internal/auth"
	"distauction/internal/cliutil"
	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func main() {
	id := flag.Uint("id", 0, "this bidder's node id")
	listen := flag.String("listen", ":0", "listen address (providers reply here)")
	providersFlag := flag.String("providers", "", "provider set: id=host:port, comma separated")
	value := flag.String("value", "", "per-unit valuation (decimal)")
	demand := flag.String("demand", "", "bandwidth demand (decimal)")
	round := flag.Uint64("round", 1, "auction round to bid in")
	timeout := flag.Duration("timeout", 2*time.Minute, "how long to wait for the outcome")
	secret := flag.String("secret", "", "shared master secret for HMAC keys (empty = unauthenticated)")
	flag.Parse()

	if err := run(uint32(*id), *listen, *providersFlag, *value, *demand, *round, *timeout, *secret); err != nil {
		fmt.Fprintln(os.Stderr, "bidclient:", err)
		os.Exit(1)
	}
}

func run(id uint32, listen, providersFlag, value, demand string, round uint64,
	timeout time.Duration, secret string) error {

	peerAddrs, providerIDs, err := cliutil.ParseAddrMap(providersFlag)
	if err != nil {
		return fmt.Errorf("providers: %w", err)
	}
	v, err := fixed.Parse(value)
	if err != nil {
		return fmt.Errorf("value: %w", err)
	}
	d, err := fixed.Parse(demand)
	if err != nil {
		return fmt.Errorf("demand: %w", err)
	}
	bid := auction.UserBid{Value: v, Demand: d}
	if err := bid.Validate(); err != nil {
		return err
	}

	tcpCfg := transport.TCPConfig{
		Self:       wire.NodeID(id),
		ListenAddr: listen,
		Peers:      peerAddrs,
	}
	if secret != "" {
		all := append([]wire.NodeID{wire.NodeID(id)}, providerIDs...)
		tcpCfg.Registry = auth.NewRegistryFromMaster([]byte(secret), wire.NodeID(id), all)
	}
	node, err := transport.ListenTCP(tcpCfg)
	if err != nil {
		return err
	}
	bidder := core.NewBidder(node, providerIDs)
	defer bidder.Close()

	fmt.Printf("bidclient: user %d bidding value=%v demand=%v in round %d (reply address %s)\n",
		id, v, d, round, node.Addr())
	if err := bidder.Submit(round, bid); err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	out, err := bidder.AwaitOutcome(ctx, round)
	if errors.Is(err, core.ErrOutcomeBot) {
		fmt.Println("outcome: ⊥ (auction aborted; nothing allocated, nothing paid)")
		return nil
	}
	if err != nil {
		return err
	}

	// Find our own slot by matching node id order: the deployment registers
	// users in the same order everywhere; providers address slots by index.
	fmt.Printf("outcome accepted by all %d providers\n", len(providerIDs))
	fmt.Printf("allocation matrix: %d users x %d providers\n", out.Alloc.NumUsers, out.Alloc.NumProviders)
	fmt.Printf("total paid by users: %v; total to providers: %v\n",
		out.Pay.TotalPaid(), out.Pay.TotalReceived())
	return nil
}
