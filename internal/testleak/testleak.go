// Package testleak is a hand-rolled goroutine-leak assertion for lifecycle
// tests: snapshot the goroutine census, run the lifecycle under test —
// open, work, close — and require the census to settle back to where it
// started. No external leak detector; the check is a plain count with a
// settle loop, which is exactly what the steady-state discipline promises
// (persistent workers join on Close, timers are stopped, nothing per-round
// survives the session).
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// settleTimeout bounds how long Check waits for the runtime to reap
// finished goroutines after fn returns.
const settleTimeout = 5 * time.Second

// Check runs fn — which must open AND close everything it creates — and
// fails the test if the goroutine count has not settled back to the
// pre-fn snapshot afterwards. The settle loop tolerates the runtime's
// lazy reaping; a true leak (a worker that never joined, an unstopped
// timer's goroutine) holds the count up past the deadline and fails with
// a full stack dump.
func Check(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(settleTimeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
