package trace

import (
	"sync"
	"testing"
	"time"

	"distauction/internal/wire"
)

func TestDisabledFastPathZeroAlloc(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		s := Begin()
		Span(s, PhaseAgreeCommit, 1, 0, 1, 2, 0)
		Emit(PhaseAdmissionDrop, 1, 0, 1, 2, 0)
		RoundDone(1, 0, 1, time.Millisecond, false, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per run, want 0", allocs)
	}
	if len(Events()) != 0 {
		t.Fatal("disabled tracing recorded events")
	}
}

func TestEnabledRecordsSpansAndHistograms(t *testing.T) {
	Reset()
	SetEnabled(true)
	defer Reset()

	s := Begin()
	if s.IsZero() {
		t.Fatal("Begin returned zero time while enabled")
	}
	Span(s, PhaseAgreeCommit, 7, 3, 1, NoPeer, 0)
	Emit(PhaseAdmissionDrop, 7, 3, 1, 9, 0)
	RoundDone(7, 3, 1, 2*time.Millisecond, false, 0)

	evs := Events()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("events not ordered by seq")
		}
	}
	ph := PhaseDurations()
	if ph[PhaseAgreeCommit].Count != 1 || ph[PhaseRound].Count != 1 || ph[PhaseAdmissionDrop].Count != 1 {
		t.Fatalf("phase histogram counts = %d/%d/%d, want 1/1/1",
			ph[PhaseAgreeCommit].Count, ph[PhaseRound].Count, ph[PhaseAdmissionDrop].Count)
	}
	if len(Dumps()) != 0 {
		t.Fatal("clean fast round should not dump")
	}
}

func TestAbortDumpAttribution(t *testing.T) {
	Reset()
	SetEnabled(true)
	defer Reset()

	var cbDump Dump
	var cbFired bool
	OnDump(func(d Dump) { cbDump, cbFired = d, true })

	const round, lane = uint64(42), uint32(5)
	culprit := wire.NodeID(3)

	s := Begin()
	Span(s, PhaseBidCollect, round, lane, 1, NoPeer, 0)
	s = Begin()
	Span(s, PhaseAgreeEcho, round, lane, 1, NoPeer, 0)
	// Unrelated round noise that must not leak into the dump.
	Emit(PhaseAdmissionDrop, 99, lane, 1, 8, 0)
	// The abort, attributed to the culprit with code 2.
	Emit(PhaseAbort, round, lane, 1, culprit, 2)
	RoundDone(round, lane, 1, time.Millisecond, true, 2)

	ds := Dumps()
	if len(ds) != 1 {
		t.Fatalf("got %d dumps, want 1", len(ds))
	}
	d := ds[0]
	if !d.Aborted || d.Round != round || d.Lane != lane {
		t.Fatalf("dump round/lane/aborted = %d/%d/%v", d.Round, d.Lane, d.Aborted)
	}
	if d.Culprit != culprit || d.Code != 2 {
		t.Fatalf("dump culprit/code = %d/%d, want %d/2", d.Culprit, d.Code, culprit)
	}
	if d.Phase != PhaseAgreeEcho {
		t.Fatalf("dump phase = %v, want %v (last phase before abort)", d.Phase, PhaseAgreeEcho)
	}
	for _, e := range d.Events {
		if e.Round != round {
			t.Fatalf("dump leaked event from round %d", e.Round)
		}
	}
	if !cbFired || cbDump.Round != round {
		t.Fatal("OnDump callback did not fire with the dump")
	}
}

func TestSlowRoundDump(t *testing.T) {
	Reset()
	SetEnabled(true)
	SetSlowRound(time.Millisecond)
	defer Reset()

	RoundDone(1, 0, 1, 500*time.Microsecond, false, 0)
	if len(Dumps()) != 0 {
		t.Fatal("fast round dumped")
	}
	RoundDone(2, 0, 1, 5*time.Millisecond, false, 0)
	ds := Dumps()
	if len(ds) != 1 || !ds[0].Slow || ds[0].Aborted {
		t.Fatalf("slow round dump = %+v", ds)
	}
}

func TestDumpRetentionBound(t *testing.T) {
	Reset()
	SetEnabled(true)
	defer Reset()
	for r := uint64(0); r < maxDumps*2; r++ {
		RoundDone(r, 0, 1, time.Millisecond, true, 1)
	}
	ds := Dumps()
	if len(ds) != maxDumps {
		t.Fatalf("retained %d dumps, want %d", len(ds), maxDumps)
	}
	if ds[len(ds)-1].Round != maxDumps*2-1 {
		t.Fatal("retention dropped the newest dump")
	}
}

func TestConcurrentRecording(t *testing.T) {
	Reset()
	SetEnabled(true)
	defer Reset()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := Begin()
				Span(s, Phase(i%int(NumPhases)), uint64(i), uint32(id), wire.NodeID(id), NoPeer, 0)
				if i%100 == 0 {
					_ = Events()
					RoundDone(uint64(i), uint32(id), wire.NodeID(id), time.Microsecond, i%500 == 0, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	evs := Events()
	if len(evs) != ringShards*ringSize {
		t.Fatalf("ring holds %d events, want full %d", len(evs), ringShards*ringSize)
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		n := p.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("phase %d has bad/duplicate name %q", p, n)
		}
		seen[n] = true
	}
	if NumPhases.String() != "unknown" {
		t.Fatal("out-of-range phase should stringify as unknown")
	}
}
