package trace

import (
	"sort"
	"sync"
	"time"

	"distauction/internal/wire"
)

// The flight recorder keeps the last ~ringShards×ringSize events in
// fixed mutex-sharded rings. Shards are chosen by event sequence, so
// writers from different goroutines rarely contend on the same lock and
// the union of shards holds a contiguous-ish suffix of the stream. A
// pure lock-free ring would race readers against wrapping writers under
// the Go memory model; a sharded mutex ring is safe under -race and the
// lock is uncontended in the common case.
const (
	ringShards = 8
	ringSize   = 512 // events per shard → 4096 total
	maxDumps   = 16
)

type ringShard struct {
	mu  sync.Mutex
	buf [ringSize]Event
	pos uint64 // next write slot; wraps
}

var rings [ringShards]ringShard

func record(e Event) {
	sh := &rings[e.Seq%ringShards]
	sh.mu.Lock()
	sh.buf[sh.pos%ringSize] = e
	sh.pos++
	sh.mu.Unlock()
}

// Events returns the flight recorder's current contents, oldest first.
func Events() []Event {
	out := make([]Event, 0, ringShards*ringSize)
	for i := range rings {
		sh := &rings[i]
		sh.mu.Lock()
		n := sh.pos
		if n > ringSize {
			n = ringSize
		}
		for j := uint64(0); j < n; j++ {
			out = append(out, sh.buf[j])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump is one flight-recorder capture: the recorded events for a round
// that aborted or ran slow, plus the causal attribution derived from
// them — which peer, in which phase, with which abort code.
type Dump struct {
	When    time.Time
	Round   uint64
	Lane    uint32
	Node    wire.NodeID
	Dur     time.Duration
	Aborted bool
	Slow    bool

	// Code is the proto abort code (AbortCode numeric value) for aborted
	// rounds; Culprit the deviant peer when attribution is known (NoPeer
	// otherwise); Phase the last pipeline phase in flight before the
	// abort — together: "round R went to ⊥ in phase P because of peer C".
	Code    int32
	Culprit wire.NodeID
	Phase   Phase

	Events []Event // this round's events on this lane, oldest first
}

var (
	dumpMu  sync.Mutex
	dumps   []Dump
	dumpFns []func(Dump)
)

// dump captures the named round's events and attribution. Called with no
// locks held; rare by construction (aborts and slow rounds).
func dump(round uint64, lane uint32, node wire.NodeID, dur time.Duration, aborted, slow bool, code int32) {
	all := Events()
	d := Dump{
		When: time.Now(), Round: round, Lane: lane, Node: node, Dur: dur,
		Aborted: aborted, Slow: slow, Code: code, Culprit: NoPeer, Phase: PhaseRound,
	}
	var lastPhase Phase
	var lastPhaseSeq, abortSeq uint64
	for _, e := range all {
		if e.Round != round || e.Lane != lane {
			continue
		}
		d.Events = append(d.Events, e)
		switch e.Phase {
		case PhaseAbort:
			if abortSeq == 0 || e.Seq < abortSeq {
				abortSeq = e.Seq
				d.Culprit = e.Peer
				d.Code = e.Code
			}
		case PhaseRound:
			// the round summary itself is not a causal phase
		default:
			if abortSeq == 0 && e.Seq > lastPhaseSeq {
				lastPhaseSeq = e.Seq
				lastPhase = e.Phase
			}
		}
	}
	if lastPhaseSeq > 0 {
		d.Phase = lastPhase
	}

	dumpMu.Lock()
	dumps = append(dumps, d)
	if len(dumps) > maxDumps {
		dumps = dumps[len(dumps)-maxDumps:]
	}
	fns := dumpFns
	dumpMu.Unlock()
	for _, fn := range fns {
		fn(d)
	}
}

// Dumps returns the retained flight-recorder dumps, oldest first.
func Dumps() []Dump {
	dumpMu.Lock()
	defer dumpMu.Unlock()
	out := make([]Dump, len(dumps))
	copy(out, dumps)
	return out
}

// OnDump registers fn to run (synchronously, on the dumping goroutine)
// after each capture. Callbacks cannot be unregistered; register once at
// process start.
func OnDump(fn func(Dump)) {
	dumpMu.Lock()
	dumpFns = append(dumpFns, fn)
	dumpMu.Unlock()
}

// Reset clears the rings, dumps, callbacks and per-phase histograms, and
// disables tracing. Test helper; not safe against concurrent recording.
func Reset() {
	enabled.Store(false)
	slowRound.Store(0)
	seq.Store(0)
	for i := range rings {
		sh := &rings[i]
		sh.mu.Lock()
		sh.pos = 0
		sh.buf = [ringSize]Event{}
		sh.mu.Unlock()
	}
	dumpMu.Lock()
	dumps = nil
	dumpFns = nil
	dumpMu.Unlock()
	for i := range phaseHist {
		phaseHist[i].Reset()
	}
}
