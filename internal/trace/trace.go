// Package trace is the round-pipeline observability layer: gated
// structured spans over every phase the marketplace runs (bid collection,
// bid-agreement gathers, task execution, coalescer flushes, admission
// decisions, 2PC settlement), per-phase latency histograms, and a
// flight recorder that keeps the last N rounds' events and dumps them
// with causal attribution when a round aborts or breaches the slow-round
// threshold.
//
// The whole package is gated behind one atomic flag. With tracing
// disabled the hooks compile down to a single atomic load (Begin returns
// the zero time, Span/Emit return immediately) and add zero allocations
// to the round hot path — the CI allocation budget holds with the hooks
// compiled in. With tracing enabled, events are written by value into
// fixed mutex-sharded rings and histograms, still allocation-free; only
// a flight-recorder dump (abort or slow round — rare by construction)
// copies events out.
package trace

import (
	"sync/atomic"
	"time"

	"distauction/internal/metrics"
	"distauction/internal/wire"
)

// Phase identifies which stage of the round pipeline a span covers.
type Phase uint8

const (
	// PhaseRound is the whole round: bid open to outcome delivery.
	PhaseRound Phase = iota
	// PhaseBidCollect is phase 0-1: broadcast own bid, gather the rest.
	PhaseBidCollect
	// PhaseAgreeCommit..PhaseAgreeVector are the bid-agreement gathers:
	// commitment exchange, echo, reveal (digest fast path), and the
	// stepVector full-vector fallback.
	PhaseAgreeCommit
	PhaseAgreeEcho
	PhaseAgreeReveal
	PhaseAgreeVector
	// PhaseTask is one taskgraph task on a persistent worker (Code holds
	// the task ID).
	PhaseTask
	// PhaseCoalesceShip is a coalescer batch leaving for one peer (Code
	// holds the envelope count; Peer the destination).
	PhaseCoalesceShip
	// PhaseAdmissionDrop marks a bid turned away by an admission gate
	// (instantaneous; Peer is the bidder).
	PhaseAdmissionDrop
	// PhaseSettleReserve/Commit/Release are the federation 2PC legs.
	PhaseSettleReserve
	PhaseSettleCommit
	PhaseSettleRelease
	// PhaseAbort marks a round going to ⊥ (instantaneous; Peer is the
	// culprit when attribution is known, Code the proto abort code).
	PhaseAbort

	// NumPhases bounds per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"round", "bid-collect",
	"agree-commit", "agree-echo", "agree-reveal", "agree-vector",
	"task", "coalesce-ship", "admission-drop",
	"settle-reserve", "settle-commit", "settle-release",
	"abort",
}

// String returns the phase's stable wire/metric name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Event is one recorded span or point event. Events are stored by value
// in fixed rings — no pointers, no allocation.
type Event struct {
	Seq   uint64        // global order
	TS    int64         // wall clock, unix nanoseconds, at span end
	Dur   time.Duration // 0 for point events
	Round uint64
	Lane  uint32
	Node  wire.NodeID // observing node
	Peer  wire.NodeID // counterparty (culprit, destination, bidder…)
	Phase Phase
	Code  int32 // phase-specific detail (task id, abort code, batch size)
}

// NoPeer marks an event with no counterparty.
const NoPeer = wire.Broadcast

var (
	enabled   atomic.Bool
	seq       atomic.Uint64
	slowRound atomic.Int64 // nanoseconds; 0 disables the slow-round dump
)

// Enabled reports whether tracing is on. This is the only cost the
// disabled fast path pays.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns tracing on or off at runtime.
func SetEnabled(on bool) { enabled.Store(on) }

// SetSlowRound sets the round-duration threshold above which a completed
// round triggers a flight-recorder dump. Zero disables slow-round dumps.
func SetSlowRound(d time.Duration) { slowRound.Store(int64(d)) }

// Begin opens a span: it returns the current time when tracing is on and
// the zero time when off. Pass the result to Span, which treats the zero
// time as "tracing was off, do nothing" — so a hook is two lines and
// costs one atomic load when disabled.
func Begin() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Span closes a span opened by Begin and records it. A zero start (the
// disabled path) is a no-op.
func Span(start time.Time, ph Phase, round uint64, lane uint32, node, peer wire.NodeID, code int32) {
	if start.IsZero() {
		return
	}
	now := time.Now()
	d := now.Sub(start)
	phaseHist[ph].RecordDuration(d)
	record(Event{
		Seq: seq.Add(1), TS: now.UnixNano(), Dur: d,
		Round: round, Lane: lane, Node: node, Peer: peer, Phase: ph, Code: code,
	})
}

// Emit records a point event (no duration). No-op when tracing is off.
func Emit(ph Phase, round uint64, lane uint32, node, peer wire.NodeID, code int32) {
	if !enabled.Load() {
		return
	}
	phaseHist[ph].Record(0)
	record(Event{
		Seq: seq.Add(1), TS: time.Now().UnixNano(),
		Round: round, Lane: lane, Node: node, Peer: peer, Phase: ph, Code: code,
	})
}

// RoundDone closes a round's span and, when the round aborted or ran
// slower than the SetSlowRound threshold, captures a flight-recorder
// dump attributing the outcome. No-op when tracing is off.
func RoundDone(round uint64, lane uint32, node wire.NodeID, dur time.Duration, aborted bool, code int32) {
	if !enabled.Load() {
		return
	}
	phaseHist[PhaseRound].RecordDuration(dur)
	record(Event{
		Seq: seq.Add(1), TS: time.Now().UnixNano(), Dur: dur,
		Round: round, Lane: lane, Node: node, Peer: NoPeer, Phase: PhaseRound, Code: code,
	})
	slow := false
	if th := slowRound.Load(); th > 0 && int64(dur) > th {
		slow = true
	}
	if aborted || slow {
		dump(round, lane, node, dur, aborted, slow, code)
	}
}

// per-phase duration histograms, recorded only while tracing is on.
var phaseHist [NumPhases]metrics.Histogram

// PhaseDurations snapshots the per-phase histograms (nanosecond values;
// point events record as 0).
func PhaseDurations() [NumPhases]metrics.HistogramSnapshot {
	var out [NumPhases]metrics.HistogramSnapshot
	for i := range phaseHist {
		out[i] = phaseHist[i].Snapshot()
	}
	return out
}
