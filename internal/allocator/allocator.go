// Package allocator implements the allocator building block (§4.1–4.2 of
// the paper, Property 2) by chaining input validation with the task-graph
// simulation of the allocation algorithm A (Figure 3).
//
// Theorem 2 of the paper shows this composition satisfies all four
// conditions of Property 2 given the properties of its blocks:
//
//  1. correct simulation of A — the task graph replays A deterministically
//     from the agreed input and the common coin;
//  2. resilience to collusive influence — every task group has more than k
//     members and cross-validates, so a coalition can only force ⊥;
//  3. input validation — providers entering with different vectors output ⊥;
//  4. k-resiliency for solution preference.
//
// Input validation runs *concurrently* with the task graph: the scheduler
// computes speculatively from the local input but publishes nothing — no
// cross-group transfer, no final return — until validation confirms every
// provider entered with the same vector (the scheduler's publish gate). A
// mismatch therefore still yields ⊥ before any value derived from a
// disputed input can leave the provider, which is all condition (3)
// requires; sequencing the digest exchange *before* the first task merely
// added a round trip.
package allocator

import (
	"context"
	"fmt"
	"sync"

	"distauction/internal/proto"
	"distauction/internal/taskgraph"
	"distauction/internal/validate"
)

// Run executes the allocator at the local provider: it validates that all
// providers hold the same input while executing the task graph, whose final
// task's output is returned. Any deviation or timeout aborts the round (⊥).
//
// The input bytes must be the canonical encoding of the agreed bid vector;
// the graph must be built identically at every provider from that vector.
func Run(ctx context.Context, peer *proto.Peer, round uint64, input []byte, graph *taskgraph.Graph) ([]byte, error) {
	return RunWith(ctx, peer, round, input, graph, nil)
}

// RunWith is Run with an optional pre-warmed coin source (the round engine
// passes a reservoir whose commit/echo phases already overlapped bid
// agreement; nil lets the scheduler build its own).
func RunWith(ctx context.Context, peer *proto.Peer, round uint64, input []byte, graph *taskgraph.Graph, coins taskgraph.CoinSource) ([]byte, error) {
	// An already-aborted round is handled by ExecuteOpts (which still closes
	// the coin source) and by validate.Run's own fast-fail — no separate
	// entry check to keep in sync.

	// Property 3, overlapped: the digest exchange runs while the scheduler
	// already computes; the gate below withholds every publication until it
	// confirms.
	vdone := make(chan struct{})
	var verr error
	go func() {
		defer close(vdone)
		verr = validate.Run(ctx, peer, round, input)
	}()
	gate := func() error {
		<-vdone
		return verr
	}

	out, err := taskgraph.ExecuteOpts(ctx, peer, round, graph, taskgraph.Options{
		Coins: coins,
		Gate:  gate,
	})
	<-vdone // join the validator on every path
	if err != nil {
		return nil, err
	}
	if verr != nil {
		// Normally subsumed by the scheduler's gate; kept as a backstop.
		return nil, verr
	}
	if out == nil {
		return nil, peer.FailRound(round, fmt.Sprintf("allocator: empty output in round %d", round))
	}
	return out, nil
}

// valGate is the pooled per-round state of the overlapped input validation:
// a WaitGroup join plus the validator's verdict. Its two closures are built
// once and recycled with it, so a steady-state round pays one pool hit for
// the whole validation plumbing instead of a channel, two closures and
// their captures.
type valGate struct {
	wg    sync.WaitGroup
	err   error
	ctx   context.Context
	peer  *proto.Peer
	round uint64
	input []byte
	run   func()       // runs validate.Run with the fields above, then Done
	wait  func() error // the publish gate: joins, then reports the verdict
}

var gatePool = sync.Pool{New: func() any {
	vg := &valGate{}
	vg.run = func() {
		vg.err = validate.Run(vg.ctx, vg.peer, vg.round, vg.input)
		vg.wg.Done()
	}
	vg.wait = func() error {
		vg.wg.Wait()
		return vg.err
	}
	return vg
}}

// RunExecutor is the allocator over a persistent taskgraph.Executor: the
// session's steady-state path, where the graph and its schedule plan were
// compiled once and env carries the round's agreed bids to the compiled
// task bodies. Validation overlaps execution exactly as in RunWith, through
// a pooled gate.
func RunExecutor(ctx context.Context, peer *proto.Peer, round uint64, input []byte, ex *taskgraph.Executor, env any, coins taskgraph.CoinSource) ([]byte, error) {
	vg := gatePool.Get().(*valGate)
	vg.ctx, vg.peer, vg.round, vg.input = ctx, peer, round, input
	vg.err = nil
	vg.wg.Add(1)
	go vg.run()

	out, err := ex.Run(ctx, round, env, taskgraph.Options{
		Coins: coins,
		Gate:  vg.wait,
	})
	vg.wg.Wait() // join the validator on every path
	verr := vg.err
	vg.ctx, vg.peer, vg.input = nil, nil, nil
	gatePool.Put(vg)
	if err != nil {
		return nil, err
	}
	if verr != nil {
		// Normally subsumed by the scheduler's gate; kept as a backstop.
		return nil, verr
	}
	if out == nil {
		return nil, peer.FailRound(round, fmt.Sprintf("allocator: empty output in round %d", round))
	}
	return out, nil
}
