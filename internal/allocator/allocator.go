// Package allocator implements the allocator building block (§4.1–4.2 of
// the paper, Property 2) by chaining input validation with the task-graph
// simulation of the allocation algorithm A (Figure 3).
//
// Theorem 2 of the paper shows this composition satisfies all four
// conditions of Property 2 given the properties of its blocks:
//
//  1. correct simulation of A — the task graph replays A deterministically
//     from the agreed input and the common coin;
//  2. resilience to collusive influence — every task group has more than k
//     members and cross-validates, so a coalition can only force ⊥;
//  3. input validation — providers entering with different vectors output ⊥;
//  4. k-resiliency for solution preference.
package allocator

import (
	"context"
	"fmt"

	"distauction/internal/proto"
	"distauction/internal/taskgraph"
	"distauction/internal/validate"
)

// Run executes the allocator at the local provider: it validates that all
// providers hold the same input, then executes the task graph, whose final
// task's output is returned. Any deviation or timeout aborts the round (⊥).
//
// The input bytes must be the canonical encoding of the agreed bid vector;
// the graph must be built identically at every provider from that vector.
func Run(ctx context.Context, peer *proto.Peer, round uint64, input []byte, graph *taskgraph.Graph) ([]byte, error) {
	if err := validate.Run(ctx, peer, round, input); err != nil {
		return nil, err
	}
	out, err := taskgraph.Execute(ctx, peer, round, graph)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, peer.FailRound(round, fmt.Sprintf("allocator: empty output in round %d", round))
	}
	return out, nil
}
