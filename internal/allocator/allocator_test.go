package allocator

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/proto"
	"distauction/internal/taskgraph"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

func graphFor(t *testing.T, providers []wire.NodeID, k int, out string) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.New(providers, k, []taskgraph.Task{
		{ID: 1, Name: "compute", Group: providers,
			Run: func(ctx context.Context, tc *taskgraph.TaskContext) ([]byte, error) {
				return []byte(out), nil
			}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunHappyPath(t *testing.T) {
	peers := newPeers(t, 3)
	providers := peers[0].Providers()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	outs := make([][]byte, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			g := graphFor(t, providers, 1, "result")
			outs[i], errs[i] = Run(ctx, p, 1, []byte("agreed-input"), g)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := range outs {
		if !bytes.Equal(outs[i], []byte("result")) {
			t.Errorf("peer %d output %q", i, outs[i])
		}
	}
}

// Property 2 condition (3): providers with different inputs both output ⊥
// before any allocation work runs.
func TestRunDivergentInputsAbort(t *testing.T) {
	peers := newPeers(t, 3)
	providers := peers[0].Providers()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			input := []byte("vector-A")
			if i == 2 {
				input = []byte("vector-B")
			}
			g := graphFor(t, providers, 1, "result")
			_, errs[i] = Run(ctx, p, 1, input, g)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("peer %d: got %v, want abort", i, err)
		}
	}
}

func TestRunAbortedRoundShortCircuits(t *testing.T) {
	peers := newPeers(t, 2)
	if err := peers[0].Abort(1, "pre"); err != nil {
		t.Fatal(err)
	}
	g := graphFor(t, peers[0].Providers(), 0, "x")
	if _, err := Run(context.Background(), peers[0], 1, []byte("in"), g); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("got %v, want abort", err)
	}
}
