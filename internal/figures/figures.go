// Package figures regenerates the paper's evaluation figures (§6).
//
// Figure 4: double-auction running time vs number of users, for a
// centralized trusted auctioneer and for the distributed simulation with
// k = 1 (3 providers), k = 2 (5) and k = 3 (8) — the paper's "minimum
// required number of providers out of a total of 8".
//
// Figure 5: standard-auction running time vs number of users with m = 8
// providers, for p = 1 (centralized serial), p = 2 (k = 3) and p = 4
// (k = 1), where p = ⌊m/(k+1)⌋ is the parallelism of the payment stage.
//
// Both figures run over the in-memory transport with the community-network
// latency model; the standard auction's full-scale compute time is modeled
// (see standardauction.Params.ModelDelay) because this host cannot dedicate
// a CPU to each of the 8 providers the way the paper's testbed did.
// Absolute times therefore differ from the paper; the *shape* — who wins,
// by what factor, where the curves bend — is the reproduction target.
// EXPERIMENTS.md records paper-vs-measured values.
package figures

import (
	"fmt"
	"io"
	"time"

	"distauction/internal/harness"
	"distauction/internal/metrics"
	"distauction/internal/transport"
)

// Options tunes a figure run.
type Options struct {
	// Rounds is the number of repetitions averaged per point (paper: 100).
	Rounds int
	// Latency is the link model; zero value means CommunityNetModel.
	Latency transport.LatencyModel
	// BaseSeed varies workloads across rounds.
	BaseSeed uint64
	// Quick shrinks the sweep for smoke tests.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 5
	}
	if o.Latency.Zero() {
		o.Latency = transport.CommunityNetModel()
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	return o
}

// Fig4Point is one x-position of Figure 4.
type Fig4Point struct {
	N           int
	Centralized time.Duration
	K1          time.Duration // 3 providers
	K2          time.Duration // 5 providers
	K3          time.Duration // 8 providers
}

// Fig4Ns returns the user counts swept by Figure 4.
func Fig4Ns(quick bool) []int {
	if quick {
		return []int{50, 200}
	}
	return []int{100, 200, 400, 600, 800, 1000}
}

// Fig4 regenerates Figure 4 (double auction running time vs n).
func Fig4(opts Options) ([]Fig4Point, error) {
	opts = opts.withDefaults()
	points := make([]Fig4Point, 0)
	for _, n := range Fig4Ns(opts.Quick) {
		var pt Fig4Point
		pt.N = n
		series := []struct {
			dst  *time.Duration
			m, k int
			cent bool
		}{
			{&pt.Centralized, 8, 0, true},
			{&pt.K1, 3, 1, false},
			{&pt.K2, 5, 2, false},
			{&pt.K3, 8, 3, false},
		}
		for _, s := range series {
			var stats metrics.DurationStats
			for r := 0; r < opts.Rounds; r++ {
				o := []harness.Option{
					harness.WithProviders(s.m), harness.WithUsers(n), harness.WithK(s.k),
					harness.WithLatency(opts.Latency),
					harness.WithSeed(opts.BaseSeed + uint64(r)*7919),
				}
				var res harness.Result
				var err error
				if s.cent {
					res, err = harness.RunCentralizedDouble(o...)
				} else {
					res, err = harness.RunDistributedDouble(o...)
				}
				if err != nil {
					return nil, fmt.Errorf("fig4 n=%d m=%d k=%d: %w", n, s.m, s.k, err)
				}
				stats.Add(res.Duration)
			}
			*s.dst = stats.Mean()
		}
		points = append(points, pt)
	}
	return points, nil
}

// Fig5Point is one x-position of Figure 5.
type Fig5Point struct {
	N  int
	P1 time.Duration // centralized serial
	P2 time.Duration // m=8, k=3
	P4 time.Duration // m=8, k=1
}

// Fig5Ns returns the user counts swept by Figure 5. The quick sweep starts
// above the distribution crossover (~n≈40 under the default models, where
// parallel compute savings overtake the coordination overhead), mirroring
// the full sweep's upper half.
func Fig5Ns(quick bool) []int {
	if quick {
		return []int{30, 60}
	}
	return []int{25, 50, 75, 100, 125}
}

// Fig5ModelDelay is the modeled per-solve compute time for n users: the
// quadratic growth (scaled down from the paper's n⁹-flavoured bound so runs
// terminate) reproduces the sharp super-linear rise of Figure 5. One full
// auction performs n+1 solves, so the serial curve grows ~n³.
func Fig5ModelDelay(n int) time.Duration {
	return time.Duration(n*n) * time.Microsecond
}

// Fig5 regenerates Figure 5 (standard auction running time vs n).
func Fig5(opts Options) ([]Fig5Point, error) {
	opts = opts.withDefaults()
	points := make([]Fig5Point, 0)
	for _, n := range Fig5Ns(opts.Quick) {
		var pt Fig5Point
		pt.N = n
		series := []struct {
			dst  *time.Duration
			k    int
			cent bool
		}{
			{&pt.P1, 0, true},
			{&pt.P2, 3, false},
			{&pt.P4, 1, false},
		}
		for _, s := range series {
			var stats metrics.DurationStats
			for r := 0; r < opts.Rounds; r++ {
				o := []harness.Option{
					harness.WithProviders(8), harness.WithUsers(n), harness.WithK(s.k),
					harness.WithLatency(opts.Latency),
					harness.WithSeed(opts.BaseSeed + uint64(r)*7919),
					harness.WithInvEpsilon(5),
					harness.WithIterFactor(1),
					harness.WithModelDelay(Fig5ModelDelay(n)),
					harness.WithTimeout(10 * time.Minute),
				}
				var res harness.Result
				var err error
				if s.cent {
					res, err = harness.RunCentralizedStandard(o...)
				} else {
					res, err = harness.RunDistributedStandard(o...)
				}
				if err != nil {
					return nil, fmt.Errorf("fig5 n=%d k=%d: %w", n, s.k, err)
				}
				stats.Add(res.Duration)
			}
			*s.dst = stats.Mean()
		}
		points = append(points, pt)
	}
	return points, nil
}

// WriteFig4 renders Figure 4 as an aligned table.
func WriteFig4(w io.Writer, points []Fig4Point) error {
	rows := make([]metrics.Row, 0, len(points))
	for _, p := range points {
		rows = append(rows, metrics.Row{
			Label: fmt.Sprintf("%d", p.N),
			Cols: []string{
				fmtDur(p.Centralized), fmtDur(p.K1), fmtDur(p.K2), fmtDur(p.K3),
			},
		})
	}
	header := metrics.Row{Label: "n", Cols: []string{"centralized(m=8)", "k=1(m=3)", "k=2(m=5)", "k=3(m=8)"}}
	_, err := io.WriteString(w, metrics.Table(header, rows))
	return err
}

// WriteFig5 renders Figure 5 as an aligned table.
func WriteFig5(w io.Writer, points []Fig5Point) error {
	rows := make([]metrics.Row, 0, len(points))
	for _, p := range points {
		rows = append(rows, metrics.Row{
			Label: fmt.Sprintf("%d", p.N),
			Cols:  []string{fmtDur(p.P1), fmtDur(p.P2), fmtDur(p.P4)},
		})
	}
	header := metrics.Row{Label: "n", Cols: []string{"p=1(centralized)", "p=2(k=3)", "p=4(k=1)"}}
	_, err := io.WriteString(w, metrics.Table(header, rows))
	return err
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.4fs", d.Seconds())
}
