package figures

import (
	"strings"
	"testing"
	"time"

	"distauction/internal/transport"
)

// Quick end-to-end smoke of both figure generators with tiny sweeps; the
// real sweeps run in cmd/benchfig and the root benchmarks.
func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	pts, err := Fig4(Options{Rounds: 1, Quick: true,
		Latency: transport.LatencyModel{Base: 200 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig4Ns(true)) {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Centralized <= 0 || p.K1 <= 0 || p.K2 <= 0 || p.K3 <= 0 {
			t.Errorf("n=%d has non-positive durations: %+v", p.N, p)
		}
		// Shape: the distributed simulation costs more than the trusted
		// auctioneer (coordination overhead, Figure 4's headline).
		if p.K3 < p.Centralized {
			t.Errorf("n=%d: k=3 (%v) faster than centralized (%v) — overhead missing",
				p.N, p.K3, p.Centralized)
		}
	}
	var sb strings.Builder
	if err := WriteFig4(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "centralized") {
		t.Error("table missing header")
	}
	t.Logf("\n%s", sb.String())
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	pts, err := Fig5(Options{Rounds: 1, Quick: true,
		Latency: transport.LatencyModel{Base: 200 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig5Ns(true)) {
		t.Fatalf("got %d points", len(pts))
	}
	last := pts[len(pts)-1]
	// Shape: with compute dominating, parallel beats serial and more
	// parallelism beats less (Figure 5's headline).
	if last.P4 >= last.P1 {
		t.Errorf("n=%d: p=4 (%v) not faster than serial (%v)", last.N, last.P4, last.P1)
	}
	if last.P2 >= last.P1 {
		t.Errorf("n=%d: p=2 (%v) not faster than serial (%v)", last.N, last.P2, last.P1)
	}
	var sb strings.Builder
	if err := WriteFig5(&sb, pts); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", sb.String())
}

func TestModelDelayGrowsSuperlinearly(t *testing.T) {
	if Fig5ModelDelay(100) <= 4*Fig5ModelDelay(50)-time.Microsecond {
		t.Error("model delay should grow quadratically")
	}
}
