package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..15 land in exact buckets; larger
// values split each power-of-two major bucket into 16 log-linear
// sub-buckets, bounding relative quantile error at 1/16 ≈ 6.25%. With
// 64-bit values that is (64-4) majors × 16 subs + 16 exact = 976 buckets.
const (
	histSubBits = 4
	histSubs    = 1 << histSubBits
	numBuckets  = (64-histSubBits)*histSubs + histSubs
)

// Histogram is a fixed-size log-bucket histogram safe for concurrent,
// lock-free recording. The zero value is ready. Buckets are atomic
// counters; Record is one atomic add per value plus the count/sum/min/max
// summary updates — no locks, no allocation. Quantile estimates carry
// ≤6.25% relative error from bucketing. Negative values clamp to zero.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// min holds v+1 so the zero value means "no observations yet".
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubs {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // ≥ histSubBits here
	sub := (u >> (uint(exp) - histSubBits)) & (histSubs - 1)
	return (exp-histSubBits)*histSubs + histSubs + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i — the
// conservative (under-) estimate reported by Quantile.
func bucketLow(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	i -= histSubs
	exp := uint(i/histSubs) + histSubBits
	sub := uint64(i % histSubs)
	return int64(1<<exp | sub<<(exp-histSubBits))
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.observeMin(v + 1)
	h.observeMax(v)
}

func (h *Histogram) observeMin(encoded int64) {
	for {
		cur := h.min.Load()
		if cur != 0 && encoded >= cur {
			return
		}
		if h.min.CompareAndSwap(cur, encoded) {
			return
		}
	}
}

func (h *Histogram) observeMax(v int64) {
	for {
		cur := h.max.Load()
		if v <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration adds one duration observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Reset zeroes the histogram. Not safe against concurrent Record; meant
// for test setup and between-run reuse, not the hot path.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if enc := h.min.Load(); enc != 0 {
		return enc - 1
	}
	return 0
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Merge folds src's observations into h. Safe against concurrent Record
// on either side; the result is a consistent-enough view for reporting
// (counts may trail sums by in-flight records). The merged sum uses
// bucket lower bounds, keeping it consistent with merged quantiles.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	var n, sum int64
	for i := range src.buckets {
		c := src.buckets[i].Load()
		if c == 0 {
			continue
		}
		h.buckets[i].Add(c)
		n += int64(c)
		sum += int64(c) * bucketLow(i)
	}
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(sum)
	if enc := src.min.Load(); enc != 0 {
		h.observeMin(enc)
	}
	h.observeMax(src.max.Load())
}

// Quantile returns the q-th quantile (q in [0,1]) as the lower bound of
// the bucket holding that rank — a conservative estimate within 6.25% of
// the true value. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Snapshot returns a point-in-time copy for offline queries and export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.Min()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, usable from a
// single goroutine without synchronisation.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [numBuckets]uint64
}

// Merge folds src into s.
func (s *HistogramSnapshot) Merge(src HistogramSnapshot) {
	if src.Count == 0 {
		return
	}
	if s.Count == 0 || src.Min < s.Min {
		s.Min = src.Min
	}
	if src.Max > s.Max {
		s.Max = src.Max
	}
	s.Count += src.Count
	s.Sum += src.Sum
	for i := range s.Buckets {
		s.Buckets[i] += src.Buckets[i]
	}
}

// Quantile mirrors Histogram.Quantile on the snapshot.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range s.Buckets {
		seen += int64(s.Buckets[i])
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return s.Max
}

// Mean returns the snapshot's mean observation.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// QuantileDuration reads a quantile of a nanosecond-valued snapshot as a
// Duration — the common case for latency histograms.
func (s *HistogramSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}
