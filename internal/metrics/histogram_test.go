package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and indices
	// must be monotone in the value.
	for i := 0; i < numBuckets; i++ {
		lo := bucketLow(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, lo, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx <= prev && v != 0 {
			t.Fatalf("bucketIndex(%d) = %d not monotone (prev %d)", v, idx, prev)
		}
		if lo := bucketLow(idx); lo > v {
			t.Fatalf("bucketLow(%d) = %d exceeds value %d", idx, lo, v)
		}
		prev = idx
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should read all zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d, want 5050", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want 1/100", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative record should clamp to 0, min = %d", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	xs := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like latencies.
		v := int64(math.Exp(rng.Float64() * 14))
		xs = append(xs, v)
		h.Record(v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(xs)))) - 1
		exact := xs[rank]
		got := h.Quantile(q)
		// Bucketing reports the bucket's lower bound: got ≤ exact and
		// within one sub-bucket (6.25%) of it.
		if got > exact {
			t.Fatalf("q%v: estimate %d above exact %d", q, got, exact)
		}
		if float64(exact-got) > float64(exact)/float64(histSubs)+1 {
			t.Fatalf("q%v: estimate %d too far below exact %d", q, got, exact)
		}
	}
	if h.Quantile(0) != xs[0] && h.Quantile(0) > xs[0] {
		t.Fatalf("q0 = %d, want ≤ %d", h.Quantile(0), xs[0])
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, m Histogram
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 5000)
	}
	m.Merge(&a)
	m.Merge(&b)
	m.Merge(nil) // no-op
	if m.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", m.Count())
	}
	if m.Min() != 0 || m.Max() != 5999 {
		t.Fatalf("merged min/max = %d/%d, want 0/5999", m.Min(), m.Max())
	}
	// Median of the merged stream sits at the top of a's range.
	med := m.Quantile(0.5)
	if med < 900 || med > 1000 {
		t.Fatalf("merged median = %d, want ~999", med)
	}

	var sa, sb HistogramSnapshot
	sa = a.Snapshot()
	sb = b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 2000 || sa.Min != 0 || sa.Max != 5999 {
		t.Fatalf("snapshot merge: count/min/max = %d/%d/%d", sa.Count, sa.Min, sa.Max)
	}
	if sa.Quantile(0.5) != med {
		t.Fatalf("snapshot median %d != histogram median %d", sa.Quantile(0.5), med)
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.RecordDuration(3 * time.Millisecond)
	s := h.Snapshot()
	d := s.QuantileDuration(1)
	if d < 2800*time.Microsecond || d > 3*time.Millisecond {
		t.Fatalf("duration quantile = %v, want ≈3ms (lower bound)", d)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Hammer Record/Merge/Quantile from many goroutines; -race is the
	// assertion, plus exact count/sum conservation at the end.
	var h Histogram
	const (
		workers = 8
		each    = 5000
	)
	var aux Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Record(int64(rng.Intn(1 << 20)))
				if i%512 == 0 {
					_ = h.Quantile(0.99)
					aux.Merge(&h)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	var total int64
	s := h.Snapshot()
	for _, c := range s.Buckets {
		total += int64(c)
	}
	if total != workers*each {
		t.Fatalf("bucket total = %d, want %d", total, workers*each)
	}
}
