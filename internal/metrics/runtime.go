package metrics

import (
	"fmt"
	"runtime"
)

// RuntimeStats is a point-in-time view of the Go runtime's memory and
// scheduler state, cheap enough to sample inside Stats calls and periodic
// log lines. The steady-state hot path is judged by exactly these numbers —
// allocation rate, GC pause budget, goroutine census — so they surface
// through the same snapshots as the protocol counters.
type RuntimeStats struct {
	// HeapAlloc is the live heap in bytes; HeapObjects the live object count.
	HeapAlloc   uint64
	HeapObjects uint64
	// TotalAlloc is the cumulative bytes allocated since process start —
	// the difference between two snapshots is the allocation churn of the
	// interval, which is what the per-round pools exist to suppress.
	TotalAlloc uint64
	// Goroutines is the current goroutine count. A session at steady state
	// holds this flat: persistent workers replace per-round spawning, so
	// growth here means a leak.
	Goroutines int
	// NumGC is the completed GC cycle count; PauseTotalNs the cumulative
	// stop-the-world pause time.
	NumGC        uint32
	PauseTotalNs uint64
}

// ReadRuntime samples the runtime. It uses runtime.ReadMemStats, which
// stops the world briefly — fine at Stats/logging cadence, not per round.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		HeapAlloc:    ms.HeapAlloc,
		HeapObjects:  ms.HeapObjects,
		TotalAlloc:   ms.TotalAlloc,
		Goroutines:   runtime.NumGoroutine(),
		NumGC:        ms.NumGC,
		PauseTotalNs: ms.PauseTotalNs,
	}
}

// String formats the gauges as one log-friendly line.
func (r RuntimeStats) String() string {
	return fmt.Sprintf("heap=%dKB objects=%d goroutines=%d gc=%d pause=%dµs",
		r.HeapAlloc>>10, r.HeapObjects, r.Goroutines, r.NumGC, r.PauseTotalNs/1000)
}
