package metrics

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, live lanes), safe for
// concurrent use. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Meter is a Counter with a birth time, so callers can read an average
// event rate without keeping their own clock. Create with NewMeter.
type Meter struct {
	count Counter
	start time.Time
	clock func() time.Time
}

// NewMeter starts a meter. A nil clock uses time.Now.
func NewMeter(clock func() time.Time) *Meter {
	if clock == nil {
		clock = time.Now
	}
	return &Meter{start: clock(), clock: clock}
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Count returns the events recorded so far.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate returns events per second since the meter started (0 before any
// time has elapsed).
func (m *Meter) Rate() float64 {
	elapsed := m.clock().Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed
}
