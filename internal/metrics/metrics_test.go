package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("empty accumulator should be zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Error("single observation stats wrong")
	}
}

// Property: Welford mean matches the naive mean.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		sum := 0.0
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return w.N() == 0
		}
		naive := sum / float64(count)
		return math.Abs(w.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 50}, {95, 95}, {100, 100}, {-5, 1}, {200, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	var empty Sample
	if empty.Percentile(50) != 0 {
		t.Error("empty sample percentile should be 0")
	}
}

func TestDurationStats(t *testing.T) {
	var d DurationStats
	d.Add(100 * time.Millisecond)
	d.Add(200 * time.Millisecond)
	d.Add(300 * time.Millisecond)
	if d.N() != 3 {
		t.Errorf("n = %d", d.N())
	}
	if got := d.Mean(); got != 200*time.Millisecond {
		t.Errorf("mean = %v", got)
	}
	if d.Min() != 100*time.Millisecond || d.Max() != 300*time.Millisecond {
		t.Error("min/max wrong")
	}
	if d.P(50) != 200*time.Millisecond {
		t.Errorf("p50 = %v", d.P(50))
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table(
		Row{Label: "n", Cols: []string{"centralized", "k=1"}},
		[]Row{
			{Label: "100", Cols: []string{"0.05s", "0.10s"}},
			{Label: "1000", Cols: []string{"0.40s", "0.90s"}},
		},
	)
	if !strings.Contains(out, "centralized") || !strings.Contains(out, "1000") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestMeterRate(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewMeter(func() time.Time { return now })
	if m.Rate() != 0 {
		t.Errorf("rate with no elapsed time = %v, want 0", m.Rate())
	}
	m.Mark(10)
	now = now.Add(2 * time.Second)
	if got := m.Rate(); got != 5 {
		t.Errorf("rate = %v, want 5", got)
	}
	if m.Count() != 10 {
		t.Errorf("count = %d, want 10", m.Count())
	}
}
