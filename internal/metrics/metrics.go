// Package metrics provides the small statistics toolkit used by the
// experiment harness: streaming mean/variance (Welford), percentiles and
// series formatting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Welford accumulates a stream's count, mean and variance in O(1) space.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 with none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 with none).
func (w *Welford) Max() float64 { return w.max }

// Sample collects observations for percentile queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add feeds one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
// It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.xs[rank]
}

// DurationStats summarises a set of durations.
type DurationStats struct {
	w Welford
	s Sample
}

// Add feeds one duration.
func (d *DurationStats) Add(t time.Duration) {
	d.w.Add(t.Seconds())
	d.s.Add(t.Seconds())
}

// N returns the number of observations.
func (d *DurationStats) N() int { return d.w.N() }

// Mean returns the mean duration.
func (d *DurationStats) Mean() time.Duration { return secs(d.w.Mean()) }

// Std returns the standard deviation.
func (d *DurationStats) Std() time.Duration { return secs(d.w.Std()) }

// Min returns the fastest observation.
func (d *DurationStats) Min() time.Duration { return secs(d.w.Min()) }

// Max returns the slowest observation.
func (d *DurationStats) Max() time.Duration { return secs(d.w.Max()) }

// P returns the p-th percentile.
func (d *DurationStats) P(p float64) time.Duration { return secs(d.s.Percentile(p)) }

func secs(v float64) time.Duration {
	return time.Duration(v * float64(time.Second))
}

// Row renders one experiment row: a label followed by columns.
type Row struct {
	Label string
	Cols  []string
}

// Table formats rows with aligned columns, suitable for terminal output and
// for pasting next to the paper's figures.
func Table(header Row, rows []Row) string {
	all := append([]Row{header}, rows...)
	widths := make([]int, 0)
	for _, r := range all {
		cells := append([]string{r.Label}, r.Cols...)
		for i, c := range cells {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range all {
		cells := append([]string{r.Label}, r.Cols...)
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
