// Package validate implements the input-validation building block (§4.2 of
// the paper, Property 3).
//
// Each provider broadcasts a digest of its allocator input (the agreed bid
// vector); if any two providers entered the allocator with different
// vectors, their digests differ and both output ⊥. This is what makes
// deviating at the bid agreement pointless: a provider that outputs a
// different vector there is caught here before any allocation work happens
// (condition (3) of Property 2).
//
// The paper's suggested implementation broadcasts the vectors themselves;
// broadcasting a SHA-256 digest detects exactly the same mismatches at
// constant message size.
package validate

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"

	"distauction/internal/proto"
	"distauction/internal/wire"
)

const stepDigest uint8 = 1

// Run validates that every provider holds the same input. It returns nil
// when all digests agree, and aborts the round (⊥) otherwise.
func Run(ctx context.Context, peer *proto.Peer, round uint64, input []byte) error {
	if err := peer.AbortErr(round); err != nil {
		return err
	}
	digest := sha256.Sum256(input)
	tag := wire.Tag{Round: round, Block: wire.BlockValidate, Instance: 0, Step: stepDigest}
	if err := peer.BroadcastProviders(tag, digest[:]); err != nil {
		return peer.FailRound(round, fmt.Sprintf("validate: broadcast: %v", err))
	}
	providers := peer.Providers()
	digests, err := peer.GatherOrdered(ctx, tag, providers)
	if err != nil {
		if abortErr := peer.AbortErr(round); abortErr != nil {
			return abortErr
		}
		return peer.FailRound(round, fmt.Sprintf("validate: gather: %v", err))
	}
	for i, d := range digests {
		if !bytes.Equal(d, digest[:]) {
			return peer.FailRound(round, fmt.Sprintf("validate: input mismatch with provider %d", providers[i]))
		}
	}
	return nil
}
