package validate

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

func runAll(t *testing.T, peers []*proto.Peer, round uint64, inputs [][]byte) []error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			errs[i] = Run(ctx, p, round, inputs[i])
		}(i, p)
	}
	wg.Wait()
	return errs
}

func TestAllSameInputPasses(t *testing.T) {
	peers := newPeers(t, 4)
	in := []byte("the agreed bid vector")
	errs := runAll(t, peers, 1, [][]byte{in, in, in, in})
	for i, err := range errs {
		if err != nil {
			t.Errorf("peer %d: %v", i, err)
		}
	}
}

func TestMismatchAborts(t *testing.T) {
	peers := newPeers(t, 3)
	errs := runAll(t, peers, 1, [][]byte{
		[]byte("vector-A"), []byte("vector-A"), []byte("vector-B"),
	})
	// Property 3(1): the two providers with different inputs both output ⊥.
	// In this implementation every provider aborts, which is stronger.
	for i, err := range errs {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("peer %d: got %v, want abort", i, err)
		}
	}
}

func TestEmptyInputsAgree(t *testing.T) {
	peers := newPeers(t, 2)
	errs := runAll(t, peers, 1, [][]byte{nil, nil})
	for i, err := range errs {
		if err != nil {
			t.Errorf("peer %d: %v", i, err)
		}
	}
}

func TestAlreadyAbortedRound(t *testing.T) {
	peers := newPeers(t, 2)
	if err := peers[0].Abort(3, "pre"); err != nil {
		t.Fatal(err)
	}
	if err := Run(context.Background(), peers[0], 3, []byte("x")); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("got %v, want abort", err)
	}
}

func TestSilentProviderTimesOut(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Run(ctx, peers[i], 1, []byte("v"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("peer %d succeeded despite silent peer", i)
		}
	}
}
