package ledger

import (
	"errors"
	"testing"
	"testing/quick"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/wire"
)

func newFunded(t *testing.T, accounts map[wire.NodeID]float64) *Ledger {
	t.Helper()
	l := New()
	for id, bal := range accounts {
		l.Open(id)
		if bal > 0 {
			if err := l.Deposit(id, fixed.MustFloat(bal)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return l
}

func TestDepositAndBalance(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 10})
	if got := l.Balance(1); got != fixed.MustFloat(10) {
		t.Errorf("balance = %v", got)
	}
	if got := l.Balance(99); got != 0 {
		t.Errorf("unknown account balance = %v", got)
	}
	if err := l.Deposit(99, fixed.One); err == nil {
		t.Error("deposit to unknown account accepted")
	}
	if err := l.Deposit(1, -1); err == nil {
		t.Error("negative deposit accepted")
	}
}

func TestSettleAtomicCommit(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 10, 2: 0, 3: 0})
	err := l.Settle(1, []Transfer{
		{From: 1, To: 2, Amount: fixed.MustFloat(4)},
		{From: 1, To: 3, Amount: fixed.MustFloat(6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Balance(1) != 0 || l.Balance(2) != fixed.MustFloat(4) || l.Balance(3) != fixed.MustFloat(6) {
		t.Error("balances wrong after settle")
	}
	if len(l.Journal()) != 2 {
		t.Error("journal incomplete")
	}
}

func TestSettleAtomicAbortOnInsufficient(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 5, 2: 0, 3: 0})
	err := l.Settle(1, []Transfer{
		{From: 1, To: 2, Amount: fixed.MustFloat(4)},
		{From: 1, To: 3, Amount: fixed.MustFloat(4)}, // would overdraw
	})
	if !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("got %v, want insufficient funds", err)
	}
	// Nothing applied.
	if l.Balance(1) != fixed.MustFloat(5) || l.Balance(2) != 0 || l.Balance(3) != 0 {
		t.Error("partial settlement leaked")
	}
	if len(l.Journal()) != 0 {
		t.Error("journal recorded an aborted settlement")
	}
}

func TestSettleNettingWithinBatch(t *testing.T) {
	// 2 pays out what it receives within the same batch: netting makes it
	// feasible even though 2 starts at zero.
	l := newFunded(t, map[wire.NodeID]float64{1: 10, 2: 0, 3: 0})
	err := l.Settle(1, []Transfer{
		{From: 1, To: 2, Amount: fixed.MustFloat(10)},
		{From: 2, To: 3, Amount: fixed.MustFloat(10)},
	})
	if err != nil {
		t.Fatalf("netted settlement rejected: %v", err)
	}
	if l.Balance(3) != fixed.MustFloat(10) {
		t.Error("netted settlement wrong")
	}
}

func TestSettleRejectsBadTransfers(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 10})
	if err := l.Settle(1, []Transfer{{From: 1, To: 99, Amount: 1}}); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := l.Settle(1, []Transfer{{From: 99, To: 1, Amount: 1}}); err == nil {
		t.Error("unknown source accepted")
	}
	if err := l.Settle(1, []Transfer{{From: 1, To: 1, Amount: -1}}); err == nil {
		t.Error("negative amount accepted")
	}
}

// Property: settlement conserves total supply.
func TestQuickSupplyConserved(t *testing.T) {
	f := func(amounts []uint16) bool {
		l := newFunded(t, map[wire.NodeID]float64{1: 1000, 2: 1000, 3: 1000})
		before := l.TotalSupply()
		var ts []Transfer
		for i, a := range amounts {
			ts = append(ts, Transfer{
				From:   wire.NodeID(1 + i%3),
				To:     wire.NodeID(1 + (i+1)%3),
				Amount: fixed.Fixed(a),
			})
		}
		_ = l.Settle(1, ts) // may fail; supply must hold either way
		return l.TotalSupply() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeTransfers(t *testing.T) {
	out := auction.Outcome{Alloc: auction.NewAllocation(2, 2), Pay: auction.NewPayments(2, 2)}
	out.Pay.ByUser[0] = fixed.MustFloat(8)
	out.Pay.ToProvider[0] = fixed.MustFloat(2)
	users := []wire.NodeID{100, 101}
	provs := []wire.NodeID{1, 2}

	ts, err := OutcomeTransfers(out, users, provs, 999)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d transfers, want 2 (zero payments skipped)", len(ts))
	}
	if ts[0].From != 100 || ts[0].To != 999 || ts[0].Amount != fixed.MustFloat(8) {
		t.Errorf("user transfer wrong: %+v", ts[0])
	}
	if ts[1].From != 999 || ts[1].To != 1 || ts[1].Amount != fixed.MustFloat(2) {
		t.Errorf("provider transfer wrong: %+v", ts[1])
	}

	// End to end: settle and check the escrow keeps the McAfee surplus.
	l := newFunded(t, map[wire.NodeID]float64{100: 10, 101: 10, 1: 0, 2: 0, 999: 0})
	if err := l.Settle(1, ts); err != nil {
		t.Fatal(err)
	}
	if l.Balance(999) != fixed.MustFloat(6) {
		t.Errorf("escrow = %v, want 6 (surplus)", l.Balance(999))
	}

	if _, err := OutcomeTransfers(out, users[:1], provs, 999); err == nil {
		t.Error("shape mismatch accepted")
	}
}
