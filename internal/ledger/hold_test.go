package ledger

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"distauction/internal/fixed"
	"distauction/internal/wire"
)

func TestReserveCommitReplayEqualsSettle(t *testing.T) {
	batches := [][]Transfer{
		{
			{From: 1, To: 9, Amount: fixed.MustFloat(4), Memo: "auction payment"},
			{From: 9, To: 2, Amount: fixed.MustFloat(3), Memo: "auction revenue"},
		},
		{
			{From: 1, To: 9, Amount: fixed.MustFloat(2), Memo: "auction payment"},
			{From: 9, To: 3, Amount: fixed.MustFloat(2), Memo: "auction revenue"},
		},
	}
	fund := map[wire.NodeID]float64{1: 10, 2: 0, 3: 0, 9: 0}

	direct := newFunded(t, fund)
	staged := newFunded(t, fund)
	for r, batch := range batches {
		if err := direct.Settle(uint64(r+1), batch); err != nil {
			t.Fatal(err)
		}
		id, err := staged.Reserve(uint64(r+1), batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := staged.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(direct.Journal(), staged.Journal()) {
		t.Errorf("journals diverge:\nsettle:  %+v\nstaged:  %+v", direct.Journal(), staged.Journal())
	}
	for id := range fund {
		if direct.Balance(id) != staged.Balance(id) {
			t.Errorf("account %d: settle %v, staged %v", id, direct.Balance(id), staged.Balance(id))
		}
	}
	if staged.Holds() != 0 || staged.HeldFunds() != 0 {
		t.Errorf("holds linger: %d holds, %v held", staged.Holds(), staged.HeldFunds())
	}
}

func TestReserveFencesFunds(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 10, 9: 0})
	pay := func(amount float64) []Transfer {
		return []Transfer{{From: 1, To: 9, Amount: fixed.MustFloat(amount)}}
	}
	id, err := l.Reserve(1, pay(7))
	if err != nil {
		t.Fatal(err)
	}
	// The reserved 7 are gone from the spendable balance: a second reserve
	// for more than the 3 left must fail — this IS the cross-shard
	// insufficient-funds case.
	if _, err := l.Reserve(2, pay(4)); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overlapping reserve: %v", err)
	}
	if got := l.TotalSupply(); got != fixed.MustFloat(10) {
		t.Errorf("supply mid-hold = %v", got)
	}
	if err := l.Release(id); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(1); got != fixed.MustFloat(10) {
		t.Errorf("balance after release = %v", got)
	}
	if len(l.Journal()) != 0 {
		t.Errorf("release journaled %d entries", len(l.Journal()))
	}
	// With the hold gone the second payment fits again.
	if _, err := l.Reserve(3, pay(4)); err != nil {
		t.Fatal(err)
	}
}

func TestHoldDoubleFinishRejected(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 10, 9: 0})
	id, err := l.Reserve(1, []Transfer{{From: 1, To: 9, Amount: fixed.One}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(id); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(id); !errors.Is(err, ErrUnknownHold) {
		t.Errorf("double commit: %v", err)
	}
	if err := l.Release(id); !errors.Is(err, ErrUnknownHold) {
		t.Errorf("release after commit: %v", err)
	}
	if err := l.Release(HoldID(999)); !errors.Is(err, ErrUnknownHold) {
		t.Errorf("release of never-created hold: %v", err)
	}
}

func TestReserveRejectsBadBatches(t *testing.T) {
	l := newFunded(t, map[wire.NodeID]float64{1: 1, 9: 0})
	if _, err := l.Reserve(1, []Transfer{{From: 1, To: 9, Amount: -1}}); !errors.Is(err, ErrBadTransfer) {
		t.Errorf("negative amount: %v", err)
	}
	if _, err := l.Reserve(1, []Transfer{{From: 7, To: 9, Amount: fixed.One}}); !errors.Is(err, ErrBadTransfer) {
		t.Errorf("unknown account: %v", err)
	}
	if _, err := l.Reserve(1, []Transfer{{From: 1, To: 9, Amount: fixed.MustFloat(2)}}); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("overdraw: %v", err)
	}
	if l.Holds() != 0 {
		t.Errorf("failed reserves left %d holds", l.Holds())
	}
}

// TestConcurrentHoldsConserveSupply hammers Reserve/Commit/Release from many
// goroutines (run under -race) and asserts total supply — balances plus
// held funds — is conserved at every step and at the end.
func TestConcurrentHoldsConserveSupply(t *testing.T) {
	const workers = 8
	const iters = 200
	accounts := map[wire.NodeID]float64{9: 0}
	var ids []wire.NodeID
	for i := 1; i <= workers; i++ {
		accounts[wire.NodeID(i)] = 100
		ids = append(ids, wire.NodeID(i))
	}
	l := newFunded(t, accounts)
	supply := l.TotalSupply()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			self := ids[w]
			for i := 0; i < iters; i++ {
				id, err := l.Reserve(uint64(i+1), []Transfer{
					{From: self, To: 9, Amount: fixed.MustFloat(0.25)},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got := l.TotalSupply(); got != supply {
					t.Errorf("supply mid-hold = %v, want %v", got, supply)
					return
				}
				var finish error
				if i%3 == 0 {
					finish = l.Release(id)
				} else {
					finish = l.Commit(id)
				}
				if finish != nil {
					t.Error(finish)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.TotalSupply(); got != supply {
		t.Errorf("final supply = %v, want %v", got, supply)
	}
	if l.Holds() != 0 || l.HeldFunds() != 0 {
		t.Errorf("holds linger: %d holds, %v held", l.Holds(), l.HeldFunds())
	}
}
