// Package ledger implements the currency settlement layer of the
// deployment: the "external mechanism" of §3.2 that, when the outcome is
// (x, ~p), makes every entity perform or receive its payments — and, when
// the outcome is ⊥, moves no money at all.
//
// Settlement is atomic: either every transfer of a round applies or none
// does. This is what gives providers "preference for a solution": payment
// happens only on unanimous non-⊥ outcomes.
package ledger

import (
	"errors"
	"fmt"
	"sync"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/wire"
)

// ErrInsufficientFunds reports a settlement that would overdraw an account.
var ErrInsufficientFunds = errors.New("ledger: insufficient funds")

// ErrBadTransfer reports a malformed transfer (negative amount, unknown
// account).
var ErrBadTransfer = errors.New("ledger: bad transfer")

// Transfer moves Amount from one account to another.
type Transfer struct {
	From   wire.NodeID
	To     wire.NodeID
	Amount fixed.Fixed
	Memo   string
}

// Entry is one journaled transfer.
type Entry struct {
	Seq    uint64
	Round  uint64
	From   wire.NodeID
	To     wire.NodeID
	Amount fixed.Fixed
	Memo   string
}

// Ledger holds account balances and an append-only journal.
type Ledger struct {
	mu       sync.Mutex
	balances map[wire.NodeID]fixed.Fixed
	journal  []Entry
	seq      uint64
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{balances: make(map[wire.NodeID]fixed.Fixed)}
}

// Open creates the account if needed (zero balance). Transfers to unknown
// accounts fail, so deployments open accounts explicitly.
func (l *Ledger) Open(id wire.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[id]; !ok {
		l.balances[id] = 0
	}
}

// Deposit credits an account from outside the system (e.g. a community
// member buying credit).
func (l *Ledger) Deposit(id wire.NodeID, amount fixed.Fixed) error {
	if amount <= 0 {
		return fmt.Errorf("%w: non-positive deposit", ErrBadTransfer)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[id]; !ok {
		return fmt.Errorf("%w: unknown account %d", ErrBadTransfer, id)
	}
	l.balances[id] = l.balances[id].SatAdd(amount)
	return nil
}

// Balance returns the current balance of an account (0 for unknown).
func (l *Ledger) Balance(id wire.NodeID) fixed.Fixed {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[id]
}

// Settle atomically applies all transfers of a round. If any transfer is
// malformed or any account would go negative after the *whole batch*, no
// transfer applies.
func (l *Ledger) Settle(round uint64, transfers []Transfer) error {
	l.mu.Lock()
	defer l.mu.Unlock()

	// Dry-run on a delta map.
	delta := make(map[wire.NodeID]fixed.Fixed)
	for _, t := range transfers {
		if t.Amount < 0 {
			return fmt.Errorf("%w: negative amount", ErrBadTransfer)
		}
		if _, ok := l.balances[t.From]; !ok {
			return fmt.Errorf("%w: unknown account %d", ErrBadTransfer, t.From)
		}
		if _, ok := l.balances[t.To]; !ok {
			return fmt.Errorf("%w: unknown account %d", ErrBadTransfer, t.To)
		}
		delta[t.From] = delta[t.From].SatSub(t.Amount)
		delta[t.To] = delta[t.To].SatAdd(t.Amount)
	}
	for id, d := range delta {
		if l.balances[id].SatAdd(d) < 0 {
			return fmt.Errorf("%w: account %d", ErrInsufficientFunds, id)
		}
	}
	// Commit.
	for id, d := range delta {
		l.balances[id] = l.balances[id].SatAdd(d)
	}
	for _, t := range transfers {
		l.seq++
		l.journal = append(l.journal, Entry{
			Seq: l.seq, Round: round, From: t.From, To: t.To, Amount: t.Amount, Memo: t.Memo,
		})
	}
	return nil
}

// Journal returns a copy of the full journal.
func (l *Ledger) Journal() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.journal...)
}

// TotalSupply returns the sum of all balances (conserved by Settle).
func (l *Ledger) TotalSupply() fixed.Fixed {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total fixed.Fixed
	for _, b := range l.balances {
		total = total.SatAdd(b)
	}
	return total
}

// OutcomeTransfers converts an auction outcome into the settlement batch:
// each user pays the escrow account, and the escrow pays each provider.
// Budget-balanced mechanisms leave a non-negative surplus in escrow (the
// McAfee surplus; community deployments typically recycle it into
// infrastructure).
func OutcomeTransfers(out auction.Outcome, users, providers []wire.NodeID, escrow wire.NodeID) ([]Transfer, error) {
	if len(users) != out.Alloc.NumUsers || len(providers) != out.Alloc.NumProviders {
		return nil, fmt.Errorf("%w: outcome shape vs account lists", ErrBadTransfer)
	}
	var ts []Transfer
	for i, id := range users {
		if amt := out.Pay.ByUser[i]; amt > 0 {
			ts = append(ts, Transfer{From: id, To: escrow, Amount: amt, Memo: "auction payment"})
		}
	}
	for j, id := range providers {
		if amt := out.Pay.ToProvider[j]; amt > 0 {
			ts = append(ts, Transfer{From: escrow, To: id, Amount: amt, Memo: "auction revenue"})
		}
	}
	return ts, nil
}
