// Package ledger implements the currency settlement layer of the
// deployment: the "external mechanism" of §3.2 that, when the outcome is
// (x, ~p), makes every entity perform or receive its payments — and, when
// the outcome is ⊥, moves no money at all.
//
// Settlement is atomic: either every transfer of a round applies or none
// does. This is what gives providers "preference for a solution": payment
// happens only on unanimous non-⊥ outcomes.
package ledger

import (
	"errors"
	"fmt"
	"sync"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/wire"
)

// ErrInsufficientFunds reports a settlement that would overdraw an account.
var ErrInsufficientFunds = errors.New("ledger: insufficient funds")

// ErrBadTransfer reports a malformed transfer (negative amount, unknown
// account).
var ErrBadTransfer = errors.New("ledger: bad transfer")

// ErrUnknownHold reports a commit or release of a hold that does not exist
// (never created, or already committed/released).
var ErrUnknownHold = errors.New("ledger: unknown hold")

// Transfer moves Amount from one account to another.
type Transfer struct {
	From   wire.NodeID
	To     wire.NodeID
	Amount fixed.Fixed
	Memo   string
}

// Entry is one journaled transfer.
type Entry struct {
	Seq    uint64
	Round  uint64
	From   wire.NodeID
	To     wire.NodeID
	Amount fixed.Fixed
	Memo   string
}

// HoldID identifies a pending two-phase hold on this ledger.
type HoldID uint64

// hold is a reserved-but-uncommitted settlement batch: the payer side is
// already debited (the funds are fenced off), the payee side applies at
// Commit, and Release refunds the debits.
type hold struct {
	round     uint64
	transfers []Transfer
	debits    map[wire.NodeID]fixed.Fixed // positive amounts taken at Reserve
	credits   map[wire.NodeID]fixed.Fixed // positive amounts granted at Commit
}

// Ledger holds account balances and an append-only journal.
type Ledger struct {
	mu       sync.Mutex
	balances map[wire.NodeID]fixed.Fixed
	journal  []Entry
	seq      uint64
	holds    map[HoldID]*hold
	nextHold HoldID
	held     fixed.Fixed // sum of all holds' debits (in-flight funds)
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{
		balances: make(map[wire.NodeID]fixed.Fixed),
		holds:    make(map[HoldID]*hold),
	}
}

// Open creates the account if needed (zero balance). Transfers to unknown
// accounts fail, so deployments open accounts explicitly.
func (l *Ledger) Open(id wire.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[id]; !ok {
		l.balances[id] = 0
	}
}

// Deposit credits an account from outside the system (e.g. a community
// member buying credit).
func (l *Ledger) Deposit(id wire.NodeID, amount fixed.Fixed) error {
	if amount <= 0 {
		return fmt.Errorf("%w: non-positive deposit", ErrBadTransfer)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.balances[id]; !ok {
		return fmt.Errorf("%w: unknown account %d", ErrBadTransfer, id)
	}
	l.balances[id] = l.balances[id].SatAdd(amount)
	return nil
}

// Balance returns the current balance of an account (0 for unknown).
func (l *Ledger) Balance(id wire.NodeID) fixed.Fixed {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[id]
}

// deltasLocked validates a batch and computes its per-account net deltas,
// failing if any transfer is malformed or any account would go negative
// after the whole batch. Caller holds l.mu.
func (l *Ledger) deltasLocked(transfers []Transfer) (map[wire.NodeID]fixed.Fixed, error) {
	delta := make(map[wire.NodeID]fixed.Fixed)
	for _, t := range transfers {
		if t.Amount < 0 {
			return nil, fmt.Errorf("%w: negative amount", ErrBadTransfer)
		}
		if _, ok := l.balances[t.From]; !ok {
			return nil, fmt.Errorf("%w: unknown account %d", ErrBadTransfer, t.From)
		}
		if _, ok := l.balances[t.To]; !ok {
			return nil, fmt.Errorf("%w: unknown account %d", ErrBadTransfer, t.To)
		}
		delta[t.From] = delta[t.From].SatSub(t.Amount)
		delta[t.To] = delta[t.To].SatAdd(t.Amount)
	}
	for id, d := range delta {
		if l.balances[id].SatAdd(d) < 0 {
			return nil, fmt.Errorf("%w: account %d", ErrInsufficientFunds, id)
		}
	}
	return delta, nil
}

// journalLocked appends a batch to the journal. Caller holds l.mu.
func (l *Ledger) journalLocked(round uint64, transfers []Transfer) {
	for _, t := range transfers {
		l.seq++
		l.journal = append(l.journal, Entry{
			Seq: l.seq, Round: round, From: t.From, To: t.To, Amount: t.Amount, Memo: t.Memo,
		})
	}
}

// Settle atomically applies all transfers of a round. If any transfer is
// malformed or any account would go negative after the *whole batch*, no
// transfer applies.
func (l *Ledger) Settle(round uint64, transfers []Transfer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delta, err := l.deltasLocked(transfers)
	if err != nil {
		return err
	}
	for id, d := range delta {
		l.balances[id] = l.balances[id].SatAdd(d)
	}
	l.journalLocked(round, transfers)
	return nil
}

// Reserve is the prepare half of a two-phase settlement: it validates the
// batch exactly as Settle would and immediately debits the paying side, so
// the funds are fenced off — a later Reserve cannot spend them — but
// nothing is journaled and nobody is paid yet. The hold then either
// Commits (payees credited, batch journaled, byte-for-byte what Settle
// would have written) or Releases (debits refunded, no trace). This is the
// ledger leg of cross-shard settlement: a coordinator reserves on every
// shard's outcome first and commits only if all reservations succeed, so a
// user who won on two shards pays on both or on neither.
func (l *Ledger) Reserve(round uint64, transfers []Transfer) (HoldID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delta, err := l.deltasLocked(transfers)
	if err != nil {
		return 0, err
	}
	h := &hold{
		round:     round,
		transfers: append([]Transfer(nil), transfers...),
		debits:    make(map[wire.NodeID]fixed.Fixed),
		credits:   make(map[wire.NodeID]fixed.Fixed),
	}
	for id, d := range delta {
		if d < 0 {
			h.debits[id] = -d
			l.balances[id] = l.balances[id].SatAdd(d)
			l.held = l.held.SatSub(d)
		} else if d > 0 {
			h.credits[id] = d
		}
	}
	l.nextHold++
	l.holds[l.nextHold] = h
	return l.nextHold, nil
}

// Commit finalises a hold: payees are credited and the batch is journaled,
// exactly as if Settle(round, transfers) had run at this point.
func (l *Ledger) Commit(id HoldID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.holds[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownHold, id)
	}
	delete(l.holds, id)
	for acct, amt := range h.credits {
		l.balances[acct] = l.balances[acct].SatAdd(amt)
	}
	for _, amt := range h.debits {
		l.held = l.held.SatSub(amt)
	}
	l.journalLocked(h.round, h.transfers)
	return nil
}

// Release abandons a hold: the debits taken at Reserve are refunded and no
// journal entry is written — as if the batch had never been submitted.
func (l *Ledger) Release(id HoldID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.holds[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownHold, id)
	}
	delete(l.holds, id)
	for acct, amt := range h.debits {
		l.balances[acct] = l.balances[acct].SatAdd(amt)
		l.held = l.held.SatSub(amt)
	}
	return nil
}

// Holds returns the number of pending (reserved, neither committed nor
// released) holds.
func (l *Ledger) Holds() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.holds)
}

// HeldFunds returns the total amount currently fenced off by pending holds.
func (l *Ledger) HeldFunds() fixed.Fixed {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.held
}

// Journal returns a copy of the full journal.
func (l *Ledger) Journal() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.journal...)
}

// TotalSupply returns the sum of all balances plus all funds fenced off by
// pending holds — conserved by Settle and by every Reserve/Commit/Release
// path, so supply-conservation assertions hold even mid-two-phase.
func (l *Ledger) TotalSupply() fixed.Fixed {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.held
	for _, b := range l.balances {
		total = total.SatAdd(b)
	}
	return total
}

// OutcomeTransfers converts an auction outcome into the settlement batch:
// each user pays the escrow account, and the escrow pays each provider.
// Budget-balanced mechanisms leave a non-negative surplus in escrow (the
// McAfee surplus; community deployments typically recycle it into
// infrastructure).
func OutcomeTransfers(out auction.Outcome, users, providers []wire.NodeID, escrow wire.NodeID) ([]Transfer, error) {
	if len(users) != out.Alloc.NumUsers || len(providers) != out.Alloc.NumProviders {
		return nil, fmt.Errorf("%w: outcome shape vs account lists", ErrBadTransfer)
	}
	var ts []Transfer
	for i, id := range users {
		if amt := out.Pay.ByUser[i]; amt > 0 {
			ts = append(ts, Transfer{From: id, To: escrow, Amount: amt, Memo: "auction payment"})
		}
	}
	for j, id := range providers {
		if amt := out.Pay.ToProvider[j]; amt > 0 {
			ts = append(ts, Transfer{From: escrow, To: id, Amount: amt, Memo: "auction revenue"})
		}
	}
	return ts, nil
}
