// Package taskgraph implements the parallel simulation of the allocation
// algorithm A (§4.2 of the paper, Figures 2 and 3).
//
// The execution of A is decomposed into a DAG of tasks. Each task is
// assigned to a group of at least k+1 providers, so no coalition of size ≤ k
// controls any task; group members execute the task redundantly and
// cross-validate their results by digest. When a task's result is needed by
// a task with a different group, it crosses via the data-transfer block.
// Tasks that draw randomness obtain it from the common coin; such tasks must
// be assigned to the full provider set, because the coin involves everyone.
// The final task depends (transitively) on every other task, runs at all
// providers, and its result is the allocator's output.
//
// Two providers assigned to disjoint tasks execute them concurrently — this
// is where the framework's parallel speedup (Figure 5) comes from.
package taskgraph

import (
	"bytes"
	"cmp"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"slices"

	"distauction/internal/coin"
	"distauction/internal/datatransfer"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

const stepTaskDigest uint8 = 1

// ErrBadGraph reports a structurally invalid task graph.
var ErrBadGraph = errors.New("taskgraph: invalid graph")

// ErrCoinUnavailable reports a Coin() call from a task not assigned to the
// full provider set.
var ErrCoinUnavailable = errors.New("taskgraph: coin requires a full-provider task")

// TaskContext carries a task's inputs and services into its Run function.
type TaskContext struct {
	// Round is the auction round being simulated.
	Round uint64
	// Inputs holds the outputs of the task's dependencies, keyed by task ID.
	Inputs map[uint32][]byte

	coinFn func() (uint64, error)
}

// Coin draws a shared random seed from the common coin. All group members
// obtain the same seed. Only tasks assigned to the full provider set may
// call it; Validate enforces the restriction statically for graphs that
// declare UsesCoin.
func (tc *TaskContext) Coin() (uint64, error) {
	if tc.coinFn == nil {
		return 0, ErrCoinUnavailable
	}
	return tc.coinFn()
}

// TaskFunc is the deterministic computation of one task: same inputs and
// same coin draws must yield identical bytes at every group member.
type TaskFunc func(ctx context.Context, tc *TaskContext) ([]byte, error)

// Task is a node of the graph.
type Task struct {
	// ID identifies the task; IDs must be unique and topologically ordered
	// (every dependency has a smaller ID than its dependent).
	ID uint32
	// Name appears in error messages.
	Name string
	// Deps lists the task IDs whose outputs this task consumes.
	Deps []uint32
	// Group is the provider set that executes the task (≥ k+1 members).
	Group []wire.NodeID
	// UsesCoin declares that Run calls TaskContext.Coin.
	UsesCoin bool
	// Run is the task body.
	Run TaskFunc
}

// Graph is a validated task decomposition.
type Graph struct {
	tasks    []Task
	edges    []edge   // transfer schedule, ordered deterministically
	inEdges  [][]edge // per task: edges delivering its inputs
	outEdges [][]edge // per task: edges publishing its result
}

// edge is a cross-group data dependency (from → to).
type edge struct {
	from, to int // indexes into tasks
	instance uint32
}

// New assembles and validates a graph for the given provider set and
// coalition bound k.
func New(providers []wire.NodeID, k int, tasks []Task) (*Graph, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrBadGraph)
	}
	sorted := append([]Task(nil), tasks...)
	slices.SortFunc(sorted, func(a, b Task) int { return cmp.Compare(a.ID, b.ID) })

	all := append([]wire.NodeID(nil), providers...)
	proto.SortNodes(all)

	index := make(map[uint32]int, len(sorted))
	for i := range sorted {
		t := &sorted[i]
		if _, dup := index[t.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate task id %d", ErrBadGraph, t.ID)
		}
		index[t.ID] = i
		if t.Run == nil {
			return nil, fmt.Errorf("%w: task %d has no Run", ErrBadGraph, t.ID)
		}
		if len(t.Group) < k+1 {
			return nil, fmt.Errorf("%w: task %d group has %d members, need ≥ k+1 = %d",
				ErrBadGraph, t.ID, len(t.Group), k+1)
		}
		t.Group = append([]wire.NodeID(nil), t.Group...)
		proto.SortNodes(t.Group)
		for _, g := range t.Group {
			if !proto.ContainsNode(all, g) {
				return nil, fmt.Errorf("%w: task %d group member %d is not a provider", ErrBadGraph, t.ID, g)
			}
		}
		if t.UsesCoin && !proto.EqualNodes(t.Group, all) {
			return nil, fmt.Errorf("%w: task %d uses the coin but is not assigned to all providers",
				ErrBadGraph, t.ID)
		}
		for _, d := range t.Deps {
			j, ok := index[d]
			if !ok || sorted[j].ID >= t.ID {
				return nil, fmt.Errorf("%w: task %d depends on %d which is missing or not earlier",
					ErrBadGraph, t.ID, d)
			}
		}
	}

	// The final task must run at all providers and transitively depend on
	// every other task, so that the framework's output exists everywhere
	// and reflects the whole computation.
	final := &sorted[len(sorted)-1]
	if !proto.EqualNodes(final.Group, all) {
		return nil, fmt.Errorf("%w: final task %d must be assigned to all providers", ErrBadGraph, final.ID)
	}
	reach := make(map[uint32]bool, len(sorted))
	var mark func(id uint32)
	mark = func(id uint32) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, d := range sorted[index[id]].Deps {
			mark(d)
		}
	}
	mark(final.ID)
	if len(reach) != len(sorted) {
		return nil, fmt.Errorf("%w: final task does not depend on every task (%d of %d reachable)",
			ErrBadGraph, len(reach), len(sorted))
	}

	// Enumerate cross-group edges in deterministic order; the edge index is
	// the data-transfer instance number at every provider.
	g := &Graph{
		tasks:    sorted,
		inEdges:  make([][]edge, len(sorted)),
		outEdges: make([][]edge, len(sorted)),
	}
	for i := range sorted {
		t := &sorted[i]
		deps := append([]uint32(nil), t.Deps...)
		slices.Sort(deps)
		for _, d := range deps {
			from := index[d]
			if proto.EqualNodes(sorted[from].Group, t.Group) {
				continue // same group already holds the value
			}
			e := edge{from: from, to: i, instance: uint32(len(g.edges))}
			g.edges = append(g.edges, e)
			g.inEdges[i] = append(g.inEdges[i], e)
			g.outEdges[from] = append(g.outEdges[from], e)
		}
	}
	return g, nil
}

// Tasks returns the tasks in execution (ID) order.
func (g *Graph) Tasks() []Task { return g.tasks }

// NumTransfers returns the number of cross-group transfers per execution.
func (g *Graph) NumTransfers() int { return len(g.edges) }

// Execute runs the graph at the local provider and returns the final task's
// output. Every provider of the round must call Execute with an identical
// graph. Deviations, mismatched redundant results, and timeouts abort the
// round (⊥).
func Execute(ctx context.Context, peer *proto.Peer, round uint64, g *Graph) ([]byte, error) {
	if err := peer.AbortErr(round); err != nil {
		return nil, err
	}
	self := peer.Self()
	results := make(map[uint32][]byte, len(g.tasks))

	// Coin instances are numbered per graph execution in call order; only
	// full-provider tasks draw, and they execute the same calls in the same
	// order everywhere, so the numbering agrees across providers.
	var coinSeq uint32

	for ti := range g.tasks {
		t := &g.tasks[ti]
		inGroup := proto.ContainsNode(t.Group, self)

		// Pull the inputs that cross group boundaries into this task.
		// Senders already pushed them right after computing (below), so
		// disjoint groups never wait on each other's unrelated work.
		if inGroup {
			for _, e := range g.inEdges[ti] {
				src := &g.tasks[e.from]
				v, err := datatransfer.Recv(ctx, peer, round, e.instance, src.Group)
				if err != nil {
					return nil, err
				}
				results[src.ID] = v
			}
		}

		if !inGroup {
			continue
		}

		// Assemble the task context.
		tc := &TaskContext{Round: round, Inputs: make(map[uint32][]byte, len(t.Deps))}
		for _, d := range t.Deps {
			v, ok := results[d]
			if !ok {
				return nil, peer.FailRound(round, fmt.Sprintf(
					"taskgraph: task %d (%s) missing input %d", t.ID, t.Name, d))
			}
			tc.Inputs[d] = v
		}
		if t.UsesCoin {
			tc.coinFn = func() (uint64, error) {
				inst := coinSeq
				coinSeq++
				return coin.Toss(ctx, peer, round, inst)
			}
		}

		out, err := t.Run(ctx, tc)
		if err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf(
				"taskgraph: task %d (%s) failed: %v", t.ID, t.Name, err))
		}

		// Cross-validate the redundant computation within the group: every
		// member broadcasts a digest of its result; any mismatch means some
		// member deviated (or the task is nondeterministic) and the round
		// aborts before the bad value can propagate.
		digest := sha256.Sum256(out)
		tag := wire.Tag{Round: round, Block: wire.BlockTask, Instance: t.ID, Step: stepTaskDigest}
		for _, member := range t.Group {
			if err := peer.Send(member, tag, digest[:]); err != nil {
				return nil, peer.FailRound(round, fmt.Sprintf("taskgraph: task %d digest send: %v", t.ID, err))
			}
		}
		digests, err := peer.Gather(ctx, tag, t.Group)
		if err != nil {
			if abortErr := peer.AbortErr(round); abortErr != nil {
				return nil, abortErr
			}
			return nil, peer.FailRound(round, fmt.Sprintf("taskgraph: task %d digest gather: %v", t.ID, err))
		}
		for id, d := range digests {
			if !bytes.Equal(d, digest[:]) {
				return nil, peer.FailRound(round, fmt.Sprintf(
					"taskgraph: task %d result mismatch with provider %d", t.ID, id))
			}
		}
		results[t.ID] = out

		// Push the validated result to every dependent group immediately
		// (the send half of the data transfer never blocks).
		for _, e := range g.outEdges[ti] {
			dst := &g.tasks[e.to]
			if err := datatransfer.Send(peer, round, e.instance, dst.Group, out); err != nil {
				return nil, err
			}
		}
	}

	final := g.tasks[len(g.tasks)-1]
	out, ok := results[final.ID]
	if !ok {
		// Unreachable: the final task runs at all providers.
		return nil, peer.FailRound(round, "taskgraph: final result missing")
	}
	return out, nil
}

// Groups partitions providers into ⌊m/(k+1)⌋ disjoint groups of at least
// k+1 members each (§5.2.2: payments are computed by c groups, each with at
// least k+1 providers). Leftover providers join the last group.
func Groups(providers []wire.NodeID, k int) [][]wire.NodeID {
	m := len(providers)
	size := k + 1
	c := m / size
	if c == 0 {
		return nil
	}
	sorted := append([]wire.NodeID(nil), providers...)
	proto.SortNodes(sorted)
	groups := make([][]wire.NodeID, 0, c)
	for gi := 0; gi < c; gi++ {
		lo := gi * size
		hi := lo + size
		if gi == c-1 {
			hi = m // leftovers join the last group
		}
		groups = append(groups, sorted[lo:hi:hi])
	}
	return groups
}
