// Package taskgraph implements the parallel simulation of the allocation
// algorithm A (§4.2 of the paper, Figures 2 and 3).
//
// The execution of A is decomposed into a DAG of tasks. Each task is
// assigned to a group of at least k+1 providers, so no coalition of size ≤ k
// controls any task; group members execute the task redundantly and
// cross-validate their results by digest. When a task's result is needed by
// a task with a different group, it crosses via the data-transfer block.
// Tasks that draw randomness obtain it from the common coin; such tasks must
// be assigned to the full provider set, because the coin involves everyone.
// The final task depends (transitively) on every other task, runs at all
// providers, and its result is the allocator's output.
//
// Two providers assigned to disjoint tasks execute them concurrently — this
// is where the framework's parallel speedup (Figure 5) comes from.
package taskgraph

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"

	"distauction/internal/proto"
	"distauction/internal/wire"
)

const stepTaskDigest uint8 = 1

// ErrBadGraph reports a structurally invalid task graph.
var ErrBadGraph = errors.New("taskgraph: invalid graph")

// ErrCoinUnavailable reports a Coin() call from a task not assigned to the
// full provider set.
var ErrCoinUnavailable = errors.New("taskgraph: coin requires a full-provider task")

// ErrCoinOverdraw reports a task drawing more coins than it declared (or
// than the per-task instance space allows). The draw schedule must be
// static so instances can be numbered — and prefetched — identically at
// every provider.
var ErrCoinOverdraw = errors.New("taskgraph: coin draw beyond the task's declared schedule")

// maxCoinDraws is the per-task coin instance space: instance numbers are
// taskID<<8 | drawIdx, so a task has 256 draw slots.
const maxCoinDraws = 1 << 8

// maxCoinTaskID bounds the ID of a coin-drawing task so the shifted
// instance number fits the tightest instance space any transport offers:
// the marketplace's lane encoding carries 20-bit block-local instances
// (wire.LaneBits), and CoinInstance(4095, 255) == 1<<20 - 1 exactly.
// Validating here means an oversized graph fails at New() instead of
// aborting every round at send time under a market.
const maxCoinTaskID = 1<<12 - 1

// CoinInstance returns the wire instance number of a task's draw'th coin
// toss. The numbering is static — a pure function of the task ID and the
// draw index — so every provider tosses the same instances regardless of
// execution order, and all declared instances can be pre-tossed at round
// start.
func CoinInstance(taskID uint32, draw int) uint32 {
	return taskID<<8 | uint32(draw)
}

// TaskContext carries a task's inputs and services into its Run function.
//
// The context and its Inputs map are owned by the scheduler and recycled
// across rounds: a Run function must not retain either past its return
// (copy anything it needs to keep). Input values themselves are views into
// the round's protocol buffers and follow the same rule.
type TaskContext struct {
	// Round is the auction round being simulated.
	Round uint64
	// Inputs holds the outputs of the task's dependencies, keyed by task ID.
	Inputs map[uint32][]byte
	// Env is the round environment the executor was invoked with (see
	// Executor.Run): per-round data — such as the agreed bid vector — for
	// graphs compiled once and reused across rounds. Nil under plain
	// Execute/ExecuteOpts.
	Env any

	coinFn func() (uint64, error)
}

// Coin draws a shared random seed from the common coin. All group members
// obtain the same seed. Only tasks assigned to the full provider set may
// call it; Validate enforces the restriction statically for graphs that
// declare UsesCoin.
func (tc *TaskContext) Coin() (uint64, error) {
	if tc.coinFn == nil {
		return 0, ErrCoinUnavailable
	}
	return tc.coinFn()
}

// TaskFunc is the deterministic computation of one task: same inputs and
// same coin draws must yield identical bytes at every group member.
type TaskFunc func(ctx context.Context, tc *TaskContext) ([]byte, error)

// Task is a node of the graph.
type Task struct {
	// ID identifies the task; IDs must be unique and topologically ordered
	// (every dependency has a smaller ID than its dependent).
	ID uint32
	// Name appears in error messages.
	Name string
	// Deps lists the task IDs whose outputs this task consumes.
	Deps []uint32
	// Group is the provider set that executes the task (≥ k+1 members).
	Group []wire.NodeID
	// UsesCoin declares that Run calls TaskContext.Coin.
	UsesCoin bool
	// CoinDraws declares how many times Run calls TaskContext.Coin. Declared
	// draws are numbered statically (CoinInstance) and pre-tossed
	// concurrently at execution start, so the commit-echo-reveal exchange
	// overlaps task compute instead of serializing inside it. Drawing more
	// than declared fails the round; zero with UsesCoin set means the task
	// draws on demand (statically numbered, but not prefetched).
	CoinDraws int
	// Run is the task body.
	Run TaskFunc
}

// Graph is a validated task decomposition.
type Graph struct {
	tasks    []Task
	edges    []edge   // transfer schedule, ordered deterministically
	inEdges  [][]edge // per task: edges delivering its inputs
	outEdges [][]edge // per task: edges publishing its result

	coinInstances []uint32       // declared draws, statically numbered
	needsCoin     bool           // any task draws (declared or on demand)
	byID          map[uint32]int // task ID → index into tasks
}

// edge is a cross-group data dependency (from → to).
type edge struct {
	from, to int // indexes into tasks
	instance uint32
}

// New assembles and validates a graph for the given provider set and
// coalition bound k.
func New(providers []wire.NodeID, k int, tasks []Task) (*Graph, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrBadGraph)
	}
	sorted := append([]Task(nil), tasks...)
	slices.SortFunc(sorted, func(a, b Task) int { return cmp.Compare(a.ID, b.ID) })

	all := append([]wire.NodeID(nil), providers...)
	proto.SortNodes(all)

	index := make(map[uint32]int, len(sorted))
	for i := range sorted {
		t := &sorted[i]
		if _, dup := index[t.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate task id %d", ErrBadGraph, t.ID)
		}
		index[t.ID] = i
		if t.Run == nil {
			return nil, fmt.Errorf("%w: task %d has no Run", ErrBadGraph, t.ID)
		}
		if len(t.Group) < k+1 {
			return nil, fmt.Errorf("%w: task %d group has %d members, need ≥ k+1 = %d",
				ErrBadGraph, t.ID, len(t.Group), k+1)
		}
		t.Group = append([]wire.NodeID(nil), t.Group...)
		proto.SortNodes(t.Group)
		for _, g := range t.Group {
			if !proto.ContainsNode(all, g) {
				return nil, fmt.Errorf("%w: task %d group member %d is not a provider", ErrBadGraph, t.ID, g)
			}
		}
		if t.CoinDraws < 0 || t.CoinDraws > maxCoinDraws {
			return nil, fmt.Errorf("%w: task %d declares %d coin draws (0..%d allowed)",
				ErrBadGraph, t.ID, t.CoinDraws, maxCoinDraws)
		}
		if t.CoinDraws > 0 {
			t.UsesCoin = true
		}
		if t.UsesCoin {
			if !proto.EqualNodes(t.Group, all) {
				return nil, fmt.Errorf("%w: task %d uses the coin but is not assigned to all providers",
					ErrBadGraph, t.ID)
			}
			if t.ID > maxCoinTaskID {
				return nil, fmt.Errorf("%w: task %d draws coins but its ID exceeds %d",
					ErrBadGraph, t.ID, maxCoinTaskID)
			}
		}
		for _, d := range t.Deps {
			j, ok := index[d]
			if !ok || sorted[j].ID >= t.ID {
				return nil, fmt.Errorf("%w: task %d depends on %d which is missing or not earlier",
					ErrBadGraph, t.ID, d)
			}
		}
	}

	// The final task must run at all providers and transitively depend on
	// every other task, so that the framework's output exists everywhere
	// and reflects the whole computation.
	final := &sorted[len(sorted)-1]
	if !proto.EqualNodes(final.Group, all) {
		return nil, fmt.Errorf("%w: final task %d must be assigned to all providers", ErrBadGraph, final.ID)
	}
	reach := make(map[uint32]bool, len(sorted))
	var mark func(id uint32)
	mark = func(id uint32) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, d := range sorted[index[id]].Deps {
			mark(d)
		}
	}
	mark(final.ID)
	if len(reach) != len(sorted) {
		return nil, fmt.Errorf("%w: final task does not depend on every task (%d of %d reachable)",
			ErrBadGraph, len(reach), len(sorted))
	}

	// Enumerate cross-group edges in deterministic order; the edge index is
	// the data-transfer instance number at every provider.
	g := &Graph{
		tasks:    sorted,
		inEdges:  make([][]edge, len(sorted)),
		outEdges: make([][]edge, len(sorted)),
		byID:     index,
	}
	for i := range sorted {
		t := &sorted[i]
		deps := append([]uint32(nil), t.Deps...)
		slices.Sort(deps)
		for _, d := range deps {
			from := index[d]
			if proto.EqualNodes(sorted[from].Group, t.Group) {
				continue // same group already holds the value
			}
			e := edge{from: from, to: i, instance: uint32(len(g.edges))}
			g.edges = append(g.edges, e)
			g.inEdges[i] = append(g.inEdges[i], e)
			g.outEdges[from] = append(g.outEdges[from], e)
		}
		if t.UsesCoin {
			g.needsCoin = true
			for draw := 0; draw < t.CoinDraws; draw++ {
				g.coinInstances = append(g.coinInstances, CoinInstance(t.ID, draw))
			}
		}
	}
	return g, nil
}

// CoinInstances returns the statically numbered coin instances declared by
// the graph's tasks, in task order. The slice is shared; callers must not
// modify it.
func (g *Graph) CoinInstances() []uint32 { return g.coinInstances }

// Tasks returns the tasks in execution (ID) order.
func (g *Graph) Tasks() []Task { return g.tasks }

// NumTransfers returns the number of cross-group transfers per execution.
func (g *Graph) NumTransfers() int { return len(g.edges) }

// Execute runs the graph at the local provider and returns the final task's
// output. Every provider of the round must call Execute with an identical
// graph. Deviations, mismatched redundant results, and timeouts abort the
// round (⊥). It is shorthand for ExecuteOpts with default options; see
// ExecuteOpts for the scheduling model.
func Execute(ctx context.Context, peer *proto.Peer, round uint64, g *Graph) ([]byte, error) {
	return ExecuteOpts(ctx, peer, round, g, Options{})
}

// Groups partitions providers into ⌊m/(k+1)⌋ disjoint groups of at least
// k+1 members each (§5.2.2: payments are computed by c groups, each with at
// least k+1 providers). Leftover providers join the last group.
func Groups(providers []wire.NodeID, k int) [][]wire.NodeID {
	m := len(providers)
	size := k + 1
	c := m / size
	if c == 0 {
		return nil
	}
	sorted := append([]wire.NodeID(nil), providers...)
	proto.SortNodes(sorted)
	groups := make([][]wire.NodeID, 0, c)
	for gi := 0; gi < c; gi++ {
		lo := gi * size
		hi := lo + size
		if gi == c-1 {
			hi = m // leftovers join the last group
		}
		groups = append(groups, sorted[lo:hi:hi])
	}
	return groups
}
