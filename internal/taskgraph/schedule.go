package taskgraph

import (
	"context"

	"distauction/internal/proto"
)

// CoinSource supplies common-coin seeds for statically numbered instances.
// coin.Reservoir is the production implementation; tests substitute
// deterministic stubs. Implementations must be safe for concurrent use.
type CoinSource interface {
	// Prefetch starts background tosses for the given instances.
	Prefetch(ctx context.Context, instances ...uint32)
	// Seed blocks until the instance's toss finishes and returns its seed.
	Seed(ctx context.Context, instance uint32) (uint64, error)
	// Close joins every in-flight toss. Execute always closes the source it
	// was handed before returning, so no toss outlives the round's state.
	Close()
}

// Options tunes ExecuteOpts and Executor.Run.
type Options struct {
	// Coins supplies the common coin. Nil lets Execute build its own
	// reservoir; the round engine passes a pre-warmed gated reservoir whose
	// commit/echo phases already overlapped bid agreement.
	Coins CoinSource
	// Gate, when non-nil, is an externally running admission check (the
	// allocator's input validation) that must succeed before any result is
	// published — before a task's outbound transfers and before the final
	// return. It must be safe for concurrent use from many goroutines.
	Gate func() error
}

// ExecuteOpts runs the graph once as a concurrent DAG schedule: every task
// whose dependencies are satisfied starts immediately, so tasks with
// disjoint dependency chains run concurrently at providers that belong to
// both, and each task's digest cross-validation gather overlaps downstream
// compute.
//
// Speculation never crosses a trust boundary: a provider starts dependents
// from its own locally computed outputs before their digest gathers
// confirm, but *publishes* nothing — no outbound datatransfer.Send, no
// final return — until every digest gather it transitively relied on has
// confirmed agreement (and the Options.Gate, if any, passed). A mismatch
// anywhere therefore still yields ⊥ for the round before any bad value can
// propagate, exactly as under sequential execution.
//
// ExecuteOpts builds a one-shot Executor per call; round engines that run
// the same graph every round hold a persistent Executor instead, which
// reuses the compiled plan, the worker set and the pooled round arenas.
func ExecuteOpts(ctx context.Context, peer *proto.Peer, round uint64, g *Graph, opts Options) ([]byte, error) {
	ex := NewExecutor(peer, g, 1)
	defer ex.Close()
	return ex.Run(ctx, round, nil, opts)
}
