package taskgraph

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"sync"

	"distauction/internal/coin"
	"distauction/internal/datatransfer"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// CoinSource supplies common-coin seeds for statically numbered instances.
// coin.Reservoir is the production implementation; tests substitute
// deterministic stubs. Implementations must be safe for concurrent use.
type CoinSource interface {
	// Prefetch starts background tosses for the given instances.
	Prefetch(ctx context.Context, instances ...uint32)
	// Seed blocks until the instance's toss finishes and returns its seed.
	Seed(ctx context.Context, instance uint32) (uint64, error)
	// Close joins every in-flight toss. Execute always closes the source it
	// was handed before returning, so no toss outlives the round's state.
	Close()
}

// Options tunes ExecuteOpts.
type Options struct {
	// Coins supplies the common coin. Nil lets Execute build its own
	// reservoir; the round engine passes a pre-warmed gated reservoir whose
	// commit/echo phases already overlapped bid agreement.
	Coins CoinSource
	// Gate, when non-nil, is an externally running admission check (the
	// allocator's input validation) that must succeed before any result is
	// published — before a task's outbound transfers and before the final
	// return. It must be safe for concurrent use from many goroutines.
	Gate func() error
}

// taskState is one task's lifecycle at the local provider.
//
// computed closes when the locally computed (still speculative) result is
// available — dependents may start from it immediately. validated closes
// when the task is *committed*: its digest gather confirmed agreement, every
// transitively relied-upon local task validated, every consumed in-edge
// receive confirmed, and the publish gate passed. Only then are outbound
// transfers sent.
type taskState struct {
	local bool // self is a member of the task's group

	computed   chan struct{}
	result     []byte
	computeErr error

	validated chan struct{}
	validErr  error
	ok        bool // set before validated closes on the success path
}

// scheduler executes one graph at one provider: a worker goroutine per
// local task plus a receive goroutine per consumed in-edge.
type scheduler struct {
	peer  *proto.Peer
	round uint64
	g     *Graph
	self  wire.NodeID
	coins CoinSource
	gate  func() error

	states []taskState
	recvs  []*datatransfer.Pending // indexed by edge instance; nil if not consumed locally
}

// ExecuteOpts runs the graph as a concurrent DAG schedule: every task whose
// dependencies are satisfied starts immediately, so tasks with disjoint
// dependency chains run concurrently at providers that belong to both, and
// each task's digest cross-validation gather overlaps downstream compute.
//
// Speculation never crosses a trust boundary: a provider starts dependents
// from its own locally computed outputs before their digest gathers
// confirm, but *publishes* nothing — no outbound datatransfer.Send, no
// final return — until every digest gather it transitively relied on has
// confirmed agreement (and the Options.Gate, if any, passed). A mismatch
// anywhere therefore still yields ⊥ for the round before any bad value can
// propagate, exactly as under sequential execution.
func ExecuteOpts(ctx context.Context, peer *proto.Peer, round uint64, g *Graph, opts Options) ([]byte, error) {
	coins := opts.Coins
	if coins != nil {
		// Joining the coin source before returning — on every path,
		// including the abort fast-exit below — keeps every toss inside the
		// round's lifetime (the caller may EndRound right after).
		defer coins.Close()
	}
	if err := peer.AbortErr(round); err != nil {
		return nil, err
	}
	if coins == nil && g.needsCoin {
		coins = coin.NewReservoir(peer, round, false)
		defer coins.Close()
	}
	if coins != nil {
		coins.Prefetch(ctx, g.coinInstances...)
	}

	// In-flight task bodies should stop promptly when the round dies under
	// them: derive a context cancelled on round abort, so a long Run in a
	// task whose round already returned ⊥ elsewhere unwinds instead of
	// computing into the void.
	rctx, cancel := context.WithCancel(ctx)
	watchdogDone := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		select {
		case <-peer.AbortChan(round):
			cancel()
		case <-rctx.Done():
		}
	}()

	s := &scheduler{
		peer:   peer,
		round:  round,
		g:      g,
		self:   peer.Self(),
		coins:  coins,
		gate:   opts.Gate,
		states: make([]taskState, len(g.tasks)),
		recvs:  make([]*datatransfer.Pending, len(g.edges)),
	}

	// Start every consumed in-edge receive up front: all of a task's
	// in-edges (and all tasks' in-edges) are gathered concurrently, one
	// goroutine per edge, instead of one RTT at a time.
	for ei := range g.edges {
		e := &g.edges[ei]
		if !proto.ContainsNode(g.tasks[e.to].Group, s.self) {
			continue
		}
		s.recvs[e.instance] = datatransfer.RecvAsync(rctx, peer, round, e.instance, g.tasks[e.from].Group)
	}

	var tasksWG sync.WaitGroup
	for ti := range g.tasks {
		st := &s.states[ti]
		st.local = proto.ContainsNode(g.tasks[ti].Group, s.self)
		if !st.local {
			continue
		}
		st.computed = make(chan struct{})
		st.validated = make(chan struct{})
		tasksWG.Add(1)
		go func(ti int) {
			defer tasksWG.Done()
			s.runTask(rctx, ti)
		}(ti)
	}
	tasksWG.Wait()
	// Join the edge receivers (abort/cancel wakes any that a failed task
	// abandoned), then stop the watchdog.
	for _, p := range s.recvs {
		if p != nil {
			p.Join()
		}
	}
	cancel()
	<-watchdogDone

	if err := peer.AbortErr(round); err != nil {
		return nil, err
	}
	for ti := range s.states {
		st := &s.states[ti]
		if !st.local {
			continue
		}
		if st.validErr != nil {
			// Every failure path aborts the round, so this is normally
			// shadowed by the AbortErr above; keep it as a backstop.
			return nil, st.validErr
		}
	}
	final := &s.states[len(s.states)-1]
	if !final.ok {
		// Unreachable: the final task runs at all providers and a clean
		// validErr was ruled out above.
		return nil, peer.FailRound(round, "taskgraph: final result missing")
	}
	return final.result, nil
}

// runTask drives one local task through compute, cross-validation,
// transitive confirmation and publication. It closes both lifecycle
// channels on every path.
func (s *scheduler) runTask(ctx context.Context, ti int) {
	st := &s.states[ti]
	t := &s.g.tasks[ti]

	computedClosed := false
	fail := func(err error) {
		if !computedClosed {
			st.computeErr = err
			close(st.computed)
			computedClosed = true
		}
		st.validErr = err
		close(st.validated)
	}

	inputs, err := s.collectInputs(ctx, ti)
	if err != nil {
		fail(err)
		return
	}

	tc := &TaskContext{Round: s.round, Inputs: inputs}
	if t.UsesCoin && s.coins != nil {
		tc.coinFn = s.coinFn(ctx, t)
	}
	out, err := t.Run(ctx, tc)
	if err != nil {
		fail(s.peer.FailRound(s.round, fmt.Sprintf(
			"taskgraph: task %d (%s) failed: %v", t.ID, t.Name, err)))
		return
	}
	st.result = out
	close(st.computed) // dependents start speculatively from here
	computedClosed = true

	// Cross-validate the redundant computation within the group: every
	// member broadcasts a digest of its result; any mismatch means some
	// member deviated (or the task is nondeterministic) and the round
	// aborts. Publishing a digest commits nothing — the value itself stays
	// local until the gathers below confirm.
	digest := sha256.Sum256(out)
	tag := wire.Tag{Round: s.round, Block: wire.BlockTask, Instance: t.ID, Step: stepTaskDigest}
	for _, member := range t.Group {
		if err := s.peer.Send(member, tag, digest[:]); err != nil {
			fail(s.peer.FailRound(s.round, fmt.Sprintf("taskgraph: task %d digest send: %v", t.ID, err)))
			return
		}
	}
	digests, err := s.peer.Gather(ctx, tag, t.Group)
	if err != nil {
		if abortErr := s.peer.AbortErr(s.round); abortErr != nil {
			fail(abortErr)
			return
		}
		fail(s.peer.FailRound(s.round, fmt.Sprintf("taskgraph: task %d digest gather: %v", t.ID, err)))
		return
	}
	for id, d := range digests {
		if !bytes.Equal(d, digest[:]) {
			fail(s.peer.FailRound(s.round, fmt.Sprintf(
				"taskgraph: task %d result mismatch with provider %d", t.ID, id)))
			return
		}
	}

	// Commit point: everything this result transitively relies on must be
	// confirmed before the value leaves the group (or the final task
	// returns) — speculative compute, withheld publication.
	if err := s.awaitUpstream(ctx, ti); err != nil {
		fail(err)
		return
	}

	for _, e := range s.g.outEdges[ti] {
		dst := &s.g.tasks[e.to]
		if err := datatransfer.Send(s.peer, s.round, e.instance, dst.Group, out); err != nil {
			fail(err)
			return
		}
	}
	st.ok = true
	close(st.validated)
}

// collectInputs waits for the task's inputs and returns them keyed by task
// ID. Same-group dependencies and cross-group edges whose source group the
// local provider belongs to are taken speculatively from the local result;
// all other edges wait for their (already validated) transfer.
func (s *scheduler) collectInputs(ctx context.Context, ti int) (map[uint32][]byte, error) {
	t := &s.g.tasks[ti]
	inputs := make(map[uint32][]byte, len(t.Deps))
	for _, d := range t.Deps {
		di, ok := s.taskIndex(d)
		if !ok {
			return nil, s.peer.FailRound(s.round, fmt.Sprintf(
				"taskgraph: task %d (%s) missing input %d", t.ID, t.Name, d))
		}
		src := &s.states[di]
		if src.local {
			select {
			case <-src.computed:
			case <-ctx.Done():
				return nil, s.failCtx(ctx, t, d)
			}
			if src.computeErr != nil {
				return nil, src.computeErr
			}
			inputs[d] = src.result
			continue
		}
		e := s.inEdgeFrom(ti, di)
		if e == nil {
			// Unreachable: a non-local dependency in a different group
			// always has an edge.
			return nil, s.peer.FailRound(s.round, fmt.Sprintf(
				"taskgraph: task %d input %d has no transfer edge", t.ID, d))
		}
		v, err := s.recvs[e.instance].Join()
		if err != nil {
			return nil, err
		}
		inputs[d] = v
	}
	return inputs, nil
}

// awaitUpstream blocks until everything the task's result transitively
// relies on is confirmed: validation of every locally supplied dependency,
// the receive unanimity check of every consumed in-edge (which for
// speculatively used local values also proves the local copy matched the
// senders'), and the external publish gate.
func (s *scheduler) awaitUpstream(ctx context.Context, ti int) error {
	t := &s.g.tasks[ti]
	for _, d := range t.Deps {
		di, ok := s.taskIndex(d)
		if !ok {
			// Unreachable: collectInputs already resolved every dependency.
			return s.peer.FailRound(s.round, fmt.Sprintf(
				"taskgraph: task %d dependency %d vanished", t.ID, d))
		}
		src := &s.states[di]
		if !src.local {
			continue
		}
		select {
		case <-src.validated:
		case <-ctx.Done():
			return s.failCtx(ctx, t, d)
		}
		if src.validErr != nil {
			return src.validErr
		}
	}
	for _, e := range s.g.inEdges[ti] {
		if _, err := s.recvs[e.instance].Join(); err != nil {
			return err
		}
	}
	if s.gate != nil {
		if err := s.gate(); err != nil {
			return err
		}
	}
	return nil
}

// coinFn builds the task's draw function: statically numbered instances,
// served from the shared coin source, bounded by the declared schedule.
func (s *scheduler) coinFn(ctx context.Context, t *Task) func() (uint64, error) {
	var draw int
	return func() (uint64, error) {
		if t.CoinDraws > 0 && draw >= t.CoinDraws {
			return 0, fmt.Errorf("%w: task %d declared %d draws", ErrCoinOverdraw, t.ID, t.CoinDraws)
		}
		if draw >= maxCoinDraws {
			return 0, fmt.Errorf("%w: task %d exceeded %d draws", ErrCoinOverdraw, t.ID, maxCoinDraws)
		}
		inst := CoinInstance(t.ID, draw)
		draw++
		return s.coins.Seed(ctx, inst)
	}
}

// taskIndex maps a task ID to its index (the lookup New built).
func (s *scheduler) taskIndex(id uint32) (int, bool) {
	i, ok := s.g.byID[id]
	return i, ok
}

// inEdgeFrom finds the in-edge of task ti sourced at task di.
func (s *scheduler) inEdgeFrom(ti, di int) *edge {
	for i := range s.g.inEdges[ti] {
		if s.g.inEdges[ti][i].from == di {
			return &s.g.inEdges[ti][i]
		}
	}
	return nil
}

// failCtx converts a context expiry while waiting for dependency d into the
// round's abort error (preferring an abort that raced in).
func (s *scheduler) failCtx(ctx context.Context, t *Task, d uint32) error {
	if abortErr := s.peer.AbortErr(s.round); abortErr != nil {
		return abortErr
	}
	return s.peer.FailRound(s.round, fmt.Sprintf(
		"taskgraph: task %d (%s) waiting for input %d: %v", t.ID, t.Name, d, ctx.Err()))
}
