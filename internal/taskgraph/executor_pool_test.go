package taskgraph

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// envTask returns a task body that derives its output from the per-round
// Env string plus its inputs — so a stale arena (a recycled Inputs map or
// result buffer leaking a previous round's bytes) shows up as a wrong
// output, not silently.
func envTask(prefix string, deps ...uint32) TaskFunc {
	return func(ctx context.Context, tc *TaskContext) ([]byte, error) {
		var b strings.Builder
		b.WriteString(prefix)
		b.WriteByte(':')
		b.WriteString(tc.Env.(string))
		for _, d := range deps {
			b.WriteByte('|')
			b.Write(tc.Inputs[d])
		}
		return []byte(b.String()), nil
	}
}

// runExecutors runs one round of each peer's executor concurrently with the
// given env and returns per-peer outputs and errors.
func runExecutors(t *testing.T, exs []*Executor, round uint64, env string) ([][]byte, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	outs := make([][]byte, len(exs))
	errs := make([]error, len(exs))
	var wg sync.WaitGroup
	for i, ex := range exs {
		wg.Add(1)
		go func(i int, ex *Executor) {
			defer wg.Done()
			outs[i], errs[i] = ex.Run(ctx, round, env, Options{})
		}(i, ex)
	}
	wg.Wait()
	return outs, errs
}

// TestExecutorArenaRecycling drives a persistent executor through many
// sequential rounds on the same compiled graph, with a distinct per-round
// env threaded through a diamond of tasks (including subgroup tasks, so
// edge memos and transfer scratch recycle too). Every round's output must
// be exactly the value derived from THAT round's env — any cross-round
// bleed through the pooled round arenas is a hard failure. Run under -race
// this also checks the arena handoff discipline between the scheduler and
// the persistent workers.
func TestExecutorArenaRecycling(t *testing.T) {
	peers := newPeers(t, 3)
	all := providerIDs(3)
	g, err := New(all, 1, []Task{
		{ID: 1, Group: all, Run: envTask("seed")},
		{ID: 2, Deps: []uint32{1}, Group: all[:2], Run: envTask("left", 1)},
		{ID: 3, Deps: []uint32{1}, Group: all[1:], Run: envTask("right", 1)},
		{ID: 4, Deps: []uint32{2, 3}, Group: all, Run: envTask("join", 2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	exs := make([]*Executor, len(peers))
	for i, p := range peers {
		exs[i] = NewExecutor(p, g, 2)
		defer exs[i].Close()
	}
	const rounds = 40
	for r := uint64(1); r <= rounds; r++ {
		env := fmt.Sprintf("round-%03d", r)
		want := fmt.Sprintf("join:%s|left:%s|seed:%s|right:%s|seed:%s",
			env, env, env, env, env)
		outs, errs := runExecutors(t, exs, r, env)
		for i := range peers {
			if errs[i] != nil {
				t.Fatalf("round %d peer %d: %v", r, i, errs[i])
			}
			if string(outs[i]) != want {
				t.Fatalf("round %d peer %d:\n got %q\nwant %q", r, i, outs[i], want)
			}
		}
		for _, p := range peers {
			p.EndRound(r)
		}
	}
}

// TestExecutorAbortUnwindRecycles alternates failing rounds (a task body
// returns an error, the round resolves to ⊥ everywhere) with succeeding
// rounds on the SAME executors. The abort unwind must return every pooled
// object exactly once: a double-put or a leaked arena corrupts the next
// round's state, which the success rounds then catch.
func TestExecutorAbortUnwindRecycles(t *testing.T) {
	peers := newPeers(t, 3)
	all := providerIDs(3)
	fail := fmt.Errorf("injected task failure")
	g, err := New(all, 1, []Task{
		{ID: 1, Group: all, Run: envTask("seed")},
		{ID: 2, Deps: []uint32{1}, Group: all, Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
			if strings.HasPrefix(tc.Env.(string), "fail") {
				return nil, fail
			}
			return envTask("mid", 1)(ctx, tc)
		}},
		{ID: 3, Deps: []uint32{2}, Group: all, Run: envTask("fin", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	exs := make([]*Executor, len(peers))
	for i, p := range peers {
		exs[i] = NewExecutor(p, g, 2)
		defer exs[i].Close()
	}
	const rounds = 20
	for r := uint64(1); r <= rounds; r++ {
		failing := r%2 == 1
		env := fmt.Sprintf("round-%03d", r)
		if failing {
			env = "fail-" + env
		}
		outs, errs := runExecutors(t, exs, r, env)
		for i := range peers {
			if failing {
				if errs[i] == nil {
					t.Fatalf("round %d peer %d: expected abort, got %q", r, i, outs[i])
				}
			} else {
				if errs[i] != nil {
					t.Fatalf("round %d peer %d: %v", r, i, errs[i])
				}
				want := fmt.Sprintf("fin:%s|mid:%s|seed:%s", env, env, env)
				if string(outs[i]) != want {
					t.Fatalf("round %d peer %d:\n got %q\nwant %q", r, i, outs[i], want)
				}
			}
		}
		for _, p := range peers {
			p.EndRound(r)
		}
	}
}
