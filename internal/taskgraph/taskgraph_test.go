package taskgraph

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

func providerIDs(n int) []wire.NodeID {
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	return ids
}

func constTask(out string) TaskFunc {
	return func(ctx context.Context, tc *TaskContext) ([]byte, error) {
		return []byte(out), nil
	}
}

// executeAll runs the graph at every peer concurrently.
func executeAll(t *testing.T, peers []*proto.Peer, round uint64, g *Graph) ([][]byte, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	outs := make([][]byte, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			outs[i], errs[i] = Execute(ctx, p, round, g)
		}(i, p)
	}
	wg.Wait()
	return outs, errs
}

func TestGraphValidation(t *testing.T) {
	all := providerIDs(4)
	run := constTask("x")
	tests := []struct {
		name  string
		k     int
		tasks []Task
		ok    bool
	}{
		{"empty", 1, nil, false},
		{"single full task", 1, []Task{{ID: 1, Group: all, Run: run}}, true},
		{"missing run", 1, []Task{{ID: 1, Group: all}}, false},
		{"group too small", 1, []Task{{ID: 1, Group: all[:1], Run: run}}, false},
		{"duplicate ids", 1, []Task{{ID: 1, Group: all, Run: run}, {ID: 1, Group: all, Run: run}}, false},
		{"dep on later id", 1, []Task{
			{ID: 1, Deps: []uint32{2}, Group: all, Run: run},
			{ID: 2, Group: all, Run: run},
		}, false},
		{"dep missing", 1, []Task{{ID: 2, Deps: []uint32{1}, Group: all, Run: run}}, false},
		{"final not all providers", 1, []Task{{ID: 1, Group: all[:2], Run: run}}, false},
		{"final not depending on all", 1, []Task{
			{ID: 1, Group: all[:2], Run: run},
			{ID: 2, Group: all, Run: run},
		}, false},
		{"non-provider group member", 1, []Task{
			{ID: 1, Group: []wire.NodeID{1, 99}, Run: run},
			{ID: 2, Deps: []uint32{1}, Group: all, Run: run},
		}, false},
		{"coin in subgroup", 1, []Task{
			{ID: 1, Group: all[:2], UsesCoin: true, Run: run},
			{ID: 2, Deps: []uint32{1}, Group: all, Run: run},
		}, false},
		{"valid diamond", 1, []Task{
			{ID: 1, Group: all, Run: run},
			{ID: 2, Deps: []uint32{1}, Group: all[:2], Run: run},
			{ID: 3, Deps: []uint32{1}, Group: all[2:], Run: run},
			{ID: 4, Deps: []uint32{2, 3}, Group: all, Run: run},
		}, true},
	}
	for _, tt := range tests {
		_, err := New(all, tt.k, tt.tasks)
		if (err == nil) != tt.ok {
			t.Errorf("%s: New() err = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestSingleTaskExecution(t *testing.T) {
	peers := newPeers(t, 3)
	g, err := New(providerIDs(3), 1, []Task{
		{ID: 1, Name: "solve", Group: providerIDs(3), Run: constTask("result")},
	})
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := executeAll(t, peers, 1, g)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i, out := range outs {
		if string(out) != "result" {
			t.Errorf("peer %d: %q", i, out)
		}
	}
}

// The diamond of Figure 2: T1 → {T2.1, T2.2} → T3, with the middle tasks
// assigned to disjoint groups (parallelism) and results crossing via data
// transfer.
func TestDiamondWithDisjointGroups(t *testing.T) {
	peers := newPeers(t, 4)
	all := providerIDs(4)
	g1, g2 := all[:2], all[2:]

	tasks := []Task{
		{ID: 1, Name: "T1", Group: all, Run: constTask("base")},
		{ID: 2, Name: "T2.1", Deps: []uint32{1}, Group: g1,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				return append(tc.Inputs[1], []byte("+left")...), nil
			}},
		{ID: 3, Name: "T2.2", Deps: []uint32{1}, Group: g2,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				return append(tc.Inputs[1], []byte("+right")...), nil
			}},
		{ID: 4, Name: "T3", Deps: []uint32{2, 3}, Group: all,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				return append(append([]byte{}, tc.Inputs[2]...), tc.Inputs[3]...), nil
			}},
	}
	g, err := New(all, 1, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumTransfers(); got != 4 {
		// edges: 1→2 (groups differ), 1→3, 2→4, 3→4.
		t.Errorf("transfers = %d, want 4", got)
	}
	outs, errs := executeAll(t, peers, 1, g)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	want := "base+leftbase+right"
	for i, out := range outs {
		if string(out) != want {
			t.Errorf("peer %d: %q, want %q", i, out, want)
		}
	}
}

func TestCoinTask(t *testing.T) {
	peers := newPeers(t, 3)
	all := providerIDs(3)
	tasks := []Task{
		{ID: 1, Name: "randomized", Group: all, UsesCoin: true,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				s1, err := tc.Coin()
				if err != nil {
					return nil, err
				}
				s2, err := tc.Coin()
				if err != nil {
					return nil, err
				}
				return []byte(fmt.Sprintf("%d/%d", s1, s2)), nil
			}},
	}
	g, err := New(all, 1, tasks)
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := executeAll(t, peers, 1, g)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[i], outs[0]) {
			t.Fatalf("coin draws diverged: %q vs %q", outs[0], outs[i])
		}
	}
	if string(outs[0]) == "0/0" {
		t.Error("coin produced zero seeds twice; astronomically unlikely")
	}
}

func TestCoinDeniedOutsideFullGroup(t *testing.T) {
	tc := &TaskContext{}
	if _, err := tc.Coin(); !errors.Is(err, ErrCoinUnavailable) {
		t.Errorf("got %v, want ErrCoinUnavailable", err)
	}
}

// A deviant group member that computes a different result is caught by the
// intra-group digest cross-check.
func TestDeviantGroupMemberAborts(t *testing.T) {
	peers := newPeers(t, 3)
	all := providerIDs(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	mkGraph := func(out string) *Graph {
		g, err := New(all, 1, []Task{
			{ID: 1, Name: "compute", Group: all, Run: constTask(out)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	honest := mkGraph("correct")
	lying := mkGraph("WRONG")

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, p := range peers {
		g := honest
		if i == 2 {
			g = lying
		}
		wg.Add(1)
		go func(i int, p *proto.Peer, g *Graph) {
			defer wg.Done()
			_, errs[i] = Execute(ctx, p, 1, g)
		}(i, p, g)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if !errors.Is(errs[i], proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, errs[i])
		}
	}
}

// A deviant that lies only in the data transfer (correct digest among its
// group, wrong value to the receivers) is caught by the receivers' unanimity
// check as long as its group has an honest member.
func TestLyingTransferAborts(t *testing.T) {
	peers := newPeers(t, 4)
	all := providerIDs(4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	g1, g2 := all[:2], all[2:]

	mk := func(lieInTransfer bool) *Graph {
		run1 := constTask("truth")
		g, err := New(all, 1, []Task{
			{ID: 1, Name: "produce", Group: g1, Run: run1},
			{ID: 2, Name: "consume", Deps: []uint32{1}, Group: all,
				Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
					return tc.Inputs[1], nil
				}},
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = lieInTransfer
		return g
	}
	_ = g2

	honest := mk(false)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	outs := make([][]byte, 4)
	for i, p := range peers {
		if p.Self() == 2 {
			continue // deviant scripted below
		}
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			outs[i], errs[i] = Execute(ctx, p, 1, honest)
		}(i, p)
	}

	// Deviant (provider 2, member of g1): participates in task 1 digest
	// exchange honestly but sends a corrupted value on the transfer edge.
	devi := peers[1]
	go func() {
		// Task digest for task 1 ("truth").
		digestTag := wire.Tag{Round: 1, Block: wire.BlockTask, Instance: 1, Step: stepTaskDigest}
		h := sha256Of([]byte("truth"))
		for _, member := range g1 {
			_ = devi.Send(member, digestTag, h)
		}
		// Wait for the group digest (as Execute would).
		_, _ = devi.Gather(ctx, digestTag, g1)
		// Transfer edge 0 carries task 1's result to task 2's group (all):
		// send the lie.
		transferTag := wire.Tag{Round: 1, Block: wire.BlockTransfer, Instance: 0, Step: 1}
		for _, o := range all {
			_ = devi.Send(o, transferTag, []byte("LIE"))
		}
	}()

	wg.Wait()
	for i, p := range peers {
		if p.Self() == 2 {
			continue
		}
		if !errors.Is(errs[i], proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, errs[i])
		}
		if bytes.Equal(outs[i], []byte("LIE")) {
			t.Errorf("peer %d adopted the lie", i)
		}
	}
}

func TestGroupsPartition(t *testing.T) {
	all := providerIDs(8)
	tests := []struct {
		k     int
		wantC int
		sizes []int
	}{
		{0, 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{1, 4, []int{2, 2, 2, 2}},
		{2, 2, []int{3, 5}}, // 8/3 = 2 groups, leftovers join the last
		{3, 2, []int{4, 4}},
		{7, 1, []int{8}},
		{8, 0, nil},
	}
	for _, tt := range tests {
		groups := Groups(all, tt.k)
		if len(groups) != tt.wantC {
			t.Errorf("k=%d: %d groups, want %d", tt.k, len(groups), tt.wantC)
			continue
		}
		seen := map[wire.NodeID]bool{}
		for gi, g := range groups {
			if len(g) != tt.sizes[gi] {
				t.Errorf("k=%d group %d size %d, want %d", tt.k, gi, len(g), tt.sizes[gi])
			}
			if len(g) < tt.k+1 {
				t.Errorf("k=%d group %d smaller than k+1", tt.k, gi)
			}
			for _, id := range g {
				if seen[id] {
					t.Errorf("k=%d: provider %d in two groups", tt.k, id)
				}
				seen[id] = true
			}
		}
	}
}

func sha256Of(b []byte) []byte {
	h := sha256Sum(b)
	return h[:]
}

func sha256Sum(b []byte) [32]byte {
	return sha256.Sum256(b)
}
