package taskgraph

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"distauction/internal/coin"
	"distauction/internal/datatransfer"
	"distauction/internal/proto"
	"distauction/internal/trace"
	"distauction/internal/wire"
)

// Executor runs one compiled graph round after round with a persistent
// worker set. The schedule plan — which tasks run locally, their ready
// order, edge wiring and coin numbering — is compiled once at construction
// and reused every round; per-round state lives in pooled execRound arenas,
// so a steady-state round spawns no goroutines and allocates only what the
// round's results themselves need.
//
// Scheduling model (identical publication semantics to ExecuteOpts): a
// local task becomes ready when every local dependency has finished its
// compute phase; ready tasks are fed to long-lived workers through a
// buffered queue sized so handoff never blocks. A worker drives its task
// through compute, digest cross-validation, transitive confirmation and
// publication — speculative compute, withheld publication — exactly as the
// per-round scheduler did. In-edge transfers are received synchronously and
// memoized per round (push-mode transports buffer payloads regardless of
// when Recv runs, so this costs no extra round trips and saves the
// goroutine-per-edge of the old scheduler). Round aborts cancel in-flight
// work through proto.OnAbort instead of a parked watchdog goroutine.
//
// At most depth Run calls proceed concurrently; later calls wait for a
// slot. Workers number localTasks×depth so a pipelined round never waits
// for another round's task to release a worker.
type Executor struct {
	peer  *proto.Peer
	g     *Graph
	self  wire.NodeID
	depth int

	localTask  []bool  // per task: self is a group member
	numLocal   int     // count of local tasks
	localDeps  []int32 // per task: number of local dependencies (ready seed)
	dependents [][]int // per local task: local dependents to count down
	needValid  []bool  // per task: a local dependent awaits its validation
	roots      []int   // local tasks ready at round start

	slots chan struct{} // bounds concurrent rounds to depth
	work  chan workItem // ready queue; cap numLocal*depth, send never blocks
	wg    sync.WaitGroup

	mu   sync.Mutex
	free []*execRound

	closeOnce sync.Once
}

// workItem is one ready task of one in-flight round.
type workItem struct {
	er *execRound
	ti int
}

// execRound is the pooled per-round arena: every task's lifecycle state and
// every edge's memoized receive. It is owned by exactly one Run call at a
// time; putRound drops all payload references before recycling so a pooled
// round pins nothing from the round it served.
type execRound struct {
	ex    *Executor
	round uint64
	ctx   context.Context
	env   any
	coins CoinSource
	gate  func() error

	states  []execTask
	edges   []edgeMemo
	pending sync.WaitGroup
}

// execTask is one task's per-round lifecycle at the local provider. The
// compute phase ends when result or computeErr is set (dependents may then
// start); validation ends when the digest gather, transitive confirmation
// and publish gate all passed.
type execTask struct {
	er *execRound // backref for the coin closure; set once
	ti int

	depsLeft   atomic.Int32
	draws      int
	coinFn     func() (uint64, error) // built once, reused every round
	inputs     map[uint32][]byte      // recycled TaskContext.Inputs
	tc         TaskContext
	result     []byte
	computeErr error
	computed   bool

	validated chan struct{} // fresh per round, only where needValid
	validErr  error
	ok        bool

	gatherBuf [][]byte // digest-gather scratch
}

// edgeMemo is one consumed in-edge's memoized receive. Each edge is
// consumed by exactly one task, and all of that task's receives run in its
// single worker, so the memo needs no synchronization.
type edgeMemo struct {
	value   []byte
	err     error
	done    bool
	scratch [][]byte
}

// NewExecutor compiles the schedule plan for g at peer's local provider and
// starts the persistent workers. depth is the maximum number of rounds Run
// executes concurrently (the session's pipeline depth); values < 1 mean 1.
// Close must be called when the session ends.
func NewExecutor(peer *proto.Peer, g *Graph, depth int) *Executor {
	if depth < 1 {
		depth = 1
	}
	ex := &Executor{
		peer:       peer,
		g:          g,
		self:       peer.Self(),
		depth:      depth,
		localTask:  make([]bool, len(g.tasks)),
		localDeps:  make([]int32, len(g.tasks)),
		dependents: make([][]int, len(g.tasks)),
		needValid:  make([]bool, len(g.tasks)),
	}
	for ti := range g.tasks {
		ex.localTask[ti] = proto.ContainsNode(g.tasks[ti].Group, ex.self)
		if ex.localTask[ti] {
			ex.numLocal++
		}
	}
	for ti := range g.tasks {
		if !ex.localTask[ti] {
			continue
		}
		for _, d := range g.tasks[ti].Deps {
			di := g.byID[d]
			if !ex.localTask[di] {
				continue
			}
			ex.localDeps[ti]++
			ex.dependents[di] = append(ex.dependents[di], ti)
			ex.needValid[di] = true
		}
		if ex.localDeps[ti] == 0 {
			ex.roots = append(ex.roots, ti)
		}
	}
	ex.slots = make(chan struct{}, depth)
	ex.work = make(chan workItem, ex.numLocal*depth)
	for i := 0; i < ex.numLocal*depth; i++ {
		ex.wg.Add(1)
		go ex.worker()
	}
	return ex
}

// Close joins in-flight Run calls and drains the workers. A stuck Run must
// be unwound first (closing the peer fails its receives), or Close blocks.
func (ex *Executor) Close() {
	ex.closeOnce.Do(func() {
		// Taking every slot proves no Run is mid-flight (each holds its slot
		// until its tasks fully joined), so nothing can enqueue work anymore.
		for i := 0; i < ex.depth; i++ {
			ex.slots <- struct{}{}
		}
		close(ex.work)
		ex.wg.Wait()
	})
}

func (ex *Executor) worker() {
	defer ex.wg.Done()
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("distauction", "taskgraph-worker")))
	for it := range ex.work {
		span := trace.Begin()
		it.er.runTask(it.ti)
		trace.Span(span, trace.PhaseTask, it.er.round, ex.peer.Lane(), ex.peer.Self(),
			trace.NoPeer, int32(ex.g.tasks[it.ti].ID))
		it.er.pending.Done()
	}
}

// Run executes one round of the compiled graph and returns the final
// task's output. env is handed to every task through TaskContext.Env (the
// per-round data a compiled, round-generic graph closes over — e.g. the
// agreed bid vector). Semantics — speculation, publication gating, ⊥
// propagation — match ExecuteOpts exactly.
func (ex *Executor) Run(ctx context.Context, round uint64, env any, opts Options) ([]byte, error) {
	coins := opts.Coins
	if coins != nil {
		// Joining the coin source before returning — on every path,
		// including the abort fast-exit below — keeps every toss inside the
		// round's lifetime (the caller may EndRound right after).
		defer coins.Close()
	}
	if err := ex.peer.AbortErr(round); err != nil {
		return nil, err
	}
	if coins == nil && ex.g.needsCoin {
		coins = coin.NewReservoir(ex.peer, round, false)
		defer coins.Close()
	}
	if coins != nil {
		coins.Prefetch(ctx, ex.g.coinInstances...)
	}

	ex.slots <- struct{}{}
	defer func() { <-ex.slots }()

	// In-flight task bodies should stop promptly when the round dies under
	// them; the abort callback replaces the old per-round watchdog
	// goroutine. A registration that never fires is dropped at EndRound.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ex.peer.OnAbort(round, cancel)

	er := ex.getRound()
	er.reset(round, rctx, env, coins, opts.Gate)
	er.pending.Add(ex.numLocal)
	for _, ti := range ex.roots {
		ex.work <- workItem{er, ti}
	}
	er.pending.Wait()

	var out []byte
	err := ex.peer.AbortErr(round)
	if err == nil {
		for ti := range er.states {
			if !ex.localTask[ti] {
				continue
			}
			if verr := er.states[ti].validErr; verr != nil {
				// Every failure path aborts the round, so this is normally
				// shadowed by the AbortErr above; keep it as a backstop.
				err = verr
				break
			}
		}
	}
	if err == nil {
		final := &er.states[len(er.states)-1]
		if !final.ok {
			// Unreachable: the final task runs at all providers and a clean
			// validErr was ruled out above.
			err = ex.peer.FailRound(round, "taskgraph: final result missing")
		} else {
			out = final.result
		}
	}
	ex.putRound(er)
	return out, err
}

// getRound pops a pooled round arena or builds a fresh one.
func (ex *Executor) getRound() *execRound {
	ex.mu.Lock()
	var er *execRound
	if n := len(ex.free); n > 0 {
		er = ex.free[n-1]
		ex.free[n-1] = nil
		ex.free = ex.free[:n-1]
	}
	ex.mu.Unlock()
	if er != nil {
		return er
	}
	er = &execRound{
		ex:     ex,
		states: make([]execTask, len(ex.g.tasks)),
		edges:  make([]edgeMemo, len(ex.g.edges)),
	}
	for ti := range er.states {
		st := &er.states[ti]
		st.er = er
		st.ti = ti
		if ex.localTask[ti] && ex.g.tasks[ti].UsesCoin {
			st.coinFn = st.drawCoin
		}
	}
	return er
}

// putRound drops every payload reference the round accumulated and
// recycles the arena. Results already escaped to the caller keep living;
// the pool never hands them to another round.
func (ex *Executor) putRound(er *execRound) {
	for ti := range er.states {
		st := &er.states[ti]
		st.result = nil
		st.computeErr = nil
		st.validErr = nil
		st.validated = nil
		st.tc = TaskContext{}
		if st.inputs != nil {
			clear(st.inputs)
		}
		clear(st.gatherBuf)
		st.gatherBuf = st.gatherBuf[:0]
	}
	for i := range er.edges {
		m := &er.edges[i]
		m.value, m.err, m.done = nil, nil, false
		clear(m.scratch)
		m.scratch = m.scratch[:0]
	}
	er.ctx, er.env, er.coins, er.gate = nil, nil, nil, nil
	ex.mu.Lock()
	if len(ex.free) < ex.depth {
		ex.free = append(ex.free, er)
	}
	ex.mu.Unlock()
}

// reset prepares the arena for one round.
func (er *execRound) reset(round uint64, ctx context.Context, env any, coins CoinSource, gate func() error) {
	ex := er.ex
	er.round = round
	er.ctx = ctx
	er.env = env
	er.coins = coins
	er.gate = gate
	for ti := range er.states {
		st := &er.states[ti]
		st.depsLeft.Store(ex.localDeps[ti])
		st.draws = 0
		st.computed = false
		st.ok = false
		if ex.needValid[ti] {
			st.validated = make(chan struct{})
		}
	}
}

// computePhaseDone marks ti's compute phase finished (result or error) and
// enqueues every local dependent whose dependencies are now all computed.
// The atomic countdown orders the dependents' reads of result/computeErr
// after this task's writes.
func (er *execRound) computePhaseDone(ti int) {
	er.states[ti].computed = true
	for _, di := range er.ex.dependents[ti] {
		if er.states[di].depsLeft.Add(-1) == 0 {
			er.ex.work <- workItem{er, di}
		}
	}
}

// runTask drives one local task through compute, cross-validation,
// transitive confirmation and publication — one worker, no spawned
// goroutines. It finishes the compute phase and closes the validated
// channel (where present) on every path.
func (er *execRound) runTask(ti int) {
	ex := er.ex
	st := &er.states[ti]
	t := &ex.g.tasks[ti]
	ctx := er.ctx

	fail := func(err error) {
		if !st.computed {
			st.computeErr = err
			er.computePhaseDone(ti)
		}
		st.validErr = err
		if st.validated != nil {
			close(st.validated)
		}
	}

	inputs, err := er.collectInputs(ti)
	if err != nil {
		fail(err)
		return
	}

	st.tc = TaskContext{Round: er.round, Inputs: inputs, Env: er.env}
	if t.UsesCoin && er.coins != nil {
		st.tc.coinFn = st.coinFn
	}
	out, err := t.Run(ctx, &st.tc)
	if err != nil {
		fail(ex.peer.FailRound(er.round, fmt.Sprintf(
			"taskgraph: task %d (%s) failed: %v", t.ID, t.Name, err)))
		return
	}
	st.result = out
	er.computePhaseDone(ti) // dependents start speculatively from here

	// Cross-validate the redundant computation within the group: every
	// member broadcasts a digest of its result; any mismatch means some
	// member deviated (or the task is nondeterministic) and the round
	// aborts. Publishing a digest commits nothing — the value itself stays
	// local until the gathers below confirm.
	digest := sha256.Sum256(out)
	tag := wire.Tag{Round: er.round, Block: wire.BlockTask, Instance: t.ID, Step: stepTaskDigest}
	for _, member := range t.Group {
		if err := ex.peer.Send(member, tag, digest[:]); err != nil {
			fail(ex.peer.FailRound(er.round, fmt.Sprintf("taskgraph: task %d digest send: %v", t.ID, err)))
			return
		}
	}
	st.gatherBuf, err = ex.peer.GatherAppend(ctx, tag, t.Group, st.gatherBuf[:0])
	if err != nil {
		if abortErr := ex.peer.AbortErr(er.round); abortErr != nil {
			fail(abortErr)
			return
		}
		fail(ex.peer.FailRound(er.round, fmt.Sprintf("taskgraph: task %d digest gather: %v", t.ID, err)))
		return
	}
	for i, d := range st.gatherBuf {
		if !bytes.Equal(d, digest[:]) {
			fail(ex.peer.FailRound(er.round, fmt.Sprintf(
				"taskgraph: task %d result mismatch with provider %d", t.ID, t.Group[i])))
			return
		}
	}

	// Commit point: everything this result transitively relies on must be
	// confirmed before the value leaves the group (or the final task
	// returns) — speculative compute, withheld publication.
	if err := er.awaitUpstream(ti); err != nil {
		fail(err)
		return
	}

	for _, e := range ex.g.outEdges[ti] {
		dst := &ex.g.tasks[e.to]
		if err := datatransfer.Send(ex.peer, er.round, e.instance, dst.Group, out); err != nil {
			fail(err)
			return
		}
	}
	st.ok = true
	if st.validated != nil {
		close(st.validated)
	}
}

// collectInputs assembles the task's inputs, keyed by task ID, into the
// recycled per-task map. Local dependencies have finished their compute
// phase by construction (the ready queue admitted this task); cross-group
// edges are received synchronously and memoized.
func (er *execRound) collectInputs(ti int) (map[uint32][]byte, error) {
	ex := er.ex
	t := &ex.g.tasks[ti]
	st := &er.states[ti]
	if st.inputs == nil {
		st.inputs = make(map[uint32][]byte, len(t.Deps))
	}
	inputs := st.inputs
	for _, d := range t.Deps {
		di, ok := ex.g.byID[d]
		if !ok {
			return nil, ex.peer.FailRound(er.round, fmt.Sprintf(
				"taskgraph: task %d (%s) missing input %d", t.ID, t.Name, d))
		}
		if ex.localTask[di] {
			src := &er.states[di]
			if src.computeErr != nil {
				return nil, src.computeErr
			}
			inputs[d] = src.result
			continue
		}
		e := ex.inEdgeFrom(ti, di)
		if e == nil {
			// Unreachable: a non-local dependency in a different group
			// always has an edge.
			return nil, ex.peer.FailRound(er.round, fmt.Sprintf(
				"taskgraph: task %d input %d has no transfer edge", t.ID, d))
		}
		v, err := er.recvEdge(e)
		if err != nil {
			return nil, err
		}
		inputs[d] = v
	}
	return inputs, nil
}

// recvEdge performs (or replays) the memoized receive of one consumed
// in-edge. Push-mode transports buffer the payload whether or not anyone is
// receiving yet, so the synchronous gather waits only for genuinely missing
// messages — the concurrency the per-edge goroutines used to provide.
func (er *execRound) recvEdge(e *edge) ([]byte, error) {
	m := &er.edges[e.instance]
	if !m.done {
		m.value, m.scratch, m.err = datatransfer.RecvInto(
			er.ctx, er.ex.peer, er.round, e.instance, er.ex.g.tasks[e.from].Group, m.scratch[:0])
		m.done = true
	}
	return m.value, m.err
}

// awaitUpstream blocks until everything the task's result transitively
// relies on is confirmed: validation of every locally supplied dependency,
// the receive unanimity check of every consumed in-edge (which for
// speculatively used local values also proves the local copy matched the
// senders'), and the external publish gate.
func (er *execRound) awaitUpstream(ti int) error {
	ex := er.ex
	t := &ex.g.tasks[ti]
	for _, d := range t.Deps {
		di, ok := ex.g.byID[d]
		if !ok {
			// Unreachable: collectInputs already resolved every dependency.
			return ex.peer.FailRound(er.round, fmt.Sprintf(
				"taskgraph: task %d dependency %d vanished", t.ID, d))
		}
		if !ex.localTask[di] {
			continue
		}
		src := &er.states[di]
		select {
		case <-src.validated:
		case <-er.ctx.Done():
			return er.failCtx(t, d)
		}
		if src.validErr != nil {
			return src.validErr
		}
	}
	for i := range ex.g.inEdges[ti] {
		if _, err := er.recvEdge(&ex.g.inEdges[ti][i]); err != nil {
			return err
		}
	}
	if er.gate != nil {
		if err := er.gate(); err != nil {
			return err
		}
	}
	return nil
}

// drawCoin serves TaskContext.Coin for this task: statically numbered
// instances from the round's shared coin source, bounded by the declared
// schedule. Built once per arena and reused every round.
func (st *execTask) drawCoin() (uint64, error) {
	t := &st.er.ex.g.tasks[st.ti]
	if t.CoinDraws > 0 && st.draws >= t.CoinDraws {
		return 0, fmt.Errorf("%w: task %d declared %d draws", ErrCoinOverdraw, t.ID, t.CoinDraws)
	}
	if st.draws >= maxCoinDraws {
		return 0, fmt.Errorf("%w: task %d exceeded %d draws", ErrCoinOverdraw, t.ID, maxCoinDraws)
	}
	inst := CoinInstance(t.ID, st.draws)
	st.draws++
	return st.er.coins.Seed(st.er.ctx, inst)
}

// inEdgeFrom finds the in-edge of task ti sourced at task di.
func (ex *Executor) inEdgeFrom(ti, di int) *edge {
	for i := range ex.g.inEdges[ti] {
		if ex.g.inEdges[ti][i].from == di {
			return &ex.g.inEdges[ti][i]
		}
	}
	return nil
}

// failCtx converts a context expiry while waiting for dependency d into the
// round's abort error (preferring an abort that raced in).
func (er *execRound) failCtx(t *Task, d uint32) error {
	if abortErr := er.ex.peer.AbortErr(er.round); abortErr != nil {
		return abortErr
	}
	return er.ex.peer.FailRound(er.round, fmt.Sprintf(
		"taskgraph: task %d (%s) waiting for input %d: %v", t.ID, t.Name, d, er.ctx.Err()))
}
