package taskgraph

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/prng"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// Property: for randomly generated layered DAGs with random (valid) group
// assignments, execution agrees at every provider and equals the obvious
// sequential evaluation of the same graph.
func TestQuickRandomGraphAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up clusters")
	}
	const m, k = 4, 1
	all := providerIDs(m)

	for seed := uint64(1); seed <= 8; seed++ {
		rng := prng.New(seed)

		// Build a layered graph: a root at all providers, 1..3 middle tasks
		// at random groups, a final gather at all providers.
		middle := 1 + rng.Intn(3)
		tasks := []Task{{
			ID: 1, Name: "root", Group: all,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				return []byte("root"), nil
			},
		}}
		finalDeps := []uint32{1}
		for i := 0; i < middle; i++ {
			id := uint32(2 + i)
			// Random contiguous group of size ≥ k+1.
			size := k + 1 + rng.Intn(m-k-1)
			start := rng.Intn(m - size + 1)
			group := all[start : start+size]
			label := fmt.Sprintf("mid-%d", id)
			tasks = append(tasks, Task{
				ID: id, Name: label, Deps: []uint32{1}, Group: group,
				Run: func(label string) TaskFunc {
					return func(ctx context.Context, tc *TaskContext) ([]byte, error) {
						return append(append([]byte{}, tc.Inputs[1]...), []byte("+"+label)...), nil
					}
				}(label),
			})
			finalDeps = append(finalDeps, id)
		}
		tasks = append(tasks, Task{
			ID: uint32(2 + middle), Name: "final", Deps: finalDeps, Group: all,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				var out []byte
				for _, d := range finalDeps {
					out = append(out, tc.Inputs[d]...)
				}
				return out, nil
			},
		})

		g, err := New(all, k, tasks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Expected value by direct sequential evaluation.
		want := []byte("root")
		for i := 0; i < middle; i++ {
			want = append(want, []byte(fmt.Sprintf("root+mid-%d", 2+i))...)
		}

		peers := newPeers(t, m)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		outs := make([][]byte, m)
		errs := make([]error, m)
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *proto.Peer) {
				defer wg.Done()
				outs[i], errs[i] = Execute(ctx, p, seed, g)
			}(i, p)
		}
		wg.Wait()
		cancel()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d peer %d: %v", seed, i, err)
			}
		}
		for i := range outs {
			if string(outs[i]) != string(want) {
				t.Fatalf("seed %d peer %d: got %q want %q", seed, i, outs[i], want)
			}
		}
	}
}

var _ = wire.NodeID(0) // keep the import when the helper moves

// stubCoins is a deterministic CoinSource: the seed is a pure function of
// (round, instance), so a distributed execution and the local sequential
// reference evaluation draw identical randomness and must produce
// byte-identical outputs.
type stubCoins struct{ round uint64 }

func (stubCoins) Prefetch(context.Context, ...uint32) {}
func (s stubCoins) Seed(_ context.Context, instance uint32) (uint64, error) {
	var buf [12]byte
	binary.BigEndian.PutUint64(buf[:8], s.round)
	binary.BigEndian.PutUint32(buf[8:], instance)
	h := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(h[:8]), nil
}
func (stubCoins) Close() {}

// hashTask builds a deterministic task body: the output hashes the task ID,
// every dependency's bytes (in dependency-ID order) and every coin draw, so
// any input scrambling, draw-order change or missing edge shows up as a
// different final digest.
func hashTask(id uint32, deps []uint32, draws int) TaskFunc {
	return func(ctx context.Context, tc *TaskContext) ([]byte, error) {
		h := sha256.New()
		var buf [12]byte
		binary.BigEndian.PutUint32(buf[:4], id)
		h.Write(buf[:4])
		for _, d := range deps {
			binary.BigEndian.PutUint32(buf[:4], d)
			h.Write(buf[:4])
			h.Write(tc.Inputs[d])
		}
		for j := 0; j < draws; j++ {
			seed, err := tc.Coin()
			if err != nil {
				return nil, err
			}
			binary.BigEndian.PutUint64(buf[:8], seed)
			h.Write(buf[:8])
		}
		return h.Sum(nil), nil
	}
}

// randomGraph generates a layered DAG with varying group sizes, coin draw
// counts and edge fan-out: a root at all providers, 2–4 middle layers of
// 1–3 tasks whose dependencies reach back into any earlier layer, and a
// final task at all providers depending on every sink.
func randomGraph(rng *prng.SplitMix64, all []wire.NodeID, k int) []Task {
	m := len(all)
	type spec struct {
		id       uint32
		deps     []uint32
		group    []wire.NodeID
		declared int // CoinDraws
		dynamic  int // undeclared draws (UsesCoin only)
	}
	specs := []spec{{id: 1, group: all}}
	layers := 2 + rng.Intn(3)
	next := uint32(2)
	prevIDs := []uint32{1}
	allIDs := []uint32{1}
	for layer := 0; layer < layers; layer++ {
		width := 1 + rng.Intn(3)
		ids := make([]uint32, 0, width)
		for w := 0; w < width; w++ {
			sp := spec{id: next}
			next++
			// Fan-in: 1..3 dependencies from any earlier task, biased to the
			// previous layer so chains get deep.
			fanIn := 1 + rng.Intn(3)
			seen := map[uint32]bool{}
			for f := 0; f < fanIn; f++ {
				var d uint32
				if rng.Intn(2) == 0 {
					d = prevIDs[rng.Intn(len(prevIDs))]
				} else {
					d = allIDs[rng.Intn(len(allIDs))]
				}
				if !seen[d] {
					seen[d] = true
					sp.deps = append(sp.deps, d)
				}
			}
			// Group: full set (may draw coins) or a random window ≥ k+1.
			switch rng.Intn(3) {
			case 0:
				sp.group = all
				switch rng.Intn(3) {
				case 0:
					sp.declared = 1 + rng.Intn(2)
				case 1:
					sp.dynamic = 1 + rng.Intn(2)
				}
			default:
				size := k + 1 + rng.Intn(m-k)
				if size > m {
					size = m
				}
				start := rng.Intn(m - size + 1)
				sp.group = all[start : start+size]
			}
			specs = append(specs, sp)
			ids = append(ids, sp.id)
		}
		allIDs = append(allIDs, ids...)
		prevIDs = ids
	}
	// Final task: depends on every sink, so it transitively reaches all.
	hasDependent := map[uint32]bool{}
	for _, sp := range specs {
		for _, d := range sp.deps {
			hasDependent[d] = true
		}
	}
	final := spec{id: next, group: all}
	for _, sp := range specs {
		if !hasDependent[sp.id] {
			final.deps = append(final.deps, sp.id)
		}
	}
	specs = append(specs, final)

	tasks := make([]Task, 0, len(specs))
	for _, sp := range specs {
		draws := sp.declared + sp.dynamic
		tasks = append(tasks, Task{
			ID:        sp.id,
			Name:      fmt.Sprintf("t%d", sp.id),
			Deps:      sp.deps,
			Group:     sp.group,
			UsesCoin:  draws > 0,
			CoinDraws: sp.declared,
			Run:       hashTask(sp.id, sp.deps, draws),
		})
	}
	return tasks
}

// evalSequential is the reference executor: a plain local topological walk
// of the same task bodies with the same coin source — no network, no
// speculation, no concurrency. The concurrent scheduler must be
// byte-identical to it.
func evalSequential(t *testing.T, tasks []Task, coins CoinSource, round uint64) []byte {
	t.Helper()
	results := make(map[uint32][]byte, len(tasks))
	ctx := context.Background()
	for i := range tasks {
		task := &tasks[i]
		tc := &TaskContext{Round: round, Inputs: make(map[uint32][]byte, len(task.Deps))}
		for _, d := range task.Deps {
			tc.Inputs[d] = results[d]
		}
		if task.UsesCoin {
			var draw int
			tc.coinFn = func() (uint64, error) {
				inst := CoinInstance(task.ID, draw)
				draw++
				return coins.Seed(ctx, inst)
			}
		}
		out, err := task.Run(ctx, tc)
		if err != nil {
			t.Fatalf("reference eval task %d: %v", task.ID, err)
		}
		results[task.ID] = out
	}
	return results[tasks[len(tasks)-1].ID]
}

// Property: for random DAGs — varying groups, coin draws and edge fan-out —
// the concurrent scheduler produces byte-identical outputs to the reference
// sequential executor, at every provider. Deterministic coins make the two
// executions comparable; run under -race this also exercises the
// scheduler's speculation and publication ordering.
func TestRandomGraphMatchesSequentialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up clusters")
	}
	const m, k = 5, 1
	all := providerIDs(m)

	for seed := uint64(1); seed <= 12; seed++ {
		rng := prng.New(seed)
		tasks := randomGraph(rng, all, k)
		g, err := New(all, k, tasks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		coins := stubCoins{round: seed}
		want := evalSequential(t, g.Tasks(), coins, seed)

		peers := newPeers(t, m)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		outs := make([][]byte, m)
		errs := make([]error, m)
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *proto.Peer) {
				defer wg.Done()
				outs[i], errs[i] = ExecuteOpts(ctx, p, seed, g, Options{Coins: coins})
			}(i, p)
		}
		wg.Wait()
		cancel()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d peer %d: %v (graph: %d tasks, %d transfers, %d declared coins)",
					seed, i, err, len(g.Tasks()), g.NumTransfers(), len(g.CoinInstances()))
			}
		}
		for i := range outs {
			if string(outs[i]) != string(want) {
				t.Fatalf("seed %d peer %d: output diverged from sequential reference", seed, i)
			}
		}
	}
}

// Property: the same random DAGs under the real common coin still agree at
// every provider (the seeds are unpredictable, so the reference here is
// cross-provider agreement, not a precomputed value).
func TestRandomGraphRealCoinAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up clusters")
	}
	const m, k = 4, 1
	all := providerIDs(m)

	for seed := uint64(1); seed <= 3; seed++ {
		rng := prng.New(seed * 101)
		tasks := randomGraph(rng, all, k)
		g, err := New(all, k, tasks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		peers := newPeers(t, m)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		outs := make([][]byte, m)
		errs := make([]error, m)
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *proto.Peer) {
				defer wg.Done()
				outs[i], errs[i] = Execute(ctx, p, seed, g)
			}(i, p)
		}
		wg.Wait()
		cancel()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d peer %d: %v", seed, i, err)
			}
		}
		for i := 1; i < m; i++ {
			if string(outs[i]) != string(outs[0]) {
				t.Fatalf("seed %d: providers disagree", seed)
			}
		}
	}
}
