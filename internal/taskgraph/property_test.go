package taskgraph

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/prng"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// Property: for randomly generated layered DAGs with random (valid) group
// assignments, execution agrees at every provider and equals the obvious
// sequential evaluation of the same graph.
func TestQuickRandomGraphAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up clusters")
	}
	const m, k = 4, 1
	all := providerIDs(m)

	for seed := uint64(1); seed <= 8; seed++ {
		rng := prng.New(seed)

		// Build a layered graph: a root at all providers, 1..3 middle tasks
		// at random groups, a final gather at all providers.
		middle := 1 + rng.Intn(3)
		tasks := []Task{{
			ID: 1, Name: "root", Group: all,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				return []byte("root"), nil
			},
		}}
		finalDeps := []uint32{1}
		for i := 0; i < middle; i++ {
			id := uint32(2 + i)
			// Random contiguous group of size ≥ k+1.
			size := k + 1 + rng.Intn(m-k-1)
			start := rng.Intn(m - size + 1)
			group := all[start : start+size]
			label := fmt.Sprintf("mid-%d", id)
			tasks = append(tasks, Task{
				ID: id, Name: label, Deps: []uint32{1}, Group: group,
				Run: func(label string) TaskFunc {
					return func(ctx context.Context, tc *TaskContext) ([]byte, error) {
						return append(append([]byte{}, tc.Inputs[1]...), []byte("+"+label)...), nil
					}
				}(label),
			})
			finalDeps = append(finalDeps, id)
		}
		tasks = append(tasks, Task{
			ID: uint32(2 + middle), Name: "final", Deps: finalDeps, Group: all,
			Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
				var out []byte
				for _, d := range finalDeps {
					out = append(out, tc.Inputs[d]...)
				}
				return out, nil
			},
		})

		g, err := New(all, k, tasks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Expected value by direct sequential evaluation.
		want := []byte("root")
		for i := 0; i < middle; i++ {
			want = append(want, []byte(fmt.Sprintf("root+mid-%d", 2+i))...)
		}

		peers := newPeers(t, m)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		outs := make([][]byte, m)
		errs := make([]error, m)
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *proto.Peer) {
				defer wg.Done()
				outs[i], errs[i] = Execute(ctx, p, seed, g)
			}(i, p)
		}
		wg.Wait()
		cancel()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d peer %d: %v", seed, i, err)
			}
		}
		for i := range outs {
			if string(outs[i]) != string(want) {
				t.Fatalf("seed %d peer %d: got %q want %q", seed, i, outs[i], want)
			}
		}
	}
}

var _ = wire.NodeID(0) // keep the import when the helper moves
