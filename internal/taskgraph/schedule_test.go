package taskgraph

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"distauction/internal/proto"
)

// settleGoroutines polls until the goroutine count drops back to at most
// want, tolerating the runtime's lazy reaping.
func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d, want <= %d\n%s", n, want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A group member that returns a mismatched result mid-graph must abort the
// round with ⊥ at every provider while a concurrently in-flight task of a
// disjoint group unwinds cleanly (its body is cancelled by the scheduler's
// abort watchdog), with no goroutine leaks — and the peers must still run a
// fresh round afterwards.
func TestMidGraphMismatchAbortsAndUnwinds(t *testing.T) {
	const m = 4
	peers := newPeers(t, m)
	all := providerIDs(m)
	g1, g2 := all[:2], all[2:]

	slowStarted := make(chan struct{}, m)
	mkGraph := func(left string) *Graph {
		g, err := New(all, 1, []Task{
			{ID: 1, Name: "root", Group: all, Run: constTask("base")},
			{ID: 2, Name: "left", Deps: []uint32{1}, Group: g1, Run: constTask(left)},
			{ID: 3, Name: "slow", Deps: []uint32{1}, Group: g2,
				Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
					// An in-flight task body: in the poisoned round the
					// scheduler's abort watchdog cancels it long before the
					// timer; in honest rounds it just takes a while.
					slowStarted <- struct{}{}
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-time.After(300 * time.Millisecond):
						return []byte("slow"), nil
					}
				}},
			{ID: 4, Name: "final", Deps: []uint32{2, 3}, Group: all,
				Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
					return append(append([]byte{}, tc.Inputs[2]...), tc.Inputs[3]...), nil
				}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	honest := mkGraph("left")
	lying := mkGraph("WRONG")

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i, p := range peers {
		g := honest
		if i == 1 { // provider 2, member of g1, computes a mismatched result
			g = lying
		}
		wg.Add(1)
		go func(i int, p *proto.Peer, g *Graph) {
			defer wg.Done()
			_, errs[i] = Execute(ctx, p, 1, g)
		}(i, p, g)
	}
	wg.Wait()

	for i := range errs {
		if !errors.Is(errs[i], proto.ErrAborted) {
			t.Errorf("provider %d: got %v, want ⊥", i+1, errs[i])
		}
	}
	if len(slowStarted) == 0 {
		t.Error("the slow task never started; the deviation was not concurrent with in-flight work")
	}
	settleGoroutines(t, before)

	// The unwind must be clean: a fresh round on the same peers succeeds.
	outs, errs2 := executeAll(t, peers, 2, honest)
	t.Cleanup(func() {
		for _, p := range peers {
			p.EndRound(2)
		}
	})
	// Drain the slow-task markers from round 2.
	for len(slowStarted) > 0 {
		<-slowStarted
	}
	for i, err := range errs2 {
		if err != nil {
			t.Fatalf("round 2 provider %d: %v", i+1, err)
		}
	}
	for i, out := range outs {
		if string(out) != "leftslow" {
			t.Errorf("round 2 provider %d: %q, want %q", i+1, out, "leftslow")
		}
	}
}

// Concurrent rounds are isolated: with several rounds of the same graph in
// flight on the same peers, a mid-graph mismatch in one round yields ⊥ for
// exactly that round while the others complete, and nothing leaks.
func TestConcurrentRoundsAbortIsolation(t *testing.T) {
	const m = 4
	const rounds = 4
	const poisoned = 2
	peers := newPeers(t, m)
	all := providerIDs(m)
	g1 := all[:2]

	mkGraph := func(left string) *Graph {
		g, err := New(all, 1, []Task{
			{ID: 1, Name: "root", Group: all, UsesCoin: true, CoinDraws: 1,
				Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
					seed, err := tc.Coin()
					if err != nil {
						return nil, err
					}
					return []byte(fmt.Sprintf("r%d", seed%97)), nil
				}},
			{ID: 2, Name: "mid", Deps: []uint32{1}, Group: g1, Run: constTask(left)},
			{ID: 3, Name: "final", Deps: []uint32{1, 2}, Group: all,
				Run: func(ctx context.Context, tc *TaskContext) ([]byte, error) {
					return append(append([]byte{}, tc.Inputs[1]...), tc.Inputs[2]...), nil
				}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	honest := mkGraph("ok")
	lying := mkGraph("EVIL")

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make([][]error, rounds+1)
	outs := make([][][]byte, rounds+1)
	var wg sync.WaitGroup
	for r := 1; r <= rounds; r++ {
		errs[r] = make([]error, m)
		outs[r] = make([][]byte, m)
		for i, p := range peers {
			g := honest
			if r == poisoned && i == 1 {
				g = lying
			}
			wg.Add(1)
			go func(r, i int, p *proto.Peer, g *Graph) {
				defer wg.Done()
				outs[r][i], errs[r][i] = Execute(ctx, p, uint64(r), g)
			}(r, i, p, g)
		}
	}
	wg.Wait()

	for r := 1; r <= rounds; r++ {
		for i := 0; i < m; i++ {
			if r == poisoned {
				if !errors.Is(errs[r][i], proto.ErrAborted) {
					t.Errorf("round %d provider %d: got %v, want ⊥", r, i+1, errs[r][i])
				}
				continue
			}
			if errs[r][i] != nil {
				t.Errorf("round %d provider %d: %v", r, i+1, errs[r][i])
				continue
			}
			if string(outs[r][i]) != string(outs[r][0]) {
				t.Errorf("round %d: providers disagree", r)
			}
		}
	}
	settleGoroutines(t, before)
}
