package transport

import (
	"fmt"
	"sync"
	"testing"

	"distauction/internal/wire"
)

// TestCoalescerBatchRecycleWaves drives the coalescer in waves of
// concurrent sends with quiescence between waves, so pendingBatch objects
// return to the per-peer free list and get reused across waves. A recycled
// batch must come back clean: a stale envelope slot, a stale error, or a
// WaitGroup that reuses before the previous wave's waiters returned would
// show up as a lost, duplicated or corrupted payload — and under -race as
// a reported race on the recycled object.
func TestCoalescerBatchRecycleWaves(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	c1, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[string]int{}
	count := func(env wire.Envelope) {
		mu.Lock()
		got[string(env.Payload)]++
		mu.Unlock()
	}
	c2.(PushBatchConn).SetBatchHandler(func(envs []wire.Envelope) {
		for _, env := range envs {
			count(env)
		}
	})
	c2.(PushConn).SetHandler(count)

	co := NewCoalescer(c1.(BatchConn))
	const (
		waves   = 25
		senders = 8
	)
	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(w, s int) {
				defer wg.Done()
				env := batchEnv(1, 2, uint64(w+1), fmt.Sprintf("w%d-s%d", w, s))
				env.Tag.Instance = uint32(s + 1)
				if err := co.Send(env); err != nil {
					t.Errorf("wave %d sender %d: %v", w, s, err)
				}
			}(w, s)
		}
		// Joining the wave before starting the next guarantees every batch
		// was released (all waiters returned), so the next wave hits the
		// free list, not fresh allocations.
		wg.Wait()
	}
	mu.Lock()
	defer mu.Unlock()
	const n = waves * senders
	if len(got) != n {
		t.Fatalf("received %d distinct payloads, want %d", len(got), n)
	}
	for p, c := range got {
		if c != 1 {
			t.Fatalf("payload %q delivered %d times", p, c)
		}
	}
	if st := co.Stats(); st.Envelopes != n {
		t.Fatalf("stats count %d envelopes, want %d", st.Envelopes, n)
	}
}
