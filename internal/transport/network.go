package transport

import (
	"fmt"
	"sync"
	"time"

	"distauction/internal/auth"
	"distauction/internal/wire"
)

// Network is a transport that participants attach to. It abstracts over the
// in-memory Hub and real TCP so that deployments — sessions, the harness,
// the CLIs — are transport-agnostic end to end: code that takes a Network
// runs unchanged on either.
type Network interface {
	// Attach registers a node and returns its connection. Attaching an
	// already attached ID is a configuration error.
	Attach(id wire.NodeID) (Conn, error)
	// Stats returns network-wide traffic counters.
	Stats() StatsSnapshot
	// Close shuts the network and every attached connection.
	Close() error
}

var _ Network = (*Hub)(nil)

// TCPNetworkConfig configures a TCP-backed Network.
type TCPNetworkConfig struct {
	// Addrs maps node IDs to listen/dial addresses. A node missing from the
	// map listens on a loopback ephemeral port; its bound address is learned
	// at Attach time and propagated to every other attached node, which
	// makes single-process loopback deployments zero-config.
	Addrs map[wire.NodeID]string
	// Members is the full participant set, needed to derive pairwise HMAC
	// keys when Secret is set. Empty means the keys of Addrs.
	Members []wire.NodeID
	// Secret is the shared master secret for HMAC keys. Empty disables
	// authentication (tests only).
	Secret []byte
	// DialTimeout bounds outbound connection establishment. Zero means 5s.
	DialTimeout time.Duration
}

// TCPNetwork is the Network implementation over real TCP. Each attached
// node runs its own TCPNode (listener plus dialed connections); the network
// object is only the shared address book and aggregate stats, so it also
// models multi-process deployments where each process attaches one node.
type TCPNetwork struct {
	cfg TCPNetworkConfig

	mu     sync.Mutex
	addrs  map[wire.NodeID]string
	nodes  map[wire.NodeID]*TCPNode
	closed bool
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork creates a TCP-backed network from the given address book.
func NewTCPNetwork(cfg TCPNetworkConfig) *TCPNetwork {
	addrs := make(map[wire.NodeID]string, len(cfg.Addrs))
	for id, addr := range cfg.Addrs {
		addrs[id] = addr
	}
	return &TCPNetwork{
		cfg:   cfg,
		addrs: addrs,
		nodes: make(map[wire.NodeID]*TCPNode),
	}
}

// members returns the authenticated participant set for key derivation.
func (n *TCPNetwork) members() []wire.NodeID {
	if len(n.cfg.Members) > 0 {
		return n.cfg.Members
	}
	ids := make([]wire.NodeID, 0, len(n.addrs))
	for id := range n.addrs {
		ids = append(ids, id)
	}
	return ids
}

// Attach implements Network: it starts a TCPNode for id, listening on the
// configured address (or an ephemeral loopback port) and dialing peers from
// the shared address book.
func (n *TCPNetwork) Attach(id wire.NodeID) (Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.nodes[id]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: node %d already attached", id)
	}
	listen, ok := n.addrs[id]
	if !ok {
		listen = "127.0.0.1:0"
	}
	peers := make(map[wire.NodeID]string, len(n.addrs))
	for pid, addr := range n.addrs {
		peers[pid] = addr
	}
	var reg *auth.Registry
	if len(n.cfg.Secret) > 0 {
		reg = auth.NewRegistryFromMaster(n.cfg.Secret, id, n.members())
	}
	n.mu.Unlock()

	node, err := ListenTCP(TCPConfig{
		Self:        id,
		ListenAddr:  listen,
		Peers:       peers,
		Registry:    reg,
		DialTimeout: n.cfg.DialTimeout,
	})
	if err != nil {
		return nil, err
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		node.Close()
		return nil, ErrClosed
	}
	if _, dup := n.nodes[id]; dup {
		n.mu.Unlock()
		node.Close()
		return nil, fmt.Errorf("transport: node %d already attached", id)
	}
	// Record the bound address (resolves port 0) and teach it to everyone
	// already attached, so lazily dialed connections find the newcomer —
	// and replay the current book into the newcomer, whose initial peer
	// snapshot predates any address resolved by a concurrent Attach.
	n.addrs[id] = node.Addr()
	for pid, addr := range n.addrs {
		if pid != id {
			node.SetPeer(pid, addr)
		}
	}
	for _, other := range n.nodes {
		other.SetPeer(id, node.Addr())
	}
	n.nodes[id] = node
	n.mu.Unlock()
	return node, nil
}

// Stats implements Network with the sum of all attached nodes' counters.
func (n *TCPNetwork) Stats() StatsSnapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total StatsSnapshot
	for _, node := range n.nodes {
		total = total.Add(node.Stats())
	}
	return total
}

// Close implements Network: it shuts every attached node down.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	nodes := make([]*TCPNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.mu.Unlock()
	var firstErr error
	for _, node := range nodes {
		if err := node.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
