package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/auth"
	"distauction/internal/wire"
)

// outBufSize is the per-connection write buffer. One consensus burst is m
// small frames; 64 KiB batches all of them into one syscall.
const outBufSize = 64 << 10

// TCPConfig configures a TCP transport node.
type TCPConfig struct {
	// Self is the local node ID.
	Self wire.NodeID
	// ListenAddr is the local listen address ("host:port"; port 0 picks one).
	ListenAddr string
	// Peers maps node IDs to dialable addresses. Only peers this node sends
	// to need entries.
	Peers map[wire.NodeID]string
	// Registry authenticates traffic. If nil, messages are unauthenticated
	// (tests only; production deployments must set it).
	Registry *auth.Registry
	// DialTimeout bounds outbound connection establishment. Zero means 5s.
	DialTimeout time.Duration
}

// TCPNode is a node on a TCP network. Identity is established per message:
// each envelope carries an HMAC under the pairwise key of (From, To), so no
// connection handshake is needed and connections are interchangeable.
type TCPNode struct {
	cfg          TCPConfig
	ln           net.Listener
	inbox        chan wire.Envelope
	handler      atomic.Pointer[Handler]
	batchHandler atomic.Pointer[BatchHandler]

	mu       sync.Mutex
	outbound map[wire.NodeID]*tcpOut
	inConns  map[net.Conn]struct{} // live inbound conns, for KillConns

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	stats Stats
	// Dropped counts inbound messages discarded for failing decode or
	// authentication. A nonzero value under honest operation indicates
	// misconfiguration; under attack it is expected and harmless.
	Dropped atomic.Int64
}

// tcpOut is one outbound connection with write coalescing: frames go into a
// bufio.Writer, and the writer that finds no successor queued flushes for
// the whole burst while the others wait for that flush's outcome. A burst of
// m² consensus messages thus costs a handful of syscalls instead of m², an
// isolated send still flushes immediately, and every Send synchronously
// returns the result of the flush that covered its frame — so the
// retry-once redial logic keeps working for coalesced frames.
type tcpOut struct {
	queued atomic.Int64 // senders that will take mu next
	mu     sync.Mutex
	cond   sync.Cond // signalled after each flush; guarded by mu
	conn   net.Conn
	bw     *bufio.Writer
	gen    uint64 // flush generation
	err    error  // outcome of the flush that ended generation gen
}

func newTCPOut(conn net.Conn) *tcpOut {
	o := &tcpOut{conn: conn, bw: bufio.NewWriterSize(conn, outBufSize)}
	o.cond.L = &o.mu
	return o
}

// writeFrame buffers one frame. The last writer of a burst flushes and
// publishes the outcome; the others block until that flush and return its
// error, so a lost frame is always observed by its sender.
func (o *tcpOut) writeFrame(raw []byte) error {
	o.queued.Add(1)
	o.mu.Lock()
	defer o.mu.Unlock()
	idle := o.queued.Add(-1) == 0
	err := wire.WriteFrameTo(o.bw, raw)
	if idle {
		// The burst's final writer always publishes — even on a write error
		// — so no earlier writer is left waiting on a flush that cannot
		// happen (bufio errors are sticky; the whole burst shares the fate).
		if err == nil {
			err = o.bw.Flush()
		}
		o.gen++
		o.err = err
		o.cond.Broadcast()
		return err
	}
	if err != nil {
		return err // a committed successor will publish for the waiters
	}
	// A successor is committed to taking the lock; the burst's final writer
	// will flush this frame too. Wait for that flush and report its outcome.
	gen := o.gen
	for o.gen == gen {
		o.cond.Wait()
	}
	return o.err
}

var _ Conn = (*TCPNode)(nil)

// ListenTCP starts a TCP node: it binds cfg.ListenAddr and serves inbound
// connections until Close.
func ListenTCP(cfg TCPConfig) (*TCPNode, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
	}
	peers := make(map[wire.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[id] = addr
	}
	cfg.Peers = peers
	n := &TCPNode{
		cfg:      cfg,
		ln:       ln,
		inbox:    make(chan wire.Envelope, 4096),
		outbound: make(map[wire.NodeID]*tcpOut),
		inConns:  make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with port 0).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Self returns the local node ID.
func (n *TCPNode) Self() wire.NodeID { return n.cfg.Self }

// Stats returns traffic counters.
func (n *TCPNode) Stats() StatsSnapshot { return n.stats.Snapshot() }

// SetPeer registers or updates a peer address.
func (n *TCPNode) SetPeer(id wire.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers[id] = addr
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			// Transient accept errors: back off briefly and continue.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	n.mu.Lock()
	n.inConns[conn] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.inConns, conn)
		n.mu.Unlock()
	}()
	go func() {
		<-n.done
		conn.Close() // unblock the pending read on shutdown
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if wire.IsSuperframe(frame) {
			n.ingestSuperframe(frame)
			continue
		}
		// The frame buffer is owned by this loop and never reused, so the
		// envelope's payload can alias it instead of being copied out.
		env, err := wire.DecodeEnvelopeView(frame)
		if err != nil {
			n.Dropped.Add(1)
			continue
		}
		if n.cfg.Registry != nil {
			if err := n.cfg.Registry.Verify(&env); err != nil {
				n.Dropped.Add(1)
				continue
			}
		} else if env.To != n.cfg.Self {
			n.Dropped.Add(1)
			continue
		}
		n.stats.MsgsReceived.Add(1)
		n.stats.BytesReceived.Add(int64(len(env.Payload)))
		if !n.deliverEnvelope(env) {
			return
		}
	}
}

// deliverEnvelope hands one inbound envelope to the handler (push mode: in
// the calling read goroutine, so inbound traffic from different peers is
// handled in parallel) or the Recv inbox. It returns false when the node is
// shutting down.
func (n *TCPNode) deliverEnvelope(env wire.Envelope) bool {
	if h := n.handler.Load(); h != nil {
		(*h)(env)
		return true
	}
	select {
	case n.inbox <- env:
	case <-n.done:
		return false
	}
	// A handler installed between the nil check above and the enqueue would
	// never look at the inbox again; re-check and drain so the message
	// cannot be stranded (each one is received exactly once, here or in
	// SetHandler's drain).
	if h := n.handler.Load(); h != nil {
		n.drainInto(h)
	}
	return true
}

// ingestSuperframe decodes, authenticates (ONE batch MAC check) and
// dispatches one inbound superframe. The whole batch is handed to the batch
// handler in this connection's read goroutine — one dispatch hop per
// superframe — falling back to per-envelope delivery when no batch handler
// is installed. A bad batch MAC drops the frame and counts once in Dropped;
// auth.VerifyBatch already attributed it as finely as the frame allows.
func (n *TCPNode) ingestSuperframe(frame []byte) {
	sf, err := wire.DecodeSuperframeView(frame)
	if err != nil {
		n.Dropped.Add(1)
		return
	}
	if n.cfg.Registry != nil {
		if err := n.cfg.Registry.VerifyBatchView(&sf, frame); err != nil {
			n.Dropped.Add(1)
			return
		}
	} else if sf.To != n.cfg.Self {
		n.Dropped.Add(1)
		return
	}
	size := 0
	for i := range sf.Envs {
		size += len(sf.Envs[i].Payload)
	}
	n.stats.MsgsReceived.Add(int64(len(sf.Envs)))
	n.stats.BytesReceived.Add(int64(size))
	if bh := n.batchHandler.Load(); bh != nil {
		(*bh)(sf.Envs)
		return
	}
	for _, env := range sf.Envs {
		if !n.deliverEnvelope(env) {
			return
		}
	}
}

// SetHandler switches the node to push delivery: envelopes are dispatched in
// the per-connection read goroutines instead of through Recv. Anything
// already queued for Recv is drained into h first.
func (n *TCPNode) SetHandler(h Handler) {
	n.handler.Store(&h)
	n.drainInto(&h)
}

// SetBatchHandler installs a handler receiving whole inbound superframes in
// one call each; without one, batches degrade to per-envelope delivery.
func (n *TCPNode) SetBatchHandler(h BatchHandler) {
	n.batchHandler.Store(&h)
}

// drainInto empties queued envelopes into the handler; safe to call
// concurrently (channel receives are exactly-once).
func (n *TCPNode) drainInto(h *Handler) {
	for {
		select {
		case env := <-n.inbox:
			(*h)(env)
		default:
			return
		}
	}
}

var (
	_ PushConn      = (*TCPNode)(nil)
	_ BatchConn     = (*TCPNode)(nil)
	_ PushBatchConn = (*TCPNode)(nil)
)

// Send signs (when configured) and transmits env to its destination,
// dialing or reusing a connection. A stale connection is retried once.
func (n *TCPNode) Send(env wire.Envelope) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	if env.From != n.cfg.Self {
		return fmt.Errorf("transport: sending as %d from node %d", env.From, n.cfg.Self)
	}
	if n.cfg.Registry != nil {
		if err := n.cfg.Registry.Sign(&env); err != nil {
			return fmt.Errorf("transport: %w", err)
		}
	}
	// The frame bytes are fully consumed by writeFrame (copied into the
	// connection's write buffer or the kernel), so the encoder is pooled.
	enc := wire.GetEncoder(env.EncodedSize())
	env.EncodeTo(enc)
	err := n.writeRetry(env.To, enc.Buffer())
	wire.PutEncoder(enc)
	if err == nil {
		n.stats.MsgsSent.Add(1)
		n.stats.BytesSent.Add(int64(len(env.Payload)))
	}
	return err
}

// SendBatch signs (ONE batch MAC, when configured) and transmits a whole
// superframe to its destination as a single wire frame. Every envelope must
// share the batch's destination; singletons fall back to Send and its
// per-envelope MAC, so a lone message never pays the superframe framing.
func (n *TCPNode) SendBatch(envs []wire.Envelope) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	if len(envs) == 0 {
		return nil
	}
	if len(envs) == 1 {
		return n.Send(envs[0])
	}
	size := 0
	for i := range envs {
		if envs[i].From != n.cfg.Self {
			return fmt.Errorf("transport: sending as %d from node %d", envs[i].From, n.cfg.Self)
		}
		if envs[i].To != envs[0].To {
			return fmt.Errorf("transport: superframe mixes destinations %d and %d", envs[0].To, envs[i].To)
		}
		size += len(envs[i].Payload)
	}
	// One encode serves both framing and authentication: the batch MAC is
	// computed directly over the encoded signed bytes and appended, instead
	// of encoding once to sign and again to frame. The size hint includes
	// the MAC that is about to be installed, so appending it never regrows
	// (and memmoves) the encoded frame.
	sf := wire.Superframe{From: n.cfg.Self, To: envs[0].To, Envs: envs}
	enc := wire.GetEncoder(sf.EncodedSize() + 1 + auth.KeySize)
	sf.SignedBytesTo(enc)
	if n.cfg.Registry != nil {
		var sum [auth.KeySize]byte
		if err := n.cfg.Registry.SignBatchBytes(sf.To, enc.Buffer(), &sum); err != nil {
			wire.PutEncoder(enc)
			return fmt.Errorf("transport: %w", err)
		}
		sf.MAC = sum[:]
	}
	enc.Bytes(sf.MAC)
	err := n.writeRetry(sf.To, enc.Buffer())
	wire.PutEncoder(enc)
	if err == nil {
		n.stats.MsgsSent.Add(int64(len(envs)))
		n.stats.BytesSent.Add(int64(size))
	}
	return err
}

// writeAttempts bounds writeRetry: one write on the cached conn plus up to
// three redial-and-replay attempts with jittered backoff between them.
const writeAttempts = 4

// writeRetry writes one raw frame to the peer's connection. A stale or
// freshly-killed connection is redialed and the write replayed, with
// capped jittered backoff between attempts; shutdown aborts the retry
// immediately.
func (n *TCPNode) writeRetry(to wire.NodeID, raw []byte) error {
	var lastErr error
	var bo *Backoff // lazily created: the no-failure path allocates nothing
	for attempt := 0; attempt < writeAttempts; attempt++ {
		if attempt > 0 {
			if bo == nil {
				bo = NewBackoff(2*time.Millisecond, 100*time.Millisecond,
					int64(n.cfg.Self)<<32^int64(to)^time.Now().UnixNano())
			}
			if !bo.Wait(n.done) {
				return ErrClosed
			}
		}
		out, err := n.conn(to, attempt > 0)
		if err != nil {
			return err
		}
		if err = out.writeFrame(raw); err == nil {
			if bo != nil {
				bo.Stop()
			}
			return nil
		}
		lastErr = err
		n.dropConn(to, out)
	}
	bo.Stop()
	return fmt.Errorf("transport: send to %d: %w", to, lastErr)
}

// conn returns the outbound connection for id, dialing if absent or if
// redial is set.
func (n *TCPNode) conn(id wire.NodeID, redial bool) (*tcpOut, error) {
	n.mu.Lock()
	if out, ok := n.outbound[id]; ok && !redial {
		n.mu.Unlock()
		return out, nil
	}
	addr, ok := n.cfg.Peers[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for peer %d", id)
	}
	// Retry refused connections within the dial budget: peers of a round
	// start concurrently and a listener may be a beat behind its dialers.
	// Capped jittered exponential backoff (one reusable timer, honoring
	// shutdown) keeps a whole fleet redialing one restarted peer from
	// hammering it in lockstep.
	deadline := time.Now().Add(n.cfg.DialTimeout)
	var c net.Conn
	var err error
	var bo *Backoff // lazily created: the first-try-succeeds path allocates nothing
	for {
		c, err = net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			if bo != nil {
				bo.Stop()
			}
			return nil, fmt.Errorf("transport: dial %d (%s): %w", id, addr, err)
		}
		if bo == nil {
			bo = NewBackoff(5*time.Millisecond, 200*time.Millisecond,
				int64(n.cfg.Self)<<32^int64(id)^time.Now().UnixNano())
		}
		if !bo.Wait(n.done) {
			return nil, ErrClosed
		}
	}
	if bo != nil {
		bo.Stop()
	}
	out := newTCPOut(c)
	n.mu.Lock()
	if old, ok := n.outbound[id]; ok && !redial {
		// Lost the race; keep the existing connection.
		n.mu.Unlock()
		c.Close()
		return old, nil
	}
	n.outbound[id] = out
	n.mu.Unlock()
	return out, nil
}

// KillConns abruptly closes every live connection — outbound and inbound —
// without touching the listener or the node's state. It models a network
// event (NAT rebind, cable pull, peer restart) for fault injection: the
// next send redials, in-flight frames are lost, and the resilience layer's
// seq/resend protocol must replay whatever the dead conns swallowed.
func (n *TCPNode) KillConns() {
	n.mu.Lock()
	outs := make([]*tcpOut, 0, len(n.outbound))
	for id, out := range n.outbound {
		outs = append(outs, out)
		delete(n.outbound, id)
	}
	ins := make([]net.Conn, 0, len(n.inConns))
	for conn := range n.inConns {
		ins = append(ins, conn)
	}
	n.mu.Unlock()
	for _, out := range outs {
		out.conn.Close()
	}
	for _, conn := range ins {
		conn.Close()
	}
}

func (n *TCPNode) dropConn(id wire.NodeID, out *tcpOut) {
	n.mu.Lock()
	if n.outbound[id] == out {
		delete(n.outbound, id)
	}
	n.mu.Unlock()
	out.conn.Close()
}

// Recv blocks for the next authenticated envelope.
func (n *TCPNode) Recv(ctx context.Context) (wire.Envelope, error) {
	select {
	case env := <-n.inbox:
		return env, nil
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-n.done:
		select {
		case env := <-n.inbox:
			return env, nil
		default:
			return wire.Envelope{}, ErrClosed
		}
	}
}

// Close shuts the node down and waits for its goroutines.
func (n *TCPNode) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.ln.Close()
		n.mu.Lock()
		for id, out := range n.outbound {
			out.conn.Close()
			delete(n.outbound, id)
		}
		n.mu.Unlock()
		n.wg.Wait()
	})
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
