package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/auth"
	"distauction/internal/wire"
)

// TCPConfig configures a TCP transport node.
type TCPConfig struct {
	// Self is the local node ID.
	Self wire.NodeID
	// ListenAddr is the local listen address ("host:port"; port 0 picks one).
	ListenAddr string
	// Peers maps node IDs to dialable addresses. Only peers this node sends
	// to need entries.
	Peers map[wire.NodeID]string
	// Registry authenticates traffic. If nil, messages are unauthenticated
	// (tests only; production deployments must set it).
	Registry *auth.Registry
	// DialTimeout bounds outbound connection establishment. Zero means 5s.
	DialTimeout time.Duration
}

// TCPNode is a node on a TCP network. Identity is established per message:
// each envelope carries an HMAC under the pairwise key of (From, To), so no
// connection handshake is needed and connections are interchangeable.
type TCPNode struct {
	cfg   TCPConfig
	ln    net.Listener
	inbox chan wire.Envelope

	mu       sync.Mutex
	outbound map[wire.NodeID]*tcpOut

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	stats Stats
	// Dropped counts inbound messages discarded for failing decode or
	// authentication. A nonzero value under honest operation indicates
	// misconfiguration; under attack it is expected and harmless.
	Dropped atomic.Int64
}

type tcpOut struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ Conn = (*TCPNode)(nil)

// ListenTCP starts a TCP node: it binds cfg.ListenAddr and serves inbound
// connections until Close.
func ListenTCP(cfg TCPConfig) (*TCPNode, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
	}
	peers := make(map[wire.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[id] = addr
	}
	cfg.Peers = peers
	n := &TCPNode{
		cfg:      cfg,
		ln:       ln,
		inbox:    make(chan wire.Envelope, 4096),
		outbound: make(map[wire.NodeID]*tcpOut),
		done:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with port 0).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Self returns the local node ID.
func (n *TCPNode) Self() wire.NodeID { return n.cfg.Self }

// Stats returns traffic counters.
func (n *TCPNode) Stats() StatsSnapshot { return n.stats.Snapshot() }

// SetPeer registers or updates a peer address.
func (n *TCPNode) SetPeer(id wire.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers[id] = addr
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			// Transient accept errors: back off briefly and continue.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	go func() {
		<-n.done
		conn.Close() // unblock the pending read on shutdown
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		env, err := wire.DecodeEnvelope(frame)
		if err != nil {
			n.Dropped.Add(1)
			continue
		}
		if n.cfg.Registry != nil {
			if err := n.cfg.Registry.Verify(&env); err != nil {
				n.Dropped.Add(1)
				continue
			}
		} else if env.To != n.cfg.Self {
			n.Dropped.Add(1)
			continue
		}
		n.stats.MsgsReceived.Add(1)
		n.stats.BytesReceived.Add(int64(len(env.Payload)))
		select {
		case n.inbox <- env:
		case <-n.done:
			return
		}
	}
}

// Send signs (when configured) and transmits env to its destination,
// dialing or reusing a connection. A stale connection is retried once.
func (n *TCPNode) Send(env wire.Envelope) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	if env.From != n.cfg.Self {
		return fmt.Errorf("transport: sending as %d from node %d", env.From, n.cfg.Self)
	}
	if n.cfg.Registry != nil {
		if err := n.cfg.Registry.Sign(&env); err != nil {
			return fmt.Errorf("transport: %w", err)
		}
	}
	raw := env.Encode()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		out, err := n.conn(env.To, attempt > 0)
		if err != nil {
			return err
		}
		out.mu.Lock()
		err = wire.WriteFrame(out.conn, raw)
		out.mu.Unlock()
		if err == nil {
			n.stats.MsgsSent.Add(1)
			n.stats.BytesSent.Add(int64(len(env.Payload)))
			return nil
		}
		lastErr = err
		n.dropConn(env.To, out)
	}
	return fmt.Errorf("transport: send to %d: %w", env.To, lastErr)
}

// conn returns the outbound connection for id, dialing if absent or if
// redial is set.
func (n *TCPNode) conn(id wire.NodeID, redial bool) (*tcpOut, error) {
	n.mu.Lock()
	if out, ok := n.outbound[id]; ok && !redial {
		n.mu.Unlock()
		return out, nil
	}
	addr, ok := n.cfg.Peers[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for peer %d", id)
	}
	// Retry refused connections within the dial budget: peers of a round
	// start concurrently and a listener may be a beat behind its dialers.
	deadline := time.Now().Add(n.cfg.DialTimeout)
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %d (%s): %w", id, addr, err)
		}
		select {
		case <-n.done:
			return nil, ErrClosed
		case <-time.After(50 * time.Millisecond):
		}
	}
	out := &tcpOut{conn: c}
	n.mu.Lock()
	if old, ok := n.outbound[id]; ok && !redial {
		// Lost the race; keep the existing connection.
		n.mu.Unlock()
		c.Close()
		return old, nil
	}
	n.outbound[id] = out
	n.mu.Unlock()
	return out, nil
}

func (n *TCPNode) dropConn(id wire.NodeID, out *tcpOut) {
	n.mu.Lock()
	if n.outbound[id] == out {
		delete(n.outbound, id)
	}
	n.mu.Unlock()
	out.conn.Close()
}

// Recv blocks for the next authenticated envelope.
func (n *TCPNode) Recv(ctx context.Context) (wire.Envelope, error) {
	select {
	case env := <-n.inbox:
		return env, nil
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-n.done:
		select {
		case env := <-n.inbox:
			return env, nil
		default:
			return wire.Envelope{}, ErrClosed
		}
	}
}

// Close shuts the node down and waits for its goroutines.
func (n *TCPNode) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.ln.Close()
		n.mu.Lock()
		for id, out := range n.outbound {
			out.conn.Close()
			delete(n.outbound, id)
		}
		n.mu.Unlock()
		n.wg.Wait()
	})
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
