package transport

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/wire"
)

// The resilience layer hardens any Network against message loss and
// connection churn with an envelope-level ARQ protocol:
//
//   - Every application envelope to a peer carries a per-peer sequence
//     number in wire.Envelope.LinkSeq (assigned here, outside the signed
//     bytes — a retransmission never needs re-signing) and is kept in a
//     bounded unacked buffer until the peer's cumulative ack covers it.
//     The envelope itself ships unmodified: no re-encode, no payload copy.
//   - Receivers guarantee exactly-once delivery, not ordering: every
//     frame is released to the protocol the moment it arrives, and a
//     duplicate (a resend that raced its ack, or a replay after
//     reconnect) is dropped by seq — so a kill-and-replay cycle loses
//     nothing and duplicates nothing. The protocol layer is an
//     asynchronous BFT protocol that absorbs reordering natively, and
//     the raw network reorders anyway; re-sequencing here would only add
//     head-of-line blocking on every jittered frame. Frames delivered
//     above the contiguous prefix are remembered as merged seq ranges
//     for dedup until the gap beneath them is repaired. Unsequenced
//     envelopes (LinkSeq zero: broadcasts, unwrapped peers) pass
//     through.
//   - Acks are cumulative and piggyback on data (wire.Envelope.LinkAck,
//     TCP-style): every sequenced envelope out carries the newest ack
//     for the reverse direction, so a steadily bidirectional link ships
//     zero standalone control frames. Dedicated wire.BlockLink frames
//     cover the gaps: eager acks every ackEvery delivered frames on
//     one-way floods, and a per-connection ticker that sends heartbeats
//     (carrying the ack) to peers the data path has left silent, and
//     resends unacked frames older than the resend timeout. Heartbeats
//     double as failure detection: a peer not heard from for
//     SuspectAfter (DeadAfter) intervals is suspect (dead), and a dead
//     peer heard again counts as a reconnect.
//
// Layering: session → ResilientConn → (faultnet) → Hub/TCPNode. Over TCP
// the node's own redial replaces the conn; the link layer replays what
// the dead conn lost. Over the in-memory Hub the same protocol masks
// injected drops and blackout windows.

// Link control kinds, carried in Tag.Step of BlockLink envelopes. (Value 1
// once marked wrapped data frames; data now rides Envelope.LinkSeq. Do not
// reuse.)
const (
	linkAck       = 2 // Tag.Round = cumulative ack (eager, every ackEvery frames)
	linkHeartbeat = 3 // Tag.Round = cumulative ack, empty payload
)

// ackEvery is how many delivered data frames trigger an eager ack between
// heartbeats. Acks still ride every heartbeat; the eager path keeps the
// sender's unacked buffer (and the heap it retains) small under load.
const ackEvery = 256

// ResilientConfig tunes the link layer. The zero value gets defaults
// suitable for in-process experiments; real WAN deployments raise the
// intervals.
type ResilientConfig struct {
	// HeartbeatEvery is the tick interval: heartbeats out, health and
	// resend checks. Default 50ms — on an otherwise idle link a peer is
	// suspect after 200ms and dead after 600ms, while the tick overhead
	// stays invisible next to protocol traffic even with hundreds of
	// attachments in one process.
	HeartbeatEvery time.Duration
	// ResendAfter is how long an unacked frame waits before it is resent
	// (the retransmission timeout). Default 4×HeartbeatEvery.
	ResendAfter time.Duration
	// SuspectAfter and DeadAfter are how many heartbeat intervals of
	// silence move a peer to suspect / dead. Defaults 4 and 12.
	SuspectAfter int
	DeadAfter    int
	// MaxUnacked bounds the per-peer resend buffer; beyond it the oldest
	// unacked frame is dropped and counted (a peer that far behind is
	// already being declared dead). Default 1024.
	MaxUnacked int
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.ResendAfter <= 0 {
		c.ResendAfter = 4 * c.HeartbeatEvery
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 4
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 12
	}
	if c.MaxUnacked <= 0 {
		c.MaxUnacked = 1024
	}
	return c
}

// HealthState is a peer's liveness as judged by heartbeat silence.
type HealthState uint8

const (
	// HealthAlive: heard from within SuspectAfter intervals.
	HealthAlive HealthState = iota
	// HealthSuspect: silent past SuspectAfter intervals.
	HealthSuspect
	// HealthDead: silent past DeadAfter intervals — the crash verdict the
	// protocol layer turns into a disconnect abort.
	HealthDead
)

// String returns the state's stable metric label.
func (s HealthState) String() string {
	switch s {
	case HealthAlive:
		return "alive"
	case HealthSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// PeerHealth is one peer's liveness snapshot.
type PeerHealth struct {
	Peer       wire.NodeID
	State      HealthState
	SinceHeard time.Duration // silence duration at snapshot time
}

// LinkStats counts the link layer's work.
type LinkStats struct {
	Resends     int64 // unacked frames retransmitted
	Reconnects  int64 // suspect/dead peers heard from again
	DupsDropped int64 // duplicate data frames discarded by seq
	Overflow    int64 // unacked frames evicted by the buffer bound
	Heartbeats  int64 // heartbeats sent
}

// Add returns the component-wise sum.
func (a LinkStats) Add(b LinkStats) LinkStats {
	return LinkStats{
		Resends:     a.Resends + b.Resends,
		Reconnects:  a.Reconnects + b.Reconnects,
		DupsDropped: a.DupsDropped + b.DupsDropped,
		Overflow:    a.Overflow + b.Overflow,
		Heartbeats:  a.Heartbeats + b.Heartbeats,
	}
}

// HealthReporter is implemented by connections that track per-peer
// liveness. The market mux forwards it from its attachment so that
// protocol timeouts can tell a crashed peer from a silent one, and stats
// surfaces can export the health table.
type HealthReporter interface {
	// PeerDead reports whether id has been declared dead (heartbeat
	// silence past the dead threshold).
	PeerDead(id wire.NodeID) bool
	// PeerHealth returns the liveness table, sorted by peer ID.
	PeerHealth() []PeerHealth
	// LinkStats returns the link-layer counters.
	LinkStats() LinkStats
}

// ResilientNetwork wraps an inner Network so that every attachment speaks
// the link-layer ARQ protocol.
type ResilientNetwork struct {
	inner Network
	cfg   ResilientConfig

	mu        sync.Mutex
	conns     []*ResilientConn
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
	tickConns []*ResilientConn // ticker scratch, touched only by run
}

var _ Network = (*ResilientNetwork)(nil)

// Resilient layers reliable delivery and failure detection over inner.
// All attachments of one deployment must agree on wrapping (the link
// framing is wire-visible). One shared ticker drives every attachment's
// heartbeats, resends and health checks — a deployment multiplexing
// hundreds of attachments in one process gets one timer wakeup per
// interval, not hundreds.
func Resilient(inner Network, cfg ResilientConfig) *ResilientNetwork {
	n := &ResilientNetwork{inner: inner, cfg: cfg.withDefaults(), done: make(chan struct{})}
	n.wg.Add(1)
	go n.run()
	return n
}

// run is the shared link ticker across all attachments.
func (n *ResilientNetwork) run() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case now := <-t.C:
			n.mu.Lock()
			conns := append(n.tickConns[:0], n.conns...)
			n.tickConns = conns
			n.mu.Unlock()
			for _, c := range conns {
				c.tick(now)
			}
		}
	}
}

// Attach implements Network.
func (n *ResilientNetwork) Attach(id wire.NodeID) (Conn, error) {
	inner, err := n.inner.Attach(id)
	if err != nil {
		return nil, err
	}
	c := newResilientConn(inner, n.cfg, false)
	n.mu.Lock()
	n.conns = append(n.conns, c)
	n.mu.Unlock()
	return c, nil
}

// Stats implements Network with the inner network's counters (link
// traffic included: resends and heartbeats are real messages).
func (n *ResilientNetwork) Stats() StatsSnapshot { return n.inner.Stats() }

// LinkStats sums the link-layer counters across attachments.
func (n *ResilientNetwork) LinkStats() LinkStats {
	n.mu.Lock()
	conns := append([]*ResilientConn(nil), n.conns...)
	n.mu.Unlock()
	var total LinkStats
	for _, c := range conns {
		total = total.Add(c.LinkStats())
	}
	return total
}

// Close implements Network.
func (n *ResilientNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := append([]*ResilientConn(nil), n.conns...)
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	for _, c := range conns {
		c.stop()
	}
	err := n.inner.Close()
	for _, c := range conns {
		c.wg.Wait()
	}
	return err
}

// linkFrame is one unacked outbound frame awaiting its cumulative ack.
type linkFrame struct {
	seq    uint64
	env    wire.Envelope // the wrapped link envelope, ready to resend
	sentAt time.Time
}

// seqRange is an inclusive range of sequence numbers delivered above the
// contiguous prefix.
type seqRange struct{ lo, hi uint64 }

// linkPeer is the per-peer link state: sender window, receiver dedup
// and the health verdict.
type linkPeer struct {
	id wire.NodeID

	mu sync.Mutex
	// Sender side.
	nextSeq uint64 // last assigned sequence number
	unacked []linkFrame
	// Receiver side.
	contig       uint64     // all seqs ≤ contig delivered
	ahead        []seqRange // delivered above contig: sorted, disjoint, non-adjacent
	recvSinceAck int        // delivered frames since the last ack shipped
	lastAckSent  uint64     // contig value carried by the last ack/heartbeat out
	lastDataSent time.Time  // when we last sent this peer a data frame
	// Health.
	lastHeard time.Time
	state     HealthState
}

// ResilientConn is one attachment's link layer. It implements the full
// connection surface (push, batch) regardless of the inner transport,
// falling back to a Recv pump when the inner conn cannot push.
type ResilientConn struct {
	inner      Conn
	innerBatch BatchConn // nil when the inner conn cannot batch
	cfg        ResilientConfig
	self       wire.NodeID

	inbox        chan wire.Envelope
	handler      atomic.Pointer[Handler]
	batchHandler atomic.Pointer[BatchHandler]

	mu    sync.Mutex
	peers map[wire.NodeID]*linkPeer

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Ticker scratch, reused across ticks; touched only by the run
	// goroutine.
	tickPeers  []*linkPeer
	tickResend []wire.Envelope

	resends, reconnects, dups, overflow, heartbeats atomic.Int64
}

var (
	_ Conn           = (*ResilientConn)(nil)
	_ PushConn       = (*ResilientConn)(nil)
	_ BatchConn      = (*ResilientConn)(nil)
	_ PushBatchConn  = (*ResilientConn)(nil)
	_ HealthReporter = (*ResilientConn)(nil)
)

// WrapResilient layers the link protocol over one connection. Both ends
// of every link must be wrapped.
func WrapResilient(inner Conn, cfg ResilientConfig) *ResilientConn {
	return newResilientConn(inner, cfg, true)
}

// newResilientConn builds the link layer over one connection. ownTicker
// starts a per-conn ticker goroutine; ResilientNetwork passes false and
// drives all of its conns from one shared ticker instead.
func newResilientConn(inner Conn, cfg ResilientConfig, ownTicker bool) *ResilientConn {
	cfg = cfg.withDefaults()
	c := &ResilientConn{
		inner: inner,
		cfg:   cfg,
		self:  inner.Self(),
		inbox: make(chan wire.Envelope, 4096),
		peers: make(map[wire.NodeID]*linkPeer),
		done:  make(chan struct{}),
	}
	if bc, ok := inner.(BatchConn); ok {
		c.innerBatch = bc
	}
	if pc, ok := inner.(PushConn); ok {
		pc.SetHandler(c.onInner)
		if pbc, ok := inner.(PushBatchConn); ok {
			pbc.SetBatchHandler(c.onInnerBatch)
		}
	} else {
		c.wg.Add(1)
		go c.pump()
	}
	if ownTicker {
		c.wg.Add(1)
		go c.run()
	}
	return c
}

// Self implements Conn.
func (c *ResilientConn) Self() wire.NodeID { return c.self }

// Inner returns the wrapped connection (tests reach through for
// transport-specific hooks like TCPNode.KillConns).
func (c *ResilientConn) Inner() Conn { return c.inner }

// peer returns (creating if needed) the link state for id.
func (c *ResilientConn) peer(id wire.NodeID) *linkPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	if !ok {
		p = &linkPeer{id: id, lastHeard: time.Now()}
		c.peers[id] = p
	}
	return p
}

// track records a sequenced frame in the peer's unacked buffer. The
// envelope is stored by value — payload by reference, which is safe
// because payloads are immutable once handed to a transport. Caller holds
// p.mu and has assigned env.LinkSeq.
func (p *linkPeer) track(c *ResilientConn, env wire.Envelope, now time.Time) {
	if len(p.unacked) >= c.cfg.MaxUnacked {
		// Evict the oldest: the peer is either dead (the disconnect verdict
		// is on its way) or pathologically behind; bounded memory wins.
		copy(p.unacked, p.unacked[1:])
		p.unacked = p.unacked[:len(p.unacked)-1]
		c.overflow.Add(1)
	}
	p.unacked = append(p.unacked, linkFrame{seq: env.LinkSeq, env: env, sentAt: now})
}

// Send implements Conn: the envelope is sequenced in place and buffered
// for resend. Broadcast envelopes (no single peer to sequence against) and
// link control traffic pass through unsequenced.
func (c *ResilientConn) Send(env wire.Envelope) error {
	if env.To == wire.Broadcast || env.Tag.Block == wire.BlockLink {
		return c.inner.Send(env)
	}
	now := time.Now()
	p := c.peer(env.To)
	p.mu.Lock()
	p.nextSeq++
	env.LinkSeq = p.nextSeq
	env.LinkAck = p.contig // piggybacked ack for the reverse direction
	p.lastAckSent = p.contig
	p.recvSinceAck = 0
	p.track(c, env, now)
	p.lastDataSent = now
	p.mu.Unlock()
	return c.inner.Send(env)
}

// SendBatch implements BatchConn: each envelope of the superframe is
// sequenced in place (the layer owns the LinkSeq field) and buffered for
// resend, and the batch ships as one inner superframe — no re-encode, no
// copy, no allocation.
func (c *ResilientConn) SendBatch(envs []wire.Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	if envs[0].To == wire.Broadcast {
		return c.sendBatchInner(envs)
	}
	now := time.Now()
	p := c.peer(envs[0].To)
	p.mu.Lock()
	for i := range envs {
		p.nextSeq++
		envs[i].LinkSeq = p.nextSeq
		envs[i].LinkAck = p.contig // piggybacked ack for the reverse direction
		p.track(c, envs[i], now)
	}
	p.lastAckSent = p.contig
	p.recvSinceAck = 0
	p.lastDataSent = now
	p.mu.Unlock()
	return c.sendBatchInner(envs)
}

func (c *ResilientConn) sendBatchInner(envs []wire.Envelope) error {
	if c.innerBatch != nil {
		return c.innerBatch.SendBatch(envs)
	}
	for i := range envs {
		if err := c.inner.Send(envs[i]); err != nil {
			return err
		}
	}
	return nil
}

// heard marks the peer live and reports a reconnect when it was suspect
// or dead. Caller holds p.mu.
func (p *linkPeer) heard(c *ResilientConn, now time.Time) {
	p.lastHeard = now
	if p.state != HealthAlive {
		p.state = HealthAlive
		c.reconnects.Add(1)
	}
}

// ackDue is a deferred eager ack: computed under the peer lock, shipped
// after release.
type ackDue struct {
	to     wire.NodeID
	contig uint64
	due    bool
}

// ackDueLocked reports whether enough frames arrived since the last ack to
// warrant an eager one, and resets the counter. Caller holds p.mu.
func (c *ResilientConn) ackDueLocked(p *linkPeer) ackDue {
	if p.recvSinceAck < ackEvery {
		return ackDue{}
	}
	p.recvSinceAck = 0
	p.lastAckSent = p.contig
	return ackDue{to: p.id, contig: p.contig, due: true}
}

func (c *ResilientConn) sendAck(a ackDue) {
	if !a.due {
		return
	}
	_ = c.inner.Send(wire.Envelope{
		From: c.self,
		To:   a.to,
		Tag:  wire.Tag{Round: a.contig, Block: wire.BlockLink, Step: linkAck},
	})
}

// ackLocked applies a cumulative ack: every unacked frame it covers is
// released. Caller holds p.mu.
func (c *ResilientConn) ackLocked(p *linkPeer, ack uint64, now time.Time) {
	p.heard(c, now)
	dropAckedLocked(p, ack)
}

// dropAckedLocked releases the unacked prefix a cumulative ack covers. A
// stale or zero ack is a no-op. Caller holds p.mu.
func dropAckedLocked(p *linkPeer, ack uint64) {
	drop := 0
	for drop < len(p.unacked) && p.unacked[drop].seq <= ack {
		drop++
	}
	if drop > 0 {
		rest := copy(p.unacked, p.unacked[drop:])
		for i := rest; i < len(p.unacked); i++ {
			p.unacked[i] = linkFrame{} // release payload references
		}
		p.unacked = p.unacked[:rest]
	}
}

// mergeAhead absorbs into contig every ahead range that now touches the
// contiguous prefix. Caller holds p.mu.
func (p *linkPeer) mergeAhead() {
	n := 0
	for n < len(p.ahead) && p.ahead[n].lo == p.contig+1 {
		p.contig = p.ahead[n].hi
		n++
	}
	if n > 0 {
		p.ahead = p.ahead[:copy(p.ahead, p.ahead[n:])]
	}
}

// markAhead records [lo,hi] as delivered above the contiguous prefix,
// coalescing with adjacent ranges. It returns false — recording nothing —
// when the range overlaps one already delivered (a duplicate). Caller
// holds p.mu; lo must exceed p.contig+1.
func (p *linkPeer) markAhead(lo, hi uint64) bool {
	a := p.ahead
	// First range that could touch [lo,hi]: ends at lo-1 or later.
	i := sort.Search(len(a), func(i int) bool { return a[i].hi+1 >= lo })
	switch {
	case i == len(a):
		p.ahead = append(a, seqRange{lo, hi})
	case a[i].lo <= hi && a[i].hi >= lo:
		return false // overlap: already delivered
	case a[i].hi+1 == lo:
		// Extends a[i] rightward; the next range may now be adjacent too.
		a[i].hi = hi
		if i+1 < len(a) && a[i+1].lo == hi+1 {
			a[i].hi = a[i+1].hi
			p.ahead = a[:i+1+copy(a[i+1:], a[i+2:])]
		}
	case a[i].lo == hi+1:
		a[i].lo = lo // extends a[i] leftward
	default:
		a = append(a, seqRange{})
		copy(a[i+1:], a[i:])
		a[i] = seqRange{lo, hi}
		p.ahead = a
	}
	return true
}

// ingestLocked runs the receiver side of the ARQ for one data frame:
// exact dedup by seq, immediate release. Fresh envelopes are appended to
// out; the caller dispatches after releasing p.mu (held here).
func (c *ResilientConn) ingestLocked(p *linkPeer, env *wire.Envelope, out []wire.Envelope, now time.Time) []wire.Envelope {
	p.heard(c, now)
	dropAckedLocked(p, env.LinkAck) // piggybacked ack for our own sends
	seq := env.LinkSeq
	switch {
	case seq <= p.contig:
		c.dups.Add(1) // resend that raced its ack; already delivered
	case seq == p.contig+1:
		out = append(out, *env)
		p.contig = seq
		p.recvSinceAck++
		p.mergeAhead()
	default:
		// Above a gap: deliver now anyway (the protocol absorbs
		// reordering), remember the seq so the resend that repairs the
		// gap cannot re-deliver it.
		if p.markAhead(seq, seq) {
			out = append(out, *env)
			p.recvSinceAck++
		} else {
			c.dups.Add(1)
		}
	}
	return out
}

// onInner processes one inbound envelope from the wrapped transport.
func (c *ResilientConn) onInner(env wire.Envelope) {
	if env.Tag.Block == wire.BlockLink {
		p := c.peer(env.From)
		p.mu.Lock()
		c.ackLocked(p, env.Tag.Round, time.Now())
		p.mu.Unlock()
		return
	}
	if env.LinkSeq == 0 {
		c.deliver(env) // an unwrapped peer (or broadcast); pass through
		return
	}
	now := time.Now()
	p := c.peer(env.From)
	var out []wire.Envelope
	p.mu.Lock()
	out = c.ingestLocked(p, &env, out, now)
	ack := c.ackDueLocked(p)
	p.mu.Unlock()
	c.sendAck(ack)
	for i := range out {
		c.deliver(out[i])
	}
}

// onInnerBatch processes one inbound superframe: every fresh envelope
// across the batch is released in one dispatch, preserving the one-hop
// batch path end to end. The common case — one sender, consecutive
// sequence numbers, no frame seen before — is recognised up front and
// the batch is handed on exactly as received: one lock round-trip, zero
// allocations, zero copies.
func (c *ResilientConn) onInnerBatch(envs []wire.Envelope) {
	if len(envs) == 0 {
		return
	}
	// Fast-path probe: all data frames from one sender with consecutive
	// sequence numbers.
	from, first := envs[0].From, envs[0].LinkSeq
	fast := first != 0
	for i := range envs {
		if envs[i].Tag.Block == wire.BlockLink || envs[i].From != from ||
			envs[i].LinkSeq != first+uint64(i) {
			fast = false
			break
		}
	}
	if fast {
		now := time.Now()
		last := first + uint64(len(envs)) - 1
		p := c.peer(from)
		p.mu.Lock()
		ok := false
		switch {
		case first == p.contig+1 && (len(p.ahead) == 0 || p.ahead[0].lo > last):
			// Extends the contiguous prefix without touching anything
			// already delivered ahead of it.
			p.contig = last
			p.mergeAhead()
			ok = true
		case first > p.contig+1:
			// A reordered batch: deliver it now, remember the range.
			ok = p.markAhead(first, last)
		}
		if ok {
			p.heard(c, now)
			// Acks are monotone and stamped in send order: the last
			// envelope's piggybacked ack is the newest.
			dropAckedLocked(p, envs[len(envs)-1].LinkAck)
			p.recvSinceAck += len(envs)
			ack := c.ackDueLocked(p)
			p.mu.Unlock()
			c.sendAck(ack)
			c.dispatch(envs)
			return
		}
		p.mu.Unlock() // replayed frames inside; the slow path dedups each
	}
	out := make([]wire.Envelope, 0, len(envs))
	now := time.Now()
	var p *linkPeer
	for i := range envs {
		e := &envs[i]
		if e.Tag.Block != wire.BlockLink && e.LinkSeq == 0 {
			out = append(out, *e)
			continue
		}
		if p == nil || p.id != e.From {
			if p != nil {
				a := c.ackDueLocked(p)
				p.mu.Unlock()
				c.sendAck(a)
			}
			p = c.peer(e.From)
			p.mu.Lock()
		}
		if e.Tag.Block == wire.BlockLink {
			c.ackLocked(p, e.Tag.Round, now)
		} else {
			out = c.ingestLocked(p, e, out, now)
		}
	}
	if p != nil {
		a := c.ackDueLocked(p)
		p.mu.Unlock()
		c.sendAck(a)
	}
	c.dispatch(out)
}

// dispatch releases a batch of restored envelopes to the handler surface.
func (c *ResilientConn) dispatch(out []wire.Envelope) {
	if len(out) == 0 {
		return
	}
	if bh := c.batchHandler.Load(); bh != nil {
		(*bh)(out)
		return
	}
	for i := range out {
		c.deliver(out[i])
	}
}

// deliver hands one restored envelope to the handler or the Recv inbox
// (same exactly-once discipline as the base transports).
func (c *ResilientConn) deliver(env wire.Envelope) {
	if h := c.handler.Load(); h != nil {
		(*h)(env)
		return
	}
	select {
	case c.inbox <- env:
	case <-c.done:
		return
	}
	if h := c.handler.Load(); h != nil {
		c.drainInto(h)
	}
}

func (c *ResilientConn) drainInto(h *Handler) {
	for {
		select {
		case env := <-c.inbox:
			(*h)(env)
		default:
			return
		}
	}
}

// pump is the Recv-mode fallback for inner conns that cannot push.
func (c *ResilientConn) pump() {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-c.done
		cancel()
	}()
	for {
		env, err := c.inner.Recv(ctx)
		if err != nil {
			return
		}
		c.onInner(env)
	}
}

// run is the link ticker: heartbeats out (carrying cumulative acks),
// resend timeouts, health transitions.
func (c *ResilientConn) run() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-t.C:
			c.tick(now)
		}
	}
}

func (c *ResilientConn) tick(now time.Time) {
	c.mu.Lock()
	peers := c.tickPeers[:0]
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.tickPeers = peers
	c.mu.Unlock()
	resend := c.tickResend
	defer func() { c.tickResend = resend[:0] }()
	for _, p := range peers {
		p.mu.Lock()
		// Health: silence thresholds in heartbeat intervals.
		silence := now.Sub(p.lastHeard)
		switch {
		case silence > time.Duration(c.cfg.DeadAfter)*c.cfg.HeartbeatEvery:
			p.state = HealthDead
		case silence > time.Duration(c.cfg.SuspectAfter)*c.cfg.HeartbeatEvery:
			if p.state == HealthAlive {
				p.state = HealthSuspect
			}
		}
		// Retransmission: everything unacked past the resend timeout.
		resend = resend[:0]
		for i := range p.unacked {
			if now.Sub(p.unacked[i].sentAt) >= c.cfg.ResendAfter {
				p.unacked[i].env.LinkAck = p.contig // refresh the piggybacked ack
				resend = append(resend, p.unacked[i].env)
				p.unacked[i].sentAt = now
			}
		}
		// Heartbeat suppression: a peer we sent data to within the interval
		// already has fresh proof of our liveness, and if the last ack we
		// shipped still covers everything delivered there is nothing to
		// piggyback either — the heartbeat would be pure overhead.
		sendHB := now.Sub(p.lastDataSent) >= c.cfg.HeartbeatEvery || p.contig != p.lastAckSent
		contig := p.contig
		if sendHB {
			p.recvSinceAck = 0 // the heartbeat below carries the ack
			p.lastAckSent = contig
		}
		p.mu.Unlock()
		for i := range resend {
			c.resends.Add(1)
			_ = c.inner.Send(resend[i])
		}
		if !sendHB {
			continue
		}
		// Heartbeat, carrying the cumulative ack.
		hb := wire.Envelope{
			From: c.self,
			To:   p.id,
			Tag:  wire.Tag{Round: contig, Block: wire.BlockLink, Step: linkHeartbeat},
		}
		c.heartbeats.Add(1)
		_ = c.inner.Send(hb)
	}
}

// PeerDead implements HealthReporter.
func (c *ResilientConn) PeerDead(id wire.NodeID) bool {
	c.mu.Lock()
	p, ok := c.peers[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == HealthDead
}

// PeerHealth implements HealthReporter.
func (c *ResilientConn) PeerHealth() []PeerHealth {
	now := time.Now()
	c.mu.Lock()
	peers := make([]*linkPeer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	out := make([]PeerHealth, 0, len(peers))
	for _, p := range peers {
		p.mu.Lock()
		out = append(out, PeerHealth{Peer: p.id, State: p.state, SinceHeard: now.Sub(p.lastHeard)})
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// LinkStats implements HealthReporter.
func (c *ResilientConn) LinkStats() LinkStats {
	return LinkStats{
		Resends:     c.resends.Load(),
		Reconnects:  c.reconnects.Load(),
		DupsDropped: c.dups.Load(),
		Overflow:    c.overflow.Load(),
		Heartbeats:  c.heartbeats.Load(),
	}
}

// SetHandler implements PushConn.
func (c *ResilientConn) SetHandler(h Handler) {
	c.handler.Store(&h)
	c.drainInto(&h)
}

// SetBatchHandler implements PushBatchConn.
func (c *ResilientConn) SetBatchHandler(h BatchHandler) {
	c.batchHandler.Store(&h)
}

// Recv implements Conn.
func (c *ResilientConn) Recv(ctx context.Context) (wire.Envelope, error) {
	select {
	case env := <-c.inbox:
		return env, nil
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-c.done:
		select {
		case env := <-c.inbox:
			return env, nil
		default:
			return wire.Envelope{}, ErrClosed
		}
	}
}

// stop halts the ticker and pump without closing the inner conn (the
// network wrapper closes inner once, for all attachments).
func (c *ResilientConn) stop() {
	c.closeOnce.Do(func() { close(c.done) })
}

// Close implements Conn.
func (c *ResilientConn) Close() error {
	c.stop()
	err := c.inner.Close()
	c.wg.Wait()
	return err
}
