package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/wire"
)

// LatencyModel computes the one-way delay of a message. The defaults in
// CommunityNetModel approximate a community wireless mesh: a couple of
// milliseconds of base latency and roughly 10 MB/s of throughput.
type LatencyModel struct {
	// Base is the fixed per-message delay.
	Base time.Duration
	// PerByte is the serialisation delay per payload byte.
	PerByte time.Duration
	// Jitter is the upper bound of a uniform random extra delay.
	Jitter time.Duration
}

// CommunityNetModel returns a latency model calibrated to a community
// network link (≈2 ms base, ≈10 MB/s, 1 ms jitter). See EXPERIMENTS.md for
// the calibration rationale.
func CommunityNetModel() LatencyModel {
	return LatencyModel{Base: 2 * time.Millisecond, PerByte: 100 * time.Nanosecond, Jitter: time.Millisecond}
}

// Delay computes the delay for a message of n bytes, drawing jitter from rng.
func (m LatencyModel) Delay(n int, rng *rand.Rand) time.Duration {
	d := m.Base + time.Duration(n)*m.PerByte
	if m.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(m.Jitter)))
	}
	return d
}

// Zero reports whether the model introduces no delay at all.
func (m LatencyModel) Zero() bool {
	return m.Base == 0 && m.PerByte == 0 && m.Jitter == 0
}

// Hub is an in-process message switch connecting MemConns. The routing
// table is copy-on-write: deliver reads it with one atomic load, so
// concurrent senders never contend on a hub-wide lock (the lock only guards
// attachment, shutdown and the jitter RNG).
type Hub struct {
	model LatencyModel

	nodes  atomic.Pointer[map[wire.NodeID]*MemConn]
	closed atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand

	stats Stats

	// timers tracks in-flight delayed deliveries so Close can stop them.
	timers sync.WaitGroup
}

// NewHub creates a hub with the given latency model. The seed makes jitter
// reproducible; runs remain nondeterministic at the goroutine-scheduling
// level, which is intended (the protocol must tolerate any fair schedule).
func NewHub(model LatencyModel, seed int64) *Hub {
	h := &Hub{
		model: model,
		rng:   rand.New(rand.NewSource(seed)),
	}
	empty := make(map[wire.NodeID]*MemConn)
	h.nodes.Store(&empty)
	return h
}

// Stats returns hub-wide traffic counters.
func (h *Hub) Stats() StatsSnapshot { return h.stats.Snapshot() }

// Attach registers a node and returns its connection. Attaching an already
// attached ID is a configuration error.
func (h *Hub) Attach(id wire.NodeID) (Conn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed.Load() {
		return nil, ErrClosed
	}
	old := *h.nodes.Load()
	if _, dup := old[id]; dup {
		return nil, fmt.Errorf("transport: node %d already attached", id)
	}
	c := &MemConn{
		hub:   h,
		id:    id,
		inbox: make(chan wire.Envelope, 4096),
		done:  make(chan struct{}),
	}
	next := make(map[wire.NodeID]*MemConn, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = c
	h.nodes.Store(&next)
	return c, nil
}

// Close shuts the hub and all attached connections.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed.Swap(true) {
		h.mu.Unlock()
		return nil
	}
	nodes := *h.nodes.Load()
	conns := make([]*MemConn, 0, len(nodes))
	for _, c := range nodes {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	h.timers.Wait()
	return nil
}

// deliver routes env to its destination after the modelled delay.
func (h *Hub) deliver(env wire.Envelope) error {
	size := len(env.Payload)
	if h.closed.Load() {
		return ErrClosed
	}
	dst, ok := (*h.nodes.Load())[env.To]
	var delay time.Duration
	if ok && !h.model.Zero() {
		h.mu.Lock()
		delay = h.model.Delay(size, h.rng)
		h.mu.Unlock()
	}
	if !ok {
		// Unknown destination: the reliable-channels assumption only covers
		// configured nodes; a message to nobody is a programming error.
		return fmt.Errorf("transport: unknown destination %d", env.To)
	}

	h.stats.MsgsSent.Add(1)
	h.stats.BytesSent.Add(int64(size))

	if delay == 0 {
		dst.push(env)
		return nil
	}
	h.timers.Add(1)
	timer := time.AfterFunc(delay, func() {
		defer h.timers.Done()
		dst.push(env)
	})
	_ = timer
	return nil
}

// deliverBatch routes one superframe to its destination after ONE modelled
// delay: the latency model is charged per frame (base + jitter once,
// serialisation on the batch's total bytes), not per envelope, and the
// whole batch arrives in one push — exactly the amortisation a real link
// gets from writing one frame.
func (h *Hub) deliverBatch(envs []wire.Envelope) error {
	if h.closed.Load() {
		return ErrClosed
	}
	to := envs[0].To
	size := 0
	for i := range envs {
		size += len(envs[i].Payload)
	}
	dst, ok := (*h.nodes.Load())[to]
	if !ok {
		return fmt.Errorf("transport: unknown destination %d", to)
	}
	var delay time.Duration
	if !h.model.Zero() {
		h.mu.Lock()
		delay = h.model.Delay(size, h.rng)
		h.mu.Unlock()
	}

	h.stats.MsgsSent.Add(int64(len(envs)))
	h.stats.BytesSent.Add(int64(size))

	if delay == 0 {
		dst.pushBatch(envs)
		return nil
	}
	// Deferred delivery outlives the SendBatch call, and the contract lets
	// the caller recycle the slice the moment it returns — so the modelled
	// hop carries its own copy (the analogue of serialising onto the wire).
	queued := append([]wire.Envelope(nil), envs...)
	h.timers.Add(1)
	time.AfterFunc(delay, func() {
		defer h.timers.Done()
		dst.pushBatch(queued)
	})
	return nil
}

// MemConn is a node's attachment to a Hub.
type MemConn struct {
	hub          *Hub
	id           wire.NodeID
	inbox        chan wire.Envelope
	handler      atomic.Pointer[Handler]
	batchHandler atomic.Pointer[BatchHandler]

	closeOnce sync.Once
	done      chan struct{}

	stats Stats
}

var (
	_ Conn          = (*MemConn)(nil)
	_ PushConn      = (*MemConn)(nil)
	_ BatchConn     = (*MemConn)(nil)
	_ PushBatchConn = (*MemConn)(nil)
)

// Self returns the local node ID.
func (c *MemConn) Self() wire.NodeID { return c.id }

// Stats returns per-connection traffic counters.
func (c *MemConn) Stats() StatsSnapshot { return c.stats.Snapshot() }

// Send queues env for delivery.
func (c *MemConn) Send(env wire.Envelope) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	if env.From != c.id {
		return fmt.Errorf("transport: sending as %d from conn %d", env.From, c.id)
	}
	c.stats.MsgsSent.Add(1)
	c.stats.BytesSent.Add(int64(len(env.Payload)))
	return c.hub.deliver(env)
}

// SendBatch queues a whole superframe — envelopes for ONE destination — for
// delivery as a single frame: one latency-model event, one push.
func (c *MemConn) SendBatch(envs []wire.Envelope) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	if len(envs) == 0 {
		return nil
	}
	size := 0
	for i := range envs {
		if envs[i].From != c.id {
			return fmt.Errorf("transport: sending as %d from conn %d", envs[i].From, c.id)
		}
		if envs[i].To != envs[0].To {
			return fmt.Errorf("transport: superframe mixes destinations %d and %d", envs[0].To, envs[i].To)
		}
		size += len(envs[i].Payload)
	}
	c.stats.MsgsSent.Add(int64(len(envs)))
	c.stats.BytesSent.Add(int64(size))
	return c.hub.deliverBatch(envs)
}

// Recv blocks for the next envelope, the context, or Close.
func (c *MemConn) Recv(ctx context.Context) (wire.Envelope, error) {
	select {
	case env := <-c.inbox:
		c.stats.MsgsReceived.Add(1)
		c.stats.BytesReceived.Add(int64(len(env.Payload)))
		return env, nil
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-c.done:
		// Drain anything that raced with Close so shutdown is not flaky.
		select {
		case env := <-c.inbox:
			return env, nil
		default:
			return wire.Envelope{}, ErrClosed
		}
	}
}

// Close detaches the connection. Messages already queued are dropped.
func (c *MemConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return nil
}

// SetHandler switches the connection to push delivery: envelopes go to h in
// the producing goroutine (sender or delay timer) instead of through Recv.
// Anything already queued for Recv is drained into h first.
func (c *MemConn) SetHandler(h Handler) {
	c.handler.Store(&h)
	c.drainInto(&h)
}

// SetBatchHandler installs a handler receiving whole inbound superframes in
// one call each; without one, batches degrade to per-envelope delivery.
func (c *MemConn) SetBatchHandler(h BatchHandler) {
	c.batchHandler.Store(&h)
}

// drainInto empties whatever is queued in the inbox into the handler. Safe
// to call concurrently: each queued envelope is received (and thus
// dispatched) exactly once.
func (c *MemConn) drainInto(h *Handler) {
	for {
		select {
		case env := <-c.inbox:
			c.stats.MsgsReceived.Add(1)
			c.stats.BytesReceived.Add(int64(len(env.Payload)))
			(*h)(env)
		default:
			return
		}
	}
}

// push delivers an envelope — directly into the handler in push mode, into
// the inbox otherwise — dropping it if the node closed.
func (c *MemConn) push(env wire.Envelope) {
	if h := c.handler.Load(); h != nil {
		select {
		case <-c.done:
			return
		default:
		}
		c.stats.MsgsReceived.Add(1)
		c.stats.BytesReceived.Add(int64(len(env.Payload)))
		(*h)(env)
		return
	}
	select {
	case <-c.done:
	case c.inbox <- env:
	}
	// A handler installed between the nil check above and the enqueue would
	// never look at the inbox again (Recv is abandoned in push mode), so
	// re-check and drain: either SetHandler's own drain ran after our send
	// and took the message, or we find the handler here and drain it
	// ourselves — each queued message is channel-received exactly once.
	if h := c.handler.Load(); h != nil {
		c.drainInto(h)
	}
}

// pushBatch delivers one inbound superframe: one call into the batch
// handler when installed (the receiver fans out inside), otherwise envelope
// by envelope through the usual path.
func (c *MemConn) pushBatch(envs []wire.Envelope) {
	if bh := c.batchHandler.Load(); bh != nil {
		select {
		case <-c.done:
			return
		default:
		}
		size := 0
		for i := range envs {
			size += len(envs[i].Payload)
		}
		c.stats.MsgsReceived.Add(int64(len(envs)))
		c.stats.BytesReceived.Add(int64(size))
		(*bh)(envs)
		return
	}
	for _, env := range envs {
		c.push(env)
	}
}
