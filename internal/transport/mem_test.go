package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/wire"
)

func env(from, to wire.NodeID, payload string) wire.Envelope {
	return wire.Envelope{
		From:    from,
		To:      to,
		Tag:     wire.Tag{Round: 1, Block: wire.BlockTask, Step: 1},
		Payload: []byte(payload),
	}
}

func TestHubDeliver(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send(env(1, 2, "hi")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 1 || string(got.Payload) != "hi" {
		t.Errorf("got %+v", got)
	}
}

// TestMemPushMode switches a MemConn to push delivery: queued messages are
// drained into the handler, and later sends dispatch in the sender's
// goroutine without touching Recv.
func TestMemPushMode(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(env(1, 2, "queued")); err != nil {
		t.Fatal(err)
	}
	var got []string
	b.(*MemConn).SetHandler(func(e wire.Envelope) { got = append(got, string(e.Payload)) })
	// Zero-latency push: delivery happens inside Send, so got is visible
	// right after (same goroutine).
	if err := a.Send(env(1, 2, "direct")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "queued" || got[1] != "direct" {
		t.Fatalf("handler saw %v", got)
	}
}

func TestHubDuplicateAttach(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	if _, err := hub.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Attach(1); err == nil {
		t.Error("duplicate attach must fail")
	}
}

func TestHubUnknownDestination(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(env(1, 99, "x")); err == nil {
		t.Error("send to unknown node must fail")
	}
}

func TestSendWrongFrom(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Attach(2); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(env(2, 1, "spoof")); err == nil {
		t.Error("spoofed From must be rejected")
	}
}

func TestRecvContextCancel(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want deadline exceeded", err)
	}
}

func TestRecvAfterClose(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("got %v, want ErrClosed", err)
	}
	if err := a.Send(env(1, 1, "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: got %v, want ErrClosed", err)
	}
}

func TestLatencyModelDelays(t *testing.T) {
	hub := NewHub(LatencyModel{Base: 30 * time.Millisecond}, 42)
	defer hub.Close()
	a, _ := hub.Attach(1)
	b, _ := hub.Attach(2)

	start := time.Now()
	if err := a.Send(env(1, 2, "delayed")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~30ms", elapsed)
	}
}

func TestLatencyModelPerByte(t *testing.T) {
	m := LatencyModel{Base: time.Millisecond, PerByte: time.Microsecond}
	hub := NewHub(m, 7)
	defer hub.Close()
	d := m.Delay(1000, hub.rng)
	if d != time.Millisecond+1000*time.Microsecond {
		t.Errorf("delay = %v", d)
	}
	if !(LatencyModel{}).Zero() {
		t.Error("zero model not detected")
	}
	if CommunityNetModel().Zero() {
		t.Error("community model must not be zero")
	}
}

func TestManyToOneConcurrent(t *testing.T) {
	hub := NewHub(LatencyModel{Base: time.Millisecond, Jitter: 2 * time.Millisecond}, 3)
	defer hub.Close()
	const senders = 8
	const perSender = 50
	sink, err := hub.Attach(100)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		conn, err := hub.Attach(wire.NodeID(s + 1))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := c.Send(env(c.Self(), 100, fmt.Sprintf("m%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(conn)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < senders*perSender; i++ {
		if _, err := sink.Recv(ctx); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	snap := hub.Stats()
	if snap.MsgsSent != senders*perSender {
		t.Errorf("hub msgs = %d, want %d", snap.MsgsSent, senders*perSender)
	}
}

func TestHubCloseStopsTimers(t *testing.T) {
	hub := NewHub(LatencyModel{Base: 50 * time.Millisecond}, 1)
	a, _ := hub.Attach(1)
	if _, err := hub.Attach(2); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(env(1, 2, "inflight")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = hub.Close()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hub.Close hung waiting for timers")
	}
	if _, err := hub.Attach(3); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close: %v", err)
	}
}

func TestConnStats(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	a, _ := hub.Attach(1)
	b, _ := hub.Attach(2)
	if err := a.Send(env(1, 2, "12345")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if s := a.(*MemConn).Stats(); s.MsgsSent != 1 || s.BytesSent != 5 {
		t.Errorf("sender stats = %+v", s)
	}
	if s := b.(*MemConn).Stats(); s.MsgsReceived != 1 || s.BytesReceived != 5 {
		t.Errorf("receiver stats = %+v", s)
	}
}
