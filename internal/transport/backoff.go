package transport

import (
	"math/rand"
	"time"
)

// Backoff is a capped, jittered exponential backoff with one reusable
// timer. It replaces the fixed-interval retry loops that used to sit on
// the dial and bid paths: each failed attempt doubles the wait up to Max,
// full jitter spreads simultaneous retriers apart, and the single timer is
// stopped on Close so an abandoned loop leaks nothing.
//
// A Backoff is single-goroutine: the owning retry loop alternates
// Wait/Reset calls. The zero value is not usable; call NewBackoff.
type Backoff struct {
	min   time.Duration
	max   time.Duration
	next  time.Duration
	rng   *rand.Rand
	timer *time.Timer
}

// NewBackoff returns a backoff starting at min and doubling to at most
// max. seed fixes the jitter sequence (deterministic tests); pass a
// varying seed in production paths.
func NewBackoff(min, max time.Duration, seed int64) *Backoff {
	if min <= 0 {
		min = time.Millisecond
	}
	if max < min {
		max = min
	}
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &Backoff{min: min, max: max, next: min, rng: rand.New(rand.NewSource(seed)), timer: t}
}

// Reset rewinds the schedule to min after a success.
func (b *Backoff) Reset() { b.next = b.min }

// Wait sleeps for the current jittered interval and advances the
// schedule. It returns false immediately — without consuming an interval —
// when done is closed first, so retry loops honor shutdown. done may be
// nil (plain sleep).
func (b *Backoff) Wait(done <-chan struct{}) bool {
	d := b.next
	// Full jitter: uniform in (0, d]. Simultaneous retriers decorrelate
	// and the expected wait stays d/2, well under the cap.
	d = time.Duration(1 + b.rng.Int63n(int64(d)))
	if b.next <= b.max/2 {
		b.next *= 2
	} else {
		b.next = b.max
	}
	b.timer.Reset(d)
	select {
	case <-b.timer.C:
		return true
	case <-done:
		if !b.timer.Stop() {
			<-b.timer.C
		}
		return false
	}
}

// Stop releases the timer. The Backoff must not be used afterwards.
func (b *Backoff) Stop() {
	if !b.timer.Stop() {
		select {
		case <-b.timer.C:
		default:
		}
	}
}
