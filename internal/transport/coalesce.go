package transport

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"distauction/internal/trace"
	"distauction/internal/wire"
)

// maxCoalesce bounds the envelopes per shipped superframe. Batches normally
// stay far smaller (they only grow while senders are concurrently queued);
// the cap keeps a pathological burst's frame bounded well under
// wire.MaxSuperframeEnvs.
const maxCoalesce = 128

// maxCoalesceBytes bounds a superframe's accumulated payload bytes. Two
// individually legal jumbo envelopes must not coalesce into a frame that
// wire.MaxFrameLen would reject where the separate sends would each have
// succeeded; the cap also bounds how much memory one decoded frame can pin
// on the receive side while a buffered envelope waits for its round.
const maxCoalesceBytes = 128 << 10

// CoalesceStats counts a coalescer's outbound traffic.
type CoalesceStats struct {
	// Frames is every ship: superframes and singleton envelopes alike.
	Frames int64
	// Superframes is the ships that carried more than one envelope.
	Superframes int64
	// Envelopes is the total envelopes shipped.
	Envelopes int64
}

// Occupancy returns the average envelopes per shipped frame (0 before any
// traffic). 1.0 means coalescing never found a concurrent companion; the
// amortisation win grows with this number.
func (s CoalesceStats) Occupancy() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.Envelopes) / float64(s.Frames)
}

// Coalescer wraps a BatchConn and gathers concurrent same-destination sends
// into superframes. The flush policy is last-writer-flushes at envelope
// granularity (the envelope-level analogue of the TCP transport's byte
// coalescing): a Send appends to the destination peer's open batch, and the
// last concurrent appender detaches and ships it. An isolated send thus
// still leaves in one hop with zero added latency — there is no flush timer
// — while an m²-burst to a peer costs O(1) frames instead of O(m²).
//
// Ships happen outside the per-peer lock, so a transport that delivers
// synchronously (the zero-latency Hub) can invoke receive handlers — which
// may themselves send — without lock cycles. Batches to one peer may
// therefore ship out of order, which the asynchronous model already
// requires every receiver to tolerate.
type Coalescer struct {
	conn BatchConn

	// peers is copy-on-write (the Mux.lanes / Hub.nodes pattern): the
	// per-send lookup is one atomic load, mu only guards the rare insert of
	// a new destination.
	peers atomic.Pointer[map[wire.NodeID]*peerCoalescer]
	mu    sync.Mutex

	frames      atomic.Int64
	superframes atomic.Int64
	envelopes   atomic.Int64
}

// peerCoalescer is one destination's open batch. queued counts senders
// committed to appending (incremented before taking mu), so the appender
// that brings it back to zero knows no concurrent companion follows and
// ships the batch. free recycles retired batches — their envelope slices
// and join state — so a steady-state burst allocates nothing per frame.
type peerCoalescer struct {
	queued atomic.Int64
	mu     sync.Mutex
	open   *pendingBatch
	free   []*pendingBatch
}

// maxFreeBatches caps a destination's recycled-batch list; batches beyond
// it fall to the GC (batches only pile up when the cap detached several in
// one burst, which steady traffic never does).
const maxFreeBatches = 4

// pendingBatch accumulates envelopes until shipped; wg reaches zero once
// the ship's outcome is in err, so every appender observes the fate of the
// frame that carried its envelope. refs counts appenders still to read
// err; the last one recycles the batch into its peer's free list, which is
// also why wg is reusable — a new cycle's Add happens only after every
// Wait of the previous cycle returned.
type pendingBatch struct {
	envs  []wire.Envelope
	bytes int // accumulated payload bytes, bounded by maxCoalesceBytes
	wg    sync.WaitGroup
	err   error
	refs  atomic.Int32
}

var (
	_ Conn     = (*Coalescer)(nil)
	_ PushConn = (*Coalescer)(nil)
)

// NewCoalescer wraps conn. The coalescer owns no goroutines; Close simply
// closes conn.
func NewCoalescer(conn BatchConn) *Coalescer {
	c := &Coalescer{conn: conn}
	empty := make(map[wire.NodeID]*peerCoalescer)
	c.peers.Store(&empty)
	return c
}

// Coalesce wraps conn in a Coalescer when the transport can batch, and
// returns conn unchanged otherwise — so callers (sessions, muxes) opt in
// without caring which transport they run over.
func Coalesce(conn Conn) Conn {
	if bc, ok := conn.(BatchConn); ok {
		return NewCoalescer(bc)
	}
	return conn
}

// Stats returns the coalescer's outbound counters.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{
		Frames:      c.frames.Load(),
		Superframes: c.superframes.Load(),
		Envelopes:   c.envelopes.Load(),
	}
}

// Self returns the underlying node ID.
func (c *Coalescer) Self() wire.NodeID { return c.conn.Self() }

// Recv delegates to the underlying connection.
func (c *Coalescer) Recv(ctx context.Context) (wire.Envelope, error) { return c.conn.Recv(ctx) }

// Close closes the underlying connection. In-flight batches fail with the
// transport's close error.
func (c *Coalescer) Close() error { return c.conn.Close() }

// SetHandler delegates push delivery to the underlying connection.
func (c *Coalescer) SetHandler(h Handler) {
	if pc, ok := c.conn.(PushConn); ok {
		pc.SetHandler(h)
	}
}

// SetBatchHandler delegates batch push delivery to the underlying
// connection.
func (c *Coalescer) SetBatchHandler(h BatchHandler) {
	if pbc, ok := c.conn.(PushBatchConn); ok {
		pbc.SetBatchHandler(h)
	}
}

// peer returns the destination's coalescer, creating it on first use.
func (c *Coalescer) peer(id wire.NodeID) *peerCoalescer {
	if pc, ok := (*c.peers.Load())[id]; ok {
		return pc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.peers.Load()
	if pc, ok := old[id]; ok {
		return pc
	}
	pc := &peerCoalescer{}
	next := make(map[wire.NodeID]*peerCoalescer, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = pc
	c.peers.Store(&next)
	return pc
}

// Send appends env to the destination peer's open batch; the last
// concurrent appender ships the batch and every appender returns the
// outcome of the frame that carried its envelope.
//
// Before sealing, the would-be shipper yields the processor once. Sends of
// a peer-burst are usually *runnable* together rather than *running*
// together — one inbound frame wakes many session goroutines that each send
// within microseconds — and on a small host they run back to back, so
// without the yield each would find the batch empty of companions and ship
// alone. The yield lets every already-runnable sender append first, then
// ships one superframe for the lot. An isolated send pays one scheduler
// pass through an empty run queue — nanoseconds — and still leaves
// immediately; no flush timer exists anywhere on this path.
func (c *Coalescer) Send(env wire.Envelope) error {
	if env.To == wire.Broadcast {
		return c.conn.Send(env) // not a single destination; nothing to coalesce
	}
	pc := c.peer(env.To)
	pc.queued.Add(1)
	pc.mu.Lock()
	// A batch at either cap — envelope count or payload bytes — is detached
	// and shipped immediately; the appender that detached it starts a fresh
	// batch for its own envelope.
	var full *pendingBatch
	if pc.open != nil &&
		(len(pc.open.envs) >= maxCoalesce || pc.open.bytes+len(env.Payload) > maxCoalesceBytes) {
		full = pc.open
		pc.open = nil
	}
	pb := pc.open
	if pb == nil {
		pb = pc.getBatchLocked()
		pc.open = pb
	}
	pb.envs = append(pb.envs, env)
	pb.bytes += len(env.Payload)
	pb.refs.Add(1)
	pending := pc.queued.Add(-1) > 0
	pc.mu.Unlock()
	if full != nil {
		// The detacher's own envelope is in the fresh batch, not full: it
		// ships full for its appenders and never touches it after Done.
		c.ship(full)
	}
	if pending {
		// A committed successor (queued was > 0) will take the lock and
		// either ship pb or wait behind yet another successor; induction
		// bottoms out at a successor that finds no further company, and the
		// cap bounds how long a batch can keep growing.
		pb.wg.Wait()
		return release(pc, pb)
	}
	runtime.Gosched()
	pc.mu.Lock()
	if pc.open != pb || pc.queued.Load() > 0 {
		// Someone who appended during the yield already sealed the batch (or
		// detached it at the cap), or new senders are committed to appending
		// and the seal is theirs: either way the batch's ship covers our
		// envelope.
		pc.mu.Unlock()
		pb.wg.Wait()
		return release(pc, pb)
	}
	pc.open = nil
	pc.mu.Unlock()
	c.ship(pb)
	return release(pc, pb)
}

// getBatchLocked pops a recycled batch (or builds the peer's first few) and
// arms its join; the caller holds pc.mu.
func (pc *peerCoalescer) getBatchLocked() *pendingBatch {
	var pb *pendingBatch
	if n := len(pc.free); n > 0 {
		pb = pc.free[n-1]
		pc.free[n-1] = nil
		pc.free = pc.free[:n-1]
	} else {
		pb = &pendingBatch{}
	}
	pb.wg.Add(1)
	return pb
}

// release reports the batch's fate to one appender; the last appender to
// leave recycles the batch. The error is read before the decrement — after
// it, the batch may already be rearmed for another cycle.
func release(pc *peerCoalescer, pb *pendingBatch) error {
	err := pb.err
	if pb.refs.Add(-1) == 0 {
		clear(pb.envs) // unpin the shipped payloads
		pb.envs = pb.envs[:0]
		pb.bytes = 0
		pb.err = nil
		pc.mu.Lock()
		if len(pc.free) < maxFreeBatches {
			pc.free = append(pc.free, pb)
		}
		pc.mu.Unlock()
	}
	return err
}

// ship transmits one sealed batch and releases its joiners: a singleton as
// a plain envelope (the per-envelope MAC fallback), anything larger as one
// superframe. SendBatch must not retain the slice past return (the
// BatchConn contract), so the batch — slice included — recycles once every
// appender released it.
func (c *Coalescer) ship(pb *pendingBatch) {
	span := trace.Begin()
	envs := pb.envs
	c.frames.Add(1)
	c.envelopes.Add(int64(len(envs)))
	if len(envs) == 1 {
		pb.err = c.conn.Send(envs[0])
	} else {
		c.superframes.Add(1)
		pb.err = c.conn.SendBatch(envs)
	}
	// The span covers seal-to-transmit for the whole batch; Code carries
	// the envelope count (the coalescing win this frame realised).
	trace.Span(span, trace.PhaseCoalesceShip, envs[0].Tag.Round, 0,
		c.conn.Self(), envs[0].To, int32(len(envs)))
	pb.wg.Done()
}
