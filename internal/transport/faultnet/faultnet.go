// Package faultnet wraps a transport.Network with deterministic, seeded
// fault injection: message drop, delay and duplication, connection kills
// with a blackout window, one-way partitions, and per-peer fault
// profiles. Tests and `marketd -chaos` compose it under the resilience
// layer — Resilient(faultnet.Wrap(inner)) — to prove that the seq/resend
// protocol masks exactly the faults injected here.
//
// All injection happens on the send side of the wrapped connections, so
// one wrapper covers every link regardless of the inner transport's
// delivery machinery. Every random decision flows from Config.Seed, so a
// failing chaos run replays bit-for-bit (modulo goroutine scheduling).
package faultnet

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/transport"
	"distauction/internal/wire"
)

// Profile is one sender's fault mix. Probabilities are per message (and
// per frame for superframes: a dropped superframe loses the whole batch,
// exactly like a lost wire frame would).
type Profile struct {
	// Drop is the probability a send is silently discarded.
	Drop float64
	// Dup is the probability a send is delivered twice.
	Dup float64
	// DelayProb is the probability a send is deferred by a uniform delay
	// in [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
}

// Config configures a fault-injecting network.
type Config struct {
	// Seed fixes every random decision. Same seed, same fault schedule.
	Seed int64
	// Default is the fault profile applied to every attached node.
	Default Profile
	// Peers overrides the profile for specific senders (per-peer fault
	// schedules: a flaky bidder, a lossy provider uplink).
	Peers map[wire.NodeID]Profile
	// KillEvery, per node, kills that node's connections after every N
	// sends (0 = never). Over TCP the inner conns are really closed; over
	// the in-memory Hub the kill is modelled as a Blackout-long window in
	// which all of the node's traffic — both directions — is dropped.
	KillEvery map[wire.NodeID]int
	// Blackout is how long a killed node's traffic stays dark (default
	// 25ms).
	Blackout time.Duration
}

// Stats counts injected faults.
type Stats struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Kills      int64
}

// Network is the fault-injecting transport.Network wrapper.
type Network struct {
	inner transport.Network
	cfg   Config

	mu            sync.Mutex
	conns         map[wire.NodeID]*faultConn
	partitions    map[[2]wire.NodeID]struct{}
	blackoutUntil map[wire.NodeID]time.Time
	closed        bool

	timers sync.WaitGroup // in-flight delayed deliveries

	dropped, duplicated, delayed, kills atomic.Int64
}

var _ transport.Network = (*Network)(nil)

// Wrap layers fault injection over inner.
func Wrap(inner transport.Network, cfg Config) *Network {
	if cfg.Blackout == 0 {
		cfg.Blackout = 25 * time.Millisecond
	}
	return &Network{
		inner:         inner,
		cfg:           cfg,
		conns:         make(map[wire.NodeID]*faultConn),
		partitions:    make(map[[2]wire.NodeID]struct{}),
		blackoutUntil: make(map[wire.NodeID]time.Time),
	}
}

// Attach implements transport.Network.
func (n *Network) Attach(id wire.NodeID) (transport.Conn, error) {
	inner, err := n.inner.Attach(id)
	if err != nil {
		return nil, err
	}
	profile := n.cfg.Default
	if p, ok := n.cfg.Peers[id]; ok {
		profile = p
	}
	c := &faultConn{
		net:       n,
		inner:     inner,
		self:      id,
		profile:   profile,
		killEvery: n.cfg.KillEvery[id],
		// Distinct stream per node, still derived from the one seed.
		rng: rand.New(rand.NewSource(n.cfg.Seed ^ (int64(id)+1)*0x5851F42D4C957F2D)),
	}
	n.mu.Lock()
	n.conns[id] = c
	n.mu.Unlock()
	return c, nil
}

// Stats implements transport.Network with the inner network's counters
// (injected faults are reported separately by FaultStats).
func (n *Network) Stats() transport.StatsSnapshot { return n.inner.Stats() }

// FaultStats returns the injected-fault counters.
func (n *Network) FaultStats() Stats {
	return Stats{
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Delayed:    n.delayed.Load(),
		Kills:      n.kills.Load(),
	}
}

// SetPartition installs or heals a one-way partition: traffic from →to is
// dropped while it is up. Call twice (both directions) for a full cut.
func (n *Network) SetPartition(from, to wire.NodeID, up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if up {
		n.partitions[[2]wire.NodeID{from, to}] = struct{}{}
	} else {
		delete(n.partitions, [2]wire.NodeID{from, to})
	}
}

// Kill kills node id's connections now: over TCP the inner conns are
// closed (the resilience layer must redial and replay), and in every case
// the node goes dark — all its traffic dropped, both directions — for the
// configured Blackout.
func (n *Network) Kill(id wire.NodeID) {
	n.kills.Add(1)
	n.mu.Lock()
	n.blackoutUntil[id] = time.Now().Add(n.cfg.Blackout)
	c := n.conns[id]
	n.mu.Unlock()
	if c != nil {
		if k, ok := c.inner.(interface{ KillConns() }); ok {
			k.KillConns()
		}
	}
}

// cut reports whether a send from→to is currently severed by a partition
// or a blackout window. Broadcasts consult the sender's blackout only.
func (n *Network) cut(from, to wire.NodeID, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.partitions[[2]wire.NodeID{from, to}]; ok {
		return true
	}
	if now.Before(n.blackoutUntil[from]) {
		return true
	}
	return to != wire.Broadcast && now.Before(n.blackoutUntil[to])
}

// Close implements transport.Network.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	err := n.inner.Close()
	n.timers.Wait()
	return err
}

// faultConn is one attachment with send-side fault injection. Receive
// paths delegate straight to the inner connection.
type faultConn struct {
	net       *Network
	inner     transport.Conn
	self      wire.NodeID
	profile   Profile
	killEvery int

	mu    sync.Mutex // guards rng and sends
	rng   *rand.Rand
	sends int
}

var (
	_ transport.Conn          = (*faultConn)(nil)
	_ transport.PushConn      = (*faultConn)(nil)
	_ transport.BatchConn     = (*faultConn)(nil)
	_ transport.PushBatchConn = (*faultConn)(nil)
)

func (c *faultConn) Self() wire.NodeID { return c.self }

// Inner returns the wrapped connection (tests reach through for
// transport-specific hooks).
func (c *faultConn) Inner() transport.Conn { return c.inner }

// verdict is one send's fate, drawn under c.mu.
type verdict struct {
	kill  bool
	drop  bool
	dup   bool
	delay time.Duration
}

func (c *faultConn) judge() verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	var v verdict
	c.sends++
	if c.killEvery > 0 && c.sends%c.killEvery == 0 {
		v.kill = true
	}
	p := c.profile
	if p.Drop > 0 && c.rng.Float64() < p.Drop {
		v.drop = true
		return v
	}
	if p.Dup > 0 && c.rng.Float64() < p.Dup {
		v.dup = true
	}
	if p.DelayProb > 0 && c.rng.Float64() < p.DelayProb {
		v.delay = p.DelayMin
		if span := p.DelayMax - p.DelayMin; span > 0 {
			v.delay += time.Duration(c.rng.Int63n(int64(span)))
		}
	}
	return v
}

func (c *faultConn) Send(env wire.Envelope) error {
	if c.net.cut(c.self, env.To, time.Now()) {
		c.net.dropped.Add(1)
		return nil
	}
	v := c.judge()
	if v.kill {
		// The kill takes this send down with the conn it rode on.
		c.net.Kill(c.self)
		c.net.dropped.Add(1)
		return nil
	}
	if v.drop {
		c.net.dropped.Add(1)
		return nil
	}
	if v.delay > 0 {
		c.net.delayed.Add(1)
		dup := v.dup
		c.net.timers.Add(1)
		time.AfterFunc(v.delay, func() {
			defer c.net.timers.Done()
			_ = c.inner.Send(env)
			if dup {
				c.net.duplicated.Add(1)
				_ = c.inner.Send(env)
			}
		})
		return nil
	}
	if err := c.inner.Send(env); err != nil {
		return err
	}
	if v.dup {
		c.net.duplicated.Add(1)
		return c.inner.Send(env)
	}
	return nil
}

// SendBatch applies faults at frame granularity: the whole superframe is
// dropped, duplicated or delayed as one unit, exactly as a wire frame
// would be.
func (c *faultConn) SendBatch(envs []wire.Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	if c.net.cut(c.self, envs[0].To, time.Now()) {
		c.net.dropped.Add(int64(len(envs)))
		return nil
	}
	v := c.judge()
	if v.kill {
		c.net.Kill(c.self)
		c.net.dropped.Add(int64(len(envs)))
		return nil
	}
	if v.drop {
		c.net.dropped.Add(int64(len(envs)))
		return nil
	}
	if v.delay > 0 {
		// The caller recycles envs after return; a deferred delivery owns
		// a copy (payload bytes stay shared — immutable once sent).
		cp := append([]wire.Envelope(nil), envs...)
		c.net.delayed.Add(1)
		dup := v.dup
		c.net.timers.Add(1)
		time.AfterFunc(v.delay, func() {
			defer c.net.timers.Done()
			_ = c.sendBatchInner(cp)
			if dup {
				c.net.duplicated.Add(1)
				_ = c.sendBatchInner(cp)
			}
		})
		return nil
	}
	if err := c.sendBatchInner(envs); err != nil {
		return err
	}
	if v.dup {
		c.net.duplicated.Add(1)
		return c.sendBatchInner(envs)
	}
	return nil
}

func (c *faultConn) sendBatchInner(envs []wire.Envelope) error {
	if bc, ok := c.inner.(transport.BatchConn); ok {
		return bc.SendBatch(envs)
	}
	for i := range envs {
		if err := c.inner.Send(envs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *faultConn) Recv(ctx context.Context) (wire.Envelope, error) { return c.inner.Recv(ctx) }

func (c *faultConn) SetHandler(h transport.Handler) {
	if pc, ok := c.inner.(transport.PushConn); ok {
		pc.SetHandler(h)
	}
}

func (c *faultConn) SetBatchHandler(h transport.BatchHandler) {
	if pbc, ok := c.inner.(transport.PushBatchConn); ok {
		pbc.SetBatchHandler(h)
	}
}

func (c *faultConn) Close() error { return c.inner.Close() }
