package faultnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/transport"
	"distauction/internal/wire"
)

func fastLink() transport.ResilientConfig {
	return transport.ResilientConfig{
		HeartbeatEvery: 10 * time.Millisecond,
		ResendAfter:    20 * time.Millisecond,
		SuspectAfter:   4,
		DeadAfter:      12,
	}
}

func dataEnv(from, to wire.NodeID, i int) wire.Envelope {
	return wire.Envelope{
		From:    from,
		To:      to,
		Tag:     wire.Tag{Round: uint64(i), Block: wire.BlockTask, Step: 1},
		Payload: []byte(fmt.Sprintf("%d", i)),
	}
}

// TestFaultnetResilientComposition is the canonical chaos stack — session
// traffic over Resilient(faultnet.Wrap(Hub)) — with drop, dup and delay all
// enabled. The ARQ layer must hide every injected fault: exactly-once
// delivery (order is the protocol layer's problem, not the link's).
func TestFaultnetResilientComposition(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 7)
	defer hub.Close()
	net := Wrap(hub, Config{
		Seed: 7,
		Default: Profile{
			Drop:      0.05,
			Dup:       0.05,
			DelayProb: 0.10,
			DelayMin:  time.Millisecond,
			DelayMax:  3 * time.Millisecond,
		},
	})
	rnet := transport.Resilient(net, fastLink())
	defer rnet.Close()

	c1, err := rnet.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := rnet.Attach(2)
	if err != nil {
		t.Fatal(err)
	}

	const count = 500
	var mu sync.Mutex
	got := make([]int, 0, count)
	done := make(chan struct{})
	var once sync.Once
	c2.(transport.PushConn).SetHandler(func(env wire.Envelope) {
		var v int
		fmt.Sscanf(string(env.Payload), "%d", &v)
		mu.Lock()
		got = append(got, v)
		n := len(got)
		mu.Unlock()
		if n == count {
			once.Do(func() { close(done) })
		}
	})

	for i := 0; i < count; i++ {
		if err := c1.Send(dataEnv(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("timed out: got %d/%d envelopes through the chaos stack", n, count)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := make([]int, count)
	for _, v := range got {
		if v < 0 || v >= count {
			t.Fatalf("got envelope %d, outside [0,%d)", v, count)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("envelope %d delivered %d times (fault leaked through ARQ)", v, n)
		}
	}
	st := net.FaultStats()
	if st.Dropped == 0 && st.Duplicated == 0 && st.Delayed == 0 {
		t.Error("fault injector injected nothing — test proved nothing")
	}
	t.Logf("faults injected: %+v; link stats: %+v", st, c1.(transport.HealthReporter).LinkStats())
}

// TestFaultnetPartition: a one-way partition silences the link in that
// direction until lifted; ARQ replays the backlog once it heals.
func TestFaultnetPartition(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 3)
	defer hub.Close()
	net := Wrap(hub, Config{Seed: 3})
	rnet := transport.Resilient(net, fastLink())
	defer rnet.Close()

	c1, _ := rnet.Attach(1)
	c2, _ := rnet.Attach(2)

	var mu sync.Mutex
	var got []int
	c2.(transport.PushConn).SetHandler(func(env wire.Envelope) {
		var v int
		fmt.Sscanf(string(env.Payload), "%d", &v)
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})

	net.SetPartition(1, 2, true)
	for i := 0; i < 10; i++ {
		if err := c1.Send(dataEnv(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("partition leaked %d envelopes", n)
	}

	net.SetPartition(1, 2, false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n = len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after heal: got %d/10 envelopes", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("post-heal position %d: got %d", i, v)
		}
	}
}

// TestFaultnetKillBlackout: Kill on a hub-backed conn opens a blackout
// window (both directions dark), then traffic resumes and ARQ recovers
// the gap.
func TestFaultnetKillBlackout(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 5)
	defer hub.Close()
	net := Wrap(hub, Config{Seed: 5, Blackout: 40 * time.Millisecond})
	rnet := transport.Resilient(net, fastLink())
	defer rnet.Close()

	c1, _ := rnet.Attach(1)
	c2, _ := rnet.Attach(2)

	const count = 50
	var mu sync.Mutex
	got := make(map[int]int)
	done := make(chan struct{})
	var once sync.Once
	c2.(transport.PushConn).SetHandler(func(env wire.Envelope) {
		var v int
		fmt.Sscanf(string(env.Payload), "%d", &v)
		mu.Lock()
		got[v]++
		n := len(got)
		mu.Unlock()
		if n == count {
			once.Do(func() { close(done) })
		}
	})

	for i := 0; i < count; i++ {
		if i == count/2 {
			net.Kill(2)
		}
		if err := c1.Send(dataEnv(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("timed out: %d/%d distinct envelopes after kill", n, count)
	}
	mu.Lock()
	defer mu.Unlock()
	for v, c := range got {
		if c != 1 {
			t.Fatalf("envelope %d delivered %d times", v, c)
		}
	}
	if net.FaultStats().Kills == 0 {
		t.Error("kill not counted")
	}
}
