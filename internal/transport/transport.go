// Package transport moves protocol envelopes between nodes.
//
// Two implementations are provided:
//
//   - Hub/MemConn: an in-process network with a configurable latency model
//     (base + per-byte + jitter). This is the reproduction substitute for the
//     paper's Guifi.net testbed: protocol running time is compute plus
//     rounds×latency plus bytes/bandwidth, and the model exercises exactly
//     those terms. Delivery order between different senders is not
//     guaranteed, which matches the asynchronous model of §3.3.
//
//   - TCPNode: a real TCP transport (length-prefixed frames, HMAC
//     authenticated) for deployments and loopback/LAN experiments.
//
// Both satisfy Conn. Messages are never lost (reliable channels assumption);
// they may be arbitrarily delayed and reordered.
package transport

import (
	"context"
	"errors"
	"sync/atomic"

	"distauction/internal/wire"
)

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: closed")

// Conn is one node's attachment to the network.
type Conn interface {
	// Self returns the local node ID.
	Self() wire.NodeID
	// Send transmits env to env.To. It returns once the message is durably
	// queued; delivery is asynchronous.
	Send(env wire.Envelope) error
	// Recv blocks for the next inbound envelope.
	Recv(ctx context.Context) (wire.Envelope, error)
	// Close releases the connection; pending Recv calls return ErrClosed.
	Close() error
}

// Handler consumes one inbound envelope. Handlers must be safe for
// concurrent calls: push-mode transports invoke them from whatever goroutine
// produced the message (a sender, a delay timer, a per-connection read
// loop), which is exactly what lets receivers on different rounds proceed in
// parallel instead of funnelling through one Recv loop.
type Handler func(env wire.Envelope)

// PushConn is implemented by transports that can deliver inbound envelopes
// by direct dispatch. After SetHandler, envelopes go to the handler and Recv
// must no longer be used; envelopes already queued for Recv before the
// switch are drained into the handler by SetHandler itself.
type PushConn interface {
	Conn
	SetHandler(h Handler)
}

// BatchConn is implemented by transports that can ship a batch of envelopes
// to ONE destination peer as a single superframe: one wire frame, one MAC,
// one latency-model event. Every envelope must carry the same To (and the
// local From); batching is transport-level only — each envelope inside the
// superframe is byte-for-byte what it would be alone. SendBatch may read
// the slice during the call but must not retain it after return (a
// latency-modelling transport copies before deferring delivery) — the
// caller recycles the slice across batches. Payload bytes are not copied
// and must stay immutable once sent. Use a Coalescer to gather concurrent
// sends into batches; SendBatch itself ships immediately.
type BatchConn interface {
	Conn
	SendBatch(envs []wire.Envelope) error
}

// BatchHandler consumes one inbound superframe's envelopes in a single
// call — one dispatch hop per batch, with any fan-out done inside by the
// receiver. Like Handler it runs on the producing goroutine and must be
// safe for concurrent calls. The handler may mutate the slice during the
// call but must not retain it past return (on a zero-latency transport it
// is the sender's recycled batch); payload bytes stay valid and may be
// retained as views.
type BatchHandler func(envs []wire.Envelope)

// PushBatchConn is implemented by push transports that can deliver a whole
// inbound superframe in one dispatch. After SetBatchHandler, superframes go
// to the batch handler; envelopes outside any superframe still go to the
// regular Handler (or Recv). A receiver that installs a batch handler
// should install a regular handler too.
type PushBatchConn interface {
	PushConn
	SetBatchHandler(h BatchHandler)
}

// Stats counts traffic through a connection or hub.
type Stats struct {
	MsgsSent      atomic.Int64
	BytesSent     atomic.Int64
	MsgsReceived  atomic.Int64
	BytesReceived atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		MsgsSent:      s.MsgsSent.Load(),
		BytesSent:     s.BytesSent.Load(),
		MsgsReceived:  s.MsgsReceived.Load(),
		BytesReceived: s.BytesReceived.Load(),
	}
}

// StatsSnapshot is an immutable view of Stats.
type StatsSnapshot struct {
	MsgsSent      int64
	BytesSent     int64
	MsgsReceived  int64
	BytesReceived int64
}

// Add returns the component-wise sum of two snapshots.
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		MsgsSent:      a.MsgsSent + b.MsgsSent,
		BytesSent:     a.BytesSent + b.BytesSent,
		MsgsReceived:  a.MsgsReceived + b.MsgsReceived,
		BytesReceived: a.BytesReceived + b.BytesReceived,
	}
}
