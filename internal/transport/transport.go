// Package transport moves protocol envelopes between nodes.
//
// Two implementations are provided:
//
//   - Hub/MemConn: an in-process network with a configurable latency model
//     (base + per-byte + jitter). This is the reproduction substitute for the
//     paper's Guifi.net testbed: protocol running time is compute plus
//     rounds×latency plus bytes/bandwidth, and the model exercises exactly
//     those terms. Delivery order between different senders is not
//     guaranteed, which matches the asynchronous model of §3.3.
//
//   - TCPNode: a real TCP transport (length-prefixed frames, HMAC
//     authenticated) for deployments and loopback/LAN experiments.
//
// Both satisfy Conn. Messages are never lost (reliable channels assumption);
// they may be arbitrarily delayed and reordered.
package transport

import (
	"context"
	"errors"
	"sync/atomic"

	"distauction/internal/wire"
)

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: closed")

// Conn is one node's attachment to the network.
type Conn interface {
	// Self returns the local node ID.
	Self() wire.NodeID
	// Send transmits env to env.To. It returns once the message is durably
	// queued; delivery is asynchronous.
	Send(env wire.Envelope) error
	// Recv blocks for the next inbound envelope.
	Recv(ctx context.Context) (wire.Envelope, error)
	// Close releases the connection; pending Recv calls return ErrClosed.
	Close() error
}

// Stats counts traffic through a connection or hub.
type Stats struct {
	MsgsSent      atomic.Int64
	BytesSent     atomic.Int64
	MsgsReceived  atomic.Int64
	BytesReceived atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		MsgsSent:      s.MsgsSent.Load(),
		BytesSent:     s.BytesSent.Load(),
		MsgsReceived:  s.MsgsReceived.Load(),
		BytesReceived: s.BytesReceived.Load(),
	}
}

// StatsSnapshot is an immutable view of Stats.
type StatsSnapshot struct {
	MsgsSent      int64
	BytesSent     int64
	MsgsReceived  int64
	BytesReceived int64
}

// Add returns the component-wise sum of two snapshots.
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		MsgsSent:      a.MsgsSent + b.MsgsSent,
		BytesSent:     a.BytesSent + b.BytesSent,
		MsgsReceived:  a.MsgsReceived + b.MsgsReceived,
		BytesReceived: a.BytesReceived + b.BytesReceived,
	}
}
