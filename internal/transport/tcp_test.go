package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/auth"
	"distauction/internal/wire"
)

// startTCPPair launches two authenticated TCP nodes wired to each other.
func startTCPPair(t *testing.T) (*TCPNode, *TCPNode) {
	t.Helper()
	master := []byte("tcp-test-master")
	ids := []wire.NodeID{1, 2}
	n1, err := ListenTCP(TCPConfig{
		Self:       1,
		ListenAddr: "127.0.0.1:0",
		Peers:      map[wire.NodeID]string{},
		Registry:   auth.NewRegistryFromMaster(master, 1, ids),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n1.Close() })
	n2, err := ListenTCP(TCPConfig{
		Self:       2,
		ListenAddr: "127.0.0.1:0",
		Peers:      map[wire.NodeID]string{1: n1.Addr()},
		Registry:   auth.NewRegistryFromMaster(master, 2, ids),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n2.Close() })
	n1.SetPeer(2, n2.Addr())
	return n1, n2
}

func TestTCPSendRecv(t *testing.T) {
	n1, n2 := startTCPPair(t)
	if err := n1.Send(env(1, 2, "over tcp")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := n2.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 1 || string(got.Payload) != "over tcp" {
		t.Errorf("got %+v", got)
	}
	// And the reverse direction (separate connection).
	if err := n2.Send(env(2, 1, "reply")); err != nil {
		t.Fatal(err)
	}
	got, err = n1.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 2 || string(got.Payload) != "reply" {
		t.Errorf("got %+v", got)
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	n1, n2 := startTCPPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		e := env(1, 2, "x")
		e.Tag.Instance = uint32(i)
		if err := n1.Send(e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < count; i++ {
		got, err := n2.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		// TCP per-pair ordering is preserved by the single connection.
		if got.Tag.Instance != uint32(i) {
			t.Fatalf("out of order: got %d at position %d", got.Tag.Instance, i)
		}
	}
}

// TestTCPConcurrentBurstDelivered hammers one connection from many
// goroutines: the flush-on-idle coalescing must not lose or corrupt frames
// (the last writer of every burst flushes for all of them).
func TestTCPConcurrentBurstDelivered(t *testing.T) {
	n1, n2 := startTCPPair(t)
	const senders, perSender = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				e := env(1, 2, "burst")
				e.Tag.Instance = uint32(s*perSender + i)
				if err := n1.Send(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	seen := make(map[uint32]bool, senders*perSender)
	for i := 0; i < senders*perSender; i++ {
		got, err := n2.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(got.Payload) != "burst" || seen[got.Tag.Instance] {
			t.Fatalf("bad or duplicate frame: %+v", got)
		}
		seen[got.Tag.Instance] = true
	}
}

// TestTCPPushMode switches a node to push delivery: messages must reach the
// handler (including any queued before the switch) and Recv is bypassed.
func TestTCPPushMode(t *testing.T) {
	n1, n2 := startTCPPair(t)
	if err := n1.Send(env(1, 2, "early")); err != nil {
		t.Fatal(err)
	}
	// Let the early message reach n2's inbox before the switch.
	deadline := time.Now().Add(5 * time.Second)
	for len(n2.inbox) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := make(chan wire.Envelope, 16)
	n2.SetHandler(func(e wire.Envelope) { got <- e })
	if err := n1.Send(env(1, 2, "pushed")); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"early": true, "pushed": true}
	for len(want) > 0 {
		select {
		case e := <-got:
			if !want[string(e.Payload)] {
				t.Fatalf("unexpected envelope %q", e.Payload)
			}
			delete(want, string(e.Payload))
		case <-time.After(5 * time.Second):
			t.Fatalf("missing envelopes: %v", want)
		}
	}
}

func TestTCPRejectsForgedMAC(t *testing.T) {
	// n3 shares no keys with n2: its messages must be dropped.
	n1, n2 := startTCPPair(t)
	_ = n1
	evil, err := ListenTCP(TCPConfig{
		Self:       1, // claims to be node 1
		ListenAddr: "127.0.0.1:0",
		Peers:      map[wire.NodeID]string{2: n2.Addr()},
		Registry:   auth.NewRegistryFromMaster([]byte("wrong-master"), 1, []wire.NodeID{1, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	if err := evil.Send(env(1, 2, "forged")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := n2.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("forged message was delivered: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n2.Dropped.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n2.Dropped.Load() == 0 {
		t.Error("forged message not counted as dropped")
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	n1, _ := startTCPPair(t)
	if err := n1.Send(env(1, 42, "nowhere")); err == nil {
		t.Error("send to unknown peer must fail")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	n1, _ := startTCPPair(t)
	done := make(chan error, 1)
	go func() {
		_, err := n1.Recv(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("recv after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := n1.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	n1, n2 := startTCPPair(t)
	if err := n1.Send(env(1, 2, "first")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := n2.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	addr := n2.Addr()
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart node 2 on the same address.
	master := []byte("tcp-test-master")
	n2b, err := ListenTCP(TCPConfig{
		Self:       2,
		ListenAddr: addr,
		Peers:      map[wire.NodeID]string{1: n1.Addr()},
		Registry:   auth.NewRegistryFromMaster(master, 2, []wire.NodeID{1, 2}),
	})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer n2b.Close()
	// A write to the dead connection can succeed locally (kernel-buffered)
	// before TCP notices the peer is gone, so that message may be lost;
	// the *next* write hits the error path and triggers the redial. Keep
	// sending until one arrives.
	got := make(chan struct{})
	go func() {
		if _, err := n2b.Recv(ctx); err == nil {
			close(got)
		}
	}()
	deadline := time.Now().Add(4 * time.Second)
	for {
		if err := n1.Send(env(1, 2, "second")); err != nil {
			t.Logf("send after restart (retrying): %v", err)
		}
		select {
		case <-got:
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("message never delivered after peer restart")
		}
	}
}

func TestTCPUnauthenticatedMode(t *testing.T) {
	n1, err := ListenTCP(TCPConfig{Self: 1, ListenAddr: "127.0.0.1:0", Peers: map[wire.NodeID]string{}})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(TCPConfig{Self: 2, ListenAddr: "127.0.0.1:0", Peers: map[wire.NodeID]string{1: n1.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.SetPeer(2, n2.Addr())
	if err := n1.Send(env(1, 2, "plain")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := n2.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "plain" {
		t.Errorf("got %q", got.Payload)
	}
}

// TestTCPNetworkConcurrentZeroConfigAttach attaches two zero-config nodes
// concurrently: each one's initial peer snapshot predates the other's bound
// address, so Attach must replay the shared address book into the newcomer
// in both directions or one side can never dial the other.
func TestTCPNetworkConcurrentZeroConfigAttach(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		net := NewTCPNetwork(TCPNetworkConfig{})
		conns := make([]Conn, 2)
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for i, id := range []wire.NodeID{1, 2} {
			wg.Add(1)
			go func(i int, id wire.NodeID) {
				defer wg.Done()
				conns[i], errs[i] = net.Attach(id)
			}(i, id)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("attach %d: %v", i, err)
			}
		}
		for i, from := range conns {
			to := conns[1-i]
			env := wire.Envelope{From: from.Self(), To: to.Self(),
				Tag: wire.Tag{Round: 1, Block: 1, Step: uint8(i + 1)}, Payload: []byte("ping")}
			if err := from.Send(env); err != nil {
				t.Fatalf("iter %d: send %d->%d: %v", iter, from.Self(), to.Self(), err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			got, err := to.Recv(ctx)
			cancel()
			if err != nil {
				t.Fatalf("iter %d: recv at %d: %v", iter, to.Self(), err)
			}
			if got.From != from.Self() || string(got.Payload) != "ping" {
				t.Fatalf("iter %d: got %+v", iter, got)
			}
		}
		net.Close()
	}
}
