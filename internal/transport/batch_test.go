package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/auth"
	"distauction/internal/wire"
)

func batchEnv(from, to wire.NodeID, round uint64, payload string) wire.Envelope {
	return wire.Envelope{
		From:    from,
		To:      to,
		Tag:     wire.Tag{Round: round, Block: wire.BlockTask, Step: 1},
		Payload: []byte(payload),
	}
}

// TestHubSendBatchDeliversWholeFrame sends a superframe over the hub and
// asserts the receiver's batch handler gets it in ONE call.
func TestHubSendBatchDeliversWholeFrame(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	c1, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var calls [][]wire.Envelope
	c2.(PushBatchConn).SetBatchHandler(func(envs []wire.Envelope) {
		mu.Lock()
		calls = append(calls, envs)
		mu.Unlock()
	})
	batch := []wire.Envelope{
		batchEnv(1, 2, 1, "a"),
		batchEnv(1, 2, 2, "b"),
		batchEnv(1, 2, 3, "c"),
	}
	if err := c1.(BatchConn).SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || len(calls[0]) != 3 {
		t.Fatalf("want one 3-envelope dispatch, got %d calls", len(calls))
	}
	for i, env := range calls[0] {
		if env.Tag != batch[i].Tag || string(env.Payload) != string(batch[i].Payload) {
			t.Fatalf("envelope %d corrupted: %+v", i, env)
		}
	}
}

// TestHubSendBatchValidates rejects forged senders and mixed destinations.
func TestHubSendBatchValidates(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	c1, _ := hub.Attach(1)
	if _, err := hub.Attach(2); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Attach(3); err != nil {
		t.Fatal(err)
	}
	bc := c1.(BatchConn)
	if err := bc.SendBatch([]wire.Envelope{batchEnv(9, 2, 1, "x")}); err == nil {
		t.Fatal("forged From accepted")
	}
	if err := bc.SendBatch([]wire.Envelope{batchEnv(1, 2, 1, "x"), batchEnv(1, 3, 1, "y")}); err == nil {
		t.Fatal("mixed destinations accepted")
	}
}

// TestHubChargesLatencyPerFrame is the latency-amortisation claim: a
// k-envelope superframe pays base latency ONCE, while k singles pay it k
// times. With base = 20ms and no jitter, a 16-envelope batch must arrive in
// far less time than 16 sequential bases while a per-envelope pump of the
// same traffic pays at least one base per message ordering-independently —
// here we simply assert the batch is delivered within ~2 bases and that all
// envelopes arrive together.
func TestHubChargesLatencyPerFrame(t *testing.T) {
	const base = 20 * time.Millisecond
	hub := NewHub(LatencyModel{Base: base}, 1)
	defer hub.Close()
	c1, _ := hub.Attach(1)
	c2, _ := hub.Attach(2)
	arrivals := make(chan time.Time, 64)
	c2.(PushBatchConn).SetBatchHandler(func(envs []wire.Envelope) {
		now := time.Now()
		for range envs {
			arrivals <- now
		}
	})
	c2.(PushConn).SetHandler(func(env wire.Envelope) { arrivals <- time.Now() })

	const k = 16
	batch := make([]wire.Envelope, k)
	for i := range batch {
		batch[i] = batchEnv(1, 2, uint64(i+1), "p")
	}
	start := time.Now()
	if err := c1.(BatchConn).SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	var last time.Time
	for i := 0; i < k; i++ {
		select {
		case ts := <-arrivals:
			last = ts
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d envelopes arrived", i, k)
		}
	}
	if elapsed := last.Sub(start); elapsed > 8*base {
		// 16 sequential bases would be 16x; generous slack for loaded CI.
		t.Fatalf("batch took %v; a per-frame charge should be ~%v", elapsed, base)
	}
}

// TestCoalescerBatchesConcurrentSends drives many concurrent sends to one
// peer through a Coalescer and asserts (a) every envelope arrives exactly
// once and (b) fewer frames than envelopes were shipped (occupancy > 1).
func TestCoalescerBatchesConcurrentSends(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	c1, _ := hub.Attach(1)
	c2, _ := hub.Attach(2)
	var mu sync.Mutex
	got := map[string]int{}
	count := func(env wire.Envelope) {
		mu.Lock()
		got[string(env.Payload)]++
		mu.Unlock()
	}
	c2.(PushBatchConn).SetBatchHandler(func(envs []wire.Envelope) {
		for _, env := range envs {
			count(env)
		}
	})
	c2.(PushConn).SetHandler(count)

	co := NewCoalescer(c1.(BatchConn))
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				env := batchEnv(1, 2, uint64(i+1), fmt.Sprintf("g%d-%d", g, i))
				if err := co.Send(env); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("received %d distinct payloads, want %d", len(got), n)
	}
	for p, c := range got {
		if c != 1 {
			t.Fatalf("payload %q delivered %d times", p, c)
		}
	}
	st := co.Stats()
	if st.Envelopes != n {
		t.Fatalf("stats count %d envelopes, want %d", st.Envelopes, n)
	}
	if st.Frames >= st.Envelopes {
		t.Fatalf("no coalescing: %d frames for %d envelopes", st.Frames, st.Envelopes)
	}
	t.Logf("occupancy: %.2f envelopes/frame (%d superframes)", st.Occupancy(), st.Superframes)
}

// TestCoalescerSingletonLeavesImmediately: an isolated send must ship as a
// plain envelope (no superframe) with no added latency mechanism.
func TestCoalescerSingletonLeavesImmediately(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	c1, _ := hub.Attach(1)
	c2, _ := hub.Attach(2)
	co := NewCoalescer(c1.(BatchConn))
	if err := co.Send(batchEnv(1, 2, 1, "solo")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	env, err := c2.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "solo" {
		t.Fatalf("got %+v", env)
	}
	st := co.Stats()
	if st.Frames != 1 || st.Superframes != 0 || st.Envelopes != 1 {
		t.Fatalf("singleton stats: %+v", st)
	}
}

// TestCoalescerPropagatesSendErrors: once the underlying conn closes, every
// Send — shipper or waiter — must observe an error.
func TestCoalescerPropagatesSendErrors(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	c1, _ := hub.Attach(1)
	if _, err := hub.Attach(2); err != nil {
		t.Fatal(err)
	}
	co := NewCoalescer(c1.(BatchConn))
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := co.Send(batchEnv(1, 2, 1, "x")); err == nil {
		t.Fatal("send on closed coalescer succeeded")
	}
}

// TestTCPSuperframeRoundTrip runs an authenticated superframe over real TCP:
// one frame, one batch MAC, delivered to the receiver's batch handler.
func TestTCPSuperframeRoundTrip(t *testing.T) {
	master := []byte("batch-secret")
	ids := []wire.NodeID{1, 2}
	mk := func(self wire.NodeID) *TCPNode {
		n, err := ListenTCP(TCPConfig{
			Self:       self,
			ListenAddr: "127.0.0.1:0",
			Peers:      map[wire.NodeID]string{},
			Registry:   auth.NewRegistryFromMaster(master, self, ids),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	n1, n2 := mk(1), mk(2)
	n1.SetPeer(2, n2.Addr())

	batches := make(chan []wire.Envelope, 1)
	n2.SetBatchHandler(func(envs []wire.Envelope) {
		cp := make([]wire.Envelope, len(envs))
		copy(cp, envs)
		batches <- cp
	})

	want := []wire.Envelope{
		batchEnv(1, 2, 1, "alpha"),
		batchEnv(1, 2, 2, "beta"),
		batchEnv(1, 2, 3, "gamma"),
	}
	if err := n1.SendBatch(append([]wire.Envelope(nil), want...)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-batches:
		if len(got) != len(want) {
			t.Fatalf("got %d envelopes, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Tag != want[i].Tag || string(got[i].Payload) != string(want[i].Payload) {
				t.Fatalf("envelope %d: got %+v", i, got[i])
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("superframe never arrived")
	}
	if d := n2.Dropped.Load(); d != 0 {
		t.Fatalf("receiver dropped %d frames", d)
	}
}

// TestTCPSuperframeBadMACDropped corrupts a superframe in flight (wrong
// key) and asserts the receiver drops the whole frame.
func TestTCPSuperframeBadMACDropped(t *testing.T) {
	ids := []wire.NodeID{1, 2}
	sender, err := ListenTCP(TCPConfig{
		Self:       1,
		ListenAddr: "127.0.0.1:0",
		Peers:      map[wire.NodeID]string{},
		Registry:   auth.NewRegistryFromMaster([]byte("wrong-secret"), 1, ids),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	recv, err := ListenTCP(TCPConfig{
		Self:       2,
		ListenAddr: "127.0.0.1:0",
		Peers:      map[wire.NodeID]string{},
		Registry:   auth.NewRegistryFromMaster([]byte("right-secret"), 2, ids),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sender.SetPeer(2, recv.Addr())
	if err := sender.SendBatch([]wire.Envelope{
		batchEnv(1, 2, 1, "evil"),
		batchEnv(1, 2, 2, "twin"),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for recv.Dropped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bad superframe never counted as dropped")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if env, err := recv.Recv(ctx); err == nil {
		t.Fatalf("forged envelope delivered: %+v", env)
	}
}
