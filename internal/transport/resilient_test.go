package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/wire"
)

// fastLink is a link-layer config tight enough for test-speed failure
// detection: dead after ~120ms of silence, resends after 20ms.
func fastLink() ResilientConfig {
	return ResilientConfig{
		HeartbeatEvery: 10 * time.Millisecond,
		ResendAfter:    20 * time.Millisecond,
		SuspectAfter:   4,
		DeadAfter:      12,
	}
}

// flakyConn wraps a Conn and drops or mutes sends on command. It is the
// minimal in-package fault injector (the full one lives in faultnet,
// which cannot be imported here without a cycle).
type flakyConn struct {
	Conn
	mu      sync.Mutex
	n       int
	dropMod int  // drop every dropMod-th send (0 = none)
	mute    bool // drop everything while set
}

func (c *flakyConn) allow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mute {
		return false
	}
	c.n++
	return c.dropMod == 0 || c.n%c.dropMod != 0
}

func (c *flakyConn) setMute(m bool) {
	c.mu.Lock()
	c.mute = m
	c.mu.Unlock()
}

func (c *flakyConn) Send(env wire.Envelope) error {
	if !c.allow() {
		return nil
	}
	return c.Conn.Send(env)
}

func (c *flakyConn) SendBatch(envs []wire.Envelope) error {
	if !c.allow() {
		return nil
	}
	if bc, ok := c.Conn.(BatchConn); ok {
		return bc.SendBatch(envs)
	}
	for i := range envs {
		if err := c.Conn.Send(envs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *flakyConn) SetHandler(h Handler) {
	if pc, ok := c.Conn.(PushConn); ok {
		pc.SetHandler(h)
	}
}

func (c *flakyConn) SetBatchHandler(h BatchHandler) {
	if pbc, ok := c.Conn.(PushBatchConn); ok {
		pbc.SetBatchHandler(h)
	}
}

// collect installs a handler that records the integer payloads of
// inbound envelopes and closes done when want have arrived.
func collect(t *testing.T, conn PushConn, want int) (got *[]int, done chan struct{}) {
	t.Helper()
	var mu sync.Mutex
	seq := make([]int, 0, want)
	got = &seq
	done = make(chan struct{})
	var once sync.Once
	conn.SetHandler(func(env wire.Envelope) {
		var v int
		fmt.Sscanf(string(env.Payload), "%d", &v)
		mu.Lock()
		seq = append(seq, v)
		n := len(seq)
		mu.Unlock()
		if n == want {
			once.Do(func() { close(done) })
		}
	})
	return got, done
}

func dataEnv(from, to wire.NodeID, i int) wire.Envelope {
	return wire.Envelope{
		From:    from,
		To:      to,
		Tag:     wire.Tag{Round: uint64(i), Block: wire.BlockTask, Step: 1},
		Payload: []byte(fmt.Sprintf("%d", i)),
	}
}

// TestResilientLossyLinkExactlyOnce: a link dropping every 7th frame
// must still deliver every envelope exactly once — the seq/resend
// protocol masks the loss. Order is NOT asserted: the link layer
// deliberately releases frames on arrival (the protocol above absorbs
// reordering) and only guarantees no loss and no duplication.
func TestResilientLossyLinkExactlyOnce(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	raw1, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyConn{Conn: raw1, dropMod: 7}
	c1 := WrapResilient(flaky, fastLink())
	defer c1.Close()
	c2 := WrapResilient(raw2, fastLink())
	defer c2.Close()

	const count = 400
	got, done := collect(t, c2, count)
	for i := 0; i < count; i++ {
		if i%3 == 0 {
			// Exercise the batch path too.
			batch := []wire.Envelope{dataEnv(1, 2, i)}
			if err := c1.SendBatch(batch); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := c1.Send(dataEnv(1, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out: got %d/%d envelopes", len(*got), count)
	}
	assertExactlyOnce(t, *got, count)
	if ls := c1.LinkStats(); ls.Resends == 0 {
		t.Error("expected resends on a lossy link, counted none")
	}
}

// TestResilientHealthStateMachine: a peer gone silent is declared suspect
// then dead; when it comes back it is alive again and the recovery counts
// as a reconnect.
func TestResilientHealthStateMachine(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	raw1, _ := hub.Attach(1)
	raw2, _ := hub.Attach(2)
	c1 := WrapResilient(raw1, fastLink())
	defer c1.Close()
	flaky := &flakyConn{Conn: raw2}
	c2 := WrapResilient(flaky, fastLink())
	defer c2.Close()

	_, done := collect(t, c2, 1)
	if err := c1.Send(dataEnv(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	<-done
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return !c1.PeerDead(2) && len(c1.PeerHealth()) > 0 }, "initial liveness")

	flaky.setMute(true) // node 2 goes dark: no heartbeats, no acks
	waitFor(func() bool { return c1.PeerDead(2) }, "dead verdict")
	for _, ph := range c1.PeerHealth() {
		if ph.Peer == 2 && ph.State != HealthDead {
			t.Fatalf("peer 2 state = %v, want dead", ph.State)
		}
	}

	flaky.setMute(false) // back from the dead
	waitFor(func() bool { return !c1.PeerDead(2) }, "recovery")
	if ls := c1.LinkStats(); ls.Reconnects == 0 {
		t.Error("recovery did not count as a reconnect")
	}
}

// TestResilientTCPKillMidSuperframe is the reconnect-with-resume test at
// the wire level: a stream of superframes over real TCP, connections
// killed repeatedly mid-stream, and every envelope must still arrive
// exactly once, deduplicated by seq — with the ledger-relevant property
// that the surviving set of envelopes equals the fault-free one.
func TestResilientTCPKillMidSuperframe(t *testing.T) {
	n1, n2 := startTCPPair(t)
	cfg := fastLink()
	c1 := WrapResilient(n1, cfg)
	defer c1.Close()
	c2 := WrapResilient(n2, cfg)
	defer c2.Close()

	const (
		count     = 600
		batchSize = 8
		killEvery = 150 // envelopes between kills: several kills mid-run
	)
	got, done := collect(t, c2, count)
	sent := 0
	batch := make([]wire.Envelope, 0, batchSize)
	for sent < count {
		batch = batch[:0]
		for len(batch) < batchSize && sent < count {
			batch = append(batch, dataEnv(1, 2, sent))
			sent++
		}
		if err := c1.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
		if sent%killEvery == 0 {
			// Kill both ends' conns mid-superframe-stream: in-flight frames
			// die with them; the link layer must redial and replay.
			n1.KillConns()
			n2.KillConns()
		}
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("timed out: got %d/%d envelopes after conn kills", len(*got), count)
	}
	assertExactlyOnce(t, *got, count)
}

// TestResilientRecvMode: the link layer must also serve pull-mode
// consumers (Recv) — bidder CLIs use it.
func TestResilientRecvMode(t *testing.T) {
	hub := NewHub(LatencyModel{}, 1)
	defer hub.Close()
	raw1, _ := hub.Attach(1)
	raw2, _ := hub.Attach(2)
	c1 := WrapResilient(raw1, fastLink())
	defer c1.Close()
	c2 := WrapResilient(raw2, fastLink())
	defer c2.Close()

	if err := c1.Send(dataEnv(1, 2, 42)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	env, err := c2.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "42" || env.Tag.Block != wire.BlockTask {
		t.Fatalf("got %+v", env)
	}
}

// assertExactlyOnce fails unless got is a permutation of 0..count-1:
// every envelope delivered exactly once, any order.
func assertExactlyOnce(t *testing.T, got []int, count int) {
	t.Helper()
	seen := make([]int, count)
	for _, v := range got {
		if v < 0 || v >= count {
			t.Fatalf("got envelope %d, outside [0,%d)", v, count)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("envelope %d delivered %d times", v, n)
		}
	}
}
