package standardauction

import (
	"testing"
	"testing/quick"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/prng"
)

func u(v, d float64) auction.UserBid {
	return auction.UserBid{Value: fixed.MustFloat(v), Demand: fixed.MustFloat(d)}
}

func caps(cs ...float64) []fixed.Fixed {
	out := make([]fixed.Fixed, len(cs))
	for i, c := range cs {
		out[i] = fixed.MustFloat(c)
	}
	return out
}

// randomInstance mirrors the paper's §6.3 workload: values U[0.75,1.25],
// demands U(0,1], capacities scaled to a fraction of total demand.
func randomInstance(seed uint64, n, m int, capFrac float64) ([]auction.UserBid, Params) {
	rng := prng.New(seed)
	users := make([]auction.UserBid, n)
	var total fixed.Fixed
	for i := range users {
		users[i] = auction.UserBid{
			Value:  rng.FixedRange(fixed.MustFloat(0.75), fixed.MustFloat(1.25)),
			Demand: rng.FixedRange(1, fixed.One) + 1,
		}
		total = total.SatAdd(users[i].Demand)
	}
	cs := make([]fixed.Fixed, m)
	for j := range cs {
		share, _ := total.DivInt(int64(m))
		cs[j] = fixed.Max2(share.MulFrac(fixed.MustFloat(capFrac)), 1)
	}
	return users, Params{Capacities: cs, InvEpsilon: 5}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err == nil {
		t.Error("no providers must be invalid")
	}
	if err := (Params{Capacities: caps(-1)}).Validate(); err == nil {
		t.Error("negative capacity must be invalid")
	}
	if err := (Params{Capacities: caps(1, 1, 1, 1, 1), Exact: true}).Validate(); err == nil {
		t.Error("exact mode with 5 providers must be invalid")
	}
	if err := (Params{Capacities: caps(1)}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	users, params := randomInstance(1, 40, 4, 0.3)
	a, err := SolveAllocation(users, params, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveAllocation(users, params, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at user %d", i)
		}
	}
}

func TestFeasibilityAndDemandIntegrity(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%30)
		users, params := randomInstance(seed, n, 1+int(seed%5), 0.4)
		assign, err := SolveAllocation(users, params, seed)
		if err != nil {
			return false
		}
		load := make([]fixed.Fixed, len(params.Capacities))
		for i, j := range assign {
			if j == Unassigned {
				continue
			}
			if j < 0 || j >= len(load) {
				return false
			}
			load[j] = load[j].SatAdd(users[i].Demand)
		}
		for j := range load {
			if load[j] > params.Capacities[j] {
				t.Logf("seed %d: provider %d over capacity", seed, j)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchBeatsOrMatchesGreedy(t *testing.T) {
	// With zero iterations the solver returns the greedy seed; local search
	// can only improve it (every accepted move strictly raises welfare).
	users, params := randomInstance(3, 50, 4, 0.3)
	greedy := params
	greedy.IterFactor = 1
	greedy.InvEpsilon = 1 // minimal extra work
	gAssign, err := SolveAllocation(users, greedy, 5)
	if err != nil {
		t.Fatal(err)
	}
	strong := params
	strong.InvEpsilon = 12
	sAssign, err := SolveAllocation(users, strong, 5)
	if err != nil {
		t.Fatal(err)
	}
	if Welfare(users, sAssign) < Welfare(users, gAssign) {
		t.Errorf("more search lowered welfare: %v < %v",
			Welfare(users, sAssign), Welfare(users, gAssign))
	}
}

func TestApproximationRatioOnSmallInstances(t *testing.T) {
	// Compare against the exhaustive optimum on instances small enough to
	// brute-force; the (1−ε)-style search should land within 20%.
	for seed := uint64(1); seed <= 20; seed++ {
		users, params := randomInstance(seed, 9, 3, 0.4)
		params.InvEpsilon = 15
		assign, err := SolveAllocation(users, params, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, opt := solveExact(users, params.Capacities)
		got := Welfare(users, assign)
		if opt == 0 {
			continue
		}
		bound := opt.MulFrac(fixed.MustFloat(0.8))
		if got < bound {
			t.Errorf("seed %d: welfare %v below 0.8×OPT (%v, OPT=%v)", seed, got, bound, opt)
		}
	}
}

func TestPaymentsBasics(t *testing.T) {
	users, params := randomInstance(11, 20, 3, 0.3)
	seed := uint64(77)
	assign, err := SolveAllocation(users, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range users {
		pay, err := Payment(users, params, seed, assign, i)
		if err != nil {
			t.Fatal(err)
		}
		if assign[i] == Unassigned && pay != 0 {
			t.Errorf("losing user %d pays %v", i, pay)
		}
		if pay < 0 || pay > users[i].Total() {
			t.Errorf("user %d payment %v outside [0, %v]", i, pay, users[i].Total())
		}
	}
	if _, err := Payment(users, params, seed, assign, -1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestPaymentSeedIndependentOfComputingGroup(t *testing.T) {
	// The counterfactual seed for user i depends only on (coin seed, i):
	// this is what lets different provider groups compute disjoint payment
	// shares and still cross-validate.
	if paymentSeed(5, 3) != paymentSeed(5, 3) {
		t.Error("payment seed not deterministic")
	}
	if paymentSeed(5, 3) == paymentSeed(5, 4) {
		t.Error("payment seeds should differ across users")
	}
	if paymentSeed(5, 3) == paymentSeed(6, 3) {
		t.Error("payment seeds should differ across coin seeds")
	}
}

// Exact-mode VCG is truthful: no user improves utility by any misreport.
func TestVCGTruthfulnessExactMode(t *testing.T) {
	users := []auction.UserBid{u(10, 1), u(8, 1), u(6, 2), u(4, 1)}
	params := Params{Capacities: caps(2, 1), Exact: true}
	seed := uint64(1)

	truthOut, err := Solve(users, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.5, 2, 3.9, 5, 7, 9, 11, 20}
	for i := range users {
		truthUtil := auction.UserUtility(users[i], i, truthOut)
		for _, lie := range grid {
			lied := append([]auction.UserBid(nil), users...)
			lied[i] = auction.UserBid{Value: fixed.MustFloat(lie), Demand: users[i].Demand}
			out, err := Solve(lied, params, seed)
			if err != nil {
				t.Fatal(err)
			}
			lieUtil := auction.UserUtility(users[i], i, out)
			if lieUtil > truthUtil {
				t.Errorf("user %d gains by bidding %v: %v > %v", i, lie, lieUtil, truthUtil)
			}
		}
	}
}

func TestBuildOutcome(t *testing.T) {
	users := []auction.UserBid{u(2, 1), u(3, 2)}
	params := Params{Capacities: caps(2, 2)}
	assign := Assignment{0, 1}
	pays := []fixed.Fixed{fixed.One, fixed.MustFloat(2)}
	out, err := BuildOutcome(users, params, assign, pays)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alloc.At(0, 0) != fixed.One || out.Alloc.At(1, 1) != fixed.MustFloat(2) {
		t.Error("allocation wrong")
	}
	if out.Pay.ByUser[0] != fixed.One {
		t.Error("payment wrong")
	}
	// Over-capacity assignment must be rejected.
	bad := Assignment{0, 0}
	if _, err := BuildOutcome(users, params, bad, pays); err == nil {
		t.Error("infeasible assignment accepted")
	}
	// Shape mismatch.
	if _, err := BuildOutcome(users, params, assign[:1], pays); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Out-of-range provider.
	if _, err := BuildOutcome(users, params, Assignment{7, Unassigned}, pays); err == nil {
		t.Error("out-of-range provider accepted")
	}
}

func TestSolveEndToEnd(t *testing.T) {
	users, params := randomInstance(21, 15, 3, 0.3)
	out, err := Solve(users, params, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Alloc.CheckFeasible(params.Capacities); err != nil {
		t.Errorf("infeasible outcome: %v", err)
	}
	for i, b := range users {
		if auction.UserUtility(b, i, out) < 0 {
			t.Errorf("user %d IR violated", i)
		}
	}
}

func TestNeutralUsersExcluded(t *testing.T) {
	users := []auction.UserBid{u(5, 1), auction.NeutralUserBid(), {Value: -1, Demand: fixed.One}}
	params := Params{Capacities: caps(10)}
	assign, err := SolveAllocation(users, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if assign[1] != Unassigned || assign[2] != Unassigned {
		t.Error("neutral/invalid user assigned")
	}
	if assign[0] == Unassigned {
		t.Error("valid user not assigned despite ample capacity")
	}
}

func TestExactSolverKnownOptimum(t *testing.T) {
	// Knapsack where greedy-by-value is suboptimal: one provider, cap 3.
	// Greedy takes v=5,d=2 then cannot fit d=2 again; optimum is the pair
	// (4.9, 1.5) + (4.8, 1.5) with welfare 7.35+7.2 > 10.
	users := []auction.UserBid{u(5, 2), u(4.9, 1.5), u(4.8, 1.5)}
	_, opt := solveExact(users, caps(3))
	want := users[1].Total().SatAdd(users[2].Total())
	if opt != want {
		t.Errorf("exact optimum %v, want %v", opt, want)
	}
}

func BenchmarkSolveAllocation(b *testing.B) {
	users, params := randomInstance(9, 100, 8, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAllocation(users, params, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSolve(b *testing.B) {
	users, params := randomInstance(9, 40, 8, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(users, params, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
