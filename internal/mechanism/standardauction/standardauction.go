// Package standardauction implements the standard-auction allocation
// algorithm of §5.2.2, in the style of Zhang, Wu, Li and Lau (INFOCOM 2015):
// a randomized (1−ε)-approximation of the welfare-maximising single-provider
// assignment, combined with VCG payments for truthfulness in expectation.
//
// Problem: each user i demands dᵢ units of bandwidth, valued at vᵢ per
// unit, and must be served entirely by ONE provider (or not at all);
// provider j has capacity Cⱼ. Maximising Σ vᵢ·dᵢ over served users is the
// multiple-knapsack problem — NP-hard, which is why the paper trades
// optimality for a (1−ε) approximation whose work grows with (1/ε)².
//
// Allocation (Task 1 of Algorithm 1) = greedy seed + seeded randomized
// local search: random candidate users are swapped into random providers,
// evicting cheaper user sets when that strictly improves welfare. All
// randomness comes from a prng.SplitMix64 seeded by the common coin, so
// every provider replays the identical allocation.
//
// Payments (Task 2) are VCG: user i pays the externality it imposes,
// W(N∖{i}) − (W(N) − vᵢdᵢ), which requires a fresh solve without i — the
// computationally dominant part, embarrassingly parallel across users, and
// exactly what the paper's framework distributes across provider groups.
//
// The paper's algorithm runs in O(m·n⁹·(1/ε)²) under smoothed analysis; this
// reproduction keeps the structure (randomized search with (1/ε)² effort,
// superlinear growth in n, per-user re-solves) with the exponent scaled so
// experiments terminate on one machine. See DESIGN.md §2 and EXPERIMENTS.md.
package standardauction

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/prng"
)

// Unassigned marks a user not served by any provider.
const Unassigned = -1

// Params configures the mechanism.
type Params struct {
	// Capacities is the bandwidth capacity of each provider (providers do
	// not bid in a standard auction; capacities are deployment facts).
	Capacities []fixed.Fixed
	// InvEpsilon is ⌈1/ε⌉ ≥ 1: the approximation effort. Local-search work
	// scales with its square, mirroring the paper's (1/ε)² factor.
	InvEpsilon int
	// IterFactor scales the iteration count (default 1). Benchmarks use it
	// to calibrate compute cost against the paper's testbed.
	IterFactor int
	// Exact switches to exhaustive search (small instances only; used by
	// tests to check the approximation ratio and exact-VCG truthfulness).
	Exact bool
	// ModelDelay adds a virtual compute delay to every allocation solve
	// (including the per-user VCG re-solves). The paper's algorithm costs
	// O(m·n⁹·(1/ε)²) CPU-seconds and its testbed pinned one CPU per
	// provider; on hosts with fewer cores than providers the redundant
	// simulation would serialize and mask the parallel speedup, so the
	// evaluation harness models the full-scale compute time as idle time.
	// ModelDelay never affects results — only wall-clock. Zero disables it.
	ModelDelay time.Duration
}

func (p Params) withDefaults() Params {
	if p.InvEpsilon < 1 {
		p.InvEpsilon = 10
	}
	if p.IterFactor < 1 {
		p.IterFactor = 1
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if len(p.Capacities) == 0 {
		return errors.New("standardauction: no providers")
	}
	for j, c := range p.Capacities {
		if c < 0 {
			return fmt.Errorf("standardauction: negative capacity for provider %d", j)
		}
	}
	if p.Exact && len(p.Capacities) > 4 {
		return errors.New("standardauction: exact mode limited to 4 providers")
	}
	return nil
}

// Assignment maps each user to a provider index or Unassigned.
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Welfare returns the social welfare of an assignment: the total value of
// served demand (§3.1, standard auction).
func Welfare(users []auction.UserBid, a Assignment) fixed.Fixed {
	var w fixed.Fixed
	for i, p := range a {
		if p != Unassigned {
			w = w.SatAdd(users[i].Total())
		}
	}
	return w
}

// eligible reports whether user i participates (valid, non-neutral).
func eligible(b auction.UserBid) bool {
	return b.Validate() == nil && !b.IsNeutral()
}

// SolveAllocation computes the (1−ε)-approximate assignment (Task 1 of
// Algorithm 1). It is deterministic in (users, params, seed).
func SolveAllocation(users []auction.UserBid, params Params, seed uint64) (Assignment, error) {
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.ModelDelay > 0 {
		time.Sleep(params.ModelDelay)
	}
	if params.Exact {
		a, _ := solveExact(users, params.Capacities)
		return a, nil
	}
	n, m := len(users), len(params.Capacities)
	assign := make(Assignment, n)
	remCap := append([]fixed.Fixed(nil), params.Capacities...)

	// Greedy seed: users by per-unit value descending (ties by index),
	// placed into the provider with the most remaining capacity.
	order := make([]int, 0, n)
	for i, b := range users {
		assign[i] = Unassigned
		if eligible(b) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := users[order[a]].Value, users[order[b]].Value
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		best, bestCap := Unassigned, fixed.Fixed(-1)
		for j := 0; j < m; j++ {
			if remCap[j] >= users[i].Demand && remCap[j] > bestCap {
				best, bestCap = j, remCap[j]
			}
		}
		if best != Unassigned {
			assign[i] = best
			remCap[best] -= users[i].Demand
		}
	}
	if len(order) == 0 {
		return assign, nil
	}

	// Randomized local search: the effort mirrors the paper's (1/ε)² factor
	// with linear growth in n per solve (so a full auction with its n VCG
	// re-solves grows superlinearly, reproducing Figure 5's shape).
	iters := params.IterFactor * len(order) * params.InvEpsilon * params.InvEpsilon
	rng := prng.New(seed)
	evict := make([]int, 0, 16)
	for it := 0; it < iters; it++ {
		i := order[rng.Intn(len(order))]
		j := rng.Intn(m)
		if assign[i] == j {
			continue
		}
		if assign[i] != Unassigned {
			// Moving an assigned user does not change welfare by itself;
			// the improving move is swapping an unassigned user in.
			continue
		}
		need := users[i].Demand - remCap[j]
		if need <= 0 {
			assign[i] = j
			remCap[j] -= users[i].Demand
			continue
		}
		// Find the cheapest set of users at j whose eviction frees enough
		// capacity, scanning in ascending total-value order.
		evict = evict[:0]
		for u := range assign {
			if assign[u] == j {
				evict = append(evict, u)
			}
		}
		sort.Slice(evict, func(a, b int) bool {
			ta, tb := users[evict[a]].Total(), users[evict[b]].Total()
			if ta != tb {
				return ta < tb
			}
			return evict[a] < evict[b]
		})
		var freed, lost fixed.Fixed
		cut := 0
		for _, u := range evict {
			if freed >= need {
				break
			}
			freed = freed.SatAdd(users[u].Demand)
			lost = lost.SatAdd(users[u].Total())
			cut++
		}
		if freed < need || lost >= users[i].Total() {
			continue // infeasible or not improving
		}
		for _, u := range evict[:cut] {
			assign[u] = Unassigned
		}
		remCap[j] = remCap[j] + freed - users[i].Demand
		assign[i] = j
	}
	return assign, nil
}

// paymentSeed derives the deterministic seed for the counterfactual solve
// without user i. Every provider group must obtain the same seed for the
// same user, no matter which group computes it.
func paymentSeed(seed uint64, i int) uint64 {
	return prng.New(seed).Fork(uint64(i) + 1).Uint64()
}

// Payment computes user i's VCG payment given the chosen assignment
// (Task 2 of Algorithm 1). Payments are clamped to [0, vᵢdᵢ]: the
// approximation can otherwise leave a VCG payment slightly outside the
// individually-rational range.
func Payment(users []auction.UserBid, params Params, seed uint64, assign Assignment, i int) (fixed.Fixed, error) {
	params = params.withDefaults()
	if i < 0 || i >= len(users) {
		return 0, fmt.Errorf("standardauction: payment for unknown user %d", i)
	}
	// The compute model charges one counterfactual solve per user — the
	// paper's algorithm prices every user, and its groups split exactly n/c
	// payments each. The sleep lives here (not in the inner solve) so it is
	// charged once per payment regardless of early exits.
	if params.ModelDelay > 0 {
		time.Sleep(params.ModelDelay)
		params.ModelDelay = 0
	}
	if assign[i] == Unassigned {
		return 0, nil
	}
	othersWelfare := Welfare(users, assign).SatSub(users[i].Total())

	without := make([]auction.UserBid, len(users))
	copy(without, users)
	without[i] = auction.NeutralUserBid()
	counterfactual, err := SolveAllocation(without, params, paymentSeed(seed, i))
	if err != nil {
		return 0, err
	}
	pay := Welfare(without, counterfactual).SatSub(othersWelfare)
	return fixed.Clamp(pay, 0, users[i].Total()), nil
}

// BuildOutcome expands an assignment and per-user payments into the
// canonical auction outcome. Payments to providers are zero: in the
// standard auction providers do not bid and revenue distribution is outside
// the mechanism (the deployment's settlement layer routes user payments to
// the providers that served them; see the ledger package).
func BuildOutcome(users []auction.UserBid, params Params, assign Assignment, pays []fixed.Fixed) (auction.Outcome, error) {
	params = params.withDefaults()
	n, m := len(users), len(params.Capacities)
	if len(assign) != n || len(pays) != n {
		return auction.Outcome{}, auction.ErrShape
	}
	out := auction.Outcome{
		Alloc: auction.NewAllocation(n, m),
		Pay:   auction.NewPayments(n, m),
	}
	for i, j := range assign {
		if j == Unassigned {
			continue
		}
		if j < 0 || j >= m {
			return auction.Outcome{}, fmt.Errorf("standardauction: assignment of user %d out of range", i)
		}
		out.Alloc.Set(i, j, users[i].Demand)
		out.Pay.ByUser[i] = pays[i]
	}
	if err := out.Alloc.CheckFeasible(params.Capacities); err != nil {
		return auction.Outcome{}, err
	}
	return out, nil
}

// Solve runs the full mechanism serially: allocation plus every user's VCG
// payment. The distributed framework splits exactly this work across
// provider groups; Solve is the centralized baseline of Figure 5 (p=1).
func Solve(users []auction.UserBid, params Params, seed uint64) (auction.Outcome, error) {
	assign, err := SolveAllocation(users, params, seed)
	if err != nil {
		return auction.Outcome{}, err
	}
	pays := make([]fixed.Fixed, len(users))
	for i := range users {
		pays[i], err = Payment(users, params, seed, assign, i)
		if err != nil {
			return auction.Outcome{}, err
		}
	}
	return BuildOutcome(users, params, assign, pays)
}

// solveExact exhaustively maximises welfare. Exponential; tests only.
func solveExact(users []auction.UserBid, caps []fixed.Fixed) (Assignment, fixed.Fixed) {
	n, m := len(users), len(caps)
	assign := make(Assignment, n)
	best := make(Assignment, n)
	for i := range assign {
		assign[i] = Unassigned
		best[i] = Unassigned
	}
	remCap := append([]fixed.Fixed(nil), caps...)
	var bestW, curW fixed.Fixed

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if curW > bestW {
				bestW = curW
				copy(best, assign)
			}
			return
		}
		if !eligible(users[i]) {
			assign[i] = Unassigned
			rec(i + 1)
			return
		}
		for j := 0; j < m; j++ {
			if remCap[j] >= users[i].Demand {
				assign[i] = j
				remCap[j] -= users[i].Demand
				curW = curW.SatAdd(users[i].Total())
				rec(i + 1)
				curW = curW.SatSub(users[i].Total())
				remCap[j] += users[i].Demand
			}
		}
		assign[i] = Unassigned
		rec(i + 1)
	}
	rec(0)
	return best, bestW
}
