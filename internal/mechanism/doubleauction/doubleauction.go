// Package doubleauction implements the double-auction allocation algorithm
// of §5.2.1, a variant of the McAfee trade-reduction mechanism in the style
// of Zheng et al. (STAR): providers are ordered by increasing unit cost,
// users by decreasing unit value, and bandwidth is matched by water-filling
// — each user's demand is poured into the cheapest providers with remaining
// capacity while the trade is profitable.
//
// To obtain truthfulness together with budget balance (at the expense of
// some social welfare, exactly the trade-off the paper cites from Myerson-
// Satterthwaite), the marginal trade is sacrificed: the last matched user ℓ
// is removed, winners pay a uniform unit price equal to ℓ's value (the
// highest losing bid), and providers are paid a uniform unit price equal to
// the cost of the first unused provider (capped by the buyer price). Both
// prices are thresholds independent of the payer's own bid.
//
// The algorithm is sorting-dominated, so the framework runs it replicated at
// every provider rather than parallelised (§5.2.1: "in most practical
// settings there is no performance gain in parallelising").
package doubleauction

import (
	"fmt"
	"slices"
	"sync"

	"distauction/internal/auction"
	"distauction/internal/fixed"
)

// fill records one water-filling step so the marginal trade can be rolled
// back.
type fill struct {
	user, prov int
	units      fixed.Fixed
}

// scratch is the solver's working set — order indices, remaining
// capacities, fill log — recycled across Solve calls. Only index and
// fixed-point values live here, never caller data, so a recycled scratch
// carries nothing between rounds.
type scratch struct {
	users, provs []int
	remCap       []fixed.Fixed
	fills        []fill
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// Solve runs the double auction on the agreed bid vector and returns the
// outcome. Neutral and invalid bids take no part. Solve is deterministic:
// every provider replaying it on the same vector obtains identical bytes.
func Solve(bids auction.BidVector) (auction.Outcome, error) {
	n, m := len(bids.Users), len(bids.Providers)
	out := auction.Outcome{
		Alloc: auction.NewAllocation(n, m),
		Pay:   auction.NewPayments(n, m),
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Order the sides. Ties break on index so the order is total and
	// identical at every provider.
	users := sc.users[:0]
	for i, b := range bids.Users {
		if b.Validate() == nil && !b.IsNeutral() {
			users = append(users, i)
		}
	}
	sc.users = users
	slices.SortFunc(users, func(a, b int) int {
		va, vb := bids.Users[a].Value, bids.Users[b].Value
		if va != vb {
			if va > vb {
				return -1
			}
			return 1
		}
		return a - b
	})
	provs := sc.provs[:0]
	for j, b := range bids.Providers {
		if b.Validate() == nil && !b.IsNeutral() {
			provs = append(provs, j)
		}
	}
	sc.provs = provs
	slices.SortFunc(provs, func(a, b int) int {
		ca, cb := bids.Providers[a].Cost, bids.Providers[b].Cost
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		return a - b
	})
	if len(users) == 0 || len(provs) == 0 {
		return out, nil
	}

	// Water-filling.
	if cap(sc.remCap) < m {
		sc.remCap = make([]fixed.Fixed, m)
	} else {
		sc.remCap = sc.remCap[:m]
		clear(sc.remCap)
	}
	remCap := sc.remCap
	for _, j := range provs {
		remCap[j] = bids.Providers[j].Capacity
	}
	fills := sc.fills[:0]
	lastUserPos := -1 // position in users[] of the last user that traded
	pi := 0
fillLoop:
	for upos, u := range users {
		value := bids.Users[u].Value
		rem := bids.Users[u].Demand
		traded := false
		for rem > 0 && pi < len(provs) {
			j := provs[pi]
			if value <= bids.Providers[j].Cost {
				// Providers only get costlier and users only get cheaper
				// from here: no further profitable trade exists at all.
				if traded {
					lastUserPos = upos
				}
				break fillLoop
			}
			if remCap[j] == 0 {
				pi++
				continue
			}
			take := fixed.Min2(rem, remCap[j])
			out.Alloc.Add(u, j, take)
			fills = append(fills, fill{user: u, prov: j, units: take})
			sc.fills = fills
			rem -= take
			remCap[j] -= take
			traded = true
		}
		if traded {
			lastUserPos = upos
		}
		if pi == len(provs) {
			break
		}
	}
	if lastUserPos < 0 {
		return out, nil // no profitable trade at all
	}

	// Trade reduction: remove the marginal user ℓ entirely.
	marginal := users[lastUserPos]
	for _, f := range fills {
		if f.user == marginal {
			out.Alloc.Set(f.user, f.prov, 0)
			remCap[f.prov] += f.units
		}
	}

	// If ℓ was the only trader, nothing trades (degenerate McAfee case).
	anyTrade := false
	lastUsedPos := -1 // position in provs[] of the most expensive used provider
	for pos, j := range provs {
		if out.Alloc.ProviderLoad(j) > 0 {
			anyTrade = true
			lastUsedPos = pos
		}
	}
	if !anyTrade {
		return out, nil
	}

	// Threshold prices. Buyers pay the excluded user's value; sellers are
	// paid the cost of the first unused provider, capped by the buyer price.
	buyerPrice := bids.Users[marginal].Value
	sellerPrice := buyerPrice
	if next := lastUsedPos + 1; next < len(provs) {
		sellerPrice = fixed.Min2(buyerPrice, bids.Providers[provs[next]].Cost)
	}

	// Internal invariants the construction guarantees; violating them would
	// break individual rationality, so fail loudly rather than mis-pay.
	for pos := 0; pos <= lastUsedPos; pos++ {
		j := provs[pos]
		if out.Alloc.ProviderLoad(j) > 0 && bids.Providers[j].Cost > sellerPrice {
			return auction.Outcome{}, fmt.Errorf(
				"doubleauction: seller price %v below cost of used provider %d (%v)",
				sellerPrice, j, bids.Providers[j].Cost)
		}
	}

	// Payments are computed per allocation cell with floor rounding on both
	// sides. Because buyerPrice ≥ sellerPrice holds cell-wise, the floored
	// user payment of every cell covers its floored provider payment, so
	// budget balance is *exact* in micro-units. User IR is also exact
	// (⌊v·q⌋ summed ≥ ⌊p_b·q⌋ summed for v ≥ p_b). Provider IR can lose at
	// most one micro-unit per allocated cell to rounding when a provider's
	// cost ties the seller price — economically zero, and documented in the
	// tests.
	for u := 0; u < n; u++ {
		for j := 0; j < m; j++ {
			q := out.Alloc.At(u, j)
			if q == 0 {
				continue
			}
			out.Pay.ByUser[u] = out.Pay.ByUser[u].SatAdd(buyerPrice.MulFrac(q))
			out.Pay.ToProvider[j] = out.Pay.ToProvider[j].SatAdd(sellerPrice.MulFrac(q))
		}
	}
	return out, nil
}

// Capacities extracts the capacity vector declared in the provider bids
// (used for feasibility checks).
func Capacities(bids auction.BidVector) []fixed.Fixed {
	caps := make([]fixed.Fixed, len(bids.Providers))
	for j, b := range bids.Providers {
		if b.Validate() == nil {
			caps[j] = b.Capacity
		}
	}
	return caps
}
