package doubleauction

import (
	"testing"
	"testing/quick"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/prng"
)

func u(v, d float64) auction.UserBid {
	return auction.UserBid{Value: fixed.MustFloat(v), Demand: fixed.MustFloat(d)}
}

func p(c, cap float64) auction.ProviderBid {
	return auction.ProviderBid{Cost: fixed.MustFloat(c), Capacity: fixed.MustFloat(cap)}
}

func TestHandWorkedExample(t *testing.T) {
	// Users sorted by value: A(10), B(8), C(5); providers by cost: P1(1), P2(2), P3(6).
	// Water-fill: A→P1, B→P2, C blocked by P3's cost. Marginal user is B.
	// After reduction only A trades; buyer price = 8 (B's value), seller
	// price = min(8, cost of first unused provider P2 = 2) = 2.
	bids := auction.BidVector{
		Users:     []auction.UserBid{u(10, 1), u(8, 1), u(5, 1)},
		Providers: []auction.ProviderBid{p(1, 1), p(2, 1), p(6, 5)},
	}
	out, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Alloc.At(0, 0); got != fixed.One {
		t.Errorf("A at P1 = %v, want 1", got)
	}
	if got := out.Alloc.UserTotal(1); got != 0 {
		t.Errorf("marginal user B still allocated %v", got)
	}
	if got := out.Alloc.UserTotal(2); got != 0 {
		t.Errorf("losing user C allocated %v", got)
	}
	if got := out.Pay.ByUser[0]; got != fixed.MustFloat(8) {
		t.Errorf("A pays %v, want 8", got)
	}
	if got := out.Pay.ToProvider[0]; got != fixed.MustFloat(2) {
		t.Errorf("P1 receives %v, want 2", got)
	}
	if !out.Pay.BudgetBalanced() {
		t.Error("not budget balanced")
	}
}

func TestSingleBuyerNoTrade(t *testing.T) {
	// One profitable buyer: trade reduction removes it → nothing trades.
	bids := auction.BidVector{
		Users:     []auction.UserBid{u(10, 3)},
		Providers: []auction.ProviderBid{p(1, 1), p(2, 1)},
	}
	out, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alloc.UserTotal(0) != 0 || out.Pay.TotalPaid() != 0 || out.Pay.TotalReceived() != 0 {
		t.Errorf("degenerate case should trade nothing: %+v", out)
	}
}

func TestNoProfitableTrade(t *testing.T) {
	bids := auction.BidVector{
		Users:     []auction.UserBid{u(1, 1)},
		Providers: []auction.ProviderBid{p(5, 10)},
	}
	out, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alloc.UserTotal(0) != 0 {
		t.Error("unprofitable trade executed")
	}
}

func TestEmptySides(t *testing.T) {
	for _, bids := range []auction.BidVector{
		{},
		{Users: []auction.UserBid{u(1, 1)}},
		{Providers: []auction.ProviderBid{p(1, 1)}},
		{Users: []auction.UserBid{auction.NeutralUserBid()}, Providers: []auction.ProviderBid{p(1, 1)}},
	} {
		out, err := Solve(bids)
		if err != nil {
			t.Fatal(err)
		}
		if out.Pay.TotalPaid() != 0 {
			t.Errorf("empty auction paid: %+v", out)
		}
	}
}

func TestTiedValues(t *testing.T) {
	bids := auction.BidVector{
		Users:     []auction.UserBid{u(5, 1), u(5, 1)},
		Providers: []auction.ProviderBid{p(1, 2)},
	}
	out, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	// Tie broken by index: user 0 first, user 1 marginal and excluded.
	if out.Alloc.UserTotal(0) != fixed.One || out.Alloc.UserTotal(1) != 0 {
		t.Errorf("tie handling wrong: %v / %v", out.Alloc.UserTotal(0), out.Alloc.UserTotal(1))
	}
	// Buyer price = marginal value 5 → winner pays its own value (utility 0, IR holds).
	if out.Pay.ByUser[0] != fixed.MustFloat(5) {
		t.Errorf("pay = %v", out.Pay.ByUser[0])
	}
	if !out.Pay.BudgetBalanced() {
		t.Error("not budget balanced")
	}
}

func TestNeutralAndInvalidBidsIgnored(t *testing.T) {
	bids := auction.BidVector{
		Users: []auction.UserBid{
			{Value: -3, Demand: fixed.One}, // invalid
			u(9, 1),
			auction.NeutralUserBid(),
			u(8, 1),
		},
		Providers: []auction.ProviderBid{
			auction.NeutralProviderBid(),
			p(1, 5),
		},
	}
	out, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alloc.UserTotal(0) != 0 || out.Alloc.UserTotal(2) != 0 {
		t.Error("invalid/neutral users traded")
	}
	if out.Alloc.ProviderLoad(0) != 0 {
		t.Error("neutral provider traded")
	}
	// User 1 (value 9) wins; user 3 (value 8) is marginal.
	if out.Alloc.UserTotal(1) != fixed.One || out.Alloc.UserTotal(3) != 0 {
		t.Error("valid users mishandled")
	}
}

// randomInstance builds a workload instance like the paper's §6.2 setup.
func randomInstance(seed uint64, n, m int) auction.BidVector {
	rng := prng.New(seed)
	bids := auction.BidVector{
		Users:     make([]auction.UserBid, n),
		Providers: make([]auction.ProviderBid, m),
	}
	var totalDemand fixed.Fixed
	for i := range bids.Users {
		bids.Users[i] = auction.UserBid{
			Value:  rng.FixedRange(fixed.MustFloat(0.75), fixed.MustFloat(1.25)),
			Demand: rng.FixedRange(1, fixed.One) + 1,
		}
		totalDemand = totalDemand.SatAdd(bids.Users[i].Demand)
	}
	for j := range bids.Providers {
		share, _ := totalDemand.DivInt(int64(m))
		scale := rng.FixedRange(fixed.MustFloat(0.5), fixed.MustFloat(1.5))
		bids.Providers[j] = auction.ProviderBid{
			Cost:     rng.FixedRange(1, fixed.One) + 1,
			Capacity: fixed.Max2(share.MulFrac(scale), 1),
		}
	}
	return bids
}

// Property: the outcome is always feasible, demand-respecting, budget
// balanced and individually rational.
func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		bids := randomInstance(seed, 1+int(seed%40), 1+int(seed%7))
		out, err := Solve(bids)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := out.Alloc.CheckFeasible(Capacities(bids)); err != nil {
			t.Logf("seed %d infeasible: %v", seed, err)
			return false
		}
		for i, b := range bids.Users {
			if out.Alloc.UserTotal(i) > b.Demand {
				t.Logf("seed %d user %d overfed", seed, i)
				return false
			}
			// IR: utility ≥ 0 under truthful bidding.
			if auction.UserUtility(b, i, out) < 0 {
				t.Logf("seed %d user %d IR violated", seed, i)
				return false
			}
		}
		for j, b := range bids.Providers {
			// Provider IR is exact up to one micro-unit per allocated cell
			// (floor rounding when a provider's cost ties the seller price).
			tolerance := fixed.Fixed(len(bids.Users))
			if auction.ProviderUtility(b, j, out) < -tolerance {
				t.Logf("seed %d provider %d IR violated: %v", seed, j, auction.ProviderUtility(b, j, out))
				return false
			}
		}
		return out.Pay.BudgetBalanced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Solve is a pure function — identical input, identical bytes.
func TestDeterminism(t *testing.T) {
	bids := randomInstance(7, 30, 5)
	a, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("Solve is not deterministic")
	}
}

// Truthfulness spot check on unit-demand instances, where trade reduction
// is exactly truthful: no user or provider improves its utility through any
// misreport on a value grid.
func TestTruthfulnessUnitDemand(t *testing.T) {
	base := auction.BidVector{
		Users: []auction.UserBid{
			u(10, 1), u(8, 1), u(6, 1), u(4, 1),
		},
		Providers: []auction.ProviderBid{
			p(1, 1), p(3, 1), p(5, 1),
		},
	}
	truthOut, err := Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.5, 2, 3.5, 5, 6.5, 7, 9, 11, 15}

	for i := range base.Users {
		truthUtil := auction.UserUtility(base.Users[i], i, truthOut)
		for _, lie := range grid {
			bids := base
			bids.Users = append([]auction.UserBid(nil), base.Users...)
			bids.Users[i] = u(lie, 1)
			out, err := Solve(bids)
			if err != nil {
				t.Fatal(err)
			}
			lieUtil := auction.UserUtility(base.Users[i], i, out)
			if lieUtil > truthUtil {
				t.Errorf("user %d gains by bidding %v: %v > %v", i, lie, lieUtil, truthUtil)
			}
		}
	}
	for j := range base.Providers {
		truthUtil := auction.ProviderUtility(base.Providers[j], j, truthOut)
		for _, lie := range grid {
			bids := base
			bids.Providers = append([]auction.ProviderBid(nil), base.Providers...)
			bids.Providers[j] = p(lie, 1)
			out, err := Solve(bids)
			if err != nil {
				t.Fatal(err)
			}
			lieUtil := auction.ProviderUtility(base.Providers[j], j, out)
			if lieUtil > truthUtil {
				t.Errorf("provider %d gains by asking %v: %v > %v", j, lie, lieUtil, truthUtil)
			}
		}
	}
}

func TestPartialFillAcrossProviders(t *testing.T) {
	// One big user spans two providers; a second user marks the margin.
	bids := auction.BidVector{
		Users:     []auction.UserBid{u(10, 3), u(9, 1)},
		Providers: []auction.ProviderBid{p(1, 2), p(2, 2)},
	}
	out, err := Solve(bids)
	if err != nil {
		t.Fatal(err)
	}
	// User 0 fills 2@P1 + 1@P2; user 1 fills 1@P2 and is the marginal trade.
	if got := out.Alloc.At(0, 0); got != fixed.MustFloat(2) {
		t.Errorf("user0@P1 = %v", got)
	}
	if got := out.Alloc.At(0, 1); got != fixed.One {
		t.Errorf("user0@P2 = %v", got)
	}
	if got := out.Alloc.UserTotal(1); got != 0 {
		t.Errorf("marginal user allocated %v", got)
	}
	// Buyer price = 9; both providers used; no unused provider → seller price = 9.
	if got := out.Pay.ByUser[0]; got != fixed.MustFloat(27) {
		t.Errorf("user0 pays %v, want 27", got)
	}
	if !out.Pay.BudgetBalanced() {
		t.Error("not budget balanced")
	}
}

func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{100, 1000} {
		bids := randomInstance(42, n, 8)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Solve(bids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 100 {
		return "n=100"
	}
	return "n=1000"
}
