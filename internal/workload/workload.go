// Package workload generates the synthetic auction inputs of the paper's
// evaluation (§6.2, §6.3).
//
// Double auction (§6.2): user bids uniform in [0.75, 1.25], demands uniform
// in (0, 1]; provider unit costs uniform in (0, 1]; provider capacities
// sized to the overall demand and scaled by a uniform factor in [0.5, 1.5]
// so both shortage and surplus regimes occur.
//
// Standard auction (§6.3): same user distribution; provider capacities are
// the per-provider demand share scaled down by a uniform factor in
// [0, 0.25], so roughly no more than a quarter of the users win.
//
// All draws come from a seeded deterministic generator so experiments are
// reproducible run-to-run.
package workload

import (
	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/prng"
)

// DoubleAuctionInstance is one §6.2 experiment input.
type DoubleAuctionInstance struct {
	Users     []auction.UserBid
	Providers []auction.ProviderBid
}

// BidVector packs the instance into the auction-domain vector.
func (in DoubleAuctionInstance) BidVector() auction.BidVector {
	return auction.BidVector{Users: in.Users, Providers: in.Providers}
}

// NewDoubleAuction draws a §6.2 instance with n users and m providers.
func NewDoubleAuction(seed uint64, n, m int) DoubleAuctionInstance {
	rng := prng.New(seed)
	inst := DoubleAuctionInstance{
		Users:     drawUsers(rng, n),
		Providers: make([]auction.ProviderBid, m),
	}
	var totalDemand fixed.Fixed
	for _, u := range inst.Users {
		totalDemand = totalDemand.SatAdd(u.Demand)
	}
	for j := range inst.Providers {
		share := totalDemand
		if m > 0 {
			share, _ = totalDemand.DivInt(int64(m))
		}
		scale := rng.FixedRange(fixed.MustFloat(0.5), fixed.MustFloat(1.5))
		inst.Providers[j] = auction.ProviderBid{
			// Cost uniform in (0, 1]: draw [0,1) and shift by one micro-unit.
			Cost:     rng.Fixed01() + 1,
			Capacity: fixed.Max2(share.MulFrac(scale), 1),
		}
	}
	return inst
}

// StandardAuctionInstance is one §6.3 experiment input.
type StandardAuctionInstance struct {
	Users      []auction.UserBid
	Capacities []fixed.Fixed
}

// NewStandardAuction draws a §6.3 instance with n users and m providers.
func NewStandardAuction(seed uint64, n, m int) StandardAuctionInstance {
	rng := prng.New(seed)
	inst := StandardAuctionInstance{
		Users:      drawUsers(rng, n),
		Capacities: make([]fixed.Fixed, m),
	}
	var totalDemand fixed.Fixed
	for _, u := range inst.Users {
		totalDemand = totalDemand.SatAdd(u.Demand)
	}
	for j := range inst.Capacities {
		share := totalDemand
		if m > 0 {
			share, _ = totalDemand.DivInt(int64(m))
		}
		// Scale factor uniform in [0, 0.25] "so roughly no more than a
		// quarter of the users win the bids" (§6.3).
		scale := rng.FixedRange(0, fixed.MustFloat(0.25)+1)
		inst.Capacities[j] = fixed.Max2(share.MulFrac(scale), 1)
	}
	return inst
}

// drawUsers samples n users with the common §6.2/§6.3 distributions.
func drawUsers(rng *prng.SplitMix64, n int) []auction.UserBid {
	users := make([]auction.UserBid, n)
	for i := range users {
		users[i] = auction.UserBid{
			Value: rng.FixedRange(fixed.MustFloat(0.75), fixed.MustFloat(1.25)),
			// Demand uniform in (0, 1].
			Demand: rng.Fixed01() + 1,
		}
	}
	return users
}
