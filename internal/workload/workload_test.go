package workload

import (
	"testing"
	"testing/quick"

	"distauction/internal/fixed"
)

func TestDoubleAuctionDistributions(t *testing.T) {
	inst := NewDoubleAuction(1, 500, 8)
	if len(inst.Users) != 500 || len(inst.Providers) != 8 {
		t.Fatal("wrong sizes")
	}
	lo, hi := fixed.MustFloat(0.75), fixed.MustFloat(1.25)
	for i, u := range inst.Users {
		if u.Value < lo || u.Value >= hi {
			t.Errorf("user %d value %v outside [0.75,1.25)", i, u.Value)
		}
		if u.Demand <= 0 || u.Demand > fixed.One {
			t.Errorf("user %d demand %v outside (0,1]", i, u.Demand)
		}
		if u.Validate() != nil {
			t.Errorf("user %d bid invalid", i)
		}
	}
	for j, p := range inst.Providers {
		if p.Cost <= 0 || p.Cost > fixed.One {
			t.Errorf("provider %d cost %v outside (0,1]", j, p.Cost)
		}
		if p.Capacity <= 0 {
			t.Errorf("provider %d capacity %v not positive", j, p.Capacity)
		}
		if p.Validate() != nil {
			t.Errorf("provider %d bid invalid", j)
		}
	}
}

func TestDoubleAuctionCapacityRegimes(t *testing.T) {
	// Across many draws, capacities must cover both shortage (< share) and
	// surplus (> share) regimes — the scale factor spans [0.5, 1.5].
	shortage, surplus := 0, 0
	for seed := uint64(1); seed <= 50; seed++ {
		inst := NewDoubleAuction(seed, 100, 4)
		var demand fixed.Fixed
		for _, u := range inst.Users {
			demand = demand.SatAdd(u.Demand)
		}
		share, _ := demand.DivInt(4)
		for _, p := range inst.Providers {
			if p.Capacity < share {
				shortage++
			} else {
				surplus++
			}
		}
	}
	if shortage == 0 || surplus == 0 {
		t.Errorf("capacity regimes not mixed: %d shortage, %d surplus", shortage, surplus)
	}
}

func TestStandardAuctionScarcity(t *testing.T) {
	inst := NewStandardAuction(2, 200, 8)
	if len(inst.Users) != 200 || len(inst.Capacities) != 8 {
		t.Fatal("wrong sizes")
	}
	var demand, capacity fixed.Fixed
	for _, u := range inst.Users {
		demand = demand.SatAdd(u.Demand)
	}
	for _, c := range inst.Capacities {
		if c <= 0 {
			t.Error("non-positive capacity")
		}
		capacity = capacity.SatAdd(c)
	}
	// §6.3: capacity ≈ [0, 0.25] of demand, so strictly less than ~30%.
	if capacity > demand.MulFrac(fixed.MustFloat(0.3)) {
		t.Errorf("capacity %v too large vs demand %v for the scarcity regime", capacity, demand)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewDoubleAuction(7, 50, 4)
	b := NewDoubleAuction(7, 50, 4)
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatal("user draws not deterministic")
		}
	}
	for j := range a.Providers {
		if a.Providers[j] != b.Providers[j] {
			t.Fatal("provider draws not deterministic")
		}
	}
	c := NewDoubleAuction(8, 50, 4)
	same := 0
	for i := range a.Users {
		if a.Users[i] == c.Users[i] {
			same++
		}
	}
	if same == len(a.Users) {
		t.Error("different seeds gave identical workloads")
	}
}

// Property: every generated bid validates, for arbitrary seeds and sizes.
func TestQuickAllBidsValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%64)
		m := 1 + int(seed%8)
		d := NewDoubleAuction(seed, n, m)
		for _, u := range d.Users {
			if u.Validate() != nil {
				return false
			}
		}
		for _, p := range d.Providers {
			if p.Validate() != nil {
				return false
			}
		}
		s := NewStandardAuction(seed, n, m)
		for _, u := range s.Users {
			if u.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBidVectorPacking(t *testing.T) {
	inst := NewDoubleAuction(3, 10, 2)
	v := inst.BidVector()
	if len(v.Users) != 10 || len(v.Providers) != 2 {
		t.Error("BidVector shapes wrong")
	}
}
