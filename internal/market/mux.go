// Package market is the marketplace layer of the distributed auctioneer:
// it runs many independent, named auctions — each its own core.Session with
// its own mechanism, coalition bound, bid window and round cadence — over
// ONE shared transport attachment per node.
//
// The paper defines a single auction among a fixed provider set; a
// production deployment serves many concurrent auctions (one per gateway,
// spectrum band, VM class, …) over the same provider fleet. The market
// multiplexes them on the wire by *lane*: the high wire.LaneBits of
// Tag.Instance address the auction, the low bits stay the block-local
// instance, so every auction gets its own isolated tag namespace — rounds
// of different auctions pipeline independently and an abort (⊥) in one
// auction can never poison another, even though all traffic shares one
// connection and one striped router per lane.
//
// A Market (provider side) owns the auction catalog: auctions open, drain
// and close at runtime, lanes are assigned deterministically from the
// auction name so independently-configured providers agree without extra
// coordination, incoming bids pass an admission gate (backpressure and
// fair-share limits), outcomes fan out to per-auction enforcement targets
// (gateways + ledger), and per-auction plus whole-market counters are
// exported. A Bidder (user side) joins auctions by name over the same
// single attachment.
package market

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"distauction/internal/metrics"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// ErrMuxClosed reports a send on a lane of a mux that has been closed. It
// wraps transport.ErrClosed so transport-level callers keep matching, while
// market callers can tell a whole-mux shutdown from an individually closed
// lane.
var ErrMuxClosed = fmt.Errorf("market: mux closed: %w", transport.ErrClosed)

// AdmitFunc inspects one inbound envelope after lane demultiplexing (the
// tag's Instance is already the block-local one) and reports whether it may
// be delivered. Returning false drops the message — safe for bid
// submissions, which degrade to the neutral bid.
type AdmitFunc func(lane uint32, env wire.Envelope) bool

// Parking bounds: messages for lanes that are not open yet are buffered so
// that providers opening the same auction at slightly different times do
// not lose each other's early traffic. Beyond the bounds messages drop —
// bounded memory beats the reliable-channels idealisation under attack.
const (
	maxParkedPerLane = 256
	maxParkedTotal   = 4096
)

// laneInboxSize buffers a lane's inbound messages between Lane() and the
// session's handler installation (a few microseconds later); it also
// carries the parked backlog drained at open.
const laneInboxSize = maxParkedPerLane + 64

// Mux multiplexes wire.MaxLane+1 virtual connections (lanes) over one
// transport.Conn. Lane k's traffic carries k in the high bits of
// Tag.Instance; the mux shifts the lane in on send and strips it on
// receive, so each lane's user (a proto.Peer) sees plain block-local
// instances and stays lane-oblivious.
type Mux struct {
	conn transport.Conn
	self wire.NodeID

	// out is the send path: a transport.Coalescer over conn when the
	// transport can batch (all lanes' sends then coalesce per destination
	// peer into superframes), conn itself otherwise.
	out transport.Conn
	// co is out's coalescer, nil when the transport cannot batch.
	co *transport.Coalescer

	// lanes is copy-on-write: dispatch (the per-message hot path, possibly
	// many producer goroutines on a push transport) reads it with one atomic
	// load; mu guards mutation.
	lanes atomic.Pointer[map[uint32]*laneConn]
	admit atomic.Pointer[AdmitFunc]

	mu          sync.Mutex
	parked      map[uint32][]wire.Envelope
	parkedTotal int

	// parkedDropped counts envelopes dropped because parking overflowed —
	// the previously silent loss Market.Stats now surfaces.
	parkedDropped metrics.Counter
	// batchesIn / batchedEnvsIn count inbound superframes and the envelopes
	// they carried (receive-side occupancy).
	batchesIn     metrics.Counter
	batchedEnvsIn metrics.Counter

	closed   atomic.Bool
	done     chan struct{}
	loopDone chan struct{}
	once     sync.Once
}

// NewMux wraps conn. On a transport.PushConn inbound envelopes are
// dispatched to lanes directly in the producing goroutines (lanes then run
// in parallel); whole superframes are dispatched in ONE call with the lane
// fan-out inside (transport.PushBatchConn); otherwise a pump goroutine
// drains Recv. On a transport.BatchConn, sends from all lanes coalesce per
// destination peer into superframes.
func NewMux(conn transport.Conn) *Mux {
	m := &Mux{
		conn:     conn,
		self:     conn.Self(),
		parked:   make(map[uint32][]wire.Envelope),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	m.out = transport.Coalesce(conn)
	if co, ok := m.out.(*transport.Coalescer); ok {
		m.co = co
	}
	empty := make(map[uint32]*laneConn)
	m.lanes.Store(&empty)
	if pc, ok := conn.(transport.PushConn); ok {
		close(m.loopDone)
		pc.SetHandler(m.dispatch)
		if pbc, ok := conn.(transport.PushBatchConn); ok {
			pbc.SetBatchHandler(m.dispatchBatch)
		}
	} else {
		go m.pump()
	}
	return m
}

// MuxStats is a mux's traffic counters beyond the transport's own.
type MuxStats struct {
	// ParkedDropped counts envelopes dropped by parking overflow (lanes that
	// never opened, or a flood outpacing the bounds).
	ParkedDropped int64
	// Out is the outbound coalescing view: frames shipped, superframes among
	// them, envelopes carried. Zero when the transport cannot batch.
	Out transport.CoalesceStats
	// BatchesIn and BatchedEnvsIn count inbound superframes and the
	// envelopes they carried.
	BatchesIn     int64
	BatchedEnvsIn int64
}

// Stats returns the mux's counters.
func (m *Mux) Stats() MuxStats {
	st := MuxStats{
		ParkedDropped: m.parkedDropped.Load(),
		BatchesIn:     m.batchesIn.Load(),
		BatchedEnvsIn: m.batchedEnvsIn.Load(),
	}
	if m.co != nil {
		st.Out = m.co.Stats()
	}
	return st
}

// Self returns the underlying node ID (shared by every lane).
func (m *Mux) Self() wire.NodeID { return m.self }

// Health returns the attachment's failure-detector view when the
// underlying transport tracks one (a transport.ResilientConn does):
// per-peer liveness plus link-layer counters. ok is false on transports
// without health tracking.
func (m *Mux) Health() (peers []transport.PeerHealth, link transport.LinkStats, ok bool) {
	hr, isHR := m.conn.(transport.HealthReporter)
	if !isHR {
		return nil, transport.LinkStats{}, false
	}
	return hr.PeerHealth(), hr.LinkStats(), true
}

// SetAdmission installs the admission gate consulted for every inbound
// envelope (nil admits everything). The gate runs on the transport's
// producer goroutines and must be fast and concurrency-safe.
func (m *Mux) SetAdmission(gate AdmitFunc) {
	if gate == nil {
		m.admit.Store(nil)
		return
	}
	m.admit.Store(&gate)
}

// Lane opens lane and returns its virtual connection. Messages parked for
// the lane while it was closed are delivered first. Opening an open lane or
// a lane above wire.MaxLane is an error.
func (m *Mux) Lane(lane uint32) (transport.Conn, error) {
	if lane > wire.MaxLane {
		return nil, fmt.Errorf("market: lane %d out of range (max %d)", lane, wire.MaxLane)
	}
	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		return nil, transport.ErrClosed
	}
	old := *m.lanes.Load()
	if _, dup := old[lane]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("market: lane %d already open", lane)
	}
	lc := &laneConn{
		mux:   m,
		lane:  lane,
		inbox: make(chan wire.Envelope, laneInboxSize),
		done:  make(chan struct{}),
	}
	next := make(map[uint32]*laneConn, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[lane] = lc
	m.lanes.Store(&next)
	backlog := m.parked[lane]
	delete(m.parked, lane)
	m.parkedTotal -= len(backlog)
	m.mu.Unlock()
	for _, env := range backlog {
		lc.deliver(env)
	}
	return lc, nil
}

// closeLane detaches lane (laneConn.Close calls it). The underlying
// connection stays open for the other lanes.
func (m *Mux) closeLane(lane uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.lanes.Load()
	if _, ok := old[lane]; !ok {
		return
	}
	next := make(map[uint32]*laneConn, len(old)-1)
	for k, v := range old {
		if k != lane {
			next[k] = v
		}
	}
	m.lanes.Store(&next)
}

// Close shuts the mux and the underlying connection; every lane's pending
// Recv fails with transport.ErrClosed.
func (m *Mux) Close() error {
	var err error
	m.once.Do(func() {
		m.closed.Store(true)
		close(m.done)
		err = m.conn.Close()
		<-m.loopDone
		m.mu.Lock()
		lanes := *m.lanes.Load()
		empty := make(map[uint32]*laneConn)
		m.lanes.Store(&empty)
		m.parked = nil
		m.parkedTotal = 0
		m.mu.Unlock()
		for _, lc := range lanes {
			lc.markClosed()
		}
	})
	return err
}

// pump is the Recv fallback for non-push transports.
func (m *Mux) pump() {
	defer close(m.loopDone)
	ctx := context.Background()
	for {
		env, err := m.conn.Recv(ctx)
		if err != nil {
			return
		}
		m.dispatch(env)
	}
}

// dispatch routes one inbound envelope to its lane: strip the lane from the
// tag, consult the admission gate, hand the envelope to the lane (or park
// it if the lane has not opened yet).
func (m *Mux) dispatch(env wire.Envelope) {
	lane := wire.LaneOf(env.Tag.Instance)
	env.Tag.Instance = wire.LaneInstance(env.Tag.Instance)
	if gate := m.admit.Load(); gate != nil && !(*gate)(lane, env) {
		return
	}
	if lc, ok := (*m.lanes.Load())[lane]; ok {
		lc.deliver(env)
		return
	}
	m.park(lane, env)
}

// dispatchBatch routes one inbound superframe in the producing goroutine:
// one wakeup for the whole batch, with the lane fan-out inside. Consecutive
// envelopes for the same lane are handed to it as one run, so a lane whose
// user ingests batches (proto.Peer does) pays one dispatch hop per run
// instead of one per envelope. The mux owns the slice (transports hand
// ownership over) and filters admission-rejected envelopes in place.
func (m *Mux) dispatchBatch(envs []wire.Envelope) {
	m.batchesIn.Inc()
	m.batchedEnvsIn.Add(int64(len(envs)))
	gate := m.admit.Load()
	i := 0
	for i < len(envs) {
		lane := wire.LaneOf(envs[i].Tag.Instance)
		j := i
		for j < len(envs) && wire.LaneOf(envs[j].Tag.Instance) == lane {
			j++
		}
		run := envs[i:j]
		for k := range run {
			run[k].Tag.Instance = wire.LaneInstance(run[k].Tag.Instance)
		}
		if gate != nil {
			kept := run[:0]
			for _, env := range run {
				if (*gate)(lane, env) {
					kept = append(kept, env)
				}
			}
			run = kept
		}
		if len(run) > 0 {
			if lc, ok := (*m.lanes.Load())[lane]; ok {
				lc.deliverBatch(run)
			} else {
				for _, env := range run {
					m.park(lane, env)
				}
			}
		}
		i = j
	}
}

// park buffers an envelope for a lane that is not open (yet). Bounded: a
// lane that never opens costs at most maxParkedPerLane envelopes, the whole
// mux at most maxParkedTotal.
func (m *Mux) park(lane uint32, env wire.Envelope) {
	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		return
	}
	// Re-check under the lock: Lane() may have opened it concurrently (it
	// registers the lane and drains parked under the same lock).
	if lc, ok := (*m.lanes.Load())[lane]; ok {
		m.mu.Unlock()
		lc.deliver(env)
		return
	}
	if len(m.parked[lane]) >= maxParkedPerLane || m.parkedTotal >= maxParkedTotal {
		m.mu.Unlock()
		// Drop — bid drops degrade to neutral, control traffic is retried —
		// but never silently: Market.Stats surfaces the counter.
		m.parkedDropped.Inc()
		return
	}
	m.parked[lane] = append(m.parked[lane], env)
	m.parkedTotal++
	m.mu.Unlock()
}

// laneConn is one lane's virtual transport.Conn. Sends stamp the lane into
// the tag; receives get lane-stripped envelopes from the mux. Close
// detaches the lane only — the shared underlying connection stays up.
type laneConn struct {
	mux          *Mux
	lane         uint32
	handler      atomic.Pointer[transport.Handler]
	batchHandler atomic.Pointer[transport.BatchHandler]
	inbox        chan wire.Envelope

	closeOnce sync.Once
	done      chan struct{}
}

var (
	_ transport.Conn          = (*laneConn)(nil)
	_ transport.PushConn      = (*laneConn)(nil)
	_ transport.PushBatchConn = (*laneConn)(nil)
)

// Self returns the node ID shared by all lanes of the mux.
func (c *laneConn) Self() wire.NodeID { return c.mux.self }

// Lane returns the wire lane this virtual connection carries. proto.NewPeer
// detects it so every trace event of the lane's session is labelled with
// the auction it belongs to.
func (c *laneConn) Lane() uint32 { return c.lane }

// PeerDead forwards the transport's failure-detector verdict for id.
// proto.NewPeer detects it (like Lane) so a receive timeout on a crashed
// peer aborts as disconnect rather than plain timeout. Transports without
// health tracking report every peer alive.
func (c *laneConn) PeerDead(id wire.NodeID) bool {
	if hr, ok := c.mux.conn.(transport.HealthReporter); ok {
		return hr.PeerDead(id)
	}
	return false
}

// Send stamps the lane into env's tag and transmits it on the shared
// connection — through the mux's per-peer coalescer when the transport can
// batch, so concurrent sends from any lanes to the same peer leave as one
// superframe. A block-local instance wider than wire.InstanceBits cannot be
// represented next to a lane and is rejected (the caller's round fails
// loudly instead of silently corrupting another lane's traffic). After
// Mux.Close every send fails with ErrMuxClosed; a lane closed on its own
// keeps returning transport.ErrClosed.
func (c *laneConn) Send(env wire.Envelope) error {
	if c.mux.closed.Load() {
		return ErrMuxClosed
	}
	select {
	case <-c.done:
		return transport.ErrClosed
	default:
	}
	if env.Tag.Instance > wire.MaxInstance {
		return fmt.Errorf("market: instance %d overflows lane encoding (max %d)",
			env.Tag.Instance, wire.MaxInstance)
	}
	env.Tag.Instance = wire.JoinLane(c.lane, env.Tag.Instance)
	err := c.mux.out.Send(env)
	if err != nil && c.mux.closed.Load() {
		// The send raced Mux.Close; name the real cause instead of whatever
		// state the half-torn-down lane table produced.
		return ErrMuxClosed
	}
	return err
}

// Recv blocks for the lane's next envelope.
func (c *laneConn) Recv(ctx context.Context) (wire.Envelope, error) {
	select {
	case env := <-c.inbox:
		return env, nil
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-c.done:
		select {
		case env := <-c.inbox:
			return env, nil
		default:
			return wire.Envelope{}, transport.ErrClosed
		}
	}
}

// SetHandler switches the lane to push delivery (see transport.PushConn).
func (c *laneConn) SetHandler(h transport.Handler) {
	c.handler.Store(&h)
	c.drainInto(&h)
}

// SetBatchHandler installs a handler receiving whole same-lane runs of a
// superframe in one call each (see transport.PushBatchConn).
func (c *laneConn) SetBatchHandler(h transport.BatchHandler) {
	c.batchHandler.Store(&h)
}

func (c *laneConn) drainInto(h *transport.Handler) {
	for {
		select {
		case env := <-c.inbox:
			(*h)(env)
		default:
			return
		}
	}
}

// deliver hands an inbound envelope to the lane — directly into the handler
// in push mode, into the inbox otherwise (same handoff discipline as
// transport.MemConn.push).
func (c *laneConn) deliver(env wire.Envelope) {
	if h := c.handler.Load(); h != nil {
		select {
		case <-c.done:
			return
		default:
		}
		(*h)(env)
		return
	}
	select {
	case <-c.done:
		return
	case c.inbox <- env:
	default:
		// Inbox full before any handler was installed: drop. Sessions
		// install their handler at open, so this only guards a pathological
		// flood in the microseconds between Lane() and OpenSession.
		return
	}
	if h := c.handler.Load(); h != nil {
		c.drainInto(h)
	}
}

// deliverBatch hands a same-lane run of an inbound superframe to the lane —
// one call into the batch handler when installed (proto.Peer's batch
// ingest), envelope by envelope otherwise.
func (c *laneConn) deliverBatch(envs []wire.Envelope) {
	if bh := c.batchHandler.Load(); bh != nil {
		select {
		case <-c.done:
			return
		default:
		}
		(*bh)(envs)
		return
	}
	for _, env := range envs {
		c.deliver(env)
	}
}

// Close detaches the lane from the mux. Idempotent; the shared underlying
// connection is not touched (Mux.Close owns it).
func (c *laneConn) Close() error {
	c.closeOnce.Do(func() {
		c.mux.closeLane(c.lane)
		close(c.done)
	})
	return nil
}

// markClosed is Mux.Close's teardown path (the lane map is already empty).
func (c *laneConn) markClosed() {
	c.closeOnce.Do(func() { close(c.done) })
}
