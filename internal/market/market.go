package market

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/core"
	"distauction/internal/gateway"
	"distauction/internal/ledger"
	"distauction/internal/metrics"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// ErrMarketClosed reports use of a closed Market.
var ErrMarketClosed = errors.New("market: closed")

// ErrUnknownAuction reports an operation on an auction that is not open.
var ErrUnknownAuction = errors.New("market: unknown auction")

// ErrLaneCollision reports two distinct auction names hashing to the same
// lane. The caller resolves it by setting an explicit AuctionSpec.Lane —
// on every provider, since lane assignment must be agreed.
var ErrLaneCollision = errors.New("market: lane collision")

// DefaultAdmissionWindow is how many rounds ahead of the last completed
// round bids are admitted when neither the market nor the auction spec says
// otherwise. It comfortably covers the default pipeline depth while keeping
// a flooding bidder's buffered footprint bounded.
const DefaultAdmissionWindow = 8

// DefaultSweepEvery is the default enforcement-sweep cadence: every N
// completed rounds of an enforced auction, expired reservations on its
// gateways are reclaimed eagerly (long-running markets must not accumulate
// dead reservations between externally-triggered sweeps).
const DefaultSweepEvery = 32

// LaneForName deterministically assigns a lane in [1, wire.MaxLane] to an
// auction name (FNV-1a folded into the lane space; lane 0 — the default
// lane of non-market traffic — is never returned). Every provider computes
// the same lane from the same name, so independently-configured markets
// agree on lane assignment with no coordination. Distinct names may
// collide; OpenAuction then fails with ErrLaneCollision and the deployment
// pins an explicit lane for one of them.
func LaneForName(name string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return h.Sum32()%wire.MaxLane + 1
}

// EnforceTarget wires an auction's accepted outcomes to the external
// mechanism of §3.2: payments settle on Ledger (atomically, ⊥ pays
// nothing), the allocation becomes reservations on Gateways. Different
// auctions may share a Ledger and even Gateways — enforcement is
// internally locked — or own disjoint sets.
type EnforceTarget struct {
	// Ledger is the settlement ledger (required).
	Ledger *ledger.Ledger
	// Gateways are index-aligned with the auction's provider axis
	// (required, one per provider).
	Gateways []*gateway.Gateway
	// Escrow is the account users pay into and providers are paid from.
	Escrow wire.NodeID
	// TTL is the reservation lifetime (one auction period).
	TTL time.Duration
}

// AuctionSpec describes one auction of the catalog. All providers of a
// deployment must open the auction with an equivalent spec (same name,
// lane, users, and session options), exactly as all providers of a single
// auction must agree on its configuration.
type AuctionSpec struct {
	// Name identifies the auction in the catalog ("gateway-7",
	// "band-5GHz", "vm-large"…). Required, unique within the market.
	Name string
	// Lane pins the auction's wire lane. 0 (the default) derives the lane
	// from Name via LaneForName; set it explicitly only to resolve a
	// ErrLaneCollision, and identically on every provider.
	Lane uint32
	// Users are the auction's bidders (consensus-slot aligned, like
	// core.Config.Users). Required.
	Users []wire.NodeID
	// Providers pins this auction's committee: the provider subset that
	// runs its session. Empty means the market's default fleet. The
	// market's own node must be a member, and — like Name/Lane/Users —
	// every committee member must open the auction with the same committee.
	// Distinct auctions of one market may run on distinct committees; this
	// is what lets a federation place many provider committees behind one
	// catalog.
	Providers []wire.NodeID
	// StartRound is the auction's first round (0 means 1). It is spelled
	// here rather than in Options because the admission gate must know it.
	StartRound uint64
	// AdmissionWindow overrides the market's admission window for this
	// auction (0 = market default): how many rounds ahead bids are admitted.
	AdmissionWindow int
	// Options configure the auction's session: mechanism, k, bid window,
	// round cadence (pipeline depth), round limit… (core.WithStartRound in
	// Options is overridden by StartRound above.)
	Options []core.SessionOption
	// Enforce, if non-nil, applies accepted outcomes to gateways and a
	// ledger. Nil means outcomes are only streamed (OnOutcome / stats).
	Enforce *EnforceTarget
}

// settings is the target of the market's functional options.
type settings struct {
	admissionWindow int
	sweepEvery      int
	onOutcome       func(auction string, out core.RoundOutcome)

	errs []error
}

// Option configures a Market at Open time. Like session options, bad
// values surface as one joined error from Open, never a panic.
type Option func(*settings)

// WithAdmissionWindow sets the default number of rounds ahead of the last
// completed round for which bids are admitted (per auction; specs can
// override it).
func WithAdmissionWindow(n int) Option {
	return func(s *settings) {
		if n < 1 {
			s.errs = append(s.errs, fmt.Errorf("%w: admission window must be >= 1 (got %d)", core.ErrConfig, n))
			return
		}
		s.admissionWindow = n
	}
}

// WithSweepEvery sets the enforcement sweep cadence: every n completed
// rounds of an enforced auction its gateways are swept for expired
// reservations (0 disables the hook).
func WithSweepEvery(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.errs = append(s.errs, fmt.Errorf("%w: negative sweep cadence (%d)", core.ErrConfig, n))
			return
		}
		s.sweepEvery = n
	}
}

// WithOnOutcome installs a callback invoked for every round outcome of
// every auction (after enforcement), from the auction's consumer
// goroutine. It must not block: it runs on the outcome path and a slow
// callback backpressures that auction's rounds.
func WithOnOutcome(f func(auction string, out core.RoundOutcome)) Option {
	return func(s *settings) { s.onOutcome = f }
}

// Market multiplexes many named auctions over one shared transport
// attachment of a provider node. Each auction runs its own core.Session on
// its own wire lane: rounds of different auctions pipeline independently
// and a ⊥ in one auction never touches another.
type Market struct {
	mux       *Mux
	providers []wire.NodeID
	cfg       settings
	started   time.Time

	// lanes is the admission hot path's lane → (committee, gate) index
	// (copy-on-write, read per inbound envelope without locks).
	lanes atomic.Pointer[map[uint32]*laneEntry]
	// universe is every provider ID this market may hear from on any lane:
	// the default fleet plus every per-auction committee and every
	// RegisterProviders addition. Traffic from the universe may park on a
	// not-yet-open lane; anything else is dropped at the door.
	universe atomic.Pointer[map[wire.NodeID]struct{}]

	mu     sync.Mutex
	byName map[string]*Auction
	byLane map[uint32]*Auction
	closed bool
	wg     sync.WaitGroup

	swept metrics.Counter // expired reservations reclaimed by sweep hooks
}

// laneEntry is one open lane's admission state: the committee whose
// protocol traffic passes unconditionally, and the bid gate for everyone
// else.
type laneEntry struct {
	committee map[wire.NodeID]struct{}
	gate      *gate
}

// Open starts an empty market for a provider node over conn. conn must be
// the node's single attachment to the deployment's network; every auction
// subsequently opened shares it. The provider set is the fleet that runs
// every auction of this market.
func Open(conn transport.Conn, providers []wire.NodeID, opts ...Option) (*Market, error) {
	cfg := settings{
		admissionWindow: DefaultAdmissionWindow,
		sweepEvery:      DefaultSweepEvery,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(cfg.errs) > 0 {
		return nil, errors.Join(cfg.errs...)
	}
	if len(providers) == 0 {
		return nil, fmt.Errorf("%w: market needs providers", core.ErrConfig)
	}
	set := make(map[wire.NodeID]struct{}, len(providers))
	for _, p := range providers {
		set[p] = struct{}{}
	}
	if _, ok := set[conn.Self()]; !ok {
		return nil, fmt.Errorf("%w: node %d is not a configured provider", core.ErrConfig, conn.Self())
	}
	m := &Market{
		mux:       NewMux(conn),
		providers: append([]wire.NodeID(nil), providers...),
		cfg:       cfg,
		started:   time.Now(),
		byName:    make(map[string]*Auction),
		byLane:    make(map[uint32]*Auction),
	}
	empty := make(map[uint32]*laneEntry)
	m.lanes.Store(&empty)
	m.universe.Store(&set)
	m.mux.SetAdmission(m.admitEnvelope)
	return m, nil
}

// RegisterProviders widens the market's provider universe: traffic from
// these nodes may park on lanes whose auction is not open here yet (the
// open race every deployment has). OpenAuction registers its committee
// automatically; call this ahead of time when committee traffic can arrive
// before the local OpenAuction — a federation does, for every committee its
// node serves.
func (m *Market) RegisterProviders(ids ...wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerProvidersLocked(ids)
}

// registerProvidersLocked copy-on-writes the universe. Caller holds m.mu.
func (m *Market) registerProvidersLocked(ids []wire.NodeID) {
	old := *m.universe.Load()
	missing := 0
	for _, id := range ids {
		if _, ok := old[id]; !ok {
			missing++
		}
	}
	if missing == 0 {
		return
	}
	next := make(map[wire.NodeID]struct{}, len(old)+missing)
	for k, v := range old {
		next[k] = v
	}
	for _, id := range ids {
		next[id] = struct{}{}
	}
	m.universe.Store(&next)
}

// Self returns the provider's node ID.
func (m *Market) Self() wire.NodeID { return m.mux.Self() }

// Providers returns the market's provider fleet (shared; do not modify).
func (m *Market) Providers() []wire.NodeID { return m.providers }

// admitEnvelope is the mux's admission gate. On an open lane, committee
// traffic (protocol blocks, own-bid broadcasts, aborts) always passes and
// bidder traffic passes only as a bid submission admitted by the auction's
// gate — so bidders cannot inject protocol or control messages into market
// lanes, bid ingest beyond round capacity is dropped at the door, and one
// auction's committee cannot reach into another committee's lane. On a lane
// not open here yet, traffic from the provider universe may park for the
// imminent OpenAuction; everything else is dropped.
func (m *Market) admitEnvelope(lane uint32, env wire.Envelope) bool {
	if e := (*m.lanes.Load())[lane]; e != nil {
		if _, ok := e.committee[env.From]; ok {
			return true
		}
		if env.Tag.Block != wire.BlockBidSubmit {
			return false
		}
		return e.gate.admit(env.From, env.Tag.Round)
	}
	_, ok := (*m.universe.Load())[env.From]
	return ok
}

// OpenAuction adds an auction to the catalog and starts its session.
// Every provider of the market must open it with an equivalent spec.
func (m *Market) OpenAuction(spec AuctionSpec) (*Auction, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("%w: auction needs a name", core.ErrConfig)
	}
	lane := spec.Lane
	if lane == 0 {
		lane = LaneForName(spec.Name)
	}
	if lane > wire.MaxLane {
		return nil, fmt.Errorf("%w: lane %d out of range (max %d)", core.ErrConfig, lane, wire.MaxLane)
	}
	startRound := spec.StartRound
	if startRound == 0 {
		startRound = 1
	}
	window := spec.AdmissionWindow
	if window == 0 {
		window = m.cfg.admissionWindow
	}
	committee := m.providers
	if len(spec.Providers) > 0 {
		committee = append([]wire.NodeID(nil), spec.Providers...)
		member := false
		for _, p := range committee {
			if p == m.Self() {
				member = true
				break
			}
		}
		if !member {
			return nil, fmt.Errorf("%w: auction %q: node %d is not in its committee",
				core.ErrConfig, spec.Name, m.Self())
		}
	}
	committeeSet := make(map[wire.NodeID]struct{}, len(committee))
	for _, p := range committee {
		committeeSet[p] = struct{}{}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrMarketClosed
	}
	if _, dup := m.byName[spec.Name]; dup {
		return nil, fmt.Errorf("market: auction %q already open", spec.Name)
	}
	if other, dup := m.byLane[lane]; dup {
		return nil, fmt.Errorf("%w: auctions %q and %q both map to lane %d (pin an explicit Lane on every provider)",
			ErrLaneCollision, other.name, spec.Name, lane)
	}

	// Make the committee parkable before the session exists: its peers'
	// first envelopes can already be in flight.
	m.registerProvidersLocked(committee)

	lc, err := m.mux.Lane(lane)
	if err != nil {
		return nil, err
	}
	opts := make([]core.SessionOption, 0, len(spec.Options)+1)
	opts = append(opts, spec.Options...)
	opts = append(opts, core.WithStartRound(startRound))
	sess, err := core.OpenSession(lc, committee, spec.Users, opts...)
	if err != nil {
		_ = lc.Close()
		return nil, fmt.Errorf("market: auction %q: %w", spec.Name, err)
	}

	a := &Auction{
		market:    m,
		name:      spec.Name,
		lane:      lane,
		session:   sess,
		users:     append([]wire.NodeID(nil), spec.Users...),
		providers: committee,
		gate:      newGate(spec.Users, startRound, window, lane, m.Self()),
		meter:     metrics.NewMeter(nil),
		done:      make(chan struct{}),
	}
	if spec.Enforce != nil {
		a.enforcer = &gateway.Enforcer{
			Ledger:   spec.Enforce.Ledger,
			Gateways: spec.Enforce.Gateways,
			Escrow:   spec.Enforce.Escrow,
			TTL:      spec.Enforce.TTL,
		}
	}
	m.byName[a.name] = a
	m.byLane[a.lane] = a
	m.storeLaneLocked(a.lane, &laneEntry{committee: committeeSet, gate: a.gate})
	m.wg.Add(1)
	go a.consume()
	return a, nil
}

// storeLaneLocked copy-on-writes the admission index. Caller holds m.mu.
func (m *Market) storeLaneLocked(lane uint32, e *laneEntry) {
	old := *m.lanes.Load()
	next := make(map[uint32]*laneEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if e == nil {
		delete(next, lane)
	} else {
		next[lane] = e
	}
	m.lanes.Store(&next)
}

// Auction returns the named open auction.
func (m *Market) Auction(name string) (*Auction, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byName[name]
	return a, ok
}

// Names lists the open auctions, sorted.
func (m *Market) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.byName))
	for name := range m.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CloseAuction removes the auction from the catalog and stops it hard:
// rounds in flight end in ⊥ (broadcast loudly, as Session.Close does) and
// the lane is freed for reuse.
func (m *Market) CloseAuction(name string) error {
	m.mu.Lock()
	a, ok := m.byName[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAuction, name)
	}
	return m.closeAuction(a)
}

func (m *Market) closeAuction(a *Auction) error {
	a.gate.drain() // stop admitting before the teardown races in
	err := a.session.Close()
	<-a.done // consumer drains the outcome stream to exhaustion
	m.mu.Lock()
	if m.byName[a.name] == a {
		delete(m.byName, a.name)
		delete(m.byLane, a.lane)
		m.storeLaneLocked(a.lane, nil)
	}
	m.mu.Unlock()
	return err
}

// DrainAuction gracefully retires an auction: the admission gate closes
// immediately (new bids are dropped), the market waits — bounded by ctx —
// until every round holding an admitted bid has emitted its outcome, then
// closes the auction. Rounds past the last admitted bid abort as ⊥ with
// nobody listening. On ctx expiry the auction is closed hard anyway and
// ctx's error returned.
func (m *Market) DrainAuction(ctx context.Context, name string) error {
	m.mu.Lock()
	a, ok := m.byName[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAuction, name)
	}
	target := a.gate.drain()
	var waitErr error
	poll := time.NewTicker(5 * time.Millisecond)
	defer poll.Stop()
wait:
	for a.lastEmitted.Load() < target {
		select {
		case <-a.done: // outcome stream ended on its own (round limit, close)
			break wait
		case <-ctx.Done():
			waitErr = ctx.Err()
			break wait
		case <-poll.C:
		}
	}
	if err := m.closeAuction(a); err != nil && waitErr == nil {
		waitErr = err
	}
	return waitErr
}

// Close shuts the whole market: every auction is closed (in-flight rounds
// abort loudly), then the shared connection is released.
func (m *Market) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return m.mux.Close()
	}
	m.closed = true
	auctions := make([]*Auction, 0, len(m.byName))
	for _, a := range m.byName {
		auctions = append(auctions, a)
	}
	m.mu.Unlock()
	var firstErr error
	for _, a := range auctions {
		if err := m.closeAuction(a); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.wg.Wait()
	if err := m.mux.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Auction is one open auction of the catalog (the provider-side handle).
type Auction struct {
	market    *Market
	name      string
	lane      uint32
	session   *core.Session
	users     []wire.NodeID
	providers []wire.NodeID // this auction's committee
	gate      *gate

	enforcer *gateway.Enforcer

	rounds      metrics.Counter
	accepted    metrics.Counter
	aborted     metrics.Counter
	enforceErrs metrics.Counter
	meter       *metrics.Meter
	lastEmitted atomic.Uint64

	// latency is the always-on outcome-latency histogram (nanoseconds,
	// bid collection through delivery); abortCodes break ⊥ rounds down by
	// typed cause. Both are lock-free and recorded on the outcome path
	// regardless of the trace flag.
	latency    metrics.Histogram
	abortCodes [proto.NumAbortCodes]metrics.Counter

	done chan struct{}
}

// Name returns the auction's catalog name.
func (a *Auction) Name() string { return a.name }

// Lane returns the auction's wire lane.
func (a *Auction) Lane() uint32 { return a.lane }

// Providers returns the auction's committee (shared; do not modify).
func (a *Auction) Providers() []wire.NodeID { return a.providers }

// Session exposes the underlying session (own-bid updates via SetBid,
// raw-message scripting via Session.Peer in tests).
func (a *Auction) Session() *core.Session { return a.session }

// consume is the auction's outcome loop: it meters rounds, advances the
// admission window, fans accepted outcomes out to the enforcement target,
// sweeps expired reservations on cadence and forwards to the market's
// OnOutcome callback.
func (a *Auction) consume() {
	defer a.market.wg.Done()
	defer close(a.done)
	sweepEvery := a.market.cfg.sweepEvery
	sinceSweep := 0
	for out := range a.session.Outcomes() {
		// The round is complete the moment it emerges: slide the admission
		// window first, so enforcement latency never starves honest bidders
		// running at the pipeline's natural lookahead.
		a.gate.roundDone(out.Round)
		if out.Err == nil && a.enforcer != nil {
			if err := a.enforcer.Enforce(out.Round, out.Outcome, a.users, a.providers); err != nil {
				a.enforceErrs.Inc()
			}
		}
		a.lastEmitted.Store(out.Round)
		if a.enforcer != nil && sweepEvery > 0 {
			if sinceSweep++; sinceSweep >= sweepEvery {
				sinceSweep = 0
				a.market.swept.Add(int64(a.enforcer.Sweep()))
			}
		}
		if cb := a.market.cfg.onOutcome; cb != nil {
			cb(a.name, out)
		}
		// Counters move last, rounds last of all: once Stats reports a round
		// counted, its enforcement, sweep and callback have all completed.
		a.latency.RecordDuration(out.Latency)
		if out.Err != nil {
			a.aborted.Inc()
			a.abortCodes[proto.AbortCodeOf(out.Err)].Inc()
		} else {
			a.accepted.Inc()
		}
		a.meter.Mark(1)
		a.rounds.Inc()
	}
}

// AuctionSnapshot is one auction's counters at a point in time.
type AuctionSnapshot struct {
	Name         string
	Lane         uint32
	Rounds       int64   // outcomes emitted
	Accepted     int64   // non-⊥ outcomes
	Aborted      int64   // ⊥ outcomes
	RoundsPerSec float64 // average since the auction opened
	LastRound    uint64  // highest emitted round
	BidsAdmitted int64
	BidsDropped  int64
	QueueDepth   int // admitted bids not yet resolved by a completed round
	EnforceErrs  int64

	// Latency is the auction's outcome-latency histogram (nanoseconds);
	// query p50/p99/p999 via QuantileDuration.
	Latency metrics.HistogramSnapshot
	// AbortCodes breaks Aborted down by typed cause, indexed by
	// proto.AbortCode.
	AbortCodes [proto.NumAbortCodes]int64
}

// Snapshot aggregates the whole market plus its per-auction breakdown.
type Snapshot struct {
	Open         int // auctions currently open
	Rounds       int64
	Accepted     int64
	Aborted      int64
	RoundsPerSec float64 // aggregate average since the market opened
	BidsAdmitted int64
	BidsDropped  int64
	QueueDepth   int
	EnforceErrs  int64
	Swept        int64 // expired reservations reclaimed by sweep hooks

	// ParkedDropped counts envelopes the mux dropped on parking overflow
	// (previously a silent loss).
	ParkedDropped int64
	// FramesSent / SuperframesSent count outbound frames shipped by the
	// mux's per-peer coalescer and the superframes (>1 envelope) among
	// them; EnvelopesSent the envelopes they carried. Zero when the
	// transport cannot batch.
	FramesSent      int64
	SuperframesSent int64
	EnvelopesSent   int64
	// BatchOccupancy is the average envelopes per outbound frame — the
	// amortisation factor superframe batching is buying (1.0 = no win).
	BatchOccupancy float64

	// Runtime is the process-wide heap/GC/goroutine view at snapshot time.
	// The steady-state discipline shows up here: flat Goroutines across
	// rounds, and TotalAlloc growing by the pooled-path budget only.
	Runtime metrics.RuntimeStats

	// PeerHealth is the attachment's failure-detector table (alive /
	// suspect / dead per peer) and Link its ARQ counters — resends,
	// reconnects, dups dropped by seq. Both are zero on transports without
	// a resilience layer.
	PeerHealth []transport.PeerHealth
	Link       transport.LinkStats

	// Latency merges every auction's outcome-latency histogram; AbortCodes
	// merges their per-cause ⊥ breakdowns (indexed by proto.AbortCode).
	Latency    metrics.HistogramSnapshot
	AbortCodes [proto.NumAbortCodes]int64

	Auctions []AuctionSnapshot
}

// snapshot captures one auction.
func (a *Auction) snapshot() AuctionSnapshot {
	as := AuctionSnapshot{
		Name:         a.name,
		Lane:         a.lane,
		Rounds:       a.rounds.Load(),
		Accepted:     a.accepted.Load(),
		Aborted:      a.aborted.Load(),
		RoundsPerSec: a.meter.Rate(),
		LastRound:    a.lastEmitted.Load(),
		BidsAdmitted: a.gate.admitted.Load(),
		BidsDropped:  a.gate.dropped.Load(),
		QueueDepth:   a.gate.depth(),
		EnforceErrs:  a.enforceErrs.Load(),
		Latency:      a.latency.Snapshot(),
	}
	for c := range as.AbortCodes {
		as.AbortCodes[c] = a.abortCodes[c].Load()
	}
	return as
}

// Stats returns the market-wide counters and the per-auction breakdown
// (auctions sorted by name).
func (m *Market) Stats() Snapshot {
	m.mu.Lock()
	auctions := make([]*Auction, 0, len(m.byName))
	for _, a := range m.byName {
		auctions = append(auctions, a)
	}
	m.mu.Unlock()
	sort.Slice(auctions, func(i, j int) bool { return auctions[i].name < auctions[j].name })
	snap := Snapshot{Open: len(auctions), Swept: m.swept.Load(), Runtime: metrics.ReadRuntime()}
	mux := m.mux.Stats()
	snap.ParkedDropped = mux.ParkedDropped
	snap.FramesSent = mux.Out.Frames
	snap.SuperframesSent = mux.Out.Superframes
	snap.EnvelopesSent = mux.Out.Envelopes
	snap.BatchOccupancy = mux.Out.Occupancy()
	if peers, link, ok := m.mux.Health(); ok {
		snap.PeerHealth = peers
		snap.Link = link
	}
	for _, a := range auctions {
		as := a.snapshot()
		snap.Auctions = append(snap.Auctions, as)
		snap.Rounds += as.Rounds
		snap.Accepted += as.Accepted
		snap.Aborted += as.Aborted
		snap.BidsAdmitted += as.BidsAdmitted
		snap.BidsDropped += as.BidsDropped
		snap.QueueDepth += as.QueueDepth
		snap.EnforceErrs += as.EnforceErrs
		snap.Latency.Merge(as.Latency)
		for c := range as.AbortCodes {
			snap.AbortCodes[c] += as.AbortCodes[c]
		}
	}
	if elapsed := time.Since(m.started).Seconds(); elapsed > 0 {
		snap.RoundsPerSec = float64(snap.Rounds) / elapsed
	}
	return snap
}
