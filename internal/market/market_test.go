package market_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/gateway"
	"distauction/internal/ledger"
	"distauction/internal/market"
	"distauction/internal/transport"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

const testTimeout = 2 * time.Minute

// testDeployment is a hub with m provider markets and helpers to open
// auctions and drive bidders.
type testDeployment struct {
	t         *testing.T
	hub       *transport.Hub
	providers []wire.NodeID
	markets   []*market.Market
}

// newDeployment attaches m providers to a zero-latency hub and opens one
// market per provider. optsFor customises one provider's market options
// (nil = defaults).
func newDeployment(t *testing.T, m int, optsFor func(i int) []market.Option) *testDeployment {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	providers := make([]wire.NodeID, m)
	for i := range providers {
		providers[i] = wire.NodeID(i + 1)
	}
	d := &testDeployment{t: t, hub: hub, providers: providers}
	for i, id := range providers {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		var opts []market.Option
		if optsFor != nil {
			opts = optsFor(i)
		}
		mk, err := market.Open(conn, providers, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mk.Close() })
		d.markets = append(d.markets, mk)
	}
	return d
}

// openAuction opens the same auction on every provider market.
// extraFor adds per-provider spec tweaks (e.g. the enforce target on one).
func (d *testDeployment) openAuction(name string, users []wire.NodeID, rounds int,
	inst workload.DoubleAuctionInstance, extraFor func(i int, spec *market.AuctionSpec)) {
	d.t.Helper()
	for i, mk := range d.markets {
		spec := market.AuctionSpec{
			Name:  name,
			Users: users,
			Options: []core.SessionOption{
				core.WithK(1),
				core.WithMechanismName("double"),
				core.WithBidWindow(10 * time.Second),
				core.WithRoundTimeout(testTimeout),
				core.WithRoundLimit(uint64(rounds)),
				core.WithOutcomeBuffer(rounds),
				core.WithProviderBid(inst.Providers[i]),
			},
		}
		if extraFor != nil {
			extraFor(i, &spec)
		}
		if _, err := mk.OpenAuction(spec); err != nil {
			d.t.Fatalf("open auction %q on provider %d: %v", name, i, err)
		}
	}
}

// runBidders joins every user to the auction, submits bids for all rounds
// up front and returns each round's outcome as seen by the first bidder
// (unanimity means any bidder's view works).
func (d *testDeployment) runBidders(name string, users []wire.NodeID, rounds int,
	inst workload.DoubleAuctionInstance) []core.RoundOutcome {
	d.t.Helper()
	type result struct {
		outs []core.RoundOutcome
		err  error
	}
	results := make([]result, len(users))
	var wg sync.WaitGroup
	for i, id := range users {
		conn, err := d.hub.Attach(id)
		if err != nil {
			d.t.Fatal(err)
		}
		mb, err := market.NewBidder(conn, d.providers)
		if err != nil {
			d.t.Fatal(err)
		}
		d.t.Cleanup(func() { mb.Close() })
		s, err := mb.Join(name,
			core.WithRoundLimit(uint64(rounds)),
			core.WithOutcomeBuffer(rounds),
			core.WithRoundTimeout(testTimeout))
		if err != nil {
			d.t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *core.BidderSession) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				if err := s.Submit(uint64(r), inst.Users[i]); err != nil {
					results[i].err = err
					return
				}
			}
			for out := range s.Outcomes() {
				results[i].outs = append(results[i].outs, out)
			}
		}(i, s)
	}
	wg.Wait()
	for i, res := range results {
		if res.err != nil {
			d.t.Fatalf("bidder %d: %v", i, res.err)
		}
		if len(res.outs) != rounds {
			d.t.Fatalf("bidder %d: saw %d of %d rounds", i, len(res.outs), rounds)
		}
	}
	return results[0].outs
}

func userRange(base, n int) []wire.NodeID {
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(base + i)
	}
	return ids
}

func TestLaneForNameDeterministicAndInRange(t *testing.T) {
	a, b := market.LaneForName("gateway-7"), market.LaneForName("gateway-7")
	if a != b {
		t.Fatalf("lane not deterministic: %d vs %d", a, b)
	}
	if a < 1 || a > wire.MaxLane {
		t.Fatalf("lane %d out of range [1,%d]", a, wire.MaxLane)
	}
	if market.LaneForName("gateway-7") == market.LaneForName("band-5GHz") {
		t.Fatalf("suspicious collision between unrelated names")
	}
}

func TestMarketTwoAuctionsBothComplete(t *testing.T) {
	const rounds, n = 3, 3
	d := newDeployment(t, 3, nil)
	alphaUsers, betaUsers := userRange(1001, n), userRange(2001, n)
	alphaInst := workload.NewDoubleAuction(1, n, 3)
	betaInst := workload.NewDoubleAuction(2, n, 3)
	d.openAuction("alpha", alphaUsers, rounds, alphaInst, nil)
	d.openAuction("beta", betaUsers, rounds, betaInst, nil)

	var wg sync.WaitGroup
	var alphaOuts, betaOuts []core.RoundOutcome
	wg.Add(2)
	go func() { defer wg.Done(); alphaOuts = d.runBidders("alpha", alphaUsers, rounds, alphaInst) }()
	go func() { defer wg.Done(); betaOuts = d.runBidders("beta", betaUsers, rounds, betaInst) }()
	wg.Wait()

	for r, out := range alphaOuts {
		if out.Err != nil {
			t.Fatalf("alpha round %d: %v", r+1, out.Err)
		}
	}
	for r, out := range betaOuts {
		if out.Err != nil {
			t.Fatalf("beta round %d: %v", r+1, out.Err)
		}
	}

	// Market counters converge once the provider-side consumers drain.
	waitForRounds(t, d.markets[0], 2*rounds)
	snap := d.markets[0].Stats()
	if snap.Open != 2 || snap.Accepted != 2*rounds || snap.Aborted != 0 {
		t.Fatalf("unexpected stats: %+v", snap)
	}
	if snap.BidsAdmitted != int64(2*rounds*n) {
		t.Fatalf("admitted %d bids, want %d", snap.BidsAdmitted, 2*rounds*n)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after completion", snap.QueueDepth)
	}
}

func waitForRounds(t *testing.T, mk *market.Market, rounds int) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for {
		if snap := mk.Stats(); snap.Rounds >= int64(rounds) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("market never reached %d rounds: %+v", rounds, mk.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOpenAuctionValidation(t *testing.T) {
	d := newDeployment(t, 3, nil)
	mk := d.markets[0]
	users := userRange(1001, 2)
	inst := workload.NewDoubleAuction(1, 2, 3)

	if _, err := mk.OpenAuction(market.AuctionSpec{Users: users}); err == nil {
		t.Fatal("no error for empty name")
	}
	spec := market.AuctionSpec{
		Name: "pinned", Lane: 7, Users: users,
		Options: []core.SessionOption{
			core.WithK(1), core.WithMechanismName("double"),
			core.WithProviderBid(inst.Providers[0]),
		},
	}
	if _, err := mk.OpenAuction(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := mk.OpenAuction(spec); err == nil {
		t.Fatal("no error for duplicate name")
	}
	other := spec
	other.Name = "other"
	if _, err := mk.OpenAuction(other); !errors.Is(err, market.ErrLaneCollision) {
		t.Fatalf("want ErrLaneCollision, got %v", err)
	}
	other.Lane = 8
	if _, err := mk.OpenAuction(other); err != nil {
		t.Fatalf("explicit lane should resolve the collision: %v", err)
	}
	// A session-option failure must not leak the lane.
	bad := market.AuctionSpec{
		Name: "bad", Lane: 9, Users: users,
		Options: []core.SessionOption{core.WithK(-1), core.WithMechanismName("double")},
	}
	if _, err := mk.OpenAuction(bad); err == nil {
		t.Fatal("no error for bad session options")
	}
	bad.Options = []core.SessionOption{
		core.WithK(1), core.WithMechanismName("double"),
		core.WithProviderBid(inst.Providers[0]),
	}
	if _, err := mk.OpenAuction(bad); err != nil {
		t.Fatalf("lane 9 should be free after the failed open: %v", err)
	}
}

// TestAdmissionBackpressureAndFairShare covers the bidder-facing front
// end: unknown senders and out-of-window rounds are dropped at the door,
// in-window bids are admitted once per sender.
func TestAdmissionBackpressureAndFairShare(t *testing.T) {
	const n = 2
	d := newDeployment(t, 3, func(int) []market.Option {
		return []market.Option{market.WithAdmissionWindow(3)}
	})
	users := userRange(1001, n)
	inst := workload.NewDoubleAuction(1, n, 3)
	// Long bid window: round 1 stays open (nobody submits round-1 bids), so
	// the gate's window [1, 4) stays put while we probe it.
	d.openAuction("gated", users, 1, inst, nil)

	conn, err := d.hub.Attach(users[0])
	if err != nil {
		t.Fatal(err)
	}
	mb, err := market.NewBidder(conn, d.providers)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	s, err := mb.Join("gated", core.WithRoundLimit(1), core.WithRoundTimeout(testTimeout))
	if err != nil {
		t.Fatal(err)
	}

	// Out of window: round 100 with window [1,4).
	if err := s.Submit(100, inst.Users[0]); err != nil {
		t.Fatal(err)
	}
	waitForDropped(t, d.markets[0], 1)

	// Unknown sender: a node outside the auction's user set.
	strangerConn, err := d.hub.Attach(9999)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := market.NewBidder(strangerConn, d.providers)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	ss, err := sb.Join("gated", core.WithRoundLimit(1), core.WithRoundTimeout(testTimeout))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(2, inst.Users[0]); err != nil {
		t.Fatal(err)
	}
	waitForDropped(t, d.markets[0], 2)

	// In-window bid admitted; the duplicate re-send is free.
	if err := s.Submit(2, inst.Users[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(2, inst.Users[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for {
		snap := d.markets[0].Stats()
		if snap.BidsAdmitted == 1 && snap.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want 1 admitted bid queued, got %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitForDropped(t *testing.T, mk *market.Market, want int64) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for {
		if snap := mk.Stats(); snap.BidsDropped >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dropped counter never reached %d: %+v", want, mk.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLaneIsolationAbort is the lane-isolation guarantee: an abort (⊥) in
// one auction's round must not propagate to — or delay — another auction's
// in-flight rounds on the same shared connections.
func TestLaneIsolationAbort(t *testing.T) {
	const rounds, n = 4, 3
	d := newDeployment(t, 3, nil)
	alphaUsers, betaUsers := userRange(1001, n), userRange(2001, n)
	alphaInst := workload.NewDoubleAuction(1, n, 3)
	betaInst := workload.NewDoubleAuction(2, n, 3)
	d.openAuction("alpha", alphaUsers, rounds, alphaInst, nil)
	d.openAuction("beta", betaUsers, rounds, betaInst, nil)

	// Poison alpha's round 3 before any of its bids arrive: the abort
	// control message rides alpha's lane to every provider.
	a, ok := d.markets[0].Auction("alpha")
	if !ok {
		t.Fatal("alpha not open")
	}
	if err := a.Session().Peer().Abort(3, "isolation test"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var alphaOuts, betaOuts []core.RoundOutcome
	wg.Add(2)
	go func() { defer wg.Done(); alphaOuts = d.runBidders("alpha", alphaUsers, rounds, alphaInst) }()
	go func() { defer wg.Done(); betaOuts = d.runBidders("beta", betaUsers, rounds, betaInst) }()
	wg.Wait()

	for i, out := range alphaOuts {
		r := uint64(i + 1)
		if r == 3 {
			if out.Err == nil {
				t.Fatalf("alpha round 3 should be ⊥")
			}
			continue
		}
		if out.Err != nil {
			t.Fatalf("alpha round %d: %v (abort leaked within the lane)", r, out.Err)
		}
	}
	for i, out := range betaOuts {
		if out.Err != nil {
			t.Fatalf("beta round %d: %v (abort crossed lanes)", i+1, out.Err)
		}
	}

	waitForRounds(t, d.markets[0], 2*rounds)
	snap := d.markets[0].Stats()
	var alphaSnap, betaSnap market.AuctionSnapshot
	for _, as := range snap.Auctions {
		switch as.Name {
		case "alpha":
			alphaSnap = as
		case "beta":
			betaSnap = as
		}
	}
	if alphaSnap.Aborted != 1 || alphaSnap.Accepted != rounds-1 {
		t.Fatalf("alpha counters: %+v", alphaSnap)
	}
	if betaSnap.Aborted != 0 || betaSnap.Accepted != rounds {
		t.Fatalf("beta counters: %+v", betaSnap)
	}
}

// TestConcurrentEnforcementSharedLedger settles outcomes from two auctions
// into ONE shared ledger and ONE gateway set concurrently, with a ⊥
// outcome interleaved between accepted ones: balances must equal a serial
// replay of the accepted outcomes, the ⊥ round must move no money and
// reserve nothing, and total supply is conserved. Run with -race.
func TestConcurrentEnforcementSharedLedger(t *testing.T) {
	const rounds, n, m = 4, 3, 3
	const escrow wire.NodeID = 999
	led := ledger.New()
	gws := make([]*gateway.Gateway, m)
	for i := range gws {
		gws[i] = gateway.New(wire.NodeID(i+1), fixed.MustFloat(1e6), nil)
	}
	target := &market.EnforceTarget{Ledger: led, Gateways: gws, Escrow: escrow, TTL: time.Hour}

	alphaUsers, betaUsers := userRange(1001, n), userRange(2001, n)
	led.Open(escrow)
	for _, id := range append(append([]wire.NodeID{}, alphaUsers...), betaUsers...) {
		led.Open(id)
		if err := led.Deposit(id, fixed.MustFloat(1e5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= m; i++ {
		led.Open(wire.NodeID(i))
	}
	supplyBefore := led.TotalSupply()

	// Outcomes as observed by provider 1's market, for the serial replay.
	var outMu sync.Mutex
	observed := map[string][]core.RoundOutcome{}
	d := newDeployment(t, m, func(i int) []market.Option {
		if i != 0 {
			return nil
		}
		return []market.Option{market.WithOnOutcome(func(name string, out core.RoundOutcome) {
			outMu.Lock()
			observed[name] = append(observed[name], out)
			outMu.Unlock()
		})}
	})
	alphaInst := workload.NewDoubleAuction(1, n, m)
	betaInst := workload.NewDoubleAuction(2, n, m)
	// Enforcement runs on provider 1's market only (it owns the gateways in
	// this deployment); the other providers' markets just run the protocol.
	withEnforce := func(i int, spec *market.AuctionSpec) {
		if i == 0 {
			spec.Enforce = target
		}
	}
	d.openAuction("alpha", alphaUsers, rounds, alphaInst, withEnforce)
	d.openAuction("beta", betaUsers, rounds, betaInst, withEnforce)

	// ⊥ interleaved between accepted rounds: alpha round 2 aborts.
	a, _ := d.markets[0].Auction("alpha")
	if err := a.Session().Peer().Abort(2, "enforcement test"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); d.runBidders("alpha", alphaUsers, rounds, alphaInst) }()
	go func() { defer wg.Done(); d.runBidders("beta", betaUsers, rounds, betaInst) }()
	wg.Wait()
	waitForRounds(t, d.markets[0], 2*rounds)

	if got := led.TotalSupply(); got != supplyBefore {
		t.Fatalf("total supply changed: %v -> %v", supplyBefore, got)
	}

	// Serial replay of the accepted outcomes into a fresh ledger must land
	// on the same balances — concurrency changed nothing, ⊥ paid nothing.
	replay := ledger.New()
	replay.Open(escrow)
	accounts := append(append([]wire.NodeID{}, alphaUsers...), betaUsers...)
	for _, id := range accounts {
		replay.Open(id)
		if err := replay.Deposit(id, fixed.MustFloat(1e5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= m; i++ {
		replay.Open(wire.NodeID(i))
	}
	wantReservations := 0
	outMu.Lock()
	defer outMu.Unlock()
	for _, name := range []string{"alpha", "beta"} {
		users := alphaUsers
		if name == "beta" {
			users = betaUsers
		}
		aborted := 0
		for _, out := range observed[name] {
			if out.Err != nil {
				aborted++
				continue
			}
			transfers, err := ledger.OutcomeTransfers(out.Outcome, users, d.providers, escrow)
			if err != nil {
				t.Fatal(err)
			}
			if err := replay.Settle(out.Round, transfers); err != nil {
				t.Fatal(err)
			}
			for u := 0; u < out.Outcome.Alloc.NumUsers; u++ {
				for p := 0; p < out.Outcome.Alloc.NumProviders; p++ {
					if out.Outcome.Alloc.At(u, p) > 0 {
						wantReservations++
					}
				}
			}
		}
		if name == "alpha" && aborted != 1 {
			t.Fatalf("alpha: want exactly 1 ⊥ round, got %d", aborted)
		}
		if name == "beta" && aborted != 0 {
			t.Fatalf("beta: want no ⊥ rounds, got %d", aborted)
		}
	}
	for _, id := range append(accounts, escrow) {
		if got, want := led.Balance(id), replay.Balance(id); got != want {
			t.Fatalf("account %d: balance %v, replay says %v", id, got, want)
		}
	}
	for i := 1; i <= m; i++ {
		id := wire.NodeID(i)
		if got, want := led.Balance(id), replay.Balance(id); got != want {
			t.Fatalf("provider %d: balance %v, replay says %v", id, got, want)
		}
	}
	live := 0
	for _, g := range gws {
		live += g.Live()
	}
	if live != wantReservations {
		t.Fatalf("live reservations %d, want %d", live, wantReservations)
	}
}

// TestSweepHookReclaimsExpired exercises the market's enforcement-loop
// sweep: with an immediate TTL every reservation is dead by the next
// round, and the sweep cadence of 1 reclaims them eagerly.
func TestSweepHookReclaimsExpired(t *testing.T) {
	const rounds, n, m = 3, 2, 3
	const escrow wire.NodeID = 999
	led := ledger.New()
	gws := make([]*gateway.Gateway, m)
	for i := range gws {
		gws[i] = gateway.New(wire.NodeID(i+1), fixed.MustFloat(1e6), nil)
	}
	target := &market.EnforceTarget{Ledger: led, Gateways: gws, Escrow: escrow, TTL: time.Nanosecond}
	users := userRange(1001, n)
	led.Open(escrow)
	for _, id := range users {
		led.Open(id)
		if err := led.Deposit(id, fixed.MustFloat(1e5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= m; i++ {
		led.Open(wire.NodeID(i))
	}

	d := newDeployment(t, m, func(int) []market.Option {
		return []market.Option{market.WithSweepEvery(1)}
	})
	inst := workload.NewDoubleAuction(1, n, m)
	d.openAuction("swept", users, rounds, inst, func(i int, spec *market.AuctionSpec) {
		if i == 0 {
			spec.Enforce = target
		}
	})
	outs := d.runBidders("swept", users, rounds, inst)
	traded := false
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("round %d: %v", out.Round, out.Err)
		}
		for u := 0; u < out.Outcome.Alloc.NumUsers; u++ {
			for p := 0; p < out.Outcome.Alloc.NumProviders; p++ {
				if out.Outcome.Alloc.At(u, p) > 0 {
					traded = true
				}
			}
		}
	}
	if !traded {
		t.Skip("workload produced no trades; nothing to sweep")
	}
	waitForRounds(t, d.markets[0], rounds)
	if swept := d.markets[0].Stats().Swept; swept == 0 {
		t.Fatalf("sweep hook reclaimed nothing (stats: %+v)", d.markets[0].Stats())
	}
	for _, g := range gws {
		if g.Live() != 0 {
			t.Fatalf("gateway %d still holds %d live reservations", g.ID(), g.Live())
		}
	}
}

// TestDrainAuctionAndReuse drains an auction gracefully — every round
// holding an admitted bid emits before the close — and the name and lane
// are reusable afterwards.
func TestDrainAuctionAndReuse(t *testing.T) {
	const n = 2
	d := newDeployment(t, 3, nil)
	users := userRange(1001, n)
	inst := workload.NewDoubleAuction(1, n, 3)
	// No round limit: the auction runs until drained.
	for i, mk := range d.markets {
		_, err := mk.OpenAuction(market.AuctionSpec{
			Name:  "churn",
			Users: users,
			Options: []core.SessionOption{
				core.WithK(1),
				core.WithMechanismName("double"),
				core.WithBidWindow(50 * time.Millisecond),
				core.WithRoundTimeout(testTimeout),
				core.WithProviderBid(inst.Providers[i]),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// One bid for round 1 from each user, then drain: round 1 must emit.
	var sessions []*core.BidderSession
	for i, id := range users {
		conn, err := d.hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := market.NewBidder(conn, d.providers)
		if err != nil {
			t.Fatal(err)
		}
		defer mb.Close()
		s, err := mb.Join("churn", core.WithRoundTimeout(testTimeout))
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		if err := s.Submit(1, inst.Users[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until both bids are admitted so the drain has a target round.
	deadline := time.Now().Add(testTimeout)
	for d.markets[0].Stats().BidsAdmitted < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("bids never admitted: %+v", d.markets[0].Stats())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, mk := range d.markets {
		wg.Add(1)
		go func(mk *market.Market) {
			defer wg.Done()
			if err := mk.DrainAuction(ctx, "churn"); err != nil {
				t.Errorf("drain: %v", err)
			}
		}(mk)
	}
	wg.Wait()

	for i, mk := range d.markets {
		snap := mk.Stats()
		if snap.Open != 0 {
			t.Fatalf("provider %d: %d auctions open after drain", i, snap.Open)
		}
	}
	// Round 1 — the round holding the admitted bids — completed before the
	// close: every bidder holds its (non-⊥) outcome.
	for i, s := range sessions {
		select {
		case out := <-s.Outcomes():
			if out.Round != 1 || out.Err != nil {
				t.Fatalf("bidder %d: round %d err %v; drain did not wait for the admitted round", i, out.Round, out.Err)
			}
		case <-time.After(testTimeout):
			t.Fatalf("bidder %d: no outcome for the admitted round", i)
		}
	}

	// The name and its lane are free again.
	for i, mk := range d.markets {
		_, err := mk.OpenAuction(market.AuctionSpec{
			Name:  "churn",
			Users: users,
			Options: []core.SessionOption{
				core.WithK(1),
				core.WithMechanismName("double"),
				core.WithBidWindow(50 * time.Millisecond),
				core.WithRoundTimeout(testTimeout),
				core.WithRoundLimit(1),
				core.WithProviderBid(inst.Providers[i]),
			},
		})
		if err != nil {
			t.Fatalf("reopen on provider %d: %v", i, err)
		}
	}
}

// TestMarketCloseIsClean double-closes markets and bidders around live
// auctions; nothing should hang or panic.
func TestMarketCloseIsClean(t *testing.T) {
	const n = 2
	d := newDeployment(t, 3, nil)
	users := userRange(1001, n)
	inst := workload.NewDoubleAuction(1, n, 3)
	d.openAuction("x", users, 100, inst, nil)
	conn, err := d.hub.Attach(users[0])
	if err != nil {
		t.Fatal(err)
	}
	mb, err := market.NewBidder(conn, d.providers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Join("x", core.WithRoundTimeout(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	for _, mk := range d.markets {
		if err := mk.Close(); err != nil {
			t.Fatal(err)
		}
		if err := mk.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.markets[0].OpenAuction(market.AuctionSpec{Name: "y", Users: users}); !errors.Is(err, market.ErrMarketClosed) {
		t.Fatalf("want ErrMarketClosed, got %v", err)
	}
}
