package market_test

import (
	"sync"
	"testing"
	"time"

	"distauction/internal/core"
	"distauction/internal/market"
	"distauction/internal/testleak"
	"distauction/internal/transport"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

// TestMarketLifecycleNoGoroutineLeak opens a multi-provider market, runs an
// auction to its round limit with real bidders, closes every bidder, market
// and the hub, and requires the goroutine census to settle back: session
// round workers, mux readers, sweepers and admission plumbing must all join
// on Close. Everything is opened AND closed inside the check closure — no
// t.Cleanup, which would run after the settle loop.
func TestMarketLifecycleNoGoroutineLeak(t *testing.T) {
	providers := []wire.NodeID{1, 2, 3}
	users := userRange(1001, 3)
	inst := workload.NewDoubleAuction(1, 3, 3)
	const rounds = 2
	testleak.Check(t, func() {
		hub := transport.NewHub(transport.LatencyModel{}, 1)
		defer hub.Close()
		var markets []*market.Market
		for i, id := range providers {
			conn, err := hub.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			mk, err := market.Open(conn, providers)
			if err != nil {
				t.Fatal(err)
			}
			markets = append(markets, mk)
			spec := market.AuctionSpec{
				Name:  "leakcheck",
				Users: users,
				Options: []core.SessionOption{
					core.WithK(1),
					core.WithMechanismName("double"),
					core.WithBidWindow(10 * time.Second),
					core.WithRoundTimeout(testTimeout),
					core.WithRoundLimit(rounds),
					core.WithOutcomeBuffer(rounds),
					core.WithProviderBid(inst.Providers[i]),
				},
			}
			if _, err := mk.OpenAuction(spec); err != nil {
				t.Fatalf("open auction on provider %d: %v", id, err)
			}
		}
		var wg sync.WaitGroup
		for i, id := range users {
			conn, err := hub.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			mb, err := market.NewBidder(conn, providers)
			if err != nil {
				t.Fatal(err)
			}
			s, err := mb.Join("leakcheck",
				core.WithRoundLimit(rounds),
				core.WithOutcomeBuffer(rounds),
				core.WithRoundTimeout(testTimeout))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(i int, mb *market.Bidder, s *core.BidderSession) {
				defer wg.Done()
				defer mb.Close()
				for r := 1; r <= rounds; r++ {
					if err := s.Submit(uint64(r), inst.Users[i]); err != nil {
						t.Errorf("bidder %d submit: %v", i, err)
						return
					}
				}
				for out := range s.Outcomes() {
					if out.Err != nil {
						t.Errorf("bidder %d round %d: %v", i, out.Round, out.Err)
					}
				}
			}(i, mb, s)
		}
		wg.Wait()
		waitForRounds(t, markets[0], rounds)
		for _, mk := range markets {
			if err := mk.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
	})
}
