package market

import (
	"errors"
	"fmt"
	"sync"

	"distauction/internal/core"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// Bidder is the user-side marketplace client: one transport attachment,
// many auctions. Join opens a per-auction core.BidderSession on the
// auction's lane; bids and outcome streams then work exactly as for a
// standalone BidderSession, and different auctions' streams are fully
// independent (a ⊥ round in one never delays another).
type Bidder struct {
	mux       *Mux
	providers []wire.NodeID

	mu      sync.Mutex
	byName  map[string]*core.BidderSession
	closed  bool
	closing sync.Once
}

// NewBidder wraps conn (the user's single attachment) for the given
// provider fleet.
func NewBidder(conn transport.Conn, providers []wire.NodeID) (*Bidder, error) {
	if len(providers) == 0 {
		return nil, fmt.Errorf("%w: market bidder needs providers", core.ErrConfig)
	}
	return &Bidder{
		mux:       NewMux(conn),
		providers: append([]wire.NodeID(nil), providers...),
		byName:    make(map[string]*core.BidderSession),
	}, nil
}

// Self returns the bidder's node ID.
func (b *Bidder) Self() wire.NodeID { return b.mux.Self() }

// Join opens a bidder session for the named auction on its derived lane
// (LaneForName). The session options mirror core.OpenBidderSession's
// (WithStartRound must match the providers' spec).
func (b *Bidder) Join(name string, opts ...core.SessionOption) (*core.BidderSession, error) {
	return b.join(name, LaneForName(name), b.providers, opts...)
}

// JoinLane is Join for an auction whose providers pinned an explicit lane
// (ErrLaneCollision resolution).
func (b *Bidder) JoinLane(name string, lane uint32, opts ...core.SessionOption) (*core.BidderSession, error) {
	return b.join(name, lane, b.providers, opts...)
}

// JoinCommittee is Join for an auction run by a committee other than the
// bidder's default provider fleet — the sharded-federation case, where lane
// and committee come from the federation's placement. providers must match
// the committee the auction was opened with.
func (b *Bidder) JoinCommittee(name string, lane uint32, providers []wire.NodeID, opts ...core.SessionOption) (*core.BidderSession, error) {
	if len(providers) == 0 {
		return nil, fmt.Errorf("%w: auction needs a committee", core.ErrConfig)
	}
	return b.join(name, lane, providers, opts...)
}

func (b *Bidder) join(name string, lane uint32, providers []wire.NodeID, opts ...core.SessionOption) (*core.BidderSession, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: auction needs a name", core.ErrConfig)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrMarketClosed
	}
	if _, dup := b.byName[name]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("market: already joined auction %q", name)
	}
	b.mu.Unlock()

	lc, err := b.mux.Lane(lane)
	if err != nil {
		return nil, err
	}
	s, err := core.OpenBidderSession(lc, providers, opts...)
	if err != nil {
		_ = lc.Close()
		return nil, fmt.Errorf("market: join %q: %w", name, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = s.Close()
		return nil, ErrMarketClosed
	}
	b.byName[name] = s
	b.mu.Unlock()
	return s, nil
}

// Leave closes the named auction's session and frees its lane.
func (b *Bidder) Leave(name string) error {
	b.mu.Lock()
	s, ok := b.byName[name]
	delete(b.byName, name)
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAuction, name)
	}
	return s.Close()
}

// Close leaves every auction and releases the shared connection.
func (b *Bidder) Close() error {
	var firstErr error
	b.closing.Do(func() {
		b.mu.Lock()
		b.closed = true
		sessions := make([]*core.BidderSession, 0, len(b.byName))
		for _, s := range b.byName {
			sessions = append(sessions, s)
		}
		b.byName = map[string]*core.BidderSession{}
		b.mu.Unlock()
		var errs []error
		for _, s := range sessions {
			if err := s.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := b.mux.Close(); err != nil {
			errs = append(errs, err)
		}
		firstErr = errors.Join(errs...)
	})
	return firstErr
}
