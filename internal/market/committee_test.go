package market_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/core"
	"distauction/internal/market"
	"distauction/internal/transport"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

// TestPerAuctionCommittees runs two auctions on ONE four-provider market
// deployment where each auction's session spans a different three-provider
// committee — the "away from one Mux, one committee" refactor a federation
// shard layout needs. Node 1 serves only "left", node 4 only "right",
// nodes 2 and 3 serve both over the same attachment.
func TestPerAuctionCommittees(t *testing.T) {
	const rounds, n = 3, 3
	fleet := []wire.NodeID{1, 2, 3, 4}
	left := []wire.NodeID{1, 2, 3}
	right := []wire.NodeID{2, 3, 4}

	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	markets := make(map[wire.NodeID]*market.Market, len(fleet))
	for _, id := range fleet {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		mk, err := market.Open(conn, fleet)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mk.Close() })
		markets[id] = mk
	}

	// A committee the local node is not part of is a configuration error.
	if _, err := markets[4].OpenAuction(market.AuctionSpec{
		Name: "left", Lane: 1, Users: userRange(1001, n), Providers: left,
	}); !errors.Is(err, core.ErrConfig) {
		t.Fatalf("open outside own committee: %v", err)
	}

	leftUsers, rightUsers := userRange(1001, n), userRange(2001, n)
	leftInst := workload.NewDoubleAuction(1, n, len(left))
	rightInst := workload.NewDoubleAuction(2, n, len(right))
	open := func(name string, lane uint32, committee []wire.NodeID,
		users []wire.NodeID, inst workload.DoubleAuctionInstance) {
		for i, id := range committee {
			_, err := markets[id].OpenAuction(market.AuctionSpec{
				Name:      name,
				Lane:      lane,
				Users:     users,
				Providers: committee,
				Options: []core.SessionOption{
					core.WithK(1),
					core.WithMechanismName("double"),
					core.WithBidWindow(10 * time.Second),
					core.WithRoundTimeout(testTimeout),
					core.WithRoundLimit(rounds),
					core.WithOutcomeBuffer(rounds),
					core.WithProviderBid(inst.Providers[i]),
				},
			})
			if err != nil {
				t.Fatalf("open %q on node %d: %v", name, id, err)
			}
		}
	}
	open("left", 1, left, leftUsers, leftInst)
	open("right", 2, right, rightUsers, rightInst)

	run := func(name string, lane uint32, committee, users []wire.NodeID,
		inst workload.DoubleAuctionInstance) error {
		var wg sync.WaitGroup
		errs := make([]error, len(users))
		for i, id := range users {
			conn, err := hub.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			mb, err := market.NewBidder(conn, committee)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { mb.Close() })
			s, err := mb.JoinCommittee(name, lane, committee,
				core.WithRoundLimit(rounds),
				core.WithOutcomeBuffer(rounds),
				core.WithRoundTimeout(testTimeout))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(i int, s *core.BidderSession) {
				defer wg.Done()
				for r := 1; r <= rounds; r++ {
					if err := s.Submit(uint64(r), inst.Users[i]); err != nil {
						errs[i] = err
						return
					}
				}
				seen := 0
				for out := range s.Outcomes() {
					seen++
					if out.Err != nil {
						errs[i] = out.Err
						return
					}
				}
				if seen != rounds {
					errs[i] = errors.New("missing rounds")
				}
			}(i, s)
		}
		wg.Wait()
		return errors.Join(errs...)
	}

	var wg sync.WaitGroup
	var leftErr, rightErr error
	wg.Add(2)
	go func() { defer wg.Done(); leftErr = run("left", 1, left, leftUsers, leftInst) }()
	go func() { defer wg.Done(); rightErr = run("right", 2, right, rightUsers, rightInst) }()
	wg.Wait()
	if leftErr != nil {
		t.Fatalf("left: %v", leftErr)
	}
	if rightErr != nil {
		t.Fatalf("right: %v", rightErr)
	}

	// The shared nodes' markets carry both auctions; the edge nodes one each.
	waitForRounds(t, markets[2], 2*rounds)
	if snap := markets[2].Stats(); snap.Open != 2 || snap.Accepted != 2*rounds {
		t.Fatalf("node 2 stats: %+v", snap)
	}
	waitForRounds(t, markets[1], rounds)
	if snap := markets[1].Stats(); snap.Open != 1 || snap.Accepted != rounds {
		t.Fatalf("node 1 stats: %+v", snap)
	}
}
