package market_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"distauction/internal/market"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// TestLaneSendAfterMuxCloseReturnsErrMuxClosed is the regression test for
// the close race: a Send on a lane of a closed mux must fail with the
// ErrMuxClosed sentinel (which also matches transport.ErrClosed), not with
// whatever the half-torn-down lane table produces.
func TestLaneSendAfterMuxCloseReturnsErrMuxClosed(t *testing.T) {
	ma, _ := twoMuxes(t)
	lc, err := ma.Lane(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
	env := wire.Envelope{From: 1, To: 2, Tag: wire.Tag{Round: 1, Block: wire.BlockTask, Step: 1}}
	err = lc.Send(env)
	if !errors.Is(err, market.ErrMuxClosed) {
		t.Fatalf("want ErrMuxClosed, got %v", err)
	}
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("ErrMuxClosed must match transport.ErrClosed; got %v", err)
	}

	// An individually closed lane (mux still up) keeps the transport error:
	// the two failure modes stay distinguishable.
	mb, _ := twoMuxes(t)
	lc2, err := mb.Lane(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lc2.Close(); err != nil {
		t.Fatal(err)
	}
	err = lc2.Send(env)
	if !errors.Is(err, transport.ErrClosed) || errors.Is(err, market.ErrMuxClosed) {
		t.Fatalf("lane-only close: want bare transport.ErrClosed, got %v", err)
	}
}

// TestMuxCountsParkedDrops floods a never-opened lane past the per-lane
// parking bound and asserts the overflow is counted, not silently lost.
func TestMuxCountsParkedDrops(t *testing.T) {
	ma, mb := twoMuxes(t)
	a1, err := ma.Lane(1)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 1 is never opened on mb: everything parks there, and everything
	// past the per-lane bound drops.
	const overflow = 300 // maxParkedPerLane is 256
	for i := 0; i < overflow; i++ {
		env := wire.Envelope{From: 1, To: 2, Tag: wire.Tag{Round: uint64(i + 1), Block: wire.BlockTask, Step: 1}}
		if err := a1.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for mb.Stats().ParkedDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("parking overflow never counted: %+v", mb.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// peerOnLane opens lane on the mux and wraps it in a proto.Peer (which
// installs both the single and the batch handler on the lane conn).
func peerOnLane(t *testing.T, m *market.Mux, lane uint32, providers []wire.NodeID) *proto.Peer {
	t.Helper()
	lc, err := m.Lane(lane)
	if err != nil {
		t.Fatal(err)
	}
	p := proto.NewPeer(lc, providers)
	t.Cleanup(func() { p.Close() })
	return p
}

// TestLaneIsolationUnderBatching is the batched-path isolation satellite: a
// ⊥ abort riding a superframe next to other lanes' traffic must poison only
// its own lane. The superframe is injected directly (one SendBatch), so the
// batched dispatch path — not a lucky coalescing race — is what's tested.
func TestLaneIsolationUnderBatching(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ca, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	mb := market.NewMux(cb)
	t.Cleanup(func() { mb.Close() })
	providers := []wire.NodeID{1, 2}
	alpha := peerOnLane(t, mb, 1, providers) // victim lane of the ⊥
	beta := peerOnLane(t, mb, 2, providers)  // must stay clean

	// One superframe from provider 1: beta traffic, an alpha abort, more
	// beta traffic — all dispatched in one call on the receiving mux.
	abortPayload := func() []byte {
		enc := wire.NewEncoder(16)
		enc.String("batched ⊥")
		return enc.Buffer()
	}()
	batch := []wire.Envelope{
		{From: 1, To: 2, Tag: wire.Tag{Round: 7, Block: wire.BlockTask, Instance: wire.JoinLane(2, 0), Step: 1}, Payload: []byte("beta-1")},
		{From: 1, To: 2, Tag: wire.Tag{Round: 7, Block: wire.BlockControl, Instance: wire.JoinLane(1, 0), Step: proto.StepAbort}, Payload: abortPayload},
		{From: 1, To: 2, Tag: wire.Tag{Round: 7, Block: wire.BlockTask, Instance: wire.JoinLane(2, 0), Step: 2}, Payload: []byte("beta-2")},
	}
	if err := ca.(transport.BatchConn).SendBatch(batch); err != nil {
		t.Fatal(err)
	}

	// Alpha's round 7 is poisoned...
	deadline := time.Now().Add(10 * time.Second)
	for alpha.AbortErr(7) == nil {
		if time.Now().After(deadline) {
			t.Fatal("abort riding the superframe never landed in its lane")
		}
		time.Sleep(time.Millisecond)
	}
	// ...while beta's round 7 delivers both messages and is NOT aborted.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, step := range []uint8{1, 2} {
		tag := wire.Tag{Round: 7, Block: wire.BlockTask, Instance: 0, Step: step}
		payload, err := beta.Receive(ctx, tag, 1)
		if err != nil {
			t.Fatalf("beta step %d: %v (abort crossed lanes)", step, err)
		}
		want := map[uint8]string{1: "beta-1", 2: "beta-2"}[step]
		if string(payload) != want {
			t.Fatalf("beta step %d: got %q want %q", step, payload, want)
		}
	}
	if err := beta.AbortErr(7); err != nil {
		t.Fatalf("beta round 7 aborted: %v (abort crossed lanes)", err)
	}
	mbStats := mb.Stats()
	if mbStats.BatchesIn == 0 {
		t.Fatalf("superframe did not take the batched dispatch path: %+v", mbStats)
	}
}

// TestMuxBatchedEquivocationStillAborts: duplicate-key/different-payload
// inside one superframe is still the §3.2 equivocation — the batched ingest
// must detect it exactly like the per-envelope path.
func TestMuxBatchedEquivocationStillAborts(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ca, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	mb := market.NewMux(cb)
	t.Cleanup(func() { mb.Close() })
	providers := []wire.NodeID{1, 2}
	p := peerOnLane(t, mb, 3, providers)

	tag := wire.Tag{Round: 5, Block: wire.BlockTask, Instance: wire.JoinLane(3, 0), Step: 1}
	if err := ca.(transport.BatchConn).SendBatch([]wire.Envelope{
		{From: 1, To: 2, Tag: tag, Payload: []byte("one")},
		{From: 1, To: 2, Tag: tag, Payload: []byte("two")}, // equivocation
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.AbortErr(5) == nil {
		if time.Now().After(deadline) {
			t.Fatal("batched equivocation never aborted the round")
		}
		time.Sleep(time.Millisecond)
	}
}
