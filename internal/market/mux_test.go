package market_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"distauction/internal/market"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func twoMuxes(t *testing.T) (*market.Mux, *market.Mux) {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ca, err := hub.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hub.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := market.NewMux(ca), market.NewMux(cb)
	t.Cleanup(func() { ma.Close(); mb.Close() })
	return ma, mb
}

func recvOne(t *testing.T, c transport.Conn) wire.Envelope {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	env, err := c.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestMuxLaneRoundTripPreservesInstance(t *testing.T) {
	ma, mb := twoMuxes(t)
	a1, err := ma.Lane(1)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := mb.Lane(1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := mb.Lane(2)
	if err != nil {
		t.Fatal(err)
	}

	tag := wire.Tag{Round: 7, Block: wire.BlockTask, Instance: 42, Step: 3}
	if err := a1.Send(wire.Envelope{From: 1, To: 2, Tag: tag, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b1)
	if env.Tag != tag || string(env.Payload) != "hi" {
		t.Fatalf("lane 1 got %+v", env)
	}
	// Lane 2 saw nothing.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b2.Recv(ctx); err == nil {
		t.Fatal("lane 2 received lane 1 traffic")
	}
}

func TestMuxInstanceOverflowRejected(t *testing.T) {
	ma, _ := twoMuxes(t)
	a1, err := ma.Lane(1)
	if err != nil {
		t.Fatal(err)
	}
	env := wire.Envelope{From: 1, To: 2, Tag: wire.Tag{Round: 1, Block: wire.BlockTask, Instance: wire.MaxInstance + 1, Step: 1}}
	if err := a1.Send(env); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("want overflow error, got %v", err)
	}
}

func TestMuxParkingDeliversEarlyTraffic(t *testing.T) {
	ma, mb := twoMuxes(t)
	a3, err := ma.Lane(3)
	if err != nil {
		t.Fatal(err)
	}
	tag := wire.Tag{Round: 1, Block: wire.BlockTask, Instance: 0, Step: 1}
	if err := a3.Send(wire.Envelope{From: 1, To: 2, Tag: tag, Payload: []byte("early")}); err != nil {
		t.Fatal(err)
	}
	// Give the hub time to push the message into B's mux before the lane
	// opens, so the parking path (not a delivery race) is what's tested.
	time.Sleep(20 * time.Millisecond)
	b3, err := mb.Lane(3)
	if err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b3)
	if string(env.Payload) != "early" {
		t.Fatalf("parked message lost: %+v", env)
	}
}

func TestMuxLaneLifecycle(t *testing.T) {
	ma, _ := twoMuxes(t)
	if _, err := ma.Lane(wire.MaxLane + 1); err == nil {
		t.Fatal("no error for out-of-range lane")
	}
	l, err := ma.Lane(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Lane(5); err == nil {
		t.Fatal("no error for duplicate lane")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := ma.Lane(5); err != nil {
		t.Fatalf("lane not reusable after close: %v", err)
	}
	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Lane(6); err == nil {
		t.Fatal("no error opening a lane on a closed mux")
	}
}
