package market

import (
	"sync"

	"distauction/internal/metrics"
	"distauction/internal/trace"
	"distauction/internal/wire"
)

// gate is one auction's bidder-facing admission front end. It sits on the
// mux's inbound path (provider side) and decides, per bid submission,
// whether the bid may reach the auction's session:
//
//   - only the auction's configured users are admitted (a stranger's bid
//     could never fill a slot anyway — it would only consume buffer);
//   - each user is admitted at most once per round — duplicates of the
//     same submission are free (the peer absorbs identical re-sends), so a
//     flooding bidder cannot take more than its fair share of one slot per
//     round;
//   - bids are admitted only for rounds in [next, next+window): ingest that
//     outruns round capacity is dropped at the door instead of ballooning
//     the session's buffered state. next advances as the market observes
//     emitted outcomes, so the window *is* the backpressure: a stalled
//     auction stops admitting.
//
// Dropping a bid is protocol-safe — the round substitutes the neutral bid
// for the missing submission — which is what makes door-level backpressure
// possible at all.
type gate struct {
	users  map[wire.NodeID]struct{}
	window uint64
	lane   uint32      // the auction's lane (trace labels)
	self   wire.NodeID // the observing provider (trace labels)

	mu          sync.Mutex
	next        uint64 // lowest round not yet completed
	maxAdmitted uint64 // highest round any bid was admitted for
	draining    bool
	seen        map[uint64]map[wire.NodeID]struct{}
	free        []map[wire.NodeID]struct{} // retired sender sets, cleared for reuse
	pending     int

	admitted metrics.Counter
	dropped  metrics.Counter
}

func newGate(users []wire.NodeID, startRound uint64, window int, lane uint32, self wire.NodeID) *gate {
	set := make(map[wire.NodeID]struct{}, len(users))
	for _, u := range users {
		set[u] = struct{}{}
	}
	return &gate{
		users:  set,
		window: uint64(window),
		lane:   lane,
		self:   self,
		next:   startRound,
		seen:   make(map[uint64]map[wire.NodeID]struct{}),
	}
}

// Admission-drop trace codes (Event.Code on PhaseAdmissionDrop events).
const (
	dropStranger = 1 // sender is not one of the auction's users
	dropWindow   = 2 // round outside the admission window, or draining
)

// admit decides one bid submission. It runs on the transport's producer
// goroutines; the critical section is a couple of map operations.
func (g *gate) admit(from wire.NodeID, round uint64) bool {
	if _, ok := g.users[from]; !ok {
		g.dropped.Inc()
		trace.Emit(trace.PhaseAdmissionDrop, round, g.lane, g.self, from, dropStranger)
		return false
	}
	g.mu.Lock()
	if g.draining || round < g.next || round >= g.next+g.window {
		g.mu.Unlock()
		g.dropped.Inc()
		trace.Emit(trace.PhaseAdmissionDrop, round, g.lane, g.self, from, dropWindow)
		return false
	}
	senders := g.seen[round]
	if senders == nil {
		if n := len(g.free); n > 0 {
			senders = g.free[n-1]
			g.free[n-1] = nil
			g.free = g.free[:n-1]
		} else {
			senders = make(map[wire.NodeID]struct{}, len(g.users))
		}
		g.seen[round] = senders
	}
	if _, dup := senders[from]; dup {
		g.mu.Unlock()
		return true // identical re-send; absorbed downstream, costs nothing
	}
	senders[from] = struct{}{}
	g.pending++
	if round > g.maxAdmitted {
		g.maxAdmitted = round
	}
	g.mu.Unlock()
	g.admitted.Inc()
	return true
}

// roundDone slides the window past round: admission state for all rounds
// <= round is reclaimed and bids for the rounds that just came into the
// window become admissible.
func (g *gate) roundDone(round uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if round < g.next {
		return
	}
	for r := g.next; r <= round; r++ {
		if senders, ok := g.seen[r]; ok {
			g.pending -= len(senders)
			delete(g.seen, r)
			// Recycle the sender set — one set retires per round completed,
			// so the steady state never allocates one. The cap matches the
			// admission window, the most sets ever live at once.
			if uint64(len(g.free)) < g.window {
				clear(senders)
				g.free = append(g.free, senders)
			}
		}
	}
	g.next = round + 1
}

// drain permanently closes the gate (no new bids) and returns the highest
// round holding an admitted bid — the round a graceful close must wait for.
func (g *gate) drain() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	return g.maxAdmitted
}

// depth returns the number of admitted-but-not-yet-completed bids (the
// auction's ingest queue depth).
func (g *gate) depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}
