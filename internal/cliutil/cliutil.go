// Package cliutil holds the helpers shared by the command-line tools
// (cmd/gatewayd, cmd/bidclient): flag parsing for node sets, address maps
// and fixed-point lists, plus the common TCP network bootstrap.
package cliutil

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"distauction/internal/fixed"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// ErrEmpty reports a required list flag that was left empty.
var ErrEmpty = errors.New("cliutil: empty list")

// ParseAddrMap parses "1=host:port,2=host:port" into an address map and the
// sorted ID list.
func ParseAddrMap(s string) (map[wire.NodeID]string, []wire.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, ErrEmpty
	}
	addrs := make(map[wire.NodeID]string)
	var ids []wire.NodeID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[1] == "" {
			return nil, nil, fmt.Errorf("cliutil: bad entry %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("cliutil: bad node id %q", kv[0])
		}
		if _, dup := addrs[wire.NodeID(id)]; dup {
			return nil, nil, fmt.Errorf("cliutil: duplicate node id %d", id)
		}
		addrs[wire.NodeID(id)] = kv[1]
		ids = append(ids, wire.NodeID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return addrs, ids, nil
}

// ParseIDList parses "100,101,102" into node IDs (order preserved).
func ParseIDList(s string) ([]wire.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, ErrEmpty
	}
	var ids []wire.NodeID
	seen := make(map[wire.NodeID]bool)
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad node id %q", part)
		}
		if seen[wire.NodeID(id)] {
			return nil, fmt.Errorf("cliutil: duplicate node id %d", id)
		}
		seen[wire.NodeID(id)] = true
		ids = append(ids, wire.NodeID(id))
	}
	return ids, nil
}

// ParseFixedList parses "1.5,2,0.25" into fixed-point values.
func ParseFixedList(s string) ([]fixed.Fixed, error) {
	if strings.TrimSpace(s) == "" {
		return nil, ErrEmpty
	}
	var out []fixed.Fixed
	for _, part := range strings.Split(s, ",") {
		v, err := fixed.Parse(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// DialTCP builds a TCP-backed Network from the peer address book plus this
// node's own listen address, attaches the node, and returns the network
// (the caller closes it) with the live connection. members is the full
// authenticated participant set; it is used only when secret is non-empty.
func DialTCP(self wire.NodeID, listen string, peerAddrs map[wire.NodeID]string,
	members []wire.NodeID, secret string) (*transport.TCPNetwork, transport.Conn, error) {

	addrs := make(map[wire.NodeID]string, len(peerAddrs)+1)
	for pid, addr := range peerAddrs {
		addrs[pid] = addr
	}
	addrs[self] = listen
	cfg := transport.TCPNetworkConfig{Addrs: addrs}
	if secret != "" {
		cfg.Secret = []byte(secret)
		cfg.Members = members
	}
	network := transport.NewTCPNetwork(cfg)
	conn, err := network.Attach(self)
	if err != nil {
		network.Close()
		return nil, nil, err
	}
	return network, conn, nil
}
