package cliutil

import (
	"testing"

	"distauction/internal/fixed"
	"distauction/internal/wire"
)

func TestParseAddrMap(t *testing.T) {
	addrs, ids, err := ParseAddrMap("3=c:3, 1=a:1 ,2=b:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || addrs[1] != "a:1" || addrs[2] != "b:2" || addrs[3] != "c:3" {
		t.Errorf("addrs = %v", addrs)
	}
	want := []wire.NodeID{1, 2, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids = %v (must be sorted)", ids)
			break
		}
	}
}

func TestParseAddrMapErrors(t *testing.T) {
	cases := []string{"", "  ", "1", "1=", "x=a:1", "1=a:1,1=b:2"}
	for _, c := range cases {
		if _, _, err := ParseAddrMap(c); err == nil {
			t.Errorf("ParseAddrMap(%q) should fail", c)
		}
	}
}

func TestParseIDList(t *testing.T) {
	ids, err := ParseIDList("100, 101,102")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 100 || ids[2] != 102 {
		t.Errorf("ids = %v", ids)
	}
	for _, c := range []string{"", "a", "1,1", "1,,2"} {
		if _, err := ParseIDList(c); err == nil {
			t.Errorf("ParseIDList(%q) should fail", c)
		}
	}
}

func TestParseFixedList(t *testing.T) {
	vs, err := ParseFixedList("1.5, 2,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != fixed.MustFloat(1.5) || vs[2] != fixed.MustFloat(0.25) {
		t.Errorf("vs = %v", vs)
	}
	for _, c := range []string{"", "abc", "1,,2"} {
		if _, err := ParseFixedList(c); err == nil {
			t.Errorf("ParseFixedList(%q) should fail", c)
		}
	}
}
