package proto

import (
	"context"
	"errors"
	"strings"
)

// AbortCode classifies why a round went to ⊥. The marketplace's counters,
// the trace flight recorder and the Prometheus export all key on these
// codes — one taxonomy for every layer, instead of each surface grepping
// reason strings its own way. Codes travel on the abort control message
// next to the human-readable reason, so remote peers count the same kind
// the aborter decided, not a re-classification.
type AbortCode uint8

const (
	// AbortUnknown is an abort whose cause could not be classified.
	AbortUnknown AbortCode = iota
	// AbortTimeout is a deadline expiry: a peer stayed silent past the
	// receive timeout (the paper's fair-schedule escape hatch).
	AbortTimeout
	// AbortEquivocation is two different payloads from one sender under
	// one tag — the ⊥-inducing deviation of §3.2.
	AbortEquivocation
	// AbortMAC is an authentication failure: a frame or superframe whose
	// MAC did not verify.
	AbortMAC
	// AbortSettlement is a federation 2PC abort: a cross-shard settle
	// round that prepared on some shards and had to release.
	AbortSettlement
	// AbortClosed is a shutdown abort: the peer or session closed while
	// the round was in flight.
	AbortClosed
	// AbortProtocol is a malformed or mis-sequenced message: decode
	// failures, mis-opened commitments, vector mismatches.
	AbortProtocol
	// AbortDisconnect is a crashed peer: the transport's failure detector
	// declared it dead (heartbeat silence past the dead threshold) before
	// the round timed out. Distinct from AbortTimeout (silent but alive)
	// and from the deviation codes — a crash is not a deviation.
	AbortDisconnect

	// NumAbortCodes bounds per-code counter arrays.
	NumAbortCodes
)

var abortCodeNames = [NumAbortCodes]string{
	"unknown", "timeout", "equivocation", "mac", "settlement", "closed", "protocol", "disconnect",
}

// String returns the code's stable metric label.
func (c AbortCode) String() string {
	if c < NumAbortCodes {
		return abortCodeNames[c]
	}
	return "unknown"
}

// ClassifyReason maps a human-readable abort reason onto a code. Callers
// that know the cause pass an explicit code instead; this is the fallback
// for reasons produced by layers that predate the taxonomy (and for
// remote aborts from peers running without the code field).
func ClassifyReason(reason string) AbortCode {
	r := strings.ToLower(reason)
	switch {
	case strings.Contains(r, "equivocation"):
		return AbortEquivocation
	case strings.Contains(r, "disconnect"):
		// Before the timeout case: a disconnect reason mentions missed
		// heartbeats, and detection fires on the same timeout path.
		return AbortDisconnect
	case strings.Contains(r, "deadline"), strings.Contains(r, "timeout"), strings.Contains(r, "timed out"):
		return AbortTimeout
	case strings.Contains(r, "mac"), strings.Contains(r, "auth"):
		return AbortMAC
	case strings.Contains(r, "settle"):
		return AbortSettlement
	case strings.Contains(r, "closed"), strings.Contains(r, "closing"), strings.Contains(r, "shutdown"):
		return AbortClosed
	case strings.Contains(r, "malformed"), strings.Contains(r, "mis-opened"),
		strings.Contains(r, "decode"), strings.Contains(r, "mismatch"),
		strings.Contains(r, "invalid"):
		return AbortProtocol
	}
	return AbortUnknown
}

// AbortCodeOf extracts the abort code from any error shape the pipeline
// produces: a typed *AbortError carries its code; bare deadline/cancel
// errors classify as timeout/closed; anything else is unknown.
func AbortCodeOf(err error) AbortCode {
	if err == nil {
		return AbortUnknown
	}
	var ae *AbortError
	if errors.As(err, &ae) {
		if ae.Code != AbortUnknown {
			return ae.Code
		}
		return ClassifyReason(ae.Reason)
	}
	// Before the DeadlineExceeded branch: a DisconnectError Is-matches the
	// deadline sentinel (so timeout-tolerant callers degrade gracefully)
	// but classifies as a crash, not a timeout.
	var de *DisconnectError
	if errors.As(err, &de) {
		return AbortDisconnect
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return AbortTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrPeerClosed), errors.Is(err, ErrRoundEnded):
		return AbortClosed
	}
	return ClassifyReason(err.Error())
}
