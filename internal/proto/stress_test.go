package proto

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/transport"
	"distauction/internal/wire"
)

// Stress: many concurrent rounds, blocks and instances over the same peers,
// with reordering jitter. Every message must reach exactly the receiver
// waiting on its tag; nothing may cross-talk or dangle. Run with -race.
func TestConcurrentRoundsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	hub := transport.NewHub(transport.LatencyModel{Jitter: 2 * time.Millisecond}, 5)
	t.Cleanup(func() { hub.Close() })
	ids := []wire.NodeID{1, 2, 3}
	peers := make([]*Peer, len(ids))
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = NewPeer(conn, ids)
		t.Cleanup(func(p *Peer) func() { return func() { p.Close() } }(peers[i]))
	}

	const (
		rounds    = 8
		instances = 6
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, len(peers)*rounds)
	for _, p := range peers {
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			var roundWG sync.WaitGroup
			for r := uint64(1); r <= rounds; r++ {
				roundWG.Add(1)
				go func(r uint64) {
					defer roundWG.Done()
					for inst := uint32(0); inst < instances; inst++ {
						tag := wire.Tag{Round: r, Block: wire.BlockTask, Instance: inst, Step: 1}
						payload := []byte(fmt.Sprintf("r%d-i%d-from%d", r, inst, p.Self()))
						if err := p.BroadcastProviders(tag, payload); err != nil {
							errCh <- err
							return
						}
						got, err := p.GatherProviders(ctx, tag)
						if err != nil {
							errCh <- err
							return
						}
						for from, v := range got {
							want := fmt.Sprintf("r%d-i%d-from%d", r, inst, from)
							if string(v) != want {
								errCh <- fmt.Errorf("cross-talk: got %q want %q", v, want)
								return
							}
						}
					}
				}(r)
			}
			roundWG.Wait()
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Cleanup path: ending all rounds must not disturb anything.
	for _, p := range peers {
		p.EndRound(rounds)
	}
}
