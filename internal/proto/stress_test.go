package proto

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"distauction/internal/transport"
	"distauction/internal/wire"
)

// Stress: many concurrent rounds, blocks and instances over the same peers,
// with reordering jitter. Every message must reach exactly the receiver
// waiting on its tag; nothing may cross-talk or dangle. Run with -race.
func TestConcurrentRoundsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	hub := transport.NewHub(transport.LatencyModel{Jitter: 2 * time.Millisecond}, 5)
	t.Cleanup(func() { hub.Close() })
	ids := []wire.NodeID{1, 2, 3}
	peers := make([]*Peer, len(ids))
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = NewPeer(conn, ids)
		t.Cleanup(func(p *Peer) func() { return func() { p.Close() } }(peers[i]))
	}

	const (
		rounds    = 8
		instances = 6
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, len(peers)*rounds)
	for _, p := range peers {
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			var roundWG sync.WaitGroup
			for r := uint64(1); r <= rounds; r++ {
				roundWG.Add(1)
				go func(r uint64) {
					defer roundWG.Done()
					for inst := uint32(0); inst < instances; inst++ {
						tag := wire.Tag{Round: r, Block: wire.BlockTask, Instance: inst, Step: 1}
						payload := []byte(fmt.Sprintf("r%d-i%d-from%d", r, inst, p.Self()))
						if err := p.BroadcastProviders(tag, payload); err != nil {
							errCh <- err
							return
						}
						got, err := p.GatherProviders(ctx, tag)
						if err != nil {
							errCh <- err
							return
						}
						for from, v := range got {
							want := fmt.Sprintf("r%d-i%d-from%d", r, inst, from)
							if string(v) != want {
								errCh <- fmt.Errorf("cross-talk: got %q want %q", v, want)
								return
							}
						}
					}
				}(r)
			}
			roundWG.Wait()
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Cleanup path: ending all rounds must not disturb anything.
	for _, p := range peers {
		p.EndRound(rounds)
	}
}

// Audit for the concurrent task scheduler: many goroutines of ONE round
// gather concurrently over the same peers — distinct instances, plus
// several waiters sharing the same (tag, sender) key — and everything
// resolves without cross-talk. Run with -race.
func TestConcurrentGathersSameRound(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{Jitter: time.Millisecond}, 7)
	t.Cleanup(func() { hub.Close() })
	ids := []wire.NodeID{1, 2, 3}
	peers := make([]*Peer, len(ids))
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = NewPeer(conn, ids)
		t.Cleanup(func(p *Peer) func() { return func() { p.Close() } }(peers[i]))
	}

	const workers = 12
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errCh := make(chan error, len(peers)*(workers+3))
	var wg sync.WaitGroup
	for _, p := range peers {
		// One goroutine per instance: broadcast + gather within round 1.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(p *Peer, w int) {
				defer wg.Done()
				tag := wire.Tag{Round: 1, Block: wire.BlockTask, Instance: uint32(w), Step: 1}
				payload := []byte(fmt.Sprintf("i%d-from%d", w, p.Self()))
				if err := p.BroadcastProviders(tag, payload); err != nil {
					errCh <- err
					return
				}
				got, err := p.GatherProviders(ctx, tag)
				if err != nil {
					errCh <- err
					return
				}
				for from, v := range got {
					if want := fmt.Sprintf("i%d-from%d", w, from); string(v) != want {
						errCh <- fmt.Errorf("cross-talk: got %q want %q", v, want)
						return
					}
				}
			}(p, w)
		}
		// Several goroutines waiting on the SAME key: all must see the one
		// payload.
		shared := wire.Tag{Round: 1, Block: wire.BlockTransfer, Instance: 999, Step: 1}
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(p *Peer) {
				defer wg.Done()
				v, err := p.Receive(ctx, shared, 2)
				if err != nil {
					errCh <- err
					return
				}
				if string(v) != "shared" {
					errCh <- fmt.Errorf("shared key: got %q", v)
				}
			}(p)
		}
	}
	sharedTag := wire.Tag{Round: 1, Block: wire.BlockTransfer, Instance: 999, Step: 1}
	for _, id := range ids {
		if err := peers[1].Send(id, sharedTag, []byte("shared")); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for _, p := range peers {
		p.EndRound(1)
	}
}

// AbortChan must close on abort, stay open for live rounds, and come back
// already closed for retired rounds (a receive there can never complete).
func TestAbortChan(t *testing.T) {
	peers := newCluster(t, 2)
	ch := peers[0].AbortChan(1)
	select {
	case <-ch:
		t.Fatal("live round's abort chan is closed")
	default:
	}
	if err := peers[0].Abort(1, "test"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("abort chan did not close on abort")
	}
	peers[0].EndRound(1)
	select {
	case <-peers[0].AbortChan(1):
	default:
		t.Fatal("retired round's abort chan must be closed")
	}
	if msgs, rounds := peers[0].StateSize(); msgs != 0 || rounds != 0 {
		t.Fatalf("AbortChan on a retired round left state: %d msgs, %d rounds", msgs, rounds)
	}
}
