package proto

import (
	"context"
	"errors"
	"testing"
	"time"

	"distauction/internal/transport"
	"distauction/internal/wire"
)

// newCluster attaches n provider peers (IDs 1..n) to a fresh zero-latency hub.
func newCluster(t *testing.T, n int) []*Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = NewPeer(conn, ids)
		t.Cleanup(func(p *Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func tag(round uint64, block wire.BlockID, inst uint32, step uint8) wire.Tag {
	return wire.Tag{Round: round, Block: block, Instance: inst, Step: step}
}

func TestSendReceiveByTag(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	tA := tag(1, wire.BlockTask, 0, 1)
	tB := tag(1, wire.BlockTask, 0, 2)

	// Send step-2 first; a receiver waiting for step-1 must not see it.
	if err := peers[0].Send(2, tB, []byte("step2")); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Send(2, tA, []byte("step1")); err != nil {
		t.Fatal(err)
	}
	got, err := peers[1].Receive(ctx, tA, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "step1" {
		t.Errorf("got %q, want step1", got)
	}
	got, err = peers[1].Receive(ctx, tB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "step2" {
		t.Errorf("got %q, want step2", got)
	}
}

func TestReceiveBlocksUntilArrival(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	tg := tag(1, wire.BlockCoin, 3, 1)
	done := make(chan []byte, 1)
	go func() {
		got, err := peers[1].Receive(ctx, tg, 1)
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	time.Sleep(10 * time.Millisecond)
	if err := peers[0].Send(2, tg, []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if string(got) != "late" {
			t.Errorf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receive never woke up")
	}
}

func TestSelfSendIsLocal(t *testing.T) {
	peers := newCluster(t, 1)
	ctx := testCtx(t)
	tg := tag(1, wire.BlockTask, 0, 1)
	if err := peers[0].Send(1, tg, []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := peers[0].Receive(ctx, tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "self" {
		t.Errorf("got %q", got)
	}
}

func TestDuplicateIdenticalIgnored(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	tg := tag(1, wire.BlockTask, 0, 1)
	if err := peers[0].Send(2, tg, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Send(2, tg, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[1].Receive(ctx, tg, 1); err != nil {
		t.Fatalf("identical duplicate must not abort: %v", err)
	}
	if err := peers[1].AbortErr(1); err != nil {
		t.Errorf("round aborted on identical duplicate: %v", err)
	}
}

func TestEquivocationAbortsRound(t *testing.T) {
	peers := newCluster(t, 3)
	ctx := testCtx(t)
	tg := tag(7, wire.BlockTransfer, 1, 1)

	// Provider 1 equivocates toward provider 2.
	if err := peers[0].Send(2, tg, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Send(2, tg, []byte("y")); err != nil {
		t.Fatal(err)
	}

	// Provider 2 must abort round 7.
	deadline := time.Now().Add(5 * time.Second)
	for peers[1].AbortErr(7) == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := peers[1].AbortErr(7)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("round not aborted at receiver: %v", err)
	}

	// And the abort must propagate to provider 3, whose receive fails.
	if _, err := peers[2].Receive(ctx, tg, 1); !errors.Is(err, ErrAborted) {
		t.Fatalf("provider 3 receive: got %v, want abort", err)
	}

	// Other rounds are unaffected.
	if err := peers[1].AbortErr(8); err != nil {
		t.Errorf("round 8 poisoned: %v", err)
	}
}

func TestAbortWakesBlockedReceivers(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	tg := tag(3, wire.BlockCoin, 0, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := peers[1].Receive(ctx, tg, 1)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := peers[0].Abort(3, "test abort"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAborted) {
			t.Errorf("got %v, want abort", err)
		}
		var ae *AbortError
		if !errors.As(err, &ae) || ae.Round != 3 {
			t.Errorf("abort error detail: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver not woken by abort")
	}
}

func TestAbortIsIdempotentAndLocal(t *testing.T) {
	peers := newCluster(t, 2)
	if err := peers[0].Abort(1, "first"); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Abort(1, "second"); err != nil {
		t.Fatal(err)
	}
	var ae *AbortError
	if err := peers[0].AbortErr(1); !errors.As(err, &ae) || ae.Reason != "first" {
		t.Errorf("first abort reason must win: %v", err)
	}
}

func TestGatherProviders(t *testing.T) {
	peers := newCluster(t, 3)
	ctx := testCtx(t)
	tg := tag(1, wire.BlockValidate, 0, 1)
	for _, p := range peers {
		if err := p.BroadcastProviders(tg, []byte{byte(p.Self())}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		got, err := p.GatherProviders(ctx, tg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("gathered %d, want 3", len(got))
		}
		for id, payload := range got {
			if len(payload) != 1 || payload[0] != byte(id) {
				t.Errorf("payload from %d = %v", id, payload)
			}
		}
	}
}

func TestReceiveContextCancel(t *testing.T) {
	peers := newCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	tg := tag(1, wire.BlockTask, 0, 1)
	if _, err := peers[1].Receive(ctx, tg, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v", err)
	}
	// The waiter must have been deregistered: a late message is buffered,
	// not delivered to a dead channel, and can still be received.
	if err := peers[0].Send(2, tg, []byte("late")); err != nil {
		t.Fatal(err)
	}
	got, err := peers[1].Receive(testCtx(t), tg, 1)
	if err != nil || string(got) != "late" {
		t.Errorf("late receive = %q, %v", got, err)
	}
}

func TestEndRoundDropsState(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	tg := tag(1, wire.BlockTask, 0, 1)
	if err := peers[0].Send(2, tg, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[1].Receive(ctx, tg, 1); err != nil {
		t.Fatal(err)
	}
	peers[1].EndRound(1)

	// A message for an ended round is dropped silently, and a receive on it
	// fails fast instead of resurrecting the retired state.
	if err := peers[0].Send(2, tg, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[1].Receive(ctx, tg, 1); !errors.Is(err, ErrRoundEnded) {
		t.Errorf("stale round receive: %v, want ErrRoundEnded", err)
	}
	if msgs, rounds := peers[1].StateSize(); msgs != 0 || rounds != 0 {
		t.Errorf("retired receive left state behind: %d msgs, %d rounds", msgs, rounds)
	}

	// Later rounds still work.
	t2 := tag(2, wire.BlockTask, 0, 1)
	if err := peers[0].Send(2, t2, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, err := peers[1].Receive(ctx, t2, 1); err != nil || string(got) != "fresh" {
		t.Errorf("round 2 receive = %q, %v", got, err)
	}
}

// TestEndRoundReclaimsPerRound buffers traffic across several live rounds
// and retires a prefix: exactly the retired rounds' state must vanish while
// later rounds stay receivable (the per-round index makes this O(retired)).
func TestEndRoundReclaimsPerRound(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	const rounds = 6
	for r := uint64(1); r <= rounds; r++ {
		if err := peers[0].Send(2, tag(r, wire.BlockTask, 0, 1), []byte{byte(r)}); err != nil {
			t.Fatal(err)
		}
		if _, err := peers[1].Receive(ctx, tag(r, wire.BlockTask, 0, 1), 1); err != nil {
			t.Fatal(err)
		}
	}
	if msgs, live := peers[1].StateSize(); msgs != rounds || live != rounds {
		t.Fatalf("before: %d msgs, %d rounds", msgs, live)
	}
	peers[1].EndRound(3)
	if msgs, live := peers[1].StateSize(); msgs != 3 || live != 3 {
		t.Fatalf("after EndRound(3): %d msgs, %d rounds (want 3, 3)", msgs, live)
	}
	for r := uint64(4); r <= rounds; r++ {
		if got, err := peers[1].Receive(ctx, tag(r, wire.BlockTask, 0, 1), 1); err != nil || got[0] != byte(r) {
			t.Fatalf("round %d after partial reclamation: %v %v", r, got, err)
		}
	}
}

// TestRecycledRoundStateIsClean aborts and retires a round, then reuses its
// round number ranges long enough that the recycled state would resurface
// any leaked abort latch or buffered message.
func TestRecycledRoundStateIsClean(t *testing.T) {
	peers := newCluster(t, 2)
	ctx := testCtx(t)
	// Cycle through many rounds on the same shard (stride = shard count) so
	// recycled states are certainly reused.
	const stride = 8 // numShards
	for i := 0; i < 5; i++ {
		r := uint64(1 + i*stride)
		if err := peers[1].Abort(r, "poison"); err != nil {
			t.Fatal(err)
		}
		if err := peers[1].AbortErr(r); err == nil {
			t.Fatalf("round %d not aborted", r)
		}
		peers[1].EndRound(r + stride - 1)
		next := r + stride
		if err := peers[1].AbortErr(next); err != nil {
			t.Fatalf("recycled state leaked abort into round %d: %v", next, err)
		}
		if err := peers[0].Send(2, tag(next, wire.BlockTask, 0, 1), []byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if got, err := peers[1].Receive(ctx, tag(next, wire.BlockTask, 0, 1), 1); err != nil || string(got) != "fresh" {
			t.Fatalf("round %d on recycled state: %q, %v", next, got, err)
		}
	}
}

func TestCloseUnblocksReceive(t *testing.T) {
	peers := newCluster(t, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := peers[1].Receive(context.Background(), tag(1, wire.BlockTask, 0, 1), 1)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := peers[1].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPeerClosed) {
			t.Errorf("got %v, want ErrPeerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receive not unblocked by close")
	}
	// Receive on a closed peer fails immediately.
	if _, err := peers[1].Receive(context.Background(), tag(1, wire.BlockTask, 0, 2), 1); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("got %v", err)
	}
}

func TestIsProvider(t *testing.T) {
	peers := newCluster(t, 3)
	if !peers[0].IsProvider(2) {
		t.Error("2 should be a provider")
	}
	if peers[0].IsProvider(99) {
		t.Error("99 should not be a provider")
	}
}

func TestNodeSetHelpers(t *testing.T) {
	a := []wire.NodeID{1, 3, 5}
	b := []wire.NodeID{2, 3, 6}
	u := UnionNodes(a, b)
	want := []wire.NodeID{1, 2, 3, 5, 6}
	if !EqualNodes(u, want) {
		t.Errorf("union = %v, want %v", u, want)
	}
	if !ContainsNode(u, 5) || ContainsNode(u, 4) {
		t.Error("ContainsNode wrong")
	}
	if EqualNodes(a, b) || !EqualNodes(a, a) {
		t.Error("EqualNodes wrong")
	}
	s := SortNodes([]wire.NodeID{5, 1, 3})
	if !EqualNodes(s, []wire.NodeID{1, 3, 5}) {
		t.Errorf("sort = %v", s)
	}
}

func TestAbortErrorFormatting(t *testing.T) {
	err := &AbortError{Round: 5, From: 2, Reason: "because"}
	if err.Error() == "" || !errors.Is(err, ErrAborted) {
		t.Error("abort error formatting/matching broken")
	}
}
