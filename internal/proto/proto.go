// Package proto is the protocol runtime of the distributed auctioneer.
//
// It layers three services over a transport.Conn:
//
//   - Tag routing: building blocks wait for messages by (round, block,
//     instance, step, sender) without seeing each other's traffic, matching
//     the paper's composition of blocks (§4).
//   - Duplicate and equivocation handling: a re-sent identical message is
//     absorbed; two *different* payloads from the same sender under the same
//     tag are an equivocation, which aborts the round (output ⊥).
//   - Abort (⊥) propagation: any provider that decides ⊥ broadcasts a
//     control message so no peer blocks forever waiting for it; every
//     pending and future receive in that round then fails with AbortError.
//
// The model is asynchronous with reliable channels (§3.3): messages are
// never lost but may be delayed and reordered arbitrarily. Receives accept a
// context; deadlines exist so that experiments with injected silent
// deviations terminate — under the paper's fair-schedule assumption an
// honest run never hits them.
package proto

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"distauction/internal/transport"
	"distauction/internal/wire"
)

// Control message steps (wire.BlockControl).
const (
	// StepAbort carries an abort reason; receiving it poisons the round.
	StepAbort uint8 = 1
)

// ErrAborted is the sentinel matched by errors.Is for any round abort (the
// paper's ⊥ outcome).
var ErrAborted = errors.New("proto: round aborted (⊥)")

// AbortError describes why a round aborted.
type AbortError struct {
	Round  uint64
	From   wire.NodeID // provider that signalled the abort (self included)
	Reason string
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("proto: round %d aborted (⊥) by %d: %s", e.Round, e.From, e.Reason)
}

// Is reports that an AbortError matches ErrAborted.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// ErrPeerClosed reports use of a closed Peer.
var ErrPeerClosed = errors.New("proto: peer closed")

type msgKey struct {
	tag  wire.Tag
	from wire.NodeID
}

type roundState struct {
	abortCh  chan struct{}
	abortErr *AbortError // set before abortCh closes
}

// Peer is one node's view of the protocol network.
type Peer struct {
	conn      transport.Conn
	self      wire.NodeID
	providers []wire.NodeID // sorted, may or may not include self

	mu       sync.Mutex
	buffered map[msgKey][]byte
	waiters  map[msgKey][]chan []byte
	rounds   map[uint64]*roundState
	minRound uint64
	closed   bool

	done      chan struct{}
	closeOnce sync.Once
	loopDone  chan struct{}
}

// NewPeer wraps conn and starts the routing loop. providers is the full
// provider set of the auction (used by broadcast and gather); it is copied
// and sorted.
func NewPeer(conn transport.Conn, providers []wire.NodeID) *Peer {
	ps := make([]wire.NodeID, len(providers))
	copy(ps, providers)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	p := &Peer{
		conn:      conn,
		self:      conn.Self(),
		providers: ps,
		buffered:  make(map[msgKey][]byte),
		waiters:   make(map[msgKey][]chan []byte),
		rounds:    make(map[uint64]*roundState),
		done:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	go p.runLoop()
	return p
}

// Self returns the local node ID.
func (p *Peer) Self() wire.NodeID { return p.self }

// Providers returns the provider set, sorted ascending. The slice is shared;
// callers must not modify it.
func (p *Peer) Providers() []wire.NodeID { return p.providers }

// IsProvider reports whether id is in the provider set.
func (p *Peer) IsProvider(id wire.NodeID) bool {
	i := sort.Search(len(p.providers), func(i int) bool { return p.providers[i] >= id })
	return i < len(p.providers) && p.providers[i] == id
}

// Close stops the routing loop and releases the underlying connection.
func (p *Peer) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		err = p.conn.Close()
		<-p.loopDone
		p.mu.Lock()
		p.closed = true
		// Wake every waiter; they will observe the closed state.
		for _, ws := range p.waiters {
			for _, ch := range ws {
				close(ch)
			}
		}
		p.waiters = make(map[msgKey][]chan []byte)
		p.mu.Unlock()
	})
	return err
}

func (p *Peer) runLoop() {
	defer close(p.loopDone)
	ctx := context.Background()
	for {
		env, err := p.conn.Recv(ctx)
		if err != nil {
			return // connection closed
		}
		p.handle(env.From, env.Tag, env.Payload)
	}
}

// handle routes one message. It is also the local delivery path for
// self-addressed sends.
func (p *Peer) handle(from wire.NodeID, tag wire.Tag, payload []byte) {
	if tag.Block == wire.BlockControl && tag.Step == StepAbort {
		reason := "unspecified"
		d := wire.NewDecoder(payload)
		if s := d.String(); d.Err() == nil {
			reason = s
		}
		p.markAborted(tag.Round, from, reason)
		return
	}

	p.mu.Lock()
	if p.closed || tag.Round < p.minRound {
		p.mu.Unlock()
		return
	}
	key := msgKey{tag: tag, from: from}
	if prev, ok := p.buffered[key]; ok {
		equiv := !bytes.Equal(prev, payload)
		p.mu.Unlock()
		if equiv {
			// Same sender, same tag, different payload: equivocation.
			// This is the ⊥-inducing deviation of §3.2; poison the round
			// and tell everyone so nobody blocks.
			reason := fmt.Sprintf("equivocation by %d on %v", from, tag)
			p.markAborted(tag.Round, p.self, reason)
			_ = p.broadcastAbort(tag.Round, reason)
		}
		return
	}
	p.buffered[key] = payload
	ws := p.waiters[key]
	delete(p.waiters, key)
	p.mu.Unlock()
	for _, ch := range ws {
		ch <- payload // buffered channel of size 1; never blocks
	}
}

// roundLocked returns the state for round, creating it if needed.
// Caller holds p.mu.
func (p *Peer) roundLocked(round uint64) *roundState {
	rs, ok := p.rounds[round]
	if !ok {
		rs = &roundState{abortCh: make(chan struct{})}
		p.rounds[round] = rs
	}
	return rs
}

func (p *Peer) markAborted(round uint64, from wire.NodeID, reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if round < p.minRound {
		return
	}
	rs := p.roundLocked(round)
	if rs.abortErr != nil {
		return // already aborted
	}
	rs.abortErr = &AbortError{Round: round, From: from, Reason: reason}
	close(rs.abortCh)
}

func (p *Peer) broadcastAbort(round uint64, reason string) error {
	enc := wire.NewEncoder(len(reason) + 4)
	enc.String(reason)
	payload := enc.Buffer()
	tag := wire.Tag{Round: round, Block: wire.BlockControl, Step: StepAbort}
	var firstErr error
	for _, id := range p.providers {
		if id == p.self {
			continue
		}
		env := wire.Envelope{From: p.self, To: id, Tag: tag, Payload: payload}
		if err := p.conn.Send(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Abort declares ⊥ for round: it poisons the local round state and notifies
// all other providers. It is idempotent.
func (p *Peer) Abort(round uint64, reason string) error {
	p.markAborted(round, p.self, reason)
	return p.broadcastAbort(round, reason)
}

// FailRound declares ⊥ for round with the given reason and returns the
// round's abort error (which may carry an earlier reason if the round was
// already aborted). Building blocks call it on any local failure so that no
// peer is left blocking.
func (p *Peer) FailRound(round uint64, reason string) error {
	_ = p.Abort(round, reason)
	if err := p.AbortErr(round); err != nil {
		return err
	}
	return &AbortError{Round: round, From: p.self, Reason: reason}
}

// AbortErr returns the abort error for round, or nil.
func (p *Peer) AbortErr(round uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rs, ok := p.rounds[round]; ok && rs.abortErr != nil {
		return rs.abortErr
	}
	return nil
}

// StateSize reports the buffered protocol state: the number of buffered
// messages plus pending waiter keys, and the number of live round entries.
// Sessions reclaim state as rounds complete, so both stay bounded by the
// pipeline depth regardless of how many rounds have run.
func (p *Peer) StateSize() (msgs, rounds int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buffered) + len(p.waiters), len(p.rounds)
}

// EndRound discards all buffered state for rounds <= round. Later messages
// for those rounds are dropped. Rounds must be used in increasing order.
func (p *Peer) EndRound(round uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if round+1 > p.minRound {
		p.minRound = round + 1
	}
	for k := range p.buffered {
		if k.tag.Round <= round {
			delete(p.buffered, k)
		}
	}
	for k, ws := range p.waiters {
		if k.tag.Round <= round {
			for _, ch := range ws {
				close(ch)
			}
			delete(p.waiters, k)
		}
	}
	for r := range p.rounds {
		if r <= round {
			delete(p.rounds, r)
		}
	}
}

// Send transmits payload under tag to a single node. Sends to self are
// delivered locally without touching the transport.
func (p *Peer) Send(to wire.NodeID, tag wire.Tag, payload []byte) error {
	if to == p.self {
		p.handle(p.self, tag, payload)
		return nil
	}
	env := wire.Envelope{From: p.self, To: to, Tag: tag, Payload: payload}
	return p.conn.Send(env)
}

// BroadcastProviders sends payload under tag to every provider, including
// the local node (delivered locally).
func (p *Peer) BroadcastProviders(tag wire.Tag, payload []byte) error {
	var firstErr error
	for _, id := range p.providers {
		if err := p.Send(id, tag, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Receive blocks until a message with the given tag from the given sender
// arrives, the round aborts, the context expires, or the peer closes.
func (p *Peer) Receive(ctx context.Context, tag wire.Tag, from wire.NodeID) ([]byte, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPeerClosed
	}
	rs := p.roundLocked(tag.Round)
	if rs.abortErr != nil {
		err := rs.abortErr
		p.mu.Unlock()
		return nil, err
	}
	key := msgKey{tag: tag, from: from}
	if payload, ok := p.buffered[key]; ok {
		p.mu.Unlock()
		return payload, nil
	}
	ch := make(chan []byte, 1)
	p.waiters[key] = append(p.waiters[key], ch)
	abortCh := rs.abortCh
	p.mu.Unlock()

	select {
	case payload, ok := <-ch:
		if !ok {
			return nil, ErrPeerClosed
		}
		return payload, nil
	case <-abortCh:
		// Prefer a message that raced in over the abort? No: once the round
		// is ⊥ every block must output ⊥ (§3.2).
		return nil, p.AbortErr(tag.Round)
	case <-ctx.Done():
		p.dropWaiter(key, ch)
		return nil, ctx.Err()
	case <-p.done:
		return nil, ErrPeerClosed
	}
}

func (p *Peer) dropWaiter(key msgKey, ch chan []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.waiters[key]
	for i, w := range ws {
		if w == ch {
			p.waiters[key] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(p.waiters[key]) == 0 {
		delete(p.waiters, key)
	}
}

// GatherProviders receives the message with the given tag from every
// provider (including self) and returns them keyed by sender.
func (p *Peer) GatherProviders(ctx context.Context, tag wire.Tag) (map[wire.NodeID][]byte, error) {
	return p.Gather(ctx, tag, p.providers)
}

// Gather receives the message with the given tag from every node in set.
func (p *Peer) Gather(ctx context.Context, tag wire.Tag, set []wire.NodeID) (map[wire.NodeID][]byte, error) {
	out := make(map[wire.NodeID][]byte, len(set))
	for _, id := range set {
		payload, err := p.Receive(ctx, tag, id)
		if err != nil {
			return nil, err
		}
		out[id] = payload
	}
	return out, nil
}
