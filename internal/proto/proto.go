// Package proto is the protocol runtime of the distributed auctioneer.
//
// It layers three services over a transport.Conn:
//
//   - Tag routing: building blocks wait for messages by (round, block,
//     instance, step, sender) without seeing each other's traffic, matching
//     the paper's composition of blocks (§4).
//   - Duplicate and equivocation handling: a re-sent identical message is
//     absorbed; two *different* payloads from the same sender under the same
//     tag are an equivocation, which aborts the round (output ⊥).
//   - Abort (⊥) propagation: any provider that decides ⊥ broadcasts a
//     control message so no peer blocks forever waiting for it; every
//     pending and future receive in that round then fails with AbortError.
//
// The model is asynchronous with reliable channels (§3.3): messages are
// never lost but may be delayed and reordered arbitrarily. Receives accept a
// context; deadlines exist so that experiments with injected silent
// deviations terminate — under the paper's fair-schedule assumption an
// honest run never hits them.
//
// Routing state is striped: rounds hash onto a small array of shards, each
// with its own lock and per-round message index. Under pipelining, handle
// and Receive on different rounds touch different shards and do not
// contend, and EndRound reclaims a round by dropping its index — O(live
// rounds) — instead of sweeping every buffered message key.
//
// Concurrency contract (audited for the concurrent task scheduler): every
// method of Peer is safe for concurrent use. Any number of goroutines may
// Receive/Gather on the same round concurrently — including on the same
// (tag, sender) key, where every waiter observes the one buffered payload —
// and sends, gathers and abort signalling may interleave freely. The only
// ordering requirements are the caller's own: EndRound must not run while
// the round still has in-flight block operations (they would observe
// ErrRoundEnded), and rounds must be ended in increasing order.
package proto

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/trace"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// Control message steps (wire.BlockControl).
const (
	// StepAbort carries an abort reason; receiving it poisons the round.
	StepAbort uint8 = 1
)

// ErrAborted is the sentinel matched by errors.Is for any round abort (the
// paper's ⊥ outcome).
var ErrAborted = errors.New("proto: round aborted (⊥)")

// AbortError describes why a round aborted.
type AbortError struct {
	Round   uint64
	From    wire.NodeID // provider that signalled the abort (self included)
	Reason  string
	Code    AbortCode   // typed cause (timeout, equivocation, MAC, …)
	Culprit wire.NodeID // deviant peer when attribution is known, else wire.Broadcast
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("proto: round %d aborted (⊥) by %d [%s]: %s", e.Round, e.From, e.Code, e.Reason)
}

// Is reports that an AbortError matches ErrAborted.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// DisconnectError reports a receive that gave up on a peer the transport's
// failure detector had already declared dead — the crash verdict, as
// opposed to the plain timeout of a slow-but-alive peer. It Is-matches
// context.DeadlineExceeded so that every timeout-tolerant path (a dead
// bidder degrades to a neutral bid exactly like a silent one) keeps
// working, while AbortCodeOf classifies it as AbortDisconnect.
type DisconnectError struct {
	Peer wire.NodeID
}

// Error implements error. The text deliberately avoids the timeout
// vocabulary so reason-string classification lands on disconnect.
func (e *DisconnectError) Error() string {
	return fmt.Sprintf("proto: peer %d disconnected (missed heartbeats)", e.Peer)
}

// Is reports that a DisconnectError matches context.DeadlineExceeded.
func (e *DisconnectError) Is(target error) bool { return target == context.DeadlineExceeded }

// ErrPeerClosed reports use of a closed Peer.
var ErrPeerClosed = errors.New("proto: peer closed")

// ErrRoundEnded reports a receive on a round whose state was already
// reclaimed by EndRound. Before this sentinel existed, such a receive
// silently resurrected the retired round's routing state and then blocked
// until its context expired — a hazard once many goroutines of a round run
// concurrently and one may race the round's reclamation.
var ErrRoundEnded = errors.New("proto: round already ended")

// numShards is the number of round stripes. Rounds map onto shards round-
// robin, so with pipeline depth d at most ⌈d/numShards⌉ live rounds share a
// lock. A small power of two keeps the Peer footprint negligible while
// covering any realistic pipeline depth.
const numShards = 8

// msgKey identifies a message within one round's index: the tag minus the
// round (redundant there — the index is per round) plus the sender. Keeping
// it 12 bytes instead of a full 24-byte tag halves the map-hash work on the
// per-message hot path.
type msgKey struct {
	instance uint32
	from     wire.NodeID
	block    wire.BlockID
	step     uint8
}

func keyOf(tag wire.Tag, from wire.NodeID) msgKey {
	return msgKey{instance: tag.Instance, from: from, block: tag.Block, step: tag.Step}
}

// roundState is one round's complete routing state: its buffered messages
// and pending waiters (the per-round index EndRound reclaims in one delete)
// plus the abort latch.
//
// abortCh is lazily created: the delivery path never touches it, so a round
// whose receives are all satisfied from the buffer (the common push-mode
// case) never allocates it. Blocking receives and AbortChan materialise it
// on demand; markAborted closes it only if it exists.
type roundState struct {
	buffered map[msgKey][]byte
	waiters  map[msgKey]*waiterNode
	abortCh  chan struct{} // nil until first subscriber
	abortErr *AbortError   // set before abortCh closes
	abortFns []func()      // OnAbort callbacks; run once outside the lock
}

// waiterNode is one blocked receive: its rendezvous channel plus an
// intrusive link, so registering any number of waiters on a key costs no
// slice allocation. Nodes (channel included) recycle through
// Peer.waiterPool; a node is pooled only when provably unreachable by any
// sender — consumed its one value, or unlinked under the shard lock.
type waiterNode struct {
	ch   chan []byte
	next *waiterNode
}

// shard is one stripe of the router: the rounds that hash onto it, guarded
// by a dedicated lock, plus a free list of retired round states. Recycling
// keeps the map bucket arrays alive across rounds — a pipelined session
// retires one round per round started, so steady state allocates no routing
// maps at all.
type shard struct {
	mu     sync.Mutex
	rounds map[uint64]*roundState
	free   []*roundState
}

// maxFree bounds a shard's free list; beyond it retired states go to the GC.
const maxFree = 4

// roundLocked returns the state for round, creating (or recycling) it if
// needed. Caller holds s.mu.
func (s *shard) roundLocked(round uint64) *roundState {
	rs, ok := s.rounds[round]
	if !ok {
		if n := len(s.free); n > 0 {
			rs = s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
		} else {
			rs = &roundState{
				buffered: make(map[msgKey][]byte),
				waiters:  make(map[msgKey]*waiterNode),
			}
		}
		if s.rounds == nil {
			s.rounds = make(map[uint64]*roundState)
		}
		s.rounds[round] = rs
	}
	return rs
}

// retireLocked closes round's pending waiters and recycles its state.
// Caller holds s.mu.
func (s *shard) retireLocked(round uint64, rs *roundState) {
	for _, ws := range rs.waiters {
		for n := ws; n != nil; {
			next := n.next // the receiver abandons n once the close lands
			close(n.ch)
			n = next
		}
	}
	delete(s.rounds, round)
	if len(s.free) >= maxFree {
		return
	}
	clear(rs.buffered)
	clear(rs.waiters)
	rs.abortCh = nil
	rs.abortErr = nil
	clear(rs.abortFns)
	rs.abortFns = rs.abortFns[:0]
	s.free = append(s.free, rs)
}

// Peer is one node's view of the protocol network.
type Peer struct {
	conn      transport.Conn
	self      wire.NodeID
	providers []wire.NodeID // sorted, may or may not include self
	lane      uint32        // marketplace lane, when conn carries one (trace labels)
	// health is the transport's failure detector, when the connection has
	// one: it upgrades receive timeouts on dead peers to DisconnectError.
	health interface{ PeerDead(wire.NodeID) bool }

	shards   [numShards]shard
	minRound atomic.Uint64 // rounds below this are retired; their messages drop
	closed   atomic.Bool

	// waiterPool recycles Receive's waiter nodes (rendezvous channel plus
	// link). A node is pooled only when no sender can reach it: its one
	// value was consumed, or dropWaiter unlinked it under the shard lock.
	waiterPool sync.Pool
	// ingestPool recycles ingestRun's deferred-reaction scratch.
	ingestPool sync.Pool

	done      chan struct{}
	closeOnce sync.Once
	loopDone  chan struct{}
}

// NewPeer wraps conn and starts message delivery. providers is the full
// provider set of the auction (used by broadcast and gather); it is copied
// and sorted.
//
// On a transport.PushConn, inbound messages are dispatched directly in the
// producing goroutines — senders and per-connection readers route into the
// striped shards concurrently. Other transports get a routing loop goroutine
// draining Recv.
func NewPeer(conn transport.Conn, providers []wire.NodeID) *Peer {
	ps := make([]wire.NodeID, len(providers))
	copy(ps, providers)
	SortNodes(ps)
	p := &Peer{
		conn:      conn,
		self:      conn.Self(),
		providers: ps,
		done:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	if lc, ok := conn.(interface{ Lane() uint32 }); ok {
		p.lane = lc.Lane()
	}
	if hr, ok := conn.(interface{ PeerDead(wire.NodeID) bool }); ok {
		p.health = hr
	}
	if pc, ok := conn.(transport.PushConn); ok {
		close(p.loopDone) // no routing loop to wait for
		pc.SetHandler(func(env wire.Envelope) { p.handle(env.From, env.Tag, env.Payload) })
		if pbc, ok := conn.(transport.PushBatchConn); ok {
			// Superframes arrive as one call per batch; ingest runs of
			// same-shard messages under a single lock acquisition.
			pbc.SetBatchHandler(p.handleBatch)
		}
	} else {
		go p.runLoop()
	}
	return p
}

// Self returns the local node ID.
func (p *Peer) Self() wire.NodeID { return p.self }

// Lane returns the marketplace lane this peer's connection is attached to
// (0 when the transport carries no lane). Trace events use it to label
// spans per auction.
func (p *Peer) Lane() uint32 { return p.lane }

// Providers returns the provider set, sorted ascending. The slice is shared;
// callers must not modify it.
func (p *Peer) Providers() []wire.NodeID { return p.providers }

// IsProvider reports whether id is in the provider set.
func (p *Peer) IsProvider(id wire.NodeID) bool {
	i := sort.Search(len(p.providers), func(i int) bool { return p.providers[i] >= id })
	return i < len(p.providers) && p.providers[i] == id
}

// shardFor returns the stripe that owns round.
func (p *Peer) shardFor(round uint64) *shard {
	return &p.shards[round&(numShards-1)]
}

// Close stops the routing loop and releases the underlying connection.
func (p *Peer) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		err = p.conn.Close()
		<-p.loopDone
		p.closed.Store(true)
		// Wake every waiter; they will observe the closed state.
		for i := range p.shards {
			sh := &p.shards[i]
			sh.mu.Lock()
			for _, rs := range sh.rounds {
				for _, ws := range rs.waiters {
					for n := ws; n != nil; {
						next := n.next
						close(n.ch)
						n = next
					}
				}
				clear(rs.waiters)
			}
			sh.mu.Unlock()
		}
	})
	return err
}

func (p *Peer) runLoop() {
	defer close(p.loopDone)
	ctx := context.Background()
	for {
		env, err := p.conn.Recv(ctx)
		if err != nil {
			return // connection closed
		}
		p.handle(env.From, env.Tag, env.Payload)
	}
}

// handle routes one message. It is also the local delivery path for
// self-addressed sends.
func (p *Peer) handle(from wire.NodeID, tag wire.Tag, payload []byte) {
	if tag.Block == wire.BlockControl && tag.Step == StepAbort {
		reason := "unspecified"
		code := AbortUnknown
		culprit := wire.Broadcast
		d := wire.NewDecoder(payload)
		if s := d.String(); d.Err() == nil {
			reason = s
			// The code and culprit fields were appended to the abort payload
			// after the reason; tolerate their absence (older peers).
			if d.Remaining() > 0 {
				if c := AbortCode(d.Uint8()); d.Err() == nil && c < NumAbortCodes {
					code = c
				}
			}
			if d.Remaining() > 0 {
				if id := d.Uint32(); d.Err() == nil {
					culprit = wire.NodeID(id)
				}
			}
		}
		p.markAborted(tag.Round, from, reason, code, culprit)
		return
	}

	if p.closed.Load() || tag.Round < p.minRound.Load() {
		return
	}
	sh := p.shardFor(tag.Round)
	sh.mu.Lock()
	// Re-check under the shard lock: EndRound bumps minRound before sweeping
	// the shards, so a message that passes here is either removed by the
	// sweep (which serialises behind this lock) or belongs to a live round.
	if p.closed.Load() || tag.Round < p.minRound.Load() {
		sh.mu.Unlock()
		return
	}
	rs := sh.roundLocked(tag.Round)
	key := keyOf(tag, from)
	if prev, ok := rs.buffered[key]; ok {
		equiv := !bytes.Equal(prev, payload)
		sh.mu.Unlock()
		if equiv {
			// Same sender, same tag, different payload: equivocation.
			// This is the ⊥-inducing deviation of §3.2; poison the round
			// and tell everyone so nobody blocks.
			reason := fmt.Sprintf("equivocation by %d on %v", from, tag)
			p.markAborted(tag.Round, p.self, reason, AbortEquivocation, from)
			_ = p.broadcastAbort(tag.Round, reason, AbortEquivocation, from)
		}
		return
	}
	rs.buffered[key] = payload
	ws := rs.waiters[key]
	if ws != nil {
		delete(rs.waiters, key)
	}
	sh.mu.Unlock()
	for n := ws; n != nil; {
		next := n.next  // the receiver may recycle n the moment the send lands
		n.ch <- payload // buffered channel of size 1; never blocks
		n = next
	}
}

// handleBatch ingests one superframe's envelopes in the producing
// goroutine: a single dispatch hop for the whole batch. Consecutive
// messages whose rounds share a shard are ingested under ONE lock
// acquisition — a burst of protocol steps for the same round (the common
// superframe content) pays one lock instead of one per message. Control
// (abort) messages take the ordinary path, so a ⊥ riding a superframe
// behaves exactly as it would alone.
//
// Payloads are buffered as-is: on stream transports they are views into
// the received frame, so one buffered envelope pins its whole frame until
// the round retires — the same zero-copy trade the per-envelope view
// decode made in PR 2, scaled by the batch and bounded by the coalescer's
// byte cap (transport.maxCoalesceBytes).
func (p *Peer) handleBatch(envs []wire.Envelope) {
	i := 0
	for i < len(envs) {
		e := &envs[i]
		if e.Tag.Block == wire.BlockControl {
			p.handle(e.From, e.Tag, e.Payload)
			i++
			continue
		}
		sh := p.shardFor(e.Tag.Round)
		j := i + 1
		for j < len(envs) && envs[j].Tag.Block != wire.BlockControl && p.shardFor(envs[j].Tag.Round) == sh {
			j++
		}
		p.ingestRun(sh, envs[i:j])
		i = j
	}
}

// batchWake defers a waiter notification out of the shard lock.
type batchWake struct {
	ch      chan []byte
	payload []byte
}

// batchEquiv defers an equivocation reaction out of the shard lock.
type batchEquiv struct {
	round  uint64
	from   wire.NodeID
	reason string
}

// ingestScratch is the deferred-reaction scratch of one ingestRun call,
// recycled through Peer.ingestPool so steady-state superframe ingest
// allocates no wake slices. Payload references are cleared before pooling.
type ingestScratch struct {
	wakes  []batchWake
	equivs []batchEquiv
}

// ingestRun buffers a run of same-shard messages under one lock hold,
// performing exactly the per-message work of handle; wakeups and
// equivocation reactions run after the lock drops (handle's own ordering).
func (p *Peer) ingestRun(sh *shard, run []wire.Envelope) {
	if p.closed.Load() {
		return
	}
	sc, _ := p.ingestPool.Get().(*ingestScratch)
	if sc == nil {
		sc = &ingestScratch{}
	}
	wakes, equivs := sc.wakes, sc.equivs
	sh.mu.Lock()
	if p.closed.Load() {
		sh.mu.Unlock()
		return
	}
	min := p.minRound.Load()
	for k := range run {
		e := &run[k]
		if e.Tag.Round < min {
			continue
		}
		rs := sh.roundLocked(e.Tag.Round)
		key := keyOf(e.Tag, e.From)
		if prev, ok := rs.buffered[key]; ok {
			if !bytes.Equal(prev, e.Payload) {
				equivs = append(equivs, batchEquiv{
					round:  e.Tag.Round,
					from:   e.From,
					reason: fmt.Sprintf("equivocation by %d on %v", e.From, e.Tag),
				})
			}
			continue
		}
		rs.buffered[key] = e.Payload
		if ws := rs.waiters[key]; ws != nil {
			delete(rs.waiters, key)
			for n := ws; n != nil; n = n.next {
				// next is read under the lock; the receiver cannot recycle n
				// before the deferred wake below actually sends.
				wakes = append(wakes, batchWake{ch: n.ch, payload: e.Payload})
			}
		}
	}
	sh.mu.Unlock()
	for _, w := range wakes {
		w.ch <- w.payload // buffered channel of size 1; never blocks
	}
	for _, q := range equivs {
		p.markAborted(q.round, p.self, q.reason, AbortEquivocation, q.from)
		_ = p.broadcastAbort(q.round, q.reason, AbortEquivocation, q.from)
	}
	clear(wakes) // unpin channels and payloads before recycling
	clear(equivs)
	sc.wakes, sc.equivs = wakes[:0], equivs[:0]
	p.ingestPool.Put(sc)
}

func (p *Peer) markAborted(round uint64, from wire.NodeID, reason string, code AbortCode, culprit wire.NodeID) {
	if code == AbortUnknown {
		code = ClassifyReason(reason)
	}
	sh := p.shardFor(round)
	sh.mu.Lock()
	if round < p.minRound.Load() {
		sh.mu.Unlock()
		return
	}
	rs := sh.roundLocked(round)
	if rs.abortErr != nil {
		sh.mu.Unlock()
		return // already aborted
	}
	rs.abortErr = &AbortError{Round: round, From: from, Reason: reason, Code: code, Culprit: culprit}
	if rs.abortCh != nil {
		close(rs.abortCh)
	}
	// Snapshot the callbacks so they run outside the shard lock (they may
	// re-enter the peer); the registered slice keeps its capacity for the
	// recycled round state.
	var stack [4]func()
	fns := append(stack[:0], rs.abortFns...)
	clear(rs.abortFns)
	rs.abortFns = rs.abortFns[:0]
	sh.mu.Unlock()
	// The abort event carries the attribution the flight recorder dumps:
	// which peer, which code — recorded once, by the node that latched ⊥.
	trace.Emit(trace.PhaseAbort, round, p.lane, p.self, culprit, int32(code))
	for _, fn := range fns {
		fn()
	}
}

// OnAbort registers fn to run when round aborts (⊥). fn runs at most once,
// outside the router's locks, in the goroutine that signalled the abort. If
// the round is already aborted — or already retired or the peer closed,
// which a subscriber must treat the same way — fn runs synchronously before
// OnAbort returns. Schedulers use it to cancel in-flight speculative work
// the moment the round dies, without parking a watchdog goroutine per
// round. Registrations are dropped when the round retires; a callback that
// never fires is simply forgotten, so fn must be safe to abandon (a
// context.CancelFunc is the intended shape).
func (p *Peer) OnAbort(round uint64, fn func()) {
	sh := p.shardFor(round)
	sh.mu.Lock()
	if round < p.minRound.Load() || p.closed.Load() {
		sh.mu.Unlock()
		fn()
		return
	}
	rs := sh.roundLocked(round)
	if rs.abortErr != nil {
		sh.mu.Unlock()
		fn()
		return
	}
	rs.abortFns = append(rs.abortFns, fn)
	sh.mu.Unlock()
}

func (p *Peer) broadcastAbort(round uint64, reason string, code AbortCode, culprit wire.NodeID) error {
	enc := wire.NewEncoder(len(reason) + 9)
	enc.String(reason)
	enc.Uint8(uint8(code))
	enc.Uint32(uint32(culprit))
	payload := enc.Buffer()
	tag := wire.Tag{Round: round, Block: wire.BlockControl, Step: StepAbort}
	var firstErr error
	for _, id := range p.providers {
		if id == p.self {
			continue
		}
		env := wire.Envelope{From: p.self, To: id, Tag: tag, Payload: payload}
		if err := p.conn.Send(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Abort declares ⊥ for round: it poisons the local round state and notifies
// all other providers. It is idempotent. The cause is classified from the
// reason string; callers that know the typed cause use AbortWith.
func (p *Peer) Abort(round uint64, reason string) error {
	return p.AbortWith(round, reason, ClassifyReason(reason), wire.Broadcast)
}

// AbortWith is Abort with an explicit typed cause and (where known) the
// deviant peer, both of which travel on the abort control message so every
// provider counts the same cause.
func (p *Peer) AbortWith(round uint64, reason string, code AbortCode, culprit wire.NodeID) error {
	p.markAborted(round, p.self, reason, code, culprit)
	return p.broadcastAbort(round, reason, code, culprit)
}

// FailRound declares ⊥ for round with the given reason and returns the
// round's abort error (which may carry an earlier reason if the round was
// already aborted). Building blocks call it on any local failure so that no
// peer is left blocking.
func (p *Peer) FailRound(round uint64, reason string) error {
	_ = p.Abort(round, reason)
	if err := p.AbortErr(round); err != nil {
		return err
	}
	return &AbortError{Round: round, From: p.self, Reason: reason, Code: ClassifyReason(reason), Culprit: wire.Broadcast}
}

// timeoutError is the receive-timeout verdict for a silent peer: a plain
// deadline for a peer presumed alive, a DisconnectError when the failure
// detector has already declared it dead — the crash-vs-slow distinction
// every downstream classifier keys on.
func (p *Peer) timeoutError(from wire.NodeID) error {
	if p.health != nil && from != p.self && p.health.PeerDead(from) {
		return &DisconnectError{Peer: from}
	}
	return context.DeadlineExceeded
}

// FailCause is FailRound for failures carried by a typed error: the abort
// code comes from the error's classification (a DisconnectError aborts as
// disconnect with the dead peer attributed as culprit) instead of being
// re-derived from prose, and op prefixes the reason for the trace.
func (p *Peer) FailCause(round uint64, op string, err error) error {
	var ae *AbortError
	if errors.As(err, &ae) {
		// Already an abort (a sub-block failed the round): nothing to add.
		return ae
	}
	code := AbortCodeOf(err)
	culprit := wire.Broadcast
	var de *DisconnectError
	if errors.As(err, &de) {
		culprit = de.Peer
	}
	reason := op + ": " + err.Error()
	_ = p.AbortWith(round, reason, code, culprit)
	if aerr := p.AbortErr(round); aerr != nil {
		return aerr
	}
	return &AbortError{Round: round, From: p.self, Reason: reason, Code: code, Culprit: culprit}
}

// AbortChan returns a channel that closes when round aborts (⊥). For a
// round already retired by EndRound it returns an already-closed channel —
// a retired round can never complete, so "treat it as dead" is the only
// useful answer. Schedulers select on it to cancel in-flight speculative
// work the moment the round dies.
func (p *Peer) AbortChan(round uint64) <-chan struct{} {
	sh := p.shardFor(round)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if round < p.minRound.Load() || p.closed.Load() {
		return closedChan
	}
	rs := sh.roundLocked(round)
	if rs.abortCh == nil {
		rs.abortCh = make(chan struct{})
		if rs.abortErr != nil {
			close(rs.abortCh)
		}
	}
	return rs.abortCh
}

// closedChan is the shared already-closed channel AbortChan hands out for
// retired rounds.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// AbortErr returns the abort error for round, or nil.
func (p *Peer) AbortErr(round uint64) error {
	sh := p.shardFor(round)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rs, ok := sh.rounds[round]; ok && rs.abortErr != nil {
		return rs.abortErr
	}
	return nil
}

// StateSize reports the buffered protocol state: the number of buffered
// messages plus pending waiter keys, and the number of live round entries.
// Sessions reclaim state as rounds complete, so both stay bounded by the
// pipeline depth regardless of how many rounds have run.
func (p *Peer) StateSize() (msgs, rounds int) {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		rounds += len(sh.rounds)
		for _, rs := range sh.rounds {
			msgs += len(rs.buffered) + len(rs.waiters)
		}
		sh.mu.Unlock()
	}
	return msgs, rounds
}

// EndRound discards all buffered state for rounds <= round. Later messages
// for those rounds are dropped. Rounds must be used in increasing order.
// Reclamation is O(the retired rounds' state): each round's messages and
// waiters live in that round's index, so ending a round never scans the
// still-live rounds' traffic.
func (p *Peer) EndRound(round uint64) {
	for {
		cur := p.minRound.Load()
		if round+1 <= cur || p.minRound.CompareAndSwap(cur, round+1) {
			break
		}
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for r, rs := range sh.rounds {
			if r <= round {
				sh.retireLocked(r, rs)
			}
		}
		sh.mu.Unlock()
	}
}

// Send transmits payload under tag to a single node. Sends to self are
// delivered locally without touching the transport.
func (p *Peer) Send(to wire.NodeID, tag wire.Tag, payload []byte) error {
	if to == p.self {
		p.handle(p.self, tag, payload)
		return nil
	}
	env := wire.Envelope{From: p.self, To: to, Tag: tag, Payload: payload}
	return p.conn.Send(env)
}

// BroadcastProviders sends payload under tag to every provider, including
// the local node (delivered locally).
func (p *Peer) BroadcastProviders(tag wire.Tag, payload []byte) error {
	var firstErr error
	for _, id := range p.providers {
		if err := p.Send(id, tag, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Receive blocks until a message with the given tag from the given sender
// arrives, the round aborts, the context expires, or the peer closes.
func (p *Peer) Receive(ctx context.Context, tag wire.Tag, from wire.NodeID) ([]byte, error) {
	return p.ReceiveTimeout(ctx, tag, from, nil)
}

// ReceiveTimeout is Receive with an additional give-up signal: when timeoutC
// fires (or is already closed) before a message arrives, the call returns
// context.DeadlineExceeded. A nil timeoutC never fires. Sessions use it with
// one reusable timer per scheduler instead of deriving a context (and its
// timer allocation) for every round; a buffered message is still returned
// even when timeoutC is ready.
func (p *Peer) ReceiveTimeout(ctx context.Context, tag wire.Tag, from wire.NodeID, timeoutC <-chan time.Time) ([]byte, error) {
	sh := p.shardFor(tag.Round)
	sh.mu.Lock()
	if p.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrPeerClosed
	}
	if tag.Round < p.minRound.Load() {
		sh.mu.Unlock()
		return nil, ErrRoundEnded
	}
	rs := sh.roundLocked(tag.Round)
	if rs.abortErr != nil {
		err := rs.abortErr
		sh.mu.Unlock()
		return nil, err
	}
	key := keyOf(tag, from)
	if payload, ok := rs.buffered[key]; ok {
		sh.mu.Unlock()
		return payload, nil
	}
	n, _ := p.waiterPool.Get().(*waiterNode)
	if n == nil {
		n = &waiterNode{ch: make(chan []byte, 1)}
	}
	n.next = rs.waiters[key]
	rs.waiters[key] = n
	if rs.abortCh == nil {
		rs.abortCh = make(chan struct{})
	}
	abortCh := rs.abortCh
	sh.mu.Unlock()

	select {
	case payload, ok := <-n.ch:
		if !ok {
			return nil, ErrPeerClosed
		}
		// The sender removed n from the index before sending, so nothing
		// else can send on or close its channel: recycle.
		n.next = nil
		p.waiterPool.Put(n)
		return payload, nil
	case <-abortCh:
		// Prefer a message that raced in over the abort? No: once the round
		// is ⊥ every block must output ⊥ (§3.2).
		return nil, p.AbortErr(tag.Round)
	case <-timeoutC:
		p.dropWaiter(tag.Round, key, n)
		return nil, p.timeoutError(from)
	case <-ctx.Done():
		p.dropWaiter(tag.Round, key, n)
		if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, p.timeoutError(from)
	case <-p.done:
		return nil, ErrPeerClosed
	}
}

// dropWaiter unregisters a waiter that gave up. If the node is still linked
// it is recycled — unlinked under the shard lock, no sender can reach it
// and its channel never received. A node already claimed by a racing
// delivery is abandoned to the GC instead: the in-flight send may still
// land in its buffer.
func (p *Peer) dropWaiter(round uint64, key msgKey, n *waiterNode) {
	sh := p.shardFor(round)
	sh.mu.Lock()
	rs, ok := sh.rounds[round]
	if !ok {
		sh.mu.Unlock()
		return
	}
	removed := false
	if rs.waiters[key] == n {
		if n.next == nil {
			delete(rs.waiters, key)
		} else {
			rs.waiters[key] = n.next
		}
		removed = true
	} else {
		for prev := rs.waiters[key]; prev != nil; prev = prev.next {
			if prev.next == n {
				prev.next = n.next
				removed = true
				break
			}
		}
	}
	sh.mu.Unlock()
	if removed {
		n.next = nil
		p.waiterPool.Put(n)
	}
}

// GatherProviders receives the message with the given tag from every
// provider (including self) and returns them keyed by sender.
func (p *Peer) GatherProviders(ctx context.Context, tag wire.Tag) (map[wire.NodeID][]byte, error) {
	return p.Gather(ctx, tag, p.providers)
}

// Gather receives the message with the given tag from every node in set.
func (p *Peer) Gather(ctx context.Context, tag wire.Tag, set []wire.NodeID) (map[wire.NodeID][]byte, error) {
	out := make(map[wire.NodeID][]byte, len(set))
	for _, id := range set {
		payload, err := p.Receive(ctx, tag, id)
		if err != nil {
			return nil, err
		}
		out[id] = payload
	}
	return out, nil
}

// GatherOrdered receives the message with the given tag from every node in
// set, returning payloads aligned with set's order. It is the
// allocation-light variant of Gather for hot paths that iterate the set by
// index anyway (one slice instead of a map).
func (p *Peer) GatherOrdered(ctx context.Context, tag wire.Tag, set []wire.NodeID) ([][]byte, error) {
	out := make([][]byte, len(set))
	for i, id := range set {
		payload, err := p.Receive(ctx, tag, id)
		if err != nil {
			return nil, err
		}
		out[i] = payload
	}
	return out, nil
}

// GatherAppend is GatherOrdered appending into buf: the payloads for set, in
// set's order, are appended and the extended slice returned (also on error,
// so the caller keeps its scratch). Hot paths with a pooled per-round
// scratch reuse its backing array across rounds instead of allocating a
// fresh result slice per gather; the appended payloads are views into the
// round's buffered messages and must be dropped (or copied) before the
// scratch is recycled.
func (p *Peer) GatherAppend(ctx context.Context, tag wire.Tag, set []wire.NodeID, buf [][]byte) ([][]byte, error) {
	for _, id := range set {
		payload, err := p.Receive(ctx, tag, id)
		if err != nil {
			return buf, err
		}
		buf = append(buf, payload)
	}
	return buf, nil
}
