package proto

import (
	"slices"
	"sort"

	"distauction/internal/wire"
)

// SortNodes sorts ids ascending in place and returns it.
func SortNodes(ids []wire.NodeID) []wire.NodeID {
	slices.Sort(ids) // no Swapper allocation, unlike sort.Slice
	return ids
}

// ContainsNode reports whether sorted set contains id.
func ContainsNode(set []wire.NodeID, id wire.NodeID) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= id })
	return i < len(set) && set[i] == id
}

// EqualNodes reports whether a and b contain the same IDs in the same order.
func EqualNodes(a, b []wire.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UnionNodes returns the sorted union of two sorted sets.
func UnionNodes(a, b []wire.NodeID) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
