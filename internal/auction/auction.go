// Package auction defines the resource-allocation auction domain of §3.1:
// bids, allocations, payments, welfare and utilities.
//
// Quantities are bandwidth units and currency in fixed-point micro-units.
// Values are *per unit of resource*: a user bid (v, d) means "I want d units
// and value each at v"; a provider bid (c, C) means "I can supply C units at
// a cost of c per unit".
//
// All types have canonical wire encodings: bid agreement feeds the encoded
// bytes through consensus, and providers cross-validate outcomes by digest.
package auction

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"distauction/internal/fixed"
	"distauction/internal/wire"
)

// MaxMagnitude caps every bid component (value, cost, demand, capacity) at
// one billion units. The cap keeps all welfare sums far from fixed-point
// overflow; a bid beyond it is invalid.
var MaxMagnitude = fixed.MustInt(1_000_000_000)

// ErrInvalidBid reports a bid that fails validation.
var ErrInvalidBid = errors.New("auction: invalid bid")

// UserBid is a user's declared valuation: Value per unit of bandwidth, for
// up to Demand units. The zero UserBid is the neutral bid ⊥ that excludes
// the user from the auction (§3.2).
type UserBid struct {
	Value  fixed.Fixed
	Demand fixed.Fixed
}

// NeutralUserBid is the bid substituted for missing or invalid submissions.
func NeutralUserBid() UserBid { return UserBid{} }

// IsNeutral reports whether the bid excludes its user from the auction.
func (b UserBid) IsNeutral() bool { return b.Value == 0 && b.Demand == 0 }

// Validate checks the bid. Neutral bids are valid; otherwise both components
// must be strictly positive and bounded.
func (b UserBid) Validate() error {
	if b.IsNeutral() {
		return nil
	}
	if b.Value <= 0 || b.Demand <= 0 {
		return fmt.Errorf("%w: non-positive component (value=%v demand=%v)", ErrInvalidBid, b.Value, b.Demand)
	}
	if b.Value > MaxMagnitude || b.Demand > MaxMagnitude {
		return fmt.Errorf("%w: component exceeds cap", ErrInvalidBid)
	}
	return nil
}

// Total returns Value×Demand, the bid's total willingness to pay, saturating
// on overflow (impossible for validated bids).
func (b UserBid) Total() fixed.Fixed {
	t, err := b.Value.Mul(b.Demand)
	if err != nil {
		return fixed.Max
	}
	return t
}

// Encode returns the canonical encoding used by bid agreement.
func (b UserBid) Encode() []byte {
	enc := wire.NewEncoder(16)
	enc.Fixed(b.Value)
	enc.Fixed(b.Demand)
	return enc.Buffer()
}

// DecodeUserBid parses a canonical user bid.
func DecodeUserBid(raw []byte) (UserBid, error) {
	d := wire.NewDecoder(raw)
	var b UserBid
	b.Value = d.Fixed()
	b.Demand = d.Fixed()
	if err := d.Finish(); err != nil {
		return UserBid{}, fmt.Errorf("decode user bid: %w", err)
	}
	return b, nil
}

// SanitizeUserBid decodes raw and returns the bid if valid, or the neutral
// bid otherwise — the ⊥-substitution of §3.2.
func SanitizeUserBid(raw []byte) UserBid {
	b, err := DecodeUserBid(raw)
	if err != nil || b.Validate() != nil {
		return NeutralUserBid()
	}
	return b
}

// ProviderBid is a provider's declared cost per unit and available capacity
// (double auctions only; in standard auctions providers do not bid).
type ProviderBid struct {
	Cost     fixed.Fixed
	Capacity fixed.Fixed
}

// NeutralProviderBid is the substitution for a missing provider bid: zero
// capacity removes the provider from the supply side.
func NeutralProviderBid() ProviderBid { return ProviderBid{} }

// IsNeutral reports whether the bid removes the provider from the auction.
func (b ProviderBid) IsNeutral() bool { return b.Cost == 0 && b.Capacity == 0 }

// Validate checks the bid. Cost must be positive (a zero reserve price is
// expressed as one micro-unit) and capacity non-negative.
func (b ProviderBid) Validate() error {
	if b.IsNeutral() {
		return nil
	}
	if b.Cost <= 0 || b.Capacity <= 0 {
		return fmt.Errorf("%w: non-positive component (cost=%v capacity=%v)", ErrInvalidBid, b.Cost, b.Capacity)
	}
	if b.Cost > MaxMagnitude || b.Capacity > MaxMagnitude {
		return fmt.Errorf("%w: component exceeds cap", ErrInvalidBid)
	}
	return nil
}

// Encode returns the canonical encoding used by bid agreement.
func (b ProviderBid) Encode() []byte {
	enc := wire.NewEncoder(16)
	enc.Fixed(b.Cost)
	enc.Fixed(b.Capacity)
	return enc.Buffer()
}

// DecodeProviderBid parses a canonical provider bid.
func DecodeProviderBid(raw []byte) (ProviderBid, error) {
	d := wire.NewDecoder(raw)
	var b ProviderBid
	b.Cost = d.Fixed()
	b.Capacity = d.Fixed()
	if err := d.Finish(); err != nil {
		return ProviderBid{}, fmt.Errorf("decode provider bid: %w", err)
	}
	return b, nil
}

// SanitizeProviderBid decodes raw and returns the bid if valid, or the
// neutral bid otherwise.
func SanitizeProviderBid(raw []byte) ProviderBid {
	b, err := DecodeProviderBid(raw)
	if err != nil || b.Validate() != nil {
		return NeutralProviderBid()
	}
	return b
}

// BidVector is the agreed vector ~b: one user bid per user and, for double
// auctions, one provider bid per provider.
type BidVector struct {
	Users     []UserBid
	Providers []ProviderBid
}

// Encode returns the canonical encoding of the whole vector.
func (v BidVector) Encode() []byte {
	enc := wire.NewEncoder(16 * (len(v.Users) + len(v.Providers) + 1))
	enc.Uvarint(uint64(len(v.Users)))
	for _, b := range v.Users {
		enc.Fixed(b.Value)
		enc.Fixed(b.Demand)
	}
	enc.Uvarint(uint64(len(v.Providers)))
	for _, b := range v.Providers {
		enc.Fixed(b.Cost)
		enc.Fixed(b.Capacity)
	}
	return enc.Buffer()
}

// DecodeBidVector parses a canonical bid vector.
func DecodeBidVector(raw []byte) (BidVector, error) {
	d := wire.NewDecoder(raw)
	var v BidVector
	n := d.SliceLen(2)
	v.Users = make([]UserBid, n)
	for i := range v.Users {
		v.Users[i].Value = d.Fixed()
		v.Users[i].Demand = d.Fixed()
	}
	m := d.SliceLen(2)
	v.Providers = make([]ProviderBid, m)
	for i := range v.Providers {
		v.Providers[i].Cost = d.Fixed()
		v.Providers[i].Capacity = d.Fixed()
	}
	if err := d.Finish(); err != nil {
		return BidVector{}, fmt.Errorf("decode bid vector: %w", err)
	}
	return v, nil
}

// Digest returns the SHA-256 of the canonical encoding; input validation
// compares digests.
func (v BidVector) Digest() [sha256.Size]byte {
	return sha256.Sum256(v.Encode())
}
