package auction

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"distauction/internal/fixed"
	"distauction/internal/wire"
)

// ErrShape reports dimension mismatches between allocations, payments and
// bid vectors.
var ErrShape = errors.New("auction: dimension mismatch")

// Allocation assigns bandwidth units of providers to users: Units is a dense
// row-major n×m matrix where entry (u, p) is the bandwidth user u receives
// at provider p.
type Allocation struct {
	NumUsers     int
	NumProviders int
	Units        []fixed.Fixed
}

// NewAllocation returns an empty n×m allocation.
func NewAllocation(numUsers, numProviders int) Allocation {
	return Allocation{
		NumUsers:     numUsers,
		NumProviders: numProviders,
		Units:        make([]fixed.Fixed, numUsers*numProviders),
	}
}

// At returns the units allocated to user u at provider p.
func (a Allocation) At(u, p int) fixed.Fixed { return a.Units[u*a.NumProviders+p] }

// Set stores the units allocated to user u at provider p.
func (a Allocation) Set(u, p int, v fixed.Fixed) { a.Units[u*a.NumProviders+p] = v }

// Add increases the allocation of user u at provider p, saturating.
func (a Allocation) Add(u, p int, v fixed.Fixed) {
	i := u*a.NumProviders + p
	a.Units[i] = a.Units[i].SatAdd(v)
}

// UserTotal returns the total units user u receives across providers.
func (a Allocation) UserTotal(u int) fixed.Fixed {
	var total fixed.Fixed
	for p := 0; p < a.NumProviders; p++ {
		total = total.SatAdd(a.At(u, p))
	}
	return total
}

// ProviderLoad returns the total units provider p supplies across users.
func (a Allocation) ProviderLoad(p int) fixed.Fixed {
	var total fixed.Fixed
	for u := 0; u < a.NumUsers; u++ {
		total = total.SatAdd(a.At(u, p))
	}
	return total
}

// CheckFeasible verifies the allocation is non-negative and respects the
// given provider capacities (the feasibility requirement of §3.1).
func (a Allocation) CheckFeasible(capacities []fixed.Fixed) error {
	if len(capacities) != a.NumProviders {
		return fmt.Errorf("%w: %d capacities for %d providers", ErrShape, len(capacities), a.NumProviders)
	}
	for _, u := range a.Units {
		if u < 0 {
			return errors.New("auction: negative allocation entry")
		}
	}
	for p := 0; p < a.NumProviders; p++ {
		if load := a.ProviderLoad(p); load > capacities[p] {
			return fmt.Errorf("auction: provider %d over capacity: %v > %v", p, load, capacities[p])
		}
	}
	return nil
}

// Payments records the currency flow of an outcome: what each user pays and
// what each provider receives.
type Payments struct {
	ByUser     []fixed.Fixed
	ToProvider []fixed.Fixed
}

// NewPayments returns zeroed payments for n users and m providers.
func NewPayments(numUsers, numProviders int) Payments {
	return Payments{
		ByUser:     make([]fixed.Fixed, numUsers),
		ToProvider: make([]fixed.Fixed, numProviders),
	}
}

// TotalPaid returns the sum paid by users.
func (p Payments) TotalPaid() fixed.Fixed {
	var t fixed.Fixed
	for _, v := range p.ByUser {
		t = t.SatAdd(v)
	}
	return t
}

// TotalReceived returns the sum received by providers.
func (p Payments) TotalReceived() fixed.Fixed {
	var t fixed.Fixed
	for _, v := range p.ToProvider {
		t = t.SatAdd(v)
	}
	return t
}

// BudgetBalanced reports whether user payments cover provider payments
// (the budget-balance property of §3.1).
func (p Payments) BudgetBalanced() bool {
	return p.TotalPaid() >= p.TotalReceived()
}

// Outcome is the pair (x, ~p) produced by the auctioneer.
type Outcome struct {
	Alloc Allocation
	Pay   Payments
}

// Validate checks internal dimension consistency and sign constraints.
func (o Outcome) Validate() error {
	if len(o.Alloc.Units) != o.Alloc.NumUsers*o.Alloc.NumProviders {
		return fmt.Errorf("%w: allocation matrix size", ErrShape)
	}
	if len(o.Pay.ByUser) != o.Alloc.NumUsers || len(o.Pay.ToProvider) != o.Alloc.NumProviders {
		return fmt.Errorf("%w: payments vs allocation", ErrShape)
	}
	for _, v := range o.Pay.ByUser {
		if v < 0 {
			return errors.New("auction: negative user payment")
		}
	}
	for _, v := range o.Pay.ToProvider {
		if v < 0 {
			return errors.New("auction: negative provider payment")
		}
	}
	return nil
}

// Encode returns the canonical encoding of the outcome.
func (o Outcome) Encode() []byte {
	enc := wire.NewEncoder(16 + 8*len(o.Alloc.Units) + 8*(len(o.Pay.ByUser)+len(o.Pay.ToProvider)))
	enc.Uvarint(uint64(o.Alloc.NumUsers))
	enc.Uvarint(uint64(o.Alloc.NumProviders))
	enc.FixedSlice(o.Alloc.Units)
	enc.FixedSlice(o.Pay.ByUser)
	enc.FixedSlice(o.Pay.ToProvider)
	return enc.Buffer()
}

// DecodeOutcome parses a canonical outcome and validates its shape.
func DecodeOutcome(raw []byte) (Outcome, error) {
	d := wire.NewDecoder(raw)
	var o Outcome
	o.Alloc.NumUsers = int(d.Uvarint())
	o.Alloc.NumProviders = int(d.Uvarint())
	o.Alloc.Units = d.FixedSlice()
	o.Pay.ByUser = d.FixedSlice()
	o.Pay.ToProvider = d.FixedSlice()
	if err := d.Finish(); err != nil {
		return Outcome{}, fmt.Errorf("decode outcome: %w", err)
	}
	if err := o.Validate(); err != nil {
		return Outcome{}, err
	}
	return o, nil
}

// Digest returns the SHA-256 of the canonical encoding; providers
// cross-validate redundant computations by comparing digests.
func (o Outcome) Digest() [sha256.Size]byte {
	return sha256.Sum256(o.Encode())
}

// WelfareStandard is the standard-auction social welfare: the total value
// users attribute to the allocation (§3.1).
func WelfareStandard(users []UserBid, a Allocation) fixed.Fixed {
	if len(users) != a.NumUsers {
		return 0
	}
	var w fixed.Fixed
	for u, bid := range users {
		w = w.SatAdd(bid.Value.MulFrac(a.UserTotal(u)))
	}
	return w
}

// WelfareDouble is the double-auction social welfare: user value minus
// provider cost of the allocation (§3.1).
func WelfareDouble(users []UserBid, providers []ProviderBid, a Allocation) fixed.Fixed {
	if len(users) != a.NumUsers || len(providers) != a.NumProviders {
		return 0
	}
	w := WelfareStandard(users, a)
	for p, bid := range providers {
		w = w.SatSub(bid.Cost.MulFrac(a.ProviderLoad(p)))
	}
	return w
}

// UserUtility is user u's utility under its true valuation: value of the
// allocation minus payment (§3.3). A ⊥ outcome has utility zero by
// definition; callers model that by not calling this.
func UserUtility(truth UserBid, u int, o Outcome) fixed.Fixed {
	value := truth.Value.MulFrac(o.Alloc.UserTotal(u))
	return value.SatSub(o.Pay.ByUser[u])
}

// ProviderUtility is provider p's utility under its true cost: payment
// received minus cost of supplied units (§3.3).
func ProviderUtility(truth ProviderBid, p int, o Outcome) fixed.Fixed {
	cost := truth.Cost.MulFrac(o.Alloc.ProviderLoad(p))
	return o.Pay.ToProvider[p].SatSub(cost)
}
