package auction

import (
	"bytes"
	"testing"
	"testing/quick"

	"distauction/internal/fixed"
)

func TestUserBidValidate(t *testing.T) {
	tests := []struct {
		name string
		bid  UserBid
		ok   bool
	}{
		{"neutral", NeutralUserBid(), true},
		{"normal", UserBid{Value: fixed.One, Demand: fixed.One}, true},
		{"zero value", UserBid{Value: 0, Demand: fixed.One}, false},
		{"zero demand", UserBid{Value: fixed.One, Demand: 0}, false},
		{"negative value", UserBid{Value: -1, Demand: fixed.One}, false},
		{"negative demand", UserBid{Value: fixed.One, Demand: -1}, false},
		{"huge value", UserBid{Value: MaxMagnitude + 1, Demand: fixed.One}, false},
		{"huge demand", UserBid{Value: fixed.One, Demand: MaxMagnitude + 1}, false},
		{"at cap", UserBid{Value: MaxMagnitude, Demand: MaxMagnitude}, true},
	}
	for _, tt := range tests {
		if err := tt.bid.Validate(); (err == nil) != tt.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestProviderBidValidate(t *testing.T) {
	tests := []struct {
		name string
		bid  ProviderBid
		ok   bool
	}{
		{"neutral", NeutralProviderBid(), true},
		{"normal", ProviderBid{Cost: fixed.One, Capacity: fixed.One}, true},
		{"zero cost", ProviderBid{Cost: 0, Capacity: fixed.One}, false},
		{"zero capacity", ProviderBid{Cost: fixed.One, Capacity: 0}, false},
		{"negative", ProviderBid{Cost: -5, Capacity: fixed.One}, false},
		{"huge", ProviderBid{Cost: fixed.One, Capacity: MaxMagnitude + 1}, false},
	}
	for _, tt := range tests {
		if err := tt.bid.Validate(); (err == nil) != tt.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestSanitizeUserBid(t *testing.T) {
	good := UserBid{Value: fixed.MustFloat(1.25), Demand: fixed.MustFloat(0.5)}
	if got := SanitizeUserBid(good.Encode()); got != good {
		t.Errorf("valid bid mangled: %+v", got)
	}
	// Garbage bytes → neutral.
	if got := SanitizeUserBid([]byte("garbage")); !got.IsNeutral() {
		t.Errorf("garbage not neutralised: %+v", got)
	}
	// Well-formed but invalid → neutral.
	bad := UserBid{Value: -5, Demand: fixed.One}
	if got := SanitizeUserBid(bad.Encode()); !got.IsNeutral() {
		t.Errorf("invalid bid not neutralised: %+v", got)
	}
	if got := SanitizeUserBid(nil); !got.IsNeutral() {
		t.Errorf("nil not neutralised: %+v", got)
	}
}

func TestSanitizeProviderBid(t *testing.T) {
	good := ProviderBid{Cost: fixed.MustFloat(0.4), Capacity: fixed.MustFloat(10)}
	if got := SanitizeProviderBid(good.Encode()); got != good {
		t.Errorf("valid bid mangled: %+v", got)
	}
	if got := SanitizeProviderBid([]byte{1, 2}); !got.IsNeutral() {
		t.Errorf("garbage not neutralised: %+v", got)
	}
}

func TestUserBidTotal(t *testing.T) {
	b := UserBid{Value: fixed.MustFloat(2), Demand: fixed.MustFloat(0.5)}
	if got := b.Total(); got != fixed.One {
		t.Errorf("Total = %v, want 1", got)
	}
}

func TestQuickBidRoundTrip(t *testing.T) {
	f := func(v, d int64) bool {
		b := UserBid{Value: fixed.Fixed(v), Demand: fixed.Fixed(d)}
		got, err := DecodeUserBid(b.Encode())
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(c, cap int64) bool {
		b := ProviderBid{Cost: fixed.Fixed(c), Capacity: fixed.Fixed(cap)}
		got, err := DecodeProviderBid(b.Encode())
		return err == nil && got == b
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestBidVectorRoundTripAndDigest(t *testing.T) {
	v := BidVector{
		Users: []UserBid{
			{Value: fixed.One, Demand: fixed.One},
			NeutralUserBid(),
		},
		Providers: []ProviderBid{
			{Cost: fixed.MustFloat(0.3), Capacity: fixed.MustFloat(5)},
		},
	}
	got, err := DecodeBidVector(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 2 || len(got.Providers) != 1 || got.Users[0] != v.Users[0] {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if v.Digest() != got.Digest() {
		t.Error("digest not stable across round trip")
	}
	v2 := v
	v2.Users = append([]UserBid(nil), v.Users...)
	v2.Users[0].Value++
	if v.Digest() == v2.Digest() {
		t.Error("different vectors share a digest")
	}
}

func TestDecodeBidVectorGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = DecodeBidVector(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocationAccessors(t *testing.T) {
	a := NewAllocation(2, 3)
	a.Set(0, 1, fixed.One)
	a.Add(0, 1, fixed.One)
	a.Set(1, 2, fixed.MustFloat(0.5))
	if got := a.At(0, 1); got != fixed.MustFloat(2) {
		t.Errorf("At(0,1) = %v", got)
	}
	if got := a.UserTotal(0); got != fixed.MustFloat(2) {
		t.Errorf("UserTotal(0) = %v", got)
	}
	if got := a.ProviderLoad(2); got != fixed.MustFloat(0.5) {
		t.Errorf("ProviderLoad(2) = %v", got)
	}
	if got := a.ProviderLoad(0); got != 0 {
		t.Errorf("ProviderLoad(0) = %v", got)
	}
}

func TestCheckFeasible(t *testing.T) {
	a := NewAllocation(2, 2)
	a.Set(0, 0, fixed.One)
	a.Set(1, 0, fixed.One)
	caps := []fixed.Fixed{fixed.MustFloat(2), fixed.One}
	if err := a.CheckFeasible(caps); err != nil {
		t.Errorf("feasible allocation rejected: %v", err)
	}
	a.Set(1, 0, fixed.MustFloat(1.5))
	if err := a.CheckFeasible(caps); err == nil {
		t.Error("over-capacity allocation accepted")
	}
	a.Set(1, 0, fixed.Fixed(-1))
	if err := a.CheckFeasible(caps); err == nil {
		t.Error("negative allocation accepted")
	}
	if err := a.CheckFeasible([]fixed.Fixed{fixed.One}); err == nil {
		t.Error("capacity shape mismatch accepted")
	}
}

func TestPaymentsBudgetBalance(t *testing.T) {
	p := NewPayments(2, 1)
	p.ByUser[0] = fixed.MustFloat(3)
	p.ByUser[1] = fixed.MustFloat(2)
	p.ToProvider[0] = fixed.MustFloat(4)
	if !p.BudgetBalanced() {
		t.Error("5 paid >= 4 received should balance")
	}
	p.ToProvider[0] = fixed.MustFloat(6)
	if p.BudgetBalanced() {
		t.Error("5 paid < 6 received should not balance")
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	o := Outcome{Alloc: NewAllocation(2, 2), Pay: NewPayments(2, 2)}
	o.Alloc.Set(0, 0, fixed.One)
	o.Pay.ByUser[0] = fixed.MustFloat(0.5)
	o.Pay.ToProvider[1] = fixed.MustFloat(0.25)
	raw := o.Encode()
	got, err := DecodeOutcome(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), raw) {
		t.Error("encode not canonical across round trip")
	}
	if got.Digest() != o.Digest() {
		t.Error("digest mismatch")
	}
}

func TestDecodeOutcomeRejectsBadShapes(t *testing.T) {
	o := Outcome{Alloc: NewAllocation(2, 2), Pay: NewPayments(2, 2)}
	// Wrong matrix size.
	bad := o
	bad.Alloc.Units = bad.Alloc.Units[:3]
	if _, err := DecodeOutcome(bad.Encode()); err == nil {
		t.Error("truncated matrix accepted")
	}
	// Negative payment.
	bad2 := Outcome{Alloc: NewAllocation(1, 1), Pay: NewPayments(1, 1)}
	bad2.Pay.ByUser[0] = -1
	if _, err := DecodeOutcome(bad2.Encode()); err == nil {
		t.Error("negative payment accepted")
	}
	f := func(raw []byte) bool {
		_, _ = DecodeOutcome(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfare(t *testing.T) {
	users := []UserBid{
		{Value: fixed.MustFloat(2), Demand: fixed.One},
		{Value: fixed.One, Demand: fixed.One},
	}
	provs := []ProviderBid{{Cost: fixed.MustFloat(0.5), Capacity: fixed.MustFloat(2)}}
	a := NewAllocation(2, 1)
	a.Set(0, 0, fixed.One)
	a.Set(1, 0, fixed.One)
	if got := WelfareStandard(users, a); got != fixed.MustFloat(3) {
		t.Errorf("standard welfare = %v, want 3", got)
	}
	// Double welfare: 3 − 0.5×2 = 2.
	if got := WelfareDouble(users, provs, a); got != fixed.MustFloat(2) {
		t.Errorf("double welfare = %v, want 2", got)
	}
	if got := WelfareStandard(users[:1], a); got != 0 {
		t.Errorf("shape mismatch should yield 0, got %v", got)
	}
}

func TestUtilities(t *testing.T) {
	o := Outcome{Alloc: NewAllocation(1, 1), Pay: NewPayments(1, 1)}
	o.Alloc.Set(0, 0, fixed.MustFloat(2))
	o.Pay.ByUser[0] = fixed.One
	o.Pay.ToProvider[0] = fixed.MustFloat(1.5)
	truth := UserBid{Value: fixed.One, Demand: fixed.MustFloat(2)}
	// Utility = 1×2 − 1 = 1.
	if got := UserUtility(truth, 0, o); got != fixed.One {
		t.Errorf("user utility = %v, want 1", got)
	}
	pTruth := ProviderBid{Cost: fixed.MustFloat(0.5), Capacity: fixed.MustFloat(2)}
	// Utility = 1.5 − 0.5×2 = 0.5.
	if got := ProviderUtility(pTruth, 0, o); got != fixed.MustFloat(0.5) {
		t.Errorf("provider utility = %v, want 0.5", got)
	}
}
