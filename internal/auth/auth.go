// Package auth provides message authentication for the distributed
// auctioneer.
//
// The paper's testbed runs over point-to-point channels whose endpoints are
// known (§3.3 assumes every provider has a unique identifier known to every
// other provider, and reliable channels). This package substitutes that
// trusted-channel assumption with pairwise HMAC-SHA256 keys: a message
// accepted by Verify was produced by the claimed sender, so a signed pair of
// conflicting messages is transferable *evidence* of equivocation.
//
// Key distribution is out of scope for the paper and for this reproduction;
// DeriveKey derives pairwise keys from a deployment master secret, which is a
// stand-in for whatever PKI or provisioning the deployment uses.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"sync"

	"distauction/internal/wire"
)

// KeySize is the size of a pairwise key in bytes.
const KeySize = sha256.Size

// ErrUnknownPeer reports a message from or to a peer with no registered key.
var ErrUnknownPeer = errors.New("auth: unknown peer")

// ErrBadMAC reports a MAC verification failure.
var ErrBadMAC = errors.New("auth: bad MAC")

// DeriveKey derives the pairwise key for nodes a and b from a master secret.
// The derivation is symmetric in (a, b).
func DeriveKey(master []byte, a, b wire.NodeID) []byte {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	mac := hmac.New(sha256.New, master)
	var buf [8]byte
	buf[0] = byte(lo >> 24)
	buf[1] = byte(lo >> 16)
	buf[2] = byte(lo >> 8)
	buf[3] = byte(lo)
	buf[4] = byte(hi >> 24)
	buf[5] = byte(hi >> 16)
	buf[6] = byte(hi >> 8)
	buf[7] = byte(hi)
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// peerMAC is one peer's keyed-MAC state: the pairwise key plus a pool of
// initialised HMAC states. hmac.New precomputes the inner and outer padded
// SHA-256 states from the key; Reset restores them without re-keying, so a
// pooled state turns the two fresh SHA allocations (plus pad scratch) per
// envelope into zero steady-state allocations on both the send and the
// receive path.
type peerMAC struct {
	key  []byte
	pool sync.Pool // of *macState
}

// macState couples a reusable HMAC with a reusable Sum output buffer.
type macState struct {
	mac hash.Hash
	sum [sha256.Size]byte
}

func (p *peerMAC) get() *macState {
	if st, ok := p.pool.Get().(*macState); ok {
		st.mac.Reset()
		return st
	}
	return &macState{mac: hmac.New(sha256.New, p.key)}
}

func (p *peerMAC) put(st *macState) { p.pool.Put(st) }

// Registry holds the local node's pairwise keys.
type Registry struct {
	self wire.NodeID
	keys map[wire.NodeID]*peerMAC
}

// newRegistry wraps the (already private) keys without copying them again.
func newRegistry(self wire.NodeID, keys map[wire.NodeID][]byte) *Registry {
	states := make(map[wire.NodeID]*peerMAC, len(keys))
	for id, k := range keys {
		states[id] = &peerMAC{key: k}
	}
	return &Registry{self: self, keys: states}
}

// NewRegistry builds a registry for self with the given pairwise keys.
// The keys map is copied.
func NewRegistry(self wire.NodeID, keys map[wire.NodeID][]byte) *Registry {
	cp := make(map[wire.NodeID][]byte, len(keys))
	for id, k := range keys {
		kk := make([]byte, len(k))
		copy(kk, k)
		cp[id] = kk
	}
	return newRegistry(self, cp)
}

// NewRegistryFromMaster builds a registry for self covering all peers,
// deriving every pairwise key from the master secret.
func NewRegistryFromMaster(master []byte, self wire.NodeID, peers []wire.NodeID) *Registry {
	keys := make(map[wire.NodeID][]byte, len(peers))
	for _, p := range peers {
		if p == self {
			continue
		}
		keys[p] = DeriveKey(master, self, p)
	}
	return newRegistry(self, keys)
}

// Self returns the local node ID.
func (r *Registry) Self() wire.NodeID { return r.self }

// Sign computes and installs the MAC on env using the key shared with the
// receiver. env.From must be the local node.
func (r *Registry) Sign(env *wire.Envelope) error {
	if env.From != r.self {
		return fmt.Errorf("auth: signing as %d but self is %d", env.From, r.self)
	}
	pm, ok := r.keys[env.To]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, env.To)
	}
	st := pm.get()
	enc := wire.GetEncoder(24 + len(env.Payload))
	env.SignedBytesTo(enc)
	st.mac.Write(enc.Buffer())
	wire.PutEncoder(enc)
	// The MAC escapes into the envelope; this append is the one allocation
	// the hot path keeps.
	env.MAC = append([]byte(nil), st.mac.Sum(st.sum[:0])...)
	pm.put(st)
	return nil
}

// Verify checks the MAC on env using the key shared with the sender. The
// envelope must be addressed to the local node.
func (r *Registry) Verify(env *wire.Envelope) error {
	if env.To != r.self {
		return fmt.Errorf("auth: envelope for %d delivered to %d", env.To, r.self)
	}
	pm, ok := r.keys[env.From]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, env.From)
	}
	st := pm.get()
	enc := wire.GetEncoder(24 + len(env.Payload))
	env.SignedBytesTo(enc)
	st.mac.Write(enc.Buffer())
	wire.PutEncoder(enc)
	good := hmac.Equal(st.mac.Sum(st.sum[:0]), env.MAC)
	pm.put(st)
	if !good {
		return fmt.Errorf("%w: from %d tag %v", ErrBadMAC, env.From, env.Tag)
	}
	return nil
}

// Evidence is a transferable proof that a sender equivocated: two
// authenticated envelopes with the same (From, Tag) but different payloads.
//
// Within the game-theoretic model, evidence is what lets honest providers
// justify outputting ⊥ (and withholding payment) after a deviation.
type Evidence struct {
	A, B wire.Envelope
}

// CheckEvidence reports whether ev is valid evidence under the given
// registry: both envelopes verify, share (From, Tag), and differ in payload.
func CheckEvidence(r *Registry, ev Evidence) error {
	if ev.A.From != ev.B.From || ev.A.Tag != ev.B.Tag {
		return errors.New("auth: evidence envelopes do not match in sender/tag")
	}
	if string(ev.A.Payload) == string(ev.B.Payload) {
		return errors.New("auth: evidence payloads are identical")
	}
	if err := r.Verify(&ev.A); err != nil {
		return fmt.Errorf("evidence A: %w", err)
	}
	if err := r.Verify(&ev.B); err != nil {
		return fmt.Errorf("evidence B: %w", err)
	}
	return nil
}
