// Package auth provides message authentication for the distributed
// auctioneer.
//
// The paper's testbed runs over point-to-point channels whose endpoints are
// known (§3.3 assumes every provider has a unique identifier known to every
// other provider, and reliable channels). This package substitutes that
// trusted-channel assumption with pairwise HMAC-SHA256 keys: a message
// accepted by Verify was produced by the claimed sender, so a signed pair of
// conflicting messages is transferable *evidence* of equivocation.
//
// Key distribution is out of scope for the paper and for this reproduction;
// DeriveKey derives pairwise keys from a deployment master secret, which is a
// stand-in for whatever PKI or provisioning the deployment uses.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"sync"

	"distauction/internal/wire"
)

// KeySize is the size of a pairwise key in bytes.
const KeySize = sha256.Size

// ErrUnknownPeer reports a message from or to a peer with no registered key.
var ErrUnknownPeer = errors.New("auth: unknown peer")

// ErrBadMAC reports a MAC verification failure.
var ErrBadMAC = errors.New("auth: bad MAC")

// DeriveKey derives the pairwise key for nodes a and b from a master secret.
// The derivation is symmetric in (a, b).
func DeriveKey(master []byte, a, b wire.NodeID) []byte {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	mac := hmac.New(sha256.New, master)
	var buf [8]byte
	buf[0] = byte(lo >> 24)
	buf[1] = byte(lo >> 16)
	buf[2] = byte(lo >> 8)
	buf[3] = byte(lo)
	buf[4] = byte(hi >> 24)
	buf[5] = byte(hi >> 16)
	buf[6] = byte(hi >> 8)
	buf[7] = byte(hi)
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// peerMAC is one peer's keyed-MAC state: the pairwise key plus a pool of
// initialised HMAC states. hmac.New precomputes the inner and outer padded
// SHA-256 states from the key; Reset restores them without re-keying, so a
// pooled state turns the two fresh SHA allocations (plus pad scratch) per
// envelope into zero steady-state allocations on both the send and the
// receive path.
type peerMAC struct {
	key  []byte
	pool sync.Pool // of *macState
}

// macState couples a reusable HMAC with a reusable Sum output buffer.
type macState struct {
	mac hash.Hash
	sum [sha256.Size]byte
}

func (p *peerMAC) get() *macState {
	if st, ok := p.pool.Get().(*macState); ok {
		st.mac.Reset()
		return st
	}
	return &macState{mac: hmac.New(sha256.New, p.key)}
}

func (p *peerMAC) put(st *macState) { p.pool.Put(st) }

// Registry holds the local node's pairwise keys.
type Registry struct {
	self wire.NodeID
	keys map[wire.NodeID]*peerMAC
}

// newRegistry wraps the (already private) keys without copying them again.
func newRegistry(self wire.NodeID, keys map[wire.NodeID][]byte) *Registry {
	states := make(map[wire.NodeID]*peerMAC, len(keys))
	for id, k := range keys {
		states[id] = &peerMAC{key: k}
	}
	return &Registry{self: self, keys: states}
}

// NewRegistry builds a registry for self with the given pairwise keys.
// The keys map is copied.
func NewRegistry(self wire.NodeID, keys map[wire.NodeID][]byte) *Registry {
	cp := make(map[wire.NodeID][]byte, len(keys))
	for id, k := range keys {
		kk := make([]byte, len(k))
		copy(kk, k)
		cp[id] = kk
	}
	return newRegistry(self, cp)
}

// NewRegistryFromMaster builds a registry for self covering all peers,
// deriving every pairwise key from the master secret.
func NewRegistryFromMaster(master []byte, self wire.NodeID, peers []wire.NodeID) *Registry {
	keys := make(map[wire.NodeID][]byte, len(peers))
	for _, p := range peers {
		if p == self {
			continue
		}
		keys[p] = DeriveKey(master, self, p)
	}
	return newRegistry(self, keys)
}

// Self returns the local node ID.
func (r *Registry) Self() wire.NodeID { return r.self }

// Sign computes and installs the MAC on env using the key shared with the
// receiver. env.From must be the local node.
func (r *Registry) Sign(env *wire.Envelope) error {
	if env.From != r.self {
		return fmt.Errorf("auth: signing as %d but self is %d", env.From, r.self)
	}
	pm, ok := r.keys[env.To]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, env.To)
	}
	st := pm.get()
	enc := wire.GetEncoder(24 + len(env.Payload))
	env.SignedBytesTo(enc)
	st.mac.Write(enc.Buffer())
	wire.PutEncoder(enc)
	// The MAC escapes into the envelope; this append is the one allocation
	// the hot path keeps.
	env.MAC = append([]byte(nil), st.mac.Sum(st.sum[:0])...)
	pm.put(st)
	return nil
}

// Verify checks the MAC on env using the key shared with the sender. The
// envelope must be addressed to the local node.
func (r *Registry) Verify(env *wire.Envelope) error {
	if env.To != r.self {
		return fmt.Errorf("auth: envelope for %d delivered to %d", env.To, r.self)
	}
	pm, ok := r.keys[env.From]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, env.From)
	}
	st := pm.get()
	enc := wire.GetEncoder(24 + len(env.Payload))
	env.SignedBytesTo(enc)
	st.mac.Write(enc.Buffer())
	wire.PutEncoder(enc)
	good := hmac.Equal(st.mac.Sum(st.sum[:0]), env.MAC)
	pm.put(st)
	if !good {
		return fmt.Errorf("%w: from %d tag %v", ErrBadMAC, env.From, env.Tag)
	}
	return nil
}

// BatchAuthError reports a superframe whose batch MAC failed, with the
// finest attribution the frame supports. The superframe is a pairwise
// channel — the whole frame is the claimed sender's word — so a failure
// always attributes to From (§3.2). When the envelopes inside carry their
// own MACs (the mixed-auth fallback), the receiver re-verifies them to name
// the deviant envelope: Index/Tag identify the first envelope that fails on
// its own, or Index is -1 when every envelope verifies individually (or none
// carries a MAC) and only the frame as a whole is bad.
type BatchAuthError struct {
	From  wire.NodeID
	Index int      // deviant envelope index, -1 if unattributable below frame level
	Tag   wire.Tag // deviant envelope tag, zero if Index < 0
	Envs  int      // batch size, for logs
}

// Error implements error.
func (e *BatchAuthError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("auth: bad batch MAC from %d (%d envelopes, no per-envelope deviant)", e.From, e.Envs)
	}
	return fmt.Sprintf("auth: bad batch MAC from %d: envelope %d (tag %v) fails on its own", e.From, e.Index, e.Tag)
}

// Is reports that a BatchAuthError matches ErrBadMAC.
func (e *BatchAuthError) Is(target error) bool { return target == ErrBadMAC }

// batchMAC computes the batch MAC for sf under pm's key into st.sum and
// returns it (valid until the next use of st).
func batchMAC(pm *peerMAC, sf *wire.Superframe) ([]byte, *macState) {
	st := pm.get()
	enc := wire.GetEncoder(sf.EncodedSize())
	sf.SignedBytesTo(enc)
	st.mac.Write(enc.Buffer())
	wire.PutEncoder(enc)
	return st.mac.Sum(st.sum[:0]), st
}

// SignBatchBytes computes the batch MAC over pre-encoded signed bytes
// (wire.Superframe.SignedBytesTo output) into sum, using the key shared
// with to. It is the allocation-free primitive under SignBatch: the stream
// transports encode the superframe ONCE for framing and MAC those very
// bytes, instead of paying a second encode inside the auth layer.
func (r *Registry) SignBatchBytes(to wire.NodeID, signed []byte, sum *[KeySize]byte) error {
	pm, ok := r.keys[to]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	st := pm.get()
	st.mac.Write(signed)
	st.mac.Sum(sum[:0])
	pm.put(st)
	return nil
}

// VerifyBatchBytes checks mac against pre-encoded signed bytes from the
// given peer. It is the zero-copy primitive under VerifyBatch: receivers
// verify directly over the received frame's bytes (wire.SuperframeSignedView)
// without re-encoding the decoded batch.
func (r *Registry) VerifyBatchBytes(from wire.NodeID, signed, mac []byte) error {
	pm, ok := r.keys[from]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, from)
	}
	st := pm.get()
	st.mac.Write(signed)
	good := hmac.Equal(st.mac.Sum(st.sum[:0]), mac)
	pm.put(st)
	if !good {
		return ErrBadMAC
	}
	return nil
}

// attributeBatchFailure re-verifies a bad batch per envelope to name the
// deviant (see BatchAuthError).
func (r *Registry) attributeBatchFailure(sf *wire.Superframe) *BatchAuthError {
	bad := &BatchAuthError{From: sf.From, Index: -1, Envs: len(sf.Envs)}
	for i := range sf.Envs {
		e := &sf.Envs[i]
		if len(e.MAC) == 0 {
			continue
		}
		if err := r.Verify(e); err != nil {
			bad.Index, bad.Tag = i, e.Tag
			break
		}
	}
	return bad
}

// SignBatch computes and installs the batch MAC on sf: ONE HMAC over the
// whole batch, using the key shared with the destination. Per-envelope MACs
// already present are covered by the batch MAC (and left alone). sf.From
// must be the local node and every envelope must share sf's From/To — the
// superframe encodes them once, so a mismatched envelope would change its
// meaning in transit.
func (r *Registry) SignBatch(sf *wire.Superframe) error {
	if sf.From != r.self {
		return fmt.Errorf("auth: batch-signing as %d but self is %d", sf.From, r.self)
	}
	for i := range sf.Envs {
		if sf.Envs[i].From != sf.From || sf.Envs[i].To != sf.To {
			return fmt.Errorf("auth: envelope %d (%d->%d) does not match superframe %d->%d",
				i, sf.Envs[i].From, sf.Envs[i].To, sf.From, sf.To)
		}
	}
	pm, ok := r.keys[sf.To]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, sf.To)
	}
	sum, st := batchMAC(pm, sf)
	sf.MAC = append(sf.MAC[:0], sum...)
	pm.put(st)
	return nil
}

// VerifyBatch checks the batch MAC on sf using the key shared with the
// sender; amortised over the batch, this is the receiver's one HMAC per
// superframe. On failure it attributes as finely as the frame allows: if
// the envelopes carry per-envelope MACs (the mixed-auth fallback) they are
// re-verified individually to name the deviant; either way the returned
// *BatchAuthError matches ErrBadMAC and attributes to sf.From.
func (r *Registry) VerifyBatch(sf *wire.Superframe) error {
	if sf.To != r.self {
		return fmt.Errorf("auth: superframe for %d delivered to %d", sf.To, r.self)
	}
	pm, ok := r.keys[sf.From]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, sf.From)
	}
	sum, st := batchMAC(pm, sf)
	good := hmac.Equal(sum, sf.MAC)
	pm.put(st)
	if good {
		return nil
	}
	return r.attributeBatchFailure(sf)
}

// VerifyBatchView is VerifyBatch for a superframe decoded with
// wire.DecodeSuperframeView: the batch MAC is checked directly over the
// received frame's bytes — no re-encoding — making the receive-side cost
// one HMAC pass over the frame. frame must be the exact bytes sf was
// decoded from. Failure attribution matches VerifyBatch.
func (r *Registry) VerifyBatchView(sf *wire.Superframe, frame []byte) error {
	if sf.To != r.self {
		return fmt.Errorf("auth: superframe for %d delivered to %d", sf.To, r.self)
	}
	signed, ok := wire.SuperframeSignedView(frame, len(sf.MAC))
	if !ok {
		// Non-minimal MAC length encoding: the frame cannot match what the
		// sender signed (Encode is minimal); attribute like any bad MAC.
		return r.attributeBatchFailure(sf)
	}
	if err := r.VerifyBatchBytes(sf.From, signed, sf.MAC); err != nil {
		return r.attributeBatchFailure(sf)
	}
	return nil
}

// Evidence is a transferable proof that a sender equivocated: two
// authenticated envelopes with the same (From, Tag) but different payloads.
//
// Within the game-theoretic model, evidence is what lets honest providers
// justify outputting ⊥ (and withholding payment) after a deviation.
type Evidence struct {
	A, B wire.Envelope
}

// CheckEvidence reports whether ev is valid evidence under the given
// registry: both envelopes verify, share (From, Tag), and differ in payload.
func CheckEvidence(r *Registry, ev Evidence) error {
	if ev.A.From != ev.B.From || ev.A.Tag != ev.B.Tag {
		return errors.New("auth: evidence envelopes do not match in sender/tag")
	}
	if string(ev.A.Payload) == string(ev.B.Payload) {
		return errors.New("auth: evidence payloads are identical")
	}
	if err := r.Verify(&ev.A); err != nil {
		return fmt.Errorf("evidence A: %w", err)
	}
	if err := r.Verify(&ev.B); err != nil {
		return fmt.Errorf("evidence B: %w", err)
	}
	return nil
}
