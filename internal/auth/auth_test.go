package auth

import (
	"bytes"
	"sync"
	"testing"

	"distauction/internal/wire"
)

func twoNodeRegistries(t *testing.T) (*Registry, *Registry) {
	t.Helper()
	master := []byte("test-master-secret")
	peers := []wire.NodeID{1, 2}
	return NewRegistryFromMaster(master, 1, peers),
		NewRegistryFromMaster(master, 2, peers)
}

func TestDeriveKeySymmetric(t *testing.T) {
	master := []byte("m")
	if !bytes.Equal(DeriveKey(master, 1, 2), DeriveKey(master, 2, 1)) {
		t.Error("DeriveKey must be symmetric in (a,b)")
	}
	if bytes.Equal(DeriveKey(master, 1, 2), DeriveKey(master, 1, 3)) {
		t.Error("different pairs must get different keys")
	}
	if bytes.Equal(DeriveKey([]byte("m1"), 1, 2), DeriveKey([]byte("m2"), 1, 2)) {
		t.Error("different masters must give different keys")
	}
}

func TestSignVerify(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	env := wire.Envelope{
		From:    1,
		To:      2,
		Tag:     wire.Tag{Round: 1, Block: wire.BlockCoin, Step: 1},
		Payload: []byte("hello"),
	}
	if err := r1.Sign(&env); err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := r2.Verify(&env); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	env := wire.Envelope{From: 1, To: 2, Tag: wire.Tag{Block: wire.BlockTask}, Payload: []byte("v")}
	if err := r1.Sign(&env); err != nil {
		t.Fatal(err)
	}

	tampered := env
	tampered.Payload = []byte("w")
	if err := r2.Verify(&tampered); err == nil {
		t.Error("tampered payload must fail verification")
	}

	tampered = env
	tampered.Tag.Step = 9
	if err := r2.Verify(&tampered); err == nil {
		t.Error("tampered tag must fail verification")
	}

	tampered = env
	tampered.MAC = append([]byte(nil), env.MAC...)
	tampered.MAC[0] ^= 1
	if err := r2.Verify(&tampered); err == nil {
		t.Error("tampered MAC must fail verification")
	}
}

func TestSignRequiresSelf(t *testing.T) {
	r1, _ := twoNodeRegistries(t)
	env := wire.Envelope{From: 2, To: 1}
	if err := r1.Sign(&env); err == nil {
		t.Error("signing on behalf of another node must fail")
	}
}

func TestVerifyWrongRecipient(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	env := wire.Envelope{From: 1, To: 1, Tag: wire.Tag{Block: wire.BlockTask}}
	_ = r1 // r1 cannot even sign to itself: no self key
	if err := r2.Verify(&env); err == nil {
		t.Error("envelope addressed elsewhere must fail verification")
	}
}

func TestUnknownPeer(t *testing.T) {
	r1, _ := twoNodeRegistries(t)
	env := wire.Envelope{From: 1, To: 99}
	if err := r1.Sign(&env); err == nil {
		t.Error("unknown peer must fail to sign")
	}
}

func TestEvidence(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	tag := wire.Tag{Round: 3, Block: wire.BlockTransfer, Instance: 1, Step: 2}
	a := wire.Envelope{From: 1, To: 2, Tag: tag, Payload: []byte("x")}
	b := wire.Envelope{From: 1, To: 2, Tag: tag, Payload: []byte("y")}
	if err := r1.Sign(&a); err != nil {
		t.Fatal(err)
	}
	if err := r1.Sign(&b); err != nil {
		t.Fatal(err)
	}
	if err := CheckEvidence(r2, Evidence{A: a, B: b}); err != nil {
		t.Errorf("valid evidence rejected: %v", err)
	}

	// Same payload: not evidence.
	if err := CheckEvidence(r2, Evidence{A: a, B: a}); err == nil {
		t.Error("identical envelopes are not evidence")
	}

	// Different tags: not evidence.
	c := b
	c.Tag.Step = 5
	if err := r1.Sign(&c); err != nil {
		t.Fatal(err)
	}
	if err := CheckEvidence(r2, Evidence{A: a, B: c}); err == nil {
		t.Error("different tags are not evidence")
	}

	// Forged second envelope: not evidence.
	forged := b
	forged.MAC = append([]byte(nil), b.MAC...)
	forged.MAC[3] ^= 0xFF
	if err := CheckEvidence(r2, Evidence{A: a, B: forged}); err == nil {
		t.Error("forged envelope is not evidence")
	}
}

func TestNewRegistryCopiesKeys(t *testing.T) {
	key := make([]byte, KeySize)
	keys := map[wire.NodeID][]byte{2: key}
	r := NewRegistry(1, keys)
	key[0] = 0xFF // mutate caller's slice
	env := wire.Envelope{From: 1, To: 2, Tag: wire.Tag{Block: wire.BlockTask}}
	if err := r.Sign(&env); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(2, map[wire.NodeID][]byte{1: make([]byte, KeySize)})
	if err := r2.Verify(&env); err != nil {
		t.Fatalf("registry must have copied the original zero key: %v", err)
	}
}

// Concurrent Sign/Verify through the pooled HMAC states must stay correct
// under -race: many goroutines share each per-peer pool.
func TestSignVerifyConcurrent(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				env := wire.Envelope{
					From:    1,
					To:      2,
					Tag:     wire.Tag{Round: uint64(g), Block: wire.BlockTask, Instance: uint32(i), Step: 1},
					Payload: []byte{byte(g), byte(i)},
				}
				if err := r1.Sign(&env); err != nil {
					t.Error(err)
					return
				}
				if err := r2.Verify(&env); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkAuthSignVerify measures one authenticated envelope round
// (Sign at the sender, Verify at the receiver). Before the per-peer HMAC
// pools, every call built a fresh hmac.New(sha256.New, key) — two SHA
// states plus pad scratch per envelope on both paths.
func BenchmarkAuthSignVerify(b *testing.B) {
	master := []byte("bench-master-secret")
	peers := []wire.NodeID{1, 2}
	r1 := NewRegistryFromMaster(master, 1, peers)
	r2 := NewRegistryFromMaster(master, 2, peers)
	env := wire.Envelope{
		From:    1,
		To:      2,
		Tag:     wire.Tag{Round: 1, Block: wire.BlockTask, Instance: 7, Step: 1},
		Payload: make([]byte, 64),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r1.Sign(&env); err != nil {
			b.Fatal(err)
		}
		if err := r2.Verify(&env); err != nil {
			b.Fatal(err)
		}
	}
}
