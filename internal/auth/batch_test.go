package auth

import (
	"errors"
	"fmt"
	"testing"

	"distauction/internal/wire"
)

// testBatch builds an n-envelope superframe 1 -> 2 with distinct payloads.
func testBatch(n int) wire.Superframe {
	sf := wire.Superframe{From: 1, To: 2, Envs: make([]wire.Envelope, n)}
	for i := range sf.Envs {
		sf.Envs[i] = wire.Envelope{
			From:    1,
			To:      2,
			Tag:     wire.Tag{Round: uint64(i + 1), Block: wire.BlockTask, Instance: uint32(i), Step: 1},
			Payload: []byte{byte(i), byte(i >> 8), 0xAA},
		}
	}
	return sf
}

func TestSignVerifyBatch(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	sf := testBatch(8)
	if err := r1.SignBatch(&sf); err != nil {
		t.Fatalf("sign batch: %v", err)
	}
	if len(sf.MAC) == 0 {
		t.Fatal("SignBatch installed no MAC")
	}
	if err := r2.VerifyBatch(&sf); err != nil {
		t.Fatalf("verify batch: %v", err)
	}
	// The batch survives a wire round trip.
	dec, err := wire.DecodeSuperframeView(sf.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.VerifyBatch(&dec); err != nil {
		t.Fatalf("verify decoded batch: %v", err)
	}
}

func TestSignBatchValidatesShape(t *testing.T) {
	r1, _ := twoNodeRegistries(t)
	sf := testBatch(3)
	sf.From = 2 // not self
	if err := r1.SignBatch(&sf); err == nil {
		t.Error("batch-signing on behalf of another node must fail")
	}
	sf = testBatch(3)
	sf.Envs[1].To = 7 // envelope disagrees with the frame
	if err := r1.SignBatch(&sf); err == nil {
		t.Error("mismatched envelope destination must fail")
	}
	sf = testBatch(3)
	sf.To = 99
	for i := range sf.Envs {
		sf.Envs[i].To = 99
	}
	if err := r1.SignBatch(&sf); err == nil {
		t.Error("unknown peer must fail to batch-sign")
	}
}

// TestVerifyBatchRejectsTampering flips every part of a batch-MAC'd
// superframe in turn; all must fail, attributed to the sending peer.
func TestVerifyBatchRejectsTampering(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	for name, tamper := range map[string]func(*wire.Superframe){
		"payload":      func(sf *wire.Superframe) { sf.Envs[3].Payload[0] ^= 1 },
		"tag":          func(sf *wire.Superframe) { sf.Envs[5].Tag.Step = 9 },
		"batch MAC":    func(sf *wire.Superframe) { sf.MAC[0] ^= 1 },
		"dropped env":  func(sf *wire.Superframe) { sf.Envs = sf.Envs[:len(sf.Envs)-1] },
		"reorder envs": func(sf *wire.Superframe) { sf.Envs[0], sf.Envs[1] = sf.Envs[1], sf.Envs[0] },
	} {
		sf := testBatch(8)
		if err := r1.SignBatch(&sf); err != nil {
			t.Fatal(err)
		}
		tamper(&sf)
		err := r2.VerifyBatch(&sf)
		if err == nil {
			t.Errorf("%s: tampered batch verified", name)
			continue
		}
		if !errors.Is(err, ErrBadMAC) {
			t.Errorf("%s: error %v does not match ErrBadMAC", name, err)
		}
		var bad *BatchAuthError
		if !errors.As(err, &bad) || bad.From != 1 {
			t.Errorf("%s: failure not attributed to sender: %v", name, err)
		}
	}
}

// TestVerifyBatchAttributesDeviantEnvelope is the attribution satellite:
// when a superframe carries per-envelope MACs (the mixed-auth fallback) and
// the batch MAC fails, the receiver re-verifies per envelope and the error
// names the deviant — the one envelope that fails on its own — preserving
// the §3.2 property that a deviation is pinned on something actionable.
func TestVerifyBatchAttributesDeviantEnvelope(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	sf := testBatch(8)
	for i := range sf.Envs {
		if err := r1.Sign(&sf.Envs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r1.SignBatch(&sf); err != nil {
		t.Fatal(err)
	}
	if err := r2.VerifyBatch(&sf); err != nil {
		t.Fatalf("pristine mixed-auth batch must verify: %v", err)
	}

	// Corrupt one envelope's payload in flight: the batch MAC fails, and the
	// per-envelope re-verify names envelope 5.
	const deviant = 5
	sf.Envs[deviant].Payload = append([]byte(nil), sf.Envs[deviant].Payload...)
	sf.Envs[deviant].Payload[0] ^= 0x40
	err := r2.VerifyBatch(&sf)
	if err == nil {
		t.Fatal("corrupted batch verified")
	}
	var bad *BatchAuthError
	if !errors.As(err, &bad) {
		t.Fatalf("error %T is not a BatchAuthError", err)
	}
	if bad.From != 1 || bad.Index != deviant || bad.Tag != sf.Envs[deviant].Tag {
		t.Fatalf("deviant not named: %+v", bad)
	}

	// Frame-level tamper (batch MAC flipped, every envelope individually
	// intact): attribution stays at the peer, Index -1.
	sf = testBatch(8)
	for i := range sf.Envs {
		if err := r1.Sign(&sf.Envs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r1.SignBatch(&sf); err != nil {
		t.Fatal(err)
	}
	sf.MAC[2] ^= 1
	err = r2.VerifyBatch(&sf)
	if !errors.As(err, &bad) || bad.Index != -1 || bad.From != 1 {
		t.Fatalf("frame-level tamper misattributed: %v", err)
	}
}

// TestVerifyBatchWrongRecipient mirrors the envelope rule.
func TestVerifyBatchWrongRecipient(t *testing.T) {
	r1, r2 := twoNodeRegistries(t)
	sf := testBatch(2)
	if err := r1.SignBatch(&sf); err != nil {
		t.Fatal(err)
	}
	sf.To = 1
	if err := r2.VerifyBatch(&sf); err == nil {
		t.Error("superframe addressed elsewhere must fail verification")
	}
}

// benchPayload is the benchmark message size: a digest-mode consensus
// proposal (32-byte digest + 8-byte share header) — the dominant message of
// the fast path — so amortisation is measured on what the wire carries.
const benchPayload = 40

func benchEnvs(k int) []wire.Envelope {
	envs := make([]wire.Envelope, k)
	for i := range envs {
		envs[i] = wire.Envelope{
			From:    1,
			To:      2,
			Tag:     wire.Tag{Round: uint64(i + 1), Block: wire.BlockTask, Instance: uint32(i), Step: 1},
			Payload: make([]byte, benchPayload),
		}
	}
	return envs
}

// BenchmarkSuperframeSignVerify measures the amortised per-envelope cost of
// batch authentication on the stream-transport path — ONE encode shared
// with framing, one SignBatchBytes at the sender, one VerifyBatchBytes over
// the received bytes — against the per-envelope path (one Sign + one Verify
// per envelope, each with its own internal encode; batch=1 and the
// `envelope` sub-bench). The acceptance target is an amortised cost <= 1/4
// of the per-envelope figure at batch size 8.
func BenchmarkSuperframeSignVerify(b *testing.B) {
	master := []byte("bench-master-secret")
	peers := []wire.NodeID{1, 2}
	r1 := NewRegistryFromMaster(master, 1, peers)
	r2 := NewRegistryFromMaster(master, 2, peers)

	b.Run("envelope", func(b *testing.B) {
		env := benchEnvs(1)[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r1.Sign(&env); err != nil {
				b.Fatal(err)
			}
			if err := r2.Verify(&env); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/envelope")
	})

	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			sf := wire.Superframe{From: 1, To: 2, Envs: benchEnvs(k)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc := wire.GetEncoder(sf.EncodedSize())
				sf.SignedBytesTo(enc)
				var sum [KeySize]byte
				if err := r1.SignBatchBytes(sf.To, enc.Buffer(), &sum); err != nil {
					b.Fatal(err)
				}
				if err := r2.VerifyBatchBytes(sf.From, enc.Buffer(), sum[:]); err != nil {
					b.Fatal(err)
				}
				wire.PutEncoder(enc)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/envelope")
		})
	}
}
