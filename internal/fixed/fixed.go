// Package fixed implements deterministic fixed-point arithmetic used for all
// protocol-visible quantities (currency, bandwidth, probabilities).
//
// The distributed auctioneer cross-validates redundant computations performed
// by different providers, so every provider must obtain bit-identical results
// for the same inputs. Floating point does not guarantee that across
// compilers, platforms, or evaluation orders; int64 micro-units do.
//
// A Fixed value counts micro-units: Fixed(1_000_000) == 1.0.
package fixed

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Scale is the number of micro-units per whole unit.
const Scale = 1_000_000

// Fixed is a fixed-point number with six decimal digits of fraction.
type Fixed int64

// Common constants.
const (
	Zero Fixed = 0
	One  Fixed = Scale
	// Max and Min bound the representable range (±9.2 trillion units).
	Max Fixed = math.MaxInt64
	Min Fixed = math.MinInt64
)

// ErrOverflow reports that an arithmetic result does not fit in a Fixed.
var ErrOverflow = errors.New("fixed: overflow")

// ErrRange reports a conversion from an out-of-range or non-finite float.
var ErrRange = errors.New("fixed: value out of range")

// FromInt converts a whole number of units to a Fixed.
// It returns ErrOverflow if the result is unrepresentable.
func FromInt(units int64) (Fixed, error) {
	hi, lo := bits.Mul64(uint64(abs64(units)), Scale)
	if hi != 0 || lo > math.MaxInt64 {
		return 0, ErrOverflow
	}
	if units < 0 {
		return Fixed(-int64(lo)), nil
	}
	return Fixed(lo), nil
}

// MustInt is FromInt for values known to be in range; it panics otherwise.
// Intended for constants in tests and examples.
func MustInt(units int64) Fixed {
	f, err := FromInt(units)
	if err != nil {
		panic(fmt.Sprintf("fixed.MustInt(%d): %v", units, err))
	}
	return f
}

// FromFloat converts a float64 to the nearest Fixed.
// It returns ErrRange for NaN, infinities, and out-of-range values.
//
// FromFloat is for ingesting external configuration and workload parameters
// only; protocol code never round-trips through floats.
func FromFloat(v float64) (Fixed, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrRange
	}
	scaled := math.Round(v * Scale)
	if scaled >= math.MaxInt64 || scaled <= math.MinInt64 {
		return 0, ErrRange
	}
	return Fixed(scaled), nil
}

// MustFloat is FromFloat for values known to be in range; it panics otherwise.
func MustFloat(v float64) Fixed {
	f, err := FromFloat(v)
	if err != nil {
		panic(fmt.Sprintf("fixed.MustFloat(%g): %v", v, err))
	}
	return f
}

// FromRatio returns num/den as a Fixed, rounding toward zero.
// It returns ErrOverflow when den is zero or the result is unrepresentable.
func FromRatio(num, den int64) (Fixed, error) {
	if den == 0 {
		return 0, ErrOverflow
	}
	neg := (num < 0) != (den < 0)
	n := uint64(abs64(num))
	d := uint64(abs64(den))
	hi, lo := bits.Mul64(n, Scale)
	if hi >= d {
		return 0, ErrOverflow
	}
	q, _ := bits.Div64(hi, lo, d)
	if q > math.MaxInt64 {
		return 0, ErrOverflow
	}
	if neg {
		return Fixed(-int64(q)), nil
	}
	return Fixed(q), nil
}

// Float64 converts f to a float64 for reporting and plotting only.
func (f Fixed) Float64() float64 { return float64(f) / Scale }

// Int returns the whole-unit part of f, truncated toward zero.
func (f Fixed) Int() int64 { return int64(f) / Scale }

// Frac returns the fractional part of f in micro-units, with the sign of f.
func (f Fixed) Frac() int64 { return int64(f) % Scale }

// IsZero reports whether f is exactly zero.
func (f Fixed) IsZero() bool { return f == 0 }

// IsNeg reports whether f is strictly negative.
func (f Fixed) IsNeg() bool { return f < 0 }

// IsPos reports whether f is strictly positive.
func (f Fixed) IsPos() bool { return f > 0 }

// Neg returns -f. Negating Min saturates to Max.
func (f Fixed) Neg() Fixed {
	if f == Min {
		return Max
	}
	return -f
}

// Abs returns |f|. The absolute value of Min saturates to Max.
func (f Fixed) Abs() Fixed {
	if f < 0 {
		return f.Neg()
	}
	return f
}

// Cmp compares f and g, returning -1, 0, or +1.
func (f Fixed) Cmp(g Fixed) int {
	switch {
	case f < g:
		return -1
	case f > g:
		return 1
	default:
		return 0
	}
}

// Add returns f+g, or ErrOverflow if the sum is unrepresentable.
func (f Fixed) Add(g Fixed) (Fixed, error) {
	s := f + g
	if (f > 0 && g > 0 && s < 0) || (f < 0 && g < 0 && s >= 0) {
		return 0, ErrOverflow
	}
	return s, nil
}

// Sub returns f-g, or ErrOverflow if the difference is unrepresentable.
func (f Fixed) Sub(g Fixed) (Fixed, error) {
	if g == Min {
		if f >= 0 {
			return 0, ErrOverflow
		}
		// f - Min == f + Max + 1; f < 0 keeps both steps in range.
		s, err := f.Add(Max)
		if err != nil {
			return 0, err
		}
		return s + 1, nil
	}
	return f.Add(-g)
}

// SatAdd returns f+g, saturating at Min/Max instead of overflowing.
func (f Fixed) SatAdd(g Fixed) Fixed {
	s, err := f.Add(g)
	if err == nil {
		return s
	}
	if f > 0 {
		return Max
	}
	return Min
}

// SatSub returns f-g, saturating at Min/Max instead of overflowing.
func (f Fixed) SatSub(g Fixed) Fixed {
	s, err := f.Sub(g)
	if err == nil {
		return s
	}
	if f >= 0 {
		return Max
	}
	return Min
}

// Mul returns f*g (a product of two fixed-point numbers), rounding toward
// zero, or ErrOverflow when unrepresentable.
func (f Fixed) Mul(g Fixed) (Fixed, error) {
	return mulDiv(f, g, Scale)
}

// Div returns f/g as a fixed-point quotient, rounding toward zero.
// It returns ErrOverflow when g is zero or the quotient is unrepresentable.
func (f Fixed) Div(g Fixed) (Fixed, error) {
	if g == 0 {
		return 0, ErrOverflow
	}
	return mulDiv(f, Scale, int64(g))
}

// MulInt returns f*n, or ErrOverflow when unrepresentable.
func (f Fixed) MulInt(n int64) (Fixed, error) {
	neg := (f < 0) != (n < 0)
	hi, lo := bits.Mul64(uint64(abs64(int64(f))), uint64(abs64(n)))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, ErrOverflow
	}
	if neg {
		return Fixed(-int64(lo)), nil
	}
	return Fixed(lo), nil
}

// DivInt returns f/n, rounding toward zero; ErrOverflow when n is zero.
func (f Fixed) DivInt(n int64) (Fixed, error) {
	if n == 0 {
		return 0, ErrOverflow
	}
	return Fixed(int64(f) / n), nil
}

// mulDiv computes a*b/den with a 128-bit intermediate, rounding toward zero.
func mulDiv(a, b Fixed, den int64) (Fixed, error) {
	if den == 0 {
		return 0, ErrOverflow
	}
	neg := (a < 0) != (b < 0)
	if den < 0 {
		neg = !neg
		den = -den
	}
	hi, lo := bits.Mul64(uint64(abs64(int64(a))), uint64(abs64(int64(b))))
	d := uint64(den)
	if hi >= d {
		return 0, ErrOverflow
	}
	q, _ := bits.Div64(hi, lo, d)
	if q > math.MaxInt64 {
		return 0, ErrOverflow
	}
	if neg {
		return Fixed(-int64(q)), nil
	}
	return Fixed(q), nil
}

// MulFrac returns f scaled by the fraction frac (frac is a Fixed in [0,1]
// typically, but any value is accepted), saturating on overflow.
//
// MulFrac is the workhorse for capacity scaling in workload generation.
func (f Fixed) MulFrac(frac Fixed) Fixed {
	v, err := f.Mul(frac)
	if err != nil {
		if (f < 0) != (frac < 0) {
			return Min
		}
		return Max
	}
	return v
}

// Min2 returns the smaller of a and b.
func Min2(a, b Fixed) Fixed {
	if a < b {
		return a
	}
	return b
}

// Max2 returns the larger of a and b.
func Max2(a, b Fixed) Fixed {
	if a > b {
		return a
	}
	return b
}

// Clamp restricts f to the closed interval [lo, hi].
// It panics if lo > hi, which is always a programming error.
func Clamp(f, lo, hi Fixed) Fixed {
	if lo > hi {
		panic("fixed.Clamp: lo > hi")
	}
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}

// Sum adds all values, returning ErrOverflow if any partial sum overflows.
func Sum(vs ...Fixed) (Fixed, error) {
	var total Fixed
	for _, v := range vs {
		t, err := total.Add(v)
		if err != nil {
			return 0, err
		}
		total = t
	}
	return total, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == math.MinInt64 {
			// abs(MinInt64) overflows; callers only pass values whose
			// magnitude fits because Fixed arithmetic rejects Min earlier.
			// Saturate to MaxInt64 to keep the helper total.
			return math.MaxInt64
		}
		return -v
	}
	return v
}
