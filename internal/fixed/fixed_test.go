package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromInt(t *testing.T) {
	tests := []struct {
		in      int64
		want    Fixed
		wantErr bool
	}{
		{0, 0, false},
		{1, Scale, false},
		{-1, -Scale, false},
		{9_000_000_000_000, 9_000_000_000_000 * Scale, false},
		{math.MaxInt64, 0, true},
		{math.MinInt64, 0, true},
	}
	for _, tt := range tests {
		got, err := FromInt(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("FromInt(%d) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("FromInt(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestFromFloat(t *testing.T) {
	tests := []struct {
		in      float64
		want    Fixed
		wantErr bool
	}{
		{0, 0, false},
		{1.25, 1_250_000, false},
		{-0.5, -500_000, false},
		{0.0000005, 1, false}, // rounds up
		{math.NaN(), 0, true},
		{math.Inf(1), 0, true},
		{math.Inf(-1), 0, true},
		{1e19, 0, true},
	}
	for _, tt := range tests {
		got, err := FromFloat(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("FromFloat(%g) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("FromFloat(%g) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestFromRatio(t *testing.T) {
	tests := []struct {
		num, den int64
		want     Fixed
		wantErr  bool
	}{
		{1, 2, 500_000, false},
		{-1, 2, -500_000, false},
		{1, -2, -500_000, false},
		{-1, -2, 500_000, false},
		{2, 3, 666_666, false}, // truncates toward zero
		{0, 5, 0, false},
		{5, 0, 0, true},
		{math.MaxInt64, 1, 0, true},
	}
	for _, tt := range tests {
		got, err := FromRatio(tt.num, tt.den)
		if (err != nil) != tt.wantErr {
			t.Errorf("FromRatio(%d,%d) err = %v, wantErr %v", tt.num, tt.den, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("FromRatio(%d,%d) = %d, want %d", tt.num, tt.den, got, tt.want)
		}
	}
}

func TestAddSubOverflow(t *testing.T) {
	if _, err := Max.Add(1); err == nil {
		t.Error("Max+1 should overflow")
	}
	if _, err := Min.Sub(1); err == nil {
		t.Error("Min-1 should overflow")
	}
	if got, err := Max.Add(Min); err != nil || got != -1 {
		t.Errorf("Max+Min = %d, %v; want -1, nil", got, err)
	}
	if got, err := Fixed(-5).Sub(Min); err != nil || got != Max-4 {
		t.Errorf("-5-Min = %d, %v; want %d, nil", got, err, Max-4)
	}
	if _, err := Fixed(0).Sub(Min); err == nil {
		t.Error("0-Min should overflow")
	}
}

func TestSaturating(t *testing.T) {
	if got := Max.SatAdd(One); got != Max {
		t.Errorf("Max SatAdd 1 = %d, want Max", got)
	}
	if got := Min.SatSub(One); got != Min {
		t.Errorf("Min SatSub 1 = %d, want Min", got)
	}
	if got := One.SatAdd(One); got != 2*Scale {
		t.Errorf("1 SatAdd 1 = %d, want 2", got)
	}
}

func TestMulDiv(t *testing.T) {
	tests := []struct {
		a, b    Fixed
		op      string
		want    Fixed
		wantErr bool
	}{
		{MustFloat(1.5), MustFloat(2), "mul", MustFloat(3), false},
		{MustFloat(-1.5), MustFloat(2), "mul", MustFloat(-3), false},
		{MustFloat(0.5), MustFloat(0.5), "mul", MustFloat(0.25), false},
		{Max, MustFloat(2), "mul", 0, true},
		{MustFloat(3), MustFloat(2), "div", MustFloat(1.5), false},
		{MustFloat(1), MustFloat(3), "div", Fixed(333_333), false},
		{MustFloat(1), 0, "div", 0, true},
		{MustFloat(-3), MustFloat(2), "div", MustFloat(-1.5), false},
	}
	for _, tt := range tests {
		var got Fixed
		var err error
		switch tt.op {
		case "mul":
			got, err = tt.a.Mul(tt.b)
		case "div":
			got, err = tt.a.Div(tt.b)
		}
		if (err != nil) != tt.wantErr {
			t.Errorf("%s(%d,%d) err = %v, wantErr %v", tt.op, tt.a, tt.b, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("%s(%d,%d) = %d, want %d", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulInt(t *testing.T) {
	if got, err := MustFloat(1.5).MulInt(4); err != nil || got != MustFloat(6) {
		t.Errorf("1.5*4 = %v, %v", got, err)
	}
	if got, err := MustFloat(1.5).MulInt(-4); err != nil || got != MustFloat(-6) {
		t.Errorf("1.5*-4 = %v, %v", got, err)
	}
	if _, err := Max.MulInt(2); err == nil {
		t.Error("Max*2 should overflow")
	}
}

func TestMinMaxClampAbs(t *testing.T) {
	if Min2(One, Zero) != Zero || Max2(One, Zero) != One {
		t.Error("Min2/Max2 wrong")
	}
	if Clamp(MustFloat(5), Zero, One) != One {
		t.Error("Clamp upper failed")
	}
	if Clamp(MustFloat(-5), Zero, One) != Zero {
		t.Error("Clamp lower failed")
	}
	if Clamp(MustFloat(0.5), Zero, One) != MustFloat(0.5) {
		t.Error("Clamp identity failed")
	}
	if MustFloat(-2).Abs() != MustFloat(2) {
		t.Error("Abs failed")
	}
	if Min.Abs() != Max || Min.Neg() != Max {
		t.Error("Abs/Neg saturation at Min failed")
	}
}

func TestSum(t *testing.T) {
	got, err := Sum(One, One, MustFloat(0.5))
	if err != nil || got != MustFloat(2.5) {
		t.Errorf("Sum = %v, %v", got, err)
	}
	if _, err := Sum(Max, One); err == nil {
		t.Error("Sum overflow not detected")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	tests := []string{"0", "1", "-1", "1.5", "0.000001", "-0.000001", "1234.56789", "9000000000000"}
	for _, s := range tests {
		f, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := f.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", ".", "-", "+", "1.", "1.2345678", "abc", "1..2", "1e5", "--1"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	if _, err := Parse("99999999999999999999"); err == nil {
		t.Error("Parse overflow should fail")
	}
}

// Property: String/Parse round-trips for arbitrary Fixed values.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		x := Fixed(v)
		if x == Min { // Min has no positive counterpart; String still works but
			x = Min + 1 // Parse of "-9223372036854.775808" overflows symmetric range
		}
		y, err := Parse(x.String())
		return err == nil && y == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SatAdd is commutative and bounded.
func TestQuickSatAdd(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Fixed(a), Fixed(b)
		s1, s2 := x.SatAdd(y), y.SatAdd(x)
		return s1 == s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add either errors or agrees with big-int addition semantics
// (checked via float approximation with wide tolerance on magnitude).
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Fixed(a), Fixed(b)
		s, err := x.Add(y)
		if err != nil {
			return true
		}
		back, err := s.Sub(y)
		return err == nil && back == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul magnitude never silently wraps: result sign is correct.
func TestQuickMulSign(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Fixed(a), Fixed(b)
		p, err := x.Mul(y)
		if err != nil {
			return false // int32 inputs cannot overflow a 128-bit intermediate
		}
		if x == 0 || y == 0 {
			return true // truncation can make small products zero
		}
		wantNeg := (x < 0) != (y < 0)
		return p == 0 || (p < 0) == wantNeg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromRatio(a,b) ≈ a/b within one micro-unit.
func TestQuickFromRatio(t *testing.T) {
	f := func(num int32, den int32) bool {
		if den == 0 {
			return true
		}
		got, err := FromRatio(int64(num), int64(den))
		if err != nil {
			return false
		}
		want := float64(num) / float64(den)
		return math.Abs(got.Float64()-want) < 2.0/Scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := MustFloat(1.2345), MustFloat(6.7891)
	for i := 0; i < b.N; i++ {
		if _, err := x.Mul(y); err != nil {
			b.Fatal(err)
		}
	}
}
