package fixed

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// String renders f as a decimal with up to six fractional digits, trailing
// zeros trimmed ("1.5", "-0.000001", "3").
func (f Fixed) String() string {
	neg := f < 0
	v := uint64(int64(f))
	if neg {
		v = uint64(-int64(f))
	}
	whole := v / Scale
	frac := v % Scale
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteString(strconv.FormatUint(whole, 10))
	if frac != 0 {
		s := fmt.Sprintf("%06d", frac)
		s = strings.TrimRight(s, "0")
		b.WriteByte('.')
		b.WriteString(s)
	}
	return b.String()
}

// ErrSyntax reports an unparseable decimal string.
var ErrSyntax = errors.New("fixed: invalid decimal syntax")

// Parse converts a decimal string ("1.25", "-0.5", "3") to a Fixed.
// At most six fractional digits are accepted; more is a syntax error rather
// than a silent rounding, because bids are protocol inputs and must be exact.
func Parse(s string) (Fixed, error) {
	if s == "" {
		return 0, ErrSyntax
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	if s == "" {
		return 0, ErrSyntax
	}
	wholePart := s
	fracPart := ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		wholePart, fracPart = s[:i], s[i+1:]
		if fracPart == "" {
			return 0, ErrSyntax
		}
	}
	if wholePart == "" {
		wholePart = "0"
	}
	if len(fracPart) > 6 {
		return 0, ErrSyntax
	}
	whole, err := strconv.ParseUint(wholePart, 10, 64)
	if err != nil {
		return 0, ErrSyntax
	}
	var frac uint64
	if fracPart != "" {
		frac, err = strconv.ParseUint(fracPart, 10, 64)
		if err != nil {
			return 0, ErrSyntax
		}
		for i := len(fracPart); i < 6; i++ {
			frac *= 10
		}
	}
	const maxWhole = uint64(1<<63-1) / Scale
	if whole > maxWhole {
		return 0, ErrOverflow
	}
	v := whole*Scale + frac
	if v > 1<<63-1 {
		return 0, ErrOverflow
	}
	if neg {
		return Fixed(-int64(v)), nil
	}
	return Fixed(v), nil
}

// MustParse is Parse for literals known to be valid; it panics otherwise.
func MustParse(s string) Fixed {
	f, err := Parse(s)
	if err != nil {
		panic(fmt.Sprintf("fixed.MustParse(%q): %v", s, err))
	}
	return f
}
