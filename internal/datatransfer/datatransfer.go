// Package datatransfer implements the data-transfer building block (§4.2 of
// the paper, Property 5).
//
// A set S of providers holds a value v (the result of a task they all
// computed); a set O of providers needs it. Every member of S sends v to
// every member of O; a receiver that observes two different values outputs
// ⊥. With |S| > k at least one sender is outside any coalition, so a
// coalition cannot make an honest receiver adopt v′ ∉ {v, ⊥} — it can only
// force ⊥, which solution preference makes unprofitable.
package datatransfer

import (
	"bytes"
	"context"
	"fmt"

	"distauction/internal/proto"
	"distauction/internal/wire"
)

const stepValue uint8 = 1

// Send is the sender half of a transfer: a member of S pushes its copy of
// the value to every member of O. It never blocks on the receivers, so a
// task group can publish its result the moment it is computed and move on —
// this is what lets disjoint groups run truly in parallel (§4.2).
func Send(peer *proto.Peer, round uint64, instance uint32, receiving []wire.NodeID, input []byte) error {
	if err := peer.AbortErr(round); err != nil {
		return err
	}
	tag := wire.Tag{Round: round, Block: wire.BlockTransfer, Instance: instance, Step: stepValue}
	for _, o := range receiving {
		if err := peer.Send(o, tag, input); err != nil {
			return peer.FailRound(round, fmt.Sprintf("transfer %d: send to %d: %v", instance, o, err))
		}
	}
	return nil
}

// Recv is the receiver half of a transfer: a member of O gathers the value
// from every member of S and requires unanimity; any conflict aborts the
// round (⊥).
func Recv(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, sending []wire.NodeID) ([]byte, error) {
	v, _, err := RecvInto(ctx, peer, round, instance, sending, nil)
	return v, err
}

// RecvInto is Recv gathering into buf: callers on the per-round hot path
// hand in a recycled scratch slice so the gather allocates nothing. It
// returns the agreed value and the (possibly grown) scratch for reuse; the
// scratch's payload views must be dropped before the round's protocol state
// is reclaimed.
func RecvInto(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, sending []wire.NodeID, buf [][]byte) ([]byte, [][]byte, error) {
	if err := peer.AbortErr(round); err != nil {
		return nil, buf, err
	}
	tag := wire.Tag{Round: round, Block: wire.BlockTransfer, Instance: instance, Step: stepValue}
	values, err := peer.GatherAppend(ctx, tag, sending, buf[:0])
	if err != nil {
		if abortErr := peer.AbortErr(round); abortErr != nil {
			return nil, values, abortErr
		}
		return nil, values, peer.FailRound(round, fmt.Sprintf("transfer %d: gather: %v", instance, err))
	}
	var agreed []byte
	for i, v := range values {
		if i == 0 {
			agreed = v
			continue
		}
		if !bytes.Equal(agreed, v) {
			return nil, values, peer.FailRound(round, fmt.Sprintf("transfer %d: conflicting values from senders", instance))
		}
	}
	return agreed, values, nil
}

// Pending is an in-flight receive started by RecvAsync.
type Pending struct {
	done  chan struct{}
	value []byte
	err   error
}

// RecvAsync starts Recv in its own goroutine so a task's in-edges can all
// be gathered concurrently — c cross-group inputs cost one round trip
// instead of c. The returned Pending must be joined before the round's
// protocol state is reclaimed; Recv's abort and context handling guarantee
// the join cannot hang past the round.
func RecvAsync(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, sending []wire.NodeID) *Pending {
	p := &Pending{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.value, p.err = Recv(ctx, peer, round, instance, sending)
	}()
	return p
}

// Join waits for the receive to finish and returns its result. It may be
// called any number of times, from any goroutine.
func (p *Pending) Join() ([]byte, error) {
	<-p.done
	return p.value, p.err
}

// Run executes one transfer synchronously (Send then Recv according to the
// local provider's membership). instance must be unique per transfer within
// the round (the task-graph engine numbers transfers by edge).
//
// The local provider's role follows from membership: members of S send
// input; members of O receive and cross-check. The return value is the
// transferred value for members of S∪O and nil for bystanders. Mismatches
// and timeouts abort the round (⊥).
func Run(ctx context.Context, peer *proto.Peer, round uint64, instance uint32,
	sending, receiving []wire.NodeID, input []byte) ([]byte, error) {

	if err := peer.AbortErr(round); err != nil {
		return nil, err
	}
	self := peer.Self()
	inS := proto.ContainsNode(sending, self)
	inO := proto.ContainsNode(receiving, self)
	if !inS && !inO {
		return nil, nil
	}
	if inS {
		if err := Send(peer, round, instance, receiving, input); err != nil {
			return nil, err
		}
		if !inO {
			return input, nil
		}
	}
	return Recv(ctx, peer, round, instance, sending)
}
