package datatransfer

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

func ids(ns ...wire.NodeID) []wire.NodeID { return ns }

func TestTransferDisjointSets(t *testing.T) {
	peers := newPeers(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	S := ids(1, 2)
	O := ids(3, 4)
	value := []byte("task result")

	outs := make([][]byte, 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			var in []byte
			if proto.ContainsNode(S, p.Self()) {
				in = value
			}
			outs[i], errs[i] = Run(ctx, p, 1, 0, S, O, in)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := range peers {
		if !bytes.Equal(outs[i], value) {
			t.Errorf("peer %d output %q, want %q", i+1, outs[i], value)
		}
	}
}

func TestTransferOverlappingSets(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	S := ids(1, 2)
	O := ids(2, 3) // provider 2 both sends and receives
	value := []byte("v")

	outs := make([][]byte, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			var in []byte
			if proto.ContainsNode(S, p.Self()) {
				in = value
			}
			outs[i], errs[i] = Run(ctx, p, 1, 0, S, O, in)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := range peers {
		if !bytes.Equal(outs[i], value) {
			t.Errorf("peer %d output %q", i+1, outs[i])
		}
	}
}

func TestBystanderReturnsNil(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	S := ids(1)
	O := ids(2)

	outs := make([][]byte, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			var in []byte
			if p.Self() == 1 {
				in = []byte("x")
			}
			outs[i], errs[i] = Run(ctx, p, 1, 0, S, O, in)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	if outs[2] != nil {
		t.Errorf("bystander got %q, want nil", outs[2])
	}
	if !bytes.Equal(outs[1], []byte("x")) {
		t.Errorf("receiver got %q", outs[1])
	}
}

// A lying sender in S cannot push a different value: the receiver sees the
// conflict and the round aborts.
func TestConflictingSendersAbort(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	S := ids(1, 2)
	O := ids(3)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([][]byte, 3)
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			var in []byte
			switch p.Self() {
			case 1:
				in = []byte("honest value")
			case 2:
				in = []byte("LIE")
			}
			outs[i], errs[i] = Run(ctx, p, 1, 0, S, O, in)
		}(i, p)
	}
	wg.Wait()
	if !errors.Is(errs[2], proto.ErrAborted) {
		t.Errorf("receiver: got %v, want abort", errs[2])
	}
	// The receiver never adopts the lie as its output.
	if bytes.Equal(outs[2], []byte("LIE")) {
		t.Error("receiver adopted the minority lie")
	}
}

func TestSilentSenderTimesOutToAbort(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	S := ids(1, 2) // provider 2 stays silent
	O := ids(3)

	var wg sync.WaitGroup
	var senderErr, recvErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, senderErr = Run(ctx, peers[0], 1, 0, S, O, []byte("v"))
	}()
	go func() {
		defer wg.Done()
		_, recvErr = Run(ctx, peers[2], 1, 0, S, O, nil)
	}()
	wg.Wait()
	if senderErr != nil {
		t.Errorf("pure sender should not fail: %v", senderErr)
	}
	if recvErr == nil {
		t.Error("receiver should fail when a sender is silent")
	}
}

func TestInstancesDoNotInterfere(t *testing.T) {
	peers := newPeers(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	S := ids(1)
	O := ids(2)

	var wg sync.WaitGroup
	results := make([][]byte, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, e1 := Run(ctx, peers[0], 1, 0, S, O, []byte("first"))
		_, e2 := Run(ctx, peers[0], 1, 1, S, O, []byte("second"))
		if e1 != nil || e2 != nil {
			errs[0] = errors.Join(e1, e2)
		}
	}()
	go func() {
		defer wg.Done()
		var e1, e2 error
		results[0], e1 = Run(ctx, peers[1], 1, 0, S, O, nil)
		results[1], e2 = Run(ctx, peers[1], 1, 1, S, O, nil)
		if e1 != nil || e2 != nil {
			errs[1] = errors.Join(e1, e2)
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("side %d: %v", i, err)
		}
	}
	if string(results[0]) != "first" || string(results[1]) != "second" {
		t.Errorf("instances crossed: %q / %q", results[0], results[1])
	}
}

func TestAbortedRoundShortCircuits(t *testing.T) {
	peers := newPeers(t, 2)
	if err := peers[0].Abort(2, "pre"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), peers[0], 2, 0, ids(1), ids(2), []byte("x")); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("got %v, want abort", err)
	}
}

// RecvAsync must gather many in-edges concurrently: all pendings resolve
// regardless of send order, and each Join is idempotent.
func TestRecvAsyncConcurrentEdges(t *testing.T) {
	peers := newPeers(t, 4)
	sending := []wire.NodeID{1, 2}
	receiver := peers[2] // node 3
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const edges = 3
	pendings := make([]*Pending, edges)
	for e := 0; e < edges; e++ {
		pendings[e] = RecvAsync(ctx, receiver, 1, uint32(e), sending)
	}
	// Senders publish in reverse edge order; arrival order must not matter.
	for e := edges - 1; e >= 0; e-- {
		payload := []byte{byte('a' + e)}
		for _, p := range peers[:2] {
			if err := Send(p, 1, uint32(e), []wire.NodeID{3}, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	for e, p := range pendings {
		for i := 0; i < 2; i++ { // Join twice: idempotent
			v, err := p.Join()
			if err != nil {
				t.Fatalf("edge %d: %v", e, err)
			}
			if string(v) != string([]byte{byte('a' + e)}) {
				t.Fatalf("edge %d: got %q", e, v)
			}
		}
	}
}

// A pending receive must unwind with ⊥ when the round aborts under it.
func TestRecvAsyncAbortUnwinds(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	p := RecvAsync(ctx, peers[2], 1, 0, []wire.NodeID{1, 2})
	if err := peers[0].Abort(1, "test abort"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Join(); !errors.Is(err, proto.ErrAborted) {
		t.Fatalf("got %v, want ⊥", err)
	}
}
