package wire

// Marketplace lanes.
//
// A marketplace runs many independent auctions over one shared transport
// attachment per node. Each auction is assigned a *lane*: the high LaneBits
// of Tag.Instance. The low InstanceBits remain the block-local instance
// (consensus slot, task id, …), so the protocol building blocks are
// lane-oblivious — the market mux shifts the lane in on send and strips it
// on receive, and two auctions' messages can never collide on a tag even
// when their round numbers coincide.
//
// The split is wire-visible; do not change it without versioning the
// protocol. 12 lane bits cover thousands of concurrent auctions, and 20
// instance bits dwarf any block's real instance usage (consensus instances
// are bid slots, task instances are task-graph node ids).
const (
	// LaneBits is the width of the lane field in Tag.Instance.
	LaneBits = 12
	// InstanceBits is the width left for the block-local instance.
	InstanceBits = 32 - LaneBits
	// MaxLane is the largest addressable lane. Lane 0 is the default lane:
	// traffic outside any marketplace (a standalone Session) runs there.
	MaxLane = 1<<LaneBits - 1
	// MaxInstance is the largest block-local instance representable next to
	// a lane. Sends with a larger instance are rejected by the market mux.
	MaxInstance = 1<<InstanceBits - 1
)

// LaneOf extracts the lane from a full Tag.Instance value.
func LaneOf(instance uint32) uint32 { return instance >> InstanceBits }

// LaneInstance extracts the block-local instance from a full Tag.Instance
// value.
func LaneInstance(instance uint32) uint32 { return instance & MaxInstance }

// JoinLane combines a lane and a block-local instance into a full
// Tag.Instance value. The caller guarantees lane <= MaxLane and
// instance <= MaxInstance.
func JoinLane(lane, instance uint32) uint32 { return lane<<InstanceBits | instance }
