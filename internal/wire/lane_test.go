package wire

import "testing"

func TestLaneSplitRoundTrips(t *testing.T) {
	cases := []struct{ lane, inst uint32 }{
		{0, 0},
		{1, 0},
		{MaxLane, MaxInstance},
		{42, 7},
		{MaxLane, 0},
		{0, MaxInstance},
	}
	for _, c := range cases {
		full := JoinLane(c.lane, c.inst)
		if LaneOf(full) != c.lane || LaneInstance(full) != c.inst {
			t.Errorf("JoinLane(%d,%d)=%#x round-trips to (%d,%d)",
				c.lane, c.inst, full, LaneOf(full), LaneInstance(full))
		}
	}
	if LaneBits+InstanceBits != 32 {
		t.Errorf("lane split does not cover the instance field")
	}
}

func TestLaneZeroIsIdentity(t *testing.T) {
	// Lane 0 must leave plain (non-market) instances untouched, so
	// standalone sessions and marketplaces can share a deployment.
	for _, inst := range []uint32{0, 1, 12345, MaxInstance} {
		if JoinLane(0, inst) != inst {
			t.Errorf("JoinLane(0,%d) = %d, want identity", inst, JoinLane(0, inst))
		}
	}
}
