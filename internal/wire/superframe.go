package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Superframe batching.
//
// A superframe carries a batch of envelopes that share one sender and one
// destination, so transports can amortise the per-message fixed costs —
// one wire frame, one MAC, one latency-model event, one dispatch hop — over
// the whole batch. Batching is strictly transport-level: every envelope
// inside a superframe is byte-for-byte the envelope it would be on its own
// (same tag, same payload), so duplicate absorption, equivocation
// detection and ⊥ attribution are unchanged. The shared From/To are
// encoded once and stamped back onto every envelope at decode.
//
// Transferable evidence (§3.2) moves to frame granularity: a batched
// envelope carries no individual MAC by default, but the batch MAC pins
// the ENTIRE frame — conflicting payloads included — to its sender, so a
// retained superframe is itself transferable proof of what the peer said
// under a tag. Deployments that need per-envelope auth.Evidence objects
// pre-sign envelopes before batching (the mixed-auth layout below); the
// batch MAC covers those per-envelope MACs too.
//
// On the wire a superframe is distinguished from a plain envelope frame by
// its leading marker: SuperframeMarker where an envelope's From would be.
// Broadcast (0xFFFFFFFF) is never a valid sender — transports enforce
// From == Self on every send — so the marker cannot collide with a real
// envelope.

// SuperframeMarker is the leading uint32 that identifies a superframe. It
// deliberately equals Broadcast: an envelope frame starts with its From
// field, and no node may send as Broadcast.
const SuperframeMarker uint32 = 0xFFFFFFFF

// MaxSuperframeEnvs bounds the envelope count of one superframe. Coalescers
// flush well below it; the decode-side bound exists so a hostile count
// cannot trigger a huge allocation.
const MaxSuperframeEnvs = 4096

// ErrBadSuperframe reports a structurally invalid superframe.
var ErrBadSuperframe = errors.New("wire: bad superframe")

// Superframe is a batch of envelopes from one sender to one destination,
// authenticated as a unit: MAC is a single HMAC over SignedBytes (the whole
// batch), computed by auth.Registry.SignBatch. Individual envelopes may
// additionally carry their own MACs (the mixed-auth fallback); the batch
// MAC covers those too, so a receiver whose batch verification fails can
// re-verify per envelope to name the deviant.
type Superframe struct {
	From NodeID
	To   NodeID
	Envs []Envelope // all share From/To; Payload/MAC may alias a decode buffer
	MAC  []byte     // batch MAC over SignedBytes, empty on unauthenticated transports
}

// EncodedSize returns a capacity hint covering the full encoding of sf.
func (sf *Superframe) EncodedSize() int {
	n := 16 + len(sf.MAC)
	for i := range sf.Envs {
		n += 36 + len(sf.Envs[i].Payload) + len(sf.Envs[i].MAC)
	}
	return n
}

// SignedBytesTo appends the canonical batch-MAC-covered bytes to enc:
// everything except the batch MAC itself, per-envelope MACs included.
func (sf *Superframe) SignedBytesTo(enc *Encoder) {
	enc.Uint32(SuperframeMarker)
	enc.Uint32(uint32(sf.From))
	enc.Uint32(uint32(sf.To))
	enc.Uvarint(uint64(len(sf.Envs)))
	for i := range sf.Envs {
		e := &sf.Envs[i]
		enc.Uvarint(e.Tag.Round)
		enc.Uint8(uint8(e.Tag.Block))
		enc.Uint32(e.Tag.Instance)
		enc.Uint8(e.Tag.Step)
		enc.Bytes(e.Payload)
		enc.Bytes(e.MAC)
		enc.Uvarint(e.LinkSeq)
		enc.Uvarint(e.LinkAck)
	}
}

// EncodeTo appends the superframe's full encoding (including the batch MAC)
// to enc.
func (sf *Superframe) EncodeTo(enc *Encoder) {
	sf.SignedBytesTo(enc)
	enc.Bytes(sf.MAC)
}

// Encode serialises the superframe including its batch MAC.
func (sf *Superframe) Encode() []byte {
	enc := NewEncoder(sf.EncodedSize())
	sf.EncodeTo(enc)
	return enc.Buffer()
}

// SuperframeSignedView returns the prefix of an encoded superframe covered
// by the batch MAC — everything before the trailing MAC field — so
// receivers can verify directly over the received bytes with no
// re-encoding. macLen must be the decoded batch MAC's length. The second
// result is false when the trailing field is not minimally encoded (Encode
// always is), in which case the frame cannot match what any honest sender
// signed.
func SuperframeSignedView(frame []byte, macLen int) ([]byte, bool) {
	// Trailing field: uvarint(macLen) followed by macLen bytes.
	prefix := 1
	for v := uint64(macLen); v >= 0x80; v >>= 7 {
		prefix++
	}
	cut := len(frame) - prefix - macLen
	if cut < 0 {
		return nil, false
	}
	var lenBuf [10]byte
	n := binary.PutUvarint(lenBuf[:], uint64(macLen))
	if n != prefix || !bytes.Equal(frame[cut:cut+prefix], lenBuf[:n]) {
		return nil, false
	}
	return frame[:cut], true
}

// IsSuperframe reports whether b is a superframe encoding (by marker). It
// is how stream transports discriminate frame kinds.
func IsSuperframe(b []byte) bool {
	return len(b) >= 4 &&
		b[0] == 0xFF && b[1] == 0xFF && b[2] == 0xFF && b[3] == 0xFF
}

// DecodeSuperframe parses a superframe, copying payloads and MACs out of b.
func DecodeSuperframe(b []byte) (Superframe, error) {
	return decodeSuperframe(b, false)
}

// DecodeSuperframeView parses a superframe whose payloads and MACs alias b
// directly (zero copy). The caller must own b and must not modify or reuse
// it afterwards — the stream transports decode each freshly-read frame this
// way and hand the batch over to the dispatcher.
func DecodeSuperframeView(b []byte) (Superframe, error) {
	return decodeSuperframe(b, true)
}

func decodeSuperframe(b []byte, view bool) (Superframe, error) {
	d := NewDecoder(b)
	var sf Superframe
	if d.Uint32() != SuperframeMarker {
		return Superframe{}, fmt.Errorf("%w: missing marker", ErrBadSuperframe)
	}
	sf.From = NodeID(d.Uint32())
	sf.To = NodeID(d.Uint32())
	// Every envelope entry takes at least 8 bytes (tag + two length prefixes),
	// so the count is validated against the remaining input before allocating.
	n := d.SliceLen(8)
	if d.Err() == nil && (n < 1 || n > MaxSuperframeEnvs) {
		return Superframe{}, fmt.Errorf("%w: %d envelopes", ErrBadSuperframe, n)
	}
	if sf.From == NodeID(SuperframeMarker) {
		return Superframe{}, fmt.Errorf("%w: sender is the broadcast ID", ErrBadSuperframe)
	}
	sf.Envs = make([]Envelope, n)
	for i := range sf.Envs {
		e := &sf.Envs[i]
		e.From = sf.From
		e.To = sf.To
		e.Tag.Round = d.Uvarint()
		e.Tag.Block = BlockID(d.Uint8())
		e.Tag.Instance = d.Uint32()
		e.Tag.Step = d.Uint8()
		if view {
			e.Payload = d.BytesView()
			e.MAC = d.BytesView()
		} else {
			e.Payload = d.Bytes()
			e.MAC = d.Bytes()
		}
		e.LinkSeq = d.Uvarint()
		e.LinkAck = d.Uvarint()
		if d.Err() == nil && (e.Tag.Block == BlockInvalid || e.Tag.Block >= blockIDSentinel) {
			return Superframe{}, fmt.Errorf("%w: block id %d", ErrCorrupt, e.Tag.Block)
		}
	}
	if view {
		sf.MAC = d.BytesView()
	} else {
		sf.MAC = d.Bytes()
	}
	if err := d.Finish(); err != nil {
		return Superframe{}, fmt.Errorf("decode superframe: %w", err)
	}
	return sf, nil
}
