package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"distauction/internal/fixed"
)

func TestEncodeDecodeScalars(t *testing.T) {
	e := NewEncoder(64)
	e.Uvarint(0)
	e.Uvarint(math.MaxUint64)
	e.Varint(-1)
	e.Varint(math.MinInt64)
	e.Uint8(0xAB)
	e.Uint32(0xDEADBEEF)
	e.Uint64(0x0102030405060708)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte{1, 2, 3})
	e.String("héllo")
	e.Fixed(fixed.MustFloat(1.25))
	e.FixedSlice([]fixed.Fixed{1, -2, 3})

	d := NewDecoder(e.Buffer())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("varint = %d", got)
	}
	if got := d.Varint(); got != math.MinInt64 {
		t.Errorf("varint = %d", got)
	}
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("uint8 = %x", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("uint32 = %x", got)
	}
	if got := d.Uint64(); got != 0x0102030405060708 {
		t.Errorf("uint64 = %x", got)
	}
	if got := d.Bool(); !got {
		t.Error("bool = false")
	}
	if got := d.Bool(); got {
		t.Error("bool = true")
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("string = %q", got)
	}
	if got := d.Fixed(); got != fixed.MustFloat(1.25) {
		t.Errorf("fixed = %v", got)
	}
	fs := d.FixedSlice()
	if len(fs) != 3 || fs[0] != 1 || fs[1] != -2 || fs[2] != 3 {
		t.Errorf("fixedslice = %v", fs)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x01}) // one byte: not enough for uint32
	_ = d.Uint32()
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// Every later read must return zero values without panicking.
	if v := d.Uvarint(); v != 0 {
		t.Errorf("after error, uvarint = %d", v)
	}
	if b := d.Bytes(); b != nil {
		t.Errorf("after error, bytes = %v", b)
	}
	if err := d.Finish(); err == nil {
		t.Error("finish should report sticky error")
	}
}

func TestDecoderTrailing(t *testing.T) {
	e := NewEncoder(8)
	e.Uvarint(7)
	e.Uint8(9)
	d := NewDecoder(e.Buffer())
	if got := d.Uvarint(); got != 7 {
		t.Fatalf("uvarint = %d", got)
	}
	if err := d.Finish(); err == nil {
		t.Error("expected ErrTrailing")
	}
}

func TestDecoderBadBool(t *testing.T) {
	d := NewDecoder([]byte{7})
	_ = d.Bool()
	if d.Err() == nil {
		t.Error("bool byte 7 should be corrupt")
	}
}

func TestDecoderHugeLength(t *testing.T) {
	e := NewEncoder(16)
	e.Uvarint(uint64(MaxBytesLen) + 1)
	d := NewDecoder(e.Buffer())
	if b := d.Bytes(); b != nil || d.Err() == nil {
		t.Error("oversized length must fail")
	}
}

func TestDecoderFixedSliceBomb(t *testing.T) {
	// A tiny input claiming a billion elements must fail before allocating.
	e := NewEncoder(16)
	e.Uvarint(1 << 30)
	d := NewDecoder(e.Buffer())
	if fs := d.FixedSlice(); fs != nil || d.Err() == nil {
		t.Error("fixedslice bomb must fail")
	}
}

// Property: arbitrary scalar tuples round-trip exactly.
func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(u uint64, v int64, b bool, p []byte, s string) bool {
		e := NewEncoder(64)
		e.Uvarint(u)
		e.Varint(v)
		e.Bool(b)
		e.Bytes(p)
		e.String(s)
		d := NewDecoder(e.Buffer())
		gu := d.Uvarint()
		gv := d.Varint()
		gb := d.Bool()
		gp := d.Bytes()
		gs := d.String()
		if err := d.Finish(); err != nil {
			return false
		}
		return gu == u && gv == v && gb == b && bytes.Equal(gp, p) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary garbage never panics.
func TestQuickDecodeGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		d := NewDecoder(raw)
		_ = d.Uvarint()
		_ = d.Bytes()
		_ = d.FixedSlice()
		_ = d.Uint64()
		_ = d.Finish()
		_, _ = DecodeEnvelope(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBytesViewAliasesInput(t *testing.T) {
	e := NewEncoder(16)
	e.Bytes([]byte("abc"))
	buf := e.Buffer()
	d := NewDecoder(buf)
	v := d.BytesView()
	if string(v) != "abc" {
		t.Fatalf("view = %q", v)
	}
	buf[1] = 'X' // views must alias, copies must not
	if string(v) != "Xbc" {
		t.Error("BytesView returned a copy")
	}
	d2 := NewDecoder(buf)
	c := d2.Bytes()
	buf[1] = 'Y'
	if string(c) != "Xbc" {
		t.Error("Bytes returned a view")
	}
}

func TestStringViewAndString(t *testing.T) {
	e := NewEncoder(16)
	e.String("hello")
	e.String("")
	d := NewDecoder(e.Buffer())
	if got := d.StringView(); got != "hello" {
		t.Errorf("StringView = %q", got)
	}
	if got := d.StringView(); got != "" {
		t.Errorf("empty StringView = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	// Error paths return zero values.
	bad := NewDecoder([]byte{0xFF})
	if got := bad.StringView(); got != "" || bad.Err() == nil {
		t.Error("StringView on garbage must fail empty")
	}
	bad2 := NewDecoder([]byte{0xFF})
	if got := bad2.String(); got != "" || bad2.Err() == nil {
		t.Error("String on garbage must fail empty")
	}
}

func TestEncoderPoolReuse(t *testing.T) {
	e := GetEncoder(64)
	e.String("payload")
	first := e.Buffer()
	if len(first) == 0 {
		t.Fatal("empty encode")
	}
	PutEncoder(e)
	e2 := GetEncoder(16)
	if e2.Len() != 0 {
		t.Error("pooled encoder not reset")
	}
	e2.Uvarint(7)
	d := NewDecoder(e2.Buffer())
	if got := d.Uvarint(); got != 7 {
		t.Errorf("pooled encoder produced %d", got)
	}
	PutEncoder(e2)
	PutEncoder(nil) // must not panic
}

func TestWriteFrameToMatchesWriteFrame(t *testing.T) {
	var a, b bytes.Buffer
	payload := []byte("framed-payload")
	if err := WriteFrame(&a, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameTo(&b, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteFrameTo encoding differs from WriteFrame")
	}
	if err := WriteFrameTo(&b, make([]byte, MaxFrameLen+1)); err == nil {
		t.Error("oversized frame must fail")
	}
}

func TestDecodeEnvelopeViewAliasesInput(t *testing.T) {
	env := Envelope{
		From: 1, To: 2,
		Tag:     Tag{Round: 3, Block: BlockTask, Instance: 4, Step: 5},
		Payload: []byte("payload"), MAC: []byte("mac"),
	}
	raw := env.Encode()
	got, err := DecodeEnvelopeView(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, env.Payload) || !bytes.Equal(got.MAC, env.MAC) {
		t.Fatal("view decode mismatch")
	}
	raw[len(raw)-len("mac")-len("payload")-1] ^= 0xFF // mutate payload region
	if bytes.Equal(got.Payload, env.Payload) {
		t.Error("DecodeEnvelopeView copied the payload")
	}
}

func TestEnvelopeEncodeToMatchesEncode(t *testing.T) {
	env := Envelope{
		From: 9, To: 8,
		Tag:     Tag{Round: 7, Block: BlockCoin, Instance: 6, Step: 5},
		Payload: []byte("p"), MAC: []byte("m"),
	}
	enc := GetEncoder(env.EncodedSize())
	env.EncodeTo(enc)
	if !bytes.Equal(enc.Buffer(), env.Encode()) {
		t.Error("EncodeTo differs from Encode")
	}
	PutEncoder(enc)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{
		From:    3,
		To:      Broadcast,
		Tag:     Tag{Round: 42, Block: BlockCoin, Instance: 7, Step: 2},
		Payload: []byte("payload"),
		MAC:     []byte{0xAA, 0xBB},
	}
	got, err := DecodeEnvelope(env.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.From != env.From || got.To != env.To || got.Tag != env.Tag {
		t.Errorf("header mismatch: %+v vs %+v", got, env)
	}
	if !bytes.Equal(got.Payload, env.Payload) || !bytes.Equal(got.MAC, env.MAC) {
		t.Error("payload/mac mismatch")
	}
}

func TestEnvelopeSignedBytesExcludesMAC(t *testing.T) {
	a := Envelope{From: 1, To: 2, Tag: Tag{Round: 1, Block: BlockTask}, Payload: []byte("x"), MAC: []byte("m1")}
	b := a
	b.MAC = []byte("m2")
	if !bytes.Equal(a.SignedBytes(), b.SignedBytes()) {
		t.Error("SignedBytes must not cover the MAC")
	}
	c := a
	c.Payload = []byte("y")
	if bytes.Equal(a.SignedBytes(), c.SignedBytes()) {
		t.Error("SignedBytes must cover the payload")
	}
}

func TestEnvelopeRejectsBadBlock(t *testing.T) {
	env := Envelope{From: 1, To: 2, Tag: Tag{Block: BlockID(200)}, Payload: nil}
	if _, err := DecodeEnvelope(env.Encode()); err == nil {
		t.Error("invalid block id must be rejected")
	}
}

// Property: envelopes round-trip for arbitrary field values.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(from, to uint32, round uint64, inst uint32, step uint8, payload, mac []byte) bool {
		env := Envelope{
			From:    NodeID(from),
			To:      NodeID(to),
			Tag:     Tag{Round: round, Block: BlockTransfer, Instance: inst, Step: step},
			Payload: payload,
			MAC:     mac,
		}
		got, err := DecodeEnvelope(env.Encode())
		if err != nil {
			return false
		}
		return got.From == env.From && got.To == env.To && got.Tag == env.Tag &&
			bytes.Equal(got.Payload, env.Payload) && bytes.Equal(got.MAC, env.MAC)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(""), []byte("a"), bytes.Repeat([]byte("x"), 100_000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("end of stream: got %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame must fail")
	}
	// Truncated mid-header too.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header must fail")
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Error("oversized frame header must fail")
	}
}

func TestTagString(t *testing.T) {
	tag := Tag{Round: 1, Block: BlockCoin, Instance: 2, Step: 3}
	if got := tag.String(); got != "r1/coin/i2/s3" {
		t.Errorf("tag string = %q", got)
	}
	if got := BlockID(99).String(); got != "block(99)" {
		t.Errorf("unknown block string = %q", got)
	}
}

func BenchmarkEnvelopeEncode(b *testing.B) {
	env := Envelope{
		From:    1,
		To:      2,
		Tag:     Tag{Round: 9, Block: BlockTask, Instance: 3, Step: 1},
		Payload: bytes.Repeat([]byte("p"), 1024),
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		_ = env.Encode()
	}
}

func BenchmarkEnvelopeDecode(b *testing.B) {
	env := Envelope{
		From:    1,
		To:      2,
		Tag:     Tag{Round: 9, Block: BlockTask, Instance: 3, Step: 1},
		Payload: bytes.Repeat([]byte("p"), 1024),
	}
	raw := env.Encode()
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(raw); err != nil {
			b.Fatal(err)
		}
	}
}
