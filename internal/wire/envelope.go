package wire

import (
	"errors"
	"fmt"
)

// NodeID identifies a participant. Providers use small dense IDs assigned at
// configuration time; bidders use IDs in a disjoint range chosen by the
// deployment.
type NodeID uint32

// Broadcast is the reserved destination meaning "all providers".
const Broadcast NodeID = 0xFFFFFFFF

// BlockID identifies a protocol building block (§4 of the paper). It is part
// of the message tag so that concurrent block instances never confuse their
// traffic.
type BlockID uint8

// Block identifiers. The values are wire-visible; do not renumber.
const (
	BlockInvalid     BlockID = 0
	BlockBidSubmit   BlockID = 1 // bidder -> provider bid submission
	BlockBidAgree    BlockID = 2 // rational consensus over bid streams
	BlockValidate    BlockID = 3 // allocator input validation
	BlockCoin        BlockID = 4 // common coin
	BlockTransfer    BlockID = 5 // data transfer between task groups
	BlockTask        BlockID = 6 // task result exchange within a group
	BlockResult      BlockID = 7 // provider -> bidder outcome delivery
	BlockControl     BlockID = 8 // round control (start/abort)
	BlockLink        BlockID = 9 // link layer: seq-carried data, acks, heartbeats
	blockIDSentinel  BlockID = 10
	blockNameInvalid         = "invalid"
)

var blockNames = [blockIDSentinel]string{
	blockNameInvalid, "bid-submit", "bid-agree", "validate",
	"coin", "transfer", "task", "result", "control", "link",
}

// String returns a human-readable block name.
func (b BlockID) String() string {
	if b < blockIDSentinel {
		return blockNames[b]
	}
	return fmt.Sprintf("block(%d)", uint8(b))
}

// Tag routes a message to the block instance and step that expects it.
type Tag struct {
	Round    uint64  // auction round
	Block    BlockID // building block
	Instance uint32  // instance within the block (consensus index, task id…)
	Step     uint8   // phase within the instance (commit, reveal, echo…)
}

// String renders the tag for logs and errors.
func (t Tag) String() string {
	return fmt.Sprintf("r%d/%v/i%d/s%d", t.Round, t.Block, t.Instance, t.Step)
}

// Envelope is the unit of transmission: a tagged, authenticated payload.
type Envelope struct {
	From    NodeID
	To      NodeID // a node ID or Broadcast
	Tag     Tag
	Payload []byte
	MAC     []byte // HMAC over SignedBytes, empty on unauthenticated transports
	// LinkSeq is the resilience layer's per-peer sequence number; zero on
	// unsequenced traffic (broadcasts, or deployments without the link
	// layer). It rides the transport framing but is deliberately outside
	// the MAC-covered bytes: the link layer assigns it after signing, and a
	// retransmission must not need re-signing. Tampering with it on the
	// wire can only reorder or drop — the same power a faulty network
	// already has.
	LinkSeq uint64
	// LinkAck piggybacks the sender's cumulative ack for the reverse
	// direction of the same link (TCP-style), so steady bidirectional
	// traffic never needs standalone ack frames. Outside the MAC for the
	// same reason as LinkSeq; forging it can only drop resend state the
	// forger could drop anyway.
	LinkAck uint64
}

// SignedBytes returns the canonical byte string covered by the MAC:
// everything except the MAC itself.
func (e *Envelope) SignedBytes() []byte {
	enc := NewEncoder(24 + len(e.Payload))
	e.encodeCore(enc)
	return enc.Buffer()
}

// SignedBytesTo appends the canonical MAC-covered bytes to enc. The auth
// layer uses it with a pooled encoder so that per-message signing and
// verification do not allocate.
func (e *Envelope) SignedBytesTo(enc *Encoder) { e.encodeCore(enc) }

// EncodedSize returns a capacity hint covering the full encoding of e.
func (e *Envelope) EncodedSize() int { return 52 + len(e.Payload) + len(e.MAC) }

// EncodeTo appends the envelope's full encoding (including its MAC and
// link sequence) to enc. Transports use it with a pooled encoder: the
// frame bytes are written to the connection and the buffer is recycled
// without ever escaping.
func (e *Envelope) EncodeTo(enc *Encoder) {
	e.encodeCore(enc)
	enc.Bytes(e.MAC)
	enc.Uvarint(e.LinkSeq)
	enc.Uvarint(e.LinkAck)
}

func (e *Envelope) encodeCore(enc *Encoder) {
	enc.Uint32(uint32(e.From))
	enc.Uint32(uint32(e.To))
	enc.Uvarint(e.Tag.Round)
	enc.Uint8(uint8(e.Tag.Block))
	enc.Uint32(e.Tag.Instance)
	enc.Uint8(e.Tag.Step)
	enc.Bytes(e.Payload)
}

// Encode serialises the envelope including its MAC and link sequence.
func (e *Envelope) Encode() []byte {
	enc := NewEncoder(e.EncodedSize())
	e.EncodeTo(enc)
	return enc.Buffer()
}

// DecodeEnvelope parses an envelope, returning an error for malformed input.
// The payload and MAC are copied out of b; use DecodeEnvelopeView when the
// caller owns b and can hand it over.
func DecodeEnvelope(b []byte) (Envelope, error) {
	return decodeEnvelope(b, false)
}

// DecodeEnvelopeView parses an envelope whose Payload and MAC alias b
// directly (zero copy). The caller must own b and must not modify or reuse
// it afterwards — the stream transports decode each freshly-read frame this
// way and hand the slices over to the router.
func DecodeEnvelopeView(b []byte) (Envelope, error) {
	return decodeEnvelope(b, true)
}

func decodeEnvelope(b []byte, view bool) (Envelope, error) {
	d := NewDecoder(b)
	var e Envelope
	e.From = NodeID(d.Uint32())
	e.To = NodeID(d.Uint32())
	e.Tag.Round = d.Uvarint()
	e.Tag.Block = BlockID(d.Uint8())
	e.Tag.Instance = d.Uint32()
	e.Tag.Step = d.Uint8()
	if view {
		e.Payload = d.BytesView()
		e.MAC = d.BytesView()
	} else {
		e.Payload = d.Bytes()
		e.MAC = d.Bytes()
	}
	e.LinkSeq = d.Uvarint()
	e.LinkAck = d.Uvarint()
	if err := d.Finish(); err != nil {
		return Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	if e.Tag.Block == BlockInvalid || e.Tag.Block >= blockIDSentinel {
		return Envelope{}, fmt.Errorf("%w: block id %d", ErrCorrupt, e.Tag.Block)
	}
	return e, nil
}

// ErrFrameTooLarge reports a frame exceeding MaxFrameLen.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// MaxFrameLen bounds a single framed message on stream transports.
const MaxFrameLen = 32 << 20
