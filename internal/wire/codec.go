// Package wire implements the binary wire format of the distributed
// auctioneer protocol.
//
// Every value that crosses the network — or is hashed into a commitment — is
// encoded with this package. The encoding is deterministic: the same value
// always produces the same bytes on every platform. That property is
// load-bearing: providers cross-validate redundant computations by comparing
// encoded results, and the common coin commits to encoded values.
//
// The format is a compact tag-free concatenation: the reader must know the
// schema (every message type has a hand-written Marshal/Unmarshal pair).
// Integers use unsigned varint or zigzag varint; byte strings are
// length-prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"distauction/internal/fixed"
)

// MaxBytesLen bounds a single length-prefixed byte string (16 MiB). Protocol
// messages are far smaller; the bound exists so a corrupt or hostile length
// prefix cannot trigger a huge allocation.
const MaxBytesLen = 16 << 20

// ErrTruncated reports that a decoder ran out of input.
var ErrTruncated = errors.New("wire: truncated input")

// ErrCorrupt reports structurally invalid input (bad varint, oversized
// length prefix, invalid bool byte).
var ErrCorrupt = errors.New("wire: corrupt input")

// ErrTrailing reports that input had unconsumed bytes after a complete decode.
var ErrTrailing = errors.New("wire: trailing bytes")

// Encoder appends values to an internal buffer. The zero value is ready to
// use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// encoderPool recycles Encoder buffers across the hot send/sign paths. The
// pooled buffers grow to the working-set message size and are then reused
// without further allocation.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled encoder with at least n bytes of capacity.
// Callers must hand it back with PutEncoder once the encoded bytes are no
// longer referenced — the buffer is recycled, so the bytes must not be
// retained past PutEncoder (copy them, or skip PutEncoder and let the
// encoder escape to the GC).
func GetEncoder(n int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	if cap(e.buf) < n {
		e.buf = make([]byte, 0, n)
	}
	return e
}

// PutEncoder recycles a pooled encoder. The encoder and its buffer must not
// be used after the call.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > MaxBytesLen {
		return // don't pin pathological buffers in the pool
	}
	encoderPool.Put(e)
}

// Buffer returns the encoded bytes. The buffer is owned by the encoder;
// callers that retain it must not encode further values.
func (e *Encoder) Buffer() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Uint32 appends a fixed-width big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a fixed-width big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Fixed appends a fixed-point value as a zigzag varint of micro-units.
func (e *Encoder) Fixed(f fixed.Fixed) { e.Varint(int64(f)) }

// FixedSlice appends a length-prefixed slice of fixed-point values.
func (e *Encoder) FixedSlice(fs []fixed.Fixed) {
	e.Uvarint(uint64(len(fs)))
	for _, f := range fs {
		e.Fixed(f)
	}
}

// Decoder consumes values from a buffer. Errors are sticky: after the first
// failure every accessor returns the zero value and Err reports the cause.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the sticky error if any, or ErrTrailing if unconsumed bytes
// remain. Every Unmarshal should end with Finish.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint consumes an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrTruncated)
	default:
		d.fail(ErrCorrupt)
	}
	return 0
}

// Varint consumes a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrTruncated)
	default:
		d.fail(ErrCorrupt)
	}
	return 0
}

// Uint8 consumes one byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Uint32 consumes a fixed-width big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Uint64 consumes a fixed-width big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Bool consumes one byte that must be 0 or 1.
func (d *Decoder) Bool() bool {
	v := d.Uint8()
	switch v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(ErrCorrupt)
		return false
	}
}

// Bytes consumes a length-prefixed byte string. The returned slice is a copy,
// so callers may retain it after the underlying buffer is reused.
func (d *Decoder) Bytes() []byte {
	v := d.BytesView()
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// BytesView consumes a length-prefixed byte string and returns a view into
// the decoder's buffer without copying. The view aliases the input: it is
// only valid while the underlying buffer is, and callers that retain bytes
// past the buffer's lifetime must use Bytes instead. A present-but-empty
// byte string decodes to a non-nil empty slice.
func (d *Decoder) BytesView() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		d.fail(ErrCorrupt)
		return nil
	}
	if uint64(d.Remaining()) < n {
		d.fail(ErrTruncated)
		return nil
	}
	v := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// String consumes a length-prefixed string. The result is built directly
// from the input (one copy, no intermediate byte slice).
func (d *Decoder) String() string {
	v := d.BytesView()
	if d.err != nil {
		return ""
	}
	return string(v)
}

// StringView consumes a length-prefixed string without copying: the returned
// string aliases the decoder's buffer via unsafe.String. It is only valid
// while the underlying buffer is alive and unmodified; callers that retain
// the string (or whose buffer is recycled) must use String instead.
func (d *Decoder) StringView() string {
	v := d.BytesView()
	if len(v) == 0 {
		return ""
	}
	return unsafe.String(&v[0], len(v))
}

// Fixed consumes a fixed-point value.
func (d *Decoder) Fixed() fixed.Fixed { return fixed.Fixed(d.Varint()) }

// FixedSlice consumes a length-prefixed slice of fixed-point values.
func (d *Decoder) FixedSlice() []fixed.Fixed {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	// Each element takes at least one byte; reject absurd counts before
	// allocating.
	if n > uint64(d.Remaining()) {
		d.fail(ErrTruncated)
		return nil
	}
	out := make([]fixed.Fixed, n)
	for i := range out {
		out[i] = d.Fixed()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// SliceLen consumes and validates a slice length against the remaining input,
// assuming each element occupies at least minElemSize bytes.
func (d *Decoder) SliceLen(minElemSize int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n > uint64(math.MaxInt32) || n*uint64(minElemSize) > uint64(d.Remaining()) {
		d.fail(ErrTruncated)
		return 0
	}
	return int(n)
}
