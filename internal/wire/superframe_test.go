package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomBatch builds a random superframe with n envelopes sharing from/to.
// withMACs attaches random per-envelope MACs (the mixed-auth layout).
func randomBatch(rng *rand.Rand, from, to NodeID, n int, withMACs bool) Superframe {
	sf := Superframe{From: from, To: to, Envs: make([]Envelope, n)}
	for i := range sf.Envs {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		sf.Envs[i] = Envelope{
			From: from,
			To:   to,
			Tag: Tag{
				Round:    rng.Uint64() >> uint(rng.Intn(60)),
				Block:    BlockID(1 + rng.Intn(int(blockIDSentinel)-1)),
				Instance: rng.Uint32(),
				Step:     uint8(rng.Intn(8)),
			},
			Payload: payload,
		}
		if withMACs {
			mac := make([]byte, 32)
			rng.Read(mac)
			sf.Envs[i].MAC = mac
		}
	}
	return sf
}

func sameBatch(t *testing.T, want, got Superframe) {
	t.Helper()
	if got.From != want.From || got.To != want.To {
		t.Fatalf("endpoints: got %d->%d want %d->%d", got.From, got.To, want.From, want.To)
	}
	if len(got.Envs) != len(want.Envs) {
		t.Fatalf("envelope count: got %d want %d", len(got.Envs), len(want.Envs))
	}
	for i := range want.Envs {
		w, g := &want.Envs[i], &got.Envs[i]
		if g.From != w.From || g.To != w.To || g.Tag != w.Tag {
			t.Fatalf("envelope %d header: got %+v want %+v", i, g, w)
		}
		if !bytes.Equal(g.Payload, w.Payload) || !bytes.Equal(g.MAC, w.MAC) {
			t.Fatalf("envelope %d body mismatch", i)
		}
	}
	if !bytes.Equal(got.MAC, want.MAC) {
		t.Fatalf("batch MAC mismatch")
	}
}

// TestSuperframeRoundTripProperty round-trips random batches — including
// size 1 and the maximum size — through both the copying and the view
// decoder. Run under -race in CI.
func TestSuperframeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 3, MaxSuperframeEnvs}
	for trial := 0; trial < 200; trial++ {
		n := sizes[trial%len(sizes)]
		if n > 8 && trial > len(sizes) { // cap the giant case to the first pass
			n = 1 + rng.Intn(32)
		}
		withMACs := trial%3 == 0
		sf := randomBatch(rng, NodeID(rng.Uint32()>>1), NodeID(rng.Uint32()>>1), n, withMACs)
		if trial%2 == 0 {
			mac := make([]byte, 32)
			rng.Read(mac)
			sf.MAC = mac
		}
		raw := sf.Encode()
		if !IsSuperframe(raw) {
			t.Fatalf("trial %d: encoding not recognised as superframe", trial)
		}
		if _, err := DecodeEnvelope(raw); err == nil {
			t.Fatalf("trial %d: superframe decoded as a plain envelope", trial)
		}
		dec, err := DecodeSuperframe(raw)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		sameBatch(t, sf, dec)
		view, err := DecodeSuperframeView(raw)
		if err != nil {
			t.Fatalf("trial %d: decode view: %v", trial, err)
		}
		sameBatch(t, sf, view)
	}
}

// TestSuperframeEncodingIsEnvelopeBytes asserts the transport-equivalence
// claim at the codec level: every envelope decoded out of a superframe is
// byte-for-byte the envelope that was put in (same tag, payload, MAC, and
// the shared From/To stamped back on).
func TestSuperframeEncodingIsEnvelopeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sf := randomBatch(rng, 3, 9, 16, true)
	raw := sf.Encode()
	dec, err := DecodeSuperframeView(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sf.Envs {
		want := sf.Envs[i].Encode()
		got := dec.Envs[i].Encode()
		if !bytes.Equal(want, got) {
			t.Fatalf("envelope %d: batched bytes differ from standalone bytes", i)
		}
	}
}

// TestSuperframeDecodeRejectsCorruption fuzzes structural corruption: no
// input may decode as both valid and different, and none may panic.
func TestSuperframeDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sf := randomBatch(rng, 1, 2, 5, false)
	raw := sf.Encode()

	if _, err := DecodeSuperframe(nil); err == nil {
		t.Fatal("nil input decoded")
	}
	if _, err := DecodeSuperframe(raw[:3]); err == nil {
		t.Fatal("marker-truncated input decoded")
	}
	// Not-a-marker: a plain envelope must not be taken for a superframe.
	env := Envelope{From: 1, To: 2, Tag: Tag{Round: 1, Block: BlockTask, Step: 1}}
	if IsSuperframe(env.Encode()) {
		t.Fatal("plain envelope detected as superframe")
	}
	if _, err := DecodeSuperframe(env.Encode()); err == nil {
		t.Fatal("plain envelope decoded as superframe")
	}
	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeSuperframe(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeSuperframe(append(append([]byte{}, raw...), 0xAB)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A zero-envelope superframe is invalid.
	empty := Superframe{From: 1, To: 2}
	if _, err := DecodeSuperframe(empty.Encode()); err == nil {
		t.Fatal("empty superframe decoded")
	}
}
