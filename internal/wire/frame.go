package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteFrame writes a length-prefixed frame to w. The prefix is a 4-byte
// big-endian length. WriteFrame performs a single Write call so that
// concurrent writers interleave at frame granularity when w serialises
// writes (callers still normally hold a mutex per connection).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// WriteFrameTo writes a length-prefixed frame as two Write calls (header,
// then payload) without allocating. It is meant for buffered writers — the
// TCP transport batches frames into a bufio.Writer and flushes once per
// burst — where WriteFrame's single-Write copy would be a wasted allocation.
// Callers on unbuffered shared writers must either hold a lock or use
// WriteFrame to keep frames contiguous.
func WriteFrameTo(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r. It returns io.EOF when
// the stream ends cleanly before a frame starts, and io.ErrUnexpectedEOF when
// it ends mid-frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("read frame body: %w", err)
	}
	return payload, nil
}
