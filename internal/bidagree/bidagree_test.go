package bidagree

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

func agreeAll(t *testing.T, peers []*proto.Peer, round uint64, inputs [][][]byte) ([][][]byte, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	outs := make([][][]byte, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			outs[i], errs[i] = Agree(ctx, p, round, inputs[i])
		}(i, p)
	}
	wg.Wait()
	return outs, errs
}

// Validity (Property 1.2): a bidder that submitted the same bid everywhere
// gets exactly that bid in the agreed vector.
func TestValidityForConsistentBidders(t *testing.T) {
	peers := newPeers(t, 3)
	bid := auction.UserBid{Value: fixed.MustFloat(1.2), Demand: fixed.One}.Encode()
	in := [][]byte{bid, nil} // bidder 1 never submitted
	inputs := [][][]byte{in, in, in}
	outs, errs := agreeAll(t, peers, 1, inputs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := range outs {
		if !bytes.Equal(outs[i][0], bid) {
			t.Errorf("peer %d: consistent bid changed", i)
		}
		if len(outs[i][1]) != 0 {
			t.Errorf("peer %d: missing bid should stay empty, got %q", i, outs[i][1])
		}
	}
	// The empty slot decodes to the neutral bid — the paper's b*ᵢ rule.
	if got := auction.SanitizeUserBid(outs[0][1]); !got.IsNeutral() {
		t.Errorf("missing bid not neutralised: %+v", got)
	}
}

// Eventual agreement (Property 1.1) under bidder equivocation: providers
// hold different bytes for a slot, yet all output the same vector, which
// contains one of the submitted values.
func TestAgreementUnderBidderEquivocation(t *testing.T) {
	peers := newPeers(t, 3)
	a := auction.UserBid{Value: fixed.MustFloat(2), Demand: fixed.One}.Encode()
	b := auction.UserBid{Value: fixed.MustFloat(3), Demand: fixed.One}.Encode()
	inputs := [][][]byte{{a}, {b}, {a}}
	outs, errs := agreeAll(t, peers, 1, inputs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[i][0], outs[0][0]) {
			t.Fatal("providers disagree")
		}
	}
	if !bytes.Equal(outs[0][0], a) && !bytes.Equal(outs[0][0], b) {
		t.Errorf("agreed value %q is neither submission", outs[0][0])
	}
}

func TestAbortedRoundPropagates(t *testing.T) {
	peers := newPeers(t, 2)
	if err := peers[0].Abort(4, "pre"); err != nil {
		t.Fatal(err)
	}
	if _, err := Agree(context.Background(), peers[0], 4, nil); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("got %v, want abort", err)
	}
}
