// Package bidagree implements the bid-agreement building block (§4.1 of the
// paper, Property 1).
//
// Each provider enters with the vector of raw bid submissions it received
// (one slot per registered bidder, nil for missing submissions) and leaves
// with a vector common to all providers. The heavy lifting is the rational
// consensus of the consensus package; this package fixes the slot layout
// and the instance numbering.
//
// Properties realised:
//   - Eventual agreement: all honest providers output the same vector
//     (consensus agreement).
//   - Validity: a bidder that submitted the same bytes to every provider
//     gets exactly those bytes in the output — whichever slot leader is
//     drawn, its proposal for that slot is the common value.
//   - Invalid or missing bids survive agreement as raw bytes and are
//     replaced by neutral bids during decoding (auction.Sanitize*), the
//     paper's b*ᵢ substitution.
package bidagree

import (
	"context"

	"distauction/internal/consensus"
	"distauction/internal/proto"
)

// instanceID is the consensus instance used for bid agreement; one batched
// vector consensus per round.
const instanceID uint32 = 0

// Agree runs bid agreement over the local submission vector. All providers
// must pass vectors with the same slot count (the registered bidder list is
// deployment configuration). On success every provider holds the same
// output vector; on deviation or timeout the round aborts (⊥).
func Agree(ctx context.Context, peer *proto.Peer, round uint64, submissions [][]byte) ([][]byte, error) {
	return consensus.Propose(ctx, peer, round, instanceID, submissions)
}

// AgreeObserved is Agree with a binding observer: onBound fires once the
// agreement outcome is committed (every provider's proposal and leader
// share bound, commitment set echo-verified) — see
// consensus.ProposeObserved. The round engine hooks the common coin's
// reveal gate here so the coin's final phase overlaps the agreement's.
func AgreeObserved(ctx context.Context, peer *proto.Peer, round uint64, submissions [][]byte, onBound func()) ([][]byte, error) {
	return consensus.ProposeObserved(ctx, peer, round, instanceID, submissions, onBound)
}
