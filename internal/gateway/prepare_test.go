package gateway

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"distauction/internal/auction"
	"distauction/internal/ledger"
	"distauction/internal/wire"
)

// prepFixture builds a one-user one-provider enforcement target with the
// user funded to `funds` bandwidth-units of currency.
func prepFixture(t *testing.T, funds, capacity float64) (*Enforcer, *ledger.Ledger, *Gateway) {
	t.Helper()
	clk := newFakeClock()
	l := ledger.New()
	for _, id := range []wire.NodeID{100, 1, 999} {
		l.Open(id)
	}
	if funds > 0 {
		if err := l.Deposit(100, bw(funds)); err != nil {
			t.Fatal(err)
		}
	}
	g := New(1, bw(capacity), clockOf(clk))
	return &Enforcer{Ledger: l, Gateways: []*Gateway{g}, Escrow: 999, TTL: time.Hour}, l, g
}

func prepOutcome(alloc, pay, revenue float64) auction.Outcome {
	out := auction.Outcome{Alloc: auction.NewAllocation(1, 1), Pay: auction.NewPayments(1, 1)}
	out.Alloc.Set(0, 0, bw(alloc))
	out.Pay.ByUser[0] = bw(pay)
	out.Pay.ToProvider[0] = bw(revenue)
	return out
}

func TestPrepareCommitMatchesEnforce(t *testing.T) {
	users, provs := []wire.NodeID{100}, []wire.NodeID{1}
	out := prepOutcome(3, 6, 4)

	eDirect, lDirect, _ := prepFixture(t, 10, 5)
	if err := eDirect.Enforce(1, out, users, provs); err != nil {
		t.Fatal(err)
	}

	eStaged, lStaged, gStaged := prepFixture(t, 10, 5)
	p, err := eStaged.Prepare(1, out, users, provs)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-prepare: payer debited, payee not yet paid, allocation reserved,
	// supply conserved.
	if lStaged.Balance(100) != bw(4) || lStaged.Balance(1) != 0 {
		t.Errorf("mid-prepare balances: user=%v provider=%v", lStaged.Balance(100), lStaged.Balance(1))
	}
	if gStaged.Available() != bw(2) {
		t.Errorf("mid-prepare available = %v", gStaged.Available())
	}
	if lStaged.TotalSupply() != bw(10) {
		t.Errorf("mid-prepare supply = %v", lStaged.TotalSupply())
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lDirect.Journal(), lStaged.Journal()) {
		t.Errorf("journals diverge:\nenforce: %+v\nstaged:  %+v", lDirect.Journal(), lStaged.Journal())
	}
	for _, id := range []wire.NodeID{100, 1, 999} {
		if lDirect.Balance(id) != lStaged.Balance(id) {
			t.Errorf("account %d: enforce %v, staged %v", id, lDirect.Balance(id), lStaged.Balance(id))
		}
	}
	if err := p.Commit(); !errors.Is(err, ErrPreparedDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := p.Abort(); !errors.Is(err, ErrPreparedDone) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestPrepareAbortUndoesEverything(t *testing.T) {
	e, l, g := prepFixture(t, 10, 5)
	p, err := e.Prepare(1, prepOutcome(3, 6, 4), []wire.NodeID{100}, []wire.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}
	if l.Balance(100) != bw(10) || l.Balance(1) != 0 || l.Balance(999) != 0 {
		t.Errorf("balances after abort: user=%v provider=%v escrow=%v",
			l.Balance(100), l.Balance(1), l.Balance(999))
	}
	if g.Available() != bw(5) {
		t.Errorf("available after abort = %v", g.Available())
	}
	if len(l.Journal()) != 0 {
		t.Errorf("abort journaled %d entries", len(l.Journal()))
	}
	if l.Holds() != 0 {
		t.Errorf("%d holds linger after abort", l.Holds())
	}
}

func TestPrepareLedgerFailureStagesNothing(t *testing.T) {
	e, l, g := prepFixture(t, 0, 5) // user unfunded: the hold must fail
	_, err := e.Prepare(1, prepOutcome(3, 6, 4), []wire.NodeID{100}, []wire.NodeID{1})
	if !errors.Is(err, ledger.ErrInsufficientFunds) {
		t.Fatalf("prepare: %v", err)
	}
	if g.Available() != bw(5) {
		t.Errorf("reservation created despite failed hold: available = %v", g.Available())
	}
	if l.Holds() != 0 {
		t.Errorf("%d holds linger after failed prepare", l.Holds())
	}
}

func TestPrepareCapacityFailureReleasesHold(t *testing.T) {
	e, l, g := prepFixture(t, 10, 2) // gateway too small for the allocation
	_, err := e.Prepare(1, prepOutcome(3, 6, 4), []wire.NodeID{100}, []wire.NodeID{1})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("prepare: %v", err)
	}
	if l.Balance(100) != bw(10) {
		t.Errorf("hold not refunded: user balance = %v", l.Balance(100))
	}
	if l.Holds() != 0 || g.Live() != 0 {
		t.Errorf("staged state lingers: %d holds, %d reservations", l.Holds(), g.Live())
	}
}
