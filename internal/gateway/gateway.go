// Package gateway models the community-network substrate of the case study
// (§5.1): Internet gateways with limited external bandwidth, reservations
// created from auction outcomes, and token-bucket shaping that enforces
// them.
//
// Together with the ledger this is the "external mechanism" of §3.2: when
// the distributed auctioneer outputs (x, ~p), the allocation x becomes
// reservations on the gateways and the payments ~p settle atomically; when
// it outputs ⊥, nothing is reserved and nothing is paid.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/ledger"
	"distauction/internal/wire"
)

// ErrCapacity reports a reservation that would exceed gateway capacity.
var ErrCapacity = errors.New("gateway: capacity exceeded")

// ErrUnknownReservation reports an operation on a missing reservation.
var ErrUnknownReservation = errors.New("gateway: unknown reservation")

// Clock abstracts time for tests.
type Clock func() time.Time

// ReservationID identifies a reservation within one gateway.
type ReservationID uint64

// Reservation grants a user bandwidth at a gateway until it expires.
type Reservation struct {
	ID        ReservationID
	User      wire.NodeID
	Bandwidth fixed.Fixed // units per second
	ExpiresAt time.Time

	bucket *TokenBucket
}

// Gateway is one Internet gateway.
type Gateway struct {
	id       wire.NodeID
	capacity fixed.Fixed
	clock    Clock

	mu           sync.Mutex
	nextID       ReservationID
	reservations map[ReservationID]*Reservation
	allocated    fixed.Fixed
}

// New creates a gateway with the given external-bandwidth capacity.
// A nil clock uses time.Now.
func New(id wire.NodeID, capacity fixed.Fixed, clock Clock) *Gateway {
	if clock == nil {
		clock = time.Now
	}
	return &Gateway{
		id:           id,
		capacity:     capacity,
		clock:        clock,
		reservations: make(map[ReservationID]*Reservation),
	}
}

// ID returns the gateway's node ID.
func (g *Gateway) ID() wire.NodeID { return g.id }

// Capacity returns the gateway's total capacity.
func (g *Gateway) Capacity() fixed.Fixed { return g.capacity }

// Available returns the currently unreserved capacity, after expiring stale
// reservations.
func (g *Gateway) Available() fixed.Fixed {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireLocked()
	return g.capacity.SatSub(g.allocated)
}

// Reserve grants bandwidth to a user for the given duration.
func (g *Gateway) Reserve(user wire.NodeID, bandwidth fixed.Fixed, ttl time.Duration) (*Reservation, error) {
	if bandwidth <= 0 {
		return nil, fmt.Errorf("gateway: non-positive bandwidth %v", bandwidth)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireLocked()
	if g.allocated.SatAdd(bandwidth) > g.capacity {
		return nil, fmt.Errorf("%w: %v requested, %v available",
			ErrCapacity, bandwidth, g.capacity.SatSub(g.allocated))
	}
	g.nextID++
	r := &Reservation{
		ID:        g.nextID,
		User:      user,
		Bandwidth: bandwidth,
		ExpiresAt: g.clock().Add(ttl),
		// Shape at the reserved rate with a one-second burst.
		bucket: NewTokenBucket(bandwidth, bandwidth, g.clock),
	}
	g.reservations[r.ID] = r
	g.allocated = g.allocated.SatAdd(bandwidth)
	return r, nil
}

// ReleaseAll frees every reservation — the turnover at the end of an
// auction period, before the next round's outcome is enforced.
func (g *Gateway) ReleaseAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reservations = make(map[ReservationID]*Reservation)
	g.allocated = 0
}

// Release frees a reservation early.
func (g *Gateway) Release(id ReservationID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.reservations[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownReservation, id)
	}
	delete(g.reservations, id)
	g.allocated = g.allocated.SatSub(r.Bandwidth)
	return nil
}

// Transmit attempts to send `units` of traffic under a reservation; the
// token bucket admits it only within the reserved rate.
func (g *Gateway) Transmit(id ReservationID, units fixed.Fixed) (bool, error) {
	g.mu.Lock()
	r, ok := g.reservations[id]
	if ok && g.clock().After(r.ExpiresAt) {
		delete(g.reservations, id)
		g.allocated = g.allocated.SatSub(r.Bandwidth)
		ok = false
	}
	g.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownReservation, id)
	}
	return r.bucket.Take(units), nil
}

// Sweep eagerly reclaims expired reservations and returns how many were
// dropped. Expiry is otherwise lazy (piggybacked on Available/Reserve), so
// a long-running deployment whose gateways go quiet between auctions hooks
// Sweep on a cadence — the marketplace's enforcement loop does — to keep
// dead reservations from accumulating.
func (g *Gateway) Sweep() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	before := len(g.reservations)
	g.expireLocked()
	return before - len(g.reservations)
}

// Live returns the number of live (unexpired) reservations.
func (g *Gateway) Live() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireLocked()
	return len(g.reservations)
}

// expireLocked drops expired reservations. Caller holds g.mu.
func (g *Gateway) expireLocked() {
	now := g.clock()
	for id, r := range g.reservations {
		if now.After(r.ExpiresAt) {
			delete(g.reservations, id)
			g.allocated = g.allocated.SatSub(r.Bandwidth)
		}
	}
}

// TokenBucket shapes traffic to a sustained rate with a bounded burst.
type TokenBucket struct {
	mu     sync.Mutex
	rate   fixed.Fixed // tokens per second
	burst  fixed.Fixed // bucket size
	tokens fixed.Fixed
	last   time.Time
	clock  Clock
}

// NewTokenBucket creates a full bucket. A nil clock uses time.Now.
func NewTokenBucket(rate, burst fixed.Fixed, clock Clock) *TokenBucket {
	if clock == nil {
		clock = time.Now
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: clock(), clock: clock}
}

// Take consumes n tokens if available, refilling for elapsed time first.
func (b *TokenBucket) Take(n fixed.Fixed) bool {
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock()
	if elapsed := now.Sub(b.last); elapsed > 0 {
		refill := b.rate.MulFrac(fixed.MustFloat(elapsed.Seconds()))
		b.tokens = fixed.Min2(b.burst, b.tokens.SatAdd(refill))
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Enforcer is the deployment glue: it applies auction outcomes to the
// gateways and the ledger, all or nothing.
type Enforcer struct {
	Ledger   *ledger.Ledger
	Gateways []*Gateway // index-aligned with the outcome's provider axis
	Escrow   wire.NodeID
	// TTL is the reservation lifetime (one auction period).
	TTL time.Duration
}

// Sweep reclaims expired reservations on every gateway of the enforcement
// target, returning the total dropped.
func (e *Enforcer) Sweep() int {
	total := 0
	for _, g := range e.Gateways {
		total += g.Sweep()
	}
	return total
}

// Enforce applies a non-⊥ outcome: payments settle atomically, then the
// allocation becomes reservations. If settlement fails nothing is reserved;
// if a reservation fails (which cannot happen for feasible outcomes), the
// already-created reservations of this round are rolled back.
func (e *Enforcer) Enforce(round uint64, out auction.Outcome, users, providers []wire.NodeID) error {
	if len(e.Gateways) != out.Alloc.NumProviders {
		return fmt.Errorf("gateway: %d gateways for %d providers", len(e.Gateways), out.Alloc.NumProviders)
	}
	transfers, err := ledger.OutcomeTransfers(out, users, providers, e.Escrow)
	if err != nil {
		return err
	}
	if err := e.Ledger.Settle(round, transfers); err != nil {
		return fmt.Errorf("gateway: settlement failed, nothing reserved: %w", err)
	}
	created, err := e.reserveAll(out, users)
	if err != nil {
		releaseAll(created)
		return fmt.Errorf("gateway: reservation failed after settlement — rolled back reservations "+
			"(payments stand; deployment-level reconciliation required): %w", err)
	}
	return nil
}

// staged is one created reservation awaiting commit or abort.
type staged struct {
	g  *Gateway
	id ReservationID
}

// reserveAll turns the allocation into reservations, returning whatever was
// created even on failure so the caller can roll back.
func (e *Enforcer) reserveAll(out auction.Outcome, users []wire.NodeID) ([]staged, error) {
	var created []staged
	for u := 0; u < out.Alloc.NumUsers; u++ {
		for p := 0; p < out.Alloc.NumProviders; p++ {
			bw := out.Alloc.At(u, p)
			if bw <= 0 {
				continue
			}
			r, err := e.Gateways[p].Reserve(users[u], bw, e.TTL)
			if err != nil {
				return created, err
			}
			created = append(created, staged{e.Gateways[p], r.ID})
		}
	}
	return created, nil
}

func releaseAll(created []staged) {
	for _, c := range created {
		_ = c.g.Release(c.id)
	}
}

// Prepared is a staged enforcement: the outcome's payments are held on the
// ledger (payers debited, nothing journaled) and its allocation is already
// reserved on the gateways, but nobody has been paid. Exactly one of
// Commit or Abort finishes it.
type Prepared struct {
	enforcer *Enforcer
	round    uint64
	hold     ledger.HoldID
	created  []staged

	mu   sync.Mutex
	done bool
}

// ErrPreparedDone reports a second Commit/Abort on the same Prepared.
var ErrPreparedDone = errors.New("gateway: prepared enforcement already finished")

// Prepare is the first phase of cross-shard enforcement: it fences the
// outcome's payments on the ledger (Reserve) and creates the gateway
// reservations, but journals and credits nothing. If either leg fails,
// everything already staged is undone and the error returned — the caller
// sees all-or-nothing. A coordinator settling one user's wins on several
// shards Prepares every shard's outcome first and only then Commits them
// all (or Aborts them all), so supply conservation and pay-iff-allocated
// hold across shards.
func (e *Enforcer) Prepare(round uint64, out auction.Outcome, users, providers []wire.NodeID) (*Prepared, error) {
	if len(e.Gateways) != out.Alloc.NumProviders {
		return nil, fmt.Errorf("gateway: %d gateways for %d providers", len(e.Gateways), out.Alloc.NumProviders)
	}
	transfers, err := ledger.OutcomeTransfers(out, users, providers, e.Escrow)
	if err != nil {
		return nil, err
	}
	hold, err := e.Ledger.Reserve(round, transfers)
	if err != nil {
		return nil, fmt.Errorf("gateway: prepare: %w", err)
	}
	created, err := e.reserveAll(out, users)
	if err != nil {
		releaseAll(created)
		_ = e.Ledger.Release(hold)
		return nil, fmt.Errorf("gateway: prepare: %w", err)
	}
	return &Prepared{enforcer: e, round: round, hold: hold, created: created}, nil
}

// Commit finalises a prepared enforcement: the ledger hold commits (payees
// credited, batch journaled exactly as Enforce would have) and the gateway
// reservations stand.
func (p *Prepared) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return ErrPreparedDone
	}
	p.done = true
	return p.enforcer.Ledger.Commit(p.hold)
}

// Abort undoes a prepared enforcement: the gateway reservations are
// released and the ledger hold refunded, as if the outcome had been ⊥.
func (p *Prepared) Abort() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return ErrPreparedDone
	}
	p.done = true
	releaseAll(p.created)
	return p.enforcer.Ledger.Release(p.hold)
}
