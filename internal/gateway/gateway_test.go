package gateway

import (
	"errors"
	"testing"
	"time"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/ledger"
	"distauction/internal/wire"
)

// fakeClock is a controllable clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func clockOf(c *fakeClock) Clock             { return c.Now }
func bw(v float64) fixed.Fixed               { return fixed.MustFloat(v) }
func mustReserve(t *testing.T, g *Gateway, user wire.NodeID, b fixed.Fixed) *Reservation {
	t.Helper()
	r, err := g.Reserve(user, b, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReserveWithinCapacity(t *testing.T) {
	clk := newFakeClock()
	g := New(1, bw(10), clockOf(clk))
	mustReserve(t, g, 100, bw(6))
	if got := g.Available(); got != bw(4) {
		t.Errorf("available = %v, want 4", got)
	}
	if _, err := g.Reserve(101, bw(5), time.Hour); !errors.Is(err, ErrCapacity) {
		t.Errorf("over-capacity reserve: %v", err)
	}
	mustReserve(t, g, 101, bw(4))
	if got := g.Available(); got != 0 {
		t.Errorf("available = %v, want 0", got)
	}
}

func TestReserveRejectsNonPositive(t *testing.T) {
	g := New(1, bw(10), nil)
	if _, err := g.Reserve(100, 0, time.Hour); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := g.Reserve(100, -1, time.Hour); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestReleaseFreesCapacity(t *testing.T) {
	clk := newFakeClock()
	g := New(1, bw(10), clockOf(clk))
	r := mustReserve(t, g, 100, bw(10))
	if err := g.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if got := g.Available(); got != bw(10) {
		t.Errorf("available = %v after release", got)
	}
	if err := g.Release(r.ID); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("double release: %v", err)
	}
}

func TestExpiryFreesCapacity(t *testing.T) {
	clk := newFakeClock()
	g := New(1, bw(10), clockOf(clk))
	r, err := g.Reserve(100, bw(10), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if got := g.Available(); got != bw(10) {
		t.Errorf("expired reservation still counted: %v", got)
	}
	if _, err := g.Transmit(r.ID, bw(1)); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("transmit on expired reservation: %v", err)
	}
}

func TestTransmitShaping(t *testing.T) {
	clk := newFakeClock()
	g := New(1, bw(10), clockOf(clk))
	r := mustReserve(t, g, 100, bw(2)) // 2 units/s, burst 2

	// The full burst is available immediately.
	if ok, err := g.Transmit(r.ID, bw(2)); err != nil || !ok {
		t.Fatalf("burst transmit: %v %v", ok, err)
	}
	// Bucket now empty.
	if ok, _ := g.Transmit(r.ID, bw(0.5)); ok {
		t.Error("transmit admitted with empty bucket")
	}
	// Half a second refills 1 unit.
	clk.Advance(500 * time.Millisecond)
	if ok, _ := g.Transmit(r.ID, bw(1)); !ok {
		t.Error("refill not admitted")
	}
	if ok, _ := g.Transmit(r.ID, bw(0.5)); ok {
		t.Error("over-rate transmit admitted")
	}
}

func TestTokenBucketNeverExceedsBurst(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(bw(1), bw(2), clockOf(clk))
	clk.Advance(time.Hour) // long idle must not grow the bucket beyond burst
	if !b.Take(bw(2)) {
		t.Error("burst not available")
	}
	if b.Take(bw(0.001)) {
		t.Error("bucket exceeded burst")
	}
	if !b.Take(0) {
		t.Error("zero take should always succeed")
	}
}

func TestEnforcerAppliesOutcome(t *testing.T) {
	clk := newFakeClock()
	users := []wire.NodeID{100, 101}
	provs := []wire.NodeID{1, 2}

	l := ledger.New()
	for _, id := range append(append([]wire.NodeID{999}, users...), provs...) {
		l.Open(id)
	}
	if err := l.Deposit(100, bw(10)); err != nil {
		t.Fatal(err)
	}

	gws := []*Gateway{New(1, bw(5), clockOf(clk)), New(2, bw(5), clockOf(clk))}
	e := &Enforcer{Ledger: l, Gateways: gws, Escrow: 999, TTL: time.Hour}

	out := auction.Outcome{Alloc: auction.NewAllocation(2, 2), Pay: auction.NewPayments(2, 2)}
	out.Alloc.Set(0, 0, bw(3))
	out.Pay.ByUser[0] = bw(6)
	out.Pay.ToProvider[0] = bw(4)

	if err := e.Enforce(1, out, users, provs); err != nil {
		t.Fatal(err)
	}
	if l.Balance(100) != bw(4) || l.Balance(1) != bw(4) || l.Balance(999) != bw(2) {
		t.Errorf("balances wrong: user=%v provider=%v escrow=%v",
			l.Balance(100), l.Balance(1), l.Balance(999))
	}
	if gws[0].Available() != bw(2) {
		t.Errorf("gateway 1 available = %v, want 2", gws[0].Available())
	}
	if gws[1].Available() != bw(5) {
		t.Errorf("gateway 2 available = %v, want 5", gws[1].Available())
	}
}

func TestEnforcerInsufficientFundsReservesNothing(t *testing.T) {
	clk := newFakeClock()
	users := []wire.NodeID{100}
	provs := []wire.NodeID{1}
	l := ledger.New()
	l.Open(100)
	l.Open(1)
	l.Open(999) // user 100 has no funds

	gws := []*Gateway{New(1, bw(5), clockOf(clk))}
	e := &Enforcer{Ledger: l, Gateways: gws, Escrow: 999, TTL: time.Hour}

	out := auction.Outcome{Alloc: auction.NewAllocation(1, 1), Pay: auction.NewPayments(1, 1)}
	out.Alloc.Set(0, 0, bw(3))
	out.Pay.ByUser[0] = bw(6)

	if err := e.Enforce(1, out, users, provs); err == nil {
		t.Fatal("enforce should fail on insufficient funds")
	}
	if gws[0].Available() != bw(5) {
		t.Error("reservation created despite failed settlement")
	}
}

func TestEnforcerShapeMismatch(t *testing.T) {
	e := &Enforcer{Ledger: ledger.New(), Gateways: nil, Escrow: 999}
	out := auction.Outcome{Alloc: auction.NewAllocation(1, 1), Pay: auction.NewPayments(1, 1)}
	if err := e.Enforce(1, out, []wire.NodeID{100}, []wire.NodeID{1}); err == nil {
		t.Error("gateway count mismatch accepted")
	}
}

func TestReleaseAll(t *testing.T) {
	clk := newFakeClock()
	g := New(1, bw(10), clockOf(clk))
	mustReserve(t, g, 100, bw(4))
	mustReserve(t, g, 101, bw(6))
	g.ReleaseAll()
	if got := g.Available(); got != bw(10) {
		t.Errorf("available after ReleaseAll = %v, want 10", got)
	}
}

func TestSweepReclaimsExpired(t *testing.T) {
	clk := newFakeClock()
	g := New(1, bw(10), clockOf(clk))
	if _, err := g.Reserve(100, bw(4), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Reserve(101, bw(3), time.Hour); err != nil {
		t.Fatal(err)
	}
	if n := g.Sweep(); n != 0 {
		t.Fatalf("swept %d live reservations", n)
	}
	clk.Advance(2 * time.Minute)
	if n := g.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1 (the expired minute-long reservation)", n)
	}
	if got := g.Available(); got != bw(7) {
		t.Errorf("available after sweep = %v, want 7", got)
	}
	if g.Live() != 1 {
		t.Errorf("live = %d, want 1", g.Live())
	}
	clk.Advance(2 * time.Hour)
	if n := g.Sweep(); n != 1 {
		t.Fatalf("second sweep reclaimed %d, want 1", n)
	}
	if g.Live() != 0 || g.Available() != bw(10) {
		t.Errorf("gateway not empty after full sweep: live=%d avail=%v", g.Live(), g.Available())
	}
}

func TestEnforcerSweepAllGateways(t *testing.T) {
	clk := newFakeClock()
	gws := []*Gateway{New(1, bw(10), clockOf(clk)), New(2, bw(10), clockOf(clk))}
	e := &Enforcer{Ledger: ledger.New(), Gateways: gws, Escrow: 999, TTL: time.Minute}
	for _, g := range gws {
		if _, err := g.Reserve(100, bw(2), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Hour)
	if n := e.Sweep(); n != 2 {
		t.Fatalf("enforcer sweep reclaimed %d, want 2", n)
	}
}

// TestConcurrentEnforceAndSweep hammers one shared gateway set and ledger
// from several goroutines — concurrent Enforce (as a marketplace's
// per-auction consumers do), Sweep, and traffic shaping — to give the race
// detector a surface. Invariants: supply conserved, allocation never
// exceeds capacity.
func TestConcurrentEnforceAndSweep(t *testing.T) {
	const goroutines, iters = 4, 25
	led := ledger.New()
	escrow := wire.NodeID(999)
	led.Open(escrow)
	gws := []*Gateway{New(1, bw(1e6), nil), New(2, bw(1e6), nil)}
	provs := []wire.NodeID{1, 2}
	for _, p := range provs {
		led.Open(p)
	}
	users := []wire.NodeID{100, 101}
	for _, u := range users {
		led.Open(u)
		if err := led.Deposit(u, bw(1e5)); err != nil {
			t.Fatal(err)
		}
	}
	supply := led.TotalSupply()

	out := auction.Outcome{Alloc: auction.NewAllocation(2, 2), Pay: auction.NewPayments(2, 2)}
	out.Alloc.Set(0, 0, bw(1))
	out.Alloc.Set(1, 1, bw(2))
	out.Pay.ByUser[0] = bw(3)
	out.Pay.ByUser[1] = bw(4)
	out.Pay.ToProvider[0] = bw(3)
	out.Pay.ToProvider[1] = bw(4)

	done := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			e := &Enforcer{Ledger: led, Gateways: gws, Escrow: escrow, TTL: time.Millisecond}
			for i := 0; i < iters; i++ {
				if err := e.Enforce(uint64(g*iters+i+1), out, users, provs); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	go func() {
		e := &Enforcer{Ledger: led, Gateways: gws, Escrow: escrow}
		for i := 0; i < iters; i++ {
			e.Sweep()
			time.Sleep(time.Millisecond)
		}
		done <- nil
	}()
	for i := 0; i < goroutines+1; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := led.TotalSupply(); got != supply {
		t.Fatalf("supply changed: %v -> %v", supply, got)
	}
	time.Sleep(5 * time.Millisecond)
	for _, g := range gws {
		g.Sweep()
		if g.Live() != 0 {
			t.Errorf("gateway %d: %d live reservations survived expiry+sweep", g.ID(), g.Live())
		}
	}
}
