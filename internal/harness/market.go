package harness

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/market"
	"distauction/internal/metrics"
	"distauction/internal/proto"
	"distauction/internal/workload"
)

// MarketResult summarises one marketplace throughput run.
type MarketResult struct {
	// Auctions is the number of concurrent auctions; Rounds counts rounds
	// emitted across all of them (Accepted the non-⊥ subset).
	Auctions int
	Rounds   int
	Accepted int
	// Duration runs from the first bid submission until every bidder holds
	// every round's result of every auction it joined.
	Duration time.Duration
	// ResidualMsgs and ResidualRounds sum the buffered protocol state over
	// every provider session of every auction after the run — flat in
	// rounds, or per-round reclamation broke.
	ResidualMsgs   int
	ResidualRounds int
	// BidsAdmitted and BidsDropped aggregate the admission gates across
	// providers.
	BidsAdmitted int64
	BidsDropped  int64
	// ParkedDropped aggregates mux parking-overflow drops across providers.
	ParkedDropped int64
	// FramesSent / SuperframesSent / EnvelopesSent aggregate the provider
	// muxes' outbound coalescing counters; EnvelopesSent/FramesSent is the
	// average batch occupancy.
	FramesSent      int64
	SuperframesSent int64
	EnvelopesSent   int64
	// Latency is the outcome-latency histogram (nanoseconds, bid collection
	// through outcome delivery) merged across the first provider's auctions
	// — one market's view, so each round is counted once. AbortCodes breaks
	// the ⊥ rounds down by typed cause (proto.AbortCode index).
	Latency    metrics.HistogramSnapshot
	AbortCodes [proto.NumAbortCodes]int64
}

// RoundsPerSec is the aggregate throughput across all auctions.
func (r MarketResult) RoundsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Rounds) / r.Duration.Seconds()
}

// LatencyTable renders the run's outcome-latency percentiles as an aligned
// table (the EXPERIMENTS.md reporting format). Quantiles come from the
// log-bucket histogram, so each figure is the lower bound of its bucket —
// conservative within the buckets' 1/16 relative width.
func (r MarketResult) LatencyTable() string {
	h := r.Latency
	row := metrics.Row{Label: "outcome", Cols: []string{
		fmt.Sprintf("%d", h.Count),
		h.QuantileDuration(0.50).Round(time.Microsecond).String(),
		h.QuantileDuration(0.99).Round(time.Microsecond).String(),
		h.QuantileDuration(0.999).Round(time.Microsecond).String(),
		time.Duration(h.Max).Round(time.Microsecond).String(),
	}}
	return metrics.Table(
		metrics.Row{Label: "latency", Cols: []string{"count", "p50", "p99", "p999", "max"}},
		[]metrics.Row{row},
	)
}

// RunMarketDouble measures aggregate marketplace throughput: `auctions`
// independent double auctions multiplexed over one shared network
// attachment per node (m provider markets, n bidders joined to every
// auction), each auction running `rounds` pipelined rounds. Lanes are
// pinned (1..auctions) so generated names cannot collide.
//
// With a non-zero latency model a single auction is latency-bound — its
// sequential protocol hops leave the host idle — so aggregate rounds/s
// should grow with the auction count until the CPU saturates. That scaling
// curve is the marketplace's reason to exist, and BenchmarkMarketThroughput
// records it.
func RunMarketDouble(auctions, rounds int, opts ...Option) (MarketResult, error) {
	cfg := newConfig(opts)
	if auctions < 1 || rounds < 1 {
		return MarketResult{}, errors.New("harness: need at least one auction and one round")
	}
	net := cfg.newNetwork()
	defer net.Close()
	providerIDs, userIDs := ids(cfg.m, cfg.n)

	// A bidder may run ahead of the provider's admission window by its own
	// lookahead plus however far the market's outcome consumer lags ordered
	// emission — bounded by the session's outcome buffer (sized to `rounds`
	// below so emission never blocks). Size the window to cover that whole
	// skew: the bench asserts zero drops, and on a saturated host the
	// consumer can lag many rounds while bidders keep receiving results
	// straight off the wire.
	lookahead := cfg.pipeline + 1
	window := rounds + lookahead + 2

	names := make([]string, auctions)
	lanes := make([]uint32, auctions)
	insts := make([]workload.DoubleAuctionInstance, auctions)
	for j := range names {
		names[j] = fmt.Sprintf("auction-%03d", j)
		lanes[j] = uint32(j + 1)
		insts[j] = workload.NewDoubleAuction(cfg.seed+uint64(j)*104729, cfg.n, cfg.m)
	}

	markets := make([]*market.Market, cfg.m)
	for i, id := range providerIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return MarketResult{}, err
		}
		mk, err := market.Open(conn, providerIDs, market.WithAdmissionWindow(window), market.WithSweepEvery(0))
		if err != nil {
			return MarketResult{}, err
		}
		defer mk.Close()
		markets[i] = mk
		for j, name := range names {
			_, err := mk.OpenAuction(market.AuctionSpec{
				Name:  name,
				Lane:  lanes[j],
				Users: userIDs,
				Options: []core.SessionOption{
					core.WithK(cfg.k),
					core.WithMechanismName("double"),
					core.WithBidWindow(cfg.bidWindow),
					core.WithRoundTimeout(cfg.timeout),
					core.WithRoundLimit(uint64(rounds)),
					core.WithMaxConcurrentRounds(cfg.pipeline),
					core.WithProviderBid(insts[j].Providers[i]),
					core.WithOutcomeBuffer(rounds),
				},
			})
			if err != nil {
				return MarketResult{}, err
			}
		}
	}

	bidders := make([]*market.Bidder, cfg.n)
	sessions := make([][]*core.BidderSession, cfg.n) // [user][auction]
	for i, id := range userIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return MarketResult{}, err
		}
		mb, err := market.NewBidder(conn, providerIDs)
		if err != nil {
			return MarketResult{}, err
		}
		defer mb.Close()
		bidders[i] = mb
		sessions[i] = make([]*core.BidderSession, auctions)
		for j, name := range names {
			s, err := mb.JoinLane(name, lanes[j],
				core.WithRoundLimit(uint64(rounds)),
				core.WithOutcomeBuffer(cfg.pipeline+1),
				core.WithRoundTimeout(cfg.timeout))
			if err != nil {
				return MarketResult{}, err
			}
			sessions[i][j] = s
		}
	}

	// Per-auction per-round workloads, deterministic in the seed.
	roundBids := make([][][]auction.UserBid, auctions) // [auction][round][user]
	for j := range roundBids {
		roundBids[j] = make([][]auction.UserBid, rounds)
		for r := range roundBids[j] {
			roundBids[j][r] = workload.NewDoubleAuction(cfg.seed+uint64(j)*104729+uint64(r)*7919, cfg.n, cfg.m).Users
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.n*auctions)
	acceptedPerAuction := make([]int, auctions)
	for i := range bidders {
		for j := range names {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				s := sessions[i][j]
				slot := i*auctions + j
				for r := 1; r <= min(lookahead, rounds); r++ {
					if err := s.Submit(uint64(r), roundBids[j][r-1][i]); err != nil {
						errs[slot] = err
						return
					}
				}
				seen, ok := 0, 0
				for out := range s.Outcomes() {
					seen++
					if out.Err == nil {
						ok++
					}
					if next := seen + lookahead; next <= rounds {
						if err := s.Submit(uint64(next), roundBids[j][next-1][i]); err != nil {
							errs[slot] = err
							return
						}
					}
				}
				if seen != rounds {
					errs[slot] = fmt.Errorf("auction %d: saw %d of %d rounds", j, seen, rounds)
					return
				}
				if i == 0 {
					acceptedPerAuction[j] = ok
				}
			}(i, j)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	for slot, err := range errs {
		if err != nil {
			return MarketResult{}, fmt.Errorf("harness: bidder %d: %w", slot/auctions, err)
		}
	}

	res := MarketResult{Auctions: auctions, Duration: elapsed}
	for _, n := range acceptedPerAuction {
		res.Accepted += n
	}
	// Wait for the provider-side outcome streams to finish (bidders hold
	// results slightly before the markets' consumers count them), then read
	// the aggregate counters and the residual protocol state.
	deadline := time.Now().Add(cfg.timeout)
	for _, mk := range markets {
		for {
			snap := mk.Stats()
			if snap.Rounds >= int64(auctions*rounds) || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		snap := mk.Stats()
		res.BidsAdmitted += snap.BidsAdmitted
		res.BidsDropped += snap.BidsDropped
		res.ParkedDropped += snap.ParkedDropped
		res.FramesSent += snap.FramesSent
		res.SuperframesSent += snap.SuperframesSent
		res.EnvelopesSent += snap.EnvelopesSent
		for _, name := range names {
			a, ok := mk.Auction(name)
			if !ok {
				return MarketResult{}, fmt.Errorf("harness: auction %q vanished", name)
			}
			msgs, rds := a.Session().Peer().StateSize()
			res.ResidualMsgs += msgs
			res.ResidualRounds += rds
		}
	}
	first := markets[0].Stats()
	res.Rounds = int(first.Rounds)
	res.Latency = first.Latency
	res.AbortCodes = first.AbortCodes
	return res, nil
}
