// Package harness drives full auction rounds for the evaluation (§6),
// reproducing the paper's measurement methodology: a client submits the
// generated bids to the providers and the clock runs "from when the inputs
// are generated at this client node, till the time it receives the results
// from all the experiment instances".
//
// One harness call = one complete deployment (network, providers, bidders)
// plus one or more timed rounds. Deployments are configured with functional
// options and are transport-agnostic: the default network is the in-memory
// Hub with a latency model standing in for the Guifi.net links (see
// DESIGN.md for the substitution argument), and WithNetwork swaps in any
// other transport.Network. The distributed paths run on the session engine;
// RunSessionDouble measures multi-round pipelined throughput over one
// deployment.
package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/transport"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

// config is the target of the functional options.
type config struct {
	m, n, k    int
	latency    transport.LatencyModel
	seed       uint64
	bidWindow  time.Duration
	invEps     int
	iterFactor int
	modelDelay time.Duration
	replicated bool
	timeout    time.Duration
	pipeline   int
	network    func(seed int64) transport.Network
}

func newConfig(opts []Option) config {
	cfg := config{
		m: 3, n: 10, k: 1,
		seed:      1,
		bidWindow: 10 * time.Second,
		timeout:   5 * time.Minute,
		pipeline:  2,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Option configures one experiment deployment.
type Option func(*config)

// WithProviders sets the number of providers executing the protocol (the m
// of the paper).
func WithProviders(m int) Option { return func(c *config) { c.m = m } }

// WithUsers sets the number of users (the n of the paper).
func WithUsers(n int) Option { return func(c *config) { c.n = n } }

// WithK sets the coalition bound (distributed runs; m > 2k).
func WithK(k int) Option { return func(c *config) { c.k = k } }

// WithLatency sets the link model (zero = instant, for unit tests).
func WithLatency(model transport.LatencyModel) Option {
	return func(c *config) { c.latency = model }
}

// WithSeed drives the workload generator and the latency jitter.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithBidWindow bounds bid collection; it must comfortably exceed the
// latency model's delay. The default is 10 s.
func WithBidWindow(d time.Duration) Option { return func(c *config) { c.bidWindow = d } }

// WithInvEpsilon tunes the standard auction's 1/ε approximation effort.
func WithInvEpsilon(e int) Option { return func(c *config) { c.invEps = e } }

// WithIterFactor scales the standard auction's iteration count.
func WithIterFactor(f int) Option { return func(c *config) { c.iterFactor = f } }

// WithModelDelay sets the virtual per-solve compute time of the standard
// auction: it models the paper's one-CPU-per-provider testbed on hosts with
// fewer cores.
func WithModelDelay(d time.Duration) Option { return func(c *config) { c.modelDelay = d } }

// WithReplicated disables the standard auction's parallel decomposition
// (ablation baseline: full resilience, no speedup).
func WithReplicated() Option { return func(c *config) { c.replicated = true } }

// WithTimeout bounds the whole experiment. The default is 5 min.
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithPipelineDepth sets the session pipeline depth for multi-round runs.
func WithPipelineDepth(depth int) Option { return func(c *config) { c.pipeline = depth } }

// WithNetwork swaps the transport: the factory is called once per run with
// the run's seed (the Hub uses it for jitter; other transports may ignore
// it). The default builds a Hub with the configured latency model.
func WithNetwork(factory func(seed int64) transport.Network) Option {
	return func(c *config) { c.network = factory }
}

func (c config) newNetwork() transport.Network {
	if c.network != nil {
		return c.network(int64(c.seed))
	}
	return transport.NewHub(c.latency, int64(c.seed))
}

// Result is one timed round.
type Result struct {
	// Duration is the client-observed running time (paper's metric).
	Duration time.Duration
	// Outcome is the (x, ~p) pair all providers agreed on.
	Outcome auction.Outcome
	// Msgs and Bytes are the network totals for the round.
	Msgs  int64
	Bytes int64
}

// SessionResult is one timed multi-round session run.
type SessionResult struct {
	// Rounds is the number of rounds executed; Accepted counts the non-⊥
	// outcomes among them.
	Rounds   int
	Accepted int
	// Duration runs from the first bid submission until every bidder has
	// every round's result.
	Duration time.Duration
	// Msgs and Bytes are the network totals across all rounds.
	Msgs  int64
	Bytes int64
	// ResidualMsgs and ResidualRounds report the protocol state still
	// buffered at the providers after the last round — both must stay flat
	// as Rounds grows (per-round state is reclaimed, not accumulated).
	ResidualMsgs   int
	ResidualRounds int
}

// RoundsPerSec is the throughput metric of the session engine.
func (r SessionResult) RoundsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Rounds) / r.Duration.Seconds()
}

// ids yields 1..m for providers and 1001..1000+n for users.
func ids(m, n int) (providers, users []wire.NodeID) {
	providers = make([]wire.NodeID, m)
	for i := range providers {
		providers[i] = wire.NodeID(i + 1)
	}
	users = make([]wire.NodeID, n)
	for i := range users {
		users[i] = wire.NodeID(1001 + i)
	}
	return providers, users
}

// RunDistributedDouble times one distributed double-auction round
// (Figure 4, distributed series).
func RunDistributedDouble(opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	inst := workload.NewDoubleAuction(cfg.seed, cfg.n, cfg.m)
	return runDistributed(cfg, core.DoubleAuction{}, inst.Users, inst.Providers)
}

// RunDistributedStandard times one distributed standard-auction round
// (Figure 5, distributed series). The parallelism is p = ⌊m/(k+1)⌋.
func RunDistributedStandard(opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	inst := workload.NewStandardAuction(cfg.seed, cfg.n, cfg.m)
	mech, err := core.NewMechanism("standard", core.MechanismSpec{
		Capacities: inst.Capacities,
		InvEpsilon: cfg.invEps,
		IterFactor: cfg.iterFactor,
		ModelDelay: cfg.modelDelay,
		Replicated: cfg.replicated,
	})
	if err != nil {
		return Result{}, err
	}
	return runDistributed(cfg, mech, inst.Users, nil)
}

// runDistributed deploys provider and bidder sessions on a fresh network
// and times one round through the session engine.
func runDistributed(cfg config, mech core.Mechanism, userBids []auction.UserBid, provBids []auction.ProviderBid) (Result, error) {
	net := cfg.newNetwork()
	defer net.Close()
	providerIDs, userIDs := ids(cfg.m, cfg.n)

	sessions := make([]*core.Session, cfg.m)
	for i, id := range providerIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return Result{}, err
		}
		sopts := []core.SessionOption{
			core.WithK(cfg.k),
			core.WithMechanism(mech),
			core.WithBidWindow(cfg.bidWindow),
			core.WithRoundTimeout(cfg.timeout),
			core.WithRoundLimit(1),
		}
		if provBids != nil {
			sopts = append(sopts, core.WithProviderBid(provBids[i]))
		}
		s, err := core.OpenSession(conn, providerIDs, userIDs, sopts...)
		if err != nil {
			return Result{}, err
		}
		defer s.Close()
		sessions[i] = s
	}
	bidders := make([]*core.BidderSession, cfg.n)
	for i, id := range userIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return Result{}, err
		}
		b, err := core.OpenBidderSession(conn, providerIDs,
			core.WithRoundLimit(1),
			core.WithRoundTimeout(cfg.timeout), // match the run budget, not the 2-min session default
		)
		if err != nil {
			return Result{}, err
		}
		defer b.Close()
		bidders[i] = b
	}

	// The clock starts when the client begins submitting the generated
	// inputs (paper §6.1). Submissions fan out concurrently — the paper's
	// experiment instances are independent client nodes, not one serial
	// submit loop.
	start := time.Now()
	var submitWG sync.WaitGroup
	submitErrs := make([]error, cfg.n)
	for i, b := range bidders {
		submitWG.Add(1)
		go func(i int, b *core.BidderSession) {
			defer submitWG.Done()
			submitErrs[i] = b.Submit(1, userBids[i])
		}(i, b)
	}
	submitWG.Wait()
	for i, err := range submitErrs {
		if err != nil {
			return Result{}, fmt.Errorf("harness: submit %d: %w", i, err)
		}
	}

	// The clock stops when the client has results from every instance.
	deadline := time.After(cfg.timeout)
	outcomes := make([]core.RoundOutcome, cfg.n)
	for i, b := range bidders {
		select {
		case out, ok := <-b.Outcomes():
			if !ok {
				return Result{}, fmt.Errorf("harness: bidder %d: outcome stream closed", i)
			}
			outcomes[i] = out
		case <-deadline:
			return Result{}, fmt.Errorf("harness: bidder %d: timeout", i)
		}
	}
	elapsed := time.Since(start)

	for i, out := range outcomes {
		if out.Err != nil {
			return Result{}, fmt.Errorf("harness: bidder %d: %w", i, out.Err)
		}
	}
	for i, s := range sessions {
		select {
		case out, ok := <-s.Outcomes():
			if ok && out.Err != nil {
				return Result{}, fmt.Errorf("harness: provider %d: %w", i, out.Err)
			}
		case <-deadline:
			return Result{}, fmt.Errorf("harness: provider %d: timeout", i)
		}
	}
	stats := net.Stats()
	return Result{Duration: elapsed, Outcome: outcomes[0].Outcome, Msgs: stats.MsgsSent, Bytes: stats.BytesSent}, nil
}

// RunSessionDouble measures pipelined multi-round throughput: one
// deployment, `rounds` consecutive double-auction rounds through the
// session engine, bidders running `depth` rounds ahead of the outcomes they
// have seen. It is the baseline for the ROADMAP's scaling work.
func RunSessionDouble(rounds int, opts ...Option) (SessionResult, error) {
	cfg := newConfig(opts)
	if rounds < 1 {
		return SessionResult{}, errors.New("harness: need at least one round")
	}
	net := cfg.newNetwork()
	defer net.Close()
	providerIDs, userIDs := ids(cfg.m, cfg.n)
	inst := workload.NewDoubleAuction(cfg.seed, cfg.n, cfg.m)

	sessions := make([]*core.Session, cfg.m)
	for i, id := range providerIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return SessionResult{}, err
		}
		s, err := core.OpenSession(conn, providerIDs, userIDs,
			core.WithK(cfg.k),
			core.WithMechanismName("double"),
			core.WithBidWindow(cfg.bidWindow),
			core.WithRoundTimeout(cfg.timeout),
			core.WithRoundLimit(uint64(rounds)),
			core.WithMaxConcurrentRounds(cfg.pipeline),
			core.WithProviderBid(inst.Providers[i]),
			core.WithOutcomeBuffer(rounds),
		)
		if err != nil {
			return SessionResult{}, err
		}
		defer s.Close()
		sessions[i] = s
	}
	bidders := make([]*core.BidderSession, cfg.n)
	for i, id := range userIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return SessionResult{}, err
		}
		b, err := core.OpenBidderSession(conn, providerIDs,
			core.WithRoundLimit(uint64(rounds)),
			core.WithOutcomeBuffer(cfg.pipeline+1),
			core.WithRoundTimeout(cfg.timeout), // match the run budget, not the 2-min session default
		)
		if err != nil {
			return SessionResult{}, err
		}
		defer b.Close()
		bidders[i] = b
	}

	// Per-round workloads: fresh bids each round, deterministic in the seed.
	roundBids := make([][]auction.UserBid, rounds)
	for r := range roundBids {
		roundBids[r] = workload.NewDoubleAuction(cfg.seed+uint64(r)*7919, cfg.n, cfg.m).Users
	}

	lookahead := cfg.pipeline + 1
	start := time.Now()
	var wg sync.WaitGroup
	bidErrs := make([]error, cfg.n)
	for i, b := range bidders {
		wg.Add(1)
		go func(i int, b *core.BidderSession) {
			defer wg.Done()
			// Prime the pipeline, then keep `lookahead` rounds of bids in
			// flight beyond the outcomes received so far.
			for r := 1; r <= min(lookahead, rounds); r++ {
				if err := b.Submit(uint64(r), roundBids[r-1][i]); err != nil {
					bidErrs[i] = err
					return
				}
			}
			seen := 0
			for out := range b.Outcomes() {
				seen++
				if next := seen + lookahead; next <= rounds {
					if err := b.Submit(uint64(next), roundBids[next-1][i]); err != nil {
						bidErrs[i] = err
						return
					}
				}
				_ = out
			}
			if seen != rounds {
				bidErrs[i] = fmt.Errorf("saw %d of %d rounds", seen, rounds)
			}
		}(i, b)
	}

	accepted := 0
	provErrs := make([]error, cfg.m)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *core.Session) {
			defer wg.Done()
			seen := 0
			ok := 0
			for out := range s.Outcomes() {
				seen++
				if out.Err == nil {
					ok++
				}
			}
			if seen != rounds {
				provErrs[i] = fmt.Errorf("provider saw %d of %d rounds", seen, rounds)
			}
			if i == 0 {
				accepted = ok
			}
		}(i, s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range bidErrs {
		if err != nil {
			return SessionResult{}, fmt.Errorf("harness: bidder %d: %w", i, err)
		}
	}
	for i, err := range provErrs {
		if err != nil {
			return SessionResult{}, fmt.Errorf("harness: provider %d: %w", i, err)
		}
	}

	var residualMsgs, residualRounds int
	for _, s := range sessions {
		m, r := s.Peer().StateSize()
		residualMsgs += m
		residualRounds += r
	}
	stats := net.Stats()
	return SessionResult{
		Rounds:         rounds,
		Accepted:       accepted,
		Duration:       elapsed,
		Msgs:           stats.MsgsSent,
		Bytes:          stats.BytesSent,
		ResidualMsgs:   residualMsgs,
		ResidualRounds: residualRounds,
	}, nil
}

// RunCentralizedDouble times one trusted-auctioneer double-auction round
// (Figure 4, centralized series). The m providers still participate as
// market bidders; one extra node computes.
func RunCentralizedDouble(opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	inst := workload.NewDoubleAuction(cfg.seed, cfg.n, cfg.m)
	return runCentralized(cfg, core.DoubleAuction{}, inst.Users, inst.Providers)
}

// RunCentralizedStandard times one trusted-auctioneer standard-auction
// round (Figure 5, p=1 series).
func RunCentralizedStandard(opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	inst := workload.NewStandardAuction(cfg.seed, cfg.n, cfg.m)
	mech, err := core.NewMechanism("standard", core.MechanismSpec{
		Capacities: inst.Capacities,
		InvEpsilon: cfg.invEps,
		IterFactor: cfg.iterFactor,
		ModelDelay: cfg.modelDelay,
	})
	if err != nil {
		return Result{}, err
	}
	return runCentralized(cfg, mech, inst.Users, nil)
}

func runCentralized(cfg config, mech core.Mechanism, userBids []auction.UserBid, provBids []auction.ProviderBid) (Result, error) {
	net := cfg.newNetwork()
	defer net.Close()
	providerIDs, userIDs := ids(cfg.m, cfg.n)
	const auctioneerID wire.NodeID = 999

	ccfg := core.Config{
		Providers: providerIDs,
		Users:     userIDs,
		K:         0,
		Mechanism: mech,
		BidWindow: cfg.bidWindow,
	}
	aucConn, err := net.Attach(auctioneerID)
	if err != nil {
		return Result{}, err
	}
	auctioneer, err := core.NewCentralized(aucConn, ccfg)
	if err != nil {
		return Result{}, err
	}
	defer auctioneer.Close()

	provConns := make([]transport.Conn, 0, cfg.m)
	if provBids != nil {
		for _, id := range providerIDs {
			conn, err := net.Attach(id)
			if err != nil {
				return Result{}, err
			}
			defer conn.Close()
			provConns = append(provConns, conn)
		}
	}
	bidders := make([]*core.Bidder, cfg.n)
	for i, id := range userIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return Result{}, err
		}
		bidders[i] = core.NewBidder(conn, []wire.NodeID{auctioneerID})
		defer bidders[i].Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	const round = 1
	start := time.Now()

	aucErrCh := make(chan error, 1)
	go func() {
		_, err := auctioneer.RunRound(ctx, round)
		aucErrCh <- err
	}()

	for i, conn := range provConns {
		if err := core.SubmitProviderBid(conn, auctioneerID, round, provBids[i]); err != nil {
			return Result{}, err
		}
	}
	for i, b := range bidders {
		if err := b.Submit(round, userBids[i]); err != nil {
			return Result{}, err
		}
	}

	outcomes := make([]auction.Outcome, cfg.n)
	bidErrs := make([]error, cfg.n)
	var wg sync.WaitGroup
	for i, b := range bidders {
		wg.Add(1)
		go func(i int, b *core.Bidder) {
			defer wg.Done()
			outcomes[i], bidErrs[i] = b.AwaitOutcome(ctx, round)
		}(i, b)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-aucErrCh; err != nil {
		return Result{}, fmt.Errorf("harness: auctioneer: %w", err)
	}
	for i, err := range bidErrs {
		if err != nil {
			return Result{}, fmt.Errorf("harness: bidder %d: %w", i, err)
		}
	}
	stats := net.Stats()
	return Result{Duration: elapsed, Outcome: outcomes[0], Msgs: stats.MsgsSent, Bytes: stats.BytesSent}, nil
}
