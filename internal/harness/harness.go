// Package harness drives full auction rounds for the evaluation (§6),
// reproducing the paper's measurement methodology: a client submits the
// generated bids to the providers and the clock runs "from when the inputs
// are generated at this client node, till the time it receives the results
// from all the experiment instances".
//
// One harness call = one complete deployment (transport, providers,
// bidders) + one timed round. The latency model stands in for the Guifi.net
// links; see DESIGN.md §2 for the substitution argument.
package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/mechanism/standardauction"
	"distauction/internal/transport"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

// Options configures one experiment deployment.
type Options struct {
	// M is the number of providers executing the protocol.
	M int
	// N is the number of users.
	N int
	// K is the coalition bound (distributed runs; m > 2k).
	K int
	// Latency is the link model (zero = instant, for unit tests).
	Latency transport.LatencyModel
	// Seed drives the workload generator and the latency jitter.
	Seed uint64
	// BidWindow bounds bid collection; it must comfortably exceed the
	// latency model's delay. Zero means 10 s.
	BidWindow time.Duration
	// InvEpsilon / IterFactor tune the standard auction's compute cost.
	InvEpsilon int
	IterFactor int
	// ModelDelay is the virtual per-solve compute time of the standard
	// auction (see standardauction.Params.ModelDelay): it models the
	// paper's one-CPU-per-provider testbed on hosts with fewer cores.
	ModelDelay time.Duration
	// Replicated disables the standard auction's parallel decomposition
	// (ablation baseline: full resilience, no speedup).
	Replicated bool
	// Timeout bounds the whole round. Zero means 5 min.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.BidWindow == 0 {
		o.BidWindow = 10 * time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Minute
	}
	return o
}

// Result is one timed round.
type Result struct {
	// Duration is the client-observed running time (paper's metric).
	Duration time.Duration
	// Outcome is the (x, ~p) pair all providers agreed on.
	Outcome auction.Outcome
	// Msgs and Bytes are the network totals for the round.
	Msgs  int64
	Bytes int64
}

// ids yields 1..m for providers and 1001..1000+n for users.
func ids(m, n int) (providers, users []wire.NodeID) {
	providers = make([]wire.NodeID, m)
	for i := range providers {
		providers[i] = wire.NodeID(i + 1)
	}
	users = make([]wire.NodeID, n)
	for i := range users {
		users[i] = wire.NodeID(1001 + i)
	}
	return providers, users
}

// RunDistributedDouble times one distributed double-auction round
// (Figure 4, distributed series).
func RunDistributedDouble(opts Options) (Result, error) {
	opts = opts.withDefaults()
	inst := workload.NewDoubleAuction(opts.Seed, opts.N, opts.M)
	return runDistributed(opts, core.DoubleAuction{}, inst.Users, inst.Providers)
}

// RunDistributedStandard times one distributed standard-auction round
// (Figure 5, distributed series). The parallelism is p = ⌊m/(k+1)⌋.
func RunDistributedStandard(opts Options) (Result, error) {
	opts = opts.withDefaults()
	inst := workload.NewStandardAuction(opts.Seed, opts.N, opts.M)
	mech := core.StandardAuction{
		Params: standardauction.Params{
			Capacities: inst.Capacities,
			InvEpsilon: opts.InvEpsilon,
			IterFactor: opts.IterFactor,
			ModelDelay: opts.ModelDelay,
		},
		Replicated: opts.Replicated,
	}
	return runDistributed(opts, mech, inst.Users, nil)
}

func runDistributed(opts Options, mech core.Mechanism, userBids []auction.UserBid, provBids []auction.ProviderBid) (Result, error) {
	hub := transport.NewHub(opts.Latency, int64(opts.Seed))
	defer hub.Close()
	providerIDs, userIDs := ids(opts.M, opts.N)
	cfg := core.Config{
		Providers: providerIDs,
		Users:     userIDs,
		K:         opts.K,
		Mechanism: mech,
		BidWindow: opts.BidWindow,
	}

	providers := make([]*core.Provider, opts.M)
	for i, id := range providerIDs {
		conn, err := hub.Attach(id)
		if err != nil {
			return Result{}, err
		}
		p, err := core.NewProvider(conn, cfg)
		if err != nil {
			return Result{}, err
		}
		defer p.Close()
		providers[i] = p
	}
	bidders := make([]*core.Bidder, opts.N)
	for i, id := range userIDs {
		conn, err := hub.Attach(id)
		if err != nil {
			return Result{}, err
		}
		bidders[i] = core.NewBidder(conn, providerIDs)
		defer bidders[i].Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	const round = 1

	// The clock starts when the client begins submitting the generated
	// inputs (paper §6.1).
	start := time.Now()

	provErrs := make([]error, opts.M)
	var provWG sync.WaitGroup
	for i, p := range providers {
		var own *auction.ProviderBid
		if provBids != nil {
			own = &provBids[i]
		}
		provWG.Add(1)
		go func(i int, p *core.Provider, own *auction.ProviderBid) {
			defer provWG.Done()
			_, provErrs[i] = p.RunRound(ctx, round, own)
		}(i, p, own)
	}

	for i, b := range bidders {
		if err := b.Submit(round, userBids[i]); err != nil {
			return Result{}, fmt.Errorf("harness: submit %d: %w", i, err)
		}
	}

	// The clock stops when the client has results from every instance.
	var outcome auction.Outcome
	outcomes := make([]auction.Outcome, opts.N)
	bidErrs := make([]error, opts.N)
	var bidWG sync.WaitGroup
	for i, b := range bidders {
		bidWG.Add(1)
		go func(i int, b *core.Bidder) {
			defer bidWG.Done()
			outcomes[i], bidErrs[i] = b.AwaitOutcome(ctx, round)
		}(i, b)
	}
	bidWG.Wait()
	elapsed := time.Since(start)
	provWG.Wait()

	for i, err := range provErrs {
		if err != nil {
			return Result{}, fmt.Errorf("harness: provider %d: %w", i, err)
		}
	}
	for i, err := range bidErrs {
		if err != nil {
			return Result{}, fmt.Errorf("harness: bidder %d: %w", i, err)
		}
	}
	outcome = outcomes[0]
	stats := hub.Stats()
	return Result{Duration: elapsed, Outcome: outcome, Msgs: stats.MsgsSent, Bytes: stats.BytesSent}, nil
}

// RunCentralizedDouble times one trusted-auctioneer double-auction round
// (Figure 4, centralized series). The m providers still participate as
// market bidders; one extra node computes.
func RunCentralizedDouble(opts Options) (Result, error) {
	opts = opts.withDefaults()
	inst := workload.NewDoubleAuction(opts.Seed, opts.N, opts.M)
	return runCentralized(opts, core.DoubleAuction{}, inst.Users, inst.Providers)
}

// RunCentralizedStandard times one trusted-auctioneer standard-auction
// round (Figure 5, p=1 series).
func RunCentralizedStandard(opts Options) (Result, error) {
	opts = opts.withDefaults()
	inst := workload.NewStandardAuction(opts.Seed, opts.N, opts.M)
	mech := core.StandardAuction{Params: standardauction.Params{
		Capacities: inst.Capacities,
		InvEpsilon: opts.InvEpsilon,
		IterFactor: opts.IterFactor,
		ModelDelay: opts.ModelDelay,
	}}
	return runCentralized(opts, mech, inst.Users, nil)
}

func runCentralized(opts Options, mech core.Mechanism, userBids []auction.UserBid, provBids []auction.ProviderBid) (Result, error) {
	hub := transport.NewHub(opts.Latency, int64(opts.Seed))
	defer hub.Close()
	providerIDs, userIDs := ids(opts.M, opts.N)
	const auctioneerID wire.NodeID = 999

	cfg := core.Config{
		Providers: providerIDs,
		Users:     userIDs,
		K:         0,
		Mechanism: mech,
		BidWindow: opts.BidWindow,
	}
	aucConn, err := hub.Attach(auctioneerID)
	if err != nil {
		return Result{}, err
	}
	auctioneer, err := core.NewCentralized(aucConn, cfg)
	if err != nil {
		return Result{}, err
	}
	defer auctioneer.Close()

	provConns := make([]transport.Conn, 0, opts.M)
	if provBids != nil {
		for _, id := range providerIDs {
			conn, err := hub.Attach(id)
			if err != nil {
				return Result{}, err
			}
			defer conn.Close()
			provConns = append(provConns, conn)
		}
	}
	bidders := make([]*core.Bidder, opts.N)
	for i, id := range userIDs {
		conn, err := hub.Attach(id)
		if err != nil {
			return Result{}, err
		}
		bidders[i] = core.NewBidder(conn, []wire.NodeID{auctioneerID})
		defer bidders[i].Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	const round = 1
	start := time.Now()

	aucErrCh := make(chan error, 1)
	go func() {
		_, err := auctioneer.RunRound(ctx, round)
		aucErrCh <- err
	}()

	for i, conn := range provConns {
		if err := core.SubmitProviderBid(conn, auctioneerID, round, provBids[i]); err != nil {
			return Result{}, err
		}
	}
	for i, b := range bidders {
		if err := b.Submit(round, userBids[i]); err != nil {
			return Result{}, err
		}
	}

	outcomes := make([]auction.Outcome, opts.N)
	bidErrs := make([]error, opts.N)
	var wg sync.WaitGroup
	for i, b := range bidders {
		wg.Add(1)
		go func(i int, b *core.Bidder) {
			defer wg.Done()
			outcomes[i], bidErrs[i] = b.AwaitOutcome(ctx, round)
		}(i, b)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-aucErrCh; err != nil {
		return Result{}, fmt.Errorf("harness: auctioneer: %w", err)
	}
	for i, err := range bidErrs {
		if err != nil {
			return Result{}, fmt.Errorf("harness: bidder %d: %w", i, err)
		}
	}
	stats := hub.Stats()
	return Result{Duration: elapsed, Outcome: outcomes[0], Msgs: stats.MsgsSent, Bytes: stats.BytesSent}, nil
}
