package harness

import (
	"testing"
	"time"

	"distauction/internal/transport"
)

func TestDistributedDoubleRound(t *testing.T) {
	res, err := RunDistributedDouble(Options{
		M: 3, N: 5, K: 1, Seed: 1, BidWindow: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Error("no duration measured")
	}
	if res.Msgs == 0 || res.Bytes == 0 {
		t.Error("no traffic recorded")
	}
	if res.Outcome.Alloc.NumUsers != 5 || res.Outcome.Alloc.NumProviders != 3 {
		t.Errorf("outcome shape %dx%d", res.Outcome.Alloc.NumUsers, res.Outcome.Alloc.NumProviders)
	}
}

func TestDistributedStandardRound(t *testing.T) {
	res, err := RunDistributedStandard(Options{
		M: 4, N: 6, K: 1, Seed: 2, BidWindow: time.Second, InvEpsilon: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 6 || res.Outcome.Alloc.NumProviders != 4 {
		t.Errorf("outcome shape %dx%d", res.Outcome.Alloc.NumUsers, res.Outcome.Alloc.NumProviders)
	}
}

func TestCentralizedDoubleRound(t *testing.T) {
	res, err := RunCentralizedDouble(Options{
		M: 3, N: 5, Seed: 1, BidWindow: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 5 {
		t.Error("outcome shape wrong")
	}
}

func TestCentralizedStandardRound(t *testing.T) {
	res, err := RunCentralizedStandard(Options{
		M: 4, N: 6, Seed: 2, BidWindow: time.Second, InvEpsilon: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 6 {
		t.Error("outcome shape wrong")
	}
}

// The same seed must yield the same workload, so double-auction outcomes
// (deterministic mechanism) are identical between a distributed run and a
// centralized run — the "correct simulation" property end to end.
func TestDistributedMatchesCentralizedDouble(t *testing.T) {
	opts := Options{M: 3, N: 8, K: 1, Seed: 42, BidWindow: time.Second}
	dist, err := RunDistributedDouble(opts)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := RunCentralizedDouble(opts)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Outcome.Digest() != cent.Outcome.Digest() {
		t.Error("distributed and centralized double-auction outcomes differ")
	}
}

// With network latency injected, the distributed round must be measurably
// slower than the zero-latency run — the communication overhead that
// Figure 4 plots.
func TestLatencyShowsUpInMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	fast, err := RunDistributedDouble(Options{M: 3, N: 4, K: 1, Seed: 3, BidWindow: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunDistributedDouble(Options{
		M: 3, N: 4, K: 1, Seed: 3, BidWindow: 2 * time.Second,
		Latency: transport.LatencyModel{Base: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration < fast.Duration+20*time.Millisecond {
		t.Errorf("latency not reflected: fast=%v slow=%v", fast.Duration, slow.Duration)
	}
}
