package harness

import (
	"testing"
	"time"

	"distauction/internal/transport"
)

func TestDistributedDoubleRound(t *testing.T) {
	res, err := RunDistributedDouble(
		WithProviders(3), WithUsers(5), WithK(1), WithSeed(1), WithBidWindow(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Error("no duration measured")
	}
	if res.Msgs == 0 || res.Bytes == 0 {
		t.Error("no traffic recorded")
	}
	if res.Outcome.Alloc.NumUsers != 5 || res.Outcome.Alloc.NumProviders != 3 {
		t.Errorf("outcome shape %dx%d", res.Outcome.Alloc.NumUsers, res.Outcome.Alloc.NumProviders)
	}
}

func TestDistributedStandardRound(t *testing.T) {
	res, err := RunDistributedStandard(
		WithProviders(4), WithUsers(6), WithK(1), WithSeed(2), WithBidWindow(time.Second), WithInvEpsilon(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 6 || res.Outcome.Alloc.NumProviders != 4 {
		t.Errorf("outcome shape %dx%d", res.Outcome.Alloc.NumUsers, res.Outcome.Alloc.NumProviders)
	}
}

func TestCentralizedDoubleRound(t *testing.T) {
	res, err := RunCentralizedDouble(
		WithProviders(3), WithUsers(5), WithSeed(1), WithBidWindow(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 5 {
		t.Error("outcome shape wrong")
	}
}

func TestCentralizedStandardRound(t *testing.T) {
	res, err := RunCentralizedStandard(
		WithProviders(4), WithUsers(6), WithSeed(2), WithBidWindow(time.Second), WithInvEpsilon(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 6 {
		t.Error("outcome shape wrong")
	}
}

// The same seed must yield the same workload, so double-auction outcomes
// (deterministic mechanism) are identical between a distributed run and a
// centralized run — the "correct simulation" property end to end.
func TestDistributedMatchesCentralizedDouble(t *testing.T) {
	opts := []Option{WithProviders(3), WithUsers(8), WithK(1), WithSeed(42), WithBidWindow(time.Second)}
	dist, err := RunDistributedDouble(opts...)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := RunCentralizedDouble(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Outcome.Digest() != cent.Outcome.Digest() {
		t.Error("distributed and centralized double-auction outcomes differ")
	}
}

// A multi-round session run must complete every round, accept them all
// (honest deployment), and leave no residual protocol state behind.
func TestSessionDoubleThroughput(t *testing.T) {
	res, err := RunSessionDouble(25,
		WithProviders(3), WithUsers(4), WithK(1), WithSeed(7),
		WithBidWindow(2*time.Second), WithPipelineDepth(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 25 || res.Accepted != 25 {
		t.Errorf("rounds=%d accepted=%d, want 25/25", res.Rounds, res.Accepted)
	}
	if res.RoundsPerSec() <= 0 {
		t.Error("no throughput measured")
	}
	if res.ResidualMsgs != 0 || res.ResidualRounds != 0 {
		t.Errorf("residual state after run: %d msgs, %d rounds", res.ResidualMsgs, res.ResidualRounds)
	}
}

// The harness is transport-agnostic: the same deployment code runs over
// real TCP sockets via WithNetwork.
func TestDistributedDoubleOverTCP(t *testing.T) {
	res, err := RunDistributedDouble(
		WithProviders(3), WithUsers(3), WithK(1), WithSeed(3), WithBidWindow(2*time.Second),
		WithNetwork(func(int64) transport.Network {
			return transport.NewTCPNetwork(transport.TCPNetworkConfig{})
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Alloc.NumUsers != 3 {
		t.Error("outcome shape wrong")
	}
}

// With network latency injected, the distributed round must be measurably
// slower than the zero-latency run — the communication overhead that
// Figure 4 plots.
func TestLatencyShowsUpInMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	base := []Option{WithProviders(3), WithUsers(4), WithK(1), WithSeed(3), WithBidWindow(2 * time.Second)}
	fast, err := RunDistributedDouble(base...)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunDistributedDouble(append(base,
		WithLatency(transport.LatencyModel{Base: 10 * time.Millisecond}))...)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration < fast.Duration+20*time.Millisecond {
		t.Errorf("latency not reflected: fast=%v slow=%v", fast.Duration, slow.Duration)
	}
}
