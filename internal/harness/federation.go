package harness

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/federation"
	"distauction/internal/market"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

// FederationResult summarises one sharded-federation throughput run.
type FederationResult struct {
	MarketResult
	// Shards is the number of provider committees the catalog was
	// partitioned over (each with its own m-provider committee).
	Shards int
	// PerShard is the federation's shard rollup after the run.
	PerShard []federation.ShardSnapshot
}

// RunFederationDouble measures aggregate throughput of a sharded
// federation: `auctions` double auctions partitioned round-robin over
// `shards` committees of m providers each (disjoint fleets — shards×m
// provider nodes total), n bidders joined to every auction through ONE
// federated bidder attachment each, every auction running `rounds`
// pipelined rounds.
//
// This is RunMarketDouble generalised from one committee to many: with one
// shard it deploys the identical topology (m providers, same lanes 1..A),
// so the 1-shard point doubles as the unsharded baseline, and the
// shards-axis curve measures what federating the catalog buys.
func RunFederationDouble(shards, auctions, rounds int, opts ...Option) (FederationResult, error) {
	cfg := newConfig(opts)
	if shards < 1 || shards > federation.MaxShards {
		return FederationResult{}, fmt.Errorf("harness: shard count %d out of range [1,%d]", shards, federation.MaxShards)
	}
	if auctions < 1 || rounds < 1 {
		return FederationResult{}, errors.New("harness: need at least one auction and one round")
	}
	if auctions/shards+1 > federation.MaxLocalLane {
		return FederationResult{}, fmt.Errorf("harness: %d auctions overflow %d shards' local lanes", auctions, shards)
	}
	net := cfg.newNetwork()
	defer net.Close()

	// Shard s gets committee (s-1)m+1 .. sm; users are the usual 1001…
	specs := make([]federation.ShardSpec, shards)
	for s := range specs {
		committee := make([]wire.NodeID, cfg.m)
		for i := range committee {
			committee[i] = wire.NodeID(s*cfg.m + i + 1)
		}
		specs[s] = federation.ShardSpec{Index: s + 1, Providers: committee}
	}
	_, userIDs := ids(cfg.m, cfg.n)

	// Same admission skew bound as RunMarketDouble.
	lookahead := cfg.pipeline + 1
	window := rounds + lookahead + 2

	fed, err := federation.Open(net, specs,
		federation.WithMarketOptions(market.WithAdmissionWindow(window), market.WithSweepEvery(0)))
	if err != nil {
		return FederationResult{}, err
	}
	defer fed.Close()

	type place struct {
		shard int
		local uint32
	}
	names := make([]string, auctions)
	places := make([]place, auctions)
	insts := make([]workload.DoubleAuctionInstance, auctions)
	for j := range names {
		names[j] = fmt.Sprintf("fed-%03d", j)
		places[j] = place{shard: j%shards + 1, local: uint32(j/shards + 1)}
		insts[j] = workload.NewDoubleAuction(cfg.seed+uint64(j)*104729, cfg.n, cfg.m)
	}
	for j, name := range names {
		inst := insts[j]
		err := fed.OpenAuction(federation.AuctionSpec{
			Name:      name,
			Shard:     places[j].shard,
			LocalLane: places[j].local,
			Users:     userIDs,
			Options: []core.SessionOption{
				core.WithK(cfg.k),
				core.WithMechanismName("double"),
				core.WithBidWindow(cfg.bidWindow),
				core.WithRoundTimeout(cfg.timeout),
				core.WithRoundLimit(uint64(rounds)),
				core.WithMaxConcurrentRounds(cfg.pipeline),
				core.WithOutcomeBuffer(rounds),
			},
			MemberOptions: func(i int, _ wire.NodeID) []core.SessionOption {
				return []core.SessionOption{core.WithProviderBid(inst.Providers[i])}
			},
		})
		if err != nil {
			return FederationResult{}, err
		}
	}

	bidders := make([]*federation.Bidder, cfg.n)
	sessions := make([][]*core.BidderSession, cfg.n) // [user][auction]
	for i, id := range userIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return FederationResult{}, err
		}
		fb, err := federation.NewBidder(conn, specs)
		if err != nil {
			return FederationResult{}, err
		}
		defer fb.Close()
		bidders[i] = fb
		sessions[i] = make([]*core.BidderSession, auctions)
		for j, name := range names {
			s, err := fb.JoinOn(name, places[j].shard, places[j].local,
				core.WithRoundLimit(uint64(rounds)),
				core.WithOutcomeBuffer(cfg.pipeline+1),
				core.WithRoundTimeout(cfg.timeout))
			if err != nil {
				return FederationResult{}, err
			}
			sessions[i][j] = s
		}
	}

	roundBids := make([][][]auction.UserBid, auctions) // [auction][round][user]
	for j := range roundBids {
		roundBids[j] = make([][]auction.UserBid, rounds)
		for r := range roundBids[j] {
			roundBids[j][r] = workload.NewDoubleAuction(cfg.seed+uint64(j)*104729+uint64(r)*7919, cfg.n, cfg.m).Users
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.n*auctions)
	acceptedPerAuction := make([]int, auctions)
	for i := range bidders {
		for j := range names {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				s := sessions[i][j]
				slot := i*auctions + j
				for r := 1; r <= min(lookahead, rounds); r++ {
					if err := s.Submit(uint64(r), roundBids[j][r-1][i]); err != nil {
						errs[slot] = err
						return
					}
				}
				seen, ok := 0, 0
				for out := range s.Outcomes() {
					seen++
					if out.Err == nil {
						ok++
					}
					if next := seen + lookahead; next <= rounds {
						if err := s.Submit(uint64(next), roundBids[j][next-1][i]); err != nil {
							errs[slot] = err
							return
						}
					}
				}
				if seen != rounds {
					errs[slot] = fmt.Errorf("auction %d: saw %d of %d rounds", j, seen, rounds)
					return
				}
				if i == 0 {
					acceptedPerAuction[j] = ok
				}
			}(i, j)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	for slot, err := range errs {
		if err != nil {
			return FederationResult{}, fmt.Errorf("harness: bidder %d: %w", slot/auctions, err)
		}
	}

	res := FederationResult{
		MarketResult: MarketResult{Auctions: auctions, Duration: elapsed},
		Shards:       shards,
	}
	for _, n := range acceptedPerAuction {
		res.Accepted += n
	}
	// Wait for every committee member's consumer to finish (each of the m
	// members of an auction's shard counts its rounds), then read the
	// rollup and the residual protocol state.
	wantNodeRounds := int64(auctions * rounds * cfg.m)
	deadline := time.Now().Add(cfg.timeout)
	for {
		var nodeRounds int64
		for _, ns := range fed.Stats().PerNode {
			nodeRounds += ns.Rounds
		}
		if nodeRounds >= wantNodeRounds || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := fed.Stats()
	res.Rounds = int(snap.Rounds)
	res.PerShard = snap.PerShard
	for _, ns := range snap.PerNode {
		res.BidsAdmitted += ns.BidsAdmitted
		res.BidsDropped += ns.BidsDropped
		res.ParkedDropped += ns.ParkedDropped
		res.FramesSent += ns.FramesSent
		res.SuperframesSent += ns.SuperframesSent
		res.EnvelopesSent += ns.EnvelopesSent
	}
	for _, name := range names {
		handles, ok := fed.AuctionHandles(name)
		if !ok {
			return FederationResult{}, fmt.Errorf("harness: auction %q vanished", name)
		}
		for _, a := range handles {
			msgs, rds := a.Session().Peer().StateSize()
			res.ResidualMsgs += msgs
			res.ResidualRounds += rds
		}
	}
	return res, nil
}
