package harness

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/core"
	"distauction/internal/fixed"
	"distauction/internal/gateway"
	"distauction/internal/ledger"
	"distauction/internal/market"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/transport/faultnet"
	"distauction/internal/wire"
	"distauction/internal/workload"
)

// ChaosConfig describes one chaos soak: a full marketplace run over the
// resilience stack — session traffic over Resilient(faultnet.Wrap(Hub)) —
// with frame drops and periodic connection kills injected underneath the
// ARQ layer.
type ChaosConfig struct {
	// Auctions and Rounds shape the market exactly as in RunMarketDouble.
	Auctions int
	Rounds   int
	// Providers, Users, K configure the committee (defaults 3, 4, 1).
	Providers, Users, K int
	// Seed drives the workload, the hub jitter, and the fault schedule.
	Seed uint64
	// Drop is the per-frame drop probability on every link (e.g. 0.01).
	Drop float64
	// KillEvery kills one node's connections every KillEvery completed
	// rounds, rotating the victim across all nodes (0 = no kills).
	KillEvery int
	// Blackout is the dark window a kill opens (default 30ms).
	Blackout time.Duration
	// Timeout bounds the whole soak (default 2 min).
	Timeout time.Duration
}

// ChaosResult reports what the soak survived. The correctness assertions —
// cross-provider ledger-journal equality and replay equality against a
// serial re-settlement of the observed outcomes — run inside RunMarketChaos
// and fail the run; the counters here are for reporting and for the
// zero-transport-aborts assertion the caller owns.
type ChaosResult struct {
	Rounds   int
	Accepted int
	Aborted  int
	// AbortCodes breaks any ⊥ rounds down by cause; a resilience regression
	// shows up as nonzero disconnect/timeout counts.
	AbortCodes [proto.NumAbortCodes]int64
	// Faults is what the injector actually did; Link is what the ARQ layer
	// did to mask it (summed over the first provider's attachment).
	Faults   faultnet.Stats
	Link     transport.LinkStats
	Duration time.Duration
}

func (c *ChaosConfig) defaults() {
	if c.Providers == 0 {
		c.Providers = 3
	}
	if c.Users == 0 {
		c.Users = 4
	}
	if c.K == 0 {
		c.K = 1
	}
	if c.Blackout == 0 {
		c.Blackout = 30 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Minute
	}
}

// chaosLink is the link config for soaks: fast heartbeats so acks and
// failure detection keep up with millisecond rounds, and a deep resend
// buffer so sustained superframe traffic never evicts an unacked frame
// (an evicted frame that faultnet also dropped would be lost for good).
func chaosLink() transport.ResilientConfig {
	return transport.ResilientConfig{
		HeartbeatEvery: 5 * time.Millisecond,
		ResendAfter:    15 * time.Millisecond,
		SuspectAfter:   8,
		DeadAfter:      40,
		MaxUnacked:     1 << 16,
	}
}

// RunMarketChaos runs a full marketplace under injected transport faults
// and proves the outcome stream unharmed: every provider settles every
// auction into its own private ledger, and the run fails unless (1) all
// committee members' journals are identical per auction and (2) the first
// provider's journal equals a serial replay of the outcomes it observed,
// re-settled through a fresh gateway.Enforcer. Abort counts are returned,
// not asserted — the caller decides how many (typically zero) it tolerates.
func RunMarketChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.defaults()
	if cfg.Auctions < 1 || cfg.Rounds < 1 {
		return ChaosResult{}, errors.New("harness: need at least one auction and one round")
	}

	hub := transport.NewHub(transport.LatencyModel{}, int64(cfg.Seed))
	fn := faultnet.Wrap(hub, faultnet.Config{
		Seed:     int64(cfg.Seed),
		Default:  faultnet.Profile{Drop: cfg.Drop},
		Blackout: cfg.Blackout,
	})
	net := transport.Resilient(fn, chaosLink())
	defer net.Close()

	m, n := cfg.Providers, cfg.Users
	providerIDs, userIDs := ids(m, n)
	const escrow wire.NodeID = 999
	victims := append(append([]wire.NodeID{}, providerIDs...), userIDs...)

	pipeline := 2
	lookahead := pipeline + 1
	window := cfg.Rounds + lookahead + 2
	timeout := cfg.Timeout

	names := make([]string, cfg.Auctions)
	lanes := make([]uint32, cfg.Auctions)
	insts := make([]workload.DoubleAuctionInstance, cfg.Auctions)
	for j := range names {
		names[j] = fmt.Sprintf("chaos-%03d", j)
		lanes[j] = uint32(j + 1)
		insts[j] = workload.NewDoubleAuction(cfg.Seed+uint64(j)*104729, n, m)
	}

	// Every committee member settles every auction into its own private
	// ledger + gateway set, all identically funded: after the run the
	// journals must agree entry-for-entry, or resilience lost or reordered
	// an outcome somewhere.
	newLedger := func() *ledger.Ledger {
		led := ledger.New()
		led.Open(escrow)
		for _, id := range userIDs {
			led.Open(id)
			if err := led.Deposit(id, fixed.MustFloat(1e7)); err != nil {
				panic(err) // fresh ledger, cannot overflow
			}
		}
		for _, id := range providerIDs {
			led.Open(id)
		}
		return led
	}
	ledgers := make([][]*ledger.Ledger, m) // [provider][auction]
	for i := range ledgers {
		ledgers[i] = make([]*ledger.Ledger, cfg.Auctions)
		for j := range ledgers[i] {
			ledgers[i][j] = newLedger()
		}
	}
	newGateways := func() []*gateway.Gateway {
		gws := make([]*gateway.Gateway, m)
		for p := range gws {
			gws[p] = gateway.New(providerIDs[p], fixed.MustFloat(1e9), nil)
		}
		return gws
	}

	// The kill schedule rides the first provider's outcome stream: every
	// KillEvery completed rounds, the next victim's connections die.
	var obsMu sync.Mutex
	observed := make(map[string][]core.RoundOutcome, cfg.Auctions)
	completed, nextVictim := 0, 0
	onOutcome := func(name string, out core.RoundOutcome) {
		obsMu.Lock()
		observed[name] = append(observed[name], out)
		completed++
		kill := cfg.KillEvery > 0 && completed%cfg.KillEvery == 0
		var victim wire.NodeID
		if kill {
			victim = victims[nextVictim%len(victims)]
			nextVictim++
		}
		obsMu.Unlock()
		if kill {
			fn.Kill(victim)
		}
	}

	markets := make([]*market.Market, m)
	for i, id := range providerIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return ChaosResult{}, err
		}
		mopts := []market.Option{market.WithAdmissionWindow(window), market.WithSweepEvery(0)}
		if i == 0 {
			mopts = append(mopts, market.WithOnOutcome(onOutcome))
		}
		mk, err := market.Open(conn, providerIDs, mopts...)
		if err != nil {
			return ChaosResult{}, err
		}
		defer mk.Close()
		markets[i] = mk
		for j, name := range names {
			_, err := mk.OpenAuction(market.AuctionSpec{
				Name:  name,
				Lane:  lanes[j],
				Users: userIDs,
				Options: []core.SessionOption{
					core.WithK(cfg.K),
					core.WithMechanismName("double"),
					core.WithBidWindow(10 * time.Second),
					core.WithRoundTimeout(timeout),
					core.WithRoundLimit(uint64(cfg.Rounds)),
					core.WithMaxConcurrentRounds(pipeline),
					core.WithProviderBid(insts[j].Providers[i]),
					core.WithOutcomeBuffer(cfg.Rounds),
				},
				Enforce: &market.EnforceTarget{
					Ledger:   ledgers[i][j],
					Gateways: newGateways(),
					Escrow:   escrow,
					TTL:      time.Hour,
				},
			})
			if err != nil {
				return ChaosResult{}, err
			}
		}
	}

	bidders := make([]*market.Bidder, n)
	sessions := make([][]*core.BidderSession, n)
	for i, id := range userIDs {
		conn, err := net.Attach(id)
		if err != nil {
			return ChaosResult{}, err
		}
		mb, err := market.NewBidder(conn, providerIDs)
		if err != nil {
			return ChaosResult{}, err
		}
		defer mb.Close()
		bidders[i] = mb
		sessions[i] = make([]*core.BidderSession, cfg.Auctions)
		for j, name := range names {
			s, err := mb.JoinLane(name, lanes[j],
				core.WithRoundLimit(uint64(cfg.Rounds)),
				core.WithOutcomeBuffer(pipeline+1),
				core.WithRoundTimeout(timeout))
			if err != nil {
				return ChaosResult{}, err
			}
			sessions[i][j] = s
		}
	}

	roundBids := make([][][]auction.UserBid, cfg.Auctions)
	for j := range roundBids {
		roundBids[j] = make([][]auction.UserBid, cfg.Rounds)
		for r := range roundBids[j] {
			roundBids[j][r] = workload.NewDoubleAuction(cfg.Seed+uint64(j)*104729+uint64(r)*7919, n, m).Users
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n*cfg.Auctions)
	for i := range bidders {
		for j := range names {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				s := sessions[i][j]
				slot := i*cfg.Auctions + j
				for r := 1; r <= min(lookahead, cfg.Rounds); r++ {
					if err := s.Submit(uint64(r), roundBids[j][r-1][i]); err != nil {
						errs[slot] = err
						return
					}
				}
				seen := 0
				for out := range s.Outcomes() {
					seen++
					if next := seen + lookahead; next <= cfg.Rounds {
						if err := s.Submit(uint64(next), roundBids[j][next-1][i]); err != nil {
							errs[slot] = err
							return
						}
					}
					_ = out
				}
				if seen != cfg.Rounds {
					errs[slot] = fmt.Errorf("auction %d: saw %d of %d rounds", j, seen, cfg.Rounds)
				}
			}(i, j)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	for slot, err := range errs {
		if err != nil {
			return ChaosResult{}, fmt.Errorf("harness: chaos bidder %d: %w", slot/cfg.Auctions, err)
		}
	}

	// Every committee member must finish consuming (and settling) every
	// round before the journals are comparable.
	deadline := time.Now().Add(timeout)
	for i, mk := range markets {
		for {
			snap := mk.Stats()
			if snap.Rounds >= int64(cfg.Auctions*cfg.Rounds) {
				break
			}
			if time.Now().After(deadline) {
				return ChaosResult{}, fmt.Errorf("harness: provider %d consumed %d of %d rounds before deadline",
					i, mk.Stats().Rounds, cfg.Auctions*cfg.Rounds)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// (1) Cross-provider journal equality, per auction.
	for j, name := range names {
		ref := ledgers[0][j].Journal()
		for i := 1; i < m; i++ {
			if got := ledgers[i][j].Journal(); !reflect.DeepEqual(got, ref) {
				return ChaosResult{}, fmt.Errorf("harness: %s: provider %d journal diverges from provider 1 (%d vs %d entries)",
					name, providerIDs[i], len(got), len(ref))
			}
		}
	}

	// (2) Replay equality: re-settle the observed outcome stream serially
	// through a fresh Enforcer; the journal must reproduce exactly.
	obsMu.Lock()
	defer obsMu.Unlock()
	res := ChaosResult{Duration: elapsed}
	for j, name := range names {
		replayLed := newLedger()
		replayer := &gateway.Enforcer{
			Ledger:   replayLed,
			Gateways: newGateways(),
			Escrow:   escrow,
			TTL:      time.Hour,
		}
		outs := observed[name]
		if len(outs) != cfg.Rounds {
			return ChaosResult{}, fmt.Errorf("harness: %s: observed %d of %d outcomes", name, len(outs), cfg.Rounds)
		}
		for _, out := range outs {
			res.Rounds++
			if out.Err != nil {
				res.Aborted++
				res.AbortCodes[proto.AbortCodeOf(out.Err)]++
				continue
			}
			res.Accepted++
			if err := replayer.Enforce(out.Round, out.Outcome, userIDs, providerIDs); err != nil {
				return ChaosResult{}, fmt.Errorf("harness: %s: replay round %d: %w", name, out.Round, err)
			}
		}
		if got, want := ledgers[0][j].Journal(), replayLed.Journal(); !reflect.DeepEqual(got, want) {
			return ChaosResult{}, fmt.Errorf("harness: %s: live journal (%d entries) != serial replay (%d entries)",
				name, len(got), len(want))
		}
	}
	res.Faults = fn.FaultStats()
	res.Link = markets[0].Stats().Link
	return res, nil
}
