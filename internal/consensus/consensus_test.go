package consensus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"distauction/internal/commit"
	"distauction/internal/deviation"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

// proposeAll runs Propose at every peer with the given per-peer inputs.
func proposeAll(t *testing.T, peers []*proto.Peer, round uint64, inputs [][][]byte) ([][][]byte, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	outs := make([][][]byte, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			outs[i], errs[i] = Propose(ctx, p, round, 0, inputs[i])
		}(i, p)
	}
	wg.Wait()
	return outs, errs
}

func sameVectors(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestAgreementAndValidityUnanimous(t *testing.T) {
	peers := newPeers(t, 4)
	input := [][]byte{[]byte("bid-alice"), []byte("bid-bob"), []byte("bid-carol")}
	inputs := make([][][]byte, 4)
	for i := range inputs {
		inputs[i] = input
	}
	outs, errs := proposeAll(t, peers, 1, inputs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := range outs {
		if !sameVectors(outs[i], input) {
			t.Errorf("peer %d output %q, want the unanimous input", i, outs[i])
		}
	}
}

func TestAgreementWithDisputedSlot(t *testing.T) {
	peers := newPeers(t, 3)
	// Slot 0 unanimous; slot 1 disputed (a bidder equivocated its bid).
	inputs := [][][]byte{
		{[]byte("same"), []byte("v-from-1")},
		{[]byte("same"), []byte("v-from-2")},
		{[]byte("same"), []byte("v-from-3")},
	}
	outs, errs := proposeAll(t, peers, 1, inputs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	// All providers agree.
	for i := 1; i < len(outs); i++ {
		if !sameVectors(outs[i], outs[0]) {
			t.Fatalf("outputs disagree:\n%q\n%q", outs[0], outs[i])
		}
	}
	// Slot 0 kept the unanimous value; slot 1 is one of the proposals.
	if string(outs[0][0]) != "same" {
		t.Errorf("unanimous slot changed: %q", outs[0][0])
	}
	got := string(outs[0][1])
	if got != "v-from-1" && got != "v-from-2" && got != "v-from-3" {
		t.Errorf("disputed slot %q is nobody's proposal", got)
	}
}

func TestDisputedSlotLeaderVaries(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	peers := newPeers(t, 3)
	winners := map[string]int{}
	for r := uint64(1); r <= 40; r++ {
		inputs := [][][]byte{
			{[]byte("a")}, {[]byte("b")}, {[]byte("c")},
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		outs := make([][][]byte, 3)
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *proto.Peer) {
				defer wg.Done()
				outs[i], errs[i] = Propose(ctx, p, r, 0, inputs[i])
			}(i, p)
		}
		wg.Wait()
		cancel()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d peer %d: %v", r, i, err)
			}
		}
		winners[string(outs[0][0])]++
	}
	// Each of the three proposals should win sometimes: P(never in 40) ≈ 9e-8.
	for _, v := range []string{"a", "b", "c"} {
		if winners[v] == 0 {
			t.Errorf("proposal %q never chosen in 40 rounds: %v", v, winners)
		}
	}
}

func TestSlotCountMismatchAborts(t *testing.T) {
	peers := newPeers(t, 3)
	inputs := [][][]byte{
		{[]byte("x"), []byte("y")},
		{[]byte("x"), []byte("y")},
		{[]byte("x")}, // deviant claims fewer bidders
	}
	_, errs := proposeAll(t, peers, 1, inputs)
	for i := 0; i < 2; i++ {
		if !errors.Is(errs[i], proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, errs[i])
		}
	}
}

func TestTamperedRevealAborts(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const round = 1

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Propose(ctx, peers[i], round, 0, [][]byte{[]byte("v")})
		}(i)
	}

	// Deviant commits to one proposal, reveals another.
	devi := peers[2]
	dom := domain(round, 0)
	honest := encodeProposal(proposal{share: 7, values: [][]byte{[]byte("v")}})
	lie := encodeProposal(proposal{share: 7, values: [][]byte{[]byte("w")}})
	com, op, err := commit.New(dom, devi.Self(), honest)
	if err != nil {
		t.Fatal(err)
	}
	commitTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: 0, Step: stepCommit}
	if err := devi.BroadcastProviders(commitTag, com[:]); err != nil {
		t.Fatal(err)
	}
	commitPayloads, err := devi.GatherProviders(ctx, commitTag)
	if err != nil {
		t.Fatal(err)
	}
	commits := make(map[wire.NodeID]commit.Commitment)
	for id, p := range commitPayloads {
		var c commit.Commitment
		copy(c[:], p)
		commits[id] = c
	}
	echo := commitSetDigest(devi.Providers(), commits)
	echoTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: 0, Step: stepEcho}
	if err := devi.BroadcastProviders(echoTag, echo[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := devi.GatherProviders(ctx, echoTag); err != nil {
		t.Fatal(err)
	}
	revealTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: 0, Step: stepReveal}
	bad := commit.Opening{Salt: op.Salt, Value: lie}
	if err := devi.BroadcastProviders(revealTag, commit.EncodeOpening(bad)); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, err)
		}
	}
}

func TestSilentProviderTimesOutToAbort(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Propose(ctx, peers[i], 1, 0, [][]byte{[]byte("v")})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("peer %d succeeded despite silent provider", i)
		}
	}
}

func TestProposeOnAbortedRound(t *testing.T) {
	peers := newPeers(t, 2)
	if err := peers[0].Abort(9, "pre"); err != nil {
		t.Fatal(err)
	}
	if _, err := Propose(context.Background(), peers[0], 9, 0, nil); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("got %v, want abort", err)
	}
}

// TestDigestFastPathSkipsVectorStep asserts the fast path's defining
// property at the wire level: with unanimous inputs no stepVector message is
// ever sent, while disputed inputs trigger exactly one fallback exchange.
func TestDigestFastPathSkipsVectorStep(t *testing.T) {
	peers := newPeers(t, 3)
	ids := []wire.NodeID{1, 2, 3}

	// Unanimous round: fast path, no vector exchange.
	input := [][]byte{[]byte("same-a"), []byte("same-b")}
	outs, errs := proposeAll(t, peers, 1, [][][]byte{input, input, input})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := range outs {
		if !sameVectors(outs[i], input) {
			t.Fatalf("peer %d: fast path changed the unanimous vector", i)
		}
	}
	for i, p := range peers {
		if _, err := p.Receive(canceledCtx(), wire.Tag{
			Round: 1, Block: wire.BlockBidAgree, Instance: 0, Step: stepVector,
		}, ids[(i+1)%len(ids)]); err == nil {
			t.Fatalf("peer %d buffered a stepVector message on the fast path", i)
		}
	}

	// Disputed round: the fallback must have exchanged vectors.
	disputed := [][][]byte{
		{[]byte("x")}, {[]byte("x")}, {[]byte("y")},
	}
	outs, errs = proposeAll(t, peers, 2, disputed)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if !sameVectors(outs[i], outs[0]) {
			t.Fatal("fallback outputs disagree")
		}
	}
	for i, p := range peers {
		if _, err := p.Receive(canceledCtx(), wire.Tag{
			Round: 2, Block: wire.BlockBidAgree, Instance: 0, Step: stepVector,
		}, ids[(i+1)%len(ids)]); err != nil {
			t.Fatalf("peer %d: no stepVector message buffered on the fallback path: %v", i, err)
		}
	}
}

// canceledCtx returns an already-expired context: Receive with it reports a
// buffered message instantly or fails without blocking.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestFallbackVectorCorruptionAborts forces the digest-mismatch fallback
// (disputed inputs) while one provider corrupts its full-vector message. The
// corrupted vector cannot open the committed digest, so honest providers
// must abort with the deviant attributed.
func TestFallbackVectorCorruptionAborts(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := []wire.NodeID{1, 2, 3}
	peers := make([]*proto.Peer, len(ids))
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		var c transport.Conn = conn
		if id == 3 {
			c = deviation.Wrap(conn, deviation.Rule{
				Match:     deviation.MatchBlockStep(wire.BlockBidAgree, stepVector),
				Action:    deviation.Mutate,
				Transform: deviation.FlipPayloadByte(),
			})
		}
		peers[i] = proto.NewPeer(c, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}

	inputs := [][][]byte{
		{[]byte("x")}, {[]byte("x")}, {[]byte("z")}, // dispute forces the fallback
	}
	_, errs := proposeAll(t, peers, 1, inputs)
	for i := 0; i < 2; i++ {
		if !errors.Is(errs[i], proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, errs[i])
		}
	}
	// The corrupted vector names provider 3 in the abort reason (audit
	// attribution).
	var ae *proto.AbortError
	if errors.As(errs[0], &ae) {
		if !strings.Contains(ae.Reason, "provider 3") {
			t.Errorf("abort reason %q does not attribute provider 3", ae.Reason)
		}
	}
}

func TestProposalRoundTrip(t *testing.T) {
	for _, p := range []proposal{
		{share: 0, values: nil},
		{share: 42, values: [][]byte{[]byte("a"), nil, []byte("ccc")}},
	} {
		got, err := decodeProposal(encodeProposal(p))
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if got.share != p.share || len(got.values) != len(p.values) {
			t.Errorf("round trip mismatch: %+v vs %+v", got, p)
		}
		for i := range p.values {
			if !bytes.Equal(got.values[i], p.values[i]) {
				t.Errorf("slot %d mismatch", i)
			}
		}
	}
}

func TestDecodeProposalGarbage(t *testing.T) {
	cases := [][]byte{nil, {1}, bytes.Repeat([]byte{0xFF}, 40)}
	for _, c := range cases {
		if _, err := decodeProposal(c); err == nil {
			t.Errorf("garbage %v decoded", c)
		}
	}
	// Slot-count bomb: header claims 2^30 slots.
	enc := wire.NewEncoder(32)
	enc.Uint64(1)
	enc.Uvarint(1 << 30)
	if _, err := decodeProposal(enc.Buffer()); err == nil {
		t.Error("slot bomb decoded")
	}
}

func TestManySlots(t *testing.T) {
	peers := newPeers(t, 3)
	const slots = 500
	input := make([][]byte, slots)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("bid-%d", i))
	}
	inputs := [][][]byte{input, input, input}
	outs, errs := proposeAll(t, peers, 1, inputs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	if !sameVectors(outs[0], input) || !sameVectors(outs[1], input) {
		t.Error("large unanimous vector mangled")
	}
}

// Property: for arbitrary disputed proposals, all honest providers output
// the same vector and every slot is one of the proposals for that slot.
func TestQuickAgreementProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up many clusters")
	}
	peers := newPeers(t, 3)
	for round := uint64(1); round <= 15; round++ {
		inputs := make([][][]byte, 3)
		slots := 1 + int(round%4)
		for pi := range inputs {
			inputs[pi] = make([][]byte, slots)
			for s := range inputs[pi] {
				// Providers 0 and 1 agree; provider 2 disputes odd slots.
				val := fmt.Sprintf("v%d", s)
				if pi == 2 && s%2 == 1 {
					val = fmt.Sprintf("w%d", s)
				}
				inputs[pi][s] = []byte(val)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		outs := make([][][]byte, 3)
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *proto.Peer) {
				defer wg.Done()
				outs[i], errs[i] = Propose(ctx, p, round, 0, inputs[i])
			}(i, p)
		}
		wg.Wait()
		cancel()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d peer %d: %v", round, i, err)
			}
		}
		for i := 1; i < 3; i++ {
			if !sameVectors(outs[i], outs[0]) {
				t.Fatalf("round %d: disagreement", round)
			}
		}
		for s := 0; s < slots; s++ {
			got := string(outs[0][s])
			want1 := fmt.Sprintf("v%d", s)
			want2 := fmt.Sprintf("w%d", s)
			if got != want1 && got != want2 {
				t.Fatalf("round %d slot %d: %q is nobody's proposal", round, s, got)
			}
		}
		for _, p := range peers {
			p.EndRound(round)
		}
	}
}
