// Package consensus implements the rational-consensus building block used by
// bid agreement (§4.1 of the paper, after Afek, Ginzberg, Landau Feibish and
// Sulamy, PODC 2014).
//
// The paper runs one binary consensus instance per bit of every bidder's bid
// stream, multiplexing instances by tagging messages with the bidder
// identifier and bit position. This implementation batches that whole
// ensemble into one *vector* consensus: each provider proposes the full
// vector of per-bidder values in a single commit, and a jointly-elected
// random leader decides each slot. The message complexity drops from
// O(bits·m²) to O(m²) per auction round while preserving the construction's
// two properties:
//
//  1. If all providers follow the protocol, they output a common vector in
//     which every slot equals some provider's proposal for that slot; if all
//     proposals for a slot agree, the output is that value (validity).
//  2. The per-slot leader is uniform and fixed before any proposal is
//     revealed (commit → echo → reveal, as in the common coin), so with
//     m > 2k a coalition can neither dictate a disputed slot nor learn
//     anything useful before committing — it can only force ⊥.
//
// The leader election is the ADH13 scheme: every provider commits to a
// random 64-bit share alongside its proposal; the sum of shares seeds a
// deterministic PRNG that picks an independent leader per slot.
//
// # Digest fast path
//
// Providers do not commit to the proposal vector itself but to its SHA-256
// digest (plus the leader-election share). The commit → echo → reveal
// exchange therefore moves O(m²) fixed-size messages regardless of the
// vector size. After the reveal every provider holds every peer's digest:
// when all digests match its own — the common case, since honest providers
// enter bid agreement with identical bid vectors — the vectors are
// byte-identical by collision resistance, every slot is unanimous, and the
// local input IS the decided output; no vector ever crosses the network.
// Only when digests disagree do providers fall back to a full vector
// exchange (one extra step), verified slot-for-slot against the committed
// digests before the per-slot leaders decide. See DESIGN.md for the
// equivalence argument.
package consensus

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"distauction/internal/commit"
	"distauction/internal/prng"
	"distauction/internal/proto"
	"distauction/internal/trace"
	"distauction/internal/wire"
)

// Protocol steps within a consensus instance.
const (
	stepCommit uint8 = 1
	stepEcho   uint8 = 2
	stepReveal uint8 = 3
	// stepVector is the digest-mismatch fallback: the full proposal vectors
	// are exchanged and checked against the committed digests. The step is
	// absent from honest unanimous rounds.
	stepVector uint8 = 4
)

// MaxSlots bounds the proposal vector length (defence against hostile
// allocations; real auctions have at most a few thousand bidders).
const MaxSlots = 1 << 20

func domain(round uint64, instance uint32) string {
	return fmt.Sprintf("consensus/%d/%d", round, instance)
}

// proposal is a provider's full input: the leader-election share plus the
// per-slot vector. Its encoding crosses the network only on the fallback
// path; the commitment covers digestProposal instead.
type proposal struct {
	share  uint64
	values [][]byte
}

// digestProposal is the committed value of the fast path: the share plus the
// SHA-256 digest of the encoded proposal vector. Fixed 40-byte encoding.
type digestProposal struct {
	share  uint64
	digest [sha256.Size]byte
}

const digestProposalSize = 8 + sha256.Size

// scratch is one Propose call's working set — gather buffer, parsed
// commitments and digests, salt and commit-value bytes — recycled across
// calls. The gather buffer holds views into the round's buffered payloads
// and is cleared before pooling; everything else is pointer-free.
type scratch struct {
	gather  [][]byte
	commits []commit.Commitment
	digests []digestProposal
	salt    [commit.SaltSize]byte
	dp      [digestProposalSize]byte
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func putScratch(sc *scratch) {
	clear(sc.gather) // unpin the round's payload views
	sc.gather = sc.gather[:0]
	scratchPool.Put(sc)
}

func encodeDigestProposal(p digestProposal) []byte {
	out := make([]byte, digestProposalSize)
	binary.BigEndian.PutUint64(out, p.share)
	copy(out[8:], p.digest[:])
	return out
}

func decodeDigestProposal(b []byte) (digestProposal, error) {
	if len(b) != digestProposalSize {
		return digestProposal{}, fmt.Errorf("digest proposal: %d bytes, want %d", len(b), digestProposalSize)
	}
	var p digestProposal
	p.share = binary.BigEndian.Uint64(b)
	copy(p.digest[:], b[8:])
	return p, nil
}

// vectorDigest hashes a proposal vector: slot count, then each slot
// length-prefixed — the same canonical shape encodeProposal uses, so equal
// digests imply byte-identical vectors (slot counts included).
func vectorDigest(values [][]byte) [sha256.Size]byte {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(values)))
	h.Write(buf[:n])
	for _, v := range values {
		n = binary.PutUvarint(buf[:], uint64(len(v)))
		h.Write(buf[:n])
		h.Write(v)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func encodeProposal(p proposal) []byte {
	size := 16
	for _, v := range p.values {
		size += len(v) + 4
	}
	enc := wire.NewEncoder(size)
	enc.Uint64(p.share)
	enc.Uvarint(uint64(len(p.values)))
	for _, v := range p.values {
		enc.Bytes(v)
	}
	return enc.Buffer()
}

func decodeProposal(b []byte) (proposal, error) {
	d := wire.NewDecoder(b)
	var p proposal
	p.share = d.Uint64()
	n := d.Uvarint()
	if d.Err() == nil && n > MaxSlots {
		return proposal{}, fmt.Errorf("consensus: %d slots exceeds limit", n)
	}
	if d.Err() == nil && n > uint64(d.Remaining()) {
		return proposal{}, wire.ErrTruncated
	}
	// One arena for all slots: the views point into b, which the proto layer
	// may reclaim at EndRound, so the values are copied out — but as a single
	// flat allocation instead of one alloc+copy per slot.
	p.values = make([][]byte, n)
	arena := make([]byte, 0, d.Remaining())
	for i := range p.values {
		v := d.BytesView()
		if d.Err() != nil {
			break
		}
		off := len(arena)
		arena = append(arena, v...)
		p.values[i] = arena[off:len(arena):len(arena)]
	}
	if err := d.Finish(); err != nil {
		return proposal{}, fmt.Errorf("decode proposal: %w", err)
	}
	return p, nil
}

// Propose runs one vector consensus among all providers of peer. inputs is
// the local proposal: one value per slot; slot counts must match across
// providers (bid agreement guarantees this by construction — one slot per
// registered bidder).
//
// On success every honest provider returns the same output vector, where
// each slot is the proposal of the slot's leader. When all providers propose
// identical vectors the returned slices alias inputs (the protocol treats
// decided vectors as immutable). On any deviation or timeout the round is
// aborted (⊥).
func Propose(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, inputs [][]byte) ([][]byte, error) {
	return ProposeObserved(ctx, peer, round, instance, inputs, nil)
}

// ProposeObserved is Propose with a binding observer: onBound, when
// non-nil, is called exactly once if and when the echo phase verifies —
// the moment every provider's proposal digest and leader share are
// committed and the commitment set is known consistent. From that point the
// consensus outcome is a fixed (if not yet known) function of the committed
// values: a reveal can only open its commitment or abort the round, never
// steer the decision. Callers use the hook to release work that must not
// influence the agreement but may safely overlap its reveal phase — the
// round engine opens the common coin's reveal gate here, taking the coin's
// last network phase off the round's critical path.
func ProposeObserved(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, inputs [][]byte, onBound func()) ([][]byte, error) {
	if err := peer.AbortErr(round); err != nil {
		return nil, err
	}
	if len(inputs) > MaxSlots {
		return nil, fmt.Errorf("consensus: %d slots exceeds limit", len(inputs))
	}
	providers := peer.Providers()
	dom := domain(round, instance)
	sc := scratchPool.Get().(*scratch)
	defer putScratch(sc)

	if _, err := rand.Read(sc.salt[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: entropy: %v", err))
	}
	var shareBytes [8]byte
	if _, err := rand.Read(shareBytes[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: entropy: %v", err))
	}
	local := digestProposal{share: binary.BigEndian.Uint64(shareBytes[:]), digest: vectorDigest(inputs)}
	binary.BigEndian.PutUint64(sc.dp[:], local.share)
	copy(sc.dp[8:], local.digest[:])
	// The opening's salt and value alias the scratch; both are consumed —
	// hashed, then copied by EncodeOpening — before this call returns.
	com, op := commit.NewWithSalt(dom, peer.Self(), sc.salt[:], sc.dp[:])

	// Phase 1: commit.
	span := trace.Begin()
	commitTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepCommit}
	if err := peer.BroadcastProviders(commitTag, com[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast commit: %v", err))
	}
	commitPayloads, err := peer.GatherAppend(ctx, commitTag, providers, sc.gather[:0])
	sc.gather = commitPayloads
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather commits", err)
	}
	trace.Span(span, trace.PhaseAgreeCommit, round, peer.Lane(), peer.Self(), trace.NoPeer, int32(instance))
	if cap(sc.commits) < len(providers) {
		sc.commits = make([]commit.Commitment, len(providers))
	}
	commits := sc.commits[:len(providers)]
	for i, payload := range commitPayloads {
		if len(payload) != commit.Size {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d sent malformed commitment", providers[i]))
		}
		copy(commits[i][:], payload)
	}

	// Phase 2: echo the commitment set so equivocated commitments abort the
	// round while all proposals are still hidden.
	span = trace.Begin()
	echo := commitSetDigestOrdered(providers, commits)
	echoTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepEcho}
	if err := peer.BroadcastProviders(echoTag, echo[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast echo: %v", err))
	}
	echoes, err := peer.GatherAppend(ctx, echoTag, providers, sc.gather[:0])
	sc.gather = echoes
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather echoes", err)
	}
	for i, payload := range echoes {
		if !bytes.Equal(payload, echo[:]) {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: commitment set mismatch with provider %d", providers[i]))
		}
	}
	trace.Span(span, trace.PhaseAgreeEcho, round, peer.Lane(), peer.Self(), trace.NoPeer, int32(instance))
	if onBound != nil {
		onBound()
	}

	// Phase 3: reveal shares and vector digests. The commitments are now
	// immutable everywhere (echo), so opening them fixes the leader seed and
	// binds every provider to one vector before any vector is sent.
	span = trace.Begin()
	revealTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepReveal}
	if err := peer.BroadcastProviders(revealTag, commit.EncodeOpening(op)); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast reveal: %v", err))
	}
	reveals, err := peer.GatherAppend(ctx, revealTag, providers, sc.gather[:0])
	sc.gather = reveals
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather reveals", err)
	}

	if cap(sc.digests) < len(providers) {
		sc.digests = make([]digestProposal, len(providers))
	}
	digests := sc.digests[:len(providers)]
	var seed uint64
	unanimous := true
	for i, id := range providers {
		// View decode: the opening is verified and its 40-byte value parsed
		// into digests right here; nothing aliases the payload afterwards.
		opening, err := commit.DecodeOpeningView(reveals[i])
		if err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d sent malformed opening", id))
		}
		if err := commit.Verify(dom, id, commits[i], opening); err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d mis-opened its commitment", id))
		}
		dp, err := decodeDigestProposal(opening.Value)
		if err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d: %v", id, err))
		}
		digests[i] = dp
		seed += dp.share
		if dp.digest != local.digest {
			unanimous = false
		}
	}
	trace.Span(span, trace.PhaseAgreeReveal, round, peer.Lane(), peer.Self(), trace.NoPeer, int32(instance))

	// Fast path: every digest equals the local one, so by collision
	// resistance every provider proposed this exact vector — every slot is
	// unanimous and the leader draw cannot change the outcome. All providers
	// see the same digest set (the commitments they open were cross-checked
	// in the echo), so they take or skip this branch together.
	if unanimous {
		return inputs, nil
	}

	// Fallback: digests disagree — at least one slot is disputed (or a
	// provider deviated). Exchange the full vectors, bind each to its
	// committed digest, and let the per-slot leaders decide.
	span = trace.Begin()
	vectorTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepVector}
	full := encodeProposal(proposal{share: local.share, values: inputs})
	if err := peer.BroadcastProviders(vectorTag, full); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast vector: %v", err))
	}
	vectors, err := peer.GatherAppend(ctx, vectorTag, providers, sc.gather[:0])
	sc.gather = vectors
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather vectors", err)
	}

	proposals := make([]proposal, len(providers))
	for i, id := range providers {
		prop, err := decodeProposal(vectors[i])
		if err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d: %v", id, err))
		}
		if prop.share != digests[i].share {
			return nil, peer.FailRound(round, fmt.Sprintf(
				"consensus: provider %d revealed share %d but sent vector for share %d", id, digests[i].share, prop.share))
		}
		if vectorDigest(prop.values) != digests[i].digest {
			return nil, peer.FailRound(round, fmt.Sprintf(
				"consensus: provider %d sent a vector that does not open its committed digest", id))
		}
		if len(prop.values) != len(inputs) {
			return nil, peer.FailRound(round, fmt.Sprintf(
				"consensus: provider %d proposed %d slots, expected %d", id, len(prop.values), len(inputs)))
		}
		proposals[i] = prop
	}
	trace.Span(span, trace.PhaseAgreeVector, round, peer.Lane(), peer.Self(), trace.NoPeer, int32(instance))

	// Decide every slot by its leader.
	base := prng.New(seed)
	out := make([][]byte, len(inputs))
	for i := range out {
		leader := base.Fork(uint64(i)).Intn(len(providers))
		out[i] = proposals[leader].values[i]
	}
	return out, nil
}

func failUnlessAborted(peer *proto.Peer, round uint64, op string, err error) error {
	if abortErr := peer.AbortErr(round); abortErr != nil {
		return abortErr
	}
	// FailCause keeps the error's typed classification: a dead peer's
	// receive timeout aborts as disconnect with the crashed peer attributed
	// as culprit, not as an anonymous timeout.
	return peer.FailCause(round, op, err)
}

// commitSetDigestOrdered hashes the (id, commitment) pairs with commits
// aligned to providers' order.
func commitSetDigestOrdered(providers []wire.NodeID, commits []commit.Commitment) [sha256.Size]byte {
	h := sha256.New()
	var idBuf [4]byte
	for i, id := range providers {
		binary.BigEndian.PutUint32(idBuf[:], uint32(id))
		h.Write(idBuf[:])
		h.Write(commits[i][:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// commitSetDigest is the map-keyed form of commitSetDigestOrdered (deviation
// scripts and tests hold commitments keyed by node).
func commitSetDigest(providers []wire.NodeID, commits map[wire.NodeID]commit.Commitment) [sha256.Size]byte {
	ordered := make([]commit.Commitment, len(providers))
	for i, id := range providers {
		ordered[i] = commits[id]
	}
	return commitSetDigestOrdered(providers, ordered)
}
