// Package consensus implements the rational-consensus building block used by
// bid agreement (§4.1 of the paper, after Afek, Ginzberg, Landau Feibish and
// Sulamy, PODC 2014).
//
// The paper runs one binary consensus instance per bit of every bidder's bid
// stream, multiplexing instances by tagging messages with the bidder
// identifier and bit position. This implementation batches that whole
// ensemble into one *vector* consensus: each provider proposes the full
// vector of per-bidder values in a single commit, and a jointly-elected
// random leader decides each slot. The message complexity drops from
// O(bits·m²) to O(m²) per auction round while preserving the construction's
// two properties:
//
//  1. If all providers follow the protocol, they output a common vector in
//     which every slot equals some provider's proposal for that slot; if all
//     proposals for a slot agree, the output is that value (validity).
//  2. The per-slot leader is uniform and fixed before any proposal is
//     revealed (commit → echo → reveal, as in the common coin), so with
//     m > 2k a coalition can neither dictate a disputed slot nor learn
//     anything useful before committing — it can only force ⊥.
//
// The leader election is the ADH13 scheme: every provider commits to a
// random 64-bit share alongside its proposal; the sum of shares seeds a
// deterministic PRNG that picks an independent leader per slot.
package consensus

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"distauction/internal/commit"
	"distauction/internal/prng"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// Protocol steps within a consensus instance.
const (
	stepCommit uint8 = 1
	stepEcho   uint8 = 2
	stepReveal uint8 = 3
)

// MaxSlots bounds the proposal vector length (defence against hostile
// allocations; real auctions have at most a few thousand bidders).
const MaxSlots = 1 << 20

func domain(round uint64, instance uint32) string {
	return fmt.Sprintf("consensus/%d/%d", round, instance)
}

// proposal is the committed value: the leader-election share plus the full
// per-slot vector.
type proposal struct {
	share  uint64
	values [][]byte
}

func encodeProposal(p proposal) []byte {
	size := 16
	for _, v := range p.values {
		size += len(v) + 4
	}
	enc := wire.NewEncoder(size)
	enc.Uint64(p.share)
	enc.Uvarint(uint64(len(p.values)))
	for _, v := range p.values {
		enc.Bytes(v)
	}
	return enc.Buffer()
}

func decodeProposal(b []byte) (proposal, error) {
	d := wire.NewDecoder(b)
	var p proposal
	p.share = d.Uint64()
	n := d.Uvarint()
	if d.Err() == nil && n > MaxSlots {
		return proposal{}, fmt.Errorf("consensus: %d slots exceeds limit", n)
	}
	if d.Err() == nil && n > uint64(d.Remaining()) {
		return proposal{}, wire.ErrTruncated
	}
	p.values = make([][]byte, n)
	for i := range p.values {
		p.values[i] = d.Bytes()
	}
	if err := d.Finish(); err != nil {
		return proposal{}, fmt.Errorf("decode proposal: %w", err)
	}
	return p, nil
}

// Propose runs one vector consensus among all providers of peer. inputs is
// the local proposal: one value per slot; slot counts must match across
// providers (bid agreement guarantees this by construction — one slot per
// registered bidder).
//
// On success every honest provider returns the same output vector, where
// each slot is the proposal of the slot's leader. On any deviation or
// timeout the round is aborted (⊥).
func Propose(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, inputs [][]byte) ([][]byte, error) {
	if err := peer.AbortErr(round); err != nil {
		return nil, err
	}
	if len(inputs) > MaxSlots {
		return nil, fmt.Errorf("consensus: %d slots exceeds limit", len(inputs))
	}
	providers := peer.Providers()
	dom := domain(round, instance)

	var shareBytes [8]byte
	if _, err := rand.Read(shareBytes[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: entropy: %v", err))
	}
	local := proposal{share: binary.BigEndian.Uint64(shareBytes[:]), values: inputs}
	encoded := encodeProposal(local)
	com, op, err := commit.New(dom, peer.Self(), encoded)
	if err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: commit: %v", err))
	}

	// Phase 1: commit.
	commitTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepCommit}
	if err := peer.BroadcastProviders(commitTag, com[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast commit: %v", err))
	}
	commitPayloads, err := peer.GatherProviders(ctx, commitTag)
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather commits", err)
	}
	commits := make(map[wire.NodeID]commit.Commitment, len(commitPayloads))
	for id, payload := range commitPayloads {
		if len(payload) != commit.Size {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d sent malformed commitment", id))
		}
		var c commit.Commitment
		copy(c[:], payload)
		commits[id] = c
	}

	// Phase 2: echo the commitment set so equivocated commitments abort the
	// round while all proposals are still hidden.
	echo := commitSetDigest(providers, commits)
	echoTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepEcho}
	if err := peer.BroadcastProviders(echoTag, echo[:]); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast echo: %v", err))
	}
	echoes, err := peer.GatherProviders(ctx, echoTag)
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather echoes", err)
	}
	for id, payload := range echoes {
		if !bytes.Equal(payload, echo[:]) {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: commitment set mismatch with provider %d", id))
		}
	}

	// Phase 3: reveal.
	revealTag := wire.Tag{Round: round, Block: wire.BlockBidAgree, Instance: instance, Step: stepReveal}
	if err := peer.BroadcastProviders(revealTag, commit.EncodeOpening(op)); err != nil {
		return nil, peer.FailRound(round, fmt.Sprintf("consensus: broadcast reveal: %v", err))
	}
	reveals, err := peer.GatherProviders(ctx, revealTag)
	if err != nil {
		return nil, failUnlessAborted(peer, round, "consensus: gather reveals", err)
	}

	proposals := make(map[wire.NodeID]proposal, len(providers))
	var seed uint64
	for _, id := range providers {
		opening, err := commit.DecodeOpening(reveals[id])
		if err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d sent malformed opening", id))
		}
		if err := commit.Verify(dom, id, commits[id], opening); err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d mis-opened its commitment", id))
		}
		prop, err := decodeProposal(opening.Value)
		if err != nil {
			return nil, peer.FailRound(round, fmt.Sprintf("consensus: provider %d: %v", id, err))
		}
		if len(prop.values) != len(inputs) {
			return nil, peer.FailRound(round, fmt.Sprintf(
				"consensus: provider %d proposed %d slots, expected %d", id, len(prop.values), len(inputs)))
		}
		proposals[id] = prop
		seed += prop.share
	}

	// Decide every slot by its leader.
	base := prng.New(seed)
	out := make([][]byte, len(inputs))
	for i := range out {
		leader := providers[base.Fork(uint64(i)).Intn(len(providers))]
		out[i] = proposals[leader].values[i]
	}
	return out, nil
}

func failUnlessAborted(peer *proto.Peer, round uint64, op string, err error) error {
	if abortErr := peer.AbortErr(round); abortErr != nil {
		return abortErr
	}
	return peer.FailRound(round, fmt.Sprintf("%s: %v", op, err))
}

func commitSetDigest(providers []wire.NodeID, commits map[wire.NodeID]commit.Commitment) [sha256.Size]byte {
	h := sha256.New()
	var idBuf [4]byte
	for _, id := range providers {
		binary.BigEndian.PutUint32(idBuf[:], uint32(id))
		h.Write(idBuf[:])
		c := commits[id]
		h.Write(c[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
