package coin

import (
	"context"
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distauction/internal/commit"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

func newPeers(t *testing.T, n int) []*proto.Peer {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	peers := make([]*proto.Peer, n)
	for i, id := range ids {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = proto.NewPeer(conn, ids)
		t.Cleanup(func(p *proto.Peer) func() { return func() { p.Close() } }(peers[i]))
	}
	return peers
}

// tossAll runs Toss concurrently at every peer and returns per-peer results.
func tossAll(t *testing.T, peers []*proto.Peer, round uint64, instance uint32) ([]uint64, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	seeds := make([]uint64, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *proto.Peer) {
			defer wg.Done()
			seeds[i], errs[i] = Toss(ctx, p, round, instance)
		}(i, p)
	}
	wg.Wait()
	return seeds, errs
}

func TestHonestTossAgrees(t *testing.T) {
	peers := newPeers(t, 4)
	seeds, errs := tossAll(t, peers, 1, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := 1; i < len(seeds); i++ {
		if seeds[i] != seeds[0] {
			t.Fatalf("seeds disagree: %v", seeds)
		}
	}
}

func TestInstancesIndependent(t *testing.T) {
	peers := newPeers(t, 3)
	s1, errs := tossAll(t, peers, 1, 0)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	s2, errs := tossAll(t, peers, 1, 1)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s1[0] == s2[0] {
		t.Error("two instances produced the same seed; not impossible but vanishingly unlikely")
	}
}

func TestSeedsLookUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	peers := newPeers(t, 3)
	const rounds = 64
	ones := 0
	for r := uint64(1); r <= rounds; r++ {
		seeds, errs := tossAll(t, peers, r, 0)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		ones += bits.OnesCount64(seeds[0])
	}
	// 64 seeds × 64 bits: expect ≈2048 ones; allow a wide ±6σ band
	// (σ = sqrt(4096×0.25) = 32).
	if ones < 2048-200 || ones > 2048+200 {
		t.Errorf("bit count %d outside plausible band around 2048", ones)
	}
}

// deviantReveal commits to one share but opens a different one.
func TestTamperedRevealAborts(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const round, instance = 1, 0

	// Peers 0 and 1 run the honest protocol.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Toss(ctx, peers[i], round, instance)
		}(i)
	}

	// Peer 2 deviates: commits to shareA, reveals shareB.
	devi := peers[2]
	dom := domain(round, instance)
	shareA := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	shareB := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	com, opA, err := commit.New(dom, devi.Self(), shareA)
	if err != nil {
		t.Fatal(err)
	}
	commitTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepCommit}
	if err := devi.BroadcastProviders(commitTag, com[:]); err != nil {
		t.Fatal(err)
	}
	// Participate honestly in the echo phase.
	commitPayloads, err := devi.GatherProviders(ctx, commitTag)
	if err != nil {
		t.Fatal(err)
	}
	commits := make(map[wire.NodeID]commit.Commitment)
	for id, p := range commitPayloads {
		var c commit.Commitment
		copy(c[:], p)
		commits[id] = c
	}
	echo := commitSetDigest(devi.Providers(), commits)
	echoTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepEcho}
	if err := devi.BroadcastProviders(echoTag, echo[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := devi.GatherProviders(ctx, echoTag); err != nil {
		t.Fatal(err)
	}
	// Reveal the wrong share (keep opA's salt so only the value lies).
	lie := commit.Opening{Salt: opA.Salt, Value: shareB}
	revealTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepReveal}
	if err := devi.BroadcastProviders(revealTag, commit.EncodeOpening(lie)); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, err)
		}
	}
}

// A provider that equivocates its commitment across receivers must be caught
// by the echo phase, i.e. the round aborts with all shares still hidden.
func TestEquivocatedCommitAborts(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const round, instance = 1, 0

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Toss(ctx, peers[i], round, instance)
		}(i)
	}

	devi := peers[2]
	dom := domain(round, instance)
	comA, _, err := commit.New(dom, devi.Self(), []byte{1, 1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	comB, _, err := commit.New(dom, devi.Self(), []byte{2, 2, 2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	commitTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepCommit}
	if err := devi.Send(1, commitTag, comA[:]); err != nil {
		t.Fatal(err)
	}
	if err := devi.Send(2, commitTag, comB[:]); err != nil {
		t.Fatal(err)
	}
	// The deviant does not need to continue: honest echoes will disagree.
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("honest peer %d: got %v, want abort", i, err)
		}
	}
}

// A silent provider stalls the coin; the deadline converts that into ⊥ for
// everyone rather than a hang.
func TestSilentProviderAborts(t *testing.T) {
	peers := newPeers(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Toss(ctx, peers[i], 1, 0)
		}(i)
	}
	wg.Wait()
	// peers[2] never participated.
	for i, err := range errs {
		if err == nil {
			t.Errorf("honest peer %d: expected failure", i)
		}
	}
	// After the first timeout the round is ⊥ everywhere.
	if err := peers[0].AbortErr(1); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("round not aborted after silence: %v", err)
	}
}

func TestMalformedCommitAborts(t *testing.T) {
	peers := newPeers(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var honestErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, honestErr = Toss(ctx, peers[0], 1, 0)
	}()

	commitTag := wire.Tag{Round: 1, Block: wire.BlockCoin, Instance: 0, Step: stepCommit}
	if err := peers[1].BroadcastProviders(commitTag, []byte("short")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !errors.Is(honestErr, proto.ErrAborted) {
		t.Errorf("got %v, want abort", honestErr)
	}
}

func TestTossOnAbortedRound(t *testing.T) {
	peers := newPeers(t, 2)
	if err := peers[0].Abort(5, "pre-aborted"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := Toss(ctx, peers[0], 5, 0); !errors.Is(err, proto.ErrAborted) {
		t.Errorf("got %v, want abort", err)
	}
}

// reservoirAll creates one reservoir per peer for round.
func reservoirAll(peers []*proto.Peer, round uint64, gated bool) []*Reservoir {
	rs := make([]*Reservoir, len(peers))
	for i, p := range peers {
		rs[i] = NewReservoir(p, round, gated)
	}
	return rs
}

// Prefetched instances must resolve concurrently and agree across peers.
func TestReservoirPrefetchAgrees(t *testing.T) {
	peers := newPeers(t, 4)
	rs := reservoirAll(peers, 1, false)
	instances := []uint32{1 << 8, 1<<8 | 1, 2 << 8}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	seeds := make([][]uint64, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r *Reservoir) {
			defer wg.Done()
			defer r.Close()
			r.Prefetch(ctx, instances...)
			for _, inst := range instances {
				seed, err := r.Seed(ctx, inst)
				if err != nil {
					errs[i] = err
					return
				}
				seeds[i] = append(seeds[i], seed)
			}
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := 1; i < len(seeds); i++ {
		for j := range instances {
			if seeds[i][j] != seeds[0][j] {
				t.Fatalf("instance %d: peer %d disagrees", instances[j], i)
			}
		}
	}
	if seeds[0][0] == seeds[0][1] && seeds[0][1] == seeds[0][2] {
		t.Error("three instances yielded the same seed; astronomically unlikely")
	}
}

// A gated reservoir must not let any seed resolve before every peer
// releases — the reveal is withheld, not just delayed.
func TestReservoirGatedWithholdsReveal(t *testing.T) {
	peers := newPeers(t, 3)
	rs := reservoirAll(peers, 1, true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var resolved atomic.Int32
	seeds := make([]uint64, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, r := range rs {
		r.Prefetch(ctx, 7)
		wg.Add(1)
		go func(i int, r *Reservoir) {
			defer wg.Done()
			seeds[i], errs[i] = r.Seed(ctx, 7)
			resolved.Add(1)
		}(i, r)
	}

	time.Sleep(200 * time.Millisecond) // commit+echo done; reveals gated
	if n := resolved.Load(); n != 0 {
		t.Fatalf("%d seeds resolved before release", n)
	}
	for _, r := range rs {
		r.Release()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if seeds[i] != seeds[0] {
			t.Fatalf("peer %d disagrees", i)
		}
	}
	for _, r := range rs {
		r.Close()
	}
}

// Prefetching an instance twice (or racing Prefetch with Seed) must toss it
// once: a second toss would re-draw the share under the same tag, which the
// peers would flag as equivocation and abort.
func TestReservoirDedupesInstances(t *testing.T) {
	peers := newPeers(t, 3)
	rs := reservoirAll(peers, 1, false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r *Reservoir) {
			defer wg.Done()
			defer r.Close()
			r.Prefetch(ctx, 3, 3)
			r.Prefetch(ctx, 3)
			if _, err := r.Seed(ctx, 3); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = r.Seed(ctx, 3)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v (duplicate toss → equivocation?)", i, err)
		}
	}
}

// Tosses parked at a gated reveal must unwind when the round aborts and the
// engine closes the reservoir (its abort path), returning ⊥.
func TestReservoirAbortUnwindsGatedToss(t *testing.T) {
	peers := newPeers(t, 3)
	rs := reservoirAll(peers, 1, true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, r := range rs {
		r.Prefetch(ctx, 9)
	}
	time.Sleep(100 * time.Millisecond) // let commit/echo complete

	if err := peers[0].Abort(1, "test abort"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(peers))
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r *Reservoir) {
			defer wg.Done()
			r.Close() // abort path: open the gate, join the toss
			_, errs[i] = r.Seed(ctx, 9)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("peer %d: got %v, want ⊥", i, err)
		}
	}
}
