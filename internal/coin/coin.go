// Package coin implements the common coin building block (§4.2 of the
// paper, Property 4), after the commit-reveal scheme of Abraham, Dolev and
// Halpern (DISC 2013).
//
// Every provider commits to a random 64-bit share, providers cross-check
// that everyone saw the same commitment set (echo), and only then reveal.
// The coin value is the sum of all shares mod 2^64: uniform as long as at
// least one provider outside the coalition draws its share at random, and
// fixed before any reveal, so a coalition of fewer than all providers cannot
// bias it — it can only force ⊥ by refusing to reveal or by mis-opening,
// which is exactly the resilience the paper requires (a coalition may only
// increase the probability of ⊥, never shift the distribution over non-⊥
// outcomes).
//
// The paper samples the coin in [0,1] and transforms it to an arbitrary
// distribution Π. Here the coin yields a 64-bit seed; callers build a
// deterministic prng.SplitMix64 from it and apply whatever transform Π they
// need — the same trick, engineered so one toss can fuel many draws.
package coin

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"distauction/internal/commit"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// Protocol steps within a coin instance.
const (
	stepCommit uint8 = 1
	stepEcho   uint8 = 2
	stepReveal uint8 = 3
)

// shareSize is the committed share size in bytes (a uint64).
const shareSize = 8

func domain(round uint64, instance uint32) string {
	return fmt.Sprintf("coin/%d/%d", round, instance)
}

// Toss runs one common-coin instance among all providers of peer and
// returns the agreed 64-bit seed. On any deviation or timeout it aborts the
// round (⊥) and returns an error matching proto.ErrAborted.
func Toss(ctx context.Context, peer *proto.Peer, round uint64, instance uint32) (uint64, error) {
	return toss(ctx, peer, round, instance, nil)
}

// toss is Toss with a reveal gate: when release is non-nil, the local reveal
// is withheld until release closes (or ctx expires). The commit and echo
// phases hide every share, so they may run arbitrarily early; it is the
// reveal that fixes when the seed becomes knowable, and the Reservoir uses
// the gate to keep that moment after bid agreement while still overlapping
// the first two phases with it.
func toss(ctx context.Context, peer *proto.Peer, round uint64, instance uint32, release <-chan struct{}) (uint64, error) {
	if err := peer.AbortErr(round); err != nil {
		return 0, err
	}
	providers := peer.Providers()
	dom := domain(round, instance)

	// Draw and commit the local share.
	var share [shareSize]byte
	if _, err := rand.Read(share[:]); err != nil {
		return 0, peer.FailRound(round, fmt.Sprintf("coin: entropy: %v", err))
	}
	com, op, err := commit.New(dom, peer.Self(), share[:])
	if err != nil {
		return 0, peer.FailRound(round, fmt.Sprintf("coin: commit: %v", err))
	}

	commitTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepCommit}
	if err := peer.BroadcastProviders(commitTag, com[:]); err != nil {
		return 0, peer.FailRound(round, fmt.Sprintf("coin: broadcast commit: %v", err))
	}
	commitPayloads, err := peer.GatherProviders(ctx, commitTag)
	if err != nil {
		return 0, failUnlessAborted(peer, round, "coin: gather commits", err)
	}
	commits := make(map[wire.NodeID]commit.Commitment, len(commitPayloads))
	for id, payload := range commitPayloads {
		if len(payload) != commit.Size {
			return 0, peer.FailRound(round, fmt.Sprintf("coin: provider %d sent malformed commitment", id))
		}
		var c commit.Commitment
		copy(c[:], payload)
		commits[id] = c
	}

	// Echo the commitment set before anyone reveals: if a provider
	// equivocated its commitment across receivers, providers observe
	// different sets, the digests differ, and the round aborts with every
	// share still hidden — so the abort decision cannot depend on the coin
	// value.
	echo := commitSetDigest(providers, commits)
	echoTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepEcho}
	if err := peer.BroadcastProviders(echoTag, echo[:]); err != nil {
		return 0, peer.FailRound(round, fmt.Sprintf("coin: broadcast echo: %v", err))
	}
	echoes, err := peer.GatherProviders(ctx, echoTag)
	if err != nil {
		return 0, failUnlessAborted(peer, round, "coin: gather echoes", err)
	}
	for id, payload := range echoes {
		if !bytes.Equal(payload, echo[:]) {
			return 0, peer.FailRound(round, fmt.Sprintf("coin: commitment set mismatch with provider %d", id))
		}
	}

	// Reveal and verify. A gated toss holds the reveal here: all shares are
	// committed and echo-checked, so the seed is already fixed, but nobody
	// can compute it until the gate opens.
	if release != nil {
		select {
		case <-release:
		case <-ctx.Done():
			return 0, failUnlessAborted(peer, round, "coin: cancelled before reveal", ctx.Err())
		}
	}
	revealTag := wire.Tag{Round: round, Block: wire.BlockCoin, Instance: instance, Step: stepReveal}
	if err := peer.BroadcastProviders(revealTag, commit.EncodeOpening(op)); err != nil {
		return 0, peer.FailRound(round, fmt.Sprintf("coin: broadcast reveal: %v", err))
	}
	reveals, err := peer.GatherProviders(ctx, revealTag)
	if err != nil {
		return 0, failUnlessAborted(peer, round, "coin: gather reveals", err)
	}

	var seed uint64
	for _, id := range providers {
		opening, err := commit.DecodeOpening(reveals[id])
		if err != nil {
			return 0, peer.FailRound(round, fmt.Sprintf("coin: provider %d sent malformed opening", id))
		}
		if err := commit.Verify(dom, id, commits[id], opening); err != nil {
			return 0, peer.FailRound(round, fmt.Sprintf("coin: provider %d mis-opened its commitment", id))
		}
		if len(opening.Value) != shareSize {
			return 0, peer.FailRound(round, fmt.Sprintf("coin: provider %d share has %d bytes", id, len(opening.Value)))
		}
		seed += binary.BigEndian.Uint64(opening.Value)
	}
	return seed, nil
}

// failUnlessAborted converts err into a round abort unless the round is
// already aborted (in which case the existing abort error is returned).
func failUnlessAborted(peer *proto.Peer, round uint64, op string, err error) error {
	if abortErr := peer.AbortErr(round); abortErr != nil {
		return abortErr
	}
	// FailCause keeps the error's typed classification: a dead peer's
	// receive timeout aborts as disconnect with the crashed peer attributed
	// as culprit, not as an anonymous timeout.
	return peer.FailCause(round, op, err)
}

// commitSetDigest hashes the full (provider, commitment) set in provider
// order.
func commitSetDigest(providers []wire.NodeID, commits map[wire.NodeID]commit.Commitment) [sha256.Size]byte {
	h := sha256.New()
	var idBuf [4]byte
	for _, id := range providers {
		binary.BigEndian.PutUint32(idBuf[:], uint32(id))
		h.Write(idBuf[:])
		c := commits[id]
		h.Write(c[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
