package coin

import (
	"context"
	"sync"

	"distauction/internal/proto"
)

// Reservoir pre-tosses common-coin instances for one round so the 3-phase
// commit-echo-reveal exchange overlaps other protocol work instead of
// serializing inside task execution.
//
// A gated reservoir additionally withholds every reveal until Release is
// called: the commit and echo phases hide the shares, so they can run while
// bid agreement is still in progress, but no provider can learn a seed
// before the local agreement is *bound* (every provider's proposal
// committed and echo-verified — the round engine releases at exactly that
// point). By the time any party holds all shares of an instance, the
// agreement outcome is a fixed function of already-committed values at
// every honest provider — a coalition that sees the seed can still only
// force ⊥ (by refusing or mis-opening), exactly the power it already had.
//
// All methods are safe for concurrent use. Each instance is tossed at most
// once per reservoir regardless of how many callers request it — re-tossing
// an instance would re-draw a fresh random share under the same tag, which
// receivers would flag as equivocation.
type Reservoir struct {
	peer  *proto.Peer
	round uint64

	release     chan struct{}
	releaseOnce sync.Once

	mu     sync.Mutex
	tosses map[uint32]*pendingToss

	wg sync.WaitGroup
}

// pendingToss is one in-flight (or finished) coin instance.
type pendingToss struct {
	done chan struct{}
	seed uint64
	err  error
}

// NewReservoir creates a reservoir for round. When gated is true, reveals
// are withheld until Release; otherwise tosses run all three phases as soon
// as they are started.
func NewReservoir(peer *proto.Peer, round uint64, gated bool) *Reservoir {
	r := &Reservoir{
		peer:    peer,
		round:   round,
		release: make(chan struct{}),
	}
	if !gated {
		close(r.release)
	}
	return r
}

// Prefetch starts background tosses for the given instances. Instances
// already started (or finished) are skipped.
func (r *Reservoir) Prefetch(ctx context.Context, instances ...uint32) {
	for _, inst := range instances {
		r.start(ctx, inst)
	}
}

// start returns the pending toss for instance, launching it if needed.
func (r *Reservoir) start(ctx context.Context, instance uint32) *pendingToss {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tosses[instance]; ok {
		return t
	}
	t := &pendingToss{done: make(chan struct{})}
	if r.tosses == nil {
		r.tosses = make(map[uint32]*pendingToss)
	}
	r.tosses[instance] = t
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(t.done)
		t.seed, t.err = toss(ctx, r.peer, r.round, instance, r.release)
	}()
	return t
}

// Seed returns the agreed seed for instance, waiting for its toss to finish
// (and starting one on demand if the instance was never prefetched).
func (r *Reservoir) Seed(ctx context.Context, instance uint32) (uint64, error) {
	t := r.start(ctx, instance)
	select {
	case <-t.done:
		return t.seed, t.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Release opens the reveal gate. It is idempotent; on an ungated reservoir
// it is a no-op.
func (r *Reservoir) Release() {
	r.releaseOnce.Do(func() {
		select {
		case <-r.release:
		default:
			close(r.release)
		}
	})
}

// Close releases the reveal gate and joins every in-flight toss. It must be
// called before the round's protocol state is reclaimed (EndRound): a toss
// still gathering on a retired round would otherwise race the reclamation.
// Closing twice is harmless; tosses on an aborted round unwind promptly via
// the round's abort signal.
func (r *Reservoir) Close() {
	r.Release()
	r.wg.Wait()
}
