// Package audit provides deviation accountability across auction rounds.
//
// The framework guarantees that deviations can only force ⊥ — but a ⊥ round
// still wastes everyone's time, and a provider that keeps forcing ⊥ should
// eventually be expelled by the community (the out-of-protocol punishment
// the paper's solution-preference assumption ultimately rests on). This
// package is that bookkeeping: it ingests round results and transferable
// equivocation evidence (auth.Evidence), maintains per-node strike counts,
// and recommends exclusion once a node exceeds a strike budget.
//
// Attribution is deliberately conservative: an abort is charged to a node
// only when the abort reason names it as the *subject* (equivocation
// evidence, mis-opened commitment, conflicting transfer values). Timeouts
// and generic failures are recorded as unattributed — asynchrony alone must
// never cost an honest node its membership.
package audit

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"distauction/internal/auth"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

// Verdict classifies one round for one node.
type Verdict uint8

// Verdicts.
const (
	// VerdictClean records a completed round.
	VerdictClean Verdict = iota
	// VerdictAccused records an attributed deviation (strike).
	VerdictAccused
	// VerdictUnattributed records a ⊥ round with no culprit evidence.
	VerdictUnattributed
)

// Record is one audit-log entry.
type Record struct {
	Round   uint64
	Node    wire.NodeID // zero for unattributed entries
	Verdict Verdict
	Reason  string
	At      time.Time
}

// Log accumulates records and strike counts. The zero value is not usable;
// call New.
type Log struct {
	clock func() time.Time

	mu      sync.Mutex
	records []Record
	strikes map[wire.NodeID]int
	rounds  map[uint64]bool // rounds already ingested
}

// New creates an audit log. A nil clock uses time.Now.
func New(clock func() time.Time) *Log {
	if clock == nil {
		clock = time.Now
	}
	return &Log{
		clock:   clock,
		strikes: make(map[wire.NodeID]int),
		rounds:  make(map[uint64]bool),
	}
}

// RecordOutcome ingests a completed (non-⊥) round.
func (l *Log) RecordOutcome(round uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rounds[round] {
		return
	}
	l.rounds[round] = true
	l.records = append(l.records, Record{
		Round: round, Verdict: VerdictClean, Reason: "completed", At: l.clock(),
	})
}

// RecordAbort ingests a ⊥ round. If the abort error is a proto.AbortError
// whose reason names a subject ("… by N" is NOT enough — N is the reporter;
// attribution requires the reason to identify the deviant, as the runtime's
// equivocation and verification messages do), the named node is charged.
func (l *Log) RecordAbort(round uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rounds[round] {
		return
	}
	l.rounds[round] = true

	reason := "unknown"
	if ae, ok := err.(*proto.AbortError); ok {
		reason = ae.Reason
	} else if err != nil {
		reason = err.Error()
	}
	if node, ok := attributedNode(reason); ok {
		l.strikes[node]++
		l.records = append(l.records, Record{
			Round: round, Node: node, Verdict: VerdictAccused, Reason: reason, At: l.clock(),
		})
		return
	}
	l.records = append(l.records, Record{
		Round: round, Verdict: VerdictUnattributed, Reason: reason, At: l.clock(),
	})
}

// RecordEvidence ingests transferable equivocation evidence verified
// against the local registry. Invalid evidence is rejected (charging nodes
// on unverified accusations would itself be an attack vector).
func (l *Log) RecordEvidence(registry *auth.Registry, ev auth.Evidence) error {
	if err := auth.CheckEvidence(registry, ev); err != nil {
		return fmt.Errorf("audit: rejecting evidence: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.strikes[ev.A.From]++
	l.records = append(l.records, Record{
		Round: ev.A.Tag.Round, Node: ev.A.From, Verdict: VerdictAccused,
		Reason: fmt.Sprintf("signed equivocation on %v", ev.A.Tag), At: l.clock(),
	})
	return nil
}

// Strikes returns the strike count of a node.
func (l *Log) Strikes(node wire.NodeID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.strikes[node]
}

// Records returns a copy of the audit log in ingestion order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Exclusions returns the nodes whose strikes meet or exceed budget, sorted.
func (l *Log) Exclusions(budget int) []wire.NodeID {
	if budget <= 0 {
		budget = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []wire.NodeID
	for node, n := range l.strikes {
		if n >= budget {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// attributedNode extracts the deviant named by a runtime abort reason. The
// runtime's attributing messages all follow "… by <id> …" or
// "… provider <id> …" patterns; anything else stays unattributed.
func attributedNode(reason string) (wire.NodeID, bool) {
	for _, marker := range []string{"equivocation by ", "provider "} {
		idx := index(reason, marker)
		if idx < 0 {
			continue
		}
		rest := reason[idx+len(marker):]
		var id uint64
		var consumed int
		for consumed < len(rest) && rest[consumed] >= '0' && rest[consumed] <= '9' {
			id = id*10 + uint64(rest[consumed]-'0')
			consumed++
		}
		if consumed == 0 || id == 0 || id > 1<<32-1 {
			continue
		}
		return wire.NodeID(id), true
	}
	return 0, false
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
