package audit

import (
	"errors"
	"testing"
	"time"

	"distauction/internal/auth"
	"distauction/internal/proto"
	"distauction/internal/wire"
)

func fixedClock() func() time.Time {
	t0 := time.Unix(5000, 0)
	return func() time.Time { return t0 }
}

func TestCleanRounds(t *testing.T) {
	l := New(fixedClock())
	l.RecordOutcome(1)
	l.RecordOutcome(2)
	l.RecordOutcome(2) // duplicate ignored
	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	for _, r := range recs {
		if r.Verdict != VerdictClean {
			t.Errorf("round %d verdict %v", r.Round, r.Verdict)
		}
	}
	if got := l.Exclusions(1); len(got) != 0 {
		t.Errorf("clean log excludes %v", got)
	}
}

func TestAttributedAborts(t *testing.T) {
	l := New(fixedClock())
	// The runtime's own equivocation message format.
	l.RecordAbort(1, &proto.AbortError{Round: 1, From: 2, Reason: "equivocation by 3 on r1/task/i1/s1"})
	// A block verification message naming a provider.
	l.RecordAbort(2, &proto.AbortError{Round: 2, From: 1, Reason: "coin: provider 3 mis-opened its commitment"})
	if got := l.Strikes(3); got != 2 {
		t.Errorf("node 3 strikes = %d, want 2", got)
	}
	if got := l.Strikes(2); got != 0 {
		t.Errorf("reporter charged: %d strikes", got)
	}
	if ex := l.Exclusions(2); len(ex) != 1 || ex[0] != 3 {
		t.Errorf("exclusions = %v, want [3]", ex)
	}
	if ex := l.Exclusions(3); len(ex) != 0 {
		t.Errorf("budget 3 should not exclude yet: %v", ex)
	}
}

func TestUnattributedAborts(t *testing.T) {
	l := New(fixedClock())
	l.RecordAbort(1, &proto.AbortError{Round: 1, From: 2, Reason: "coin: gather commits: context deadline exceeded"})
	l.RecordAbort(2, errors.New("some opaque failure"))
	for _, r := range l.Records() {
		if r.Verdict != VerdictUnattributed {
			t.Errorf("round %d: verdict %v, want unattributed", r.Round, r.Verdict)
		}
	}
	if ex := l.Exclusions(1); len(ex) != 0 {
		t.Errorf("timeouts must not cost membership: %v", ex)
	}
}

func TestDuplicateRoundIgnored(t *testing.T) {
	l := New(fixedClock())
	l.RecordAbort(1, &proto.AbortError{Round: 1, Reason: "equivocation by 5 on r1/coin/i0/s1"})
	l.RecordAbort(1, &proto.AbortError{Round: 1, Reason: "equivocation by 5 on r1/coin/i0/s1"})
	if got := l.Strikes(5); got != 1 {
		t.Errorf("duplicate round double-charged: %d strikes", got)
	}
}

func TestRecordEvidence(t *testing.T) {
	master := []byte("audit-test")
	ids := []wire.NodeID{1, 2}
	r1 := auth.NewRegistryFromMaster(master, 1, ids)
	r2 := auth.NewRegistryFromMaster(master, 2, ids)

	tag := wire.Tag{Round: 7, Block: wire.BlockTransfer, Instance: 1, Step: 1}
	a := wire.Envelope{From: 1, To: 2, Tag: tag, Payload: []byte("x")}
	b := wire.Envelope{From: 1, To: 2, Tag: tag, Payload: []byte("y")}
	if err := r1.Sign(&a); err != nil {
		t.Fatal(err)
	}
	if err := r1.Sign(&b); err != nil {
		t.Fatal(err)
	}

	l := New(fixedClock())
	if err := l.RecordEvidence(r2, auth.Evidence{A: a, B: b}); err != nil {
		t.Fatalf("valid evidence rejected: %v", err)
	}
	if got := l.Strikes(1); got != 1 {
		t.Errorf("strikes = %d", got)
	}

	// Forged evidence must be rejected and charge nobody.
	forged := b
	forged.MAC = append([]byte(nil), b.MAC...)
	forged.MAC[0] ^= 1
	if err := l.RecordEvidence(r2, auth.Evidence{A: a, B: forged}); err == nil {
		t.Error("forged evidence accepted")
	}
	if got := l.Strikes(1); got != 1 {
		t.Errorf("forged evidence changed strikes: %d", got)
	}
}

func TestAttributedNodeParsing(t *testing.T) {
	tests := []struct {
		reason string
		want   wire.NodeID
		ok     bool
	}{
		{"equivocation by 42 on r1/task/i0/s1", 42, true},
		{"consensus: provider 7 mis-opened its commitment", 7, true},
		{"taskgraph: task 3 result mismatch with provider 9", 9, true},
		{"validate: gather: context deadline exceeded", 0, false},
		{"provider x did something", 0, false},
		{"equivocation by  on tag", 0, false},
	}
	for _, tt := range tests {
		got, ok := attributedNode(tt.reason)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("attributedNode(%q) = %d,%v want %d,%v", tt.reason, got, ok, tt.want, tt.ok)
		}
	}
}
