package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distauction/internal/auction"
	"distauction/internal/fixed"
	"distauction/internal/mechanism/doubleauction"
	"distauction/internal/mechanism/standardauction"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// cluster is a complete in-memory deployment: providers and user bidders.
type cluster struct {
	cfg       Config
	hub       *transport.Hub
	providers []*Provider
	bidders   []*Bidder
}

func newCluster(t *testing.T, m, n, k int, mech Mechanism) *cluster {
	t.Helper()
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	t.Cleanup(func() { hub.Close() })

	cfg := Config{
		K:         k,
		Mechanism: mech,
		BidWindow: 500 * time.Millisecond,
	}
	for i := 0; i < m; i++ {
		cfg.Providers = append(cfg.Providers, wire.NodeID(i+1))
	}
	for i := 0; i < n; i++ {
		cfg.Users = append(cfg.Users, wire.NodeID(100+i))
	}

	c := &cluster{cfg: cfg, hub: hub}
	for _, id := range cfg.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProvider(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		c.providers = append(c.providers, p)
	}
	for _, id := range cfg.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBidder(conn, cfg.Providers)
		t.Cleanup(func() { b.Close() })
		c.bidders = append(c.bidders, b)
	}
	return c
}

// runRound drives all providers for one round and returns their outcomes.
func (c *cluster) runRound(t *testing.T, round uint64, providerBids []auction.ProviderBid) ([]auction.Outcome, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outs := make([]auction.Outcome, len(c.providers))
	errs := make([]error, len(c.providers))
	var wg sync.WaitGroup
	for i, p := range c.providers {
		wg.Add(1)
		go func(i int, p *Provider) {
			defer wg.Done()
			var own *auction.ProviderBid
			if providerBids != nil {
				own = &providerBids[i]
			}
			outs[i], errs[i] = p.RunRound(ctx, round, own)
		}(i, p)
	}
	wg.Wait()
	return outs, errs
}

func ub(v, d float64) auction.UserBid {
	return auction.UserBid{Value: fixed.MustFloat(v), Demand: fixed.MustFloat(d)}
}

func pb(c, cap float64) auction.ProviderBid {
	return auction.ProviderBid{Cost: fixed.MustFloat(c), Capacity: fixed.MustFloat(cap)}
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Providers: []wire.NodeID{1, 2, 3},
		Users:     []wire.NodeID{100},
		K:         1,
		Mechanism: DoubleAuction{},
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := base
	bad.K = 2 // m=3 ≤ 2k=4
	if err := bad.Validate(); err == nil {
		t.Error("m ≤ 2k accepted")
	}
	bad = base
	bad.Providers = nil
	if err := bad.Validate(); err == nil {
		t.Error("no providers accepted")
	}
	bad = base
	bad.Users = []wire.NodeID{1} // collides with provider 1
	if err := bad.Validate(); err == nil {
		t.Error("duplicate id accepted")
	}
	bad = base
	bad.Mechanism = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil mechanism accepted")
	}
	bad = base
	bad.K = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative k accepted")
	}
}

func TestNewProviderRejectsOutsider(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	defer hub.Close()
	conn, err := hub.Attach(99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Providers: []wire.NodeID{1, 2, 3}, K: 1, Mechanism: DoubleAuction{}}
	if _, err := NewProvider(conn, cfg); err == nil {
		t.Error("non-provider connection accepted")
	}
}

// The headline integration test: a full distributed double auction.
// All providers must produce identical outcomes, and — because the double
// auction is deterministic — that outcome must equal the trusted
// auctioneer's direct execution of A on the same agreed bids (correct
// simulation, Definition 1).
func TestDistributedDoubleAuctionRound(t *testing.T) {
	c := newCluster(t, 5, 4, 2, DoubleAuction{})
	userBids := []auction.UserBid{ub(10, 1), ub(8, 1), ub(6, 1), ub(4, 1)}
	provBids := []auction.ProviderBid{pb(1, 1), pb(2, 1), pb(3, 1), pb(4, 1), pb(5, 1)}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Bidders submit, then await.
	outcomeCh := make([]chan auction.Outcome, len(c.bidders))
	for i, b := range c.bidders {
		if err := b.Submit(1, userBids[i]); err != nil {
			t.Fatal(err)
		}
		outcomeCh[i] = make(chan auction.Outcome, 1)
		go func(i int, b *Bidder) {
			out, err := b.AwaitOutcome(ctx, 1)
			if err != nil {
				t.Errorf("bidder %d: %v", i, err)
			}
			outcomeCh[i] <- out
		}(i, b)
	}

	outs, errs := c.runRound(t, 1, provBids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatalf("providers %d and 0 disagree", i)
		}
	}

	// Correct simulation: identical to the trusted auctioneer's A(~b).
	direct, err := doubleauction.Solve(auction.BidVector{Users: userBids, Providers: provBids})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Digest() != direct.Digest() {
		t.Error("distributed outcome differs from direct execution of A")
	}

	// Bidders all saw it too.
	for i := range c.bidders {
		select {
		case got := <-outcomeCh[i]:
			if got.Digest() != outs[0].Digest() {
				t.Errorf("bidder %d outcome mismatch", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("bidder %d never got the outcome", i)
		}
	}
}

func TestDistributedStandardAuctionRound(t *testing.T) {
	mech := StandardAuction{Params: standardauction.Params{
		Capacities: []fixed.Fixed{fixed.MustInt(2), fixed.MustInt(2), fixed.MustInt(2), fixed.MustInt(2)},
		InvEpsilon: 4,
	}}
	c := newCluster(t, 4, 6, 1, mech)
	userBids := []auction.UserBid{ub(10, 1), ub(9, 1), ub(8, 1), ub(7, 1), ub(6, 1), ub(5, 1)}

	for i, b := range c.bidders {
		if err := b.Submit(1, userBids[i]); err != nil {
			t.Fatal(err)
		}
	}
	outs, errs := c.runRound(t, 1, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatalf("providers disagree")
		}
	}
	out := outs[0]
	if err := out.Alloc.CheckFeasible(mech.Params.Capacities); err != nil {
		t.Errorf("infeasible outcome: %v", err)
	}
	// Capacity 8 total, demand 6: everyone fits, and with zero contention
	// VCG payments are zero.
	for i, b := range userBids {
		if out.Alloc.UserTotal(i) != b.Demand {
			t.Errorf("user %d allocated %v, want %v", i, out.Alloc.UserTotal(i), b.Demand)
		}
		if auction.UserUtility(b, i, out) < 0 {
			t.Errorf("user %d IR violated", i)
		}
	}
}

// A bidder that equivocates (different bids to different providers) does
// not stall the auction: bid agreement settles its slot to one of the
// submitted values, and all providers still agree.
func TestEquivocatingBidderResolved(t *testing.T) {
	c := newCluster(t, 3, 2, 1, DoubleAuction{})
	provBids := []auction.ProviderBid{pb(1, 5), pb(1.5, 5), pb(2, 5)}

	if err := c.bidders[0].Submit(1, ub(10, 1)); err != nil {
		t.Fatal(err)
	}
	// Bidder 1 equivocates.
	bidA, bidB := ub(8, 1), ub(2, 1)
	if err := c.bidders[1].SubmitRaw(1, map[wire.NodeID][]byte{
		1: bidA.Encode(),
		2: bidB.Encode(),
		3: bidA.Encode(),
	}); err != nil {
		t.Fatal(err)
	}

	outs, errs := c.runRound(t, 1, provBids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatal("providers disagree after bidder equivocation")
		}
	}
	// The slot resolved to one of the two submissions: the winning user 0
	// pays either 8 or 2 per unit depending on the leader draw — but never
	// anything else.
	pay := outs[0].Pay.ByUser[0]
	if pay != fixed.MustFloat(8) && pay != fixed.MustFloat(2) && pay != 0 {
		t.Errorf("payment %v not explained by either submitted bid", pay)
	}
}

func TestGarbageAndMissingBidsNeutralised(t *testing.T) {
	c := newCluster(t, 3, 3, 1, DoubleAuction{})
	provBids := []auction.ProviderBid{pb(1, 5), pb(1, 5), pb(1, 5)}

	if err := c.bidders[0].Submit(1, ub(10, 1)); err != nil {
		t.Fatal(err)
	}
	// Bidder 1 sends garbage to everyone; bidder 2 sends nothing.
	garbage := map[wire.NodeID][]byte{1: []byte("garbage"), 2: []byte("garbage"), 3: []byte("garbage")}
	if err := c.bidders[1].SubmitRaw(1, garbage); err != nil {
		t.Fatal(err)
	}

	outs, errs := c.runRound(t, 1, provBids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i, err)
		}
	}
	// Users 1 and 2 are excluded (neutral bids): no allocation, no payment.
	for _, u := range []int{1, 2} {
		if outs[0].Alloc.UserTotal(u) != 0 || outs[0].Pay.ByUser[u] != 0 {
			t.Errorf("user %d should be excluded", u)
		}
	}
}

// A provider whose configuration disagrees (here: a different user list,
// hence a different slot count) forces ⊥ rather than a wrong outcome, and
// the bidders observe ⊥.
func TestMisconfiguredProviderForcesBot(t *testing.T) {
	c := newCluster(t, 3, 2, 1, DoubleAuction{})
	provBids := []auction.ProviderBid{pb(1, 5), pb(1, 5), pb(1, 5)}

	// Rebuild provider 3 with a doctored config (extra ghost user).
	badCfg := c.cfg
	badCfg.Users = append(append([]wire.NodeID{}, c.cfg.Users...), 999)
	c.providers[2].Close()
	conn, err := c.hub.Attach(50) // fresh conn id for the hub
	if err != nil {
		t.Fatal(err)
	}
	_ = conn
	// Instead of re-attaching (IDs are fixed), drive the deviant through a
	// fresh provider object on a new hub-attached conn is impossible — the
	// original ID is taken. Script the deviation at the protocol level:
	// provider 3 simply runs with a mismatched slot count via direct
	// consensus input. The simplest faithful stand-in: provider 3 stays
	// silent, which the others convert into ⊥ via their deadlines.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for i, b := range c.bidders {
		if err := b.Submit(1, ub(float64(10-i), 1)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.providers[i].RunRound(ctx, 1, &provBids[i])
		}(i)
	}
	botCh := make(chan error, len(c.bidders))
	for _, b := range c.bidders {
		go func(b *Bidder) {
			_, err := b.AwaitOutcome(ctx, 1)
			botCh <- err
		}(b)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("provider %d succeeded despite silent peer", i)
		}
	}
	for range c.bidders {
		if err := <-botCh; !errors.Is(err, ErrOutcomeBot) && err == nil {
			t.Errorf("bidder observed success despite ⊥: %v", err)
		}
	}
}

func TestMultipleRoundsSequential(t *testing.T) {
	c := newCluster(t, 3, 2, 1, DoubleAuction{})
	provBids := []auction.ProviderBid{pb(1, 5), pb(1.2, 5), pb(1.4, 5)}
	for round := uint64(1); round <= 3; round++ {
		for i, b := range c.bidders {
			if err := b.Submit(round, ub(float64(10-i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		outs, errs := c.runRound(t, round, provBids)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d provider %d: %v", round, i, err)
			}
		}
		for i := 1; i < len(outs); i++ {
			if outs[i].Digest() != outs[0].Digest() {
				t.Fatalf("round %d disagreement", round)
			}
		}
		for _, p := range c.providers {
			p.EndRound(round)
		}
		for _, b := range c.bidders {
			b.EndRound(round)
		}
	}
}

func TestCentralizedDoubleAuction(t *testing.T) {
	hub := transport.NewHub(transport.LatencyModel{}, 1)
	defer hub.Close()

	cfg := Config{
		Providers: []wire.NodeID{1, 2, 3},
		Users:     []wire.NodeID{100, 101},
		K:         0,
		Mechanism: DoubleAuction{},
		BidWindow: 500 * time.Millisecond,
	}
	aucConn, err := hub.Attach(50)
	if err != nil {
		t.Fatal(err)
	}
	auctioneer, err := NewCentralized(aucConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer auctioneer.Close()

	// Market providers submit their bids as plain clients.
	provBids := []auction.ProviderBid{pb(1, 5), pb(2, 5), pb(3, 5)}
	for i, id := range cfg.Providers {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := SubmitProviderBid(conn, 50, 1, provBids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Users submit to the auctioneer alone.
	userBids := []auction.UserBid{ub(10, 1), ub(8, 1)}
	bidders := make([]*Bidder, 2)
	for i, id := range cfg.Users {
		conn, err := hub.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		bidders[i] = NewBidder(conn, []wire.NodeID{50})
		defer bidders[i].Close()
		if err := bidders[i].Submit(1, userBids[i]); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := auctioneer.RunRound(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := doubleauction.Solve(auction.BidVector{Users: userBids, Providers: provBids})
	if err != nil {
		t.Fatal(err)
	}
	if out.Digest() != direct.Digest() {
		t.Error("centralized outcome differs from direct solve")
	}
	for i, b := range bidders {
		got, err := b.AwaitOutcome(ctx, 1)
		if err != nil {
			t.Fatalf("bidder %d: %v", i, err)
		}
		if got.Digest() != out.Digest() {
			t.Errorf("bidder %d outcome mismatch", i)
		}
	}
}

// Providers must agree even when bidders race the bid window so that some
// providers see a bid and others substitute neutral: consensus resolves the
// slot either way.
func TestLateBidderStillConsistent(t *testing.T) {
	c := newCluster(t, 3, 2, 1, DoubleAuction{})
	provBids := []auction.ProviderBid{pb(1, 5), pb(1, 5), pb(1, 5)}

	if err := c.bidders[0].Submit(1, ub(10, 1)); err != nil {
		t.Fatal(err)
	}
	// Bidder 1 submits to provider 1 only — the others will time out and
	// substitute neutral; agreement picks one or the other.
	if err := c.bidders[1].SubmitRaw(1, map[wire.NodeID][]byte{1: ub(9, 1).Encode()}); err != nil {
		t.Fatal(err)
	}

	outs, errs := c.runRound(t, 1, provBids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatal("providers disagree on a half-submitted bid")
		}
	}
}

// Sanity-check that an aborted round leaves following rounds usable.
func TestAbortDoesNotPoisonNextRound(t *testing.T) {
	c := newCluster(t, 3, 1, 1, DoubleAuction{})
	provBids := []auction.ProviderBid{pb(1, 5), pb(1, 5), pb(1, 5)}

	// Round 1: poison by direct abort.
	for _, p := range c.providers {
		if err := p.Peer().Abort(1, "injected"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_, errs1 := func() ([]auction.Outcome, []error) {
		outs := make([]auction.Outcome, len(c.providers))
		errs := make([]error, len(c.providers))
		var wg sync.WaitGroup
		for i, p := range c.providers {
			wg.Add(1)
			go func(i int, p *Provider) {
				defer wg.Done()
				outs[i], errs[i] = p.RunRound(ctx, 1, &provBids[i])
			}(i, p)
		}
		wg.Wait()
		return outs, errs
	}()
	cancel()
	for i, err := range errs1 {
		if !errors.Is(err, proto.ErrAborted) {
			t.Errorf("provider %d: got %v, want abort", i, err)
		}
	}
	for _, p := range c.providers {
		p.EndRound(1)
	}

	// Round 2 proceeds normally.
	if err := c.bidders[0].Submit(2, ub(10, 1)); err != nil {
		t.Fatal(err)
	}
	outs, errs := c.runRound(t, 2, provBids)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("round 2 provider %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatal("round 2 disagreement")
		}
	}
}

// The static coin plan must match the graphs BuildGraph actually returns —
// in both the replicated and the decomposed shape, for any bids — or the
// engine would pre-toss instances nobody draws (wasted, but consistent) or
// miss instances that then toss un-prefetched (slow).
func TestStandardAuctionCoinPlanMatchesGraph(t *testing.T) {
	cfg := GraphConfig{
		Providers: []wire.NodeID{1, 2, 3, 4, 5, 6, 7, 8},
		K:         1,
	}
	params := standardauction.Params{
		Capacities: make([]fixed.Fixed, 8),
		InvEpsilon: 4,
	}
	for i := range params.Capacities {
		params.Capacities[i] = fixed.MustInt(2)
	}
	bids := auction.BidVector{Users: []auction.UserBid{ub(10, 1), ub(9, 1), ub(8, 1)}}
	for _, replicated := range []bool{false, true} {
		mech := StandardAuction{Params: params, Replicated: replicated}
		plan := mech.CoinPlan(cfg)
		g, err := mech.BuildGraph(cfg, bids)
		if err != nil {
			t.Fatalf("replicated=%v: %v", replicated, err)
		}
		declared := g.CoinInstances()
		if len(plan) != len(declared) {
			t.Fatalf("replicated=%v: plan has %d instances, graph declares %d", replicated, len(plan), len(declared))
		}
		for i := range plan {
			if plan[i] != declared[i] {
				t.Errorf("replicated=%v instance %d: plan %d != declared %d", replicated, i, plan[i], declared[i])
			}
		}
	}
}
