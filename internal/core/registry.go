package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"distauction/internal/fixed"
	"distauction/internal/mechanism/standardauction"
)

// MechanismSpec carries the deployment facts a mechanism factory may need.
// Every field is optional for mechanisms that do not use it; factories
// validate what they require.
type MechanismSpec struct {
	// Capacities are the per-provider capacities (standard auction; they are
	// deployment facts, not bids).
	Capacities []fixed.Fixed
	// InvEpsilon is the standard auction's 1/ε approximation effort.
	InvEpsilon int
	// IterFactor scales the standard auction's iteration count.
	IterFactor int
	// ModelDelay is the standard auction's virtual per-solve compute time.
	ModelDelay time.Duration
	// Replicated disables the standard auction's parallel decomposition.
	Replicated bool
}

// MechanismFactory builds a Mechanism from a spec.
type MechanismFactory func(spec MechanismSpec) (Mechanism, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]MechanismFactory{}
)

// RegisterMechanism adds a named mechanism factory so CLIs and config files
// can select mechanisms by string. Registering a duplicate name panics (it
// is a programming error, caught at init time).
func RegisterMechanism(name string, factory MechanismFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || factory == nil {
		panic("core: RegisterMechanism with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: mechanism %q registered twice", name))
	}
	registry[name] = factory
}

// LookupMechanism returns the factory registered under name.
func LookupMechanism(name string) (MechanismFactory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// NewMechanism builds the named mechanism from spec.
func NewMechanism(name string, spec MechanismSpec) (Mechanism, error) {
	f, ok := LookupMechanism(name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown mechanism %q (registered: %v)", ErrConfig, name, MechanismNames())
	}
	return f(spec)
}

// MechanismNames lists the registered mechanism names, sorted.
func MechanismNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterMechanism("double", func(MechanismSpec) (Mechanism, error) {
		return DoubleAuction{}, nil
	})
	RegisterMechanism("standard", func(spec MechanismSpec) (Mechanism, error) {
		if len(spec.Capacities) == 0 {
			return nil, fmt.Errorf("%w: standard auction needs per-provider capacities", ErrConfig)
		}
		return StandardAuction{
			Params: standardauction.Params{
				Capacities: spec.Capacities,
				InvEpsilon: spec.InvEpsilon,
				IterFactor: spec.IterFactor,
				ModelDelay: spec.ModelDelay,
			},
			Replicated: spec.Replicated,
		}, nil
	})
}
