package core

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"distauction/internal/auction"
	"distauction/internal/proto"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// ErrOutcomeBot reports that the auction ended in ⊥ (aborted) or that
// providers disagreed on the result — which the external mechanism treats
// the same way (§3.2: the outcome is (x, ~p) only if all providers output
// that pair).
var ErrOutcomeBot = fmt.Errorf("core: outcome is ⊥")

// Bidder is a user-side client: it submits bids to every provider and
// collects the unanimous outcome.
type Bidder struct {
	peer *proto.Peer
}

// NewBidder wraps conn into a bidder client for the given provider set.
func NewBidder(conn transport.Conn, providers []wire.NodeID) *Bidder {
	return &Bidder{peer: proto.NewPeer(conn, providers)}
}

// Close releases the bidder's network resources.
func (b *Bidder) Close() error { return b.peer.Close() }

// Self returns the bidder's node ID.
func (b *Bidder) Self() wire.NodeID { return b.peer.Self() }

// EndRound releases the round's buffered protocol state.
func (b *Bidder) EndRound(round uint64) { b.peer.EndRound(round) }

// Submit sends the same bid to every provider (the honest strategy; by
// Theorem 1 and the truthfulness of A it is utility-maximising to make it
// the true valuation).
func (b *Bidder) Submit(round uint64, bid auction.UserBid) error {
	tag := wire.Tag{Round: round, Block: wire.BlockBidSubmit, Step: 1}
	raw := bid.Encode()
	var firstErr error
	for _, p := range b.peer.Providers() {
		if err := b.peer.Send(p, tag, raw); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SubmitRaw sends an arbitrary per-provider payload — the deviation surface
// of §3.2 (different bids to different providers, garbage, or nothing).
// Deviation tests and examples use it; honest bidders use Submit.
func (b *Bidder) SubmitRaw(round uint64, payloads map[wire.NodeID][]byte) error {
	tag := wire.Tag{Round: round, Block: wire.BlockBidSubmit, Step: 1}
	var firstErr error
	for p, raw := range payloads {
		if err := b.peer.Send(p, tag, raw); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AwaitOutcome gathers the round result from every provider. It returns the
// outcome only when all providers reported the same non-⊥ pair; otherwise
// ErrOutcomeBot.
func (b *Bidder) AwaitOutcome(ctx context.Context, round uint64) (auction.Outcome, error) {
	return b.AwaitOutcomeTimeout(ctx, round, nil)
}

// AwaitOutcomeTimeout is AwaitOutcome bounded by an external timer channel
// (nil never fires). Bidder sessions pass one reusable timer instead of
// deriving a timeout context per round.
func (b *Bidder) AwaitOutcomeTimeout(ctx context.Context, round uint64, timeoutC <-chan time.Time) (auction.Outcome, error) {
	tag := wire.Tag{Round: round, Block: wire.BlockResult, Step: 1}
	var agreed []byte
	first := true
	for _, p := range b.peer.Providers() {
		payload, err := b.peer.ReceiveTimeout(ctx, tag, p, timeoutC)
		if err != nil {
			return auction.Outcome{}, fmt.Errorf("%w: provider %d unreachable: %v", ErrOutcomeBot, p, err)
		}
		d := wire.NewDecoder(payload)
		ok := d.Bool()
		// View, not copy: the payload stays buffered in the peer until
		// EndRound, and raw/agreed are only read within this call.
		raw := d.BytesView()
		if err := d.Finish(); err != nil {
			return auction.Outcome{}, fmt.Errorf("%w: provider %d sent malformed result", ErrOutcomeBot, p)
		}
		if !ok {
			return auction.Outcome{}, fmt.Errorf("%w: provider %d reported abort", ErrOutcomeBot, p)
		}
		if first {
			agreed, first = raw, false
		} else if !bytes.Equal(agreed, raw) {
			return auction.Outcome{}, fmt.Errorf("%w: providers disagree on the outcome", ErrOutcomeBot)
		}
	}
	out, err := auction.DecodeOutcome(agreed)
	if err != nil {
		return auction.Outcome{}, fmt.Errorf("%w: undecodable outcome: %v", ErrOutcomeBot, err)
	}
	return out, nil
}
