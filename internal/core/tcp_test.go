package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"distauction/internal/auction"
	"distauction/internal/auth"
	"distauction/internal/fixed"
	"distauction/internal/mechanism/doubleauction"
	"distauction/internal/mechanism/standardauction"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// TestFullProtocolOverTCP runs a complete distributed double auction over
// real authenticated TCP connections on loopback — the same configuration
// cmd/gatewayd and cmd/bidclient deploy, exercised as a test.
func TestFullProtocolOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real TCP listeners")
	}
	master := []byte("integration-master")
	providerIDs := []wire.NodeID{1, 2, 3}
	userIDs := []wire.NodeID{100, 101}
	all := append(append([]wire.NodeID{}, providerIDs...), userIDs...)

	// Start every node on an ephemeral port, then teach everyone the
	// resulting addresses.
	nodes := make(map[wire.NodeID]*transport.TCPNode, len(all))
	for _, id := range all {
		node, err := transport.ListenTCP(transport.TCPConfig{
			Self:       id,
			ListenAddr: "127.0.0.1:0",
			Peers:      map[wire.NodeID]string{},
			Registry:   auth.NewRegistryFromMaster(master, id, all),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[id] = node
	}
	for _, from := range all {
		for _, to := range all {
			if from != to {
				nodes[from].SetPeer(to, nodes[to].Addr())
			}
		}
	}

	cfg := Config{
		Providers: providerIDs,
		Users:     userIDs,
		K:         1,
		Mechanism: DoubleAuction{},
		BidWindow: 3 * time.Second,
	}
	providers := make([]*Provider, 0, len(providerIDs))
	for _, id := range providerIDs {
		p, err := NewProvider(nodes[id], cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		providers = append(providers, p)
	}
	bidders := make([]*Bidder, 0, len(userIDs))
	for _, id := range userIDs {
		b := NewBidder(nodes[id], providerIDs)
		t.Cleanup(func() { b.Close() })
		bidders = append(bidders, b)
	}

	userBids := []auction.UserBid{
		{Value: fixed.MustFloat(9), Demand: fixed.One},
		{Value: fixed.MustFloat(7), Demand: fixed.One},
	}
	provBids := []auction.ProviderBid{
		{Cost: fixed.One, Capacity: fixed.MustFloat(10)},
		{Cost: fixed.MustFloat(2), Capacity: fixed.MustFloat(10)},
		{Cost: fixed.MustFloat(3), Capacity: fixed.MustFloat(10)},
	}
	for i, b := range bidders {
		if err := b.Submit(1, userBids[i]); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outs := make([]auction.Outcome, len(providers))
	errs := make([]error, len(providers))
	var wg sync.WaitGroup
	for i, p := range providers {
		wg.Add(1)
		go func(i int, p *Provider) {
			defer wg.Done()
			outs[i], errs[i] = p.RunRound(ctx, 1, &provBids[i])
		}(i, p)
	}
	got, err := bidders[0].AwaitOutcome(ctx, 1)
	wg.Wait()
	if err != nil {
		t.Fatalf("bidder outcome: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i+1, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatal("providers disagree over TCP")
		}
	}
	if got.Digest() != outs[0].Digest() {
		t.Error("bidder outcome differs")
	}

	// Correct simulation over the real network too.
	direct, err := doubleauction.Solve(auction.BidVector{Users: userBids, Providers: provBids})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Digest() != direct.Digest() {
		t.Error("TCP distributed outcome differs from direct execution of A")
	}
	// McAfee trade reduction on this instance: user 100 (value 9) wins and
	// pays the excluded user's value 7.
	if outs[0].Pay.ByUser[0] != fixed.MustFloat(7) {
		t.Errorf("winner pays %v, want 7", outs[0].Pay.ByUser[0])
	}
}

// TestReplicatedStandardAuction checks the ablation path: the replicated
// standard auction produces a unanimous, feasible outcome just like the
// parallel decomposition.
func TestReplicatedStandardAuction(t *testing.T) {
	caps := []fixed.Fixed{fixed.MustInt(2), fixed.MustInt(2), fixed.MustInt(2)}
	mech := StandardAuction{
		Params:     standardParamsFor(caps),
		Replicated: true,
	}
	c := newCluster(t, 3, 4, 1, mech)
	for i, b := range c.bidders {
		if err := b.Submit(1, ub(float64(9-i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	outs, errs := c.runRound(t, 1, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("provider %d: %v", i, err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Digest() != outs[0].Digest() {
			t.Fatal("replicated providers disagree")
		}
	}
	if err := outs[0].Alloc.CheckFeasible(caps); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func standardParamsFor(caps []fixed.Fixed) standardauction.Params {
	return standardauction.Params{Capacities: caps, InvEpsilon: 4}
}
