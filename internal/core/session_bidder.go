package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"distauction/internal/auction"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// BidderSession is the user-side counterpart of Session: it submits bids
// for any round and streams the unanimous per-round outcomes over a channel
// instead of one blocking call per round. A ⊥ round arrives with Err
// matching ErrOutcomeBot; the stream then continues with the next round.
//
// Of the session options only WithStartRound, WithRoundLimit,
// WithOutcomeBuffer and WithRoundTimeout apply to bidders (the rest
// describe the provider side and are ignored); option validation errors
// still surface from Open. The round timeout (default 2 minutes, 0
// disables) bounds how long the session waits for each round's unanimous
// result, so one lost result message costs that round (reported as ⊥)
// instead of wedging the stream — outcomes are delivered strictly in round
// order, so an unbounded wait on round r would also withhold every round
// after it.
type BidderSession struct {
	bidder   *Bidder
	settings sessionSettings
	outcomes chan RoundOutcome

	ctx       context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// OpenBidderSession starts a bidder session over conn addressing the given
// providers. The start round must match the providers' session start.
func OpenBidderSession(conn transport.Conn, providers []wire.NodeID, opts ...SessionOption) (*BidderSession, error) {
	settings := defaultSettings()
	for _, opt := range opts {
		opt(&settings)
	}
	if len(settings.errs) > 0 {
		return nil, errors.Join(settings.errs...)
	}
	if len(providers) == 0 {
		return nil, errors.Join(ErrConfig, errors.New("bidder session needs providers"))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &BidderSession{
		bidder:   NewBidder(conn, providers),
		settings: settings,
		outcomes: make(chan RoundOutcome, settings.outcomeBuffer),
		ctx:      ctx,
		cancel:   cancel,
	}
	s.wg.Add(1)
	go s.collect()
	return s, nil
}

// Self returns the bidder's node ID.
func (s *BidderSession) Self() wire.NodeID { return s.bidder.Self() }

// Submit sends the same bid to every provider for the given round. Bids for
// future rounds are accepted immediately — providers buffer them until the
// round's bid window opens — so a bidder can run ahead of the pipeline.
func (s *BidderSession) Submit(round uint64, bid auction.UserBid) error {
	return s.bidder.Submit(round, bid)
}

// SubmitRaw sends arbitrary per-provider payloads for a round (the
// deviation surface of §3.2); honest bidders use Submit.
func (s *BidderSession) SubmitRaw(round uint64, payloads map[wire.NodeID][]byte) error {
	return s.bidder.SubmitRaw(round, payloads)
}

// Outcomes streams one RoundOutcome per round in round order, starting at
// the configured start round. The channel closes when the round limit is
// reached or the session is closed.
func (s *BidderSession) Outcomes() <-chan RoundOutcome { return s.outcomes }

// Close stops the session and releases its network resources.
func (s *BidderSession) Close() error {
	s.closeOnce.Do(func() {
		s.cancel()
		s.wg.Wait()
	})
	return s.bidder.Close()
}

// collect awaits each round's unanimous outcome in order, emits it, and
// reclaims the round's buffered state. Each wait is bounded by the round
// timeout (head-of-line blocking protection: a round with a lost result is
// reported as ⊥ and the stream moves on).
func (s *BidderSession) collect() {
	defer s.wg.Done()
	defer close(s.outcomes)
	// One reusable timer bounds every round's wait (collect is the only
	// goroutine touching it); deriving a context per round would cost a
	// timer plus several allocations per round for the common case where
	// the result arrives long before the bound.
	var timer *time.Timer
	var timeoutC <-chan time.Time
	if s.settings.roundTimeout > 0 {
		timer = time.NewTimer(s.settings.roundTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	start, limit := s.settings.startRound, s.settings.roundLimit
	for r := start; limit == 0 || r < start+limit; r++ {
		if timer != nil && r != start {
			timer.Reset(s.settings.roundTimeout)
		}
		out, err := s.bidder.AwaitOutcomeTimeout(s.ctx, r, timeoutC)
		if s.ctx.Err() != nil {
			return
		}
		select {
		case s.outcomes <- RoundOutcome{Round: r, Outcome: out, Err: err}:
		case <-s.ctx.Done():
			return
		}
		s.bidder.EndRound(r)
	}
}
