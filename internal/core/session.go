package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"distauction/internal/auction"
	"distauction/internal/proto"
	"distauction/internal/trace"
	"distauction/internal/transport"
	"distauction/internal/wire"
)

// RoundOutcome is one round's result as streamed by sessions. Err is nil
// when the outcome was accepted; for ⊥ rounds it matches proto.ErrAborted
// (provider side) or ErrOutcomeBot (bidder side). A ⊥ round does not end
// the session: the next round proceeds normally.
type RoundOutcome struct {
	Round   uint64
	Outcome auction.Outcome
	Err     error
	// Latency is the round's wall-clock time on this provider, bid
	// collection through outcome delivery (0 for rounds failed before
	// collection started). Markets feed it into their latency histograms.
	Latency time.Duration
}

// sessionSettings is the target of the functional options. The zero-ish
// defaults come from defaultSettings; Open validates the final state.
type sessionSettings struct {
	k             int
	mechanism     func() (Mechanism, error)
	bidWindow     time.Duration
	roundTimeout  time.Duration
	maxConcurrent int
	startRound    uint64
	roundLimit    uint64
	outcomeBuffer int
	ownBid        *auction.ProviderBid

	errs []error
}

func defaultSettings() sessionSettings {
	return sessionSettings{
		maxConcurrent: 2,
		roundTimeout:  2 * time.Minute,
		startRound:    1,
		outcomeBuffer: 8,
	}
}

func (s *sessionSettings) fail(format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf("%w: "+format, append([]any{ErrConfig}, args...)...))
}

// SessionOption configures a session at Open time. Options are validated
// together when the session opens; a bad option surfaces as an ErrConfig
// error from Open, never as a panic or a silently ignored value.
type SessionOption func(*sessionSettings)

// WithK sets the coalition bound k (the session tolerates coalitions of up
// to k providers; requires m > 2k providers).
func WithK(k int) SessionOption {
	return func(s *sessionSettings) {
		if k < 0 {
			s.fail("negative k (%d)", k)
			return
		}
		s.k = k
	}
}

// WithMechanism selects the allocation mechanism directly.
func WithMechanism(m Mechanism) SessionOption {
	return func(s *sessionSettings) {
		if m == nil {
			s.fail("nil mechanism")
			return
		}
		s.mechanism = func() (Mechanism, error) { return m, nil }
	}
}

// WithMechanismName selects a registered mechanism by name with a zero
// spec. Use WithNamedMechanism to pass mechanism parameters.
func WithMechanismName(name string) SessionOption {
	return WithNamedMechanism(name, MechanismSpec{})
}

// WithNamedMechanism selects a registered mechanism by name and builds it
// from spec at Open time.
func WithNamedMechanism(name string, spec MechanismSpec) SessionOption {
	return func(s *sessionSettings) {
		s.mechanism = func() (Mechanism, error) { return NewMechanism(name, spec) }
	}
}

// WithBidWindow sets how long each round waits for bid submissions before
// substituting neutral bids.
func WithBidWindow(d time.Duration) SessionOption {
	return func(s *sessionSettings) {
		if d <= 0 {
			s.fail("non-positive bid window (%v)", d)
			return
		}
		s.bidWindow = d
	}
}

// WithRoundTimeout bounds phases 2–5 of each round (agreement, allocation,
// delivery); a round that exceeds it ends in ⊥ without wedging the session.
// Zero disables the bound.
func WithRoundTimeout(d time.Duration) SessionOption {
	return func(s *sessionSettings) {
		if d < 0 {
			s.fail("negative round timeout (%v)", d)
			return
		}
		s.roundTimeout = d
	}
}

// WithMaxConcurrentRounds sets the pipeline depth: how many rounds may be
// in flight at once. Depth 1 disables pipelining; depth 2 (the default)
// overlaps round r+1's bid collection with round r's allocator.
func WithMaxConcurrentRounds(n int) SessionOption {
	return func(s *sessionSettings) {
		if n < 1 {
			s.fail("max concurrent rounds must be >= 1 (got %d)", n)
			return
		}
		s.maxConcurrent = n
	}
}

// WithStartRound sets the first round number (default 1). All participants
// of a deployment must agree on it.
func WithStartRound(r uint64) SessionOption {
	return func(s *sessionSettings) {
		if r == 0 {
			s.fail("start round must be >= 1 (round numbers are 1-based)")
			return
		}
		s.startRound = r
	}
}

// WithRoundLimit stops the session after n rounds, closing the outcomes
// channel (0, the default, means run until Close).
func WithRoundLimit(n uint64) SessionOption {
	return func(s *sessionSettings) { s.roundLimit = n }
}

// WithOutcomeBuffer sets the outcomes channel capacity. A session applies
// backpressure once the buffer fills: consume the channel or rounds stall.
func WithOutcomeBuffer(n int) SessionOption {
	return func(s *sessionSettings) {
		if n < 0 {
			s.fail("negative outcome buffer (%d)", n)
			return
		}
		s.outcomeBuffer = n
	}
}

// WithProviderBid sets the provider's initial own bid for double-sided
// mechanisms (see Session.SetBid for per-round updates).
func WithProviderBid(bid auction.ProviderBid) SessionOption {
	return func(s *sessionSettings) {
		b := bid
		s.ownBid = &b
	}
}

// resolve finalises the settings into a validated Config.
func (s *sessionSettings) resolve(providers, users []wire.NodeID) (Config, error) {
	if len(s.errs) > 0 {
		return Config{}, errors.Join(s.errs...)
	}
	if s.mechanism == nil {
		return Config{}, fmt.Errorf("%w: no mechanism (use WithMechanism or WithMechanismName)", ErrConfig)
	}
	mech, err := s.mechanism()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Providers: providers,
		Users:     users,
		K:         s.k,
		Mechanism: mech,
		BidWindow: s.bidWindow,
	}.withDefaults()
	return cfg, cfg.Validate()
}

// Session is a provider node's long-running auction engine. Opened once, it
// runs rounds continuously: bids are accepted as they arrive, round numbers
// advance automatically, round r+1's bid collection is pipelined with round
// r's allocator (up to WithMaxConcurrentRounds rounds in flight), and each
// round's buffered protocol state is reclaimed as soon as every earlier
// round has completed. Per-round results stream from Outcomes in round
// order; a ⊥ round is reported with a non-nil Err and the session moves on.
type Session struct {
	eng      *engine
	settings sessionSettings

	ownBid   atomic.Pointer[auction.ProviderBid]
	outcomes chan RoundOutcome
	results  chan RoundOutcome

	ctx       context.Context
	cancel    context.CancelFunc
	closing   chan struct{}
	closeOnce sync.Once
	emitOnce  sync.Once
	wg        sync.WaitGroup

	mu       sync.Mutex
	inFlight map[uint64]bool // rounds started but not yet completed
}

// OpenSession validates the options and starts the session engine for a
// provider node. conn must belong to one of providers; all participants of
// a deployment must agree on the provider set, user set, k, mechanism and
// start round.
func OpenSession(conn transport.Conn, providers, users []wire.NodeID, opts ...SessionOption) (*Session, error) {
	settings := defaultSettings()
	for _, opt := range opts {
		opt(&settings)
	}
	cfg, err := settings.resolve(providers, users)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(conn, cfg)
	if err != nil {
		return nil, err
	}
	// Compile the mechanism's graph and schedule plan once for the whole
	// session; the executor's depth matches the round pipeline so every
	// in-flight round has an arena.
	eng.compile(settings.maxConcurrent)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{
		eng:      eng,
		settings: settings,
		outcomes: make(chan RoundOutcome, settings.outcomeBuffer),
		results:  make(chan RoundOutcome, settings.maxConcurrent+1),
		ctx:      ctx,
		cancel:   cancel,
		closing:  make(chan struct{}),
		inFlight: make(map[uint64]bool),
	}
	if settings.ownBid != nil {
		s.ownBid.Store(settings.ownBid)
	}
	s.wg.Add(2)
	go s.schedule()
	go s.emit()
	return s, nil
}

// Self returns the provider's node ID.
func (s *Session) Self() wire.NodeID { return s.eng.peer.Self() }

// Peer exposes the protocol peer (audit and deviation tooling script raw
// messages through it).
func (s *Session) Peer() *proto.Peer { return s.eng.peer }

// Outcomes streams one RoundOutcome per round, in round order. The channel
// closes when the round limit is reached or the session is closed. The
// session applies backpressure through this channel: stop consuming it and
// rounds stall once the buffer fills.
func (s *Session) Outcomes() <-chan RoundOutcome { return s.outcomes }

// SetBid updates the provider's own bid, used from the next round onward
// (double-sided mechanisms only; ignored otherwise).
func (s *Session) SetBid(bid auction.ProviderBid) {
	b := bid
	s.ownBid.Store(&b)
}

// ClearBid reverts the provider to the neutral bid.
func (s *Session) ClearBid() { s.ownBid.Store(nil) }

// Close stops the session. Rounds in flight end in ⊥: the abort is
// broadcast to peer providers and reported to bidders, so no participant
// blocks on a half-finished round. The outcomes channel is closed after the
// in-flight rounds drain. Close is idempotent.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing)
		s.cancel()
		// Declare ⊥ for every round still in flight *before* tearing the
		// peer down, so other providers and bidders learn the abort instead
		// of timing out.
		s.mu.Lock()
		rounds := make([]uint64, 0, len(s.inFlight))
		for r := range s.inFlight {
			rounds = append(rounds, r)
		}
		s.mu.Unlock()
		for _, r := range rounds {
			_ = s.eng.peer.Abort(r, "session closed")
			s.eng.deliverResult(r, false, nil)
		}
		s.wg.Wait()
		// All round workers have returned, so no executor Run is in flight
		// and the engine's worker set can drain without blocking.
		s.eng.close()
		s.closeOutcomes()
	})
	return s.eng.peer.Close()
}

func (s *Session) closeOutcomes() {
	s.emitOnce.Do(func() { close(s.outcomes) })
}

// trackRound registers a round as in flight, unless the session is already
// closing — the check and the registration share s.mu with Close's
// in-flight snapshot, so a round either makes the snapshot (and is aborted
// loudly) or is never started; no round can slip between the two.
func (s *Session) trackRound(r uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closing:
		return false
	default:
	}
	s.inFlight[r] = true
	return true
}

// report marks a round completed and hands its result to the emitter. The
// send never drops and never deadlocks: results closes only after every
// reporter has returned (schedule's defer), and emit consumes results to
// exhaustion even while shutting down (drain).
func (s *Session) report(out RoundOutcome) {
	s.mu.Lock()
	delete(s.inFlight, out.Round)
	s.mu.Unlock()
	s.results <- out
}

// failRound guarantees that round r ends in ⊥ everywhere: the abort is
// broadcast to peer providers (idempotent) and the ⊥ result is delivered to
// bidders (duplicate identical deliveries are absorbed by the receivers).
func (s *Session) failRound(r uint64, err error) {
	reason := "session: round failed"
	if err != nil {
		reason = err.Error()
	}
	if !errors.Is(err, proto.ErrAborted) {
		_ = s.eng.peer.Abort(r, reason)
	}
	s.eng.deliverResult(r, false, nil)
}

// roundWork is one collected round handed from the scheduler to a round
// worker: phases 0–1 are done, phases 2–5 remain.
type roundWork struct {
	r      uint64
	inputs [][]byte
	began  time.Time // when phase 0 started; stamps the round's latency
}

// schedule is the round scheduler: it serialises phase 0–1 (own-bid
// broadcast and bid collection) across rounds — so bid windows are paced —
// and hands each collected round to one of maxConcurrent persistent round
// workers for phases 2–5, overlapping the next round's collection with the
// previous rounds' allocators. The workers live for the whole session
// instead of being spawned per round, so a steady-state round costs a
// channel handoff, not a goroutine start.
func (s *Session) schedule() {
	defer s.wg.Done()
	slots := make(chan struct{}, s.settings.maxConcurrent)
	work := make(chan roundWork)
	var workers sync.WaitGroup
	workers.Add(s.settings.maxConcurrent)
	for i := 0; i < s.settings.maxConcurrent; i++ {
		go s.roundWorker(work, slots, &workers)
	}
	defer func() {
		close(work)
		workers.Wait()
		// All rounds done. A finite session closes its results stream so the
		// emitter can flush and close Outcomes.
		close(s.results)
	}()

	start, limit := s.settings.startRound, s.settings.roundLimit
	for r := start; limit == 0 || r < start+limit; r++ {
		select {
		case slots <- struct{}{}:
		case <-s.closing:
			return
		}
		if !s.trackRound(r) {
			return
		}

		began := time.Now()
		span := trace.Begin()
		inputs, err := s.eng.openRound(s.ctx, r, s.ownBid.Load())
		if err != nil {
			lat := time.Since(began)
			s.failRound(r, err)
			trace.RoundDone(r, s.eng.peer.Lane(), s.eng.peer.Self(), lat, true, int32(proto.AbortCodeOf(err)))
			s.report(RoundOutcome{Round: r, Err: err, Latency: lat})
			<-slots
			if s.ctx.Err() != nil {
				return
			}
			continue
		}
		trace.Span(span, trace.PhaseBidCollect, r, s.eng.peer.Lane(), s.eng.peer.Self(), trace.NoPeer, 0)

		select {
		case work <- roundWork{r: r, inputs: inputs, began: began}:
		case <-s.closing:
			// The round made trackRound before close(closing), so Close's
			// in-flight snapshot aborts it loudly; report it here so the
			// results stream still accounts for every tracked round.
			s.report(RoundOutcome{Round: r, Err: fmt.Errorf("%w: session closed", proto.ErrAborted)})
			<-slots
			return
		}
	}
}

// roundWorker is one of the session's persistent round workers: it runs
// phases 2–5 of each round handed to it and releases the round's pipeline
// slot after reporting. A worker holds no per-round state of its own — the
// engine's executor and pools carry everything — so the set is fixed at
// maxConcurrent for the session's whole life.
func (s *Session) roundWorker(work <-chan roundWork, slots <-chan struct{}, workers *sync.WaitGroup) {
	defer workers.Done()
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels("distauction", "session-round-worker")))
	for rw := range work {
		rctx := s.ctx
		var cancel context.CancelFunc
		if s.settings.roundTimeout > 0 {
			rctx, cancel = context.WithTimeout(s.ctx, s.settings.roundTimeout)
		}
		out, err := s.eng.finishRound(rctx, rw.r, rw.inputs)
		if cancel != nil {
			cancel()
		}
		lat := time.Since(rw.began)
		if err != nil {
			s.failRound(rw.r, err)
		}
		trace.RoundDone(rw.r, s.eng.peer.Lane(), s.eng.peer.Self(), lat, err != nil, int32(proto.AbortCodeOf(err)))
		s.report(RoundOutcome{Round: rw.r, Outcome: out, Err: err, Latency: lat})
		<-slots
	}
}

// emit reorders completed rounds and streams them in round order, then
// reclaims each round's protocol state: EndRound(r) runs only once every
// round <= r has completed, which is exactly when r is emitted.
func (s *Session) emit() {
	defer s.wg.Done()
	defer s.closeOutcomes()
	pending := make(map[uint64]RoundOutcome)
	next := s.settings.startRound
	for {
		var out RoundOutcome
		var ok bool
		select {
		case out, ok = <-s.results:
		case <-s.closing:
			s.drain(pending, next)
			return
		}
		if !ok {
			// Finite session completed all rounds (pending is empty: results
			// closes only after every worker reported, and reports drain in
			// round-contiguous batches by then).
			return
		}
		pending[out.Round] = out
		for {
			o, ready := pending[next]
			if !ready {
				break
			}
			select {
			case s.outcomes <- o:
			case <-s.closing:
				s.drain(pending, next)
				return
			}
			delete(pending, next)
			s.eng.endRound(next)
			next++
		}
	}
}

// drain flushes rounds that completed before Close to the outcomes buffer,
// so a consumer that keeps reading sees every finished round rather than
// losing the ones emit had not streamed yet. Sends must not block — Close
// waits for emit — so a consumer that already walked away only gets what
// fits in the buffer. Remaining in-flight rounds report ⊥ through the same
// path: the scheduler and workers are winding down and every started round
// still reaches s.results before it closes.
func (s *Session) drain(pending map[uint64]RoundOutcome, next uint64) {
	for out := range s.results {
		pending[out.Round] = out
	}
	for {
		o, ready := pending[next]
		if !ready {
			return
		}
		select {
		case s.outcomes <- o:
		default:
			return
		}
		delete(pending, next)
		s.eng.endRound(next)
		next++
	}
}
